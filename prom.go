package pebblesdb

import (
	"fmt"
	"io"

	"pebblesdb/internal/engine"
)

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, counters with a
// _total suffix, the commit-wait histogram as cumulative le-labelled
// buckets with _sum and _count. A sharded server merges per-shard Metrics
// first and exposes the result as one scrape target.
func (m Metrics) WritePrometheus(w io.Writer) {
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	// Per-level structure.
	fmt.Fprintf(w, "# HELP pebblesdb_level_tables Live sstables per level.\n# TYPE pebblesdb_level_tables gauge\n")
	for l, n := range m.Tree.LevelFiles {
		fmt.Fprintf(w, "pebblesdb_level_tables{level=\"%d\"} %d\n", l, n)
	}
	fmt.Fprintf(w, "# HELP pebblesdb_level_bytes Live sstable bytes per level.\n# TYPE pebblesdb_level_bytes gauge\n")
	for l, n := range m.Tree.LevelBytes {
		fmt.Fprintf(w, "pebblesdb_level_bytes{level=\"%d\"} %d\n", l, n)
	}
	if len(m.Tree.GuardsPerLevel) > 0 {
		fmt.Fprintf(w, "# HELP pebblesdb_level_guards FLSM guards per level.\n# TYPE pebblesdb_level_guards gauge\n")
		for l, n := range m.Tree.GuardsPerLevel {
			fmt.Fprintf(w, "pebblesdb_level_guards{level=\"%d\"} %d\n", l, n)
		}
	}

	// Background work.
	c("pebblesdb_flushes_total", "Memtable flushes.", m.Flushes)
	c("pebblesdb_flushed_bytes_total", "Bytes written by flushes.", m.Tree.BytesFlushed)
	c("pebblesdb_compactions_total", "Completed compactions.", m.Tree.Compactions)
	c("pebblesdb_compaction_inplace_total", "In-place guard merges (FLSM last-level rewrites).", m.Tree.InPlaceMerges)
	c("pebblesdb_compaction_trivial_moves_total", "Metadata-only file moves (leveled).", m.Tree.TrivialMoves)
	c("pebblesdb_compaction_seek_total", "Seek-triggered compactions.", m.Tree.SeekCompactions)
	c("pebblesdb_compaction_in_bytes_total", "Bytes read by compactions.", m.Tree.BytesCompactedIn)
	c("pebblesdb_compaction_out_bytes_total", "Bytes written by compactions.", m.Tree.BytesCompactedOut)
	c("pebblesdb_compaction_units_total", "Compaction units claimed by the parallel scheduler.", m.Tree.CompactionUnits)
	g("pebblesdb_compaction_peak_parallelism", "Peak concurrently-running compaction units.", m.Tree.PeakUnitsInflight)
	c("pebblesdb_compaction_claim_conflicts_total", "Times a worker found work pending but fully claimed.", m.Tree.ClaimConflicts)
	c("pebblesdb_compaction_claim_stall_nanos_total", "Wall time workers waited for claimable work.", m.Tree.ClaimStallNanos)

	// Write stalls.
	c("pebblesdb_stall_slowdown_writes_total", "Writes delayed by the L0 slowdown trigger.", m.SlowdownWrites)
	c("pebblesdb_stall_stopped_writes_total", "Writes blocked by the L0 stop trigger.", m.StoppedWrites)
	c("pebblesdb_stall_memtable_waits_total", "Writes that waited for a memtable flush.", m.MemtableWaits)
	c("pebblesdb_stall_nanos_total", "Wall time writers spent stalled.", m.StallNanos)

	// Commit pipeline and WAL.
	c("pebblesdb_wal_bytes_total", "Bytes appended to the write-ahead log.", m.WALBytes)
	c("pebblesdb_wal_syncs_total", "Physical WAL fsyncs.", m.WALSyncs)
	c("pebblesdb_sync_commits_total", "Commits that requested durability.", m.SyncCommits)
	c("pebblesdb_commit_groups_total", "Commit groups formed by leaders.", m.CommitGroups)
	c("pebblesdb_commit_batches_total", "Batches scheduled across commit groups.", m.CommitBatches)

	// Commit-wait histogram: cumulative buckets, seconds.
	fmt.Fprintf(w, "# HELP pebblesdb_commit_wait_seconds Commit latency.\n# TYPE pebblesdb_commit_wait_seconds histogram\n")
	var cum int64
	for i, n := range m.CommitWaitHist {
		cum += n
		if i < len(engine.CommitWaitBuckets) {
			fmt.Fprintf(w, "pebblesdb_commit_wait_seconds_bucket{le=\"%g\"} %d\n",
				engine.CommitWaitBuckets[i].Seconds(), cum)
		} else {
			fmt.Fprintf(w, "pebblesdb_commit_wait_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		}
	}
	fmt.Fprintf(w, "pebblesdb_commit_wait_seconds_sum %g\n", float64(m.CommitWaitNanos)/1e9)
	fmt.Fprintf(w, "pebblesdb_commit_wait_seconds_count %d\n", cum)

	// Operations and read path.
	c("pebblesdb_gets_total", "Point reads.", m.Gets)
	c("pebblesdb_writes_total", "Write operations.", m.Writes)
	c("pebblesdb_iterators_total", "Iterators opened.", m.Iterators)
	c("pebblesdb_get_tables_probed_total", "Sstables searched on the Get path.", m.GetTablesProbed)
	c("pebblesdb_get_bloom_negatives_total", "Tables excluded by bloom filters on Gets.", m.GetBloomNegatives)
	c("pebblesdb_get_bloom_false_positives_total", "Bloom passes that found nothing.", m.GetBloomFalsePositives)
	c("pebblesdb_get_block_cache_hits_total", "Block-cache hits on Gets.", m.GetBlockCacheHits)
	c("pebblesdb_get_block_cache_misses_total", "Block-cache misses on Gets.", m.GetBlockCacheMisses)
	c("pebblesdb_iter_tables_opened_total", "Sstable iterators opened by scans.", m.IterTablesOpened)
	c("pebblesdb_iter_prefix_skips_total", "Sstables skipped by prefix bloom filters.", m.IterPrefixSkips)

	// Memory and health.
	g("pebblesdb_memtable_bytes", "Live memtable footprint.", m.MemtableBytes)
	var ro int64
	if m.ReadOnly {
		ro = 1
	}
	g("pebblesdb_read_only", "1 when the store is degraded to read-only by a background error.", ro)
	c("pebblesdb_bg_retryable_errors_total", "Retryable background-error degradations.", m.BgRetryableErrors)
	c("pebblesdb_bg_permanent_errors_total", "Permanent background-error degradations.", m.BgPermanentErrors)
	c("pebblesdb_bg_retries_total", "Retried background operations.", m.BgRetries)
	c("pebblesdb_resumes_total", "Successful Resume calls.", m.Resumes)

	// IO accounting per file category, plus write amplification.
	cats := [...]string{"table", "log", "manifest", "other"}
	fmt.Fprintf(w, "# HELP pebblesdb_io_written_bytes_total Bytes written per file category.\n# TYPE pebblesdb_io_written_bytes_total counter\n")
	for i, name := range cats {
		fmt.Fprintf(w, "pebblesdb_io_written_bytes_total{category=\"%s\"} %d\n", name, m.IO.BytesWritten[i])
	}
	fmt.Fprintf(w, "# HELP pebblesdb_io_read_bytes_total Bytes read per file category.\n# TYPE pebblesdb_io_read_bytes_total counter\n")
	for i, name := range cats {
		fmt.Fprintf(w, "pebblesdb_io_read_bytes_total{category=\"%s\"} %d\n", name, m.IO.BytesRead[i])
	}
	c("pebblesdb_user_written_bytes_total", "Application key+value payload written.", m.UserBytesWritten)
	fmt.Fprintf(w, "# HELP pebblesdb_write_amplification Total write IO / user bytes written.\n# TYPE pebblesdb_write_amplification gauge\npebblesdb_write_amplification %g\n",
		m.WriteAmplification())
}
