package pebblesdb

import "pebblesdb/internal/engine"

// Iterator walks live user keys in ascending order, hiding deleted keys
// and old versions. It is not safe for concurrent use. Always Close it.
//
// Range queries follow the paper's pattern (§2.1): SeekGE to the start
// key, then Next until past the end key.
type Iterator struct {
	it *engine.Iter
}

// NewIter returns an iterator over the latest committed state.
func (d *DB) NewIter() (*Iterator, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	it, err := d.eng.NewIter(nil)
	if err != nil {
		return nil, err
	}
	return &Iterator{it: it}, nil
}

// NewIterAt returns an iterator over a snapshot.
func (d *DB) NewIterAt(snap *Snapshot) (*Iterator, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	it, err := d.eng.NewIter(snap.s)
	if err != nil {
		return nil, err
	}
	return &Iterator{it: it}, nil
}

// First positions at the smallest key.
func (i *Iterator) First() { i.it.First() }

// SeekGE positions at the first key >= key.
func (i *Iterator) SeekGE(key []byte) { i.it.SeekGE(key) }

// Next advances to the next key.
func (i *Iterator) Next() { i.it.Next() }

// Valid reports whether the iterator is positioned on an entry.
func (i *Iterator) Valid() bool { return i.it.Valid() }

// Key returns the current key; valid until the next positioning call.
func (i *Iterator) Key() []byte { return i.it.Key() }

// Value returns the current value; valid until the next positioning call.
func (i *Iterator) Value() []byte { return i.it.Value() }

// Error returns the first error encountered.
func (i *Iterator) Error() error { return i.it.Error() }

// Close releases the iterator. Must be called exactly once.
func (i *Iterator) Close() error { return i.it.Close() }
