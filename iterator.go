package pebblesdb

import "pebblesdb/internal/engine"

// Iterator walks live user keys in key order — forward or backward —
// hiding deleted keys and old versions, and staying within the bounds it
// was created with. It is not safe for concurrent use. Always Close it.
//
// Forward range queries follow the paper's pattern (§2.1): SeekGE to the
// start key, then Next until past the end key (or set UpperBound and run
// until !Valid()). Reverse scans mirror it: SeekLT (or Last) then Prev.
// Next and Prev may be freely interleaved; direction switches are handled
// by the merging iterator underneath.
type Iterator struct {
	it *engine.Iter
}

// NewIter returns an iterator over the latest committed state. A nil opts
// iterates everything; bounds restrict the iterator to [LowerBound,
// UpperBound) and prune non-overlapping guards and sstables before any IO;
// opts.Prefix additionally restricts it to keys with that prefix and (at
// the store's PrefixBloomLength) skips sstables whose prefix filter rules
// the prefix out; opts.Snapshot pins the view.
func (d *DB) NewIter(opts *IterOptions) (*Iterator, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	var eo engine.IterOptions
	if opts != nil {
		eo.Lower = opts.LowerBound
		eo.Upper = opts.UpperBound
		eo.Prefix = opts.Prefix
		if opts.Snapshot != nil {
			eo.Snapshot = opts.Snapshot.s
		}
	}
	it, err := d.eng.NewIter(&eo)
	if err != nil {
		return nil, err
	}
	return &Iterator{it: it}, nil
}

// NewIterAt returns an iterator over a snapshot.
//
// Deprecated: use NewIter(&IterOptions{Snapshot: snap}).
func (d *DB) NewIterAt(snap *Snapshot) (*Iterator, error) {
	return d.NewIter(&IterOptions{Snapshot: snap})
}

// First positions at the smallest key within bounds.
func (i *Iterator) First() { i.it.First() }

// Last positions at the largest key within bounds.
func (i *Iterator) Last() { i.it.Last() }

// SeekGE positions at the first key >= key (clamped to LowerBound).
func (i *Iterator) SeekGE(key []byte) { i.it.SeekGE(key) }

// SeekLT positions at the last key < key (clamped to UpperBound).
func (i *Iterator) SeekLT(key []byte) { i.it.SeekLT(key) }

// Next advances to the next key. It must only be called when Valid.
func (i *Iterator) Next() { i.it.Next() }

// Prev moves back to the previous key. It must only be called when Valid.
func (i *Iterator) Prev() { i.it.Prev() }

// Valid reports whether the iterator is positioned on an entry.
func (i *Iterator) Valid() bool { return i.it.Valid() }

// Key returns the current key; valid until the next positioning call.
func (i *Iterator) Key() []byte { return i.it.Key() }

// Value returns the current value; valid until the next positioning call.
func (i *Iterator) Value() []byte { return i.it.Value() }

// Error returns the first error encountered.
func (i *Iterator) Error() error { return i.it.Error() }

// Close releases the iterator. Must be called exactly once.
func (i *Iterator) Close() error { return i.it.Close() }
