package pebblesdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"pebblesdb/internal/vfs"
)

// eraseRange removes every model key in [lo, hi) — the model analogue of
// DeleteRange (a sorted map with interval erase, here a plain map walk).
func eraseRange(model map[string]string, lo, hi string) {
	for k := range model {
		if k >= lo && k < hi {
			delete(model, k)
		}
	}
}

// TestModelEquivalence applies a long random operation sequence to the
// store and an in-memory model, checking gets, scans and snapshot reads
// agree at every step boundary. This is the main end-to-end correctness
// property for both engines. DeleteRange participates alongside point
// writes, so range tombstones are exercised against the memtable, flushed
// tables and every compaction shape the sequence produces.
func TestModelEquivalence(t *testing.T) {
	for _, preset := range []Preset{PresetPebblesDB, PresetHyperLevelDB, PresetPebblesDB1} {
		preset := preset
		t.Run(preset.String(), func(t *testing.T) {
			opts := testOptions(preset)
			opts.PrefixBloomLength = 5 // "keyNN": length-5 prefix scans hit the filters
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			rng := rand.New(rand.NewSource(1234))
			model := map[string]string{}

			type snapState struct {
				snap  *Snapshot
				model map[string]string
			}
			var snaps []snapState

			checkScan := func() {
				it, err := db.NewIter(nil)
				if err != nil {
					t.Fatal(err)
				}
				defer it.Close()
				var want []string
				for k := range model {
					want = append(want, k)
				}
				sort.Strings(want)
				i := 0
				for it.First(); it.Valid(); it.Next() {
					if i >= len(want) {
						t.Fatalf("scan yielded extra key %q", it.Key())
					}
					if string(it.Key()) != want[i] {
						t.Fatalf("scan pos %d: got %q want %q", i, it.Key(), want[i])
					}
					if string(it.Value()) != model[want[i]] {
						t.Fatalf("scan %q: value %q want %q", it.Key(), it.Value(), model[want[i]])
					}
					i++
				}
				if i != len(want) {
					t.Fatalf("scan yielded %d keys, want %d", i, len(want))
				}
			}

			// checkPrefixScan: prefix iteration is the bounded-scan model —
			// the live keys sharing the prefix, in order. snap and smodel,
			// when non-nil, pin the iteration to a snapshot and its model
			// copy, so prefix scans are also checked across range-del
			// tombstones applied after the snapshot.
			checkPrefixScan := func(prefix string, snap *Snapshot, smodel map[string]string) {
				t.Helper()
				it, err := db.NewIter(&IterOptions{Prefix: []byte(prefix), Snapshot: snap})
				if err != nil {
					t.Fatal(err)
				}
				defer it.Close()
				var want []string
				for k := range smodel {
					if strings.HasPrefix(k, prefix) {
						want = append(want, k)
					}
				}
				sort.Strings(want)
				i := 0
				for it.First(); it.Valid(); it.Next() {
					if i >= len(want) {
						t.Fatalf("prefix %q scan yielded extra key %q", prefix, it.Key())
					}
					if string(it.Key()) != want[i] {
						t.Fatalf("prefix %q scan pos %d: got %q want %q", prefix, i, it.Key(), want[i])
					}
					if string(it.Value()) != smodel[want[i]] {
						t.Fatalf("prefix %q scan %q: value %q want %q", prefix, it.Key(), it.Value(), smodel[want[i]])
					}
					i++
				}
				if i != len(want) {
					t.Fatalf("prefix %q scan yielded %d keys, want %d", prefix, i, len(want))
				}
				if err := it.Error(); err != nil {
					t.Fatal(err)
				}
			}

			const ops = 30000
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("key%05d", rng.Intn(4000))
				switch rng.Intn(11) {
				case 10:
					// Range deletion: small windows often, an occasional
					// wide sweep spanning many guards.
					lo := rng.Intn(4000)
					span := 1 + rng.Intn(40)
					if rng.Intn(20) == 0 {
						span = 500 + rng.Intn(1500)
					}
					start := fmt.Sprintf("key%05d", lo)
					end := fmt.Sprintf("key%05d", lo+span)
					eraseRange(model, start, end)
					if err := db.DeleteRange([]byte(start), []byte(end)); err != nil {
						t.Fatal(err)
					}
				case 0, 1, 2, 3:
					v := fmt.Sprintf("val%d", i)
					model[k] = v
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
				case 4, 5:
					delete(model, k)
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
				case 6:
					// Batched multi-op, occasionally mixing a DeleteRange
					// between point writes so intra-batch sequencing (a set
					// after the range-delete survives it) is exercised.
					b := db.NewBatch()
					for j := 0; j < 5; j++ {
						kk := fmt.Sprintf("key%05d", rng.Intn(4000))
						switch {
						case rng.Intn(10) == 0:
							lo := rng.Intn(4000)
							start := fmt.Sprintf("key%05d", lo)
							end := fmt.Sprintf("key%05d", lo+1+rng.Intn(30))
							eraseRange(model, start, end)
							b.DeleteRange([]byte(start), []byte(end))
						case rng.Intn(2) == 0:
							v := fmt.Sprintf("bval%d-%d", i, j)
							model[kk] = v
							b.Set([]byte(kk), []byte(v))
						default:
							delete(model, kk)
							b.Delete([]byte(kk))
						}
					}
					if err := db.Apply(b, nil); err != nil {
						t.Fatal(err)
					}
				case 7:
					got, ok, err := db.Get([]byte(k), nil)
					if err != nil {
						t.Fatal(err)
					}
					want, wantOk := model[k]
					if ok != wantOk || (ok && string(got) != want) {
						t.Fatalf("op %d: get %q = (%q,%v), want (%q,%v)", i, k, got, ok, want, wantOk)
					}
				case 8:
					if len(snaps) < 3 && rng.Intn(4) == 0 {
						mc := make(map[string]string, len(model))
						for mk, mv := range model {
							mc[mk] = mv
						}
						snaps = append(snaps, snapState{db.NewSnapshot(), mc})
					}
				case 9:
					if len(snaps) > 0 {
						s := snaps[rng.Intn(len(snaps))]
						got, ok, err := db.GetAt([]byte(k), s.snap)
						if err != nil {
							t.Fatal(err)
						}
						want, wantOk := s.model[k]
						if ok != wantOk || (ok && string(got) != want) {
							t.Fatalf("op %d: snapshot get %q = (%q,%v), want (%q,%v)",
								i, k, got, ok, want, wantOk)
						}
					}
				}
				if i%10000 == 9999 {
					checkScan()
					plen := 4 + rng.Intn(3)
					checkPrefixScan(fmt.Sprintf("key%05d", rng.Intn(4000))[:plen], nil, model)
					if len(snaps) > 0 {
						s := snaps[rng.Intn(len(snaps))]
						checkPrefixScan(fmt.Sprintf("key%05d", rng.Intn(4000))[:5], s.snap, s.model)
					}
				}
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
			checkScan()
			checkPrefixScan(fmt.Sprintf("key%05d", rng.Intn(4000))[:5], nil, model)
			for _, s := range snaps {
				checkPrefixScan(fmt.Sprintf("key%05d", rng.Intn(4000))[:5], s.snap, s.model)
				s.snap.Close()
			}
		})
	}
}

// TestRangeDelSurvivesOutputCuts pins a compaction regression: a tombstone
// spanning many size-cut output tables must keep covering every key in
// every output while a snapshot forces the covered points to be retained.
// (The original bug: the leveled compaction reused its cut-boundary buffer
// while the sstable writer still aliased it as clipped tombstone starts,
// so middle output tables silently lost coverage between the previous
// boundary and their first key and the retained points resurrected.)
func TestRangeDelSurvivesOutputCuts(t *testing.T) {
	for _, preset := range []Preset{PresetHyperLevelDB, PresetPebblesDB} {
		t.Run(preset.String(), func(t *testing.T) {
			o := testOptions(preset)
			// Large memtable so flushes happen only on demand, small
			// target files so one compaction cuts many outputs inside the
			// tombstone's span.
			o.MemtableSize = 1 << 20
			db, err := Open("cuts", o)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 300)
			// Three L0 tables of points.
			for j := 0; j < 3; j++ {
				for i := j * 2000; i < (j+1)*2000; i++ {
					if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), val); err != nil {
						t.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			// The snapshot pins every covered point through the coming
			// compactions, so only the tombstones mask them.
			snap := db.NewSnapshot()
			defer snap.Close()
			// A wide tombstone, flushed as the L0 table that trips the
			// compaction trigger: the compaction merges it with the point
			// tables and must clip it to every size-cut output.
			if err := db.DeleteRange([]byte("k00010"), []byte("k05900")); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			check := func(stage string) {
				t.Helper()
				for i := 0; i < 6000; i++ {
					k := fmt.Sprintf("k%05d", i)
					_, ok, err := db.Get([]byte(k), nil)
					if err != nil {
						t.Fatal(err)
					}
					want := i < 10 || i >= 5900
					if ok != want {
						t.Fatalf("%s: get %s ok=%v want %v", stage, k, ok, want)
					}
					if _, sok, _ := db.GetAt([]byte(k), snap); !sok {
						t.Fatalf("%s: snapshot lost %s", stage, k)
					}
				}
				it, err := db.NewIter(nil)
				if err != nil {
					t.Fatal(err)
				}
				defer it.Close()
				n := 0
				for it.First(); it.Valid(); it.Next() {
					n++
				}
				if n != 110 {
					t.Fatalf("%s: scan found %d live keys, want 110", stage, n)
				}
			}
			check("after L0 compaction")
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
			check("fully compacted")
		})
	}
}

// TestQuickPutGetRoundtrip is a testing/quick property: any key/value pair
// written is readable, including empty and binary keys.
func TestQuickPutGetRoundtrip(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	err = quick.Check(func(key, value []byte) bool {
		if len(key) == 0 {
			key = []byte{0} // empty user keys are legal but collide often
		}
		if err := db.Put(key, value); err != nil {
			return false
		}
		got, ok, err := db.Get(key, nil)
		return err == nil && ok && bytes.Equal(got, value)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanOrdering is a testing/quick property: after inserting any
// key set, a full scan yields exactly the distinct keys in sorted order.
func TestQuickScanOrdering(t *testing.T) {
	err := quick.Check(func(keys [][]byte) bool {
		db, err := Open("db", testOptions(PresetPebblesDB))
		if err != nil {
			return false
		}
		defer db.Close()
		want := map[string]bool{}
		for _, k := range keys {
			if len(k) == 0 {
				continue
			}
			if err := db.Put(k, []byte("v")); err != nil {
				return false
			}
			want[string(k)] = true
		}
		it, err := db.NewIter(nil)
		if err != nil {
			return false
		}
		defer it.Close()
		var got []string
		for it.First(); it.Valid(); it.Next() {
			got = append(got, string(it.Key()))
		}
		if len(got) != len(want) {
			return false
		}
		for i, k := range got {
			if !want[k] {
				return false
			}
			if i > 0 && got[i-1] >= k {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSeekGESemantics verifies the iterator contract at boundaries.
func TestSeekGESemantics(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, k := range []string{"b", "d", "f"} {
		db.Put([]byte(k), []byte("v"+k))
	}
	db.CompactAll()

	it, err := db.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"},
	}
	for _, c := range cases {
		it.SeekGE([]byte(c.seek))
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekGE(%q): got %q valid=%v, want %q", c.seek, it.Key(), it.Valid(), c.want)
		}
	}
	it.SeekGE([]byte("g"))
	if it.Valid() {
		t.Fatal("SeekGE past the end should be invalid")
	}
}

var _ = vfs.NewMem
