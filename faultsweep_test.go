package pebblesdb

import (
	"errors"
	"fmt"
	"testing"

	"pebblesdb/internal/vfs"
)

// sweepPresets are the two configurations the paper's evaluation centers
// on; between them they cover both tree kinds (FLSM and leveled).
var sweepPresets = []Preset{PresetPebblesDB, PresetHyperLevelDB}

// sweepOptions are small enough that the workload exercises flush,
// manifest appends and compaction in a few hundred filesystem operations.
func sweepOptions(p Preset, fs vfs.FS) *Options {
	o := testOptions(p)
	o.MemtableSize = 8 << 10
	o.WithFS(fs)
	return o
}

// verifyOptions reopen a swept store with background compaction disabled,
// so the post-recovery file listing is stable while the test inspects it.
func verifyOptions(p Preset, fs vfs.FS) *Options {
	o := sweepOptions(p, fs)
	o.L0CompactionTrigger = 1 << 20
	o.L0SlowdownTrigger = 1 << 20
	o.L0StopTrigger = 1 << 21
	o.SeekCompactionThreshold = -1
	o.SizeRatioPct = -1
	return o
}

// sweepWorkload runs a deterministic mixed workload — puts, sync batches,
// deletes, a range deletion, flushes, reads — and returns the keys whose
// durable (sync) commit was acknowledged with nil. Operations keep being
// issued after the first failure: everything after an injected fault must
// fail cleanly (or succeed), never panic or wedge.
func sweepWorkload(db *DB) (acked map[string]string, sawErr error) {
	acked = make(map[string]string)
	note := func(err error) {
		if err != nil && sawErr == nil {
			sawErr = err
		}
	}
	key := func(r, i int) []byte { return []byte(fmt.Sprintf("r%d-k%03d", r, i)) }
	val := func(r, i int) []byte { return []byte(fmt.Sprintf("v%d-%03d", r, i)) }
	for r := 0; r < 3; r++ {
		for i := 0; i < 20; i++ {
			note(db.Put(key(r, i), val(r, i)))
		}
		// One durable batch per round: these are the writes whose loss
		// after a clean acknowledgment would be a durability bug.
		b := db.NewBatch()
		for i := 20; i < 24; i++ {
			b.Set(key(r, i), val(r, i))
		}
		if err := db.Apply(b, Sync); err != nil {
			note(err)
		} else {
			for i := 20; i < 24; i++ {
				acked[string(key(r, i))] = string(val(r, i))
			}
		}
		note(db.Delete(key(r, 0)))
		note(db.Flush())
		if _, _, err := db.Get(key(r, 1), nil); err != nil {
			note(err)
		}
	}
	// Drop round 1 entirely — including its acked keys, which the
	// durability model must stop expecting.
	if err := db.DeleteRange([]byte("r1-"), []byte("r1/")); err != nil {
		note(err)
	} else {
		for k := range acked {
			if len(k) >= 3 && k[:3] == "r1-" {
				delete(acked, k)
			}
		}
	}
	note(db.Flush())
	return acked, sawErr
}

// assertNoTempFiles fails the test if the store directory holds leftover
// .tmp files — partial CURRENT swaps must be cleaned up on their failure
// path, not leaked.
func assertNoTempFiles(t *testing.T, fs vfs.FS, dir, when string) {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		return // directory never created (fault hit Open itself)
	}
	for _, name := range names {
		if len(name) > 4 && name[len(name)-4:] == ".tmp" {
			t.Errorf("%s: orphan temp file %s", when, name)
		}
	}
}

// verifyAcked reopens the store healthy and checks that every
// acknowledged durable write survived, then that the store accepts new
// writes — full recovery, not just read-back.
func verifyAcked(t *testing.T, p Preset, mem vfs.FS, acked map[string]string, when string) {
	t.Helper()
	db, err := Open("db", verifyOptions(p, mem))
	if err != nil {
		t.Fatalf("%s: healthy reopen failed: %v", when, err)
	}
	defer db.Close()
	for k, want := range acked {
		v, found, err := db.Get([]byte(k), nil)
		if err != nil || !found || string(v) != want {
			t.Fatalf("%s: acked key %q lost: %q found=%v err=%v", when, k, v, found, err)
		}
	}
	if db.ReadOnly() {
		t.Fatalf("%s: healthy reopen is read-only", when)
	}
	if err := db.Put([]byte("post-recovery"), []byte("v")); err != nil {
		t.Fatalf("%s: write after recovery: %v", when, err)
	}
	assertNoTempFiles(t, mem, "db", when+" (after reopen)")
}

// TestFaultSweep is the metamorphic IO-failure sweep: run the workload
// once against a healthy filesystem to count its operations, then re-run
// it once per operation index with a one-shot fault injected at that
// index. Whatever the index, the run must end in a clean error or a
// read-only degradation — never a panic, a wedge, or a lost acknowledged
// sync write — and a healthy reopen must recover completely with no
// orphan files.
func TestFaultSweep(t *testing.T) {
	for _, p := range sweepPresets {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			// Recording run: learn the workload's operation count.
			rec := vfs.NewErr(vfs.NewMem())
			db, err := Open("db", sweepOptions(p, rec))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sweepWorkload(db); err != nil {
				t.Fatalf("healthy run errored: %v", err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			total := rec.OpCount()
			if total < 50 {
				t.Fatalf("implausibly few fs ops recorded: %d", total)
			}

			stride := int64(1)
			if testing.Short() {
				stride = total/40 + 1
			}
			t.Logf("sweeping %d fs ops, stride %d", total, stride)
			for i := int64(0); i < total; i += stride {
				mem := vfs.NewMem()
				efs := vfs.NewErr(mem)
				efs.FailAt(i, vfs.OpAll, nil, false)
				db, err := Open("db", sweepOptions(p, efs))
				var acked map[string]string
				if err == nil {
					acked, _ = sweepWorkload(db)
					if db.ReadOnly() {
						// Degraded stores must reject writes with the
						// sentinel, not a generic failure.
						if werr := db.Put([]byte("x"), []byte("x")); !errors.Is(werr, ErrReadOnly) {
							t.Fatalf("op %d: read-only store rejected write with %v", i, werr)
						}
					}
					db.Close() // tolerate errors: the store may be degraded
				}
				if efs.Injected() == 0 {
					// The workload finished under this index without
					// reaching it (shorter path). Nothing to verify.
					continue
				}
				assertNoTempFiles(t, mem, "db", fmt.Sprintf("op %d (after close)", i))
				efs.Clear()
				verifyAcked(t, p, mem, acked, fmt.Sprintf("op %d", i))
				if t.Failed() {
					return
				}
			}
		})
	}
}

// TestFaultSweepENOSPC models the full-disk lifecycle end to end through
// the public API: the disk fills mid-workload, writes degrade to
// read-only, reads keep serving; space is freed, Resume restores
// writability, and the remainder of the workload plus every acknowledged
// write survives a reopen.
func TestFaultSweepENOSPC(t *testing.T) {
	for _, p := range sweepPresets {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			mem := vfs.NewMem()
			efs := vfs.NewErr(mem)
			db, err := Open("db", sweepOptions(p, efs))
			if err != nil {
				t.Fatal(err)
			}
			b := db.NewBatch()
			b.Set([]byte("acked"), []byte("v"))
			if err := db.Apply(b, Sync); err != nil {
				t.Fatal(err)
			}

			efs.SetFull(true)
			var failed bool
			for i := 0; i < 200 && !failed; i++ {
				failed = db.Put([]byte(fmt.Sprintf("fill%04d", i)), []byte("0123456789abcdef")) != nil
			}
			if !failed {
				// Small memtable: a flush (and with it the failure) is
				// forced well within the loop, but make sure.
				failed = db.Flush() != nil
			}
			if !failed {
				t.Fatal("no operation failed on a full disk")
			}
			if !db.ReadOnly() {
				t.Fatal("store not read-only after ENOSPC")
			}
			if err := db.Put([]byte("x"), []byte("x")); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("write on full disk: %v, want ErrReadOnly", err)
			}
			if _, found, err := db.Get([]byte("acked"), nil); err != nil || !found {
				t.Fatalf("read under ENOSPC: found=%v err=%v", found, err)
			}

			efs.SetFull(false)
			if err := db.Resume(); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if db.ReadOnly() {
				t.Fatal("still read-only after Resume")
			}
			b = db.NewBatch()
			b.Set([]byte("acked2"), []byte("v"))
			if err := db.Apply(b, Sync); err != nil {
				t.Fatalf("sync write after resume: %v", err)
			}
			m := db.Metrics()
			if m.Resumes != 1 || m.BgRetryableErrors == 0 {
				t.Fatalf("failure metrics not recorded: resumes=%d retryable=%d", m.Resumes, m.BgRetryableErrors)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("close after resume: %v", err)
			}

			verifyAcked(t, p, mem, map[string]string{"acked": "v", "acked2": "v"}, "enospc")
		})
	}
}
