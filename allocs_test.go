package pebblesdb_test

import (
	"testing"

	"pebblesdb"
	"pebblesdb/internal/harness"
	"pebblesdb/internal/race"
	"pebblesdb/internal/vfs"
)

// openWarmDB builds a compacted store whose block cache holds the whole
// dataset, then warms every structure a point read touches.
func openWarmDB(t testing.TB, engine pebblesdb.Engine, n int) *pebblesdb.DB {
	t.Helper()
	o := pebblesdb.PresetPebblesDB.Options()
	o.Engine = engine
	harness.Scale(o, 16)
	o.BlockCacheSize = 64 << 20 // hold the entire dataset decompressed
	o.WithFS(vfs.NewMem())
	db, err := pebblesdb.Open("allocbench", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
		db.Close()
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		db.Close()
		t.Fatal(err)
	}
	// Warm the table cache, block cache and bloom filters.
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = harness.KeyAt(key, uint64(i))
		if _, _, err := db.Get(key, nil); err != nil {
			db.Close()
			t.Fatal(err)
		}
	}
	return db
}

// TestGetAllocs pins the end-to-end point-read allocation budgets: on a
// warm cache, DB.GetTo with a reusable destination buffer is allocation
// free, and DB.Get pays only the value copy. CI fails when a regression
// pushes either over budget.
func TestGetAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 20_000
	for _, eng := range []struct {
		name   string
		engine pebblesdb.Engine
	}{{"flsm", pebblesdb.EngineFLSM}, {"leveled", pebblesdb.EngineLeveled}} {
		t.Run(eng.name, func(t *testing.T) {
			db := openWarmDB(t, eng.engine, n)
			defer db.Close()

			key := harness.KeyAt(nil, 42)
			buf := make([]byte, 0, 256)

			// GetTo with a caller buffer: the entire read stack reuses
			// pooled scratch state, so the steady state is zero allocations.
			allocs := testing.AllocsPerRun(200, func() {
				v, ok, err := db.GetTo(key, buf, nil)
				if err != nil || !ok {
					t.Fatalf("GetTo: ok=%v err=%v", ok, err)
				}
				buf = v[:0]
			})
			if allocs > 0 {
				t.Errorf("DB.GetTo allocs/op = %v, want 0", allocs)
			}

			// Plain Get allocates only the caller-owned value copy
			// (budget 2 leaves slack for one pool refill under GC).
			allocs = testing.AllocsPerRun(200, func() {
				if _, ok, err := db.Get(key, nil); err != nil || !ok {
					t.Fatalf("Get: ok=%v err=%v", ok, err)
				}
			})
			if allocs > 2 {
				t.Errorf("DB.Get allocs/op = %v, want <= 2", allocs)
			}

			// A missing key (bloom filters rule every table out) must also
			// be allocation-free with a caller buffer.
			missing := harness.KeyAt(nil, uint64(n)*10+7)
			allocs = testing.AllocsPerRun(200, func() {
				if _, ok, err := db.GetTo(missing, buf, nil); err != nil || ok {
					t.Fatalf("GetTo(missing): ok=%v err=%v", ok, err)
				}
			})
			if allocs > 0 {
				t.Errorf("DB.GetTo(miss) allocs/op = %v, want 0", allocs)
			}

			// A key masked by a range tombstone must return not-found with
			// zero allocations too — first with the tombstone resident in
			// the memtable (one atomic load + binary search), then flushed
			// into an sstable's range-del block (resident list consulted
			// through the table's metadata span check).
			coveredLo, coveredHi := harness.KeyAt(nil, 100), harness.KeyAt(nil, 200)
			covered := harness.KeyAt(nil, 150)
			if err := db.DeleteRange(coveredLo, coveredHi); err != nil {
				t.Fatal(err)
			}
			for _, stage := range []string{"memtable", "flushed"} {
				if stage == "flushed" {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
					// Warm the covered path once (table cache, resident list).
					if _, ok, err := db.GetTo(covered, buf, nil); err != nil || ok {
						t.Fatalf("GetTo(covered) warmup: ok=%v err=%v", ok, err)
					}
				}
				allocs = testing.AllocsPerRun(200, func() {
					if _, ok, err := db.GetTo(covered, buf, nil); err != nil || ok {
						t.Fatalf("GetTo(covered %s): ok=%v err=%v", stage, ok, err)
					}
				})
				if allocs > 0 {
					t.Errorf("DB.GetTo(covered, %s) allocs/op = %v, want 0", stage, allocs)
				}
			}
		})
	}
}

// TestIterAllocs pins the warm scan-path allocation budgets: once an
// iterator has done its first seek, further SeekGE/Next/Value calls reuse
// the pooled block cursors, heap entries and key buffers end-to-end, so
// the steady state is zero allocations (budget 2 leaves slack for a pool
// refill under GC, per the acceptance bar).
func TestIterAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 20_000
	for _, eng := range []struct {
		name   string
		engine pebblesdb.Engine
	}{{"flsm", pebblesdb.EngineFLSM}, {"leveled", pebblesdb.EngineLeveled}} {
		t.Run(eng.name, func(t *testing.T) {
			db := openWarmDB(t, eng.engine, n)
			defer db.Close()

			it, err := db.NewIter(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()

			// Warm the iterator: the first seek opens table iterators and
			// sizes the scratch buffers; everything after reuses them.
			seekKey := harness.KeyAt(nil, 123)
			it.SeekGE(seekKey)
			if !it.Valid() {
				t.Fatal("warmup seek found nothing")
			}
			it.Next()
			it.Value()

			// Warm SeekGE landing in already-open tables.
			allocs := testing.AllocsPerRun(200, func() {
				it.SeekGE(seekKey)
				if !it.Valid() {
					t.Fatal("seek found nothing")
				}
			})
			if allocs > 2 {
				t.Errorf("warm SeekGE allocs/op = %v, want <= 2", allocs)
			}

			// Warm SeekGE+Next+Value loop — the scanshort shape.
			allocs = testing.AllocsPerRun(200, func() {
				it.SeekGE(seekKey)
				for i := 0; i < 4 && it.Valid(); i++ {
					_ = it.Key()
					_ = it.Value()
					it.Next()
				}
			})
			if allocs > 2 {
				t.Errorf("warm SeekGE+Next+Value allocs/op = %v, want <= 2", allocs)
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}

			// A warm prefix iterator: reusing one iterator is the server's
			// pooled-scan shape; a fresh NewIter per prefix costs only the
			// pooled-iterator checkout.
			prefix := seekKey[:8]
			pit, err := db.NewIter(&pebblesdb.IterOptions{Prefix: prefix})
			if err != nil {
				t.Fatal(err)
			}
			defer pit.Close()
			pit.First()
			allocs = testing.AllocsPerRun(200, func() {
				pit.SeekGE(prefix)
				for pit.Valid() {
					_ = pit.Key()
					_ = pit.Value()
					pit.Next()
				}
			})
			if allocs > 2 {
				t.Errorf("warm prefix scan allocs/op = %v, want <= 2", allocs)
			}
			if err := pit.Error(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// BenchmarkGetTo is the allocation-free read loop: reusing the destination
// buffer across calls exercises the pooled scratch end to end.
func BenchmarkGetTo(b *testing.B) {
	db := openWarmDB(b, pebblesdb.EngineFLSM, 20_000)
	defer db.Close()
	key := make([]byte, 0, 16)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = harness.KeyAt(key, uint64(i%20_000))
		v, _, err := db.GetTo(key, buf, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(v) > 0 {
			buf = v[:0]
		}
	}
}
