package pebblesdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pebblesdb/internal/vfs"
)

// TestConcurrentCompactionStress saturates the parallel compaction
// scheduler under the race detector: several writer goroutines hammer an
// FLSM store and a leveled store with the same partitioned workload
// (point writes, deletes and range deletes), then the two stores and an
// in-memory model must agree key-for-key. Tiny memtables, single-guard
// compaction units and an elevated worker count keep many compaction
// units in flight on both trees for the whole run, so claim/release,
// shared output partitions and ordered manifest appends are all exercised
// concurrently. Skipped in -short; CI runs it with -race as a dedicated
// step.
func TestConcurrentCompactionStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}

	newOpts := func(p Preset) *Options {
		o := p.Options()
		o.WithFS(vfs.NewMem())
		// Shred the store into many small units so the scheduler always
		// has claimable work and workers overlap.
		o.MemtableSize = 16 << 10
		o.LevelBaseBytes = 32 << 10
		o.TargetFileSize = 8 << 10
		o.TopLevelBits = 6
		o.BitDecrement = 1
		o.MaxSSTablesPerGuard = 2
		o.L0CompactionTrigger = 2
		o.L0SlowdownTrigger = 16
		o.L0StopTrigger = 24
		o.MaxCompactionConcurrency = 4
		o.CompactionUnitGuards = 1
		return o
	}
	flsmDB, err := Open("flsm", newOpts(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer flsmDB.Close()
	levDB, err := Open("leveled", newOpts(PresetHyperLevelDB))
	if err != nil {
		t.Fatal(err)
	}
	defer levDB.Close()

	// Each goroutine owns a key-space partition (its own prefix), so the
	// cross-store interleaving of other goroutines cannot change its final
	// state and the three replicas stay comparable.
	const writers = 4
	const opsPerWriter = 3000
	models := make([]map[string]string, writers)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for g := 0; g < writers; g++ {
		g := g
		models[g] = make(map[string]string)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			model := models[g]
			key := func(i int) string { return fmt.Sprintf("w%d-%04d", g, i) }
			for i := 0; i < opsPerWriter; i++ {
				switch n := rng.Intn(10); {
				case n < 7: // point write
					k := key(rng.Intn(500))
					v := fmt.Sprintf("v%d-%d", g, i)
					if err := flsmDB.Put([]byte(k), []byte(v)); err != nil {
						errCh <- err
						return
					}
					if err := levDB.Put([]byte(k), []byte(v)); err != nil {
						errCh <- err
						return
					}
					model[k] = v
				case n < 9: // point delete
					k := key(rng.Intn(500))
					if err := flsmDB.Delete([]byte(k)); err != nil {
						errCh <- err
						return
					}
					if err := levDB.Delete([]byte(k)); err != nil {
						errCh <- err
						return
					}
					delete(model, k)
				default: // range delete over a small interval
					lo := rng.Intn(480)
					hi := lo + 1 + rng.Intn(20)
					start, end := key(lo), key(hi)
					if err := flsmDB.DeleteRange([]byte(start), []byte(end)); err != nil {
						errCh <- err
						return
					}
					if err := levDB.DeleteRange([]byte(start), []byte(end)); err != nil {
						errCh <- err
						return
					}
					for k := range model {
						if k >= start && k < end {
							delete(model, k)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for _, db := range []*DB{flsmDB, levDB} {
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
	}

	// Fold the per-writer models and compare all three replicas.
	model := make(map[string]string)
	for _, m := range models {
		for k, v := range m {
			model[k] = v
		}
	}
	for name, db := range map[string]*DB{"flsm": flsmDB, "leveled": levDB} {
		it, err := db.NewIter(nil)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for it.First(); it.Valid(); it.Next() {
			k, v := string(it.Key()), string(it.Value())
			if want, ok := model[k]; !ok {
				t.Errorf("%s: scan yielded key %q not in model", name, k)
			} else if v != want {
				t.Errorf("%s: key %q = %q, model %q", name, k, v, want)
			}
			count++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if count != len(model) {
			t.Errorf("%s: scan yielded %d keys, model has %d", name, count, len(model))
		}
	}

	fm := flsmDB.Metrics()
	t.Logf("flsm: %d units, peak %d inflight, intra-level peak %d, %d conflicts",
		fm.Tree.CompactionUnits, fm.Tree.PeakUnitsInflight,
		fm.Tree.MaxLevelParallelism(), fm.Tree.ClaimConflicts)
	if fm.Tree.CompactionUnits == 0 {
		t.Error("flsm scheduler claimed no units under sustained load")
	}
	lm := levDB.Metrics()
	t.Logf("leveled: %d units, peak %d inflight, intra-level peak %d, %d conflicts",
		lm.Tree.CompactionUnits, lm.Tree.PeakUnitsInflight,
		lm.Tree.MaxLevelParallelism(), lm.Tree.ClaimConflicts)
	if lm.Tree.CompactionUnits == 0 {
		t.Error("leveled scheduler claimed no units under sustained load")
	}
}
