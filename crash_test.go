package pebblesdb

import (
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/vfs"
)

// TestCrashRecoveryAtRandomPoints drives a workload against a
// crash-injecting filesystem, crashes at random points, reopens, and
// verifies that every write acknowledged with a sync survives and that
// recovered state is internally consistent (the §4.3.1 crash-recovery
// tests: "testing recovered data after crashing at randomly picked
// points").
func TestCrashRecoveryAtRandomPoints(t *testing.T) {
	for _, preset := range []Preset{PresetPebblesDB, PresetHyperLevelDB} {
		preset := preset
		t.Run(preset.String(), func(t *testing.T) {
			fs := vfs.NewCrash()
			rng := rand.New(rand.NewSource(99))

			// Durable tracks key -> value for synced writes; volatile holds
			// writes that may or may not survive.
			durable := map[string]string{}

			for round := 0; round < 5; round++ {
				// Each round runs in its own fenced view of the filesystem;
				// fencing before Crash models the death of the process so
				// the old instance's background goroutines cannot keep
				// writing into the recovered state.
				fence := vfs.NewFenced(fs)
				o := testOptions(preset)
				o.WithFS(fence)
				db, err := Open("db", o)
				if err != nil {
					t.Fatalf("round %d open: %v", round, err)
				}
				// Everything durable so far must be present.
				for k, v := range durable {
					got, ok, err := db.Get([]byte(k), nil)
					if err != nil || !ok || string(got) != v {
						t.Fatalf("round %d: durable key %q lost (got %q ok=%v err=%v)",
							round, k, got, ok, err)
					}
				}

				nOps := 500 + rng.Intn(2000)
				b := db.NewBatch()
				for i := 0; i < nOps; i++ {
					k := fmt.Sprintf("key%05d", rng.Intn(5000))
					v := fmt.Sprintf("r%d-%d", round, i)
					b.Reset()
					b.Set([]byte(k), []byte(v))
					if rng.Intn(20) == 0 {
						// Synced commit: must survive the crash.
						if err := db.ApplySync(b); err != nil {
							t.Fatal(err)
						}
						durable[k] = v
					} else {
						if err := db.Apply(b, nil); err != nil {
							t.Fatal(err)
						}
						// Unsynced writes that land before a later synced
						// write in the same WAL are also durable; tracking
						// that precisely requires write-order bookkeeping,
						// so only synced writes are asserted.
						delete(durable, k)
					}
				}
				// Crash without closing: background work may be mid-flight.
				fence.Fence()
				fs.Crash()
			}
		})
	}
}

// TestCrashDuringCompactionWindow forces flushes and compactions, crashing
// while they are likely in flight, and checks the store reopens with all
// explicitly flushed data.
func TestCrashDuringCompactionWindow(t *testing.T) {
	fs := vfs.NewCrash()
	fence := vfs.NewFenced(fs)
	o := testOptions(PresetPebblesDB)
	o.WithFS(fence)

	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	val := make([]byte, 256)
	for i := 0; i < 20000; i++ {
		rng.Read(val)
		if err := db.Put([]byte(fmt.Sprintf("key%06d", rng.Intn(100000))), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Compaction may be running right now; crash regardless.
	fence.Fence()
	fs.Crash()

	o2 := testOptions(PresetPebblesDB)
	o2.WithFS(fs)
	db2, err := Open("db", o2)
	if err != nil {
		t.Fatalf("reopen after mid-compaction crash: %v", err)
	}
	defer db2.Close()
	// The store must be readable and consistent: iterate everything.
	it, err := db2.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && string(prev) >= string(it.Key()) {
			t.Fatal("recovered iterator out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("flushed data lost after crash")
	}
}

// TestCrashRangeDelRecovery drives interleaved point writes and range
// deletions with random sync points against the crash-injecting
// filesystem, crashing between rounds — including immediately after
// kicking off a flush, so recovery sees range tombstones in the WAL, in
// mid-flight flush output, or both. The model tracks, per key, what a
// crash is allowed to reveal: a key whose last certain fate was a synced
// DeleteRange with no later write must stay absent (no resurrection), a
// key whose last op was a synced Set must keep its value, and keys touched
// by unsynced work afterwards are unconstrained.
func TestCrashRangeDelRecovery(t *testing.T) {
	const keySpace = 3000
	type fate int
	const (
		unknown fate = iota
		present      // synced set, value in val[k]
		deleted      // synced DeleteRange covered it, nothing written since
	)
	for _, preset := range []Preset{PresetPebblesDB, PresetHyperLevelDB} {
		preset := preset
		t.Run(preset.String(), func(t *testing.T) {
			fs := vfs.NewCrash()
			rng := rand.New(rand.NewSource(4242))
			state := make([]fate, keySpace)
			val := make([]string, keySpace)
			key := func(i int) string { return fmt.Sprintf("key%05d", i) }

			for round := 0; round < 6; round++ {
				fence := vfs.NewFenced(fs)
				o := testOptions(preset)
				o.WithFS(fence)
				db, err := Open("db", o)
				if err != nil {
					t.Fatalf("round %d open: %v", round, err)
				}
				for i := 0; i < keySpace; i++ {
					switch state[i] {
					case present:
						got, ok, err := db.Get([]byte(key(i)), nil)
						if err != nil || !ok || string(got) != val[i] {
							t.Fatalf("round %d: durable key %q lost (got %q ok=%v err=%v)",
								round, key(i), got, ok, err)
						}
					case deleted:
						if got, ok, _ := db.Get([]byte(key(i)), nil); ok {
							t.Fatalf("round %d: key %q resurrected after crash (= %q)",
								round, key(i), got)
						}
					}
				}

				nOps := 300 + rng.Intn(1000)
				b := db.NewBatch()
				for i := 0; i < nOps; i++ {
					if rng.Intn(10) == 0 {
						lo := rng.Intn(keySpace)
						span := 1 + rng.Intn(300)
						hi := lo + span
						if hi > keySpace {
							hi = keySpace
						}
						b.Reset()
						b.DeleteRange([]byte(key(lo)), []byte(key(hi)))
						sync := rng.Intn(3) == 0
						var wo *WriteOptions
						if sync {
							wo = Sync
						}
						if err := db.Apply(b, wo); err != nil {
							t.Fatal(err)
						}
						for k := lo; k < hi; k++ {
							if sync {
								// Every earlier version of k is masked by a
								// durable tombstone: k is provably absent.
								state[k] = deleted
							} else if state[k] == present {
								// The delete may or may not survive; either
								// way k cannot be asserted anymore.
								state[k] = unknown
							}
						}
						continue
					}
					k := rng.Intn(keySpace)
					v := fmt.Sprintf("r%d-%d", round, i)
					b.Reset()
					b.Set([]byte(key(k)), []byte(v))
					if rng.Intn(25) == 0 {
						if err := db.Apply(b, Sync); err != nil {
							t.Fatal(err)
						}
						state[k], val[k] = present, v
					} else {
						if err := db.Apply(b, nil); err != nil {
							t.Fatal(err)
						}
						state[k] = unknown
					}
				}
				if round%2 == 1 {
					// Kick off a flush and crash while it is (likely) still
					// writing: recovery must take the tombstones from the
					// WAL, never trusting the half-written table.
					go db.Flush()
				}
				fence.Fence()
				fs.Crash()
			}
		})
	}
}

// TestRepeatedCrashReopenCycles stresses the recovery path itself: many
// crash/reopen cycles with tiny workloads, verifying monotonic consistency
// of a synced counter key.
func TestRepeatedCrashReopenCycles(t *testing.T) {
	fs := vfs.NewCrash()
	last := -1
	for cycle := 0; cycle < 20; cycle++ {
		fence := vfs.NewFenced(fs)
		o := testOptions(PresetPebblesDB)
		o.WithFS(fence)
		db, err := Open("db", o)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if v, ok, _ := db.Get([]byte("counter"), nil); ok {
			var got int
			fmt.Sscanf(string(v), "%d", &got)
			if got < last {
				t.Fatalf("cycle %d: counter went backwards (%d < %d)", cycle, got, last)
			}
		} else if last >= 0 {
			t.Fatalf("cycle %d: synced counter lost", cycle)
		}
		b := db.NewBatch()
		b.Set([]byte("counter"), []byte(fmt.Sprintf("%d", cycle)))
		if err := db.ApplySync(b); err != nil {
			t.Fatal(err)
		}
		last = cycle
		for i := 0; i < 200; i++ {
			db.Put([]byte(fmt.Sprintf("noise%04d", i)), []byte("x"))
		}
		fence.Fence()
		fs.Crash()
	}
}
