package pebblesdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestIterDifferentialFLSMvsLeveled drives the same randomized
// Put/Delete/DeleteRange/flush/compact sequence through the FLSM engine
// and the leveled engine, and asserts that forward, reverse and bounded
// iteration return byte-identical results on both — and that both match an
// in-memory model. This is the v2 iterator contract's acceptance test: the
// two engines produce their streams through completely different iterator
// stacks (guard merges vs. level concatenation) and carry range tombstones
// through completely different compaction shapes (guard partitioning vs.
// size-based cuts), so agreement here pins the whole contract — including
// tombstone visibility under reverse and bounded iteration.
func TestIterDifferentialFLSMvsLeveled(t *testing.T) {
	// PrefixBloomLength 5 covers "keyNN" — prefix scans of exactly that
	// length exercise the per-table prefix filters, other lengths the
	// conservative (length-mismatch) path.
	flsmOpts := testOptions(PresetPebblesDB)
	flsmOpts.PrefixBloomLength = 5
	flsm, err := Open("diff-flsm", flsmOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer flsm.Close()
	leveledOpts := testOptions(PresetHyperLevelDB)
	leveledOpts.PrefixBloomLength = 5
	leveled, err := Open("diff-leveled", leveledOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer leveled.Close()

	dbs := []*DB{flsm, leveled}
	names := []string{"FLSM", "Leveled"}
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))

	sortedModel := func() []string {
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}

	collect := func(db *DB, opts *IterOptions, reverse bool) []string {
		t.Helper()
		it, err := db.NewIter(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out []string
		if reverse {
			for it.Last(); it.Valid(); it.Prev() {
				out = append(out, string(it.Key())+"="+string(it.Value()))
			}
		} else {
			for it.First(); it.Valid(); it.Next() {
				out = append(out, string(it.Key())+"="+string(it.Value()))
			}
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	reversed := func(s []string) []string {
		out := make([]string, len(s))
		for i, v := range s {
			out[len(s)-1-i] = v
		}
		return out
	}

	check := func(step int) {
		t.Helper()
		keys := sortedModel()
		want := make([]string, len(keys))
		for i, k := range keys {
			want[i] = k + "=" + model[k]
		}

		// Random bounds: sometimes nil, sometimes a sub-range.
		var lower, upper []byte
		if rng.Intn(2) == 0 {
			lower = []byte(fmt.Sprintf("key%05d", rng.Intn(4000)))
		}
		if rng.Intn(2) == 0 {
			upper = []byte(fmt.Sprintf("key%05d", rng.Intn(4000)))
		}
		var bounded []string
		for i, k := range keys {
			if (lower == nil || k >= string(lower)) && (upper == nil || k < string(upper)) {
				bounded = append(bounded, want[i])
			}
		}

		for d, db := range dbs {
			fwd := collect(db, nil, false)
			if fmt.Sprint(fwd) != fmt.Sprint(want) {
				t.Fatalf("step %d %s forward: got %d keys, want %d\ngot  %.300v\nwant %.300v",
					step, names[d], len(fwd), len(want), fwd, want)
			}
			rev := collect(db, nil, true)
			if fmt.Sprint(reversed(rev)) != fmt.Sprint(want) {
				t.Fatalf("step %d %s reverse: not the exact reverse of forward\nrev  %.300v",
					step, names[d], rev)
			}
			opts := &IterOptions{LowerBound: lower, UpperBound: upper}
			bf := collect(db, opts, false)
			if fmt.Sprint(bf) != fmt.Sprint(bounded) {
				t.Fatalf("step %d %s bounded [%q,%q) forward: got %d want %d\ngot  %.300v\nwant %.300v",
					step, names[d], lower, upper, len(bf), len(bounded), bf, bounded)
			}
			br := collect(db, opts, true)
			if fmt.Sprint(reversed(br)) != fmt.Sprint(bounded) {
				t.Fatalf("step %d %s bounded [%q,%q) reverse mismatch\ngot  %.300v\nwant %.300v",
					step, names[d], lower, upper, reversed(br), bounded)
			}
		}

		// Prefix iteration: a prefix scan must equal the model filtered to
		// keys with that prefix, forward and reverse, on both engines. Length
		// 5 hits the prefix bloom filters; 4 and 6 take the conservative
		// length-mismatch path.
		plen := 4 + rng.Intn(3)
		prefix := fmt.Sprintf("key%05d", rng.Intn(4000))[:plen]
		var pwant []string
		for i, k := range keys {
			if strings.HasPrefix(k, prefix) {
				pwant = append(pwant, want[i])
			}
		}
		popts := &IterOptions{Prefix: []byte(prefix)}
		for d, db := range dbs {
			pf := collect(db, popts, false)
			if fmt.Sprint(pf) != fmt.Sprint(pwant) {
				t.Fatalf("step %d %s prefix %q forward: got %d want %d\ngot  %.300v\nwant %.300v",
					step, names[d], prefix, len(pf), len(pwant), pf, pwant)
			}
			pr := collect(db, popts, true)
			if fmt.Sprint(reversed(pr)) != fmt.Sprint(pwant) {
				t.Fatalf("step %d %s prefix %q reverse mismatch\ngot  %.300v\nwant %.300v",
					step, names[d], prefix, reversed(pr), pwant)
			}
		}
	}

	const ops = 20000
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(4000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("val%d", i)
			model[k] = v
			for _, db := range dbs {
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
			}
		case 5, 6:
			delete(model, k)
			for _, db := range dbs {
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
			}
		case 8:
			if rng.Intn(4) != 0 {
				break // keep range deletes rarer than point ops
			}
			lo := rng.Intn(4000)
			span := 1 + rng.Intn(60)
			if rng.Intn(16) == 0 {
				span = 400 + rng.Intn(1200) // wide sweep across many guards
			}
			start := fmt.Sprintf("key%05d", lo)
			end := fmt.Sprintf("key%05d", lo+span)
			eraseRange(model, start, end)
			for _, db := range dbs {
				if err := db.DeleteRange([]byte(start), []byte(end)); err != nil {
					t.Fatal(err)
				}
			}
		case 7:
			if rng.Intn(20) == 0 {
				for _, db := range dbs {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
		default:
			// mutate-heavy phases between checks
		}
		if i%2500 == 2499 {
			check(i)
		}
	}

	// Fully compact both stores and re-verify: reverse iteration over a
	// compacted multi-guard FLSM store must return exactly the reverse of
	// forward iteration.
	for _, db := range dbs {
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
	}
	m := flsm.Metrics()
	guards := 0
	for _, g := range m.Tree.GuardsPerLevel {
		guards += g
	}
	if guards < 2 {
		t.Fatalf("FLSM store not multi-guard after compaction (guards=%d); test is too weak", guards)
	}
	check(ops)
}

// TestIterBoundsPruneIO checks the "bounds prune before IO" property: a
// tightly bounded scan over a fully compacted store must read a small
// fraction of the sstable bytes a full-store walk reads — the bounded
// iterator opens only the tables its range can touch. (A 100-key
// unbounded scan is no longer a useful comparison: since CompactAll
// settles everything into the bottom level and files open lazily, it
// reads as little as the bounded scan.)
func TestIterBoundsPruneIO(t *testing.T) {
	for _, preset := range []Preset{PresetPebblesDB, PresetHyperLevelDB} {
		t.Run(preset.String(), func(t *testing.T) {
			db, err := Open("prune", testOptions(preset))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 256)
			for i := 0; i < 20000; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}

			scan := func(opts *IterOptions, limit int) int64 {
				before := db.Metrics().IO.TotalRead()
				it, err := db.NewIter(opts)
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for it.First(); it.Valid() && n < limit; it.Next() {
					n++
				}
				it.Close()
				return int64(db.Metrics().IO.TotalRead() - before)
			}

			full := scan(nil, 20000)
			bounded := scan(&IterOptions{
				LowerBound: []byte("key010000"),
				UpperBound: []byte("key010100"),
			}, 100)
			if bounded*10 >= full {
				t.Fatalf("bounded scan read %d bytes, full walk %d — bounds did not prune IO", bounded, full)
			}
		})
	}
}
