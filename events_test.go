package pebblesdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pebblesdb/internal/vfs"
)

// eventLog collects listener events under a lock so concurrent background
// goroutines can emit into it safely.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// TestListenerEventCompleteness drives flushes and a full compaction on
// both tree shapes and checks the event stream is well formed: every begin
// has a matching end, compaction pairs correlate by unit id on the same
// level, and ends carry non-negative durations and output volumes.
func TestListenerEventCompleteness(t *testing.T) {
	for _, p := range []Preset{PresetPebblesDB, PresetLevelDB} {
		t.Run(p.String(), func(t *testing.T) {
			var log eventLog
			o := testOptions(p)
			o.EventListener = EventFunc(log.add)
			db, err := Open("db", o)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			val := make([]byte, 512)
			for i := 0; i < 2000; i++ {
				key := fmt.Appendf(nil, "key%06d", i%800)
				if err := db.Put(key, val); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}

			events := log.snapshot()
			counts := map[EventKind]int{}
			for _, e := range events {
				counts[e.Kind]++
			}
			if counts[EventFlushBegin] == 0 {
				t.Fatal("no flushes observed; workload too small for the event test")
			}
			if counts[EventFlushBegin] != counts[EventFlushEnd] {
				t.Errorf("flush begin/end mismatch: %d begins, %d ends",
					counts[EventFlushBegin], counts[EventFlushEnd])
			}
			if counts[EventCompactionBegin] == 0 {
				t.Fatal("no compactions observed; CompactAll should have compacted")
			}
			if counts[EventCompactionBegin] != counts[EventCompactionEnd] {
				t.Errorf("compaction begin/end mismatch: %d begins, %d ends",
					counts[EventCompactionBegin], counts[EventCompactionEnd])
			}
			if counts[EventWriteStallBegin] != counts[EventWriteStallEnd] {
				t.Errorf("write-stall begin/end mismatch: %d begins, %d ends",
					counts[EventWriteStallBegin], counts[EventWriteStallEnd])
			}

			// Correlate compaction pairs by unit id: each begin must be
			// followed by exactly one end on the same level carrying the
			// unit's output volume.
			begins := map[uint64]Event{}
			for _, e := range events {
				switch e.Kind {
				case EventCompactionBegin:
					if _, dup := begins[e.Unit]; dup {
						t.Errorf("unit %d: duplicate compaction begin", e.Unit)
					}
					begins[e.Unit] = e
				case EventCompactionEnd:
					b, ok := begins[e.Unit]
					if !ok {
						t.Errorf("unit %d: compaction end without begin", e.Unit)
						continue
					}
					delete(begins, e.Unit)
					if b.Level != e.Level {
						t.Errorf("unit %d: begin level %d, end level %d", e.Unit, b.Level, e.Level)
					}
					if e.Dur < 0 {
						t.Errorf("unit %d: negative duration %v", e.Unit, e.Dur)
					}
					if e.Err == nil && e.Detail != "trivial-move" && e.OutputTables < 0 {
						t.Errorf("unit %d: negative output tables %d", e.Unit, e.OutputTables)
					}
					if b.InputTables <= 0 {
						t.Errorf("unit %d: compaction began with %d input tables", e.Unit, b.InputTables)
					}
				}
			}
			if len(begins) != 0 {
				t.Errorf("%d compaction begins never ended: %v", len(begins), begins)
			}

			// Timestamps must be monotone non-decreasing per the shared
			// clock, and every event carries one.
			var last int64
			for i, e := range events {
				if e.Nanos < last {
					t.Fatalf("event %d (%v) timestamp went backwards: %d < %d", i, e.Kind, e.Nanos, last)
				}
				last = e.Nanos
			}

			// The built-in flight recorder saw the same stream: RecentEvents
			// works without any listener configured.
			if len(db.RecentEvents()) == 0 {
				t.Error("RecentEvents returned nothing after flushes and compactions")
			}
		})
	}
}

// TestFlightRecorderFlushFailure injects a sticky write failure under a
// flush and checks the flight recorder retained the failure: the recorded
// stream must name the failed operation ("flush") and include the
// read-only transition, and the degradation dump must reach the logger.
func TestFlightRecorderFlushFailure(t *testing.T) {
	efs := vfs.NewErr(vfs.NewMem())
	o := testOptions(PresetPebblesDB)
	o.WithFS(efs)
	o.MaxBgRetries = 0
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Fail the second create from here: the first is the WAL rotation at
	// the head of Flush (foreground), the second is the level-0 table file
	// inside the background flush — which is where the failure must land
	// for the recorder to attribute it to the flush.
	efs.FailAt(efs.OpCount()+1, vfs.OpCreate, nil, true)
	if err := db.Flush(); err == nil {
		t.Fatal("flush over a failing filesystem succeeded")
	}
	if !db.ReadOnly() {
		t.Fatal("store did not degrade to read-only after the flush failure")
	}

	events := db.RecentEvents()
	if len(events) == 0 {
		t.Fatal("flight recorder is empty after an injected flush failure")
	}
	var sawBgErr, sawReadOnly bool
	for _, e := range events {
		switch e.Kind {
		case EventBackgroundError:
			if e.Detail == "flush" && e.Err != nil {
				sawBgErr = true
			}
		case EventReadOnly:
			sawReadOnly = true
		}
	}
	if !sawBgErr {
		t.Errorf("no background-error event naming the failed flush in %d recorded events", len(events))
	}
	if !sawReadOnly {
		t.Errorf("no read-only transition event in %d recorded events", len(events))
	}
}

// BenchmarkListenerOverhead measures the cost the event system adds to the
// write path: "off" is the default (flight recorder only), "listener" adds
// a user EventFunc on top. The EXPERIMENTS.md observability note records
// the delta; it must stay under 2%.
func BenchmarkListenerOverhead(b *testing.B) {
	run := func(b *testing.B, listener EventListener) {
		o := testOptions(PresetPebblesDB)
		o.MemtableSize = 1 << 20
		o.EventListener = listener
		db, err := Open("db", o)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		val := make([]byte, 128)
		key := make([]byte, 0, 32)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key = fmt.Appendf(key[:0], "key%09d", i)
			if err := db.Put(key, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("listener", func(b *testing.B) {
		var events int
		var mu sync.Mutex
		run(b, EventFunc(func(e Event) {
			mu.Lock()
			events++
			mu.Unlock()
		}))
	})
}

// TestMetricsScrapeRace scrapes Metrics concurrently with a write workload
// that saturates flush and compaction. Under -race this catches torn reads
// in the stats snapshot; the invariant checks catch cross-field tearing
// (ends exceeding begins) that a single racy load would produce.
func TestMetricsScrapeRace(t *testing.T) {
	o := testOptions(PresetPebblesDB)
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := make([]byte, 256)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := fmt.Appendf(nil, "g%d/key%06d", g, i%2000)
				if err := db.Put(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var agg Metrics
			for i := 0; i < 400; i++ {
				m := db.Metrics()
				if m.Flushes < 0 || m.Tree.Compactions < 0 {
					t.Errorf("negative counters in scrape: %+v", m)
					return
				}
				agg.Merge(m)
				_ = m.String()
			}
		}()
	}
	// Let the writers run until the scrapers finish a full pass, so the
	// scrapes overlap live flushes and compactions rather than a quiet tail.
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		var m Metrics
		for i := 0; i < 400; i++ {
			m.Merge(db.Metrics())
		}
	}()
	<-scraped
	close(done)
	wg.Wait()

	m := db.Metrics()
	if !strings.Contains(m.String(), "level") {
		t.Error("Metrics.String lost its per-level table")
	}
}
