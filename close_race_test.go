package pebblesdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pebblesdb/internal/engine"
)

// isClosedErr accepts either the public or the engine-level closed error:
// an operation that raced past DB.closed fails inside the engine instead.
func isClosedErr(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, engine.ErrClosed)
}

// TestCloseRacesInFlightOps drives Gets, iterators and commits from many
// goroutines while Close fires mid-traffic — the exact shape of a server
// draining connections on shutdown. Every operation must either succeed or
// fail with a closed error; in-flight reads drain against a live tree
// (Close blocks on them), and nothing may panic or race (run under -race
// in CI's short suite).
func TestCloseRacesInFlightOps(t *testing.T) {
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		for _, p := range []Preset{PresetPebblesDB, PresetHyperLevelDB} {
			t.Run(fmt.Sprintf("round%d/%s", round, p), func(t *testing.T) {
				db, err := Open("db", testOptions(p))
				if err != nil {
					t.Fatal(err)
				}
				const keySpace = 4000
				for i := 0; i < keySpace; i++ {
					if err := db.Put([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%06d", i))); err != nil {
						t.Fatal(err)
					}
				}

				var stop atomic.Bool
				var wg sync.WaitGroup
				fail := make(chan error, 64)
				check := func(err error) {
					if err != nil && !isClosedErr(err) {
						select {
						case fail <- err:
						default:
						}
					}
				}

				// Point readers.
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						buf := make([]byte, 0, 64)
						for !stop.Load() {
							_, _, err := db.GetTo([]byte(fmt.Sprintf("key%06d", rng.Intn(keySpace))), buf, nil)
							check(err)
						}
					}(int64(round*100 + g))
				}
				// Short scans, each owning its iterator open/close.
				for g := 0; g < 3; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for !stop.Load() {
							it, err := db.NewIter(nil)
							if err != nil {
								check(err)
								continue
							}
							it.SeekGE([]byte(fmt.Sprintf("key%06d", rng.Intn(keySpace))))
							for j := 0; j < 10 && it.Valid(); j++ {
								it.Next()
							}
							check(it.Close())
						}
					}(int64(round*100 + 10 + g))
				}
				// Committers: plain Puts, batches, and DeleteRanges.
				for g := 0; g < 3; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for !stop.Load() {
							switch rng.Intn(3) {
							case 0:
								check(db.Put([]byte(fmt.Sprintf("key%06d", rng.Intn(keySpace))), []byte("x")))
							case 1:
								b := db.NewBatch()
								for j := 0; j < 8; j++ {
									b.Set([]byte(fmt.Sprintf("key%06d", rng.Intn(keySpace))), []byte("y"))
								}
								check(db.Apply(b, nil))
							case 2:
								lo := rng.Intn(keySpace)
								check(db.DeleteRange([]byte(fmt.Sprintf("key%06d", lo)), []byte(fmt.Sprintf("key%06d", lo+3))))
							}
						}
					}(int64(round*100 + 20 + g))
				}

				time.Sleep(5 * time.Millisecond)
				if err := db.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
				stop.Store(true)
				wg.Wait()
				close(fail)
				for err := range fail {
					t.Errorf("op failed with non-closed error: %v", err)
				}
				if err := db.Close(); !isClosedErr(err) {
					t.Errorf("second close: got %v, want closed error", err)
				}
			})
		}
	}
}
