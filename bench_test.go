// Benchmarks regenerating the paper's tables and figures (one benchmark
// per table/figure; see DESIGN.md's experiment index). Each iteration runs
// the full scaled experiment, so interpret ns/op as total experiment time.
// cmd/experiments runs the same code at larger scales with readable
// reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Run with: go test -bench=. -benchmem
package pebblesdb_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"

	"pebblesdb"
	"pebblesdb/internal/experiments"
	"pebblesdb/internal/harness"
	"pebblesdb/internal/vfs"
)

// benchCfg is deliberately tiny so `go test -bench=.` finishes quickly;
// the recorded EXPERIMENTS.md numbers come from cmd/experiments at larger
// scale.
func benchCfg() experiments.Config {
	return experiments.Config{Out: io.Discard, Scale: 100_000, StoreScale: 512, Threads: 2}
}

func runExperiment(b *testing.B, fn func(experiments.Config) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1WriteAmplification regenerates Figure 1.1 / Figure 5.1a.
func BenchmarkFig1WriteAmplification(b *testing.B) {
	runExperiment(b, experiments.Fig1WriteAmplification)
}

// BenchmarkTable51SSTableSizes regenerates Table 5.1.
func BenchmarkTable51SSTableSizes(b *testing.B) {
	runExperiment(b, experiments.Table51SSTableSizes)
}

// BenchmarkTable52UpdateThroughput regenerates Table 5.2.
func BenchmarkTable52UpdateThroughput(b *testing.B) {
	runExperiment(b, experiments.Table52UpdateThroughput)
}

// BenchmarkFig51bMicro regenerates Figure 5.1b.
func BenchmarkFig51bMicro(b *testing.B) {
	runExperiment(b, experiments.Fig51bMicrobenchmarks)
}

// BenchmarkFig51cMultithreaded regenerates Figure 5.1c.
func BenchmarkFig51cMultithreaded(b *testing.B) {
	runExperiment(b, experiments.Fig51cMultithreaded)
}

// BenchmarkFig51dCached regenerates Figure 5.1d.
func BenchmarkFig51dCached(b *testing.B) {
	runExperiment(b, experiments.Fig51dCached)
}

// BenchmarkFig51eSmallValues regenerates Figure 5.1e.
func BenchmarkFig51eSmallValues(b *testing.B) {
	runExperiment(b, experiments.Fig51eSmallValues)
}

// BenchmarkFig52aAging regenerates Figure 5.2a (key-value-store aging; the
// paper's file-system aging is substituted per DESIGN.md).
func BenchmarkFig52aAging(b *testing.B) {
	runExperiment(b, experiments.Fig52aAging)
}

// BenchmarkFig52bLowMemory regenerates Figure 5.2b.
func BenchmarkFig52bLowMemory(b *testing.B) {
	runExperiment(b, experiments.Fig52bLowMemory)
}

// BenchmarkFig53SpaceAmplification regenerates Figure 5.3.
func BenchmarkFig53SpaceAmplification(b *testing.B) {
	runExperiment(b, experiments.Fig53SpaceAmplification)
}

// BenchmarkFig54EmptyGuards regenerates Figure 5.4.
func BenchmarkFig54EmptyGuards(b *testing.B) {
	runExperiment(b, experiments.Fig54EmptyGuards)
}

// BenchmarkFig55YCSB regenerates Figure 5.5.
func BenchmarkFig55YCSB(b *testing.B) {
	runExperiment(b, experiments.Fig55YCSB)
}

// BenchmarkFig56aHyperDex regenerates Figure 5.6a.
func BenchmarkFig56aHyperDex(b *testing.B) {
	runExperiment(b, experiments.Fig56aHyperDex)
}

// BenchmarkFig56bMongoDB regenerates Figure 5.6b.
func BenchmarkFig56bMongoDB(b *testing.B) {
	runExperiment(b, experiments.Fig56bMongoDB)
}

// BenchmarkTable54Memory regenerates Table 5.4.
func BenchmarkTable54Memory(b *testing.B) {
	runExperiment(b, experiments.Table54Memory)
}

// BenchmarkAblations regenerates the §5.2 optimization-impact paragraph
// (parallel seeks, seek compaction, sstable bloom filters).
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, experiments.Ablations)
}

// BenchmarkBTreeWriteAmplification regenerates the §2.2 KyotoCabinet
// write-amplification claim on the B+-tree substrate.
func BenchmarkBTreeWriteAmplification(b *testing.B) {
	runExperiment(b, experiments.BTreeWriteAmplification)
}

// --- per-operation library benchmarks ---

func openBenchDB(b *testing.B, p pebblesdb.Preset) *pebblesdb.DB {
	b.Helper()
	o := p.Options()
	harness.Scale(o, 16)
	o.WithFS(vfs.NewMem())
	db, err := pebblesdb.Open("bench", o)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkPut measures single-key put latency on the FLSM engine.
func BenchmarkPut(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	val := make([]byte, 128)
	rand.New(rand.NewSource(1)).Read(val)
	key := make([]byte, 0, 16)
	b.SetBytes(16 + 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = harness.KeyAt(key, uint64(i*2654435761))
		if err := db.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutParallel measures put throughput with concurrent writers
// (b.RunParallel; run with -cpu=8 to compare against BenchmarkPut). The
// group-commit pipeline lets the goroutines share WAL appends and apply to
// the memtable concurrently instead of serializing on a commit mutex.
func BenchmarkPutParallel(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	val := make([]byte, 128)
	rand.New(rand.NewSource(1)).Read(val)
	var ctr atomic.Uint64
	b.SetBytes(16 + 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := make([]byte, 0, 16)
		for pb.Next() {
			i := ctr.Add(1)
			key = harness.KeyAt(key, i*2654435761)
			if err := db.Put(key, val); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkApplySync measures single-goroutine durable-commit latency: one
// fsync per commit, nothing to amortize against.
func BenchmarkApplySync(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	val := make([]byte, 128)
	rand.New(rand.NewSource(1)).Read(val)
	key := make([]byte, 0, 16)
	batch := db.NewBatch()
	b.SetBytes(16 + 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		key = harness.KeyAt(key, uint64(i*2654435761))
		batch.Set(key, val)
		if err := db.Apply(batch, pebblesdb.Sync); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplySyncParallel measures durable commits from concurrent
// writers: the pipeline batches the WAL records of simultaneous committers
// and satisfies all their Sync requests with one amortized fsync (compare
// the syncs-per-commit metric against BenchmarkApplySync).
func BenchmarkApplySyncParallel(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	val := make([]byte, 128)
	rand.New(rand.NewSource(1)).Read(val)
	var ctr atomic.Uint64
	b.SetBytes(16 + 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := make([]byte, 0, 16)
		batch := db.NewBatch()
		for pb.Next() {
			batch.Reset()
			i := ctr.Add(1)
			key = harness.KeyAt(key, i*2654435761)
			batch.Set(key, val)
			if err := db.Apply(batch, pebblesdb.Sync); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	m := db.Metrics()
	if m.SyncCommits > 0 {
		b.ReportMetric(m.SyncsPerCommit(), "syncs/commit")
		b.ReportMetric(m.CommitGroupSize(), "batches/group")
	}
}

// BenchmarkGet measures point-read latency on a pre-filled FLSM store.
func BenchmarkGet(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	const n = 100_000
	if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
		b.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	key := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = harness.KeyAt(key, uint64(rng.Intn(n)))
		if _, _, err := db.Get(key, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeek measures iterator seek latency on a compacted FLSM store.
func BenchmarkSeek(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	const n = 100_000
	if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
		b.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = harness.KeyAt(key, uint64(rng.Intn(n)))
		it, err := db.NewIter(nil)
		if err != nil {
			b.Fatal(err)
		}
		it.SeekGE(key)
		it.Close()
	}
}

// BenchmarkReverseScan measures reverse range queries (SeekLT + Prevs) on
// a compacted FLSM store — the v2 API's mirror of the paper's
// seek-then-nexts range query.
func BenchmarkReverseScan(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	const n = 100_000
	if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
		b.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	key := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = harness.KeyAt(key, uint64(rng.Intn(n)))
		it, err := db.NewIter(nil)
		if err != nil {
			b.Fatal(err)
		}
		it.SeekLT(key)
		for j := 0; j < 10 && it.Valid(); j++ {
			it.Prev()
		}
		it.Close()
	}
}

// BenchmarkBoundedScan measures short bounded range scans: the end key is
// pushed into the iterator as an upper bound so guards and sstables past
// it are pruned before IO.
func BenchmarkBoundedScan(b *testing.B) {
	db := openBenchDB(b, pebblesdb.PresetPebblesDB)
	defer db.Close()
	const n = 100_000
	if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
		b.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	lo := make([]byte, 0, 16)
	hi := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint64(rng.Intn(n))
		lo = harness.KeyAt(lo, start)
		hi = harness.KeyAt(hi, start+10)
		it, err := db.NewIter(&pebblesdb.IterOptions{LowerBound: lo, UpperBound: hi})
		if err != nil {
			b.Fatal(err)
		}
		for it.First(); it.Valid(); it.Next() {
		}
		it.Close()
	}
}

// BenchmarkParallelGuardCompaction is the ablation for the paper's §7
// future-work feature implemented here: guard-granular compaction
// parallelism.
func BenchmarkParallelGuardCompaction(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := pebblesdb.PresetPebblesDB.Options()
				harness.Scale(o, 128)
				o.ParallelGuardCompaction = parallel
				o.WithFS(vfs.NewMem())
				db, err := pebblesdb.Open("bench", o)
				if err != nil {
					b.Fatal(err)
				}
				if err := harness.FillRandom(db, 200_000, 200_000, 128, 1); err != nil {
					b.Fatal(err)
				}
				if err := db.CompactAll(); err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
	}
}

var _ = fmt.Sprintf
