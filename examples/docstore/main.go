// Docstore: a small JSON document store in the style of the paper's §5.4
// NoSQL applications (HyperDex / MongoDB). Documents live under
// doc/<collection>/<id>; a secondary index under idx/<collection>/<field>/
// <value>/<id> supports lookups by attribute via range scans. Both the
// document write and its index entries commit in one atomic batch.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"pebblesdb"
)

type Doc map[string]interface{}

type Store struct {
	db *pebblesdb.DB
}

func docKey(collection, id string) []byte {
	return []byte("doc/" + collection + "/" + id)
}

func idxKey(collection, field, value, id string) []byte {
	return []byte("idx/" + collection + "/" + field + "/" + value + "/" + id)
}

// Insert writes the document and its secondary-index entries atomically.
func (s *Store) Insert(collection, id string, doc Doc, indexed ...string) error {
	body, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	b := s.db.NewBatch()
	b.Set(docKey(collection, id), body)
	for _, field := range indexed {
		if v, ok := doc[field].(string); ok {
			b.Set(idxKey(collection, field, v, id), nil)
		}
	}
	return s.db.Apply(b, nil)
}

// Get fetches one document.
func (s *Store) Get(collection, id string) (Doc, bool, error) {
	body, ok, err := s.db.Get(docKey(collection, id), nil)
	if err != nil || !ok {
		return nil, ok, err
	}
	var d Doc
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, false, err
	}
	return d, true, nil
}

// FindBy returns the ids of documents whose indexed field equals value,
// using a bounded prefix range scan (the range_query operation of §2.1):
// the prefix's end becomes the iterator's upper bound, so the scan needs
// no manual prefix check and never touches sstables past the prefix.
func (s *Store) FindBy(collection, field, value string) ([]string, error) {
	prefix := "idx/" + collection + "/" + field + "/" + value + "/"
	it, err := s.db.NewIter(&pebblesdb.IterOptions{
		LowerBound: []byte(prefix),
		UpperBound: append([]byte(prefix[:len(prefix)-1]), '/'+1),
	})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var ids []string
	for it.First(); it.Valid(); it.Next() {
		ids = append(ids, string(it.Key()[len(prefix):]))
	}
	return ids, it.Error()
}

func main() {
	opts := pebblesdb.PresetPebblesDB.Options()
	opts.InMemory = true
	db, err := pebblesdb.Open("docstore-db", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	store := &Store{db: db}

	people := []struct {
		id  string
		doc Doc
	}{
		{"u1", Doc{"name": "ada", "city": "london", "role": "engineer"}},
		{"u2", Doc{"name": "grace", "city": "nyc", "role": "admiral"}},
		{"u3", Doc{"name": "edsger", "city": "austin", "role": "engineer"}},
		{"u4", Doc{"name": "barbara", "city": "nyc", "role": "engineer"}},
	}
	for _, p := range people {
		if err := store.Insert("people", p.id, p.doc, "city", "role"); err != nil {
			log.Fatal(err)
		}
	}

	if d, ok, _ := store.Get("people", "u2"); ok {
		fmt.Printf("u2: %v\n", d)
	}

	engineers, err := store.FindBy("people", "role", "engineer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engineers: %v\n", engineers)

	inNYC, err := store.FindBy("people", "city", "nyc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in nyc:    %v\n", inNYC)
}
