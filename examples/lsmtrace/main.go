// Lsmtrace: the paper's motivating observation (Figure 2.1 and chapter 1)
// reproduced as a runnable program. The same overlapping write workload
// runs against the leveled LSM baseline and against FLSM/PebblesDB; the
// LSM rewrites level-1 data on every level-0 compaction while FLSM
// fragments and appends, and the write-amplification gap falls out of the
// IO counters.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"pebblesdb"
)

const (
	numKeys   = 200_000
	valueSize = 128
)

func run(name string, opts *pebblesdb.Options) *pebblesdb.DB {
	opts.InMemory = true
	// Small store parameters so the trace compacts through several levels
	// in a couple of seconds.
	opts.MemtableSize = 128 << 10
	opts.LevelBaseBytes = 320 << 10
	opts.TargetFileSize = 64 << 10
	opts.TopLevelBits = 16

	db, err := pebblesdb.Open("trace-"+name, opts)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	val := make([]byte, valueSize)
	for i := 0; i < numKeys; i++ {
		rng.Read(val)
		// Uniformly random keys: every flushed sstable overlaps every
		// level-1 sstable, the worst case of Figure 2.1.
		key := []byte(fmt.Sprintf("%016d", rng.Intn(numKeys*4)))
		if err := db.Put(key, val); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}

	m := db.Metrics()
	fmt.Printf("%-22s writeAmp %5.2f  compactions %4d  compaction write %6.1f MB  user data %5.1f MB\n",
		name, m.WriteAmplification(), m.Tree.Compactions,
		float64(m.Tree.BytesCompactedOut)/(1<<20),
		float64(m.UserBytesWritten)/(1<<20))
	return db
}

func main() {
	fmt.Println("identical workload, two data structures:")
	lsm := run("leveled-LSM", pebblesdb.PresetHyperLevelDB.Options())
	flsm := run("FLSM-PebblesDB", pebblesdb.PresetPebblesDB.Options())
	defer lsm.Close()
	defer flsm.Close()

	ratio := lsm.Metrics().WriteAmplification() / flsm.Metrics().WriteAmplification()
	fmt.Printf("\nLSM writes %.1fx more bytes per user byte than FLSM on this workload.\n", ratio)

	fmt.Println("\nFLSM layout (fragments under guards, Figure 3.1):")
	flsm.Dump(os.Stdout)
}
