// Quickstart: open a PebblesDB store, write, read, batch, snapshot,
// iterate, and inspect metrics — the whole public API in one file.
package main

import (
	"fmt"
	"log"

	"pebblesdb"
)

func main() {
	// PresetPebblesDB selects the FLSM engine with the paper's defaults.
	// InMemory keeps this example self-contained; drop it to use a real
	// directory on disk.
	opts := pebblesdb.PresetPebblesDB.Options()
	opts.InMemory = true

	db, err := pebblesdb.Open("quickstart-db", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	if err := db.Put([]byte("user:1:name"), []byte("ada")); err != nil {
		log.Fatal(err)
	}
	if v, ok, _ := db.Get([]byte("user:1:name"), nil); ok {
		fmt.Printf("user:1:name = %s\n", v)
	}

	// Atomic batches: both writes commit or neither does. WriteOptions
	// control per-commit durability — pebblesdb.Sync fsyncs the WAL before
	// returning.
	b := db.NewBatch()
	b.Set([]byte("user:2:name"), []byte("grace"))
	b.Set([]byte("user:2:email"), []byte("grace@example.com"))
	if err := db.Apply(b, pebblesdb.Sync); err != nil {
		log.Fatal(err)
	}

	// Snapshots pin a point-in-time view.
	snap := db.NewSnapshot()
	if err := db.Put([]byte("user:1:name"), []byte("ada lovelace")); err != nil {
		log.Fatal(err)
	}
	if v, ok, _ := db.Get([]byte("user:1:name"), &pebblesdb.ReadOptions{Snapshot: snap}); ok {
		fmt.Printf("snapshot still sees: %s\n", v)
	}
	if v, ok, _ := db.Get([]byte("user:1:name"), nil); ok {
		fmt.Printf("latest read sees:    %s\n", v)
	}
	snap.Close()

	// Deletes hide keys from reads and iterators.
	if err := db.Delete([]byte("user:2:email")); err != nil {
		log.Fatal(err)
	}

	// Range scan: bound the iterator to the prefix (§2.1's range query);
	// keys at or past the upper bound are never surfaced, and sstables
	// outside the bounds are pruned before any IO.
	it, err := db.NewIter(&pebblesdb.IterOptions{
		LowerBound: []byte("user:"),
		UpperBound: []byte("user;"), // ';' is ':'+1 — the end of the prefix
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all user keys:")
	for it.First(); it.Valid(); it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	// Iterators are bidirectional: walk the same range backward.
	fmt.Println("in reverse:")
	for it.Last(); it.Valid(); it.Prev() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// Metrics: IO accounting and write amplification come for free.
	m := db.Metrics()
	fmt.Printf("writes=%d gets=%d writeAmp=%.2f\n", m.Writes, m.Gets, m.WriteAmplification())
}
