// Timeseries: an event-retention workload in the shape of the paper's
// Figure 5.4 — keys arrive in rolling time windows and old windows are
// deleted wholesale, which on FLSM leaves empty guards behind. The example
// shows that reads stay fast as empty guards accumulate, the property the
// paper measures.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pebblesdb"
)

const (
	windows        = 6
	eventsPerWin   = 50_000
	readsPerWindow = 20_000
)

func eventKey(window, seq int) []byte {
	return []byte(fmt.Sprintf("evt/%04d/%08d", window, seq))
}

func main() {
	opts := pebblesdb.PresetPebblesDB.Options()
	opts.InMemory = true
	// Shrink the store so this example compacts visibly in seconds.
	opts.MemtableSize = 256 << 10
	opts.LevelBaseBytes = 1 << 20
	opts.TopLevelBits = 14

	db, err := pebblesdb.Open("timeseries-db", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 200)

	for w := 0; w < windows; w++ {
		// Ingest one window of events.
		start := time.Now()
		for i := 0; i < eventsPerWin; i++ {
			rng.Read(payload)
			if err := db.Put(eventKey(w, i), payload); err != nil {
				log.Fatal(err)
			}
		}
		ingest := time.Since(start)

		// Read back random events from the live window.
		start = time.Now()
		hits := 0
		for i := 0; i < readsPerWindow; i++ {
			if _, ok, err := db.Get(eventKey(w, rng.Intn(eventsPerWin)), nil); err != nil {
				log.Fatal(err)
			} else if ok {
				hits++
			}
		}
		readDur := time.Since(start)

		// "Most recent events" query: a reverse scan bounded to the live
		// window — Last/Prev walk the window from its newest key without
		// touching older windows' sstables.
		it, err := db.NewIter(&pebblesdb.IterOptions{
			LowerBound: eventKey(w, 0),
			UpperBound: eventKey(w+1, 0),
		})
		if err != nil {
			log.Fatal(err)
		}
		recent := 0
		for it.Last(); it.Valid() && recent < 5; it.Prev() {
			recent++
		}
		if err := it.Close(); err != nil {
			log.Fatal(err)
		}

		// Retention: drop the previous window with a single range
		// tombstone — O(1) writes instead of one delete per event, and
		// compaction reclaims the covered space wholesale.
		if w > 0 {
			if err := db.DeleteRange(eventKey(w-1, 0), eventKey(w, 0)); err != nil {
				log.Fatal(err)
			}
		}
		db.WaitIdle()

		m := db.Metrics()
		fmt.Printf("window %d: ingest %6.0f KOps/s  read %6.0f KOps/s (hits %d)  empty guards %d\n",
			w,
			float64(eventsPerWin)/ingest.Seconds()/1000,
			float64(readsPerWindow)/readDur.Seconds()/1000,
			hits,
			m.Tree.EmptyGuards)
	}

	m := db.Metrics()
	fmt.Printf("\ntotal write amplification %.2f across %d compactions\n",
		m.WriteAmplification(), m.Tree.Compactions)
}
