// Command dbbench is the db_bench-style micro-benchmark driver (§5.2). It
// runs fill/read/seek/delete workloads against any of the paper's store
// presets and reports throughput, IO and write amplification.
//
// Example:
//
//	dbbench -store=pebblesdb -benchmarks=fillrandom,readrandom,seekrandom \
//	        -num=1000000 -value_size=1024 -store_scale=64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pebblesdb"
	"pebblesdb/internal/harness"
)

var (
	store       = flag.String("store", "pebblesdb", "store preset: pebblesdb, hyperleveldb, leveldb, rocksdb, pebblesdb1")
	benchmarks  = flag.String("benchmarks", "fillrandom,readrandom,seekrandom", "comma-separated workloads: fillseq, fillrandom, fillsync, readrandom, seekrandom, seekreverse, scanbounded, scanshort, deleterandom, retention")
	num         = flag.Int("num", 1_000_000, "operations per workload")
	valueSize   = flag.Int("value_size", 1024, "value size in bytes")
	nexts       = flag.Int("nexts", 0, "next() calls per seek")
	threads     = flag.Int("threads", 1, "concurrent worker threads")
	concurrency = flag.Int("concurrency", 0, "concurrent write clients for fill/delete workloads; 0 = same as -threads (multi-client write mode exercising the group-commit pipeline)")
	storeScale  = flag.Int("store_scale", 1, "divide store size parameters (memtable, level budgets) by this factor")
	dir         = flag.String("dir", "", "store directory on the OS filesystem; empty = in-memory")
	compact     = flag.Bool("compact_before_reads", true, "fully compact before read/seek workloads")
	seed        = flag.Int64("seed", 1, "workload RNG seed")
	compression = flag.String("compression", "snappy", "sstable block compression: none, snappy (values are ~50% compressible, like LevelDB db_bench)")
	tuned       = flag.String("tuned", "", "apply Options.Tuned with this memory target (e.g. 1GiB) after the preset and -store_scale; empty = off")
	prefixLen   = flag.Int("prefix_bloom_len", 14, "store PrefixBloomLength and scanshort prefix length (16-byte decimal keys: 14 spans 100 keys); 0 disables prefix filters")
	jsonPath    = flag.String("json", "", "write a machine-readable result file to this path (perf trajectory tracking; see BENCH_pr4.json)")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the benchmark workloads to this path")

	// Retention workload shape: -num sequential puts arrive in windows of
	// retentionWindow keys; once retentionRetain windows are live the
	// oldest is dropped — by one DeleteRange, or per-key tombstones with
	// -retention_perkey (the pre-range-deletion baseline to compare
	// against).
	retentionWindow = flag.Int("retention_window", 0, "retention workload window size in keys; 0 = num/10")
	retentionRetain = flag.Int("retention_retain", 3, "retention workload live-window count")
	retentionPerKey = flag.Bool("retention_perkey", false, "drop retention windows with per-key deletes instead of DeleteRange")
)

// jsonLatency is per-workload latency in microseconds, from the harness's
// log-scale histogram (bucket resolution ~19%).
type jsonLatency struct {
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
}

type jsonWorkload struct {
	Name       string  `json:"name"`
	Ops        int64   `json:"ops"`
	DurationNS int64   `json:"duration_ns"`
	KOpsPerSec float64 `json:"kops_per_sec"`
	WriteGB    float64 `json:"write_gb"`
	ReadGB     float64 `json:"read_gb"`
	WriteAmp   float64 `json:"write_amp"`
	// AllocsPerOp is the process-wide heap-allocation delta divided by
	// ops — it includes background flush/compaction work, so read it as a
	// trend line, not a per-call truth (the AllocsPerRun regression tests
	// pin those).
	AllocsPerOp float64      `json:"allocs_per_op"`
	Latency     *jsonLatency `json:"latency,omitempty"`

	// Retention workload accounting (zero elsewhere): windows dropped, the
	// user bytes those windows had ingested (the reclamation target), and
	// the store's live table count/bytes once background work drained —
	// space actually reclaimed by tombstone-elision compaction.
	DeletedWindows   int64 `json:"deleted_windows,omitempty"`
	UserBytesDeleted int64 `json:"user_bytes_deleted,omitempty"`
	LiveTables       int64 `json:"live_tables,omitempty"`
	LiveBytes        int64 `json:"live_bytes,omitempty"`
}

type jsonReport struct {
	Store       string         `json:"store"`
	Compression string         `json:"compression"`
	Num         int            `json:"num"`
	ValueSize   int            `json:"value_size"`
	Threads     int            `json:"threads"`
	Concurrency int            `json:"concurrency"`
	StoreScale  int            `json:"store_scale"`
	Seed        int64          `json:"seed"`
	GoVersion   string         `json:"go_version"`
	Timestamp   string         `json:"timestamp"`
	Workloads   []jsonWorkload `json:"workloads"`

	WriteAmplification float64 `json:"write_amplification"`
	Flushes            int64   `json:"flushes"`
	Compactions        int64   `json:"compactions"`
	CommitGroups       int64   `json:"commit_groups"`
	BatchesPerGroup    float64 `json:"batches_per_group"`
	WALSyncs           int64   `json:"wal_syncs"`
	SyncCommits        int64   `json:"sync_commits"`
	CompressionRatio   float64 `json:"compression_ratio"`

	// Write-stall and compaction-scheduler accounting: WriteStallMS is
	// wall time writers spent in L0 slowdown/stop stalls;
	// PeakCompactionParallelism is the most units ever running at once in
	// one shard, and PeakLevelParallelism the most whose *source* was the
	// same level >= 1 (>1 means intra-level parallel compaction, the FLSM
	// structural claim); ClaimConflicts/ClaimStallMS account workers that
	// found work pending but fully claimed by peers.
	WriteStallMS              float64 `json:"write_stall_ms"`
	CompactionUnits           int64   `json:"compaction_units"`
	PeakCompactionParallelism int64   `json:"peak_compaction_parallelism"`
	PeakLevelParallelism      int     `json:"peak_level_parallelism"`
	ClaimConflicts            int64   `json:"claim_conflicts"`
	ClaimStallMS              float64 `json:"claim_stall_ms"`

	Gets                   int64   `json:"gets"`
	GetTablesProbed        int64   `json:"get_tables_probed"`
	TablesProbedPerGet     float64 `json:"tables_probed_per_get"`
	GetBloomNegatives      int64   `json:"get_bloom_negatives"`
	GetBloomFalsePositives int64   `json:"get_bloom_false_positives"`
	GetBlockCacheHits      int64   `json:"get_block_cache_hits"`
	GetBlockCacheMisses    int64   `json:"get_block_cache_misses"`
	GetBlockCacheHitRatio  float64 `json:"get_block_cache_hit_ratio"`

	// Scan path: sstable iterators opened vs skipped by prefix bloom
	// filters (scanshort with a matching -prefix_bloom_len).
	IterTablesOpened   int64   `json:"iter_tables_opened"`
	IterPrefixSkips    int64   `json:"iter_prefix_skips"`
	IterTableSkipRatio float64 `json:"iter_table_skip_ratio"`
}

func latencyJSON(rec *harness.LatencyRecorder) *jsonLatency {
	if rec == nil || rec.Count() == 0 {
		return nil
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return &jsonLatency{
		MeanMicros: us(rec.Mean()),
		P50Micros:  us(rec.Percentile(0.50)),
		P90Micros:  us(rec.Percentile(0.90)),
		P99Micros:  us(rec.Percentile(0.99)),
		P999Micros: us(rec.Percentile(0.999)),
		MaxMicros:  us(rec.Max()),
	}
}

func presetByName(name string) (pebblesdb.Preset, bool) {
	switch strings.ToLower(name) {
	case "pebblesdb":
		return pebblesdb.PresetPebblesDB, true
	case "hyperleveldb":
		return pebblesdb.PresetHyperLevelDB, true
	case "leveldb":
		return pebblesdb.PresetLevelDB, true
	case "rocksdb":
		return pebblesdb.PresetRocksDB, true
	case "pebblesdb1", "pebblesdb-1":
		return pebblesdb.PresetPebblesDB1, true
	}
	return 0, false
}

func main() {
	flag.Parse()
	preset, ok := presetByName(*store)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}
	opts := preset.Options()
	switch strings.ToLower(*compression) {
	case "none":
		opts.Compression = pebblesdb.CompressionNone
	case "snappy", "":
		opts.Compression = pebblesdb.CompressionSnappy
	default:
		fmt.Fprintf(os.Stderr, "unknown compression %q\n", *compression)
		os.Exit(2)
	}
	if *prefixLen > 0 {
		opts.PrefixBloomLength = *prefixLen
	}
	harness.Scale(opts, *storeScale)
	if *tuned != "" {
		memBytes, err := harness.ParseBytes(*tuned)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -tuned: %v\n", err)
			os.Exit(2)
		}
		opts.Tuned(memBytes)
	}

	var db *pebblesdb.DB
	var err error
	if *dir == "" {
		db, err = harness.Open(harness.Spec{Name: preset.String(), Options: opts})
	} else {
		db, err = pebblesdb.Open(*dir, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var results []jsonWorkload
	written := false
	for _, bench := range strings.Split(*benchmarks, ",") {
		bench = strings.TrimSpace(bench)
		if bench == "" {
			continue
		}
		if !written && (bench == "readrandom" || bench == "seekrandom" || bench == "seekreverse" || bench == "scanbounded" || bench == "scanshort" || bench == "deleterandom") {
			fmt.Fprintf(os.Stderr, "note: %s without a prior fill reads an empty store\n", bench)
		}
		// Write workloads take their client count from -concurrency when
		// set, so the group-commit speedup is measurable from the CLI
		// without touching the read-side thread count.
		writeClients := *threads
		if *concurrency > 0 {
			writeClients = *concurrency
		}
		rec := &harness.LatencyRecorder{}
		window := *retentionWindow
		if window <= 0 {
			window = *num / 10
		}
		var deletedWindows int
		run := func() error {
			per := *num / *threads
			perW := *num / writeClients
			switch bench {
			case "retention":
				written = true
				var err error
				deletedWindows, err = harness.Retention(db, *num, window, *retentionRetain, *valueSize, *seed, *retentionPerKey, rec)
				return err
			case "fillseq":
				written = true
				return harness.Concurrent(writeClients, func(th int) error {
					return harness.FillSeq(db, perW, *valueSize, *seed+int64(th), rec)
				})
			case "fillrandom":
				written = true
				return harness.Concurrent(writeClients, func(th int) error {
					return harness.FillRandom(db, perW, *num, *valueSize, *seed+int64(th), rec)
				})
			case "fillsync":
				written = true
				return harness.Concurrent(writeClients, func(th int) error {
					return harness.FillSync(db, perW, *num, *valueSize, *seed+int64(th), rec)
				})
			case "readrandom":
				return harness.Concurrent(*threads, func(th int) error {
					_, err := harness.ReadRandom(db, per, *num, *seed+int64(th), rec)
					return err
				})
			case "seekrandom":
				return harness.Concurrent(*threads, func(th int) error {
					return harness.SeekRandom(db, per, *num, *nexts, *seed+int64(th), rec)
				})
			case "seekreverse":
				return harness.Concurrent(*threads, func(th int) error {
					return harness.SeekRandomReverse(db, per, *num, *nexts, *seed+int64(th), rec)
				})
			case "scanbounded":
				return harness.Concurrent(*threads, func(th int) error {
					span := *nexts
					if span < 1 {
						span = 10
					}
					_, err := harness.ScanBounded(db, per, *num, span, *seed+int64(th), rec)
					return err
				})
			case "scanshort":
				return harness.Concurrent(*threads, func(th int) error {
					p := *prefixLen
					if p <= 0 {
						p = 14
					}
					_, err := harness.ScanShort(db, per, *num, p, *seed+int64(th), rec)
					return err
				})
			case "deleterandom":
				return harness.Concurrent(writeClients, func(th int) error {
					return harness.DeleteRandom(db, perW, *num, *seed+int64(th), rec)
				})
			}
			return fmt.Errorf("unknown benchmark %q", bench)
		}

		// scanshort is deliberately absent from the compact-before-reads
		// list: prefix-bloom pruning exists to skip the overlapping tables
		// a live store accumulates (FLSM guard groups, L0 flushes), and a
		// fully compacted store leaves bounds pruning nothing to improve
		// on. Run it before the compacted read workloads to measure the
		// operating state.
		if *compact && (bench == "readrandom" || bench == "seekrandom" || bench == "seekreverse" || bench == "scanbounded") {
			if err := db.CompactAll(); err != nil {
				fmt.Fprintf(os.Stderr, "compact: %v\n", err)
				os.Exit(1)
			}
		}
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		res, err := harness.Measure(db, preset.String(), bench, int64(*num), func() error {
			if err := run(); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", bench, err)
			os.Exit(1)
		}
		allocsPerOp := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
		lat := latencyJSON(rec)
		w := jsonWorkload{
			Name:        bench,
			Ops:         res.Ops,
			DurationNS:  res.Duration.Nanoseconds(),
			KOpsPerSec:  res.KOpsPerSec,
			WriteGB:     res.WriteGB,
			ReadGB:      res.ReadGB,
			WriteAmp:    res.WriteAmp,
			AllocsPerOp: allocsPerOp,
			Latency:     lat,
		}
		if bench == "retention" {
			tm := db.Metrics().Tree
			for _, n := range tm.LevelFiles {
				w.LiveTables += int64(n)
			}
			for _, b := range tm.LevelBytes {
				w.LiveBytes += b
			}
			w.DeletedWindows = int64(deletedWindows)
			w.UserBytesDeleted = int64(deletedWindows) * int64(window) * int64(16+*valueSize)
		}
		results = append(results, w)
		fmt.Printf("%-14s %12d ops  %10.1f KOps/s  %8.3f GB written  writeAmp %6.2f  %7.2f allocs/op",
			bench, res.Ops, res.KOpsPerSec, res.WriteGB, res.WriteAmp, allocsPerOp)
		if lat != nil {
			fmt.Printf("  p50 %.1fus p99 %.1fus", lat.P50Micros, lat.P99Micros)
		}
		fmt.Println()
		if bench == "retention" {
			fmt.Printf("  retention: %d windows dropped (%.1f MB user data), live after drain: %d tables / %.1f MB\n",
				w.DeletedWindows, float64(w.UserBytesDeleted)/(1<<20), w.LiveTables, float64(w.LiveBytes)/(1<<20))
		}
	}

	m := db.Metrics()
	fmt.Printf("\nstore: %s (compression %s)\n%s", preset, opts.Compression, m.String())

	if *jsonPath != "" {
		report := jsonReport{
			Store:       preset.String(),
			Compression: opts.Compression.String(),
			Num:         *num,
			ValueSize:   *valueSize,
			Threads:     *threads,
			Concurrency: *concurrency,
			StoreScale:  *storeScale,
			Seed:        *seed,
			GoVersion:   runtime.Version(),
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
			Workloads:   results,

			WriteAmplification: m.WriteAmplification(),
			Flushes:            m.Flushes,
			Compactions:        m.Tree.Compactions,
			CommitGroups:       m.CommitGroups,
			BatchesPerGroup:    m.CommitGroupSize(),
			WALSyncs:           m.WALSyncs,
			SyncCommits:        m.SyncCommits,
			CompressionRatio:   m.Tree.Compression.Ratio(),

			WriteStallMS:              float64(m.StallNanos) / 1e6,
			CompactionUnits:           m.Tree.CompactionUnits,
			PeakCompactionParallelism: m.Tree.PeakUnitsInflight,
			PeakLevelParallelism:      m.Tree.MaxLevelParallelism(),
			ClaimConflicts:            m.Tree.ClaimConflicts,
			ClaimStallMS:              float64(m.Tree.ClaimStallNanos) / 1e6,

			Gets:                   m.Gets,
			GetTablesProbed:        m.GetTablesProbed,
			TablesProbedPerGet:     m.TablesProbedPerGet(),
			GetBloomNegatives:      m.GetBloomNegatives,
			GetBloomFalsePositives: m.GetBloomFalsePositives,
			GetBlockCacheHits:      m.GetBlockCacheHits,
			GetBlockCacheMisses:    m.GetBlockCacheMisses,
			GetBlockCacheHitRatio:  m.GetBlockCacheHitRatio(),

			IterTablesOpened:   m.IterTablesOpened,
			IterPrefixSkips:    m.IterPrefixSkips,
			IterTableSkipRatio: m.IterTableSkipRatio(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
