// Command ycsb runs the Yahoo! Cloud Serving Benchmark suite (§5.3,
// Table 5.3) against a store preset, optionally through the HyperDex or
// MongoDB application shims of §5.4.
//
// Example:
//
//	ycsb -store=pebblesdb -records=1000000 -ops=1000000 -threads=4
//	ycsb -store=hyperleveldb -app=hyperdex -workloads=LoadA,A,B
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pebblesdb"
	"pebblesdb/internal/apps"
	"pebblesdb/internal/harness"
	"pebblesdb/internal/ycsb"
)

var (
	store      = flag.String("store", "pebblesdb", "store preset: pebblesdb, hyperleveldb, leveldb, rocksdb, pebblesdb1")
	app        = flag.String("app", "", "application shim: hyperdex, mongodb, or empty for the bare store")
	workloads  = flag.String("workloads", "LoadA,A,B,C,D,F,LoadE,E", "comma-separated workload sequence")
	records    = flag.Uint64("records", 1_000_000, "records for load phases")
	ops        = flag.Uint64("ops", 1_000_000, "operations per run workload")
	threads    = flag.Int("threads", 4, "client threads (paper: 4)")
	valueSize  = flag.Int("value_size", 1024, "value size in bytes")
	storeScale = flag.Int("store_scale", 1, "divide store size parameters by this factor")
	dir        = flag.String("dir", "", "store directory on the OS filesystem; empty = in-memory")
)

func main() {
	flag.Parse()
	var preset pebblesdb.Preset
	switch strings.ToLower(*store) {
	case "pebblesdb":
		preset = pebblesdb.PresetPebblesDB
	case "hyperleveldb":
		preset = pebblesdb.PresetHyperLevelDB
	case "leveldb":
		preset = pebblesdb.PresetLevelDB
	case "rocksdb":
		preset = pebblesdb.PresetRocksDB
	case "pebblesdb1", "pebblesdb-1":
		preset = pebblesdb.PresetPebblesDB1
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}
	opts := preset.Options()
	harness.Scale(opts, *storeScale)

	var db *pebblesdb.DB
	var err error
	if *dir == "" {
		db, err = harness.Open(harness.Spec{Name: preset.String(), Options: opts})
	} else {
		db, err = pebblesdb.Open(*dir, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	var target ycsb.Store = harness.DBAdapter{DB: db}
	switch strings.ToLower(*app) {
	case "hyperdex":
		target = apps.NewHyperDex(target)
	case "mongodb":
		target = apps.NewMongoDB(target)
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown app shim %q\n", *app)
		os.Exit(2)
	}

	runner := ycsb.NewRunner(target)
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "LoadA", "LoadE":
			res, err := runner.Load(*records, *valueSize, *threads, 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %12d ops  %10.1f KOps/s\n", name, res.Ops, res.OpsPerSec/1000)
		default:
			w, ok := ycsb.Workloads[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
				os.Exit(2)
			}
			res, err := runner.Run(w, ycsb.RunnerOptions{
				RecordCount: *records, OpCount: *ops, Threads: *threads,
				ValueSize: *valueSize, Seed: 7,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %12d ops  %10.1f KOps/s  (%s)\n", name, res.Ops, res.OpsPerSec/1000, w.Description)
		}
	}
	m := db.Metrics()
	fmt.Printf("\ntotal write IO %.3f GB, write amplification %.2f\n",
		float64(m.IO.TotalWritten())/(1<<30), m.WriteAmplification())
}
