// Command flsmdump prints the FLSM layout of a store — the guards of each
// level and the sstables attached to them, the on-storage picture of the
// paper's Figure 3.1. With -demo it builds a small in-memory store first,
// so the guard structure can be inspected without any setup.
//
// Example:
//
//	flsmdump -demo
//	flsmdump -dir=/path/to/store
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pebblesdb"
	"pebblesdb/internal/harness"
)

var (
	dir  = flag.String("dir", "", "store directory to dump (OS filesystem)")
	demo = flag.Bool("demo", false, "build a demonstration in-memory store and dump it")
	keys = flag.Int("keys", 200_000, "demo: number of keys to insert")
)

func main() {
	flag.Parse()
	switch {
	case *demo:
		opts := pebblesdb.PresetPebblesDB.Options()
		harness.Scale(opts, 64)
		db, err := harness.Open(harness.Spec{Name: "demo", Options: opts})
		if err != nil {
			fmt.Fprintf(os.Stderr, "open: %v\n", err)
			os.Exit(1)
		}
		defer db.Close()
		rng := rand.New(rand.NewSource(42))
		val := make([]byte, 256)
		key := make([]byte, 0, 16)
		for i := 0; i < *keys; i++ {
			rng.Read(val)
			key = harness.KeyAt(key, uint64(rng.Intn(*keys*4)))
			if err := db.Put(key, val); err != nil {
				fmt.Fprintf(os.Stderr, "put: %v\n", err)
				os.Exit(1)
			}
		}
		if err := db.WaitIdle(); err != nil {
			fmt.Fprintf(os.Stderr, "compaction: %v\n", err)
			os.Exit(1)
		}
		db.Dump(os.Stdout)
	case *dir != "":
		db, err := pebblesdb.Open(*dir, pebblesdb.PresetPebblesDB.Options())
		if err != nil {
			fmt.Fprintf(os.Stderr, "open %s: %v\n", *dir, err)
			os.Exit(1)
		}
		defer db.Close()
		db.Dump(os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "usage: flsmdump -demo | -dir=<store>")
		os.Exit(2)
	}
}
