// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for recorded results).
//
// Example:
//
//	experiments -run fig1.1 -scale 500 -store_scale 64
//	experiments -run all -scale 2000 -store_scale 128
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pebblesdb/internal/experiments"
)

var (
	run        = flag.String("run", "all", "experiment id (fig1.1, tab5.1, ... ) or 'all'; see -list")
	list       = flag.Bool("list", false, "list experiment ids and exit")
	scale      = flag.Int("scale", 2000, "divide the paper's key counts by this factor")
	storeScale = flag.Int("store_scale", 128, "divide store size parameters by this factor")
	threads    = flag.Int("threads", 4, "threads for multi-threaded workloads")
)

func main() {
	flag.Parse()
	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	cfg := experiments.Config{
		Out:        os.Stdout,
		Scale:      *scale,
		StoreScale: *storeScale,
		Threads:    *threads,
	}
	var ids []string
	if *run == "all" {
		ids = experiments.Names()
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
