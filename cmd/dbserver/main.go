// Command dbserver serves the store over TCP: one process, M shard
// engines, keys routed to shards by consistent hashing. Each connection's
// writes accumulate into per-shard batches that feed the shards'
// group-commit pipelines; a tenant's whole keyspace drops with one
// DeleteRange frame. cmd/dbloadgen is the matching load generator.
//
// Example:
//
//	dbserver -addr=127.0.0.1:6380 -shards=4 -dir=/data/db -mem=4GiB
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pebblesdb"
	"pebblesdb/internal/harness"
	"pebblesdb/internal/server"
	"pebblesdb/internal/vfs"
)

var (
	addr   = flag.String("addr", "127.0.0.1:6380", "listen address")
	shards = flag.Int("shards", 4, "shard engine count (fixed for the life of a data directory)")
	dir    = flag.String("dir", "", "data directory root, one subdirectory per shard; empty = in-memory")
	store  = flag.String("store", "pebblesdb", "store preset: pebblesdb, hyperleveldb, leveldb, rocksdb, pebblesdb1")
	mem    = flag.String("mem", "1GiB", "process memory target split across shards; Options.Tuned scales caches and write buffers from it (0 = preset defaults)")
	accum  = flag.Int("accum", 0, "per-connection write accumulation cap in bytes (0 = default)")
	drain  = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout before connections are force-closed")
	quiet  = flag.Bool("quiet", false, "suppress startup and connection logs")
	obsFl  = flag.String("obs", "", "observability HTTP address (e.g. 127.0.0.1:6381): Prometheus /metrics, /debug/events flight recorders, /debug/metrics, /debug/pprof; empty = disabled")
	slowOp = flag.Duration("slowop", 0, "log RPCs and commits slower than this threshold with a stage breakdown (0 = disabled)")
)

func presetByName(name string) (pebblesdb.Preset, bool) {
	switch strings.ToLower(name) {
	case "pebblesdb":
		return pebblesdb.PresetPebblesDB, true
	case "hyperleveldb":
		return pebblesdb.PresetHyperLevelDB, true
	case "leveldb":
		return pebblesdb.PresetLevelDB, true
	case "rocksdb":
		return pebblesdb.PresetRocksDB, true
	case "pebblesdb1", "pebblesdb-1":
		return pebblesdb.PresetPebblesDB1, true
	}
	return 0, false
}

func main() {
	flag.Parse()
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	preset, ok := presetByName(*store)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "-shards must be >= 1")
		os.Exit(2)
	}
	memBytes, err := harness.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -mem: %v\n", err)
		os.Exit(2)
	}

	dbs := make([]*pebblesdb.DB, *shards)
	for i := range dbs {
		o := preset.Options()
		if *slowOp > 0 {
			o.SlowOpThreshold = *slowOp
			o.SlowOpLogger = logf
		}
		if memBytes > 0 {
			// The memory target is per process; each shard gets an equal
			// slice, and Tuned scales its caches and write buffers from it.
			o.Tuned(memBytes / int64(*shards))
		}
		var name string
		if *dir == "" {
			o.WithFS(vfs.NewMem())
			name = fmt.Sprintf("shard-%02d", i)
		} else {
			name = filepath.Join(*dir, fmt.Sprintf("shard-%02d", i))
			if err := os.MkdirAll(name, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "mkdir %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		db, err := pebblesdb.Open(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open shard %d: %v\n", i, err)
			os.Exit(1)
		}
		dbs[i] = db
	}

	srv := server.New(dbs, &server.Options{
		AccumBytes:      *accum,
		Logf:            logf,
		SlowOpThreshold: *slowOp,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	logf("dbserver: %d %s shards on %s (mem target %s)", *shards, preset.String(), ln.Addr(), *mem)

	var obsSrv *http.Server
	if *obsFl != "" {
		obsLn, err := net.Listen("tcp", *obsFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "listen obs %s: %v\n", *obsFl, err)
			os.Exit(1)
		}
		obsSrv = &http.Server{Handler: srv.DebugHandler()}
		go func() {
			if err := obsSrv.Serve(obsLn); err != nil && err != http.ErrServerClosed {
				logf("dbserver: obs server: %v", err)
			}
		}()
		logf("dbserver: observability on http://%s/metrics (/debug/events, /debug/metrics, /debug/pprof)", obsLn.Addr())
	}

	// SIGINT/SIGTERM drains gracefully: stop accepting, let in-flight
	// requests finish and their responses flush (Shutdown force-closes
	// stragglers after the -drain timeout), then close each shard
	// (DB.Close itself waits out reads that raced the drain).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case sig := <-sigCh:
		logf("dbserver: %v, draining (timeout %v)", sig, *drain)
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		}
	}
	st := srv.Stats()
	if obsSrv != nil {
		obsSrv.Close()
	}
	if err := srv.Shutdown(*drain); err != nil {
		logf("dbserver: %v", err)
	}
	for i, db := range dbs {
		if err := db.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "close shard %d: %v\n", i, err)
		}
	}
	logf("dbserver: served %d requests over %d connections in %.1fs (write amp %.2f)",
		st.Requests, st.TotalConns, st.UptimeSecs, st.WriteAmplification)
}
