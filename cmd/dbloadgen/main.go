// Command dbloadgen drives a dbserver over the wire: N concurrent
// connections, a configurable read/write/scan mix, per-tenant key
// prefixes, and pipelined requests. It reports ops/s and log-histogram
// latency percentiles per operation class, machine-readably with -json.
// An optional tenant teardown phase drops whole tenants with one
// DeleteRange frame each and verifies the keys are gone.
//
// Example:
//
//	dbloadgen -addr=127.0.0.1:6380 -conns=64 -ops=1000000 \
//	          -read_pct=70 -scan_pct=5 -tenants=16 -drop_tenants=2 -json=out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"pebblesdb/internal/harness"
	"pebblesdb/internal/server"
)

var (
	addr      = flag.String("addr", "127.0.0.1:6380", "dbserver address")
	conns     = flag.Int("conns", 64, "concurrent client connections")
	ops       = flag.Int("ops", 1_000_000, "total operations across all connections")
	valueSize = flag.Int("value_size", 1024, "value size in bytes (~50% compressible)")
	readPct   = flag.Int("read_pct", 50, "percent of ops that are Gets")
	scanPct   = flag.Int("scan_pct", 0, "percent of ops that are Scans (rest after reads+scans are Puts)")
	scanLimit = flag.Int("scan_limit", 10, "pairs per Scan")
	tenants   = flag.Int("tenants", 16, "tenant key prefixes; every key is tenant<t>/key<n>")
	keys      = flag.Int("keys", 1_000_000, "keyspace size per tenant")
	window    = flag.Int("window", 32, "pipelined requests in flight per connection (1 = strict request/response)")
	sync_     = flag.Bool("sync", false, "request durable (fsynced) writes")
	dropN     = flag.Int("drop_tenants", 0, "after the run, drop this many tenants via DeleteRange and verify emptiness")
	seed      = flag.Int64("seed", 1, "workload RNG seed")
	jsonPath  = flag.String("json", "", "write a machine-readable result file to this path")
)

type jsonLatency struct {
	Ops        int64   `json:"ops"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
}

type jsonReport struct {
	Addr       string `json:"addr"`
	Conns      int    `json:"conns"`
	Window     int    `json:"window"`
	Ops        int64  `json:"ops"`
	ValueSize  int    `json:"value_size"`
	ReadPct    int    `json:"read_pct"`
	ScanPct    int    `json:"scan_pct"`
	Tenants    int    `json:"tenants"`
	Sync       bool   `json:"sync"`
	Seed       int64  `json:"seed"`
	GoVersion  string `json:"go_version"`
	DurationNS int64  `json:"duration_ns"`

	KOpsPerSec float64      `json:"kops_per_sec"`
	Reads      *jsonLatency `json:"reads,omitempty"`
	Writes     *jsonLatency `json:"writes,omitempty"`
	Scans      *jsonLatency `json:"scans,omitempty"`
	NotFound   int64        `json:"not_found"`
	Errors     int64        `json:"errors"`

	DroppedTenants   int     `json:"dropped_tenants,omitempty"`
	DropMillis       float64 `json:"drop_ms,omitempty"`
	SurvivorsScanned int     `json:"survivors_scanned,omitempty"`

	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

func latencyJSON(rec *harness.LatencyRecorder) *jsonLatency {
	if rec == nil || rec.Count() == 0 {
		return nil
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return &jsonLatency{
		Ops:        rec.Count(),
		MeanMicros: us(rec.Mean()),
		P50Micros:  us(rec.Percentile(0.50)),
		P90Micros:  us(rec.Percentile(0.90)),
		P99Micros:  us(rec.Percentile(0.99)),
		P999Micros: us(rec.Percentile(0.999)),
		MaxMicros:  us(rec.Max()),
	}
}

// opKind tags an in-flight request so its response lands in the right
// recorder. Responses arrive in send order, so a FIFO of (kind, start
// time) per connection matches each response to its request.
type opKind byte

const (
	kindWrite opKind = iota
	kindRead
	kindScan
)

type inflight struct {
	kind  opKind
	start time.Time
}

type counters struct {
	notFound int64
	errors   int64
}

// worker drives one connection: keep up to `window` requests in flight,
// record each response's latency against its send time. The pipelining is
// what lets one connection hold a run of writes for the server's
// accumulator to batch.
func worker(th, perConn int, readCut, scanCut float64, reads, writes, scans *harness.LatencyRecorder, ctr *counters) error {
	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(*seed + int64(th)*7919))
	vals := harness.NewValueSource(*valueSize, harness.CompressibleFraction, *seed+int64(th))
	var flags byte
	if *sync_ {
		flags = server.FlagSync
	}
	fifo := make([]inflight, 0, *window)
	key := make([]byte, 0, 64)

	recvOne := func() error {
		resp, err := c.Recv()
		if err != nil {
			return err
		}
		f := fifo[0]
		fifo = fifo[:copy(fifo, fifo[1:])]
		d := time.Since(f.start)
		switch f.kind {
		case kindRead:
			reads.Record(d)
			if resp.Status == server.StatusNotFound {
				ctr.notFound++
			}
		case kindScan:
			scans.Record(d)
		default:
			writes.Record(d)
		}
		if resp.Status == server.StatusErr {
			ctr.errors++
		}
		return nil
	}

	for sent := 0; sent < perConn || len(fifo) > 0; {
		for sent < perConn && len(fifo) < *window {
			ten := rng.Intn(*tenants)
			n := rng.Intn(*keys)
			key = fmt.Appendf(key[:0], "tenant%04d/key%09d", ten, n)
			r := rng.Float64()
			var kind opKind
			var err error
			switch {
			case r < readCut:
				kind = kindRead
				err = c.SendGet(key)
			case r < readCut+scanCut:
				kind = kindScan
				end := fmt.Appendf(nil, "tenant%04d/key%09d", ten, n+*scanLimit*2)
				err = c.SendScan(key, end, uint32(*scanLimit))
			default:
				kind = kindWrite
				err = c.SendPut(key, vals.Next(), flags)
			}
			if err != nil {
				return err
			}
			fifo = append(fifo, inflight{kind, time.Now()})
			sent++
		}
		if err := c.Flush(); err != nil {
			return err
		}
		// Drain the whole window before refilling: burst pipelining. With
		// -window=1 this degenerates to request/response ping-pong.
		for len(fifo) > 0 {
			if err := recvOne(); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropTenants deletes n whole tenants, one DeleteRange frame each (the
// server broadcasts it as one O(1) range tombstone per shard), then
// verifies over the wire that no key survived anywhere.
func dropTenants(n int) (time.Duration, int, error) {
	c, err := server.Dial(*addr)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	start := time.Now()
	for t := 0; t < n; t++ {
		lo := fmt.Appendf(nil, "tenant%04d/", t)
		hi := fmt.Appendf(nil, "tenant%04d0", t) // '0' sorts right after '/'
		if err := c.DeleteRange(lo, hi, 0); err != nil {
			return 0, 0, fmt.Errorf("drop tenant %d: %w", t, err)
		}
	}
	elapsed := time.Since(start)
	for t := 0; t < n; t++ {
		lo := fmt.Appendf(nil, "tenant%04d/", t)
		hi := fmt.Appendf(nil, "tenant%04d0", t)
		pairs, err := c.Scan(lo, hi, 100)
		if err != nil {
			return 0, 0, fmt.Errorf("verify tenant %d: %w", t, err)
		}
		if len(pairs) > 0 {
			return 0, 0, fmt.Errorf("tenant %d: %d keys survived DeleteRange", t, len(pairs))
		}
	}
	// A survivor tenant must still answer, or the drop proved the wrong
	// thing.
	survivors := 0
	if n < *tenants {
		lo := fmt.Appendf(nil, "tenant%04d/", n)
		hi := fmt.Appendf(nil, "tenant%04d0", n)
		pairs, err := c.Scan(lo, hi, 100)
		if err != nil {
			return 0, 0, err
		}
		survivors = len(pairs)
	}
	return elapsed, survivors, nil
}

func main() {
	flag.Parse()
	if *readPct+*scanPct > 100 {
		fmt.Fprintln(os.Stderr, "-read_pct + -scan_pct must be <= 100")
		os.Exit(2)
	}
	if *conns < 1 || *window < 1 || *tenants < 1 {
		fmt.Fprintln(os.Stderr, "-conns, -window and -tenants must be >= 1")
		os.Exit(2)
	}
	readCut := float64(*readPct) / 100
	scanCut := float64(*scanPct) / 100

	var reads, writes, scans harness.LatencyRecorder
	perConn := *ops / *conns
	ctrs := make([]counters, *conns)
	errs := make([]error, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < *conns; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			errs[th] = worker(th, perConn, readCut, scanCut, &reads, &writes, &scans, &ctrs[th])
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
	}

	total := reads.Count() + writes.Count() + scans.Count()
	rep := jsonReport{
		Addr:       *addr,
		Conns:      *conns,
		Window:     *window,
		Ops:        total,
		ValueSize:  *valueSize,
		ReadPct:    *readPct,
		ScanPct:    *scanPct,
		Tenants:    *tenants,
		Sync:       *sync_,
		Seed:       *seed,
		GoVersion:  runtime.Version(),
		DurationNS: elapsed.Nanoseconds(),
		KOpsPerSec: float64(total) / elapsed.Seconds() / 1e3,
		Reads:      latencyJSON(&reads),
		Writes:     latencyJSON(&writes),
		Scans:      latencyJSON(&scans),
	}
	for _, c := range ctrs {
		rep.NotFound += c.notFound
		rep.Errors += c.errors
	}

	if *dropN > 0 {
		d, survivors, err := dropTenants(*dropN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tenant drop: %v\n", err)
			os.Exit(1)
		}
		rep.DroppedTenants = *dropN
		rep.DropMillis = float64(d.Nanoseconds()) / 1e6
		rep.SurvivorsScanned = survivors
	}

	if c, err := server.Dial(*addr); err == nil {
		if raw, err := c.Stats(); err == nil {
			rep.ServerStats = json.RawMessage(append([]byte(nil), raw...))
		}
		c.Close()
	}

	fmt.Printf("dbloadgen: %d ops over %d conns (window %d) in %.2fs = %.1f KOps/s\n",
		total, *conns, *window, elapsed.Seconds(), rep.KOpsPerSec)
	class := func(name string, l *jsonLatency) {
		if l == nil {
			return
		}
		fmt.Printf("  %-6s %9d ops  mean %7.1fus  p50 %7.1fus  p99 %8.1fus  p999 %8.1fus\n",
			name, l.Ops, l.MeanMicros, l.P50Micros, l.P99Micros, l.P999Micros)
	}
	class("reads", rep.Reads)
	class("writes", rep.Writes)
	class("scans", rep.Scans)
	if rep.NotFound > 0 {
		fmt.Printf("  not-found reads: %d\n", rep.NotFound)
	}
	if rep.Errors > 0 {
		fmt.Printf("  ERROR responses: %d\n", rep.Errors)
	}
	if rep.DroppedTenants > 0 {
		fmt.Printf("  dropped %d tenants in %.1fms (verified empty; survivor scan saw %d keys)\n",
			rep.DroppedTenants, rep.DropMillis, rep.SurvivorsScanned)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write -json: %v\n", err)
			os.Exit(1)
		}
	}
}
