// Command dbloadgen drives a dbserver over the wire: N concurrent
// connections, a configurable read/write/scan mix, per-tenant key
// prefixes, and pipelined requests. It reports ops/s and log-histogram
// latency percentiles per operation class, machine-readably with -json.
// An optional tenant teardown phase drops whole tenants with one
// DeleteRange frame each and verifies the keys are gone.
//
// Example:
//
//	dbloadgen -addr=127.0.0.1:6380 -conns=64 -ops=1000000 \
//	          -read_pct=70 -scan_pct=5 -tenants=16 -drop_tenants=2 -json=out.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pebblesdb/internal/harness"
	"pebblesdb/internal/server"
)

var (
	addr      = flag.String("addr", "127.0.0.1:6380", "dbserver address")
	conns     = flag.Int("conns", 64, "concurrent client connections")
	ops       = flag.Int("ops", 1_000_000, "total operations across all connections")
	valueSize = flag.Int("value_size", 1024, "value size in bytes (~50% compressible)")
	readPct   = flag.Int("read_pct", 50, "percent of ops that are Gets")
	scanPct   = flag.Int("scan_pct", 0, "percent of ops that are Scans (rest after reads+scans are Puts)")
	scanLimit = flag.Int("scan_limit", 10, "pairs per Scan")
	tenants   = flag.Int("tenants", 16, "tenant key prefixes; every key is tenant<t>/key<n>")
	keys      = flag.Int("keys", 1_000_000, "keyspace size per tenant")
	window    = flag.Int("window", 32, "pipelined requests in flight per connection (1 = strict request/response)")
	sync_     = flag.Bool("sync", false, "request durable (fsynced) writes")
	dropN     = flag.Int("drop_tenants", 0, "after the run, drop this many tenants via DeleteRange and verify emptiness")
	seed      = flag.Int64("seed", 1, "workload RNG seed")
	jsonPath  = flag.String("json", "", "write a machine-readable result file to this path")
	obsURL    = flag.String("obs", "", "dbserver observability base URL (e.g. http://127.0.0.1:6381); polls /metrics during the run and reports server-side commit latency vs client-observed write latency")
	obsPoll   = flag.Duration("obs_poll", time.Second, "poll interval for -obs")
)

type jsonLatency struct {
	Ops        int64   `json:"ops"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
}

type jsonReport struct {
	Addr       string `json:"addr"`
	Conns      int    `json:"conns"`
	Window     int    `json:"window"`
	Ops        int64  `json:"ops"`
	ValueSize  int    `json:"value_size"`
	ReadPct    int    `json:"read_pct"`
	ScanPct    int    `json:"scan_pct"`
	Tenants    int    `json:"tenants"`
	Sync       bool   `json:"sync"`
	Seed       int64  `json:"seed"`
	GoVersion  string `json:"go_version"`
	DurationNS int64  `json:"duration_ns"`

	KOpsPerSec float64      `json:"kops_per_sec"`
	Reads      *jsonLatency `json:"reads,omitempty"`
	Writes     *jsonLatency `json:"writes,omitempty"`
	Scans      *jsonLatency `json:"scans,omitempty"`
	NotFound   int64        `json:"not_found"`
	Errors     int64        `json:"errors"`

	DroppedTenants   int     `json:"dropped_tenants,omitempty"`
	DropMillis       float64 `json:"drop_ms,omitempty"`
	SurvivorsScanned int     `json:"survivors_scanned,omitempty"`

	// ServerLatency compares the server's own commit-latency histogram
	// (scraped from -obs /metrics during the run) against the
	// client-observed write latency; the delta is the network + framing +
	// server queueing overhead the engine never sees.
	ServerLatency *jsonServerLatency `json:"server_latency,omitempty"`

	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

// jsonServerLatency is the -obs scrape summary. Server percentiles are
// bucket upper bounds from the Prometheus histogram delta over the run, so
// they are conservative (the true value is at most the reported one).
type jsonServerLatency struct {
	Polls                   int     `json:"polls"`
	ServerCommits           int64   `json:"server_commits"`
	ServerCommitMeanMicros  float64 `json:"server_commit_mean_us"`
	ServerCommitP50Micros   float64 `json:"server_commit_p50_us"`
	ServerCommitP99Micros   float64 `json:"server_commit_p99_us"`
	ClientWriteMeanMicros   float64 `json:"client_write_mean_us"`
	ClientMinusServerMicros float64 `json:"client_minus_server_mean_us"`
}

// promSample is one scrape of the server's commit-wait histogram from the
// -obs /metrics endpoint: cumulative buckets keyed by their le bound in
// seconds (+Inf keyed as math.Inf(1)), plus the running sum and count.
type promSample struct {
	sum     float64
	count   int64
	buckets map[float64]int64
}

func scrapeCommitWait(url string) (promSample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return promSample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return promSample{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	s := promSample{buckets: make(map[float64]int64)}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pebblesdb_commit_wait_seconds_sum "):
			s.sum, _ = strconv.ParseFloat(strings.TrimPrefix(line, "pebblesdb_commit_wait_seconds_sum "), 64)
		case strings.HasPrefix(line, "pebblesdb_commit_wait_seconds_count "):
			v, _ := strconv.ParseFloat(strings.TrimPrefix(line, "pebblesdb_commit_wait_seconds_count "), 64)
			s.count = int64(v)
		case strings.HasPrefix(line, `pebblesdb_commit_wait_seconds_bucket{le="`):
			rest := strings.TrimPrefix(line, `pebblesdb_commit_wait_seconds_bucket{le="`)
			i := strings.Index(rest, `"} `)
			if i < 0 {
				continue
			}
			le := math.Inf(1)
			if rest[:i] != "+Inf" {
				le, _ = strconv.ParseFloat(rest[:i], 64)
			}
			v, _ := strconv.ParseFloat(rest[i+3:], 64)
			s.buckets[le] = int64(v)
		}
	}
	return s, sc.Err()
}

// pollMetrics scrapes url immediately, then every `every` until stop is
// closed, then once more so the final sample covers the whole run. The
// collected samples arrive on the returned channel after the final scrape.
func pollMetrics(url string, every time.Duration, stop <-chan struct{}) <-chan []promSample {
	out := make(chan []promSample, 1)
	go func() {
		var samples []promSample
		scrape := func() {
			if s, err := scrapeCommitWait(url); err == nil {
				samples = append(samples, s)
			} else {
				fmt.Fprintf(os.Stderr, "obs poll: %v\n", err)
			}
		}
		scrape()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				scrape()
				out <- samples
				return
			case <-t.C:
				scrape()
			}
		}
	}()
	return out
}

// serverLatencySummary reduces the scrape series to the run-window delta:
// commits the server retired between the first and last sample, their mean
// wait, and histogram-derived p50/p99 (bucket upper bounds). The client
// write mean minus the server commit mean is the overhead added outside the
// engine: framing, network, and server-side queueing.
func serverLatencySummary(samples []promSample, clientWrites *jsonLatency) *jsonServerLatency {
	if len(samples) < 2 {
		return nil
	}
	a, b := samples[0], samples[len(samples)-1]
	n := b.count - a.count
	if n <= 0 {
		return nil
	}
	les := make([]float64, 0, len(b.buckets))
	for le := range b.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	pct := func(q float64) float64 {
		target := int64(math.Ceil(q * float64(n)))
		lastFinite := 0.0
		for _, le := range les {
			if !math.IsInf(le, 1) {
				lastFinite = le
			}
			if b.buckets[le]-a.buckets[le] >= target {
				if math.IsInf(le, 1) {
					break // landed in the overflow bucket: report the largest bound
				}
				return le * 1e6
			}
		}
		return lastFinite * 1e6
	}
	out := &jsonServerLatency{
		Polls:                  len(samples),
		ServerCommits:          n,
		ServerCommitMeanMicros: (b.sum - a.sum) / float64(n) * 1e6,
		ServerCommitP50Micros:  pct(0.50),
		ServerCommitP99Micros:  pct(0.99),
	}
	if clientWrites != nil {
		out.ClientWriteMeanMicros = clientWrites.MeanMicros
		out.ClientMinusServerMicros = clientWrites.MeanMicros - out.ServerCommitMeanMicros
	}
	return out
}

func latencyJSON(rec *harness.LatencyRecorder) *jsonLatency {
	if rec == nil || rec.Count() == 0 {
		return nil
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return &jsonLatency{
		Ops:        rec.Count(),
		MeanMicros: us(rec.Mean()),
		P50Micros:  us(rec.Percentile(0.50)),
		P90Micros:  us(rec.Percentile(0.90)),
		P99Micros:  us(rec.Percentile(0.99)),
		P999Micros: us(rec.Percentile(0.999)),
		MaxMicros:  us(rec.Max()),
	}
}

// opKind tags an in-flight request so its response lands in the right
// recorder. Responses arrive in send order, so a FIFO of (kind, start
// time) per connection matches each response to its request.
type opKind byte

const (
	kindWrite opKind = iota
	kindRead
	kindScan
)

type inflight struct {
	kind  opKind
	start time.Time
}

type counters struct {
	notFound int64
	errors   int64
}

// worker drives one connection: keep up to `window` requests in flight,
// record each response's latency against its send time. The pipelining is
// what lets one connection hold a run of writes for the server's
// accumulator to batch.
func worker(th, perConn int, readCut, scanCut float64, reads, writes, scans *harness.LatencyRecorder, ctr *counters) error {
	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(*seed + int64(th)*7919))
	vals := harness.NewValueSource(*valueSize, harness.CompressibleFraction, *seed+int64(th))
	var flags byte
	if *sync_ {
		flags = server.FlagSync
	}
	fifo := make([]inflight, 0, *window)
	key := make([]byte, 0, 64)

	recvOne := func() error {
		resp, err := c.Recv()
		if err != nil {
			return err
		}
		f := fifo[0]
		fifo = fifo[:copy(fifo, fifo[1:])]
		d := time.Since(f.start)
		switch f.kind {
		case kindRead:
			reads.Record(d)
			if resp.Status == server.StatusNotFound {
				ctr.notFound++
			}
		case kindScan:
			scans.Record(d)
		default:
			writes.Record(d)
		}
		if resp.Status == server.StatusErr {
			ctr.errors++
		}
		return nil
	}

	for sent := 0; sent < perConn || len(fifo) > 0; {
		for sent < perConn && len(fifo) < *window {
			ten := rng.Intn(*tenants)
			n := rng.Intn(*keys)
			key = fmt.Appendf(key[:0], "tenant%04d/key%09d", ten, n)
			r := rng.Float64()
			var kind opKind
			var err error
			switch {
			case r < readCut:
				kind = kindRead
				err = c.SendGet(key)
			case r < readCut+scanCut:
				kind = kindScan
				end := fmt.Appendf(nil, "tenant%04d/key%09d", ten, n+*scanLimit*2)
				err = c.SendScan(key, end, uint32(*scanLimit))
			default:
				kind = kindWrite
				err = c.SendPut(key, vals.Next(), flags)
			}
			if err != nil {
				return err
			}
			fifo = append(fifo, inflight{kind, time.Now()})
			sent++
		}
		if err := c.Flush(); err != nil {
			return err
		}
		// Drain the whole window before refilling: burst pipelining. With
		// -window=1 this degenerates to request/response ping-pong.
		for len(fifo) > 0 {
			if err := recvOne(); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropTenants deletes n whole tenants, one DeleteRange frame each (the
// server broadcasts it as one O(1) range tombstone per shard), then
// verifies over the wire that no key survived anywhere.
func dropTenants(n int) (time.Duration, int, error) {
	c, err := server.Dial(*addr)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	start := time.Now()
	for t := 0; t < n; t++ {
		lo := fmt.Appendf(nil, "tenant%04d/", t)
		hi := fmt.Appendf(nil, "tenant%04d0", t) // '0' sorts right after '/'
		if err := c.DeleteRange(lo, hi, 0); err != nil {
			return 0, 0, fmt.Errorf("drop tenant %d: %w", t, err)
		}
	}
	elapsed := time.Since(start)
	for t := 0; t < n; t++ {
		lo := fmt.Appendf(nil, "tenant%04d/", t)
		hi := fmt.Appendf(nil, "tenant%04d0", t)
		pairs, err := c.Scan(lo, hi, 100)
		if err != nil {
			return 0, 0, fmt.Errorf("verify tenant %d: %w", t, err)
		}
		if len(pairs) > 0 {
			return 0, 0, fmt.Errorf("tenant %d: %d keys survived DeleteRange", t, len(pairs))
		}
	}
	// A survivor tenant must still answer, or the drop proved the wrong
	// thing.
	survivors := 0
	if n < *tenants {
		lo := fmt.Appendf(nil, "tenant%04d/", n)
		hi := fmt.Appendf(nil, "tenant%04d0", n)
		pairs, err := c.Scan(lo, hi, 100)
		if err != nil {
			return 0, 0, err
		}
		survivors = len(pairs)
	}
	return elapsed, survivors, nil
}

func main() {
	flag.Parse()
	if *readPct+*scanPct > 100 {
		fmt.Fprintln(os.Stderr, "-read_pct + -scan_pct must be <= 100")
		os.Exit(2)
	}
	if *conns < 1 || *window < 1 || *tenants < 1 {
		fmt.Fprintln(os.Stderr, "-conns, -window and -tenants must be >= 1")
		os.Exit(2)
	}
	readCut := float64(*readPct) / 100
	scanCut := float64(*scanPct) / 100

	var reads, writes, scans harness.LatencyRecorder
	perConn := *ops / *conns
	ctrs := make([]counters, *conns)
	errs := make([]error, *conns)
	var obsCh <-chan []promSample
	var obsStop chan struct{}
	if *obsURL != "" {
		obsStop = make(chan struct{})
		obsCh = pollMetrics(strings.TrimSuffix(*obsURL, "/")+"/metrics", *obsPoll, obsStop)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < *conns; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			errs[th] = worker(th, perConn, readCut, scanCut, &reads, &writes, &scans, &ctrs[th])
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var obsSamples []promSample
	if obsCh != nil {
		close(obsStop)
		obsSamples = <-obsCh
	}
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
	}

	total := reads.Count() + writes.Count() + scans.Count()
	rep := jsonReport{
		Addr:       *addr,
		Conns:      *conns,
		Window:     *window,
		Ops:        total,
		ValueSize:  *valueSize,
		ReadPct:    *readPct,
		ScanPct:    *scanPct,
		Tenants:    *tenants,
		Sync:       *sync_,
		Seed:       *seed,
		GoVersion:  runtime.Version(),
		DurationNS: elapsed.Nanoseconds(),
		KOpsPerSec: float64(total) / elapsed.Seconds() / 1e3,
		Reads:      latencyJSON(&reads),
		Writes:     latencyJSON(&writes),
		Scans:      latencyJSON(&scans),
	}
	for _, c := range ctrs {
		rep.NotFound += c.notFound
		rep.Errors += c.errors
	}
	rep.ServerLatency = serverLatencySummary(obsSamples, rep.Writes)

	if *dropN > 0 {
		d, survivors, err := dropTenants(*dropN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tenant drop: %v\n", err)
			os.Exit(1)
		}
		rep.DroppedTenants = *dropN
		rep.DropMillis = float64(d.Nanoseconds()) / 1e6
		rep.SurvivorsScanned = survivors
	}

	if c, err := server.Dial(*addr); err == nil {
		if raw, err := c.Stats(); err == nil {
			rep.ServerStats = json.RawMessage(append([]byte(nil), raw...))
		}
		c.Close()
	}

	fmt.Printf("dbloadgen: %d ops over %d conns (window %d) in %.2fs = %.1f KOps/s\n",
		total, *conns, *window, elapsed.Seconds(), rep.KOpsPerSec)
	class := func(name string, l *jsonLatency) {
		if l == nil {
			return
		}
		fmt.Printf("  %-6s %9d ops  mean %7.1fus  p50 %7.1fus  p99 %8.1fus  p999 %8.1fus\n",
			name, l.Ops, l.MeanMicros, l.P50Micros, l.P99Micros, l.P999Micros)
	}
	class("reads", rep.Reads)
	class("writes", rep.Writes)
	class("scans", rep.Scans)
	if rep.NotFound > 0 {
		fmt.Printf("  not-found reads: %d\n", rep.NotFound)
	}
	if rep.Errors > 0 {
		fmt.Printf("  ERROR responses: %d\n", rep.Errors)
	}
	if rep.DroppedTenants > 0 {
		fmt.Printf("  dropped %d tenants in %.1fms (verified empty; survivor scan saw %d keys)\n",
			rep.DroppedTenants, rep.DropMillis, rep.SurvivorsScanned)
	}
	if sl := rep.ServerLatency; sl != nil {
		fmt.Printf("  server: %d commits  mean %.1fus  p50 <=%.1fus  p99 <=%.1fus  (%d polls)\n",
			sl.ServerCommits, sl.ServerCommitMeanMicros, sl.ServerCommitP50Micros, sl.ServerCommitP99Micros, sl.Polls)
		fmt.Printf("  client-server write delta: %.1fus (client mean %.1fus - server commit mean %.1fus)\n",
			sl.ClientMinusServerMicros, sl.ClientWriteMeanMicros, sl.ServerCommitMeanMicros)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write -json: %v\n", err)
			os.Exit(1)
		}
	}
}
