package pebblesdb

import (
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/compress"
	"pebblesdb/internal/engine"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/vfs"
)

// Compression selects the sstable data-block codec.
type Compression int

const (
	// CompressionDefault uses the store default, Snappy: per-block
	// compression is a default-on throughput optimization in every
	// production LSM (LevelDB, RocksDB, Pebble) — it cuts write IO during
	// flush/compaction and read IO on cold lookups.
	CompressionDefault Compression = iota
	// CompressionNone stores blocks raw.
	CompressionNone
	// CompressionSnappy compresses data blocks with the pure-Go Snappy
	// codec when a block shrinks by at least 12.5%.
	CompressionSnappy
)

// String returns the display name of the codec the value selects. It
// follows kind(), so reporting always matches behavior — including for
// out-of-range values, which behave as the default.
func (c Compression) String() string { return c.kind().String() }

// Engine selects the on-storage data structure.
type Engine int

const (
	// EngineFLSM is the fragmented log-structured merge tree (PebblesDB).
	EngineFLSM Engine = iota
	// EngineLeveled is the classic leveled LSM (LevelDB lineage).
	EngineLeveled
)

// Preset names the store configurations used throughout the paper's
// evaluation (§5.1). A preset expands to a full Options value that can be
// further customized.
type Preset int

const (
	// PresetPebblesDB: FLSM, 4 MB memtables, level0 slowdown/stop 8/12,
	// sstable bloom filters, parallel seeks, seek-based and size-ratio
	// compaction (the paper's default PebblesDB configuration).
	PresetPebblesDB Preset = iota
	// PresetHyperLevelDB: leveled tree, 4 MB memtables, 8/12 triggers,
	// multi-threaded compaction, with sstable bloom filters added (§5.1:
	// "all numbers presented for HyperLevelDB are with bloom filters").
	PresetHyperLevelDB
	// PresetLevelDB: leveled tree, 4 MB memtables, 8/12 triggers, a single
	// compaction thread, 2 MB target files.
	PresetLevelDB
	// PresetRocksDB: leveled tree, 64 MB memtables, slowdown/stop 20/24,
	// multi-threaded compaction, 64 MB target files.
	PresetRocksDB
	// PresetPebblesDB1 is PebblesDB with max_sstables_per_guard = 1, which
	// makes FLSM behave like an LSM (§3.5; "PebblesDB-1" in Fig 5.1d).
	PresetPebblesDB1
)

// String returns the preset's display name as used in the paper's figures.
func (p Preset) String() string {
	switch p {
	case PresetPebblesDB:
		return "PebblesDB"
	case PresetHyperLevelDB:
		return "HyperLevelDB"
	case PresetLevelDB:
		return "LevelDB"
	case PresetRocksDB:
		return "RocksDB"
	case PresetPebblesDB1:
		return "PebblesDB-1"
	}
	return "Unknown"
}

// Options configures a store. The zero value is not valid; start from a
// Preset's Options and adjust.
type Options struct {
	// Engine selects FLSM or leveled storage.
	Engine Engine

	// InMemory, if true, backs the store with a process-local in-memory
	// filesystem (deterministic benchmarking, tests). The directory name
	// becomes a namespace within that filesystem.
	InMemory bool

	// MemtableSize is the flush threshold in bytes.
	MemtableSize int
	// L0CompactionTrigger / L0SlowdownTrigger / L0StopTrigger control
	// level-0 behaviour (§5.1).
	L0CompactionTrigger int
	L0SlowdownTrigger   int
	L0StopTrigger       int
	// NumLevels is the level count including L0.
	NumLevels int
	// LevelBaseBytes / LevelMultiplier size the level capacities.
	LevelBaseBytes  int64
	LevelMultiplier int
	// TargetFileSize bounds leveled-compaction outputs.
	TargetFileSize int64
	// BlockSize is the sstable block size (uncompressed).
	BlockSize int
	// Compression selects the sstable data-block codec; the zero value
	// (CompressionDefault) is Snappy.
	Compression Compression
	// BloomBitsPerKey sizes sstable bloom filters; negative disables them.
	BloomBitsPerKey int
	// PrefixBloomLength, when positive (1..255), adds a second bloom filter
	// to every new sstable over the distinct first-PrefixBloomLength-byte
	// prefixes of its user keys. Iterators opened with IterOptions.Prefix
	// of exactly this length skip sstables whose filter rules the prefix
	// out before any data-block IO — cheap pruning inside FLSM guards,
	// whose sstables overlap by design. 0 disables; existing tables (and
	// those written while disabled) stay readable either way.
	PrefixBloomLength int
	// BlockCacheSize / TableCacheSize bound cache memory (Fig 5.2b).
	BlockCacheSize int64
	TableCacheSize int

	// TopLevelBits / BitDecrement control guard probability (§4.4).
	TopLevelBits int
	BitDecrement int
	// MaxSSTablesPerGuard caps sstables per guard (§3.5); 1 = LSM-like.
	MaxSSTablesPerGuard int
	// SeekCompactionThreshold triggers guard/file compaction after this
	// many seeks (§4.2); negative disables.
	SeekCompactionThreshold int
	// SizeRatioPct triggers aggressive level compaction (§4.2); negative
	// disables.
	SizeRatioPct int
	// ParallelSeeks enables concurrent last-level sstable positioning
	// (§4.2).
	ParallelSeeks bool
	// ParallelGuardCompaction enables guard-granular compaction
	// parallelism (paper §7 future work, implemented here).
	ParallelGuardCompaction bool
	// MaxCompactionConcurrency is the background compaction thread count.
	MaxCompactionConcurrency int
	// CompactionUnitGuards is the minimum number of guard groups one FLSM
	// compaction unit claims when draining an over-threshold level; the
	// level's groups split into about MaxCompactionConcurrency units, but
	// never smaller than this floor. 0 selects the default (4).
	CompactionUnitGuards int
	// WALSync makes every commit durable before it returns, as if each
	// carried WriteOptions{Sync: true}; concurrent commits still share
	// amortized fsyncs.
	WALSync bool
	// MaxBgRetries is how many times a failed background flush or
	// compaction is retried (with capped exponential backoff) before the
	// store degrades to read-only; corruption never retries. 0 selects the
	// default (3), negative disables retries.
	MaxBgRetries int
	// BgRetryDelay is the initial backoff between background retries,
	// doubling per attempt up to one second. 0 selects the default (50ms).
	BgRetryDelay time.Duration

	// EventListener, when non-nil, receives structured begin/end events for
	// background activity: flushes, compactions, WAL rotations, sync
	// stalls, manifest rotations, write stalls, background errors,
	// read-only degradation and Resume. Callbacks run synchronously on
	// engine goroutines — keep them fast and non-blocking. Independent of
	// the listener, the store always retains the most recent events in an
	// in-memory flight recorder (DB.RecentEvents).
	EventListener obs.Listener
	// SlowOpThreshold, when positive, logs a structured line (via
	// SlowOpLogger) for every commit slower than the threshold, broken
	// down by stage: write-stall time, WAL sync, memtable apply, and
	// residual queueing wait. 0 disables slow-op logging.
	SlowOpThreshold time.Duration
	// SlowOpLogger receives slow-op lines; nil falls back to the standard
	// library logger.
	SlowOpLogger obs.Logger

	// fs overrides the filesystem (tests).
	fs vfs.FS
}

// ReadOptions configures a single Get. A nil *ReadOptions uses the
// defaults: read the latest committed state.
type ReadOptions struct {
	// Snapshot pins the read to a point-in-time view; nil reads the latest
	// committed state.
	Snapshot *Snapshot
	// Buf, when non-nil, is the destination for the value: Get appends the
	// value to Buf[:0] and returns the result. Reusing a buffer with
	// sufficient capacity across Gets makes point reads allocation-free.
	// DB.GetTo is the same mechanism as an explicit argument.
	Buf []byte
}

// WriteOptions configures a single commit. A nil *WriteOptions uses the
// defaults: the commit is written to the WAL but not fsynced (it survives
// process crashes, not machine crashes), unless Options.WALSync forces
// syncs globally.
type WriteOptions struct {
	// Sync fsyncs the WAL before the commit returns, making it durable
	// against machine crashes (per-commit durability; the paper's
	// benchmarks distinguish sync and no-sync writes, §5.1). Concurrent
	// sync commits share fsyncs through the group-commit pipeline — the
	// guarantee is per-commit, the cost is amortized across however many
	// commits reached the log before the fsync (see Metrics.SyncsPerCommit).
	Sync bool
}

// Sync and NoSync are the common WriteOptions, for call-site readability:
//
//	db.Apply(b, pebblesdb.Sync)
var (
	Sync   = &WriteOptions{Sync: true}
	NoSync = &WriteOptions{Sync: false}
)

// IterOptions configures an iterator. A nil *IterOptions uses the
// defaults: unbounded, latest committed state.
type IterOptions struct {
	// LowerBound restricts the iterator to keys >= LowerBound (inclusive);
	// nil = unbounded. The bound is enforced on every positioning call and
	// lets the iterator prune guards and sstables before any IO.
	LowerBound []byte
	// UpperBound restricts the iterator to keys < UpperBound (exclusive);
	// nil = unbounded.
	UpperBound []byte
	// Prefix restricts the iterator to keys starting with these bytes,
	// equivalent to bounds [Prefix, successor(Prefix)) intersected with
	// LowerBound/UpperBound. When its length equals the store's
	// PrefixBloomLength, sstables whose prefix bloom filter rules the
	// prefix out are skipped without any block IO.
	Prefix []byte
	// Snapshot pins the iterator to a point-in-time view; nil observes the
	// latest committed state as of iterator creation.
	Snapshot *Snapshot
}

// kind maps the public Compression to the internal codec selector.
// Values outside the defined constants behave as CompressionDefault.
func (c Compression) kind() compress.Kind {
	if c == CompressionNone {
		return compress.None
	}
	return compress.Snappy
}

// sharedMemFS backs every InMemory store in the process, namespaced by
// directory, so reopening an in-memory store by path works.
var sharedMemFS = vfs.NewMem()

// Options expands the preset into a concrete Options value.
func (p Preset) Options() *Options {
	o := &Options{
		MemtableSize:             4 << 20,
		L0CompactionTrigger:      4,
		L0SlowdownTrigger:        8,
		L0StopTrigger:            12,
		NumLevels:                7,
		LevelBaseBytes:           10 << 20,
		LevelMultiplier:          10,
		TargetFileSize:           2 << 20,
		BloomBitsPerKey:          10,
		MaxCompactionConcurrency: 3,
	}
	switch p {
	case PresetPebblesDB, PresetPebblesDB1:
		o.Engine = EngineFLSM
		o.MaxSSTablesPerGuard = 4
		o.TopLevelBits = 22
		o.BitDecrement = 2
		o.SeekCompactionThreshold = 10
		o.SizeRatioPct = 25
		o.ParallelSeeks = true
		if p == PresetPebblesDB1 {
			o.MaxSSTablesPerGuard = 1
		}
	case PresetHyperLevelDB:
		o.Engine = EngineLeveled
	case PresetLevelDB:
		o.Engine = EngineLeveled
		o.MaxCompactionConcurrency = 1
	case PresetRocksDB:
		o.Engine = EngineLeveled
		o.MemtableSize = 64 << 20
		o.L0SlowdownTrigger = 20
		o.L0StopTrigger = 24
		o.TargetFileSize = 64 << 20
	}
	return o
}

// Tuned rescales the options for a serving workload with targetMemoryBytes
// of memory to spend, off one knob. The presets keep the paper's
// evaluation parameters (4 MiB memtables, tiny caches), which sink real
// deployments the same way paper-scale Pebble defaults did: a 128 MB cache
// and 64 MB memtable behind a high-throughput service is an order of
// magnitude of avoidable IO. Tuned splits the budget roughly like the
// production fix that motivated it — half block cache, a quarter
// memtable (capped at 256 MB so flushes stay incremental), the rest left
// for table-cache metadata and per-connection state — and opens up the
// background machinery to match (compaction trigger 4, stop 20, four
// concurrent compactions, 1024 cached tables). Fractions of the budget
// below the preset's own values never shrink them. Returns o.
func (o *Options) Tuned(targetMemoryBytes int64) *Options {
	if targetMemoryBytes <= 0 {
		return o
	}
	mem := targetMemoryBytes / 4
	if mem > 256<<20 {
		mem = 256 << 20
	}
	if int(mem) > o.MemtableSize {
		o.MemtableSize = int(mem)
	}
	if cache := targetMemoryBytes / 2; cache > o.BlockCacheSize {
		o.BlockCacheSize = cache
	}
	if o.TableCacheSize < 1024 {
		o.TableCacheSize = 1024
	}
	// Larger memtables flush into larger L0 tables; scale output tables to
	// match so compaction doesn't shred them into paper-sized fragments.
	if target := mem; target > o.TargetFileSize {
		if target > 64<<20 {
			target = 64 << 20
		}
		o.TargetFileSize = target
	}
	o.L0CompactionTrigger = 4
	if o.L0SlowdownTrigger < 12 {
		o.L0SlowdownTrigger = 12
	}
	if o.L0StopTrigger < 20 {
		o.L0StopTrigger = 20
	}
	if o.MaxCompactionConcurrency < 4 {
		o.MaxCompactionConcurrency = 4
	}
	return o
}

// WithFS overrides the backing filesystem; intended for tests and the
// benchmark harness (e.g. crash-injecting filesystems).
func (o *Options) WithFS(fs vfs.FS) *Options {
	o.fs = fs
	return o
}

// toConfig translates public options into the internal configuration.
func (o *Options) toConfig() (*base.Config, engine.Kind, vfs.FS) {
	cfg := &base.Config{
		MemtableSize:             o.MemtableSize,
		L0CompactionTrigger:      o.L0CompactionTrigger,
		L0SlowdownTrigger:        o.L0SlowdownTrigger,
		L0StopTrigger:            o.L0StopTrigger,
		NumLevels:                o.NumLevels,
		LevelBaseBytes:           o.LevelBaseBytes,
		LevelMultiplier:          o.LevelMultiplier,
		TargetFileSize:           o.TargetFileSize,
		BlockSize:                o.BlockSize,
		Compression:              o.Compression.kind(),
		BloomBitsPerKey:          o.BloomBitsPerKey,
		PrefixBloomLength:        o.PrefixBloomLength,
		BlockCacheSize:           o.BlockCacheSize,
		TableCacheSize:           o.TableCacheSize,
		TopLevelBits:             o.TopLevelBits,
		BitDecrement:             o.BitDecrement,
		MaxSSTablesPerGuard:      o.MaxSSTablesPerGuard,
		SeekCompactionThreshold:  o.SeekCompactionThreshold,
		SizeRatioPct:             o.SizeRatioPct,
		ParallelSeeks:            o.ParallelSeeks,
		ParallelGuardCompaction:  o.ParallelGuardCompaction,
		MaxCompactionConcurrency: o.MaxCompactionConcurrency,
		CompactionUnitGuards:     o.CompactionUnitGuards,
		WALSync:                  o.WALSync,
		BgErrorRetries:           o.MaxBgRetries,
		BgErrorRetryDelay:        o.BgRetryDelay,
		EventListener:            o.EventListener,
		SlowOpThreshold:          o.SlowOpThreshold,
		SlowOpLogger:             o.SlowOpLogger,
	}
	kind := engine.KindFLSM
	if o.Engine == EngineLeveled {
		kind = engine.KindLeveled
	}
	fs := o.fs
	if fs == nil {
		if o.InMemory {
			fs = sharedMemFS
		} else {
			fs = vfs.Default
		}
	}
	return cfg, kind, fs
}
