package pebblesdb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pebblesdb/internal/vfs"
)

// TestBatchReuseDoesNotCorrupt is the regression test for a bug where the
// memtable aliased the batch's buffer: reusing a batch after Apply
// overwrote previously committed values.
func TestBatchReuseDoesNotCorrupt(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := db.NewBatch()
	const n = 2000
	for i := 0; i < n; i++ {
		b.Reset()
		k := fmt.Sprintf("key%05d", i)
		v := fmt.Sprintf("value-%08d", i)
		b.Set([]byte(k), []byte(v))
		if err := db.Apply(b, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%05d", i)
		want := fmt.Sprintf("value-%08d", i)
		got, ok, err := db.Get([]byte(k), nil)
		if err != nil || !ok || string(got) != want {
			t.Fatalf("key %s: got %q ok=%v err=%v want %q", k, got, ok, err, want)
		}
	}
}

// TestValueBufferReuse verifies Put copies the value: the paper's
// benchmarks reuse one value buffer across millions of puts.
func TestValueBufferReuse(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	buf := make([]byte, 16)
	for i := 0; i < 100; i++ {
		copy(buf, fmt.Sprintf("%016d", i))
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, ok, _ := db.Get([]byte(fmt.Sprintf("k%03d", i)), nil)
		if !ok || string(got) != fmt.Sprintf("%016d", i) {
			t.Fatalf("k%03d: %q", i, got)
		}
	}
}

func TestAllPresetsOpenWithDefaults(t *testing.T) {
	for _, p := range allPresets {
		o := p.Options()
		o.WithFS(vfs.NewMem())
		db, err := Open("db", o)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := db.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("%s put: %v", p, err)
		}
		if v, ok, _ := db.Get([]byte("k"), nil); !ok || string(v) != "v" {
			t.Fatalf("%s roundtrip failed", p)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("%s close: %v", p, err)
		}
	}
}

func TestPresetStrings(t *testing.T) {
	names := map[Preset]string{
		PresetPebblesDB:    "PebblesDB",
		PresetHyperLevelDB: "HyperLevelDB",
		PresetLevelDB:      "LevelDB",
		PresetRocksDB:      "RocksDB",
		PresetPebblesDB1:   "PebblesDB-1",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d: %q want %q", p, p.String(), want)
		}
	}
}

func TestClosedDBRejectsEverything(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("put: %v", err)
	}
	if _, _, err := db.Get([]byte("k"), nil); err != ErrClosed {
		t.Fatalf("get: %v", err)
	}
	if err := db.Delete([]byte("k")); err != ErrClosed {
		t.Fatalf("delete: %v", err)
	}
	if _, err := db.NewIter(nil); err != ErrClosed {
		t.Fatalf("iter: %v", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Fatalf("flush: %v", err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestDumpDescribesLayout(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i*7919%100000)), bytes.Repeat([]byte("v"), 64))
	}
	db.CompactAll()
	var buf bytes.Buffer
	db.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "FLSM tree") || !strings.Contains(out, "level") {
		t.Fatalf("dump missing structure:\n%s", out)
	}
}

func TestMetricsAccounting(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), val)
	}
	db.WaitIdle()
	m := db.Metrics()
	if m.UserBytesWritten != 2000*(8+100) {
		t.Fatalf("user bytes %d", m.UserBytesWritten)
	}
	if m.WriteAmplification() < 1 {
		t.Fatalf("write amp %f", m.WriteAmplification())
	}
	if m.IO.TotalWritten() == 0 || m.Flushes == 0 {
		t.Fatalf("io accounting empty: %+v", m.IO)
	}
}

func TestSnapshotIteratorView(t *testing.T) {
	db, err := Open("db", testOptions(PresetPebblesDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("old%03d", i)), []byte("v"))
	}
	snap := db.NewSnapshot()
	defer snap.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("new%03d", i)), []byte("v"))
	}
	db.Delete([]byte("old000"))

	it, err := db.NewIterAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !strings.HasPrefix(string(it.Key()), "old") {
			t.Fatalf("snapshot iterator sees later key %q", it.Key())
		}
		n++
	}
	if n != 100 {
		t.Fatalf("snapshot iterator saw %d keys, want 100 (deletion must be invisible)", n)
	}
}

// TestParallelSeeksGiveSameResults exercises the §4.2 parallel-seek path
// against the serial path on identical data.
func TestParallelSeeksGiveSameResults(t *testing.T) {
	results := map[bool][]string{}
	for _, parallel := range []bool{false, true} {
		o := testOptions(PresetPebblesDB)
		o.ParallelSeeks = parallel
		db, err := Open("db", o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			db.Put([]byte(fmt.Sprintf("key%06d", i*31%50000)), []byte("v"))
		}
		db.CompactAll()

		it, err := db.NewIter(nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for i := 0; i < 200; i++ {
			probe := fmt.Sprintf("key%06d", i*257%50000)
			it.SeekGE([]byte(probe))
			if it.Valid() {
				got = append(got, string(it.Key()))
			} else {
				got = append(got, "<end>")
			}
		}
		it.Close()
		db.Close()
		results[parallel] = got
	}
	for i := range results[false] {
		if results[false][i] != results[true][i] {
			t.Fatalf("seek %d: serial %q parallel %q", i, results[false][i], results[true][i])
		}
	}
}
