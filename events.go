package pebblesdb

import "pebblesdb/internal/obs"

// The event system lives in internal/obs so every internal layer (engine,
// trees, WAL, manifest) can emit without import cycles; these aliases
// re-export the surface users need to consume events — configuring
// Options.EventListener, inspecting DB.RecentEvents — without importing an
// internal package.

// Event is one structured observability event. Events are delivered by
// value (no per-event allocation) to Options.EventListener and retained in
// the flight recorder behind DB.RecentEvents. Event.Nanos is a monotonic
// process-relative timestamp; Event.String and Event.MarshalJSON render
// human- and machine-readable forms.
type Event = obs.Event

// EventKind discriminates Event payloads; see the Event* constants.
type EventKind = obs.EventKind

// EventListener receives events; implementations must be safe for
// concurrent use and fast (callbacks run on engine goroutines).
// EventFunc adapts a plain function.
type (
	EventListener = obs.Listener
	EventFunc     = obs.Func
)

// Event kinds emitted by the store.
const (
	EventFlushBegin       = obs.EventFlushBegin
	EventFlushEnd         = obs.EventFlushEnd
	EventCompactionBegin  = obs.EventCompactionBegin
	EventCompactionEnd    = obs.EventCompactionEnd
	EventWALRotation      = obs.EventWALRotation
	EventWALSyncStall     = obs.EventWALSyncStall
	EventManifestRotation = obs.EventManifestRotation
	EventWriteStallBegin  = obs.EventWriteStallBegin
	EventWriteStallEnd    = obs.EventWriteStallEnd
	EventBackgroundError  = obs.EventBackgroundError
	EventReadOnly         = obs.EventReadOnly
	EventResume           = obs.EventResume
)
