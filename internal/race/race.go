//go:build race

// Package race exposes whether the race detector is compiled in, so slow
// tests can scale themselves down: race instrumentation slows the
// CPU-bound paths (snappy encoding, checksums, skiplist walks) by an
// order of magnitude, and a fixed workload that is comfortable un-raced
// can blow clean through `go test`'s default 10-minute timeout with -race.
package race

// Enabled reports whether the binary was built with -race.
const Enabled = true
