package apps

import (
	"sync"
	"testing"
	"time"

	"pebblesdb/internal/ycsb"
)

// countingStore records operations for behaviour assertions.
type countingStore struct {
	mu         sync.Mutex
	gets, puts int
	scans      int
	m          map[string][]byte
}

func newCountingStore() *countingStore { return &countingStore{m: map[string][]byte{}} }

func (s *countingStore) Put(k, v []byte) error {
	s.mu.Lock()
	s.puts++
	s.m[string(k)] = append([]byte(nil), v...)
	s.mu.Unlock()
	return nil
}

func (s *countingStore) Get(k []byte) ([]byte, bool, error) {
	s.mu.Lock()
	s.gets++
	v, ok := s.m[string(k)]
	s.mu.Unlock()
	return v, ok, nil
}

func (s *countingStore) Scan(start, end []byte, count int) (int, error) {
	s.mu.Lock()
	s.scans++
	s.mu.Unlock()
	return count, nil
}

func TestHyperDexReadsBeforeWrites(t *testing.T) {
	cs := newCountingStore()
	hd := New(cs, Config{ReadBeforeWrite: true})
	hd.Put([]byte("k"), []byte("v"))
	if cs.gets != 1 || cs.puts != 1 {
		t.Fatalf("expected get+put, got gets=%d puts=%d", cs.gets, cs.puts)
	}
	hd.Get([]byte("k"))
	if cs.gets != 2 {
		t.Fatal("get not forwarded")
	}
}

func TestMongoDBDoesNotReadBeforeWrite(t *testing.T) {
	cs := newCountingStore()
	m := New(cs, Config{})
	m.Put([]byte("k"), []byte("v"))
	if cs.gets != 0 || cs.puts != 1 {
		t.Fatalf("gets=%d puts=%d", cs.gets, cs.puts)
	}
}

func TestOpLatencyDominates(t *testing.T) {
	cs := newCountingStore()
	srv := New(cs, Config{OpLatency: 200 * time.Microsecond})
	start := time.Now()
	const n = 50
	for i := 0; i < n; i++ {
		srv.Put([]byte("k"), []byte("v"))
	}
	elapsed := time.Since(start)
	if elapsed < n*150*time.Microsecond {
		t.Fatalf("app latency not applied: %v for %d ops", elapsed, n)
	}
}

func TestServerDrivesYCSB(t *testing.T) {
	cs := newCountingStore()
	srv := NewMongoDB(cs)
	r := ycsb.NewRunner(srv)
	if _, err := r.Load(200, 64, 2, 1); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(ycsb.Workloads["A"], ycsb.RunnerOptions{
		RecordCount: 200, OpCount: 400, Threads: 2, ValueSize: 64, Seed: 2,
	})
	if err != nil || res.Errors != 0 {
		t.Fatalf("ycsb through shim failed: %+v %v", res, err)
	}
}

func TestPresetLatencies(t *testing.T) {
	hd := NewHyperDex(newCountingStore())
	if !hd.cfg.ReadBeforeWrite {
		t.Fatal("HyperDex must read before write")
	}
	mg := NewMongoDB(newCountingStore())
	if mg.cfg.ReadBeforeWrite {
		t.Fatal("MongoDB shim must not read before write")
	}
	if hd.cfg.OpLatency <= 0 || mg.cfg.OpLatency <= 0 {
		t.Fatal("presets must carry application latency")
	}
}
