// Package apps models the two NoSQL applications of §5.4 — HyperDex and
// MongoDB — at the fidelity the paper's analysis says matters. The paper
// attributes the muted application-level speedups to exactly two
// behaviours: (1) the application adds latency that dwarfs the store's
// (HyperDex: 151us per insert, of which PebblesDB is 22.3us; MongoDB:
// store is 28% of write latency), and (2) HyperDex issues a read before
// every write ("HyperDex checks whether a key already exists before
// inserting, turning every put() into a get() and a put()"). The shims
// reproduce both over any ycsb.Store backend.
package apps

import (
	"time"

	"pebblesdb/internal/ycsb"
)

// Config tunes the simulated application server.
type Config struct {
	// OpLatency is the application-side processing cost added to every
	// operation (request parsing, routing, replication bookkeeping).
	OpLatency time.Duration
	// ReadBeforeWrite makes every Put issue a Get first (HyperDex).
	ReadBeforeWrite bool
}

// Server wraps a storage engine with application behaviour. It implements
// ycsb.Store so YCSB drives it exactly as it drives a bare store.
type Server struct {
	store ycsb.Store
	cfg   Config
}

// NewHyperDex models HyperDex over the given storage engine: ~130us of
// application latency per op and read-before-write on inserts.
func NewHyperDex(store ycsb.Store) *Server {
	return &Server{store: store, cfg: Config{
		OpLatency:       130 * time.Microsecond,
		ReadBeforeWrite: true,
	}}
}

// NewMongoDB models MongoDB over the given storage engine: application
// latency only (the store accounts for ~28% of MongoDB's write latency).
func NewMongoDB(store ycsb.Store) *Server {
	return &Server{store: store, cfg: Config{
		OpLatency: 100 * time.Microsecond,
	}}
}

// New builds a server with explicit behaviour (tests, ablations).
func New(store ycsb.Store, cfg Config) *Server {
	return &Server{store: store, cfg: cfg}
}

// simulateAppWork burns the configured application latency. A spin on the
// monotonic clock models a busy server thread more faithfully than
// time.Sleep at microsecond scales.
func (s *Server) simulateAppWork() {
	if s.cfg.OpLatency <= 0 {
		return
	}
	deadline := time.Now().Add(s.cfg.OpLatency)
	for time.Now().Before(deadline) {
	}
}

// Put implements ycsb.Store with the application's write path.
func (s *Server) Put(key, value []byte) error {
	s.simulateAppWork()
	if s.cfg.ReadBeforeWrite {
		if _, _, err := s.store.Get(key); err != nil {
			return err
		}
	}
	return s.store.Put(key, value)
}

// Get implements ycsb.Store.
func (s *Server) Get(key []byte) ([]byte, bool, error) {
	s.simulateAppWork()
	return s.store.Get(key)
}

// Scan implements ycsb.Store.
func (s *Server) Scan(start, end []byte, count int) (int, error) {
	s.simulateAppWork()
	return s.store.Scan(start, end, count)
}

var _ ycsb.Store = (*Server)(nil)
