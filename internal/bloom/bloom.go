// Package bloom implements the sstable-level bloom filters PebblesDB
// attaches to every sstable (§4.1). A filter is built once per sstable over
// all user keys in the table and is consulted on every get to skip tables
// that cannot contain the key. False positives are possible; false
// negatives are not.
package bloom

import (
	"encoding/binary"

	"pebblesdb/internal/murmur"
)

const bloomSeed = 0xbc9f1d34

// Filter is an immutable encoded bloom filter. The encoding is the bit
// array followed by a single byte holding the number of probes.
type Filter []byte

// Build constructs a filter over keys using bitsPerKey bits per key.
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln(2), clamped to a sane range.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8

	f := make(Filter, nBytes+1)
	f[nBytes] = k
	for _, key := range keys {
		h := murmur.Hash64(key, bloomSeed)
		// Double hashing: derive k probe positions from one 64-bit hash.
		h1 := uint32(h)
		delta := uint32(h >> 32)
		for i := uint8(0); i < k; i++ {
			pos := h1 % uint32(bits)
			f[pos/8] |= 1 << (pos % 8)
			h1 += delta
		}
	}
	return f
}

// MayContain reports whether key may be in the set the filter was built
// over. A false return is definitive.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return true // degenerate filter: claim everything
	}
	k := f[len(f)-1]
	if k < 1 || k > 30 {
		return true // unknown encoding: be safe
	}
	bits := uint32((len(f) - 1) * 8)
	h := murmur.Hash64(key, bloomSeed)
	h1 := uint32(h)
	delta := uint32(h >> 32)
	for i := uint8(0); i < k; i++ {
		pos := h1 % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h1 += delta
	}
	return true
}

// ApproximateMemory returns the in-memory footprint of the filter in bytes;
// used by the Table 5.4 memory-consumption experiment.
func (f Filter) ApproximateMemory() int { return len(f) }

// EncodeInto appends the filter with a length prefix to dst.
func EncodeInto(dst []byte, f Filter) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(f)))
	dst = append(dst, lenBuf[:n]...)
	return append(dst, f...)
}

// Decode reads a length-prefixed filter from src, returning the filter and
// the remaining bytes.
func Decode(src []byte) (Filter, []byte, bool) {
	l, n := binary.Uvarint(src)
	if n <= 0 || uint64(len(src)-n) < l {
		return nil, nil, false
	}
	return Filter(src[n : n+int(l)]), src[n+int(l):], true
}
