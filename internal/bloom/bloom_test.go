package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 10000} {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key%08d", i))
		}
		f := Build(keys, 10)
		for _, k := range keys {
			if !f.MayContain(k) {
				t.Fatalf("n=%d: false negative for %q", n, k)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member%08d", i))
	}
	f := Build(keys, 10)
	fp := 0
	for i := 0; i < n; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent%08d", i))) {
			fp++
		}
	}
	// 10 bits/key targets ~1%; allow generous slack.
	if rate := float64(fp) / n; rate > 0.03 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestEmptyAndDegenerateFilters(t *testing.T) {
	f := Build(nil, 10)
	// An empty filter may claim nothing; membership query must not panic.
	f.MayContain([]byte("anything"))

	var junk Filter
	if !junk.MayContain([]byte("x")) {
		t.Fatal("nil filter must be permissive (no false negatives)")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	f := Build(keys, 10)
	enc := EncodeInto(nil, f)
	dec, rest, ok := Decode(enc)
	if !ok || len(rest) != 0 {
		t.Fatal("decode failed")
	}
	for _, k := range keys {
		if !dec.MayContain(k) {
			t.Fatalf("decoded filter lost %q", k)
		}
	}
	if _, _, ok := Decode([]byte{0xff}); ok {
		t.Fatal("decoding junk should fail")
	}
}

func TestPropertyMembersAlwaysPresent(t *testing.T) {
	err := quick.Check(func(keys [][]byte, probe []byte) bool {
		f := Build(keys, 10)
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitsPerKeyScaling(t *testing.T) {
	keys := make([][]byte, 5000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%07d", i))
	}
	rate := func(bits int) float64 {
		f := Build(keys, bits)
		fp := 0
		for i := 0; i < 5000; i++ {
			if f.MayContain([]byte(fmt.Sprintf("x%07d", i))) {
				fp++
			}
		}
		return float64(fp) / 5000
	}
	if rate(4) <= rate(12) {
		t.Fatal("more bits per key should reduce false positives")
	}
}

func BenchmarkBuild(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(keys, 10)
	}
}

func BenchmarkMayContain(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	f := Build(keys, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}
