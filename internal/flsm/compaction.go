package flsm

import (
	"bytes"
	"sort"
	"sync"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/treebase"
)

// sourceGuard is one guard's worth of compaction input. key==nil means the
// sentinel.
type sourceGuard struct {
	key   []byte
	files []*base.FileMetadata
}

func (s *sourceGuard) bytes() uint64 {
	var t uint64
	for _, f := range s.files {
		t += f.Size
	}
	return t
}

// compaction is one unit of FLSM compaction work.
type compaction struct {
	level       int // source level; 0 = L0 compaction
	targetLevel int // level+1, or level for an in-place last-level merge
	l0Files     []*base.FileMetadata
	sources     []sourceGuard
	inPlace     bool
	seek        bool
	// targetKeys are the partition boundaries: committed guards of the
	// target level plus the uncommitted guards eligible for commit.
	targetKeys [][]byte
	// commitKeys are the uncommitted guards this compaction commits.
	commitKeys [][]byte
	// v pins the version the compaction was planned against.
	v *version
}

// NeedsCompaction reports whether compaction work is pending.
func (t *Tree) NeedsCompaction() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pickLocked(false) != nil
}

// levelsFree reports whether the given levels are not being compacted.
func (t *Tree) levelsFree(levels ...int) bool {
	for _, l := range levels {
		if t.busyLevels[l] {
			return false
		}
	}
	return true
}

// pickLocked chooses the next compaction unit following the paper's
// triggers, in priority order: L0 fill, level size, size-ratio (§4.2
// aggressive compaction), per-guard sstable caps (§3.5), and seek budgets
// (§4.2).
func (t *Tree) pickLocked(claim bool) *compaction {
	v := t.cur
	last := t.cfg.NumLevels - 1
	var c *compaction

	// 1. L0 file count.
	if len(v.l0) >= t.cfg.L0CompactionTrigger && t.levelsFree(0, 1) {
		c = &compaction{
			level:       0,
			targetLevel: 1,
			l0Files:     append([]*base.FileMetadata(nil), v.l0...),
			v:           v,
		}
	}

	// 2. Level size: compact the whole level (every populated guard) into
	// the next. Each byte still moves down at most once per level.
	if c == nil {
		bestScore := 0.0
		bestLevel := -1
		for l := 1; l < last; l++ {
			if !t.levelsFree(l, l+1) {
				continue
			}
			score := float64(v.levels[l].totalBytes()) / float64(t.cfg.MaxBytesForLevel(l))
			if score >= 1.0 && score > bestScore {
				bestScore, bestLevel = score, l
			}
		}
		if bestLevel > 0 {
			c = t.wholeLevelCompaction(v, bestLevel)
		}
	}

	// 3. Size-ratio rule: level i within SizeRatioPct of level i+1.
	if c == nil && t.cfg.SizeRatioPct > 0 {
		for l := 1; l < last; l++ {
			if !t.levelsFree(l, l+1) {
				continue
			}
			next := v.levels[l+1].totalBytes()
			if next <= 0 {
				continue
			}
			if v.levels[l].totalBytes()*100 >= next*int64(t.cfg.SizeRatioPct) {
				c = t.wholeLevelCompaction(v, l)
				break
			}
		}
	}

	// 4. Guard sstable cap.
	if c == nil {
		for l := 1; l <= last && c == nil; l++ {
			gl := &v.levels[l]
			pick := func(key []byte, files []*base.FileMetadata) {
				if len(files) < t.cfg.MaxSSTablesPerGuard || c != nil {
					return
				}
				if l == last {
					// In-place merges need at least two files; rewriting
					// a single file is pure churn (matters when
					// max_sstables_per_guard is 1, the PebblesDB-1 mode).
					if len(files) < 2 || !t.levelsFree(l) {
						return
					}
					c = &compaction{level: l, targetLevel: l, inPlace: true,
						sources: []sourceGuard{{key: key, files: append([]*base.FileMetadata(nil), files...)}}, v: v}
				} else {
					if !t.levelsFree(l, l+1) {
						return
					}
					c = &compaction{level: l, targetLevel: l + 1,
						sources: []sourceGuard{{key: key, files: append([]*base.FileMetadata(nil), files...)}}, v: v}
				}
			}
			pick(nil, gl.sentinel)
			for i := range gl.guards {
				pick(gl.guards[i].Key, gl.guards[i].Files)
			}
		}
	}

	// 5. Seek-triggered guard compaction.
	if c == nil {
		for id := range t.seekPending {
			l := id.Level
			src := t.findGroup(v, l, id.Key)
			if src == nil || len(src) <= 1 {
				delete(t.seekPending, id)
				continue
			}
			var key []byte
			if id.Key != "" {
				key = []byte(id.Key)
			}
			if l == last {
				if !t.levelsFree(l) {
					continue
				}
				c = &compaction{level: l, targetLevel: l, inPlace: true, seek: true,
					sources: []sourceGuard{{key: key, files: append([]*base.FileMetadata(nil), src...)}}, v: v}
			} else {
				if !t.levelsFree(l, l+1) {
					continue
				}
				c = &compaction{level: l, targetLevel: l + 1, seek: true,
					sources: []sourceGuard{{key: key, files: append([]*base.FileMetadata(nil), src...)}}, v: v}
			}
			delete(t.seekPending, id)
			break
		}
	}

	if c == nil {
		return nil
	}
	t.fillTargetKeysLocked(c)
	if claim {
		t.busyLevels[c.level] = true
		t.busyLevels[c.targetLevel] = true
	}
	return c
}

// findGroup returns the files of the guard identified by key ("" sentinel).
// Guards are sorted by key, so the interval lookup is guard.FindGuard's
// binary search; an exact-key check distinguishes "this guard" from "a key
// inside some other guard's interval".
func (t *Tree) findGroup(v *version, level int, key string) []*base.FileMetadata {
	gl := &v.levels[level]
	if key == "" {
		return gl.sentinel
	}
	idx := guard.FindGuard(gl.guards, []byte(key))
	if idx >= 0 && string(gl.guards[idx].Key) == key {
		return gl.guards[idx].Files
	}
	return nil
}

// wholeLevelCompaction gathers every populated group of a level.
func (t *Tree) wholeLevelCompaction(v *version, level int) *compaction {
	c := &compaction{level: level, targetLevel: level + 1, v: v}
	gl := &v.levels[level]
	if len(gl.sentinel) > 0 {
		c.sources = append(c.sources, sourceGuard{key: nil, files: append([]*base.FileMetadata(nil), gl.sentinel...)})
	}
	for i := range gl.guards {
		if len(gl.guards[i].Files) > 0 {
			c.sources = append(c.sources, sourceGuard{
				key:   gl.guards[i].Key,
				files: append([]*base.FileMetadata(nil), gl.guards[i].Files...),
			})
		}
	}
	if len(c.sources) == 0 {
		return nil
	}
	return c
}

// fillTargetKeysLocked computes the partition boundaries for the target
// level: its committed guards plus every uncommitted guard that no existing
// file straddles (§3.3: sstables that would need splitting by an
// uncommitted guard are instead handled at the next compaction cycle).
func (t *Tree) fillTargetKeysLocked(c *compaction) {
	gl := &t.cur.levels[c.targetLevel]
	committed := gl.guardKeys()
	var eligible [][]byte
	for _, k := range t.uncommitted[c.targetLevel] {
		if !gl.straddles(k) {
			eligible = append(eligible, append([]byte(nil), k...))
		}
	}
	keys := make([][]byte, 0, len(committed)+len(eligible))
	keys = append(keys, committed...)
	keys = append(keys, eligible...)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	c.targetKeys = keys
	c.commitKeys = eligible
}

// CompactOnce performs at most one compaction unit.
func (t *Tree) CompactOnce() (bool, error) {
	t.mu.Lock()
	c := t.pickLocked(true)
	t.mu.Unlock()
	if c == nil {
		return false, nil
	}
	err := t.runCompaction(c)
	t.mu.Lock()
	delete(t.busyLevels, c.level)
	delete(t.busyLevels, c.targetLevel)
	t.mu.Unlock()
	return true, err
}

// guardOutput is the result of compacting one source guard.
type guardOutput struct {
	dstLevel int
	metas    []*base.FileMetadata
	builder  *treebase.OutputBuilder
	inPlace  bool
}

func (t *Tree) runCompaction(c *compaction) error {
	smallest := base.MaxSeqNum
	if t.snap != nil {
		smallest = t.snap.SmallestSnapshot()
	}
	last := t.cfg.NumLevels - 1

	edit := &manifest.VersionEdit{}
	for _, k := range c.commitKeys {
		edit.NewGuards = append(edit.NewGuards, manifest.GuardEntry{Level: c.targetLevel, Key: k})
	}

	var bytesIn, bytesOut int64
	var outputs []guardOutput
	var failed error

	if c.level == 0 {
		for _, f := range c.l0Files {
			bytesIn += int64(f.Size)
			edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: 0, FileNum: f.FileNum})
		}
		// Tombstones are never elided here: older versions may live below.
		out, err := t.mergeAndPartition(c.l0Files, c.targetKeys, smallest, false)
		if err != nil {
			out.builder.Abandon()
			return err
		}
		out.dstLevel = 1
		outputs = append(outputs, out)
	} else {
		for _, s := range c.sources {
			for _, f := range s.files {
				bytesIn += int64(f.Size)
				edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level, FileNum: f.FileNum})
			}
		}
		run := func(s sourceGuard) (guardOutput, error) {
			dst := c.targetLevel
			partition := c.targetKeys
			inPlace := c.inPlace
			// Second-to-last level heuristic (§3.4): when the target guard
			// in the last level is full and merging there would cost more
			// than LastLevelRewriteFactor times the input, rewrite within
			// this level instead. A single-file guard is exempt: rewriting
			// one file in place is pure churn (and would repeat forever).
			if !inPlace && c.level == last-1 && len(s.files) >= 2 {
				if full, existing := t.lastLevelPressure(c.v, s); full &&
					existing > uint64(t.cfg.LastLevelRewriteFactor)*s.bytes() {
					dst = c.level
					partition = nil // single guard: no partitioning needed
					inPlace = true
				}
			}
			// Elide tombstones only when the merge covers every file that
			// could hold older versions of its keys: an in-place merge of
			// a whole last-level guard.
			elide := inPlace && dst == last
			out, err := t.mergeAndPartition(s.files, partition, smallest, elide)
			out.dstLevel = dst
			out.inPlace = inPlace
			return out, err
		}

		if t.cfg.ParallelGuardCompaction && len(c.sources) > 1 {
			// Guard-granular parallel compaction: source guards map to
			// disjoint target intervals, so their merges are independent
			// (§3.4: "FLSM compaction is trivially parallelizable").
			var wg sync.WaitGroup
			var omu sync.Mutex
			for _, s := range c.sources {
				wg.Add(1)
				go func(s sourceGuard) {
					defer wg.Done()
					out, err := run(s)
					omu.Lock()
					defer omu.Unlock()
					if err != nil {
						out.builder.Abandon()
						if failed == nil {
							failed = err
						}
						return
					}
					outputs = append(outputs, out)
				}(s)
			}
			wg.Wait()
		} else {
			for _, s := range c.sources {
				out, err := run(s)
				if err != nil {
					out.builder.Abandon()
					failed = err
					break
				}
				outputs = append(outputs, out)
			}
		}
	}
	if failed != nil {
		for _, o := range outputs {
			o.builder.Abandon()
		}
		return failed
	}

	inPlaceCount := 0
	for _, o := range outputs {
		if o.inPlace {
			inPlaceCount++
		}
		for _, m := range o.metas {
			edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: o.dstLevel, Meta: *m})
			bytesOut += int64(m.Size)
		}
	}

	installed, err := t.logAndInstall(edit)
	if err != nil {
		for _, o := range outputs {
			if installed {
				// Outputs are live in the installed version: keep them (a
				// later manifest rotation persists them). Inputs likewise
				// must stay on disk — the durable manifest still references
				// them — so obsolete-table notification is skipped too.
				o.builder.ReleasePending()
			} else {
				o.builder.Abandon()
			}
		}
		return err
	}
	for _, o := range outputs {
		o.builder.ReleasePending()
	}
	if t.snap != nil {
		dead := make([]base.FileNum, 0, len(edit.DeletedFiles))
		for _, d := range edit.DeletedFiles {
			dead = append(dead, d.FileNum)
		}
		t.snap.NoteObsoleteTables(dead)
	}

	t.mu.Lock()
	t.metrics.Compactions++
	t.metrics.InPlaceMerges += int64(inPlaceCount)
	if c.seek {
		t.metrics.SeekCompactions++
	}
	t.metrics.BytesCompactedIn += bytesIn
	t.metrics.BytesCompactedOut += bytesOut
	for _, o := range outputs {
		t.metrics.Compression.Merge(o.builder.CompressionStats())
	}
	for _, s := range c.sources {
		id := guardID{Level: c.level, Key: string(s.key)}
		delete(t.seekCounts, id)
		delete(t.seekPending, id)
	}
	t.mu.Unlock()
	return nil
}

// lastLevelPressure reports whether the last-level guard receiving source
// guard s is at its sstable cap, and how many bytes it already holds.
func (t *Tree) lastLevelPressure(v *version, s sourceGuard) (full bool, existing uint64) {
	last := t.cfg.NumLevels - 1
	gl := &v.levels[last]
	var lo []byte
	for i, f := range s.files {
		if i == 0 || bytes.Compare(f.SmallestUserKey(), lo) < 0 {
			lo = f.SmallestUserKey()
		}
	}
	idx := guard.FindGuard(gl.guards, lo)
	var files []*base.FileMetadata
	if idx < 0 {
		files = gl.sentinel
	} else {
		files = gl.guards[idx].Files
	}
	for _, f := range files {
		existing += f.Size
	}
	return len(files) >= t.cfg.MaxSSTablesPerGuard, existing
}

// mergeAndPartition merge-sorts files and fragments the stream at the
// partition keys (§3.4: "the sstables of a given guard are merge-sorted
// and then partitioned, so that each child guard receives a new sstable
// that fits its key range"). Range tombstones from the inputs follow the
// same partitioning: each output table receives the fragments clipped to
// its partition interval — never wider, so a later guard split cannot
// resurrect data the tombstone covered or delete keys it never did — and a
// partition interval that receives no surviving points but is spanned by a
// tombstone still emits a tombstone-only table, because the tombstone must
// keep masking older versions below. When elideTombstones is set (an
// in-place merge of a whole last-level guard: nothing below can hold
// covered keys), tombstones every snapshot can see are dropped along with
// the points they cover.
func (t *Tree) mergeAndPartition(files []*base.FileMetadata, partitionKeys [][]byte, smallestSnapshot base.SeqNum, elideTombstones bool) (guardOutput, error) {
	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	out := guardOutput{builder: ob}

	dropLE := base.SeqNum(0)
	if elideTombstones {
		dropLE = smallestSnapshot
	}

	// Open each input once, collecting its range tombstones alongside its
	// merge iterator.
	var rd *rangedel.List
	var iters []iterator.Iterator
	for _, f := range files {
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			for _, it := range iters {
				it.Close()
			}
			return out, err
		}
		if f.NumRangeDels > 0 {
			if rd == nil {
				rd = &rangedel.List{}
			}
			for _, ts := range r.RangeDels().Raw() {
				rd.Add(ts)
			}
		}
		iters = append(iters, treebase.NewSequentialTableIter(r))
	}
	merged := iterator.NewMerging(base.InternalCompare, iters...)
	ci := treebase.NewCompactionIter(merged, smallestSnapshot, elideTombstones, rd)

	// cutInterval finishes the table for partition interval i, attaching
	// the surviving tombstone fragments clipped to [keys[i-1], keys[i]).
	// An interval with neither points nor tombstones emits nothing.
	cutInterval := func(i int) error {
		var lo, hi []byte
		if i > 0 {
			lo = partitionKeys[i-1]
		}
		if i < len(partitionKeys) {
			hi = partitionKeys[i]
		}
		if !rd.Empty() {
			if err := ob.AddRangeDels(rd.Clipped(lo, hi, dropLE)); err != nil {
				return err
			}
		}
		if ob.HasOpen() {
			return ob.Cut()
		}
		return nil
	}

	tIdx := 0
	for ci.First(); ci.Valid(); ci.Next() {
		ukey := base.UserKey(ci.Key())
		for tIdx < len(partitionKeys) && bytes.Compare(partitionKeys[tIdx], ukey) <= 0 {
			if err := cutInterval(tIdx); err != nil {
				ci.Close()
				return out, err
			}
			tIdx++
		}
		if err := ob.Add(ci.Key(), ci.Value()); err != nil {
			ci.Close()
			return out, err
		}
	}
	if err := ci.Error(); err != nil {
		ci.Close()
		return out, err
	}
	ci.Close()
	// Flush the open table's interval plus any remaining intervals spanned
	// only by tombstones.
	for ; tIdx <= len(partitionKeys); tIdx++ {
		if err := cutInterval(tIdx); err != nil {
			return out, err
		}
	}
	metas, err := ob.Finish()
	if err != nil {
		return out, err
	}
	out.metas = metas
	return out, nil
}

// forcePushLocked builds a compaction moving the topmost populated
// level's data one level down regardless of size triggers, or nil when
// everything already sits in the last level (or the levels are busy). The
// claimed busy levels are recorded in the returned compaction.
func (t *Tree) forcePushLocked() *compaction {
	v := t.cur
	last := t.cfg.NumLevels - 1
	if len(v.l0) > 0 {
		if !t.levelsFree(0, 1) {
			return nil
		}
		c := &compaction{
			level:       0,
			targetLevel: 1,
			l0Files:     append([]*base.FileMetadata(nil), v.l0...),
			v:           v,
		}
		t.fillTargetKeysLocked(c)
		t.busyLevels[0] = true
		t.busyLevels[1] = true
		return c
	}
	for l := 1; l < last; l++ {
		if v.levels[l].fileCount() == 0 {
			continue
		}
		if !t.levelsFree(l, l+1) {
			return nil
		}
		c := t.wholeLevelCompaction(v, l)
		if c == nil {
			continue
		}
		t.fillTargetKeysLocked(c)
		t.busyLevels[c.level] = true
		t.busyLevels[c.targetLevel] = true
		return c
	}
	return nil
}

// CompactAll drives compaction until quiescent. Like LevelDB's manual
// CompactRange it then keeps pushing data down until everything sits in
// the last level: a fully compacted store serves every seek from one guard
// group instead of one per populated level plus leftover L0 flushes.
func (t *Tree) CompactAll() error {
	for {
		did, err := t.CompactOnce()
		if err != nil {
			return err
		}
		if did {
			continue
		}
		t.mu.Lock()
		c := t.forcePushLocked()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		err = t.runCompaction(c)
		t.mu.Lock()
		delete(t.busyLevels, c.level)
		delete(t.busyLevels, c.targetLevel)
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
}
