package flsm

import (
	"bytes"
	"math"
	"sort"
	"sync"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/treebase"
)

// sourceGuard is one guard's worth of compaction input. key==nil means the
// sentinel. dst/inPlace/partition describe the source's output: the level
// its merged contents land in, whether it is an in-place rewrite, and the
// shared partition keys the output is cut at (fixed at claim time, see
// writerPartitionLocked).
type sourceGuard struct {
	key       []byte
	files     []*base.FileMetadata
	dst       int
	inPlace   bool
	partition [][]byte
}

func (s *sourceGuard) bytes() uint64 {
	var t uint64
	for _, f := range s.files {
		t += f.Size
	}
	return t
}

// guardCommit lists the uncommitted guards a unit commits at one level.
type guardCommit struct {
	level int
	keys  [][]byte
}

// compaction is one claimed unit of FLSM compaction work: a set of source
// guard groups of one level (or the whole of L0), each with its own
// destination. Guards partition a level's key space into disjoint units
// (§3.1), so units claiming disjoint guard sets of the same level can run
// concurrently — the paper's "trivially parallelizable" compaction, here
// across scheduler workers rather than only inside one unit.
type compaction struct {
	level       int // source level; 0 = L0 compaction
	l0Files     []*base.FileMetadata
	l0Partition [][]byte
	sources     []sourceGuard
	seek        bool
	// commits are the uncommitted guards this unit commits, one entry per
	// destination level it writes (from the level's shared commit set).
	commits []guardCommit
	// writerLevels are the levels this unit holds a writer claim on.
	writerLevels []int
	// v pins the version the compaction was planned against.
	v *version
}

// inflight is the scheduler's claim state: the compaction work owned by
// running units. Claims are taken under Tree.mu at pick time and released
// after the unit's edit installs.
type inflight struct {
	// l0 marks an exclusive L0->L1 unit: L0 files overlap arbitrarily, so
	// only one unit may own them.
	l0 bool
	// srcGuards[l] holds the guard keys ("" = sentinel) whose files are
	// claimed as compaction inputs at level l; concurrent units on one
	// level own disjoint guard sets, so they never touch the same file.
	srcGuards []map[string]bool
	// writers[l] counts units currently adding files to level l. While it
	// is non-zero, partition[l] is the level's shared output partition and
	// commitKeys[l] the guards its writers commit: every concurrent output
	// into the level cuts at the same keys, so no output can straddle a
	// guard another unit commits (the invariant version.insertGuards
	// relies on when it redistributes files).
	writers    []int
	partition  [][][]byte
	commitKeys [][][]byte
	// units / levelUnits count running units (total / per source level).
	units      int
	levelUnits []int
}

func (inf *inflight) init(numLevels int) {
	inf.srcGuards = make([]map[string]bool, numLevels)
	for i := range inf.srcGuards {
		inf.srcGuards[i] = map[string]bool{}
	}
	inf.writers = make([]int, numLevels)
	inf.partition = make([][][]byte, numLevels)
	inf.commitKeys = make([][][]byte, numLevels)
	inf.levelUnits = make([]int, numLevels)
}

// NeedsCompaction reports whether claimable compaction work is pending.
// This is the allocation-free scheduling predicate: triggers are evaluated
// against the live version without building candidate file sets.
func (t *Tree) NeedsCompaction() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.claimableLocked(1, false) > 0
}

// ClaimableUnits estimates how many compaction units workers could claim
// right now; the engine sizes its worker pool to it. Allocation-free, and
// capped well above any realistic pool size.
func (t *Tree) ClaimableUnits() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.claimableLocked(64, false)
}

// claimedSrcLocked reports whether a guard group is claimed as input.
func (t *Tree) claimedSrcLocked(level int, key []byte) bool {
	return t.inflight.srcGuards[level][string(key)]
}

// unclaimedGroupsLocked counts populated guard groups of a level not
// claimed by a running unit.
func (t *Tree) unclaimedGroupsLocked(v *version, l int, ignoreClaims bool) int {
	gl := &v.levels[l]
	n := 0
	if len(gl.sentinel) > 0 && (ignoreClaims || !t.claimedSrcLocked(l, nil)) {
		n++
	}
	for i := range gl.guards {
		if len(gl.guards[i].Files) > 0 && (ignoreClaims || !t.claimedSrcLocked(l, gl.guards[i].Key)) {
			n++
		}
	}
	return n
}

// claimableLocked counts the compaction units a worker could claim right
// now, stopping once limit is reached. With ignoreClaims it counts pending
// work as if nothing were claimed — the probe distinguishing "no work"
// from "work exists but peers hold it all" for claim-stall accounting.
func (t *Tree) claimableLocked(limit int, ignoreClaims bool) int {
	v := t.cur
	last := t.cfg.NumLevels - 1
	n := 0

	// 1. L0 file count (exclusive unit).
	if len(v.l0) >= t.cfg.L0CompactionTrigger && (ignoreClaims || !t.inflight.l0) {
		if n++; n >= limit {
			return n
		}
	}

	// 2+3. Level size and size-ratio rule: an over-threshold level
	// contributes one unit per CompactionUnitGuards unclaimed groups.
	for l := 1; l < last; l++ {
		size := v.levels[l].totalBytes()
		over := size >= t.cfg.MaxBytesForLevel(l)
		if !over && t.cfg.SizeRatioPct > 0 {
			next := v.levels[l+1].totalBytes()
			over = next > 0 && size*100 >= next*int64(t.cfg.SizeRatioPct)
		}
		if !over {
			continue
		}
		groups := t.unclaimedGroupsLocked(v, l, ignoreClaims)
		per := t.unitGroupsLocked(v, l)
		n += (groups + per - 1) / per
		if n >= limit {
			return n
		}
	}

	// 4. Guard sstable cap.
	for l := 1; l <= last; l++ {
		gl := &v.levels[l]
		capped := func(key []byte, files []*base.FileMetadata) bool {
			if len(files) < t.cfg.MaxSSTablesPerGuard {
				return false
			}
			if l == last && len(files) < 2 {
				return false
			}
			return ignoreClaims || !t.claimedSrcLocked(l, key)
		}
		if capped(nil, gl.sentinel) {
			if n++; n >= limit {
				return n
			}
		}
		for i := range gl.guards {
			if capped(gl.guards[i].Key, gl.guards[i].Files) {
				if n++; n >= limit {
					return n
				}
			}
		}
	}

	// 5. Seek-triggered guard compaction. Stale entries (guard gone or
	// down to one file) are pruned here so they cannot keep reporting
	// phantom work.
	for id := range t.seekPending {
		src := t.findGroup(v, id.Level, id.Key)
		if src == nil || len(src) <= 1 {
			delete(t.seekPending, id)
			continue
		}
		if !ignoreClaims && t.inflight.srcGuards[id.Level][id.Key] {
			continue
		}
		if n++; n >= limit {
			return n
		}
	}
	return n
}

// unitGroupsLocked sizes a level-drain unit: the level's populated groups
// split into about MaxCompactionConcurrency units, never smaller than
// CompactionUnitGuards. A small level drains in one pass — the same
// per-compaction overhead as a whole-level compaction — while a large
// level splits into just enough units to feed every worker, instead of
// shattering into many tiny compactions whose fixed costs (iterator
// setup, table builds, manifest edits) would dominate.
func (t *Tree) unitGroupsLocked(v *version, l int) int {
	groups := t.unclaimedGroupsLocked(v, l, true)
	per := (groups + t.cfg.MaxCompactionConcurrency - 1) / t.cfg.MaxCompactionConcurrency
	if per < t.cfg.CompactionUnitGuards {
		per = t.cfg.CompactionUnitGuards
	}
	return per
}

// pickLocked claims and returns the next compaction unit following the
// paper's triggers, in priority order: L0 fill, level size, size-ratio
// (§4.2 aggressive compaction), per-guard sstable caps (§3.5), and seek
// budgets (§4.2). Work already claimed by a running unit is skipped, so N
// workers end up holding disjoint units — including disjoint guard groups
// of the same level.
func (t *Tree) pickLocked() *compaction {
	v := t.cur
	last := t.cfg.NumLevels - 1

	// 1. L0 file count. L0 files overlap arbitrarily, so the unit is
	// exclusive; it also gets absolute priority, because draining L0 is
	// what clears write stalls.
	if len(v.l0) >= t.cfg.L0CompactionTrigger && !t.inflight.l0 {
		return t.claimL0Locked(v)
	}

	// 2. Level size: claim up to CompactionUnitGuards unclaimed populated
	// groups of the highest-scoring over-threshold level. The level
	// drains through several concurrent units instead of one whole-level
	// pass; each byte still moves down at most once per level.
	bestScore := 0.0
	bestLevel := -1
	for l := 1; l < last; l++ {
		score := float64(v.levels[l].totalBytes()) / float64(t.cfg.MaxBytesForLevel(l))
		if score >= 1.0 && score > bestScore && t.unclaimedGroupsLocked(v, l, false) > 0 {
			bestScore, bestLevel = score, l
		}
	}
	if bestLevel > 0 {
		if c := t.claimLevelUnitLocked(v, bestLevel, t.unitGroupsLocked(v, bestLevel)); c != nil {
			return c
		}
	}

	// 3. Size-ratio rule: level i within SizeRatioPct of level i+1.
	if t.cfg.SizeRatioPct > 0 {
		for l := 1; l < last; l++ {
			next := v.levels[l+1].totalBytes()
			if next <= 0 {
				continue
			}
			if v.levels[l].totalBytes()*100 >= next*int64(t.cfg.SizeRatioPct) {
				if c := t.claimLevelUnitLocked(v, l, t.unitGroupsLocked(v, l)); c != nil {
					return c
				}
			}
		}
	}

	// 4. Guard sstable cap.
	for l := 1; l <= last; l++ {
		gl := &v.levels[l]
		if c := t.claimCapGroupLocked(v, l, nil, gl.sentinel); c != nil {
			return c
		}
		for i := range gl.guards {
			if c := t.claimCapGroupLocked(v, l, gl.guards[i].Key, gl.guards[i].Files); c != nil {
				return c
			}
		}
	}

	// 5. Seek-triggered guard compaction.
	for id := range t.seekPending {
		l := id.Level
		src := t.findGroup(v, l, id.Key)
		if src == nil || len(src) <= 1 {
			delete(t.seekPending, id)
			continue
		}
		var key []byte
		if id.Key != "" {
			key = []byte(id.Key)
		}
		if t.claimedSrcLocked(l, key) {
			continue
		}
		delete(t.seekPending, id)
		return t.claimGroupLocked(v, l, key, src, l == last, true)
	}
	return nil
}

// claimCapGroupLocked claims a single over-cap guard group, or nil.
func (t *Tree) claimCapGroupLocked(v *version, l int, key []byte, files []*base.FileMetadata) *compaction {
	last := t.cfg.NumLevels - 1
	if len(files) < t.cfg.MaxSSTablesPerGuard {
		return nil
	}
	if l == last && len(files) < 2 {
		// In-place merges need at least two files; rewriting a single
		// file is pure churn (matters when max_sstables_per_guard is 1,
		// the PebblesDB-1 mode).
		return nil
	}
	if t.claimedSrcLocked(l, key) {
		return nil
	}
	return t.claimGroupLocked(v, l, key, files, l == last, false)
}

// claimGroupLocked builds and claims a single-group unit.
func (t *Tree) claimGroupLocked(v *version, l int, key []byte, files []*base.FileMetadata, inPlace, seek bool) *compaction {
	c := &compaction{level: l, seek: seek, v: v}
	s := sourceGuard{key: key, files: append([]*base.FileMetadata(nil), files...), dst: l + 1}
	if inPlace {
		s.dst, s.inPlace = l, true
	}
	c.sources = append(c.sources, s)
	t.finalizeUnitLocked(c)
	return c
}

// claimLevelUnitLocked claims up to maxGroups unclaimed populated groups
// of a level as one unit, or nil when every group is claimed or empty.
func (t *Tree) claimLevelUnitLocked(v *version, l, maxGroups int) *compaction {
	gl := &v.levels[l]
	c := &compaction{level: l, v: v}
	if len(gl.sentinel) > 0 && !t.claimedSrcLocked(l, nil) {
		c.sources = append(c.sources, sourceGuard{
			key:   nil,
			files: append([]*base.FileMetadata(nil), gl.sentinel...),
			dst:   l + 1,
		})
	}
	for i := range gl.guards {
		if len(c.sources) >= maxGroups {
			break
		}
		if len(gl.guards[i].Files) == 0 || t.claimedSrcLocked(l, gl.guards[i].Key) {
			continue
		}
		c.sources = append(c.sources, sourceGuard{
			key:   gl.guards[i].Key,
			files: append([]*base.FileMetadata(nil), gl.guards[i].Files...),
			dst:   l + 1,
		})
	}
	if len(c.sources) == 0 {
		return nil
	}
	t.finalizeUnitLocked(c)
	return c
}

// claimL0Locked claims the exclusive L0->L1 unit.
func (t *Tree) claimL0Locked(v *version) *compaction {
	c := &compaction{
		level:   0,
		l0Files: append([]*base.FileMetadata(nil), v.l0...),
		v:       v,
	}
	t.inflight.l0 = true
	c.l0Partition = t.writerPartitionLocked(c, 1)
	t.noteUnitClaimedLocked(c)
	return c
}

// finalizeUnitLocked turns gathered sources into a claimed, runnable unit:
// it applies the §3.4 second-to-last-level rewrite heuristic, registers
// the unit as a writer on every destination level (fixing each level's
// shared output partition), claims the source guards, and updates the
// concurrency metrics.
func (t *Tree) finalizeUnitLocked(c *compaction) {
	last := t.cfg.NumLevels - 1
	for i := range c.sources {
		s := &c.sources[i]
		// Second-to-last level heuristic (§3.4): when the target guard in
		// the last level is full and merging there would cost more than
		// LastLevelRewriteFactor times the input, rewrite within this
		// level instead. A single-file guard is exempt: rewriting one
		// file in place is pure churn (and would repeat forever).
		if !s.inPlace && c.level == last-1 && len(s.files) >= 2 {
			if full, existing := t.lastLevelPressure(c.v, *s); full &&
				existing > uint64(t.cfg.LastLevelRewriteFactor)*s.bytes() {
				s.dst = c.level
				s.inPlace = true
			}
		}
	}
	for i := range c.sources {
		s := &c.sources[i]
		s.partition = t.writerPartitionLocked(c, s.dst)
		t.inflight.srcGuards[c.level][string(s.key)] = true
	}
	t.noteUnitClaimedLocked(c)
}

// writerPartitionLocked registers c as a writer on level dst (once per
// unit) and returns the level's shared partition keys. The first writer
// fixes the partition — the level's committed guards plus the uncommitted
// guards no existing file straddles (§3.3) — and it stays fixed until the
// last writer releases, so every concurrent output into the level cuts at
// the same keys and no output can straddle a guard another unit commits.
// An in-place rewrite partitions at the same shared keys: cuts only occur
// at keys inside the data it writes, so the output stays within its guard
// while still honoring every commit candidate.
func (t *Tree) writerPartitionLocked(c *compaction, dst int) [][]byte {
	inf := &t.inflight
	for _, wl := range c.writerLevels {
		if wl == dst {
			return inf.partition[dst]
		}
	}
	if inf.writers[dst] == 0 {
		gl := &t.cur.levels[dst]
		committed := gl.guardKeys()
		var eligible [][]byte
		for _, k := range t.uncommitted[dst] {
			if !gl.straddles(k) {
				eligible = append(eligible, append([]byte(nil), k...))
			}
		}
		keys := make([][]byte, 0, len(committed)+len(eligible))
		keys = append(keys, committed...)
		keys = append(keys, eligible...)
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		inf.partition[dst] = keys
		inf.commitKeys[dst] = eligible
	}
	inf.writers[dst]++
	c.writerLevels = append(c.writerLevels, dst)
	if keys := inf.commitKeys[dst]; len(keys) > 0 {
		// Every writer carries the level's commit set; guard commits are
		// idempotent (insertGuards dedups), and this way the commits land
		// even if a peer unit fails.
		c.commits = append(c.commits, guardCommit{level: dst, keys: keys})
	}
	return inf.partition[dst]
}

// noteUnitClaimedLocked updates the unit counters and high-water marks.
func (t *Tree) noteUnitClaimedLocked(c *compaction) {
	inf := &t.inflight
	inf.units++
	inf.levelUnits[c.level]++
	t.metrics.CompactionUnits++
	if int64(inf.units) > t.metrics.PeakUnitsInflight {
		t.metrics.PeakUnitsInflight = int64(inf.units)
	}
	if inf.levelUnits[c.level] > t.metrics.PeakLevelUnits[c.level] {
		t.metrics.PeakLevelUnits[c.level] = inf.levelUnits[c.level]
	}
}

// releaseLocked returns a unit's claims: source guards unlock, writer
// refcounts drop, and a level's shared partition dissolves with its last
// writer (the next claim recomputes it against the then-current version).
func (t *Tree) releaseLocked(c *compaction) {
	inf := &t.inflight
	if c.level == 0 {
		inf.l0 = false
	} else {
		for i := range c.sources {
			delete(inf.srcGuards[c.level], string(c.sources[i].key))
		}
	}
	for _, wl := range c.writerLevels {
		inf.writers[wl]--
		if inf.writers[wl] == 0 {
			inf.partition[wl] = nil
			inf.commitKeys[wl] = nil
		}
	}
	inf.units--
	inf.levelUnits[c.level]--
}

// findGroup returns the files of the guard identified by key ("" sentinel).
// Guards are sorted by key, so the interval lookup is guard.FindGuard's
// binary search; an exact-key check distinguishes "this guard" from "a key
// inside some other guard's interval".
func (t *Tree) findGroup(v *version, level int, key string) []*base.FileMetadata {
	gl := &v.levels[level]
	if key == "" {
		return gl.sentinel
	}
	idx := guard.FindGuard(gl.guards, []byte(key))
	if idx >= 0 && string(gl.guards[idx].Key) == key {
		return gl.guards[idx].Files
	}
	return nil
}

// CompactOnce claims and performs at most one compaction unit. A worker
// that finds work pending but fully claimed by its peers starts the
// claim-stall clock; the next successful claim (by any worker) folds the
// elapsed wait into ClaimStallNanos.
func (t *Tree) CompactOnce() (bool, error) {
	t.mu.Lock()
	c := t.pickLocked()
	if c == nil {
		if t.claimableLocked(1, true) > 0 {
			t.metrics.ClaimConflicts++
			if t.claimStallStart.IsZero() {
				t.claimStallStart = time.Now()
			}
		}
		t.mu.Unlock()
		return false, nil
	}
	if !t.claimStallStart.IsZero() {
		t.metrics.ClaimStallNanos += int64(time.Since(t.claimStallStart))
		t.claimStallStart = time.Time{}
	}
	t.mu.Unlock()
	err := t.runCompaction(c)
	t.mu.Lock()
	t.releaseLocked(c)
	t.mu.Unlock()
	return true, err
}

// guardOutput is the result of compacting one source guard.
type guardOutput struct {
	dstLevel int
	metas    []*base.FileMetadata
	builder  *treebase.OutputBuilder
	inPlace  bool
}

// runCompaction brackets one unit with compaction begin/end events —
// source level, guard range, unit id, input/output volume, duration —
// and delegates the work to compactUnit.
func (t *Tree) runCompaction(c *compaction) error {
	var inTables int
	var inBytes int64
	for _, f := range c.l0Files {
		inTables++
		inBytes += int64(f.Size)
	}
	var lo, hi string
	for i := range c.sources {
		s := &c.sources[i]
		for _, f := range s.files {
			inTables++
			inBytes += int64(f.Size)
		}
		if i == 0 {
			lo = string(s.key)
		}
		hi = string(s.key)
	}
	id := t.unitID.Add(1)
	t.cfg.Emit(obs.Event{
		Kind: obs.EventCompactionBegin, Nanos: obs.Monotonic(),
		Level: c.level, Unit: id, GuardLo: lo, GuardHi: hi,
		InputTables: inTables, InputBytes: inBytes,
	})
	start := time.Now()
	outBytes, outTables, err := t.compactUnit(c)
	t.cfg.Emit(obs.Event{
		Kind: obs.EventCompactionEnd, Nanos: obs.Monotonic(),
		Level: c.level, Unit: id, GuardLo: lo, GuardHi: hi,
		InputTables: inTables, InputBytes: inBytes,
		OutputTables: outTables, OutputBytes: outBytes,
		Dur: time.Since(start), Err: err,
	})
	return err
}

// compactUnit performs one claimed unit: merge each source guard group,
// partition the outputs, and install the edit. Returns the installed
// output volume for the end event.
func (t *Tree) compactUnit(c *compaction) (int64, int, error) {
	smallest := base.MaxSeqNum
	if t.snap != nil {
		smallest = t.snap.SmallestSnapshot()
	}
	last := t.cfg.NumLevels - 1

	edit := &manifest.VersionEdit{}
	for _, gc := range c.commits {
		for _, k := range gc.keys {
			edit.NewGuards = append(edit.NewGuards, manifest.GuardEntry{Level: gc.level, Key: k})
		}
	}

	var bytesIn, bytesOut int64
	var outputs []guardOutput
	var failed error

	if c.level == 0 {
		for _, f := range c.l0Files {
			bytesIn += int64(f.Size)
			edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: 0, FileNum: f.FileNum})
		}
		// Tombstones are never elided here: older versions may live below.
		out, err := t.mergeAndPartition(c.l0Files, c.l0Partition, smallest, false)
		if err != nil {
			out.builder.Abandon()
			return 0, 0, err
		}
		out.dstLevel = 1
		outputs = append(outputs, out)
	} else {
		for _, s := range c.sources {
			for _, f := range s.files {
				bytesIn += int64(f.Size)
				edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level, FileNum: f.FileNum})
			}
		}
		run := func(s sourceGuard) (guardOutput, error) {
			// Elide tombstones only when the merge covers every file that
			// could hold older versions of its keys: an in-place merge of
			// a whole last-level guard.
			elide := s.inPlace && s.dst == last
			out, err := t.mergeAndPartition(s.files, s.partition, smallest, elide)
			out.dstLevel = s.dst
			out.inPlace = s.inPlace
			return out, err
		}

		if t.cfg.ParallelGuardCompaction && len(c.sources) > 1 {
			// Guard-granular parallel compaction: source guards map to
			// disjoint target intervals, so their merges are independent
			// (§3.4: "FLSM compaction is trivially parallelizable").
			var wg sync.WaitGroup
			var omu sync.Mutex
			for _, s := range c.sources {
				wg.Add(1)
				go func(s sourceGuard) {
					defer wg.Done()
					out, err := run(s)
					omu.Lock()
					defer omu.Unlock()
					if err != nil {
						out.builder.Abandon()
						if failed == nil {
							failed = err
						}
						return
					}
					outputs = append(outputs, out)
				}(s)
			}
			wg.Wait()
		} else {
			for _, s := range c.sources {
				out, err := run(s)
				if err != nil {
					out.builder.Abandon()
					failed = err
					break
				}
				outputs = append(outputs, out)
			}
		}
	}
	if failed != nil {
		for _, o := range outputs {
			o.builder.Abandon()
		}
		return 0, 0, failed
	}

	inPlaceCount := 0
	outTables := 0
	for _, o := range outputs {
		if o.inPlace {
			inPlaceCount++
		}
		for _, m := range o.metas {
			edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: o.dstLevel, Meta: *m})
			bytesOut += int64(m.Size)
			outTables++
		}
	}

	installed, err := t.logAndInstall(edit)
	if err != nil {
		for _, o := range outputs {
			if installed {
				// Outputs are live in the installed version: keep them (a
				// later manifest rotation persists them). Inputs likewise
				// must stay on disk — the durable manifest still references
				// them — so obsolete-table notification is skipped too.
				o.builder.ReleasePending()
			} else {
				o.builder.Abandon()
			}
		}
		return 0, 0, err
	}
	for _, o := range outputs {
		o.builder.ReleasePending()
	}
	if t.snap != nil {
		dead := make([]base.FileNum, 0, len(edit.DeletedFiles))
		for _, d := range edit.DeletedFiles {
			dead = append(dead, d.FileNum)
		}
		t.snap.NoteObsoleteTables(dead)
	}

	t.mu.Lock()
	t.metrics.Compactions++
	t.metrics.InPlaceMerges += int64(inPlaceCount)
	if c.seek {
		t.metrics.SeekCompactions++
	}
	t.metrics.BytesCompactedIn += bytesIn
	t.metrics.BytesCompactedOut += bytesOut
	for _, o := range outputs {
		t.metrics.Compression.Merge(o.builder.CompressionStats())
	}
	for _, s := range c.sources {
		id := guardID{Level: c.level, Key: string(s.key)}
		delete(t.seekCounts, id)
		delete(t.seekPending, id)
	}
	t.mu.Unlock()
	return bytesOut, outTables, nil
}

// lastLevelPressure reports whether the last-level guard receiving source
// guard s is at its sstable cap, and how many bytes it already holds.
func (t *Tree) lastLevelPressure(v *version, s sourceGuard) (full bool, existing uint64) {
	last := t.cfg.NumLevels - 1
	gl := &v.levels[last]
	var lo []byte
	for i, f := range s.files {
		if i == 0 || bytes.Compare(f.SmallestUserKey(), lo) < 0 {
			lo = f.SmallestUserKey()
		}
	}
	idx := guard.FindGuard(gl.guards, lo)
	var files []*base.FileMetadata
	if idx < 0 {
		files = gl.sentinel
	} else {
		files = gl.guards[idx].Files
	}
	for _, f := range files {
		existing += f.Size
	}
	return len(files) >= t.cfg.MaxSSTablesPerGuard, existing
}

// mergeAndPartition merge-sorts files and fragments the stream at the
// partition keys (§3.4: "the sstables of a given guard are merge-sorted
// and then partitioned, so that each child guard receives a new sstable
// that fits its key range"). Range tombstones from the inputs follow the
// same partitioning: each output table receives the fragments clipped to
// its partition interval — never wider, so a later guard split cannot
// resurrect data the tombstone covered or delete keys it never did — and a
// partition interval that receives no surviving points but is spanned by a
// tombstone still emits a tombstone-only table, because the tombstone must
// keep masking older versions below. When elideTombstones is set (an
// in-place merge of a whole last-level guard: nothing below can hold
// covered keys), tombstones every snapshot can see are dropped along with
// the points they cover.
func (t *Tree) mergeAndPartition(files []*base.FileMetadata, partitionKeys [][]byte, smallestSnapshot base.SeqNum, elideTombstones bool) (guardOutput, error) {
	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	out := guardOutput{builder: ob}

	dropLE := base.SeqNum(0)
	if elideTombstones {
		dropLE = smallestSnapshot
	}

	// Open each input once, collecting its range tombstones alongside its
	// merge iterator.
	var rd *rangedel.List
	var iters []iterator.Iterator
	for _, f := range files {
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			for _, it := range iters {
				it.Close()
			}
			return out, err
		}
		if f.NumRangeDels > 0 {
			if rd == nil {
				rd = &rangedel.List{}
			}
			for _, ts := range r.RangeDels().Raw() {
				rd.Add(ts)
			}
		}
		iters = append(iters, treebase.NewSequentialTableIter(r))
	}
	merged := iterator.NewMerging(base.InternalCompare, iters...)
	ci := treebase.NewCompactionIter(merged, smallestSnapshot, elideTombstones, rd)

	// cutInterval finishes the table for partition interval i, attaching
	// the surviving tombstone fragments clipped to [keys[i-1], keys[i]).
	// An interval with neither points nor tombstones emits nothing.
	cutInterval := func(i int) error {
		var lo, hi []byte
		if i > 0 {
			lo = partitionKeys[i-1]
		}
		if i < len(partitionKeys) {
			hi = partitionKeys[i]
		}
		if !rd.Empty() {
			if err := ob.AddRangeDels(rd.Clipped(lo, hi, dropLE)); err != nil {
				return err
			}
		}
		if ob.HasOpen() {
			return ob.Cut()
		}
		return nil
	}

	tIdx := 0
	for ci.First(); ci.Valid(); ci.Next() {
		ukey := base.UserKey(ci.Key())
		for tIdx < len(partitionKeys) && bytes.Compare(partitionKeys[tIdx], ukey) <= 0 {
			if err := cutInterval(tIdx); err != nil {
				ci.Close()
				return out, err
			}
			tIdx++
		}
		if err := ob.Add(ci.Key(), ci.Value()); err != nil {
			ci.Close()
			return out, err
		}
	}
	if err := ci.Error(); err != nil {
		ci.Close()
		return out, err
	}
	ci.Close()
	// Flush the open table's interval plus any remaining intervals spanned
	// only by tombstones.
	for ; tIdx <= len(partitionKeys); tIdx++ {
		if err := cutInterval(tIdx); err != nil {
			return out, err
		}
	}
	metas, err := ob.Finish()
	if err != nil {
		return out, err
	}
	out.metas = metas
	return out, nil
}

// forcePushLocked claims a compaction moving the topmost populated
// level's unclaimed data one level down regardless of size triggers, or
// nil when everything already sits in the last level (or running units
// hold the remaining work).
func (t *Tree) forcePushLocked() *compaction {
	v := t.cur
	last := t.cfg.NumLevels - 1
	if len(v.l0) > 0 {
		if t.inflight.l0 {
			return nil
		}
		return t.claimL0Locked(v)
	}
	for l := 1; l < last; l++ {
		if v.levels[l].fileCount() == 0 {
			continue
		}
		return t.claimLevelUnitLocked(v, l, math.MaxInt)
	}
	return nil
}

// CompactAll drives compaction until quiescent. Like LevelDB's manual
// CompactRange it then keeps pushing data down until everything sits in
// the last level: a fully compacted store serves every seek from one guard
// group instead of one per populated level plus leftover L0 flushes.
func (t *Tree) CompactAll() error {
	for {
		did, err := t.CompactOnce()
		if err != nil {
			return err
		}
		if did {
			continue
		}
		t.mu.Lock()
		c := t.forcePushLocked()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		err = t.runCompaction(c)
		t.mu.Lock()
		t.releaseLocked(c)
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
}
