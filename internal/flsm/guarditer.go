package flsm

import (
	"sync"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/treebase"
)

// guardLevelIter iterates one FLSM level in key order, forward or backward:
// the sentinel's files, then each guard's files. Within a guard (where
// sstables may overlap) a merging iterator combines the tables; across
// guards plain concatenation suffices because guard intervals are disjoint
// (§3.1). Reverse iteration positions every sstable within a guard at its
// bound (Merging.SeekLT / Last) and drains guards from the end of the
// level.
//
// The iterator is built for reuse across seeks: the merging iterator and
// kids slice are embedded and recycled, table iterators come from the
// shared pool, and re-seeking into the already-open group skips the
// close/reopen cycle entirely — the steady state of a warm scan loop. When
// the request carries a prefix, tables whose prefix bloom filter rules the
// prefix out are skipped before any block is read.
type guardLevelIter struct {
	tree     *Tree
	level    int
	groups   []guard.Guard // sentinel (Key=nil) followed by the guards
	idx      int
	cur      iterator.Iterator // &g.m or &g.empty while a group is open
	parallel bool
	err      error
	req      treebase.IterRequest
	m        iterator.Merging
	kids     []iterator.Iterator
	empty    iterator.Empty
}

// newGuardLevelIter builds the level iterator, pruning files outside
// bounds before any table is opened. Guards left with no files are dropped
// (except the sentinel slot, which anchors group indexing); FindGuard on
// the thinned guard list still lands scans on the correct remaining group
// because every file lies within its own guard interval.
func newGuardLevelIter(t *Tree, level int, gl *guardedLevel, parallel bool, req treebase.IterRequest) *guardLevelIter {
	bounds := req.Bounds
	groups := make([]guard.Guard, 0, len(gl.guards)+1)
	groups = append(groups, guard.Guard{Files: bounds.FilterFiles(gl.sentinel)})
	for i := range gl.guards {
		files := bounds.FilterFiles(gl.guards[i].Files)
		if len(files) == 0 && !bounds.Unbounded() {
			continue
		}
		groups = append(groups, guard.Guard{Key: gl.guards[i].Key, Files: files})
	}
	return &guardLevelIter{tree: t, level: level, groups: groups, idx: -1, parallel: parallel, req: req}
}

// closeCur releases the open group: every pooled table iterator goes back
// to the pool, the kids slice keeps its capacity for the next group.
func (g *guardLevelIter) closeCur() {
	for _, k := range g.kids {
		if err := k.Close(); err != nil && g.err == nil {
			g.err = err
		}
	}
	g.kids = g.kids[:0]
	g.cur = nil
}

// openGroup builds the merged iterator over group i's files without
// positioning it; returns false past either end of the level or on error.
func (g *guardLevelIter) openGroup(i int) bool {
	g.closeCur()
	if i < 0 {
		g.idx = -1
		return false
	}
	if i >= len(g.groups) {
		g.idx = len(g.groups)
		return false
	}
	g.idx = i
	for _, f := range g.groups[i].Files {
		r, err := g.tree.tc.Find(f.FileNum, f.Size)
		if err != nil {
			g.err = err
			g.closeCur()
			return false
		}
		if g.req.Prefix != nil && !r.MayContainPrefix(g.req.Prefix) {
			r.Unref()
			g.req.CountPrefixSkip()
			continue
		}
		g.req.CountOpen()
		g.kids = append(g.kids, treebase.GetTableIter(r))
	}
	if len(g.kids) == 0 {
		g.empty = iterator.Empty{}
		g.cur = &g.empty
		return true
	}
	g.m.Init(base.InternalCompare, g.kids)
	g.cur = &g.m
	return true
}

// seekGroup opens group i (reusing it when already open — the steady state
// of a warm scan loop re-seeking within one guard) and positions it at
// target. Parallel seeks (§4.2): position each sstable iterator on its own
// goroutine, then assemble the heap. Only profitable when the tables are
// likely uncached — the tree enables it for the last level only. reverse
// selects SeekLT.
func (g *guardLevelIter) seekGroup(i int, target []byte, reverse bool) bool {
	if i != g.idx || g.cur == nil {
		if !g.openGroup(i) {
			return false
		}
	}
	if g.cur != &g.m { // empty group
		return true
	}
	m := &g.m
	if g.parallel && len(g.kids) > 1 {
		var wg sync.WaitGroup
		for ki := 0; ki < len(g.kids); ki++ {
			wg.Add(1)
			go func(ki int) {
				defer wg.Done()
				if reverse {
					m.Kid(ki).SeekLT(target)
				} else {
					m.Kid(ki).SeekGE(target)
				}
			}(ki)
		}
		wg.Wait()
		if reverse {
			m.InitPositionedReverse()
		} else {
			m.InitPositioned()
		}
		return true
	}
	if reverse {
		m.SeekLT(target)
	} else {
		m.SeekGE(target)
	}
	return true
}

// findGroup locates the group whose guard interval contains ukey and
// charges its seek budget.
func (g *guardLevelIter) findGroup(ukey []byte) int {
	// groups[0] is the sentinel; guards start at index 1.
	gi := guard.FindGuard(g.groups[1:], ukey) + 1
	if gi >= 1 {
		g.tree.recordSeek(g.level, g.groups[gi].Key, len(g.groups[gi].Files))
	} else {
		gi = 0
		g.tree.recordSeek(g.level, nil, len(g.groups[0].Files))
	}
	return gi
}

// SeekGE positions at the first entry >= target (an internal key).
func (g *guardLevelIter) SeekGE(target []byte) {
	if g.err != nil {
		return
	}
	if !g.seekGroup(g.findGroup(base.UserKey(target)), target, false) {
		return
	}
	g.skipEmpty()
}

// SeekLT positions at the last entry < target (an internal key). Entries
// below target live in the guard containing target's user key or in
// earlier guards.
func (g *guardLevelIter) SeekLT(target []byte) {
	if g.err != nil {
		return
	}
	if !g.seekGroup(g.findGroup(base.UserKey(target)), target, true) {
		return
	}
	g.skipEmptyBackward()
}

// First positions at the level's first entry.
func (g *guardLevelIter) First() {
	if g.err != nil {
		return
	}
	if g.idx != 0 || g.cur == nil {
		if !g.openGroup(0) {
			return
		}
	}
	g.cur.First()
	g.skipEmpty()
}

// Last positions at the level's last entry.
func (g *guardLevelIter) Last() {
	if g.err != nil {
		return
	}
	last := len(g.groups) - 1
	if g.idx != last || g.cur == nil {
		if !g.openGroup(last) {
			return
		}
	}
	g.cur.Last()
	g.skipEmptyBackward()
}

// Next advances, crossing guard boundaries as needed.
func (g *guardLevelIter) Next() {
	if g.cur == nil || g.err != nil {
		return
	}
	g.cur.Next()
	g.skipEmpty()
}

// Prev moves back, crossing guard boundaries as needed.
func (g *guardLevelIter) Prev() {
	if g.cur == nil || g.err != nil {
		return
	}
	g.cur.Prev()
	g.skipEmptyBackward()
}

func (g *guardLevelIter) skipEmpty() {
	for g.cur != nil && !g.cur.Valid() {
		if err := g.cur.Error(); err != nil {
			g.err = err
			return
		}
		if !g.openGroup(g.idx + 1) {
			return
		}
		g.cur.First()
	}
}

func (g *guardLevelIter) skipEmptyBackward() {
	for g.cur != nil && !g.cur.Valid() {
		if err := g.cur.Error(); err != nil {
			g.err = err
			return
		}
		if !g.openGroup(g.idx - 1) {
			return
		}
		g.cur.Last()
	}
}

func (g *guardLevelIter) Valid() bool {
	return g.err == nil && g.cur != nil && g.cur.Valid()
}

func (g *guardLevelIter) Key() []byte   { return g.cur.Key() }
func (g *guardLevelIter) Value() []byte { return g.cur.Value() }

func (g *guardLevelIter) Error() error { return g.err }

func (g *guardLevelIter) Close() error {
	g.closeCur()
	return g.err
}
