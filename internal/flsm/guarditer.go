package flsm

import (
	"sync"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/treebase"
)

// guardLevelIter iterates one FLSM level in key order, forward or backward:
// the sentinel's files, then each guard's files. Within a guard (where
// sstables may overlap) a merging iterator combines the tables; across
// guards plain concatenation suffices because guard intervals are disjoint
// (§3.1). Reverse iteration positions every sstable within a guard at its
// bound (Merging.SeekLT / Last) and drains guards from the end of the
// level.
type guardLevelIter struct {
	tree     *Tree
	level    int
	groups   []guard.Guard // sentinel (Key=nil) followed by the guards
	idx      int
	cur      iterator.Iterator
	parallel bool
	err      error
}

// newGuardLevelIter builds the level iterator, pruning files outside
// bounds before any table is opened. Guards left with no files are dropped
// (except the sentinel slot, which anchors group indexing); FindGuard on
// the thinned guard list still lands scans on the correct remaining group
// because every file lies within its own guard interval.
func newGuardLevelIter(t *Tree, level int, gl *guardedLevel, parallel bool, bounds base.Bounds) *guardLevelIter {
	groups := make([]guard.Guard, 0, len(gl.guards)+1)
	groups = append(groups, guard.Guard{Files: bounds.FilterFiles(gl.sentinel)})
	for i := range gl.guards {
		files := bounds.FilterFiles(gl.guards[i].Files)
		if len(files) == 0 && !bounds.Unbounded() {
			continue
		}
		groups = append(groups, guard.Guard{Key: gl.guards[i].Key, Files: files})
	}
	return &guardLevelIter{tree: t, level: level, groups: groups, idx: -1, parallel: parallel}
}

// openGroup builds the merged iterator over group i's files without
// positioning it; returns false past either end of the level or on error.
func (g *guardLevelIter) openGroup(i int) bool {
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	if i < 0 {
		g.idx = -1
		return false
	}
	if i >= len(g.groups) {
		g.idx = len(g.groups)
		return false
	}
	g.idx = i
	files := g.groups[i].Files
	if len(files) == 0 {
		g.cur = &iterator.Empty{}
		return true
	}
	kids := make([]iterator.Iterator, 0, len(files))
	for _, f := range files {
		r, err := g.tree.tc.Find(f.FileNum, f.Size)
		if err != nil {
			g.err = err
			for _, k := range kids {
				k.Close()
			}
			return false
		}
		kids = append(kids, treebase.NewTableIter(r))
	}
	m := iterator.NewMerging(base.InternalCompare, kids...)
	g.cur = m
	return true
}

// seekGroup opens group i and positions it at target. Parallel seeks
// (§4.2): position each sstable iterator on its own goroutine, then
// assemble the heap. Only profitable when the tables are likely uncached —
// the tree enables it for the last level only. reverse selects SeekLT.
func (g *guardLevelIter) seekGroup(i int, target []byte, reverse bool) bool {
	if !g.openGroup(i) {
		return false
	}
	m, ok := g.cur.(*iterator.Merging)
	if !ok { // empty group
		return true
	}
	kids := g.groups[i].Files
	if g.parallel && len(kids) > 1 {
		var wg sync.WaitGroup
		for ki := 0; ki < len(kids); ki++ {
			wg.Add(1)
			go func(ki int) {
				defer wg.Done()
				if reverse {
					m.Kid(ki).SeekLT(target)
				} else {
					m.Kid(ki).SeekGE(target)
				}
			}(ki)
		}
		wg.Wait()
		if reverse {
			m.InitPositionedReverse()
		} else {
			m.InitPositioned()
		}
		return true
	}
	if reverse {
		m.SeekLT(target)
	} else {
		m.SeekGE(target)
	}
	return true
}

// findGroup locates the group whose guard interval contains ukey and
// charges its seek budget.
func (g *guardLevelIter) findGroup(ukey []byte) int {
	// groups[0] is the sentinel; guards start at index 1.
	gi := guard.FindGuard(g.groups[1:], ukey) + 1
	if gi >= 1 {
		g.tree.recordSeek(g.level, g.groups[gi].Key, len(g.groups[gi].Files))
	} else {
		gi = 0
		g.tree.recordSeek(g.level, nil, len(g.groups[0].Files))
	}
	return gi
}

// SeekGE positions at the first entry >= target (an internal key).
func (g *guardLevelIter) SeekGE(target []byte) {
	if g.err != nil {
		return
	}
	if !g.seekGroup(g.findGroup(base.UserKey(target)), target, false) {
		return
	}
	g.skipEmpty()
}

// SeekLT positions at the last entry < target (an internal key). Entries
// below target live in the guard containing target's user key or in
// earlier guards.
func (g *guardLevelIter) SeekLT(target []byte) {
	if g.err != nil {
		return
	}
	if !g.seekGroup(g.findGroup(base.UserKey(target)), target, true) {
		return
	}
	g.skipEmptyBackward()
}

// First positions at the level's first entry.
func (g *guardLevelIter) First() {
	if g.err != nil {
		return
	}
	if !g.openGroup(0) {
		return
	}
	g.cur.First()
	g.skipEmpty()
}

// Last positions at the level's last entry.
func (g *guardLevelIter) Last() {
	if g.err != nil {
		return
	}
	if !g.openGroup(len(g.groups) - 1) {
		return
	}
	g.cur.Last()
	g.skipEmptyBackward()
}

// Next advances, crossing guard boundaries as needed.
func (g *guardLevelIter) Next() {
	if g.cur == nil || g.err != nil {
		return
	}
	g.cur.Next()
	g.skipEmpty()
}

// Prev moves back, crossing guard boundaries as needed.
func (g *guardLevelIter) Prev() {
	if g.cur == nil || g.err != nil {
		return
	}
	g.cur.Prev()
	g.skipEmptyBackward()
}

func (g *guardLevelIter) skipEmpty() {
	for g.cur != nil && !g.cur.Valid() {
		if err := g.cur.Error(); err != nil {
			g.err = err
			return
		}
		if !g.openGroup(g.idx + 1) {
			return
		}
		g.cur.First()
	}
}

func (g *guardLevelIter) skipEmptyBackward() {
	for g.cur != nil && !g.cur.Valid() {
		if err := g.cur.Error(); err != nil {
			g.err = err
			return
		}
		if !g.openGroup(g.idx - 1) {
			return
		}
		g.cur.Last()
	}
}

func (g *guardLevelIter) Valid() bool {
	return g.err == nil && g.cur != nil && g.cur.Valid()
}

func (g *guardLevelIter) Key() []byte   { return g.cur.Key() }
func (g *guardLevelIter) Value() []byte { return g.cur.Value() }

func (g *guardLevelIter) Error() error { return g.err }

func (g *guardLevelIter) Close() error {
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	return g.err
}
