package flsm

import (
	"sync"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/treebase"
)

// guardLevelIter iterates one FLSM level in key order: the sentinel's
// files, then each guard's files. Within a guard (where sstables may
// overlap) a merging iterator combines the tables; across guards plain
// concatenation suffices because guard intervals are disjoint (§3.1).
type guardLevelIter struct {
	tree     *Tree
	level    int
	groups   []guard.Guard // sentinel (Key=nil) followed by the guards
	idx      int
	cur      iterator.Iterator
	parallel bool
	err      error
}

func newGuardLevelIter(t *Tree, level int, gl *guardedLevel, parallel bool) *guardLevelIter {
	groups := make([]guard.Guard, 0, len(gl.guards)+1)
	groups = append(groups, guard.Guard{Files: gl.sentinel})
	groups = append(groups, gl.guards...)
	return &guardLevelIter{tree: t, level: level, groups: groups, idx: -1, parallel: parallel}
}

// openGroup builds the merged iterator over group i's files; returns false
// at end of level or on error.
func (g *guardLevelIter) openGroup(i int, seekTarget []byte) bool {
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	if i < 0 || i >= len(g.groups) {
		g.idx = len(g.groups)
		return false
	}
	g.idx = i
	files := g.groups[i].Files
	if len(files) == 0 {
		g.cur = &iterator.Empty{}
		return true
	}
	kids := make([]iterator.Iterator, 0, len(files))
	for _, f := range files {
		r, err := g.tree.tc.Find(f.FileNum, f.Size)
		if err != nil {
			g.err = err
			for _, k := range kids {
				k.Close()
			}
			return false
		}
		kids = append(kids, treebase.NewTableIter(r))
	}
	m := iterator.NewMerging(base.InternalCompare, kids...)
	if seekTarget != nil {
		// Parallel seeks (§4.2): position each sstable iterator on its own
		// goroutine, then assemble the heap. Only profitable when the
		// tables are likely uncached — the tree enables it for the last
		// level only.
		if g.parallel && len(kids) > 1 {
			var wg sync.WaitGroup
			for _, k := range kids {
				wg.Add(1)
				go func(k iterator.Iterator) {
					defer wg.Done()
					k.SeekGE(seekTarget)
				}(k)
			}
			wg.Wait()
			m.InitPositioned()
		} else {
			m.SeekGE(seekTarget)
		}
	}
	g.cur = m
	return true
}

// SeekGE positions at the first entry >= target (an internal key).
func (g *guardLevelIter) SeekGE(target []byte) {
	if g.err != nil {
		return
	}
	ukey := base.UserKey(target)
	// groups[0] is the sentinel; guards start at index 1.
	gi := guard.FindGuard(g.groups[1:], ukey) + 1
	if gi >= 1 {
		g.tree.recordSeek(g.level, g.groups[gi].Key, len(g.groups[gi].Files))
	} else {
		gi = 0
		g.tree.recordSeek(g.level, nil, len(g.groups[0].Files))
	}
	if !g.openGroup(gi, target) {
		return
	}
	g.skipEmpty()
}

// First positions at the level's first entry.
func (g *guardLevelIter) First() {
	if g.err != nil {
		return
	}
	if !g.openGroup(0, nil) {
		return
	}
	g.cur.First()
	g.skipEmpty()
}

// Next advances, crossing guard boundaries as needed.
func (g *guardLevelIter) Next() {
	if g.cur == nil || g.err != nil {
		return
	}
	g.cur.Next()
	g.skipEmpty()
}

func (g *guardLevelIter) skipEmpty() {
	for g.cur != nil && !g.cur.Valid() {
		if err := g.cur.Error(); err != nil {
			g.err = err
			return
		}
		if !g.openGroup(g.idx+1, nil) {
			return
		}
		g.cur.First()
	}
}

func (g *guardLevelIter) Valid() bool {
	return g.err == nil && g.cur != nil && g.cur.Valid()
}

func (g *guardLevelIter) Key() []byte   { return g.cur.Key() }
func (g *guardLevelIter) Value() []byte { return g.cur.Value() }

func (g *guardLevelIter) Error() error { return g.err }

func (g *guardLevelIter) Close() error {
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	return g.err
}
