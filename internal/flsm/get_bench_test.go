package flsm

import (
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/vfs"
)

// BenchmarkTreeGet measures the FLSM point-lookup path (bloom checks,
// userKeyInRange, guard binary search) against a multi-level tree. Run
// with -benchmem: it pins the allocs/op of Get so hot-path regressions
// (like a range check that starts allocating) show up immediately.
// History: 10 allocs/op through PR 3; the PR 4 pooled get-scratch rebuild
// (block cursors, search key and candidate tracking all reuse pooled
// buffers, values alias block payloads) brought it to 0 allocs/op on a
// warm cache, ~700 ns/op in this configuration.
func BenchmarkTreeGet(b *testing.B) {
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(testConfig(), vfs.NewMem(), "bench", host)
	if err != nil {
		b.Fatal(err)
	}
	defer tree.Close()

	const numKeys = 20000
	var seq base.SeqNum
	keys := make([][]byte, numKeys)
	// Several flush batches so lookups traverse L0 files and guarded
	// levels, then compact into steady state.
	for batch := 0; batch < 10; batch++ {
		mem := memtable.New()
		for i := batch; i < numKeys; i += 10 {
			k := []byte(fmt.Sprintf("user%08d", i))
			keys[i] = k
			seq++
			mem.Set(k, seq, base.KindSet, []byte(fmt.Sprintf("val%08d", i)))
			tree.Ingest(k)
		}
		if err := tree.Flush(mem.NewIter(), nil, 0, seq); err != nil {
			b.Fatal(err)
		}
	}
	if err := tree.CompactAll(); err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[rng.Intn(numKeys)]
		_, found, err := tree.Get(k, base.MaxSeqNum, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !found {
			b.Fatalf("key %s missing", k)
		}
	}
}
