package flsm

import (
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/vfs"
)

// fabMeta fabricates file metadata for pick/claim tests: the scheduler
// only reads key ranges and sizes, so no table IO is needed.
func fabMeta(fn base.FileNum, size uint64, lo, hi string) base.FileMetadata {
	return base.FileMetadata{
		FileNum:  fn,
		Size:     size,
		Smallest: base.MakeInternalKey(nil, []byte(lo), 100, base.KindSet),
		Largest:  base.MakeInternalKey(nil, []byte(hi), 1, base.KindSet),
	}
}

// openSchedTree builds a tree whose level 1 is over its size threshold
// with four committed guard groups (sentinel + b + c + d), each holding
// one 32 KB file — LevelBaseBytes is 64 KB, so the level scores 2.0.
func openSchedTree(t *testing.T) *Tree {
	t.Helper()
	cfg := testConfig()
	cfg.CompactionUnitGuards = 2
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(cfg, vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	edit := &manifest.VersionEdit{
		NewGuards: []manifest.GuardEntry{
			{Level: 1, Key: []byte("b")},
			{Level: 1, Key: []byte("c")},
			{Level: 1, Key: []byte("d")},
		},
		NewFiles: []manifest.NewFileEntry{
			{Level: 1, Meta: fabMeta(101, 32<<10, "a0", "a9")},
			{Level: 1, Meta: fabMeta(102, 32<<10, "b0", "b9")},
			{Level: 1, Meta: fabMeta(103, 32<<10, "c0", "c9")},
			{Level: 1, Meta: fabMeta(104, 32<<10, "d0", "d9")},
		},
	}
	if _, err := tree.logAndInstall(edit); err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestParallelUnitsSameLevelDisjoint is the scheduler-level guarantee
// behind intra-level parallel compaction: two consecutive picks claim
// disjoint guard groups of the same level, the per-level parallelism
// high-water mark reaches 2, and releasing both units restores a fully
// unclaimed scheduler.
func TestParallelUnitsSameLevelDisjoint(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	tree.mu.Lock()
	c1 := tree.pickLocked()
	c2 := tree.pickLocked()
	tree.mu.Unlock()
	if c1 == nil || c2 == nil {
		t.Fatalf("expected two concurrent units, got %v / %v", c1, c2)
	}
	if c1.level != 1 || c2.level != 1 {
		t.Fatalf("both units should source level 1, got %d and %d", c1.level, c2.level)
	}

	seen := map[base.FileNum]bool{}
	for _, c := range []*compaction{c1, c2} {
		for _, s := range c.sources {
			for _, f := range s.files {
				if seen[f.FileNum] {
					t.Fatalf("file %d claimed by both units", f.FileNum)
				}
				seen[f.FileNum] = true
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("the two units should cover all 4 files, got %d", len(seen))
	}

	tree.mu.Lock()
	if got := tree.metrics.PeakLevelUnits[1]; got != 2 {
		t.Errorf("PeakLevelUnits[1] = %d, want 2", got)
	}
	if got := tree.metrics.PeakUnitsInflight; got != 2 {
		t.Errorf("PeakUnitsInflight = %d, want 2", got)
	}
	// Both units write into level 2 and must share one output partition.
	if got := tree.inflight.writers[2]; got != 2 {
		t.Errorf("writers[2] = %d, want 2", got)
	}
	if &c1.sources[0].partition != &c2.sources[0].partition &&
		len(c1.sources[0].partition) != len(c2.sources[0].partition) {
		t.Errorf("concurrent units into one level must share the partition set")
	}

	tree.releaseLocked(c1)
	tree.releaseLocked(c2)
	if tree.inflight.units != 0 {
		t.Errorf("units = %d after release, want 0", tree.inflight.units)
	}
	if len(tree.inflight.srcGuards[1]) != 0 {
		t.Errorf("srcGuards[1] not empty after release: %v", tree.inflight.srcGuards[1])
	}
	if tree.inflight.writers[2] != 0 || tree.inflight.partition[2] != nil {
		t.Errorf("level-2 writer state not released")
	}
	tree.mu.Unlock()
}

// TestL0UnitIsExclusive: only one unit may own L0, and while it runs the
// level-1 groups stay independently claimable.
func TestL0UnitIsExclusive(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	edit := &manifest.VersionEdit{}
	for i := 0; i < tree.cfg.L0CompactionTrigger; i++ {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{
			Level: 0, Meta: fabMeta(base.FileNum(200+i), 8<<10, "a0", "d9"),
		})
	}
	if _, err := tree.logAndInstall(edit); err != nil {
		t.Fatal(err)
	}

	tree.mu.Lock()
	defer tree.mu.Unlock()
	c1 := tree.pickLocked()
	if c1 == nil || c1.level != 0 {
		t.Fatalf("first pick should be the L0 unit, got %+v", c1)
	}
	c2 := tree.pickLocked()
	if c2 == nil {
		t.Fatal("level-1 work should remain claimable during the L0 unit")
	}
	if c2.level == 0 {
		t.Fatal("second pick must not claim L0 again")
	}
	tree.releaseLocked(c1)
	tree.releaseLocked(c2)
}

// TestNeedsCompactionNoAllocs pins the scheduling predicate's
// allocation-free property: it runs on every commit group and worker
// wakeup, so it must not build candidate slices.
func TestNeedsCompactionNoAllocs(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	if !tree.NeedsCompaction() {
		t.Fatal("fabricated level 1 should need compaction")
	}
	if avg := testing.AllocsPerRun(200, func() {
		tree.NeedsCompaction()
	}); avg != 0 {
		t.Errorf("NeedsCompaction allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tree.ClaimableUnits()
	}); avg != 0 {
		t.Errorf("ClaimableUnits allocates %.1f per call, want 0", avg)
	}
}

// TestClaimStallAccounting: with every unit claimed, CompactOnce must
// report no work while counting the conflict.
func TestClaimStallAccounting(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	tree.mu.Lock()
	var held []*compaction
	for {
		c := tree.pickLocked()
		if c == nil {
			break
		}
		held = append(held, c)
	}
	tree.mu.Unlock()
	if len(held) == 0 {
		t.Fatal("expected claimable units")
	}

	did, err := tree.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("CompactOnce should find nothing claimable")
	}
	tree.mu.Lock()
	conflicts := tree.metrics.ClaimConflicts
	for _, c := range held {
		tree.releaseLocked(c)
	}
	tree.mu.Unlock()
	if conflicts == 0 {
		t.Error("ClaimConflicts should count the blocked probe")
	}
}
