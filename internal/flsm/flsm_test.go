package flsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/treebase"
	"pebblesdb/internal/vfs"
)

// fakeHost satisfies treebase.Host for white-box tree tests.
type fakeHost struct {
	smallest base.SeqNum
	obsolete []base.FileNum
}

func (h *fakeHost) SmallestSnapshot() base.SeqNum { return h.smallest }
func (h *fakeHost) NoteObsoleteTables(fns []base.FileNum) {
	h.obsolete = append(h.obsolete, fns...)
}

func testConfig() *base.Config {
	cfg := &base.Config{
		MemtableSize:        32 << 10,
		LevelBaseBytes:      64 << 10,
		TargetFileSize:      16 << 10,
		TopLevelBits:        8,
		BitDecrement:        1,
		MaxSSTablesPerGuard: 3,
		NumLevels:           5,
	}
	cfg.EnsureDefaults()
	return cfg
}

func openTestTree(t *testing.T) (*Tree, *fakeHost) {
	t.Helper()
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(testConfig(), vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	return tree, host
}

// flushBatch writes keys (with sequence numbers starting at seq) through a
// memtable into L0.
func flushBatch(t *testing.T, tree *Tree, kvs map[string]string, seq *base.SeqNum) {
	t.Helper()
	mem := memtable.New()
	for k, v := range kvs {
		*seq++
		mem.Set([]byte(k), *seq, base.KindSet, []byte(v))
		tree.Ingest([]byte(k))
	}
	if err := tree.Flush(mem.NewIter(), nil, tree.NewFileNum(), *seq); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants verifies the FLSM structural invariants on the current
// version: guards sorted and unique per level, every file within its guard
// interval, sentinel files below the first guard.
func checkInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	tree.mu.Lock()
	v := tree.cur
	tree.mu.Unlock()
	for l := 1; l < tree.cfg.NumLevels; l++ {
		gl := &v.levels[l]
		for i := 1; i < len(gl.guards); i++ {
			if bytes.Compare(gl.guards[i-1].Key, gl.guards[i].Key) >= 0 {
				t.Fatalf("level %d: guards out of order", l)
			}
		}
		if len(gl.guards) > 0 {
			first := gl.guards[0].Key
			for _, f := range gl.sentinel {
				if bytes.Compare(f.LargestUserKey(), first) >= 0 {
					t.Fatalf("level %d: sentinel file %s reaches past first guard %q", l, f, first)
				}
			}
		}
		for i := range gl.guards {
			lo := gl.guards[i].Key
			var hi []byte
			if i+1 < len(gl.guards) {
				hi = gl.guards[i+1].Key
			}
			for _, f := range gl.guards[i].Files {
				if bytes.Compare(f.SmallestUserKey(), lo) < 0 {
					t.Fatalf("level %d guard %q: file %s starts before guard", l, lo, f)
				}
				if hi != nil && bytes.Compare(f.LargestUserKey(), hi) >= 0 {
					t.Fatalf("level %d guard %q: file %s crosses next guard %q", l, lo, f, hi)
				}
			}
		}
	}
}

func TestFlushAndGet(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	flushBatch(t, tree, map[string]string{"a": "1", "b": "2", "c": "3"}, &seq)

	v, found, err := tree.Get([]byte("b"), base.MaxSeqNum, nil, nil)
	if err != nil || !found || string(v) != "2" {
		t.Fatalf("get b: %q %v %v", v, found, err)
	}
	if _, found, _ := tree.Get([]byte("x"), base.MaxSeqNum, nil, nil); found {
		t.Fatal("absent key found")
	}
	if tree.L0Count() != 1 {
		t.Fatalf("L0 count %d", tree.L0Count())
	}
}

func TestCompactionPartitionsByGuards(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(11))
	seq := base.SeqNum(0)
	expect := map[string]string{}
	for b := 0; b < 20; b++ {
		kvs := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key%07d", rng.Intn(100000))
			v := fmt.Sprintf("val%d-%d", b, i)
			kvs[k] = v
			expect[k] = v
		}
		flushBatch(t, tree, kvs, &seq)
	}
	if err := tree.CompactAll(); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tree)

	// Data must have left L0 and guards must exist somewhere.
	m := tree.Metrics()
	if m.LevelFiles[0] >= tree.cfg.L0CompactionTrigger {
		t.Fatalf("L0 still has %d files after CompactAll", m.LevelFiles[0])
	}
	totalGuards := 0
	for _, g := range m.GuardsPerLevel {
		totalGuards += g
	}
	if totalGuards == 0 {
		t.Fatal("no guards were committed")
	}

	// Everything still readable.
	for k, v := range expect {
		got, found, err := tree.Get([]byte(k), base.MaxSeqNum, nil, nil)
		if err != nil || !found || string(got) != v {
			t.Fatalf("get %q: %q found=%v err=%v (want %q)", k, got, found, err, v)
		}
	}
}

func TestIteratorSeesAllKeysInOrder(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(12))
	seq := base.SeqNum(0)
	keys := map[string]bool{}
	for b := 0; b < 10; b++ {
		kvs := map[string]string{}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key%06d", rng.Intn(50000))
			kvs[k] = "v"
			keys[k] = true
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()

	iters, _, err := tree.NewIters(treebase.IterRequest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := iterator.NewMerging(base.InternalCompare, iters...)
	defer m.Close()
	var prev []byte
	distinct := map[string]bool{}
	for m.First(); m.Valid(); m.Next() {
		if prev != nil && base.InternalCompare(prev, m.Key()) > 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], m.Key()...)
		distinct[string(base.UserKey(m.Key()))] = true
	}
	if len(distinct) != len(keys) {
		t.Fatalf("iterator saw %d distinct keys, want %d", len(distinct), len(keys))
	}
}

func TestUncommittedGuardsCommitOnCompaction(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)

	// Find a key that the picker selects as a guard for level 1.
	var guardKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key%07d", i)
		if lvl, ok := tree.picker.GuardLevel([]byte(k)); ok && lvl == 1 {
			guardKey = k
			break
		}
	}
	kvs := map[string]string{guardKey: "gv"}
	for i := 0; i < 50; i++ {
		kvs[fmt.Sprintf("key%07d", i)] = "v"
	}
	flushBatch(t, tree, kvs, &seq)

	tree.mu.Lock()
	uncommitted := len(tree.uncommitted[1])
	tree.mu.Unlock()
	if uncommitted == 0 {
		t.Fatal("expected uncommitted guards after ingest")
	}

	// Force compaction of L0 into L1: trigger by flushing enough batches.
	for b := 0; b < tree.cfg.L0CompactionTrigger; b++ {
		flushBatch(t, tree, map[string]string{fmt.Sprintf("filler%d", b): "x"}, &seq)
	}
	if err := tree.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if !tree.cur.levels[1].hasGuard([]byte(guardKey)) {
		// The guard may have been committed and the data pushed deeper;
		// check all levels.
		found := false
		for l := 1; l < tree.cfg.NumLevels; l++ {
			if tree.cur.levels[l].hasGuard([]byte(guardKey)) {
				found = true
			}
		}
		if !found {
			t.Fatal("guard key never committed")
		}
	}
	checkInvariants(t, tree)
}

func TestDeletesAreHonoredAcrossCompaction(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	flushBatch(t, tree, map[string]string{"k1": "v1", "k2": "v2"}, &seq)

	// Delete k1 via a tombstone in a later flush.
	mem := memtable.New()
	seq++
	mem.Set([]byte("k1"), seq, base.KindDelete, nil)
	if err := tree.Flush(mem.NewIter(), nil, tree.NewFileNum(), seq); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tree.Get([]byte("k1"), base.MaxSeqNum, nil, nil); found {
		t.Fatal("deleted key visible before compaction")
	}
	tree.CompactAll()
	if _, found, _ := tree.Get([]byte("k1"), base.MaxSeqNum, nil, nil); found {
		t.Fatal("deleted key visible after compaction")
	}
	if v, found, _ := tree.Get([]byte("k2"), base.MaxSeqNum, nil, nil); !found || string(v) != "v2" {
		t.Fatal("surviving key lost")
	}
}

func TestSnapshotVisibleThroughCompaction(t *testing.T) {
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(testConfig(), vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	seq := base.SeqNum(0)
	flushBatch(t, tree, map[string]string{"k": "old"}, &seq)
	snapSeq := seq
	host.smallest = snapSeq // a snapshot exists at this sequence

	flushBatch(t, tree, map[string]string{"k": "new"}, &seq)
	tree.CompactAll()

	if v, found, _ := tree.Get([]byte("k"), snapSeq, nil, nil); !found || string(v) != "old" {
		t.Fatalf("snapshot read after compaction: %q found=%v", v, found)
	}
	if v, found, _ := tree.Get([]byte("k"), base.MaxSeqNum, nil, nil); !found || string(v) != "new" {
		t.Fatalf("latest read: %q", v)
	}
}

func TestGuardLevelIterSeek(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(13))
	seq := base.SeqNum(0)
	var all []string
	seen := map[string]bool{}
	for b := 0; b < 12; b++ {
		kvs := map[string]string{}
		for i := 0; i < 250; i++ {
			k := fmt.Sprintf("key%06d", rng.Intn(30000))
			kvs[k] = "v"
			if !seen[k] {
				seen[k] = true
				all = append(all, k)
			}
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()

	iters, _, err := tree.NewIters(treebase.IterRequest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := iterator.NewMerging(base.InternalCompare, iters...)
	defer m.Close()
	for trial := 0; trial < 100; trial++ {
		probe := fmt.Sprintf("key%06d", rng.Intn(30000))
		search := base.MakeSearchKey(nil, []byte(probe), base.MaxSeqNum)
		m.SeekGE(search)
		if m.Valid() {
			got := base.UserKey(m.Key())
			if bytes.Compare(got, []byte(probe)) < 0 {
				t.Fatalf("seek %q landed before target at %q", probe, got)
			}
		}
	}
}

func TestEmptyGuardsAreHarmless(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	// Insert keys, delete all, compact: guards persist but become empty.
	kvs := map[string]string{}
	for i := 0; i < 2000; i++ {
		kvs[fmt.Sprintf("key%06d", i)] = "v"
	}
	flushBatch(t, tree, kvs, &seq)
	for b := 0; b < 6; b++ {
		flushBatch(t, tree, map[string]string{fmt.Sprintf("f%d", b): "x"}, &seq)
	}
	tree.CompactAll()

	mem := memtable.New()
	for i := 0; i < 2000; i++ {
		seq++
		mem.Set([]byte(fmt.Sprintf("key%06d", i)), seq, base.KindDelete, nil)
	}
	if err := tree.Flush(mem.NewIter(), nil, tree.NewFileNum(), seq); err != nil {
		t.Fatal(err)
	}
	tree.CompactAll()
	checkInvariants(t, tree)

	// Reads and iteration still work with (possibly) empty guards.
	if _, found, _ := tree.Get([]byte("key000100"), base.MaxSeqNum, nil, nil); found {
		t.Fatal("deleted key visible")
	}
}

func TestDumpMentionsGuards(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	rng := rand.New(rand.NewSource(14))
	for b := 0; b < 10; b++ {
		kvs := map[string]string{}
		for i := 0; i < 300; i++ {
			kvs[fmt.Sprintf("key%06d", rng.Intn(50000))] = "v"
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()
	var buf bytes.Buffer
	tree.Dump(&buf)
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("guard")) {
		t.Fatalf("dump lacks guard info:\n%s", out)
	}
}

func TestPebbles1ModeTerminates(t *testing.T) {
	// max_sstables_per_guard=1 (PebblesDB-1, §3.5) must not churn forever.
	cfg := testConfig()
	cfg.MaxSSTablesPerGuard = 1
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(cfg, vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	seq := base.SeqNum(0)
	rng := rand.New(rand.NewSource(15))
	for b := 0; b < 8; b++ {
		kvs := map[string]string{}
		for i := 0; i < 200; i++ {
			kvs[fmt.Sprintf("key%06d", rng.Intn(20000))] = "v"
		}
		flushBatch(t, tree, kvs, &seq)
	}
	if err := tree.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if tree.NeedsCompaction() {
		t.Fatal("tree should be quiescent after CompactAll")
	}
	checkInvariants(t, tree)
}

func TestGuardKeysAccessor(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	if tree.GuardKeys(0) != nil || tree.GuardKeys(99) != nil {
		t.Fatal("out-of-range levels should return nil")
	}
	_ = guard.Picker{}
}

func TestGuardDeletionEdit(t *testing.T) {
	// Guard deletion is supported at the metadata layer (§3.3): deleting a
	// guard folds its files into the preceding interval. The store never
	// schedules it (matching the paper's artifact), but recovery must
	// honor edits that contain deletions.
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	rng := rand.New(rand.NewSource(77))
	for b := 0; b < 12; b++ {
		kvs := map[string]string{}
		for i := 0; i < 250; i++ {
			kvs[fmt.Sprintf("key%06d", rng.Intn(30000))] = "v"
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()

	// Find a level with at least one guard and delete its first guard.
	var level int
	var key []byte
	for l := 1; l < tree.cfg.NumLevels; l++ {
		if ks := tree.GuardKeys(l); len(ks) > 0 {
			level, key = l, ks[0]
			break
		}
	}
	if key == nil {
		t.Skip("no guards materialized")
	}
	edit := &manifest.VersionEdit{
		DeletedGuards: []manifest.GuardEntry{{Level: level, Key: key}},
	}
	if _, err := tree.logAndInstall(edit); err != nil {
		t.Fatal(err)
	}
	for _, k := range tree.GuardKeys(level) {
		if string(k) == string(key) {
			t.Fatal("guard still present after deletion")
		}
	}
	checkInvariants(t, tree)
	// All data still readable.
	if _, _, err := tree.Get([]byte("key000001"), base.MaxSeqNum, nil, nil); err != nil {
		t.Fatal(err)
	}
}
