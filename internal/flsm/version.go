// Package flsm implements the Fragmented Log-Structured Merge tree and the
// PebblesDB compaction, read, and seek optimizations built over it
// (chapters 3 and 4 of the paper). Levels above L0 are partitioned by
// guards; sstables within a guard may overlap; compaction partitions merged
// guard contents by the next level's guards and appends, avoiding rewrites
// except in the last levels.
package flsm

import (
	"bytes"
	"fmt"
	"sort"

	"pebblesdb/internal/base"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/manifest"
)

// guardedLevel is one level's layout: a sentinel holding files below the
// first guard key, and the sorted guard list (possibly with empty guards —
// the paper keeps them, §3.3).
type guardedLevel struct {
	sentinel []*base.FileMetadata
	guards   []guard.Guard
}

func (gl *guardedLevel) totalBytes() int64 {
	var t int64
	for _, f := range gl.sentinel {
		t += int64(f.Size)
	}
	for i := range gl.guards {
		t += int64(gl.guards[i].TotalBytes())
	}
	return t
}

func (gl *guardedLevel) fileCount() int {
	n := len(gl.sentinel)
	for i := range gl.guards {
		n += len(gl.guards[i].Files)
	}
	return n
}

// guardKeys returns the level's committed guard keys.
func (gl *guardedLevel) guardKeys() [][]byte {
	keys := make([][]byte, len(gl.guards))
	for i := range gl.guards {
		keys[i] = gl.guards[i].Key
	}
	return keys
}

// hasGuard reports whether key is a committed guard of this level.
func (gl *guardedLevel) hasGuard(key []byte) bool {
	i := sort.Search(len(gl.guards), func(i int) bool {
		return bytes.Compare(gl.guards[i].Key, key) >= 0
	})
	return i < len(gl.guards) && bytes.Equal(gl.guards[i].Key, key)
}

// version is an immutable snapshot of the FLSM layout.
type version struct {
	l0     []*base.FileMetadata // newest first
	levels []guardedLevel       // index 0 unused
}

func newVersion(numLevels int) *version {
	return &version{levels: make([]guardedLevel, numLevels)}
}

// clone deep-copies the structure (file metadata pointers are shared).
func (v *version) clone() *version {
	nv := &version{
		l0:     append([]*base.FileMetadata(nil), v.l0...),
		levels: make([]guardedLevel, len(v.levels)),
	}
	for l := range v.levels {
		src := &v.levels[l]
		dst := &nv.levels[l]
		dst.sentinel = append([]*base.FileMetadata(nil), src.sentinel...)
		dst.guards = make([]guard.Guard, len(src.guards))
		for i := range src.guards {
			dst.guards[i] = guard.Guard{
				Key:   src.guards[i].Key,
				Files: append([]*base.FileMetadata(nil), src.guards[i].Files...),
			}
		}
	}
	return nv
}

// apply builds a new version with edit applied. Guards are inserted before
// files so that files added in the same edit attach to the new guards.
func (v *version) apply(edit *manifest.VersionEdit, numLevels int) (*version, error) {
	nv := v.clone()

	if len(edit.NewGuards) > 0 {
		byLevel := map[int][][]byte{}
		for _, g := range edit.NewGuards {
			if g.Level < 1 || g.Level >= numLevels {
				return nil, fmt.Errorf("flsm: guard at invalid level %d", g.Level)
			}
			byLevel[g.Level] = append(byLevel[g.Level], g.Key)
		}
		for level, keys := range byLevel {
			nv.insertGuards(level, keys)
		}
	}
	for _, g := range edit.DeletedGuards {
		if g.Level < 1 || g.Level >= numLevels {
			return nil, fmt.Errorf("flsm: guard deletion at invalid level %d", g.Level)
		}
		nv.deleteGuard(g.Level, g.Key)
	}
	for _, d := range edit.DeletedFiles {
		if !nv.removeFile(d.Level, d.FileNum) {
			return nil, fmt.Errorf("flsm: deleted file %d not found at level %d", d.FileNum, d.Level)
		}
	}
	for i := range edit.NewFiles {
		nf := &edit.NewFiles[i]
		if nf.Level < 0 || nf.Level >= numLevels {
			return nil, fmt.Errorf("flsm: new file at invalid level %d", nf.Level)
		}
		meta := nf.Meta
		nv.addFile(nf.Level, &meta)
	}
	sort.Slice(nv.l0, func(i, j int) bool { return nv.l0[i].FileNum > nv.l0[j].FileNum })
	return nv, nil
}

// insertGuards adds a batch of guard keys to a level in one merge pass,
// then redistributes files into the refined intervals. Callers guarantee
// (via the straddle check at commit time) that no existing file spans a
// new boundary. A single merge keeps recovery-snapshot application linear
// in the number of guards rather than quadratic.
func (v *version) insertGuards(level int, keys [][]byte) {
	gl := &v.levels[level]
	fresh := keys[:0:0]
	for _, k := range keys {
		if !gl.hasGuard(k) {
			fresh = append(fresh, append([]byte(nil), k...))
		}
	}
	if len(fresh) == 0 {
		return
	}
	sort.Slice(fresh, func(i, j int) bool { return bytes.Compare(fresh[i], fresh[j]) < 0 })

	// Merge existing guards and fresh keys into the refined guard list.
	merged := make([]guard.Guard, 0, len(gl.guards)+len(fresh))
	gi, fi := 0, 0
	for gi < len(gl.guards) || fi < len(fresh) {
		switch {
		case gi == len(gl.guards):
			merged = append(merged, guard.Guard{Key: fresh[fi]})
			fi++
		case fi == len(fresh):
			merged = append(merged, gl.guards[gi])
			gi++
		default:
			switch bytes.Compare(gl.guards[gi].Key, fresh[fi]) {
			case -1:
				merged = append(merged, gl.guards[gi])
				gi++
			case 1:
				merged = append(merged, guard.Guard{Key: fresh[fi]})
				fi++
			default: // duplicate within the batch
				fi++
			}
		}
	}

	// Redistribute: every file re-attaches by its smallest user key.
	oldSentinel := gl.sentinel
	oldGuards := merged // reuse: collect files first, then clear
	var files []*base.FileMetadata
	files = append(files, oldSentinel...)
	for i := range oldGuards {
		files = append(files, oldGuards[i].Files...)
		oldGuards[i].Files = nil
	}
	gl.sentinel = nil
	gl.guards = merged
	for _, f := range files {
		idx := guard.FindGuard(gl.guards, f.SmallestUserKey())
		if idx < 0 {
			gl.sentinel = append(gl.sentinel, f)
		} else {
			gl.guards[idx].Files = append(gl.guards[idx].Files, f)
		}
	}
}

// deleteGuard removes a guard, folding its files into the preceding
// interval (§3.3: sstables of a deleted guard are re-attached to
// neighbours; compaction-generated edits only delete empty guards).
func (v *version) deleteGuard(level int, key []byte) {
	gl := &v.levels[level]
	i := sort.Search(len(gl.guards), func(i int) bool {
		return bytes.Compare(gl.guards[i].Key, key) >= 0
	})
	if i >= len(gl.guards) || !bytes.Equal(gl.guards[i].Key, key) {
		return
	}
	files := gl.guards[i].Files
	if i == 0 {
		gl.sentinel = append(gl.sentinel, files...)
	} else {
		gl.guards[i-1].Files = append(gl.guards[i-1].Files, files...)
	}
	gl.guards = append(gl.guards[:i], gl.guards[i+1:]...)
}

// removeFile deletes a file from a level, wherever it is attached.
func (v *version) removeFile(level int, fn base.FileNum) bool {
	if level == 0 {
		for i, f := range v.l0 {
			if f.FileNum == fn {
				v.l0 = append(v.l0[:i], v.l0[i+1:]...)
				return true
			}
		}
		return false
	}
	gl := &v.levels[level]
	if removeFromSlice(&gl.sentinel, fn) {
		return true
	}
	for i := range gl.guards {
		if removeFromSlice(&gl.guards[i].Files, fn) {
			return true
		}
	}
	return false
}

func removeFromSlice(files *[]*base.FileMetadata, fn base.FileNum) bool {
	for i, f := range *files {
		if f.FileNum == fn {
			*files = append((*files)[:i], (*files)[i+1:]...)
			return true
		}
	}
	return false
}

// addFile attaches a file to its guard at a level (or to L0).
func (v *version) addFile(level int, f *base.FileMetadata) {
	f.AllowedSeeks = allowedSeeks(f.Size)
	if level == 0 {
		v.l0 = append(v.l0, f)
		return
	}
	gl := &v.levels[level]
	idx := guard.FindGuard(gl.guards, f.SmallestUserKey())
	if idx < 0 {
		gl.sentinel = append(gl.sentinel, f)
		return
	}
	gl.guards[idx].Files = append(gl.guards[idx].Files, f)
}

func allowedSeeks(size uint64) int {
	n := int(size / (16 << 10))
	if n < 100 {
		n = 100
	}
	return n
}

// straddles reports whether any file at the level spans key (file.smallest
// < key <= file.largest): such a file blocks committing key as a guard.
func (gl *guardedLevel) straddles(key []byte) bool {
	check := func(files []*base.FileMetadata) bool {
		for _, f := range files {
			if bytes.Compare(f.SmallestUserKey(), key) < 0 &&
				bytes.Compare(f.LargestUserKey(), key) >= 0 {
				return true
			}
		}
		return false
	}
	if check(gl.sentinel) {
		return true
	}
	for i := range gl.guards {
		if check(gl.guards[i].Files) {
			return true
		}
	}
	return false
}
