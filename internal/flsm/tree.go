package flsm

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/guard"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
	"pebblesdb/internal/vfs"
)

// Tree is the FLSM store structure: the paper's primary contribution.
// All methods are safe for concurrent use.
type Tree struct {
	cfg    *base.Config
	fs     vfs.FS
	dir    string
	vs     *manifest.VersionSet
	tc     *tablecache.TableCache
	snap   treebase.Host
	picker guard.Picker

	mu sync.Mutex
	// cur is the current immutable version.
	cur *version
	// uncommitted holds guard keys selected from inserted keys but not yet
	// partitioned on storage (§3.3). uncommitted[l] is sorted.
	uncommitted [][][]byte
	// inflight is the unit-granularity claim state of the parallel
	// compaction scheduler (see compaction.go): which guard groups are
	// owned as inputs, which levels are being written into and at what
	// shared partition, and how many units are running.
	inflight inflight
	// unitID numbers compaction units for the event stream, so concurrent
	// begin/end pairs can be correlated.
	unitID atomic.Uint64
	// claimStallStart, when non-zero, marks the moment a worker first
	// found pending-but-unclaimable work; the next successful claim folds
	// the elapsed time into metrics.ClaimStallNanos.
	claimStallStart time.Time
	// seekCounts tracks consecutive seeks per guard; seekPending holds
	// guards whose budget is exhausted (§4.2 seek-based compaction).
	seekCounts  map[guardID]int
	seekPending map[guardID]bool

	// logMu/logCond order manifest appends by install ticket: with
	// concurrent compaction units, the edit that deletes a file must reach
	// the manifest after the edit that added it, or recovery replay fails.
	// installTicket (under mu) is the next ticket handed out at install;
	// installTurn (under logMu) is the next ticket allowed to append.
	logMu         sync.Mutex
	logCond       *sync.Cond
	installTicket uint64
	installTurn   uint64

	pendingMu sync.Mutex
	pending   map[base.FileNum]bool

	metrics treebase.Metrics
}

// guardID identifies a guard for seek accounting; Key=="" is the sentinel.
type guardID struct {
	Level int
	Key   string
}

// Open creates or recovers an FLSM tree in dir.
func Open(cfg *base.Config, fs vfs.FS, dir string, snap treebase.Host) (*Tree, error) {
	t := &Tree{
		cfg:  cfg,
		fs:   fs,
		dir:  dir,
		snap: snap,
		picker: guard.Picker{
			TopLevelBits: cfg.TopLevelBits,
			BitDecrement: cfg.BitDecrement,
			NumLevels:    cfg.NumLevels,
			Seed:         cfg.GuardHashSeed,
		},
		cur:         newVersion(cfg.NumLevels),
		uncommitted: make([][][]byte, cfg.NumLevels),
		seekCounts:  make(map[guardID]int),
		seekPending: make(map[guardID]bool),
		pending:     make(map[base.FileNum]bool),
	}
	t.inflight.init(cfg.NumLevels)
	t.metrics.PeakLevelUnits = make([]int, cfg.NumLevels)
	t.logCond = sync.NewCond(&t.logMu)
	blockCache := cache.New(cfg.BlockCacheSize, nil)
	t.tc = tablecache.New(fs, dir, cfg.TableCacheSize, blockCache)

	if manifest.Exists(fs, dir) {
		vs, err := manifest.Load(fs, dir, func(e *manifest.VersionEdit) error {
			nv, err := t.cur.apply(e, cfg.NumLevels)
			if err != nil {
				return err
			}
			t.cur = nv
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.vs = vs
		if err := vs.StartAppending(t.snapshotEditLocked()); err != nil {
			return nil, err
		}
	} else {
		vs, err := manifest.Create(fs, dir)
		if err != nil {
			return nil, err
		}
		t.vs = vs
	}
	t.vs.Listener = cfg.EventListener
	return t, nil
}

func (t *Tree) snapshotEditLocked() *manifest.VersionEdit {
	e := &manifest.VersionEdit{}
	for _, f := range t.cur.l0 {
		e.NewFiles = append(e.NewFiles, manifest.NewFileEntry{Level: 0, Meta: *f})
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &t.cur.levels[l]
		for i := range gl.guards {
			e.NewGuards = append(e.NewGuards, manifest.GuardEntry{Level: l, Key: gl.guards[i].Key})
		}
		for _, f := range gl.sentinel {
			e.NewFiles = append(e.NewFiles, manifest.NewFileEntry{Level: l, Meta: *f})
		}
		for i := range gl.guards {
			for _, f := range gl.guards[i].Files {
				e.NewFiles = append(e.NewFiles, manifest.NewFileEntry{Level: l, Meta: *f})
			}
		}
	}
	return e
}

// NewFileNum allocates a file number (also used by the engine for WALs).
func (t *Tree) NewFileNum() base.FileNum { return t.vs.NewFileNum() }

// RecoveryLogNum returns the WAL number recovery must replay from.
func (t *Tree) RecoveryLogNum() base.FileNum { return t.vs.LogNum() }

// PersistedLastSeq returns the sequence watermark from the manifest.
func (t *Tree) PersistedLastSeq() base.SeqNum { return t.vs.LastSeq() }

// WantGuard reports whether ukey would be selected as a guard at any
// level. It is a pure hash check — no locks — so the engine's commit
// pipeline can filter keys before paying Ingest's copy and mutex costs.
func (t *Tree) WantGuard(ukey []byte) bool {
	_, ok := t.picker.GuardLevel(ukey)
	return ok
}

// Ingest hashes every inserted key and records new uncommitted guards
// (§3.2: guards are selected probabilistically from inserted keys; §4.4:
// via the key's hash). A key selected at level l is an uncommitted guard
// for l and every deeper level.
func (t *Tree) Ingest(ukey []byte) {
	level, ok := t.picker.GuardLevel(ukey)
	if !ok {
		return
	}
	t.mu.Lock()
	for l := level; l < t.cfg.NumLevels; l++ {
		if t.cur.levels[l].hasGuard(ukey) {
			continue
		}
		t.uncommitted[l] = guard.InsertKey(t.uncommitted[l], ukey)
	}
	t.mu.Unlock()
}

// AddPending registers an in-flight output file.
func (t *Tree) AddPending(fn base.FileNum) {
	t.pendingMu.Lock()
	t.pending[fn] = true
	t.pendingMu.Unlock()
}

// RemovePending unregisters an in-flight output file.
func (t *Tree) RemovePending(fn base.FileNum) {
	t.pendingMu.Lock()
	delete(t.pending, fn)
	t.pendingMu.Unlock()
}

func (t *Tree) currentVersion() *version {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

func (t *Tree) writerOptions() sstable.WriterOptions {
	return sstable.WriterOptions{
		BlockSize:            t.cfg.BlockSize,
		BlockRestartInterval: t.cfg.BlockRestartInterval,
		BloomBitsPerKey:      t.cfg.BloomBitsPerKey,
		PrefixBloomLength:    t.cfg.PrefixBloomLength,
		Compression:          t.cfg.Compression,
	}
}

// Flush writes memtable contents — point entries plus range tombstones —
// as a level-0 sstable. L0 has no guards (§3.1: "Level 0 does not have
// guards, and collects together recently written sstables").
func (t *Tree) Flush(it iterator.Iterator, rangeDels []rangedel.Tombstone, logNum base.FileNum, lastSeq base.SeqNum) error {
	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	for it.First(); it.Valid(); it.Next() {
		if err := ob.Add(it.Key(), it.Value()); err != nil {
			ob.Abandon()
			return err
		}
	}
	if err := it.Error(); err != nil {
		ob.Abandon()
		return err
	}
	if err := ob.AddRangeDels(rangeDels); err != nil {
		ob.Abandon()
		return err
	}
	metas, err := ob.Finish()
	if err != nil {
		ob.Abandon()
		return err
	}
	edit := &manifest.VersionEdit{}
	edit.SetLogNum(logNum)
	edit.SetLastSeq(lastSeq)
	var flushed int64
	for _, m := range metas {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: 0, Meta: *m})
		flushed += int64(m.Size)
	}
	installed, err := t.logAndInstall(edit)
	if err != nil {
		if installed {
			// The tables are already referenced by the live in-memory
			// version, so deleting them would break reads. Keep them: a
			// later successful manifest rotation snapshots the full state,
			// making them durable, and a retried flush merely re-adds the
			// same keys at the same sequence numbers.
			ob.ReleasePending()
		} else {
			ob.Abandon()
		}
		return err
	}
	ob.ReleasePending()
	t.mu.Lock()
	t.metrics.BytesFlushed += flushed
	t.metrics.Compression.Merge(ob.CompressionStats())
	t.mu.Unlock()
	return nil
}

// logAndInstall installs the version resulting from edit, prunes committed
// guards from the uncommitted sets, and persists the edit. installed
// reports whether the in-memory version switch happened: when true the
// edit's new files are referenced by live reads even if persistence failed,
// so the caller must NOT delete them (a later successful manifest rotation
// snapshots the installed state and makes them durable).
//
// Concurrent compaction units install concurrently, so the manifest append
// must happen in install order — an edit deleting file f has to land after
// the edit that added f, or recovery replay rejects it. Each install takes
// a ticket under t.mu (the same critical section that switches t.cur) and
// waits its turn before appending; the turn advances even when the append
// fails, so one degraded unit cannot wedge its peers.
func (t *Tree) logAndInstall(edit *manifest.VersionEdit) (installed bool, err error) {
	t.mu.Lock()
	nv, err := t.cur.apply(edit, t.cfg.NumLevels)
	if err != nil {
		t.mu.Unlock()
		return false, err
	}
	t.cur = nv
	for _, g := range edit.NewGuards {
		t.uncommitted[g.Level] = removeKey(t.uncommitted[g.Level], g.Key)
	}
	ticket := t.installTicket
	t.installTicket++
	t.mu.Unlock()

	t.logMu.Lock()
	for t.installTurn != ticket {
		t.logCond.Wait()
	}
	t.logMu.Unlock()
	err = t.vs.LogAndApply(edit, func() *manifest.VersionEdit {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.snapshotEditLocked()
	})
	t.logMu.Lock()
	t.installTurn++
	t.logCond.Broadcast()
	t.logMu.Unlock()
	return true, err
}

func removeKey(keys [][]byte, key []byte) [][]byte {
	for i, k := range keys {
		if string(k) == string(key) {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

// Get implements the FLSM read path (§3.4): per level, binary-search the
// single guard that can hold the key, then examine every sstable in that
// guard that passes the bloom filter, returning the match with the highest
// sequence number at or below the read snapshot. Range tombstones are
// folded in as the search descends: every probed source also reports the
// newest visible tombstone covering the key, and because data only moves
// down the tree, once any visible entry — point or covering tombstone — is
// found, everything deeper is older, so the comparison at that moment
// decides the read. A covered key therefore returns not-found without
// descending further and without allocating. latest, when non-nil,
// overrides seq with its value loaded *after* the version is pinned — the
// engine's collapse-safe ordering for latest-state reads (see
// engine.Tree.Get). s, when non-nil, supplies the reusable per-call working
// set (a steady-state Get allocates nothing in this layer); nil acquires
// one from the shared pool. The returned value aliases an immutable block
// payload or cache entry.
func (t *Tree) Get(ukey []byte, seq base.SeqNum, latest *atomic.Uint64, s *sstable.GetScratch) (value []byte, found bool, err error) {
	if s == nil {
		s = sstable.AcquireGetScratch()
		defer sstable.ReleaseGetScratch(s)
	}
	v := t.currentVersion()
	if latest != nil {
		seq = base.SeqNum(latest.Load())
	}
	s.SearchKey = base.MakeSearchKey(s.SearchKey[:0], ukey, seq)

	// Level 0: newest file first; flush order guarantees newer files hold
	// newer versions, so the first visible hit wins.
	var cov base.SeqNum
	for _, f := range v.l0 {
		val, fseq, kind, c, ok, gerr := t.probeFile(f, ukey, seq, s)
		if gerr != nil {
			return nil, false, gerr
		}
		if c > cov {
			cov = c
		}
		if ok {
			if cov > fseq {
				return nil, false, nil
			}
			return val, kind == base.KindSet, nil
		}
		if cov > 0 {
			// Older files and deeper levels hold only lower sequence
			// numbers: the tombstone wins over anything still unseen.
			return nil, false, nil
		}
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &v.levels[l]
		var files []*base.FileMetadata
		idx := guard.FindGuard(gl.guards, ukey)
		if idx < 0 {
			files = gl.sentinel
		} else {
			files = gl.guards[idx].Files
		}
		if len(files) == 0 {
			continue // empty guards are skipped (§3.3)
		}
		val, kind, bestSeq, gcov, ok, gerr := t.examineGuard(files, ukey, seq, s)
		if gerr != nil {
			return nil, false, gerr
		}
		if gcov > cov {
			cov = gcov
		}
		if ok {
			if cov > bestSeq {
				return nil, false, nil
			}
			return val, kind == base.KindSet, nil
		}
		if cov > 0 {
			return nil, false, nil
		}
	}
	return nil, false, nil
}

// examineGuard probes every candidate sstable within one guard and returns
// the newest visible point entry plus the newest visible covering range
// tombstone across the guard's files (files within a guard overlap in both
// keys and sequence ranges, so all must be consulted before deciding).
// Values returned by the probes alias immutable block payloads, so tracking
// the best candidate across files requires no copies — materialization is
// deferred until the winner is known.
func (t *Tree) examineGuard(files []*base.FileMetadata, ukey []byte, seq base.SeqNum, s *sstable.GetScratch) (val []byte, kind base.Kind, bestSeq, cov base.SeqNum, ok bool, err error) {
	for _, f := range files {
		v, fseq, k, c, hit, gerr := t.probeFile(f, ukey, seq, s)
		if gerr != nil {
			return nil, 0, 0, 0, false, gerr
		}
		if c > cov {
			cov = c
		}
		if !hit {
			continue
		}
		if !ok || fseq > bestSeq {
			val, kind, bestSeq, ok = v, k, fseq, true
		}
	}
	return val, kind, bestSeq, cov, ok, nil
}

// probeFile checks one sstable for the newest visible point entry of ukey
// and the newest visible range tombstone covering it, in a single table-
// cache round-trip. File bounds include tombstone spans, so the range
// check cannot reject a file whose tombstones cover ukey; the resident
// tombstone list answers with one binary search, no block IO.
func (t *Tree) probeFile(f *base.FileMetadata, ukey []byte, seq base.SeqNum, s *sstable.GetScratch) (val []byte, fseq base.SeqNum, kind base.Kind, cov base.SeqNum, ok bool, err error) {
	if !userKeyInRange(ukey, f) {
		return nil, 0, 0, 0, false, nil
	}
	r, ferr := t.tc.Find(f.FileNum, f.Size)
	if ferr != nil {
		return nil, 0, 0, 0, false, ferr
	}
	if f.RangeDelSpanContains(ukey) {
		cov = r.RangeDels().CoverSeq(ukey, seq)
	}
	if !r.MayContain(ukey) {
		s.Stats.BloomNegatives++
		r.Unref()
		return nil, 0, 0, cov, false, nil
	}
	v, fseq, k, hit, gerr := r.GetScratched(s.SearchKey, s)
	r.Unref()
	return v, fseq, k, cov, hit, gerr
}

// userKeyInRange sits on the Get hot path for every candidate file.
// bytes.Compare guarantees the range check stays allocation-free; the
// previous string-conversion comparison only avoided allocating because
// the compiler happens to optimize that pattern (BenchmarkTreeGet holds
// both at 10 allocs/op on go1.24, so this is belt-and-suspenders, not a
// measured win).
func userKeyInRange(ukey []byte, f *base.FileMetadata) bool {
	return bytes.Compare(ukey, f.SmallestUserKey()) >= 0 &&
		bytes.Compare(ukey, f.LargestUserKey()) <= 0
}

// NewIters returns one iterator per L0 table plus a guard-aware iterator
// per populated level, along with every range tombstone held by tables
// overlapping the bounds (file bounds include tombstone spans, so pruning
// cannot lose a tombstone that could mask an in-bounds key). The engine
// merges the tombstones with the memtables' into one visibility mask.
// Guards and tables whose key ranges fall outside bounds are pruned before
// any table is opened; when the request carries a prefix, L0 tables whose
// prefix bloom filter rules the prefix out are skipped too (tombstone
// collection is a separate pass, so a skipped table's range deletions are
// still honored). Iterators are appended to dst, which pooled callers
// recycle across NewIters calls.
func (t *Tree) NewIters(req treebase.IterRequest, dst []iterator.Iterator) ([]iterator.Iterator, []rangedel.Tombstone, error) {
	bounds := req.Bounds
	v := t.currentVersion()
	iters := dst
	for _, f := range v.l0 {
		if !bounds.Overlaps(f) {
			continue
		}
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			for _, it := range iters {
				it.Close()
			}
			return nil, nil, err
		}
		if req.Prefix != nil && !r.MayContainPrefix(req.Prefix) {
			r.Unref()
			req.CountPrefixSkip()
			continue
		}
		req.CountOpen()
		iters = append(iters, treebase.GetTableIter(r))
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &v.levels[l]
		if gl.fileCount() == 0 {
			continue
		}
		parallel := t.cfg.ParallelSeeks && l == t.cfg.NumLevels-1
		iters = append(iters, newGuardLevelIter(t, l, gl, parallel, req))
	}
	rds, err := t.collectRangeDels(v, bounds)
	if err != nil {
		for _, it := range iters {
			it.Close()
		}
		return nil, nil, err
	}
	return iters, rds, nil
}

// collectRangeDels gathers the tombstones of every table in v overlapping
// bounds. Tables flagged clean in their metadata — the overwhelming
// majority — are skipped without opening; flagged tables hand back their
// resident lists, so no block IO happens here either.
func (t *Tree) collectRangeDels(v *version, bounds base.Bounds) ([]rangedel.Tombstone, error) {
	var rds []rangedel.Tombstone
	add := func(f *base.FileMetadata) error {
		if f.NumRangeDels == 0 || !bounds.Overlaps(f) {
			return nil
		}
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			return err
		}
		rds = append(rds, r.RangeDels().Raw()...)
		r.Unref()
		return nil
	}
	for _, f := range v.l0 {
		if err := add(f); err != nil {
			return nil, err
		}
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &v.levels[l]
		for _, f := range gl.sentinel {
			if err := add(f); err != nil {
				return nil, err
			}
		}
		for i := range gl.guards {
			for _, f := range gl.guards[i].Files {
				if err := add(f); err != nil {
					return nil, err
				}
			}
		}
	}
	return rds, nil
}

// recordSeek charges a guard's seek budget; exhaustion schedules the guard
// for compaction (§4.2, default threshold 10 consecutive seeks).
func (t *Tree) recordSeek(level int, gkey []byte, numFiles int) {
	if t.cfg.SeekCompactionThreshold <= 0 || numFiles <= 1 || level >= t.cfg.NumLevels {
		return
	}
	id := guardID{Level: level, Key: string(gkey)}
	t.mu.Lock()
	n, ok := t.seekCounts[id]
	if !ok {
		n = t.cfg.SeekCompactionThreshold
	}
	n--
	if n <= 0 {
		t.seekPending[id] = true
		n = t.cfg.SeekCompactionThreshold
	}
	t.seekCounts[id] = n
	t.mu.Unlock()
}

// L0Count returns the number of level-0 files.
func (t *Tree) L0Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cur.l0)
}

// ProtectedFiles returns live plus in-flight table files. The pending set
// is read before the version: files move pending -> version, so this order
// guarantees a file cannot slip between the two snapshots and be swept
// while live.
func (t *Tree) ProtectedFiles() map[base.FileNum]bool {
	out := make(map[base.FileNum]bool)
	t.pendingMu.Lock()
	for fn := range t.pending {
		out[fn] = true
	}
	t.pendingMu.Unlock()
	t.mu.Lock()
	for _, f := range t.cur.l0 {
		out[f.FileNum] = true
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &t.cur.levels[l]
		for _, f := range gl.sentinel {
			out[f.FileNum] = true
		}
		for i := range gl.guards {
			for _, f := range gl.guards[i].Files {
				out[f.FileNum] = true
			}
		}
	}
	t.mu.Unlock()
	return out
}

// EvictTable drops a deleted table from the caches.
func (t *Tree) EvictTable(fn base.FileNum) { t.tc.Evict(fn) }

// ManifestFileNum exposes the live manifest number for the sweeper.
func (t *Tree) ManifestFileNum() base.FileNum { return t.vs.ManifestFileNum() }

// LogNum exposes the recovery WAL watermark for the sweeper.
func (t *Tree) LogNum() base.FileNum { return t.vs.LogNum() }

// Metrics reports tree statistics, including guard occupancy.
func (t *Tree) Metrics() treebase.Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.metrics
	m.PeakLevelUnits = append([]int(nil), t.metrics.PeakLevelUnits...)
	m.UnitsInflight = int64(t.inflight.units)
	m.LevelFiles = make([]int, t.cfg.NumLevels)
	m.LevelBytes = make([]int64, t.cfg.NumLevels)
	m.GuardsPerLevel = make([]int, t.cfg.NumLevels)
	for _, f := range t.cur.l0 {
		m.LevelFiles[0]++
		m.LevelBytes[0] += int64(f.Size)
		m.TableFileSizes = append(m.TableFileSizes, f.Size)
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &t.cur.levels[l]
		m.LevelFiles[l] = gl.fileCount()
		m.LevelBytes[l] = gl.totalBytes()
		m.GuardsPerLevel[l] = len(gl.guards)
		for _, f := range gl.sentinel {
			m.TableFileSizes = append(m.TableFileSizes, f.Size)
		}
		for i := range gl.guards {
			if len(gl.guards[i].Files) == 0 {
				m.EmptyGuards++
			}
			for _, f := range gl.guards[i].Files {
				m.TableFileSizes = append(m.TableFileSizes, f.Size)
			}
		}
	}
	return m
}

// CacheMetrics reports table-cache statistics (Table 5.4).
func (t *Tree) CacheMetrics() tablecache.Metrics { return t.tc.Metrics() }

// GuardKeys returns the committed guard keys of a level (tests, dumps).
func (t *Tree) GuardKeys(level int) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	if level < 1 || level >= t.cfg.NumLevels {
		return nil
	}
	return t.cur.levels[level].guardKeys()
}

// Dump writes a Figure 3.1-style layout description.
func (t *Tree) Dump(w io.Writer) {
	v := t.currentVersion()
	fmt.Fprintf(w, "FLSM tree %s\n", t.dir)
	fmt.Fprintf(w, "  level 0 (no guards): %d sstables\n", len(v.l0))
	for _, f := range v.l0 {
		fmt.Fprintf(w, "    %s\n", f)
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		gl := &v.levels[l]
		if gl.fileCount() == 0 && len(gl.guards) == 0 {
			continue
		}
		fmt.Fprintf(w, "  level %d: %d guards, %d sstables, %d bytes\n",
			l, len(gl.guards), gl.fileCount(), gl.totalBytes())
		if len(gl.sentinel) > 0 {
			fmt.Fprintf(w, "    sentinel:\n")
			for _, f := range gl.sentinel {
				fmt.Fprintf(w, "      %s\n", f)
			}
		}
		for i := range gl.guards {
			g := &gl.guards[i]
			fmt.Fprintf(w, "    guard %q: %d sstables\n", g.Key, len(g.Files))
			for _, f := range g.Files {
				fmt.Fprintf(w, "      %s\n", f)
			}
		}
	}
}

// Close releases cached readers and the manifest.
func (t *Tree) Close() error {
	t.tc.Close()
	return t.vs.Close()
}
