// Package compress implements the Snappy block format in pure Go (no
// external dependencies): the per-block compression codec used by sstable
// format v2. The format is fully compatible with the reference Snappy
// implementation — streams produced here decode with any Snappy library and
// vice versa — so on-disk tables remain portable. Only the block format is
// implemented (no framing), matching how LevelDB/RocksDB compress sstable
// blocks.
//
// Format summary (https://github.com/google/snappy/blob/main/format_description.txt):
// a varint-encoded decompressed length, then a sequence of elements. Each
// element starts with a tag byte whose low 2 bits select the type:
//
//	00 literal: upper 6 bits hold len-1, or 60..63 meaning the length is
//	   stored in the following 1..4 little-endian bytes.
//	01 copy, 1-byte offset: bits 2-4 hold len-4 (4..11), bits 5-7 are the
//	   offset's high 3 bits, the next byte its low 8 (offset < 2048).
//	10 copy, 2-byte offset: bits 2-7 hold len-1 (1..64), followed by a
//	   2-byte little-endian offset.
//	11 copy, 4-byte offset: as above with a 4-byte offset.
package compress

import (
	"encoding/binary"
	"errors"
)

// Kind selects a block codec.
type Kind int

const (
	// None stores blocks uncompressed.
	None Kind = iota
	// Snappy compresses blocks with the Snappy block format.
	Snappy
)

// String returns the codec's display name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Snappy:
		return "snappy"
	}
	return "unknown"
}

// ErrCorrupt reports a structurally invalid Snappy stream.
var ErrCorrupt = errors.New("compress: corrupt snappy input")

// ErrTooLarge reports a decoded length beyond what this implementation
// handles (the sstable writer never produces such blocks).
var ErrTooLarge = errors.New("compress: decoded length too large")

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	// maxBlockSize is the fragment size the encoder works in; offsets
	// within a fragment fit the uint16 hash-table entries.
	maxBlockSize = 1 << 16

	// inputMargin guarantees the fast-path match loop may read a few bytes
	// beyond the current position without bounds checks failing.
	inputMargin = 16 - 1

	// minNonLiteralBlockSize is the smallest fragment worth searching for
	// matches in; anything shorter is emitted as one literal.
	minNonLiteralBlockSize = 1 + 1 + inputMargin

	// maxDecodedLen bounds Decode allocations against corrupt headers.
	maxDecodedLen = 1 << 30
)

// MaxEncodedLen returns the worst-case encoded size for srcLen input bytes,
// or -1 when srcLen is too large to encode.
func MaxEncodedLen(srcLen int) int {
	n := uint64(srcLen)
	if n > 0xffffffff {
		return -1
	}
	// Header plus incompressible literal expansion: one tag byte per 60
	// literal bytes in the worst sustained case, bounded by n/6 + 32.
	n = 32 + n + n/6
	if n > 0xffffffff {
		return -1
	}
	return int(n)
}

// Encode compresses src, appending nothing: it returns a slice of dst if
// dst was large enough, else a freshly allocated buffer. Encode of an empty
// src is valid and produces a 1-byte stream.
func Encode(dst, src []byte) []byte {
	if n := MaxEncodedLen(len(src)); n < 0 {
		panic("compress: source too large")
	} else if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}

	d := binary.PutUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		p := src
		if len(p) > maxBlockSize {
			p, src = p[:maxBlockSize], src[maxBlockSize:]
		} else {
			src = nil
		}
		if len(p) < minNonLiteralBlockSize {
			d += emitLiteral(dst[d:], p)
		} else {
			d += encodeBlock(dst[d:], p)
		}
	}
	return dst[:d]
}

// emitLiteral writes a literal element for lit into dst and returns the
// bytes written. dst must be large enough (MaxEncodedLen guarantees it).
func emitLiteral(dst, lit []byte) int {
	i, n := 0, uint(len(lit)-1)
	switch {
	case n < 60:
		dst[0] = uint8(n)<<2 | tagLiteral
		i = 1
	case n < 1<<8:
		dst[0] = 60<<2 | tagLiteral
		dst[1] = uint8(n)
		i = 2
	default:
		dst[0] = 61<<2 | tagLiteral
		dst[1] = uint8(n)
		dst[2] = uint8(n >> 8)
		i = 3
	}
	return i + copy(dst[i:], lit)
}

// emitCopy writes copy elements covering length bytes at the given offset.
func emitCopy(dst []byte, offset, length int) int {
	i := 0
	// Long matches become 64-byte copy-2 elements, leaving a remainder in
	// 4..68 so the final element is always encodable.
	for length >= 68 {
		dst[i] = 63<<2 | tagCopy2
		dst[i+1] = uint8(offset)
		dst[i+2] = uint8(offset >> 8)
		i += 3
		length -= 64
	}
	if length > 64 {
		dst[i] = 59<<2 | tagCopy2
		dst[i+1] = uint8(offset)
		dst[i+2] = uint8(offset >> 8)
		i += 3
		length -= 60
	}
	if length >= 12 || offset >= 2048 {
		dst[i] = uint8(length-1)<<2 | tagCopy2
		dst[i+1] = uint8(offset)
		dst[i+2] = uint8(offset >> 8)
		return i + 3
	}
	dst[i] = uint8(offset>>8)<<5 | uint8(length-4)<<2 | tagCopy1
	dst[i+1] = uint8(offset)
	return i + 2
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i : i+4])
}

func load64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i : i+8])
}

func hash(u, shift uint32) uint32 {
	return (u * 0x1e35a7bd) >> shift
}

// encodeBlock compresses one fragment of len [minNonLiteralBlockSize,
// maxBlockSize] into dst and returns the bytes written. The greedy
// hash-table match search follows the reference implementation: probe a
// 4-byte hash chain, extend matches byte-wise, and skip ahead faster
// through incompressible regions.
func encodeBlock(dst, src []byte) (d int) {
	const (
		maxTableSize = 1 << 14
		tableMask    = maxTableSize - 1
	)
	shift := uint32(32 - 8)
	for tableSize := 1 << 8; tableSize < maxTableSize && tableSize < len(src); tableSize *= 2 {
		shift--
	}
	var table [maxTableSize]uint16

	sLimit := len(src) - inputMargin
	nextEmit := 0
	s := 1
	nextHash := hash(load32(src, s), shift)

	for {
		// Probe for a match, skipping ahead 1 extra byte per 32 misses so
		// incompressible input costs ~O(n).
		skip := 32
		nextS := s
		candidate := 0
		for {
			s = nextS
			bytesBetweenHashLookups := skip >> 5
			nextS = s + bytesBetweenHashLookups
			skip += bytesBetweenHashLookups
			if nextS > sLimit {
				goto emitRemainder
			}
			candidate = int(table[nextHash&tableMask])
			table[nextHash&tableMask] = uint16(s)
			nextHash = hash(load32(src, nextS), shift)
			if load32(src, s) == load32(src, candidate) {
				break
			}
		}

		d += emitLiteral(dst[d:], src[nextEmit:s])

		for {
			base := s
			s += 4
			for i := candidate + 4; s < len(src) && src[i] == src[s]; i, s = i+1, s+1 {
			}
			d += emitCopy(dst[d:], base-candidate, s-base)
			nextEmit = s
			if s >= sLimit {
				goto emitRemainder
			}

			// Index the position before the one just past the match too:
			// compressible data often repeats with a 1-byte phase shift.
			x := load64(src, s-1)
			prevHash := hash(uint32(x>>0), shift)
			table[prevHash&tableMask] = uint16(s - 1)
			currHash := hash(uint32(x>>8), shift)
			candidate = int(table[currHash&tableMask])
			table[currHash&tableMask] = uint16(s)
			if uint32(x>>8) != load32(src, candidate) {
				nextHash = hash(uint32(x>>16), shift)
				s++
				break
			}
		}
	}

emitRemainder:
	if nextEmit < len(src) {
		d += emitLiteral(dst[d:], src[nextEmit:])
	}
	return d
}

// DecodedLen returns the decompressed length declared in src's header.
func DecodedLen(src []byte) (int, error) {
	n, _, err := decodedLen(src)
	return n, err
}

func decodedLen(src []byte) (blockLen, headerLen int, err error) {
	v, n := binary.Uvarint(src)
	if n <= 0 || v > 0xffffffff {
		return 0, 0, ErrCorrupt
	}
	if v > maxDecodedLen {
		return 0, 0, ErrTooLarge
	}
	return int(v), n, nil
}

// Decode decompresses src into dst (reused when large enough) and returns
// the decoded bytes. Any structural violation — truncated elements, copies
// reaching before the output start, a length mismatch — returns ErrCorrupt.
func Decode(dst, src []byte) ([]byte, error) {
	dLen, s, err := decodedLen(src)
	if err != nil {
		return nil, err
	}
	if cap(dst) < dLen {
		dst = make([]byte, dLen)
	} else {
		dst = dst[:dLen]
	}

	var d, offset, length int
	for s < len(src) {
		switch src[s] & 0x03 {
		case tagLiteral:
			x := uint32(src[s] >> 2)
			switch {
			case x < 60:
				s++
			case x == 60:
				s += 2
				if s > len(src) {
					return nil, ErrCorrupt
				}
				x = uint32(src[s-1])
			case x == 61:
				s += 3
				if s > len(src) {
					return nil, ErrCorrupt
				}
				x = uint32(src[s-2]) | uint32(src[s-1])<<8
			case x == 62:
				s += 4
				if s > len(src) {
					return nil, ErrCorrupt
				}
				x = uint32(src[s-3]) | uint32(src[s-2])<<8 | uint32(src[s-1])<<16
			default: // x == 63
				s += 5
				if s > len(src) {
					return nil, ErrCorrupt
				}
				x = uint32(src[s-4]) | uint32(src[s-3])<<8 | uint32(src[s-2])<<16 | uint32(src[s-1])<<24
			}
			length = int(x) + 1
			if length <= 0 || length > dLen-d || length > len(src)-s {
				return nil, ErrCorrupt
			}
			copy(dst[d:], src[s:s+length])
			d += length
			s += length
			continue

		case tagCopy1:
			s += 2
			if s > len(src) {
				return nil, ErrCorrupt
			}
			length = 4 + int(src[s-2])>>2&0x7
			offset = int(uint32(src[s-2])&0xe0<<3 | uint32(src[s-1]))

		case tagCopy2:
			s += 3
			if s > len(src) {
				return nil, ErrCorrupt
			}
			length = 1 + int(src[s-3])>>2
			offset = int(uint32(src[s-2]) | uint32(src[s-1])<<8)

		case tagCopy4:
			s += 5
			if s > len(src) {
				return nil, ErrCorrupt
			}
			length = 1 + int(src[s-5])>>2
			offset = int(uint32(src[s-4]) | uint32(src[s-3])<<8 | uint32(src[s-2])<<16 | uint32(src[s-1])<<24)
		}

		if offset <= 0 || d < offset || length > dLen-d {
			return nil, ErrCorrupt
		}
		// Byte-at-a-time: copies may overlap their own output (offset <
		// length replicates a pattern), which bulk copy would break.
		for end := d + length; d != end; d++ {
			dst[d] = dst[d-offset]
		}
	}
	if d != dLen {
		return nil, ErrCorrupt
	}
	return dst, nil
}
