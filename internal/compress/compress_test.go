package compress

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// refVectors are (decoded, encoded) pairs hand-derived from the Snappy
// format description. The encoded side of the first group is what any
// conforming encoder produces for inputs below minNonLiteralBlockSize (one
// literal element), so our encoder must match byte-for-byte; the rest are
// decoder-only vectors exercising each copy element type.
var refVectors = []struct {
	name    string
	decoded string
	encoded []byte
	exact   bool // encoder must produce exactly these bytes
}{
	{
		name:    "empty",
		decoded: "",
		encoded: []byte{0x00},
		exact:   true,
	},
	{
		name:    "short-literal",
		decoded: "abc",
		encoded: []byte{0x03, 0x08, 'a', 'b', 'c'},
		exact:   true,
	},
	{
		name:    "ten-a-literal",
		decoded: "aaaaaaaaaa",
		encoded: append([]byte{0x0a, 0x24}, []byte("aaaaaaaaaa")...),
		exact:   true,
	},
	{
		name:    "copy1",
		decoded: strings.Repeat("ab", 10),
		// len 20; literal "ab"; copy1 offset=2 len=18 is invalid (copy1 max
		// len 11), so use copy2: tag (18-1)<<2|10 = 0x46, offset 2.
		encoded: []byte{0x14, 0x04, 'a', 'b', 0x46, 0x02, 0x00},
	},
	{
		name:    "copy1-short",
		decoded: "abcdabcd",
		// len 8; literal "abcd"; copy1 len=4 offset=4:
		// tag = offsetHi<<5 | (4-4)<<2 | 01 = 0x01, offset low byte 4.
		encoded: []byte{0x08, 0x0c, 'a', 'b', 'c', 'd', 0x01, 0x04},
	},
	{
		name:    "copy4",
		decoded: "xyzw" + "xyzw",
		// Same output via the 4-byte-offset form: tag (4-1)<<2|11 = 0x0f.
		encoded: []byte{0x08, 0x0c, 'x', 'y', 'z', 'w', 0x0f, 0x04, 0x00, 0x00, 0x00},
	},
	{
		name:    "overlapping-copy",
		decoded: strings.Repeat("a", 12),
		// literal "a", then copy1 offset=1 len=11: tag (11-4)<<2|01 = 0x1d.
		// offset < length replicates the last byte (the overlapping case).
		encoded: []byte{0x0c, 0x00, 'a', 0x1d, 0x01},
	},
}

func TestReferenceVectors(t *testing.T) {
	for _, v := range refVectors {
		got, err := Decode(nil, v.encoded)
		if err != nil {
			t.Fatalf("%s: decode: %v", v.name, err)
		}
		if string(got) != v.decoded {
			t.Fatalf("%s: decoded %q, want %q", v.name, got, v.decoded)
		}
		if v.exact {
			enc := Encode(nil, []byte(v.decoded))
			if !bytes.Equal(enc, v.encoded) {
				t.Fatalf("%s: encoded % x, want % x", v.name, enc, v.encoded)
			}
		}
	}
}

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Encode(nil, src)
	if max := MaxEncodedLen(len(src)); len(enc) > max {
		t.Fatalf("encoded %d bytes > MaxEncodedLen %d", len(enc), max)
	}
	got, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 100<<10)
	rng.Read(random)

	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello, snappy"),
		bytes.Repeat([]byte("x"), 1<<20), // hyper-compressible, multi-fragment
		bytes.Repeat([]byte("0123456789abcdef"), 999), // periodic
		random,                            // incompressible
		random[:maxBlockSize],             // exactly one fragment
		random[:maxBlockSize+1],           // fragment boundary
		random[:minNonLiteralBlockSize-1], // literal-only path
		random[:minNonLiteralBlockSize],   // smallest searched fragment
	}
	// Semi-compressible: random quarter repeated four times, like the
	// benchmark value generator.
	semi := bytes.Repeat(random[:4<<10], 4)
	cases = append(cases, semi)

	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 256)
	rng.Read(base)
	for i := 0; i < 200; i++ {
		n := rng.Intn(8 << 10)
		src := make([]byte, 0, n)
		for len(src) < n {
			frag := base[:1+rng.Intn(64)]
			if len(src)+len(frag) > n {
				frag = frag[:n-len(src)]
			}
			src = append(src, frag...)
		}
		roundTrip(t, src)
	}
}

func TestCompressionRatioOnRepetitiveInput(t *testing.T) {
	src := bytes.Repeat([]byte("guard-key-0001:value-payload-"), 500)
	enc := Encode(nil, src)
	if len(enc) >= len(src)/4 {
		t.Fatalf("repetitive input compressed to %d of %d bytes", len(enc), len(src))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := []struct {
		name string
		src  []byte
	}{
		{"empty", nil},
		{"bad-varint", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}},
		{"truncated-literal", []byte{0x05, 0x10, 'a'}},
		{"truncated-copy2", []byte{0x08, 0x46}},
		{"copy-before-start", []byte{0x08, 0x04, 'a', 'b', 0x46, 0x09, 0x00}},
		{"zero-offset", []byte{0x08, 0x04, 'a', 'b', 0x46, 0x00, 0x00}},
		{"output-overrun", []byte{0x02, 0x04, 'a', 'b', 0x46, 0x02, 0x00}},
		{"short-output", []byte{0x7f, 0x08, 'a', 'b', 'c'}},
		{"trailing-garbage-length", []byte{0x03, 0x08, 'a', 'b', 'c', 0xfc}},
	}
	for _, c := range cases {
		if _, err := Decode(nil, c.src); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", c.name, err)
		}
	}
}

func TestDecodedLen(t *testing.T) {
	src := bytes.Repeat([]byte("pebbles"), 100)
	enc := Encode(nil, src)
	n, err := DecodedLen(enc)
	if err != nil || n != len(src) {
		t.Fatalf("DecodedLen = %d, %v; want %d", n, err, len(src))
	}
	// Varint 2^31: above maxDecodedLen but still a valid 32-bit length.
	if _, err := DecodedLen([]byte{0x80, 0x80, 0x80, 0x80, 0x08}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header: %v, want ErrTooLarge", err)
	}
}

func TestDstReuse(t *testing.T) {
	src := bytes.Repeat([]byte("reuse"), 1000)
	buf := make([]byte, 1<<20)
	enc := Encode(buf, src)
	dst := make([]byte, 1<<20)
	got, err := Decode(dst, enc)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Fatal("Decode did not reuse a large-enough dst")
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch after reuse")
	}
}

func BenchmarkEncodeSemiCompressible(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	quarter := make([]byte, 1<<10)
	rng.Read(quarter)
	src := bytes.Repeat(quarter, 4) // 4 KiB block, ~50% compressible
	dst := make([]byte, MaxEncodedLen(len(src)))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(dst, src)
	}
}

func BenchmarkDecodeSemiCompressible(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	quarter := make([]byte, 1<<10)
	rng.Read(quarter)
	src := bytes.Repeat(quarter, 4)
	enc := Encode(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(dst, enc); err != nil {
			b.Fatal(err)
		}
	}
}
