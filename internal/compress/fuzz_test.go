package compress

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic or
// over-read, only return data or ErrCorrupt/ErrTooLarge. Run with
// `go test -fuzz=FuzzDecode ./internal/compress`.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid streams (from the encoder and hand-built vectors)
	// plus near-miss corruptions, so mutation starts at the format's edges.
	seeds := [][]byte{
		{0x00},
		{0x03, 0x08, 'a', 'b', 'c'},
		{0x14, 0x04, 'a', 'b', 0x46, 0x02, 0x00},
		{0x08, 0x0c, 'a', 'b', 'c', 'd', 0x01, 0x04},
		{0x0c, 0x00, 'a', 0x1d, 0x01},
		{0x08, 0x0c, 'x', 'y', 'z', 'w', 0x0f, 0x04, 0x00, 0x00, 0x00},
		{0x80, 0x80, 0x80, 0x80, 0x08},
		Encode(nil, bytes.Repeat([]byte("pebblesdb"), 100)),
		Encode(nil, []byte("short")),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		dst, err := Decode(nil, src)
		if err != nil {
			return
		}
		if n, lerr := DecodedLen(src); lerr != nil || n != len(dst) {
			t.Fatalf("successful decode disagrees with header: %d vs %d (%v)", len(dst), n, lerr)
		}
	})
}

// FuzzRoundTrip checks Encode∘Decode is the identity on arbitrary input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte("ab"), 100))
	f.Add(bytes.Repeat([]byte("0123456789abcdef"), 64))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255, 0, 0})
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Encode(nil, src)
		if max := MaxEncodedLen(len(src)); len(enc) > max {
			t.Fatalf("encoded %d > MaxEncodedLen %d", len(enc), max)
		}
		got, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
		}
	})
}
