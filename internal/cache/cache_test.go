package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetSetBasics(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{File: 1, Off: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache should miss")
	}
	c.Set(k, "value", 5)
	v, ok := c.Get(k)
	if !ok || v.(string) != "value" {
		t.Fatal("get after set failed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.UsedBytes != 5 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReplaceUpdatesCharge(t *testing.T) {
	evicted := 0
	c := New(1<<20, func(Key, interface{}) { evicted++ })
	k := Key{File: 1}
	c.Set(k, "a", 10)
	c.Set(k, "b", 20)
	if v, _ := c.Get(k); v.(string) != "b" {
		t.Fatal("replace failed")
	}
	if st := c.Stats(); st.UsedBytes != 20 {
		t.Fatalf("used bytes %d", st.UsedBytes)
	}
	if evicted != 1 {
		t.Fatalf("replaced value should be evicted once, got %d", evicted)
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []Key
	var mu sync.Mutex
	// One shard gets capacity/numShards bytes; use keys in a single shard
	// by keeping Off=0 and trying many File values until two share a
	// shard... simpler: total capacity small enough that any shard is
	// tiny.
	c := New(16*10, func(k Key, _ interface{}) {
		mu.Lock()
		evicted = append(evicted, k)
		mu.Unlock()
	})
	// Insert many 10-byte entries: every shard holds at most one.
	for i := uint64(0); i < 100; i++ {
		c.Set(Key{File: i}, i, 10)
	}
	if len(evicted) == 0 {
		t.Fatal("expected evictions")
	}
	st := c.Stats()
	if st.Entries+len(evicted) != 100 {
		t.Fatalf("entries %d + evicted %d != 100", st.Entries, len(evicted))
	}
}

func TestDeleteAndDeleteFile(t *testing.T) {
	evicted := map[Key]bool{}
	c := New(1<<20, func(k Key, _ interface{}) { evicted[k] = true })
	c.Set(Key{File: 1, Off: 0}, "a", 1)
	c.Set(Key{File: 1, Off: 100}, "b", 1)
	c.Set(Key{File: 2, Off: 0}, "c", 1)

	c.Delete(Key{File: 2, Off: 0})
	if _, ok := c.Get(Key{File: 2, Off: 0}); ok {
		t.Fatal("deleted key still present")
	}
	c.DeleteFile(1)
	if _, ok := c.Get(Key{File: 1, Off: 0}); ok {
		t.Fatal("DeleteFile left entries")
	}
	if _, ok := c.Get(Key{File: 1, Off: 100}); ok {
		t.Fatal("DeleteFile left entries")
	}
	if len(evicted) != 3 {
		t.Fatalf("evicted %d entries", len(evicted))
	}
}

func TestGetHoldRunsUnderLock(t *testing.T) {
	c := New(1<<20, nil)
	k := Key{File: 9}
	c.Set(k, "v", 1)
	held := false
	v, ok := c.GetHold(k, func(v interface{}) { held = v.(string) == "v" })
	if !ok || !held || v.(string) != "v" {
		t.Fatal("GetHold callback not invoked correctly")
	}
}

func TestClear(t *testing.T) {
	n := 0
	c := New(1<<20, func(Key, interface{}) { n++ })
	for i := uint64(0); i < 50; i++ {
		c.Set(Key{File: i}, i, 1)
	}
	c.Clear()
	if n != 50 {
		t.Fatalf("clear evicted %d", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("stats after clear: %+v", st)
	}
}

func TestRange(t *testing.T) {
	c := New(1<<20, nil)
	for i := uint64(0); i < 20; i++ {
		c.Set(Key{File: i}, fmt.Sprint(i), 1)
	}
	seen := 0
	c.Range(func(k Key, v interface{}) { seen++ })
	if seen != 20 {
		t.Fatalf("range visited %d", seen)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1024, func(Key, interface{}) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{File: uint64(i % 100), Off: uint64(g)}
				if i%3 == 0 {
					c.Set(k, i, 4)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
}
