// Package cache provides a sharded LRU cache with byte-based capacity. It
// backs both the block cache (decoded sstable data blocks) and, via
// eviction callbacks, the table cache. The paper's evaluation repeatedly
// turns on cache effects (Fig 5.1d cached datasets, Fig 5.2b low memory),
// so capacity must be byte-exact. Charges are the caller's to choose; the
// block cache charges the decompressed payload size (sstable format v2
// stores blocks snappy-compressed, and hits must skip the codec), so
// capacity bounds resident memory, not on-storage bytes.
package cache

import (
	"container/list"
	"sync"
)

const numShards = 16

// Key identifies a cache entry: a file number plus an offset (0 for
// whole-file entries such as table readers).
type Key struct {
	File uint64
	Off  uint64
}

// Cache is a fixed-capacity sharded LRU.
type Cache struct {
	shards  [numShards]shard
	onEvict func(Key, interface{})
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[Key]*list.Element
	hits     int64
	misses   int64
}

type entry struct {
	key    Key
	value  interface{}
	charge int64
}

// New returns a cache with the given total capacity in bytes. onEvict, if
// non-nil, is called (without locks held by the caller's shard) for every
// evicted or replaced entry.
func New(capacity int64, onEvict func(Key, interface{})) *Cache {
	c := &Cache{onEvict: onEvict}
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	h := k.File*0x9e3779b97f4a7c15 + k.Off*0xbf58476d1ce4e5b9
	return &c.shards[h%numShards]
}

// Get returns the cached value for k, if present.
func (c *Cache) Get(k Key) (interface{}, bool) {
	return c.GetHold(k, nil)
}

// GetHold is Get with a callback invoked on the value while the shard lock
// is held. Reference-counted values (table readers) use it to acquire a
// reference atomically with the lookup, so a concurrent eviction cannot
// release the last reference in between.
func (c *Cache) GetHold(k Key, hold func(v interface{})) (interface{}, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[k]; ok {
		s.ll.MoveToFront(e)
		s.hits++
		v := e.Value.(*entry).value
		if hold != nil {
			hold(v)
		}
		return v, true
	}
	s.misses++
	return nil, false
}

// Set inserts value under k with the given charge in bytes, evicting LRU
// entries as needed.
func (c *Cache) Set(k Key, value interface{}, charge int64) {
	s := c.shard(k)
	var evicted []*entry
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		old := e.Value.(*entry)
		s.used -= old.charge
		evicted = append(evicted, old)
		e.Value = &entry{key: k, value: value, charge: charge}
		s.used += charge
		s.ll.MoveToFront(e)
	} else {
		e := s.ll.PushFront(&entry{key: k, value: value, charge: charge})
		s.items[k] = e
		s.used += charge
	}
	for s.used > s.capacity && s.ll.Len() > 0 {
		back := s.ll.Back()
		ent := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, ent.key)
		s.used -= ent.charge
		evicted = append(evicted, ent)
	}
	s.mu.Unlock()
	if c.onEvict != nil {
		for _, ent := range evicted {
			c.onEvict(ent.key, ent.value)
		}
	}
}

// Delete removes k if present, invoking the eviction callback.
func (c *Cache) Delete(k Key) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.items[k]
	var ent *entry
	if ok {
		ent = e.Value.(*entry)
		s.ll.Remove(e)
		delete(s.items, k)
		s.used -= ent.charge
	}
	s.mu.Unlock()
	if ok && c.onEvict != nil {
		c.onEvict(ent.key, ent.value)
	}
}

// DeleteFile removes every entry whose Key.File matches fn.
func (c *Cache) DeleteFile(fn uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		var evicted []*entry
		s.mu.Lock()
		for k, e := range s.items {
			if k.File == fn {
				ent := e.Value.(*entry)
				s.ll.Remove(e)
				delete(s.items, k)
				s.used -= ent.charge
				evicted = append(evicted, ent)
			}
		}
		s.mu.Unlock()
		if c.onEvict != nil {
			for _, ent := range evicted {
				c.onEvict(ent.key, ent.value)
			}
		}
	}
}

// Range calls fn for every cached entry. Entries may be concurrently
// evicted; Range holds each shard's lock while visiting it.
func (c *Cache) Range(fn func(k Key, v interface{})) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.items {
			fn(k, e.Value.(*entry).value)
		}
		s.mu.Unlock()
	}
}

// Clear evicts every entry, invoking the eviction callback for each.
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		var evicted []*entry
		s.mu.Lock()
		for k, e := range s.items {
			evicted = append(evicted, e.Value.(*entry))
			delete(s.items, k)
		}
		s.ll.Init()
		s.used = 0
		s.mu.Unlock()
		if c.onEvict != nil {
			for _, ent := range evicted {
				c.onEvict(ent.key, ent.value)
			}
		}
	}
}

// Stats reports aggregate cache behaviour.
type Stats struct {
	Hits, Misses int64
	UsedBytes    int64
	Entries      int
}

// Stats returns a snapshot across shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.UsedBytes += s.used
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}
