// Package btree implements a page-based, checkpointing B+ tree key-value
// store. It stands in for the B+-tree engines the paper measures against:
// KyotoCabinet (§2.2: inserting 100M pairs wrote 829 GB — 61x write
// amplification) and MongoDB's WiredTiger (§5.4, "checkpoints +
// journaling"). Every committed write is journaled; checkpoints rewrite
// whole dirty pages, which is precisely the write-amplification behaviour
// the paper contrasts LSMs against: a small random update dirties an
// entire page.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"pebblesdb/internal/vfs"
	"pebblesdb/internal/wal"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("btree: store is closed")

// Options configures the store.
type Options struct {
	// PageSize is the on-storage page size (default 4 KB).
	PageSize int
	// CheckpointEvery is the journal volume in bytes that triggers an
	// automatic checkpoint (default 4 MB).
	CheckpointEvery int64
}

func (o *Options) ensureDefaults() {
	if o.PageSize == 0 {
		o.PageSize = 4 << 10
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 4 << 20
	}
}

// Store is a single B+-tree keyspace. Leaves are fixed-size pages; the
// in-memory index over leaves is rebuilt on open from the page file.
type Store struct {
	fs   vfs.FS
	dir  string
	opts Options

	mu       sync.Mutex
	leaves   []*leaf // sorted by firstKey; always at least one
	dirty    map[*leaf]bool
	nextPage uint64
	closed   bool

	journal      vfs.File
	journalW     *wal.Writer
	journalBytes int64

	pagesFile vfs.File
	pagesW    *wal.Writer

	metrics Metrics
}

type leaf struct {
	id   uint64
	keys [][]byte
	vals [][]byte
	size int // approximate serialized bytes
}

// Metrics reports store activity for write-amplification accounting.
type Metrics struct {
	// UserBytes is the key+value payload written by the application.
	UserBytes int64
	// JournalBytes / PageBytes are storage writes by source.
	JournalBytes int64
	PageBytes    int64
	// Checkpoints counts checkpoint cycles.
	Checkpoints int
	// Pages is the current leaf count.
	Pages int
}

// WriteAmplification is total storage writes over user payload.
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytes == 0 {
		return 0
	}
	return float64(m.JournalBytes+m.PageBytes) / float64(m.UserBytes)
}

const (
	journalName = "btree.journal"
	pagesName   = "btree.pages"
)

// Open creates or recovers a store in dir.
func Open(fs vfs.FS, dir string, opts Options) (*Store, error) {
	opts.ensureDefaults()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{
		fs:    fs,
		dir:   dir,
		opts:  opts,
		dirty: map[*leaf]bool{},
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if len(s.leaves) == 0 {
		s.leaves = []*leaf{{id: s.allocPage()}}
	}
	// Start a fresh page log seeded with the recovered state (the page
	// log compacts itself on every open) and an empty journal.
	pf, err := fs.Create(filepath.Join(dir, pagesName))
	if err != nil {
		return nil, err
	}
	s.pagesFile = pf
	s.pagesW = wal.NewWriter(pf)
	for _, l := range s.leaves {
		if len(l.keys) == 0 {
			continue
		}
		if err := s.pagesW.AddRecord(encodeLeaf(l)); err != nil {
			return nil, err
		}
	}
	if err := pf.Sync(); err != nil {
		return nil, err
	}
	if err := s.startJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) allocPage() uint64 {
	s.nextPage++
	return s.nextPage
}

// recover rebuilds the leaves from the page file (newest version of each
// page wins) and replays the journal over them.
func (s *Store) recover() error {
	pagePath := filepath.Join(s.dir, pagesName)
	if size, err := s.fs.Stat(pagePath); err == nil && size > 0 {
		f, err := s.fs.Open(pagePath)
		if err != nil {
			return err
		}
		r, err := wal.NewReader(f, size)
		f.Close()
		if err != nil {
			return err
		}
		pages := map[uint64]*leaf{}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			l, err := decodeLeaf(rec)
			if err != nil {
				return err
			}
			if len(l.keys) == 0 {
				delete(pages, l.id) // freed page
			} else {
				pages[l.id] = l
			}
			if l.id > s.nextPage {
				s.nextPage = l.id
			}
		}
		for _, l := range pages {
			s.leaves = append(s.leaves, l)
		}
		sort.Slice(s.leaves, func(i, j int) bool {
			return bytes.Compare(s.leaves[i].keys[0], s.leaves[j].keys[0]) < 0
		})
	}

	// Replay the journal.
	jPath := filepath.Join(s.dir, journalName)
	if size, err := s.fs.Stat(jPath); err == nil && size > 0 {
		f, err := s.fs.Open(jPath)
		if err != nil {
			return err
		}
		r, err := wal.NewReader(f, size)
		f.Close()
		if err != nil {
			return err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			key, val, del, derr := decodeJournal(rec)
			if derr != nil {
				return derr
			}
			if len(s.leaves) == 0 {
				s.leaves = []*leaf{{id: s.allocPage()}}
			}
			if del {
				s.deleteLocked(key)
			} else {
				s.putLocked(key, val)
			}
		}
	}
	return nil
}

func (s *Store) startJournal() error {
	f, err := s.fs.Create(filepath.Join(s.dir, journalName))
	if err != nil {
		return err
	}
	s.journal = f
	s.journalW = wal.NewWriter(f)
	s.journalBytes = 0
	return nil
}

func encodeJournal(key, val []byte, del bool) []byte {
	buf := make([]byte, 0, len(key)+len(val)+12)
	if del {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(val)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, val...)
	return buf
}

func decodeJournal(rec []byte) (key, val []byte, del bool, err error) {
	if len(rec) < 1 {
		return nil, nil, false, fmt.Errorf("btree: short journal record")
	}
	del = rec[0] == 1
	p := rec[1:]
	kl, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < kl {
		return nil, nil, false, fmt.Errorf("btree: bad journal key")
	}
	key = append([]byte(nil), p[n:n+int(kl)]...)
	p = p[n+int(kl):]
	vl, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < vl {
		return nil, nil, false, fmt.Errorf("btree: bad journal value")
	}
	val = append([]byte(nil), p[n:n+int(vl)]...)
	return key, val, del, nil
}

func encodeLeaf(l *leaf) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, l.size+16)
	n := binary.PutUvarint(tmp[:], l.id)
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(l.keys)))
	buf = append(buf, tmp[:n]...)
	for i := range l.keys {
		n = binary.PutUvarint(tmp[:], uint64(len(l.keys[i])))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, l.keys[i]...)
		n = binary.PutUvarint(tmp[:], uint64(len(l.vals[i])))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, l.vals[i]...)
	}
	return buf
}

func decodeLeaf(rec []byte) (*leaf, error) {
	id, n := binary.Uvarint(rec)
	if n <= 0 {
		return nil, fmt.Errorf("btree: bad page id")
	}
	rec = rec[n:]
	count, n := binary.Uvarint(rec)
	if n <= 0 {
		return nil, fmt.Errorf("btree: bad page count")
	}
	rec = rec[n:]
	l := &leaf{id: id}
	for i := uint64(0); i < count; i++ {
		kl, n := binary.Uvarint(rec)
		if n <= 0 || uint64(len(rec)-n) < kl {
			return nil, fmt.Errorf("btree: bad page key")
		}
		key := append([]byte(nil), rec[n:n+int(kl)]...)
		rec = rec[n+int(kl):]
		vl, n := binary.Uvarint(rec)
		if n <= 0 || uint64(len(rec)-n) < vl {
			return nil, fmt.Errorf("btree: bad page value")
		}
		val := append([]byte(nil), rec[n:n+int(vl)]...)
		rec = rec[n+int(vl):]
		l.keys = append(l.keys, key)
		l.vals = append(l.vals, val)
		l.size += len(key) + len(val) + 8
	}
	return l, nil
}

// findLeaf returns the index of the leaf that should hold key. An empty
// leaf (only possible when it is the sole leaf) sorts first.
func (s *Store) findLeaf(key []byte) int {
	i := sort.Search(len(s.leaves), func(i int) bool {
		l := s.leaves[i]
		if len(l.keys) == 0 {
			return false
		}
		return bytes.Compare(l.keys[0], key) > 0
	}) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Put stores key -> value.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := encodeJournal(key, value, false)
	if err := s.journalW.AddRecord(rec); err != nil {
		return err
	}
	s.journalBytes += int64(len(rec)) + 7
	s.metrics.JournalBytes += int64(len(rec)) + 7
	s.metrics.UserBytes += int64(len(key) + len(value))
	s.putLocked(key, value)
	if s.journalBytes >= s.opts.CheckpointEvery {
		return s.checkpointLocked()
	}
	return nil
}

func (s *Store) putLocked(key, value []byte) {
	li := s.findLeaf(key)
	l := s.leaves[li]
	i := sort.Search(len(l.keys), func(i int) bool {
		return bytes.Compare(l.keys[i], key) >= 0
	})
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		l.size += len(value) - len(l.vals[i])
		l.vals[i] = append([]byte(nil), value...)
	} else {
		l.keys = append(l.keys, nil)
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = append([]byte(nil), key...)
		l.vals = append(l.vals, nil)
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = append([]byte(nil), value...)
		l.size += len(key) + len(value) + 8
	}
	s.dirty[l] = true
	if l.size > s.opts.PageSize && len(l.keys) > 1 {
		s.splitLeaf(li)
	}
}

func (s *Store) splitLeaf(li int) {
	l := s.leaves[li]
	mid := len(l.keys) / 2
	right := &leaf{
		id:   s.allocPage(),
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([][]byte(nil), l.vals[mid:]...),
	}
	for i := range right.keys {
		right.size += len(right.keys[i]) + len(right.vals[i]) + 8
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.size -= right.size
	s.leaves = append(s.leaves, nil)
	copy(s.leaves[li+2:], s.leaves[li+1:])
	s.leaves[li+1] = right
	s.dirty[l] = true
	s.dirty[right] = true
}

// Delete removes key if present.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := encodeJournal(key, nil, true)
	if err := s.journalW.AddRecord(rec); err != nil {
		return err
	}
	s.journalBytes += int64(len(rec)) + 7
	s.metrics.JournalBytes += int64(len(rec)) + 7
	s.metrics.UserBytes += int64(len(key))
	s.deleteLocked(key)
	if s.journalBytes >= s.opts.CheckpointEvery {
		return s.checkpointLocked()
	}
	return nil
}

func (s *Store) deleteLocked(key []byte) {
	li := s.findLeaf(key)
	l := s.leaves[li]
	i := sort.Search(len(l.keys), func(i int) bool {
		return bytes.Compare(l.keys[i], key) >= 0
	})
	if i >= len(l.keys) || !bytes.Equal(l.keys[i], key) {
		return
	}
	l.size -= len(l.keys[i]) + len(l.vals[i]) + 8
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	s.dirty[l] = true
	if len(l.keys) == 0 && len(s.leaves) > 1 {
		// Drop the empty leaf from the index; its zero-entry page record
		// at the next checkpoint frees it at recovery.
		for j, cand := range s.leaves {
			if cand == l {
				s.leaves = append(s.leaves[:j], s.leaves[j+1:]...)
				break
			}
		}
	}
}

// Get returns the value of key.
func (s *Store) Get(key []byte) (value []byte, found bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	l := s.leaves[s.findLeaf(key)]
	i := sort.Search(len(l.keys), func(i int) bool {
		return bytes.Compare(l.keys[i], key) >= 0
	})
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		return l.vals[i], true, nil
	}
	return nil, false, nil
}

// Scan reads up to count entries starting at the first key >= start,
// returning how many it visited. A non-nil end is an exclusive upper
// bound.
func (s *Store) Scan(start, end []byte, count int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	li := s.findLeaf(start)
	n := 0
	for ; li < len(s.leaves) && n < count; li++ {
		l := s.leaves[li]
		i := 0
		if n == 0 {
			i = sort.Search(len(l.keys), func(i int) bool {
				return bytes.Compare(l.keys[i], start) >= 0
			})
		}
		for ; i < len(l.keys) && n < count; i++ {
			if end != nil && bytes.Compare(l.keys[i], end) >= 0 {
				return n, nil
			}
			n++
		}
	}
	return n, nil
}

// Checkpoint writes all dirty pages and truncates the journal.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if len(s.dirty) == 0 {
		return nil
	}
	// Append new versions of every dirty page; the newest version of a
	// page id wins at recovery. (Real engines write in place or COW with
	// a page table; an append log with last-writer-wins has identical
	// write volume, which is what the experiments measure.)
	for l := range s.dirty {
		rec := encodeLeaf(l)
		if err := s.pagesW.AddRecord(rec); err != nil {
			return err
		}
		// Charge a full page per dirty leaf: page-granular IO is the point
		// of the comparison.
		charge := int64(len(rec)) + 7
		if charge < int64(s.opts.PageSize) {
			charge = int64(s.opts.PageSize)
		}
		s.metrics.PageBytes += charge
	}
	if err := s.pagesFile.Sync(); err != nil {
		return err
	}
	s.dirty = map[*leaf]bool{}
	s.metrics.Checkpoints++
	// Truncate the journal.
	if s.journal != nil {
		s.journal.Close()
	}
	return s.startJournal()
}

// Metrics returns activity counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.Pages = len(s.leaves)
	return m
}

// Close checkpoints and releases files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	s.closed = true
	if s.journal != nil {
		s.journal.Close()
	}
	if s.pagesFile != nil {
		s.pagesFile.Close()
	}
	return nil
}
