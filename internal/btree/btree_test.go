package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/vfs"
)

func openStore(t *testing.T, fs vfs.FS) *Store {
	t.Helper()
	s, err := Open(fs, "bt", Options{PageSize: 1 << 10, CheckpointEvery: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openStore(t, vfs.NewMem())
	defer s.Close()

	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("deleted key visible")
	}
}

func TestManyKeysSplitPages(t *testing.T) {
	s := openStore(t, vfs.NewMem())
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	model := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%07d", rng.Intn(100000))
		v := fmt.Sprintf("value%d", i)
		model[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Pages < 10 {
		t.Fatalf("expected page splits, got %d pages", m.Pages)
	}
	for k, v := range model {
		got, ok, err := s.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("get %q: %q %v %v", k, got, ok, err)
		}
	}
}

func TestScan(t *testing.T) {
	s := openStore(t, vfs.NewMem())
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v"))
	}
	n, err := s.Scan([]byte("key00500"), nil, 100)
	if err != nil || n != 100 {
		t.Fatalf("scan: %d %v", n, err)
	}
	// Scan near the end returns fewer.
	n, err = s.Scan([]byte("key00990"), nil, 100)
	if err != nil || n != 10 {
		t.Fatalf("tail scan: %d %v", n, err)
	}
}

func TestRecoveryFromJournalAndPages(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs)
	for i := 0; i < 3000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("key00007"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, fs)
	defer s2.Close()
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%05d", i)
		v, ok, err := s2.Get([]byte(k))
		if i == 7 {
			if ok {
				t.Fatal("deleted key recovered")
			}
			continue
		}
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %q: %q %v %v", k, v, ok, err)
		}
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Journal-only durability: kill without Close, reopen, verify.
	fs := vfs.NewMem()
	s := openStore(t, fs)
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v"))
	}
	// No Close: journal holds the un-checkpointed tail.
	s2 := openStore(t, fs)
	defer s2.Close()
	for i := 0; i < 500; i++ {
		if _, ok, _ := s2.Get([]byte(fmt.Sprintf("key%05d", i))); !ok {
			t.Fatalf("key %d lost without close", i)
		}
	}
}

func TestWriteAmplificationIsHigh(t *testing.T) {
	// The point of this substrate (§2.2): small random updates on a
	// page-based B+ tree burn far more storage writes than user bytes.
	s := openStore(t, vfs.NewMem())
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	val := make([]byte, 128)
	for i := 0; i < 20000; i++ {
		rng.Read(val)
		k := fmt.Sprintf("key%08d", rng.Intn(1000000))
		if err := s.Put([]byte(k), val); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	m := s.Metrics()
	wa := m.WriteAmplification()
	if wa < 3 {
		t.Fatalf("expected page-granular write amplification >> 1, got %.2f", wa)
	}
}

func TestDeleteAllKeysLeavesStoreUsable(t *testing.T) {
	s := openStore(t, vfs.NewMem())
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 500; i++ {
		s.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if _, ok, _ := s.Get([]byte("k0001")); ok {
		t.Fatal("key survived delete-all")
	}
	if err := s.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("after")); !ok {
		t.Fatal("store unusable after delete-all")
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := openStore(t, vfs.NewMem())
	s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("get after close: %v", err)
	}
}
