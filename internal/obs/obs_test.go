package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	if r.Len() != 0 {
		t.Fatalf("empty recorder Len = %d", r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Notify(Event{Kind: EventFlushBegin, Unit: uint64(i + 1)})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Unit != want {
			t.Fatalf("evs[%d].Unit = %d, want %d (oldest-first)", i, e.Unit, want)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRecorder(8)
	r.Notify(Event{Unit: 1})
	r.Notify(Event{Unit: 2})
	evs := r.Snapshot()
	if len(evs) != 2 || evs[0].Unit != 1 || evs[1].Unit != 2 {
		t.Fatalf("snapshot = %+v", evs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Notify(Event{Kind: EventCompactionBegin, Unit: uint64(i)})
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}

func TestNopZeroAlloc(t *testing.T) {
	var l Listener = Nop{}
	e := Event{Kind: EventWriteStallBegin, Level: -1, Dur: time.Millisecond}
	allocs := testing.AllocsPerRun(100, func() {
		l.Notify(e)
	})
	if allocs != 0 {
		t.Fatalf("Nop Notify allocated %.1f/op, want 0", allocs)
	}
}

func TestTee(t *testing.T) {
	var a, b int
	la := Func(func(Event) { a++ })
	lb := Func(func(Event) { b++ })
	Tee(la, lb).Notify(Event{})
	if a != 1 || b != 1 {
		t.Fatalf("tee delivered a=%d b=%d", a, b)
	}
	Tee(la, nil).Notify(Event{})
	if a != 2 {
		t.Fatalf("tee with nil right: a=%d", a)
	}
	Tee(nil, lb).Notify(Event{})
	if b != 2 {
		t.Fatalf("tee with nil left: b=%d", b)
	}
	if _, ok := Tee(nil, nil).(Nop); !ok {
		t.Fatalf("Tee(nil, nil) is not Nop")
	}
}

func TestEventJSONAndString(t *testing.T) {
	e := Event{
		Kind:        EventCompactionEnd,
		Nanos:       1500000,
		Level:       2,
		Unit:        7,
		GuardLo:     "a",
		GuardHi:     "m",
		InputTables: 3, OutputTables: 2,
		InputBytes: 1000, OutputBytes: 800,
		Dur: 2 * time.Millisecond,
		Err: errors.New("boom"),
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "compaction-end" {
		t.Fatalf("kind = %v", m["kind"])
	}
	if m["level"].(float64) != 2 {
		t.Fatalf("level = %v", m["level"])
	}
	if m["err"] != "boom" {
		t.Fatalf("err = %v", m["err"])
	}
	s := e.String()
	for _, want := range []string{"compaction-end", "L2", "unit=7", "tables=3->2", "boom"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Level -1 must omit the level field entirely.
	raw, _ = json.Marshal(Event{Kind: EventWALRotation, Level: -1, FileNum: 9})
	if strings.Contains(string(raw), "level") {
		t.Fatalf("level -1 serialized: %s", raw)
	}
}

func TestKindNamesAndPairs(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "event(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	pairs := map[EventKind]EventKind{
		EventFlushBegin:      EventFlushEnd,
		EventCompactionBegin: EventCompactionEnd,
		EventWriteStallBegin: EventWriteStallEnd,
	}
	for begin, end := range pairs {
		if !begin.HasEnd() || begin.End() != end {
			t.Fatalf("%v pairing broken", begin)
		}
	}
	if EventResume.HasEnd() {
		t.Fatalf("resume should not pair")
	}
}

func TestMonotonic(t *testing.T) {
	a := Monotonic()
	time.Sleep(time.Millisecond)
	b := Monotonic()
	if b <= a {
		t.Fatalf("monotonic did not advance: %d -> %d", a, b)
	}
}
