// Package obs is the store's observability substrate: typed lifecycle
// events, a pluggable Listener, a fixed-size flight recorder, and the
// logger type used by the slow-op log. It imports only the standard
// library so every internal package (including base) can depend on it
// without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventKind enumerates the lifecycle notifications the engine and trees
// emit. Begin/End pairs share a Unit id so a listener can correlate them.
type EventKind uint8

const (
	// EventFlushBegin / EventFlushEnd bracket one memtable flush.
	EventFlushBegin EventKind = iota
	EventFlushEnd
	// EventCompactionBegin / EventCompactionEnd bracket one compaction
	// unit (FLSM guard group or leveled input set).
	EventCompactionBegin
	EventCompactionEnd
	// EventWALRotation marks a switch to a fresh write-ahead log.
	EventWALRotation
	// EventWALSyncStall marks a WAL fsync that exceeded the writer's
	// stall threshold.
	EventWALSyncStall
	// EventManifestRotation marks a manifest rewrite (snapshot + switch).
	EventManifestRotation
	// EventWriteStallBegin / EventWriteStallEnd bracket one episode of
	// the write path being slowed or stopped by L0 pressure or memtable
	// rotation waits.
	EventWriteStallBegin
	EventWriteStallEnd
	// EventBackgroundError reports a failed background flush/compaction
	// attempt (possibly retried afterwards).
	EventBackgroundError
	// EventReadOnly marks the transition into read-only degraded mode.
	EventReadOnly
	// EventResume marks a successful Resume from degraded mode.
	EventResume

	numEventKinds
)

var kindNames = [numEventKinds]string{
	EventFlushBegin:       "flush-begin",
	EventFlushEnd:         "flush-end",
	EventCompactionBegin:  "compaction-begin",
	EventCompactionEnd:    "compaction-end",
	EventWALRotation:      "wal-rotation",
	EventWALSyncStall:     "wal-sync-stall",
	EventManifestRotation: "manifest-rotation",
	EventWriteStallBegin:  "write-stall-begin",
	EventWriteStallEnd:    "write-stall-end",
	EventBackgroundError:  "background-error",
	EventReadOnly:         "read-only",
	EventResume:           "resume",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// HasEnd reports whether the kind is a begin event with a matching end.
func (k EventKind) HasEnd() bool {
	switch k {
	case EventFlushBegin, EventCompactionBegin, EventWriteStallBegin:
		return true
	}
	return false
}

// End returns the matching end kind for a begin kind.
func (k EventKind) End() EventKind {
	switch k {
	case EventFlushBegin:
		return EventFlushEnd
	case EventCompactionBegin:
		return EventCompactionEnd
	case EventWriteStallBegin:
		return EventWriteStallEnd
	}
	return k
}

var epoch = time.Now()

// Monotonic returns nanoseconds elapsed on the monotonic clock since
// process start. Event timestamps use it so recorded sequences order
// correctly even across wall-clock adjustments.
func Monotonic() int64 { return int64(time.Since(epoch)) }

// Event is one structured lifecycle notification. It is passed by value
// so that emitting to a no-op listener allocates nothing; fields that do
// not apply to a kind are left zero.
type Event struct {
	Kind EventKind
	// Nanos is a monotonic timestamp (see Monotonic).
	Nanos int64
	// Level is the source level of a flush/compaction, -1 when N/A.
	Level int
	// Unit correlates a begin event with its end (compaction unit id,
	// flush id, or stall episode id).
	Unit uint64
	// GuardLo/GuardHi bound the guard range of an FLSM compaction unit.
	GuardLo, GuardHi string
	// InputTables/OutputTables and InputBytes/OutputBytes describe the
	// work moved by a flush or compaction.
	InputTables  int
	OutputTables int
	InputBytes   int64
	OutputBytes  int64
	// FileNum is the WAL or manifest file number for rotation events.
	FileNum uint64
	// Dur is the elapsed time reported by end, sync-stall, and stall
	// events.
	Dur time.Duration
	// Err carries the failure for background-error/read-only/flush-end
	// events.
	Err error
	// Detail is a short freeform tag: the failed operation name, the
	// stall reason ("slowdown", "stop", "memtable-wait"), etc.
	Detail string
}

// MarshalJSON renders the event with its kind name, millisecond-precision
// monotonic timestamp, and only the fields that are set.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		Kind         string  `json:"kind"`
		MonoMs       float64 `json:"mono_ms"`
		Level        *int    `json:"level,omitempty"`
		Unit         uint64  `json:"unit,omitempty"`
		GuardLo      string  `json:"guard_lo,omitempty"`
		GuardHi      string  `json:"guard_hi,omitempty"`
		InputTables  int     `json:"input_tables,omitempty"`
		OutputTables int     `json:"output_tables,omitempty"`
		InputBytes   int64   `json:"input_bytes,omitempty"`
		OutputBytes  int64   `json:"output_bytes,omitempty"`
		FileNum      uint64  `json:"file_num,omitempty"`
		DurUs        int64   `json:"dur_us,omitempty"`
		Err          string  `json:"err,omitempty"`
		Detail       string  `json:"detail,omitempty"`
	}
	w := wire{
		Kind:         e.Kind.String(),
		MonoMs:       float64(e.Nanos) / 1e6,
		Unit:         e.Unit,
		GuardLo:      e.GuardLo,
		GuardHi:      e.GuardHi,
		InputTables:  e.InputTables,
		OutputTables: e.OutputTables,
		InputBytes:   e.InputBytes,
		OutputBytes:  e.OutputBytes,
		FileNum:      e.FileNum,
		DurUs:        int64(e.Dur / time.Microsecond),
		Detail:       e.Detail,
	}
	if e.Level >= 0 {
		l := e.Level
		w.Level = &l
	}
	if e.Err != nil {
		w.Err = e.Err.Error()
	}
	return json.Marshal(w)
}

// String renders a one-line human-readable form, used by the flight-
// recorder dump on degradation.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fms %-18s", float64(e.Nanos)/1e6, e.Kind.String())
	if e.Level >= 0 {
		s += fmt.Sprintf(" L%d", e.Level)
	}
	if e.Unit != 0 {
		s += fmt.Sprintf(" unit=%d", e.Unit)
	}
	if e.GuardLo != "" || e.GuardHi != "" {
		s += fmt.Sprintf(" guards=[%q,%q)", e.GuardLo, e.GuardHi)
	}
	if e.InputTables != 0 || e.OutputTables != 0 {
		s += fmt.Sprintf(" tables=%d->%d", e.InputTables, e.OutputTables)
	}
	if e.InputBytes != 0 || e.OutputBytes != 0 {
		s += fmt.Sprintf(" bytes=%d->%d", e.InputBytes, e.OutputBytes)
	}
	if e.FileNum != 0 {
		s += fmt.Sprintf(" file=%06d", e.FileNum)
	}
	if e.Dur != 0 {
		s += fmt.Sprintf(" dur=%s", e.Dur)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Err != nil {
		s += fmt.Sprintf(" err=%q", e.Err)
	}
	return s
}

// Listener receives lifecycle events. Implementations must be safe for
// concurrent use and must not block: events are emitted inline from
// flush, compaction, and write-path goroutines.
type Listener interface {
	Notify(Event)
}

// Nop is the zero-cost default listener: Notify is inlineable and the
// event argument never escapes, so emission to it allocates nothing.
type Nop struct{}

// Notify discards the event.
func (Nop) Notify(Event) {}

// Func adapts a function to the Listener interface (test convenience).
type Func func(Event)

// Notify calls the function.
func (f Func) Notify(e Event) { f(e) }

// Tee fans one event stream out to two listeners, tolerating nil on
// either side.
func Tee(a, b Listener) Listener {
	if a == nil {
		if b == nil {
			return Nop{}
		}
		return b
	}
	if b == nil {
		return a
	}
	return tee{a, b}
}

type tee struct{ a, b Listener }

func (t tee) Notify(e Event) {
	t.a.Notify(e)
	t.b.Notify(e)
}

// Logger is the pluggable sink for the slow-op log and flight-recorder
// dumps. It matches the Config.Logger signature used everywhere else.
type Logger func(format string, args ...interface{})
