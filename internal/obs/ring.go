package obs

import "sync"

// DefaultRecorderSize is the flight-recorder capacity used when a size
// of zero is requested.
const DefaultRecorderSize = 256

// Recorder is the flight recorder: a fixed-size ring buffer retaining
// the last N events. It implements Listener. Writes take a short mutex
// critical section (one slot copy); lifecycle events are rare — at most
// a few per flush/compaction/stall episode — so the lock is never
// contended on the data path.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; next%len(buf) is the slot
}

// NewRecorder returns a recorder retaining the last size events
// (DefaultRecorderSize when size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{buf: make([]Event, size)}
}

// Notify records the event, evicting the oldest when full.
func (r *Recorder) Notify(e Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest-first.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.buf))
	count := n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.next)
}

// Dump writes the retained events oldest-first through logf, one line
// each, bracketed by a header. Used when the store degrades to
// read-only so the causal trace lands in the diagnostic log.
func (r *Recorder) Dump(logf Logger, reason string) {
	if logf == nil {
		return
	}
	evs := r.Snapshot()
	logf("obs: flight recorder dump (%d events): %s", len(evs), reason)
	for _, e := range evs {
		logf("obs:   %s", e.String())
	}
}
