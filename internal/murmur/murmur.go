// Package murmur implements MurmurHash64A, the computationally cheap hash
// PebblesDB uses to decide whether an inserted key becomes a guard (§4.4).
// The same hash seeds the sstable bloom filters.
package murmur

import "encoding/binary"

// Hash64 computes MurmurHash64A of data with the given seed.
func Hash64(data []byte, seed uint64) uint64 {
	const m = 0xc6a4a7935bd1e995
	const r = 47

	h := seed ^ uint64(len(data))*m

	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
		data = data[8:]
	}

	switch len(data) {
	case 7:
		h ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(data[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}
