package murmur

import (
	"fmt"
	"math/bits"
	"testing"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash64([]byte("hello world"), 1)
	b := Hash64([]byte("hello world"), 1)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if Hash64([]byte("hello world"), 2) == a {
		t.Fatal("seed should change the hash")
	}
	if Hash64([]byte("hello worle"), 1) == a {
		t.Fatal("different input should change the hash")
	}
}

func TestHashAllLengths(t *testing.T) {
	// Exercise every tail-switch branch (lengths 0..16).
	seen := map[uint64]int{}
	for n := 0; n <= 16; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + 1)
		}
		h := Hash64(data, 0x9747b28c)
		if prev, dup := seen[h]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[h] = n
	}
}

func TestHashBitDistribution(t *testing.T) {
	// Guard selection counts trailing set bits; verify the geometric
	// distribution roughly holds: P(>= k trailing ones) ~ 2^-k.
	const n = 200000
	counts := make([]int, 12)
	for i := 0; i < n; i++ {
		h := Hash64([]byte(fmt.Sprintf("key%09d", i)), 0x9747b28c)
		run := bits.TrailingZeros64(^h)
		for k := 1; k <= run && k < len(counts); k++ {
			counts[k]++
		}
	}
	for k := 1; k <= 8; k++ {
		expected := float64(n) / float64(uint64(1)<<uint(k))
		got := float64(counts[k])
		if got < expected*0.7 || got > expected*1.3 {
			t.Fatalf("trailing-ones >= %d: got %.0f want ~%.0f", k, got, expected)
		}
	}
}

func BenchmarkHash64(b *testing.B) {
	key := []byte("user9999999999999999")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		Hash64(key, 0x9747b28c)
	}
}
