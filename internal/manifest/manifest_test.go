package manifest

import (
	"bytes"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/vfs"
)

func TestEditEncodeDecodeRoundtrip(t *testing.T) {
	var e VersionEdit
	e.SetLogNum(5)
	e.SetNextFileNum(100)
	e.SetLastSeq(99999)
	e.NewFiles = append(e.NewFiles, NewFileEntry{
		Level: 2,
		Meta: base.FileMetadata{
			FileNum:  17,
			Size:     123456,
			Smallest: base.MakeInternalKey(nil, []byte("aaa"), 1, base.KindSet),
			Largest:  base.MakeInternalKey(nil, []byte("zzz"), 9, base.KindSet),
		},
	})
	e.DeletedFiles = append(e.DeletedFiles, DeletedFileEntry{Level: 1, FileNum: 9})
	e.NewGuards = append(e.NewGuards, GuardEntry{Level: 3, Key: []byte("guardkey")})
	e.DeletedGuards = append(e.DeletedGuards, GuardEntry{Level: 4, Key: []byte("dead")})

	enc := e.Encode(nil)
	var d VersionEdit
	if err := d.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if *d.LogNum != 5 || *d.NextFileNum != 100 || *d.LastSeq != 99999 {
		t.Fatalf("watermarks: %+v", d)
	}
	if len(d.NewFiles) != 1 || d.NewFiles[0].Level != 2 || d.NewFiles[0].Meta.FileNum != 17 ||
		d.NewFiles[0].Meta.Size != 123456 ||
		!bytes.Equal(d.NewFiles[0].Meta.Smallest, e.NewFiles[0].Meta.Smallest) ||
		!bytes.Equal(d.NewFiles[0].Meta.Largest, e.NewFiles[0].Meta.Largest) {
		t.Fatalf("new files: %+v", d.NewFiles)
	}
	if len(d.DeletedFiles) != 1 || d.DeletedFiles[0] != (DeletedFileEntry{1, 9}) {
		t.Fatalf("deleted files: %+v", d.DeletedFiles)
	}
	if len(d.NewGuards) != 1 || d.NewGuards[0].Level != 3 || string(d.NewGuards[0].Key) != "guardkey" {
		t.Fatalf("guards: %+v", d.NewGuards)
	}
	if len(d.DeletedGuards) != 1 || string(d.DeletedGuards[0].Key) != "dead" {
		t.Fatalf("deleted guards: %+v", d.DeletedGuards)
	}
}

func TestEditDecodeEmpty(t *testing.T) {
	var d VersionEdit
	if err := d.Decode(nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditDecodeCorrupt(t *testing.T) {
	var d VersionEdit
	if err := d.Decode([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("unknown/garbled tag should fail")
	}
	// Truncated new-file record.
	var e VersionEdit
	e.NewFiles = append(e.NewFiles, NewFileEntry{Level: 1, Meta: base.FileMetadata{
		FileNum: 1, Smallest: []byte("aaaaaaaax"), Largest: []byte("bbbbbbbbx"),
	}})
	enc := e.Encode(nil)
	var d2 VersionEdit
	if err := d2.Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated edit should fail")
	}
}

func TestVersionSetCreateLoad(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(fs, "db") {
		t.Fatal("store should exist after Create")
	}

	fn1 := vs.NewFileNum()
	var e1 VersionEdit
	e1.SetLogNum(fn1)
	e1.SetLastSeq(42)
	e1.NewFiles = append(e1.NewFiles, NewFileEntry{Level: 0, Meta: base.FileMetadata{
		FileNum:  fn1,
		Size:     10,
		Smallest: base.MakeInternalKey(nil, []byte("a"), 1, base.KindSet),
		Largest:  base.MakeInternalKey(nil, []byte("b"), 2, base.KindSet),
	}})
	if err := vs.LogAndApply(&e1, nil); err != nil {
		t.Fatal(err)
	}
	var e2 VersionEdit
	e2.NewGuards = append(e2.NewGuards, GuardEntry{Level: 1, Key: []byte("g")})
	if err := vs.LogAndApply(&e2, nil); err != nil {
		t.Fatal(err)
	}
	vs.Close()

	var files, guards int
	vs2, err := Load(fs, "db", func(e *VersionEdit) error {
		files += len(e.NewFiles)
		guards += len(e.NewGuards)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 || guards != 1 {
		t.Fatalf("replayed files=%d guards=%d", files, guards)
	}
	if vs2.LastSeq() != 42 {
		t.Fatalf("last seq %d", vs2.LastSeq())
	}
	if vs2.LogNum() != fn1 {
		t.Fatalf("log num %d want %d", vs2.LogNum(), fn1)
	}
	// File numbers must not collide with anything allocated before.
	if vs2.NewFileNum() <= fn1 {
		t.Fatal("file numbers must advance across reloads")
	}
	if err := vs2.StartAppending(&VersionEdit{}); err != nil {
		t.Fatal(err)
	}
	vs2.Close()
}

func TestVersionSetRotation(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	// Write enough edits to exceed the rotation threshold; each edit
	// carries a large key to accelerate growth.
	bigKey := bytes.Repeat([]byte("k"), 64<<10)
	snapshotCalls := 0
	for i := 0; i < 80; i++ {
		var e VersionEdit
		e.NewGuards = append(e.NewGuards, GuardEntry{Level: 1, Key: bigKey})
		err := vs.LogAndApply(&e, func() *VersionEdit {
			snapshotCalls++
			return &VersionEdit{} // state snapshot; empty is fine here
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if snapshotCalls == 0 {
		t.Fatal("manifest never rotated")
	}
	vs.Close()

	// The rotated manifest must load.
	if _, err := Load(fs, "db", func(*VersionEdit) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingStore(t *testing.T) {
	fs := vfs.NewMem()
	if Exists(fs, "nope") {
		t.Fatal("store should not exist")
	}
	if _, err := Load(fs, "nope", func(*VersionEdit) error { return nil }); err == nil {
		t.Fatal("loading a missing store should fail")
	}
}
