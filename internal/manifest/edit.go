// Package manifest persists the store's metadata: the set of live sstables
// per level, the committed guard keys per level (PebblesDB's addition,
// §4.3.1: "PebblesDB simply adds more metadata (guard information) to be
// persisted in the MANIFEST file"), the WAL number to recover from, and the
// file-number / sequence-number watermarks. Edits are encoded as tagged
// records appended to a MANIFEST log in the WAL record format; CURRENT
// points at the live MANIFEST.
package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pebblesdb/internal/base"
)

// ErrCorrupt indicates an undecodable version edit.
var ErrCorrupt = errors.New("manifest: corrupt version edit")

const (
	tagLogNum       = 1
	tagNextFileNum  = 2
	tagLastSeq      = 3
	tagNewFile      = 4
	tagDeletedFile  = 5
	tagNewGuard     = 6
	tagDeletedGuard = 7
	// tagFileRangeDels attaches range-tombstone properties (fragment count
	// and covered user-key span) to the preceding tagNewFile entry with the
	// same level and file number. A separate record keeps tagNewFile's
	// encoding stable, so manifests written before range deletions existed
	// still decode.
	tagFileRangeDels = 8
)

// NewFileEntry records an sstable added to a level.
type NewFileEntry struct {
	Level int
	Meta  base.FileMetadata
}

// DeletedFileEntry records an sstable removed from a level.
type DeletedFileEntry struct {
	Level   int
	FileNum base.FileNum
}

// GuardEntry records a guard key committed to (or deleted from) a level.
type GuardEntry struct {
	Level int
	Key   []byte // user key
}

// VersionEdit is one atomic mutation of the store's metadata.
type VersionEdit struct {
	LogNum        *base.FileNum
	NextFileNum   *base.FileNum
	LastSeq       *base.SeqNum
	NewFiles      []NewFileEntry
	DeletedFiles  []DeletedFileEntry
	NewGuards     []GuardEntry
	DeletedGuards []GuardEntry
}

// SetLogNum records the WAL number from which recovery must replay.
func (e *VersionEdit) SetLogNum(n base.FileNum) { e.LogNum = &n }

// SetNextFileNum records the file-number watermark.
func (e *VersionEdit) SetNextFileNum(n base.FileNum) { e.NextFileNum = &n }

// SetLastSeq records the sequence-number watermark.
func (e *VersionEdit) SetLastSeq(s base.SeqNum) { e.LastSeq = &s }

// Encode appends the serialized edit to dst.
func (e *VersionEdit) Encode(dst []byte) []byte {
	if e.LogNum != nil {
		dst = appendUvarint(dst, tagLogNum)
		dst = appendUvarint(dst, uint64(*e.LogNum))
	}
	if e.NextFileNum != nil {
		dst = appendUvarint(dst, tagNextFileNum)
		dst = appendUvarint(dst, uint64(*e.NextFileNum))
	}
	if e.LastSeq != nil {
		dst = appendUvarint(dst, tagLastSeq)
		dst = appendUvarint(dst, uint64(*e.LastSeq))
	}
	for _, f := range e.NewFiles {
		dst = appendUvarint(dst, tagNewFile)
		dst = appendUvarint(dst, uint64(f.Level))
		dst = appendUvarint(dst, uint64(f.Meta.FileNum))
		dst = appendUvarint(dst, f.Meta.Size)
		dst = appendBytes(dst, f.Meta.Smallest)
		dst = appendBytes(dst, f.Meta.Largest)
		if f.Meta.NumRangeDels > 0 {
			dst = appendUvarint(dst, tagFileRangeDels)
			dst = appendUvarint(dst, uint64(f.Level))
			dst = appendUvarint(dst, uint64(f.Meta.FileNum))
			dst = appendUvarint(dst, uint64(f.Meta.NumRangeDels))
			dst = appendBytes(dst, f.Meta.RangeDelStart)
			dst = appendBytes(dst, f.Meta.RangeDelEnd)
		}
	}
	for _, f := range e.DeletedFiles {
		dst = appendUvarint(dst, tagDeletedFile)
		dst = appendUvarint(dst, uint64(f.Level))
		dst = appendUvarint(dst, uint64(f.FileNum))
	}
	for _, g := range e.NewGuards {
		dst = appendUvarint(dst, tagNewGuard)
		dst = appendUvarint(dst, uint64(g.Level))
		dst = appendBytes(dst, g.Key)
	}
	for _, g := range e.DeletedGuards {
		dst = appendUvarint(dst, tagDeletedGuard)
		dst = appendUvarint(dst, uint64(g.Level))
		dst = appendBytes(dst, g.Key)
	}
	return dst
}

// Decode parses a serialized edit.
func (e *VersionEdit) Decode(src []byte) error {
	for len(src) > 0 {
		tag, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("%w: bad tag", ErrCorrupt)
		}
		src = src[n:]
		var err error
		switch tag {
		case tagLogNum:
			var v uint64
			if v, src, err = readUvarint(src); err != nil {
				return err
			}
			fn := base.FileNum(v)
			e.LogNum = &fn
		case tagNextFileNum:
			var v uint64
			if v, src, err = readUvarint(src); err != nil {
				return err
			}
			fn := base.FileNum(v)
			e.NextFileNum = &fn
		case tagLastSeq:
			var v uint64
			if v, src, err = readUvarint(src); err != nil {
				return err
			}
			s := base.SeqNum(v)
			e.LastSeq = &s
		case tagNewFile:
			var level, fn, size uint64
			var smallest, largest []byte
			if level, src, err = readUvarint(src); err != nil {
				return err
			}
			if fn, src, err = readUvarint(src); err != nil {
				return err
			}
			if size, src, err = readUvarint(src); err != nil {
				return err
			}
			if smallest, src, err = readBytes(src); err != nil {
				return err
			}
			if largest, src, err = readBytes(src); err != nil {
				return err
			}
			e.NewFiles = append(e.NewFiles, NewFileEntry{
				Level: int(level),
				Meta: base.FileMetadata{
					FileNum:  base.FileNum(fn),
					Size:     size,
					Smallest: smallest,
					Largest:  largest,
				},
			})
		case tagFileRangeDels:
			var level, fn, count uint64
			var start, end []byte
			if level, src, err = readUvarint(src); err != nil {
				return err
			}
			if fn, src, err = readUvarint(src); err != nil {
				return err
			}
			if count, src, err = readUvarint(src); err != nil {
				return err
			}
			if start, src, err = readBytes(src); err != nil {
				return err
			}
			if end, src, err = readBytes(src); err != nil {
				return err
			}
			found := false
			for i := len(e.NewFiles) - 1; i >= 0; i-- {
				f := &e.NewFiles[i]
				if f.Level == int(level) && f.Meta.FileNum == base.FileNum(fn) {
					f.Meta.NumRangeDels = int(count)
					f.Meta.RangeDelStart = start
					f.Meta.RangeDelEnd = end
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: range-del props for unknown file %d", ErrCorrupt, fn)
			}
		case tagDeletedFile:
			var level, fn uint64
			if level, src, err = readUvarint(src); err != nil {
				return err
			}
			if fn, src, err = readUvarint(src); err != nil {
				return err
			}
			e.DeletedFiles = append(e.DeletedFiles, DeletedFileEntry{int(level), base.FileNum(fn)})
		case tagNewGuard, tagDeletedGuard:
			var level uint64
			var key []byte
			if level, src, err = readUvarint(src); err != nil {
				return err
			}
			if key, src, err = readBytes(src); err != nil {
				return err
			}
			g := GuardEntry{Level: int(level), Key: key}
			if tag == tagNewGuard {
				e.NewGuards = append(e.NewGuards, g)
			} else {
				e.DeletedGuards = append(e.DeletedGuards, g)
			}
		default:
			return fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
	return nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendBytes(dst, p []byte) []byte {
	dst = appendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func readUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, src[n:], nil
}

func readBytes(src []byte) ([]byte, []byte, error) {
	l, src, err := readUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(src)) < l {
		return nil, nil, fmt.Errorf("%w: truncated bytes", ErrCorrupt)
	}
	out := append([]byte(nil), src[:l]...)
	return out, src[l:], nil
}
