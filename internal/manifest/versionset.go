package manifest

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pebblesdb/internal/base"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/vfs"
	"pebblesdb/internal/wal"
)

// rotateThreshold is the MANIFEST size beyond which LogAndApply writes a
// fresh manifest seeded with a full snapshot.
const rotateThreshold = 4 << 20

// VersionSet owns the MANIFEST log and the store-wide watermarks. Tree
// implementations apply decoded edits to their in-memory structures and
// call LogAndApply to persist new edits.
type VersionSet struct {
	fs  vfs.FS
	dir string

	// Listener, when non-nil, receives an EventManifestRotation for every
	// manifest rewrite after the initial install. Set it (like the tree
	// does from its config) before background work begins.
	Listener obs.Listener

	mu            sync.Mutex
	manifestFile  vfs.File
	manifestW     *wal.Writer
	manifestNum   base.FileNum
	manifestBytes int64
	// writeErr records that an append to the live manifest failed. The
	// file's tail may hold a torn record, and the log reader treats a tear
	// as end-of-log — so any record appended after it would be silently
	// invisible to recovery. Once set, the next LogAndApply must rotate to
	// a fresh manifest seeded with a full snapshot; plain appends are
	// refused.
	writeErr bool

	nextFileNum atomic.Uint64 // next unused file number

	// logNum is the WAL from which recovery replays; lastSeq is the
	// persisted sequence watermark. Both are updated via edits under mu.
	logNum  base.FileNum
	lastSeq base.SeqNum
}

// LogNum returns the WAL number recovery must replay from.
func (vs *VersionSet) LogNum() base.FileNum {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.logNum
}

// LastSeq returns the persisted sequence watermark.
func (vs *VersionSet) LastSeq() base.SeqNum {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.lastSeq
}

// Exists reports whether dir contains a store (a CURRENT file).
func Exists(fs vfs.FS, dir string) bool {
	_, err := fs.Stat(filepath.Join(dir, "CURRENT"))
	return err == nil
}

// Create initializes a fresh store in dir with an empty initial manifest.
func Create(fs vfs.FS, dir string) (*VersionSet, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	vs := &VersionSet{fs: fs, dir: dir}
	vs.nextFileNum.Store(2) // 1 is reserved for the first manifest
	if err := vs.installManifestLocked(1, nil, 0, 0); err != nil {
		return nil, err
	}
	return vs, nil
}

// Load recovers a store's metadata from dir, invoking apply for every edit
// in order. The caller rebuilds its in-memory structures inside apply.
func Load(fs vfs.FS, dir string, apply func(*VersionEdit) error) (*VersionSet, error) {
	vs := &VersionSet{fs: fs, dir: dir}

	currentPath := filepath.Join(dir, "CURRENT")
	cf, err := fs.Open(currentPath)
	if err != nil {
		return nil, err
	}
	sz, err := fs.Stat(currentPath)
	if err != nil {
		cf.Close()
		return nil, err
	}
	nameBuf := make([]byte, sz)
	if _, err := cf.ReadAt(nameBuf, 0); err != nil && err != io.EOF {
		cf.Close()
		return nil, err
	}
	cf.Close()
	manifestName := string(nameBuf)
	for len(manifestName) > 0 && manifestName[len(manifestName)-1] == '\n' {
		manifestName = manifestName[:len(manifestName)-1]
	}
	ft, fn, ok := base.ParseFilename(manifestName)
	if !ok || ft != base.FileTypeManifest {
		return nil, fmt.Errorf("manifest: CURRENT names %q, not a manifest", manifestName)
	}
	vs.manifestNum = fn

	mPath := filepath.Join(dir, manifestName)
	mf, err := fs.Open(mPath)
	if err != nil {
		return nil, err
	}
	mSize, err := fs.Stat(mPath)
	if err != nil {
		mf.Close()
		return nil, err
	}
	r, err := wal.NewReader(mf, mSize)
	mf.Close()
	if err != nil {
		return nil, err
	}

	maxFile := uint64(fn)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var edit VersionEdit
		if err := edit.Decode(rec); err != nil {
			return nil, err
		}
		if edit.LogNum != nil {
			vs.logNum = *edit.LogNum
		}
		if edit.NextFileNum != nil && uint64(*edit.NextFileNum) > maxFile {
			maxFile = uint64(*edit.NextFileNum)
		}
		if edit.LastSeq != nil && *edit.LastSeq > vs.lastSeq {
			vs.lastSeq = *edit.LastSeq
		}
		if err := apply(&edit); err != nil {
			return nil, err
		}
	}
	vs.nextFileNum.Store(maxFile + 1)

	// Continue appending to a fresh manifest: simpler than re-opening the
	// old one mid-block, and it compacts the edit history on every open.
	vs.manifestNum = vs.NewFileNum()
	return vs, nil
}

// StartAppending must be called once after Load, with a snapshot edit
// describing the full recovered state; it opens the new MANIFEST.
func (vs *VersionSet) StartAppending(snapshot *VersionEdit) error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.installManifestLocked(vs.manifestNum, snapshot, vs.logNum, vs.lastSeq)
}

// installManifestLocked writes a new MANIFEST numbered num, seeded with
// snapshot (nil for a fresh store) carrying the newLog/newSeq watermarks,
// syncs it, and atomically points CURRENT at it. The VersionSet's state —
// live manifest handle, watermarks, writeErr — commits only after the
// *entire* sequence succeeds; any failure removes the partial files and
// leaves the previous manifest live and CURRENT untouched, so a failed
// switch can never strand CURRENT pointing at one manifest while edits
// flow to another.
func (vs *VersionSet) installManifestLocked(num base.FileNum, snapshot *VersionEdit, newLog base.FileNum, newSeq base.SeqNum) error {
	name := base.MakeFilename(base.FileTypeManifest, num)
	path := filepath.Join(vs.dir, name)
	fail := func(err error) error {
		vs.writeErr = true
		vs.fs.Remove(path)
		vs.fs.Remove(filepath.Join(vs.dir, base.MakeFilename(base.FileTypeTemp, num)))
		return err
	}
	f, err := vs.fs.Create(path)
	if err != nil {
		vs.writeErr = true
		return err
	}
	w := wal.NewWriter(f)
	var nbytes int64
	if snapshot != nil {
		snapshot.SetNextFileNum(base.FileNum(vs.nextFileNum.Load()))
		snapshot.SetLastSeq(newSeq)
		snapshot.SetLogNum(newLog)
		rec := snapshot.Encode(nil)
		if err := w.AddRecord(rec); err != nil {
			f.Close()
			return fail(err)
		}
		nbytes = int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail(err)
	}

	// Point CURRENT at the new manifest via atomic rename.
	tmp := filepath.Join(vs.dir, base.MakeFilename(base.FileTypeTemp, num))
	tf, err := vs.fs.Create(tmp)
	if err != nil {
		f.Close()
		return fail(err)
	}
	if _, err := tf.Write([]byte(name + "\n")); err != nil {
		tf.Close()
		f.Close()
		return fail(err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		f.Close()
		return fail(err)
	}
	tf.Close()
	if err := vs.fs.Rename(tmp, filepath.Join(vs.dir, "CURRENT")); err != nil {
		f.Close()
		return fail(err)
	}

	// Full success: commit the switch.
	if vs.manifestFile != nil {
		vs.manifestFile.Close()
	}
	vs.manifestFile = f
	vs.manifestW = w
	vs.manifestNum = num
	vs.manifestBytes = nbytes
	vs.logNum = newLog
	vs.lastSeq = newSeq
	vs.writeErr = false
	return nil
}

// NewFileNum allocates a fresh file number.
func (vs *VersionSet) NewFileNum() base.FileNum {
	return base.FileNum(vs.nextFileNum.Add(1) - 1)
}

// PeekFileNum returns the next file number without allocating it.
func (vs *VersionSet) PeekFileNum() base.FileNum {
	return base.FileNum(vs.nextFileNum.Load())
}

// LogAndApply persists edit. snapshotFn, when non-nil, is consulted if the
// manifest has grown past the rotation threshold: it must return a snapshot
// edit of the full current state (already including edit's changes) to seed
// the replacement manifest. LogAndApply serializes concurrent callers.
func (vs *VersionSet) LogAndApply(edit *VersionEdit, snapshotFn func() *VersionEdit) error {
	vs.mu.Lock()
	defer vs.mu.Unlock()

	edit.SetNextFileNum(base.FileNum(vs.nextFileNum.Load()))
	// Compute the watermarks the edit implies without publishing them: a
	// watermark that advances before the edit persists would let cleanup
	// delete WALs (or trust sequence numbers) the durable manifest state
	// still needs.
	newLog, newSeq := vs.logNum, vs.lastSeq
	if edit.LogNum != nil {
		newLog = *edit.LogNum
	}
	if edit.LastSeq != nil && *edit.LastSeq > newSeq {
		newSeq = *edit.LastSeq
	}

	if (vs.writeErr || vs.manifestBytes >= rotateThreshold) && snapshotFn != nil {
		// Rotation with a full snapshot: the snapshot already reflects the
		// caller's in-memory state including this edit, so it both compacts
		// history and recovers from a torn tail in the old manifest.
		reason := "size"
		if vs.writeErr {
			reason = "write-error"
		}
		num := vs.NewFileNum()
		err := vs.installManifestLocked(num, snapshotFn(), newLog, newSeq)
		if err == nil && vs.Listener != nil {
			vs.Listener.Notify(obs.Event{
				Kind: obs.EventManifestRotation, Nanos: obs.Monotonic(),
				Level: -1, FileNum: uint64(num), Detail: reason,
			})
		}
		return err
	}
	if vs.writeErr {
		return fmt.Errorf("manifest: previous write failed; rotation with snapshot required")
	}

	rec := edit.Encode(nil)
	if err := vs.manifestW.AddRecord(rec); err != nil {
		vs.writeErr = true
		return err
	}
	vs.manifestBytes += int64(len(rec))
	if err := vs.manifestFile.Sync(); err != nil {
		vs.writeErr = true
		return err
	}
	vs.logNum, vs.lastSeq = newLog, newSeq
	return nil
}

// ManifestFileNum returns the live manifest's file number; older manifests
// can be deleted.
func (vs *VersionSet) ManifestFileNum() base.FileNum {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.manifestNum
}

// Close closes the manifest file.
func (vs *VersionSet) Close() error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.manifestFile != nil {
		return vs.manifestFile.Close()
	}
	return nil
}
