package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pebblesdb/internal/race"
)

// smokeCfg runs each experiment at a tiny scale so the full suite stays
// fast; correctness of shapes is asserted where cheap.
func smokeCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 500_000, StoreScale: 256, Threads: 2}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Registry[name](smokeCfg(&buf)); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", name, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if race.Enabled {
		// The write-amp shape needs a dataset large enough to drive real
		// compaction cascades; under the race detector that workload
		// (instrumented snappy encoding, checksums, skiplist walks) runs
		// an order of magnitude slower and blows through go test's
		// default 10-minute timeout even scaled down 3x. The shape is
		// covered by the un-raced run; -race covers the concurrency.
		t.Skip("write-amp shape workload is too slow under -race")
	}
	// At a moderate scale, PebblesDB must show the lowest write
	// amplification — the headline result.
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 1_000, StoreScale: 128, Threads: 2} // 500k keys, stores scaled 128x
	if err := Fig1WriteAmplification(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	t.Log(out)
	amps := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		var name string
		var io, amp float64
		if n, _ := parseAmpLine(line, &name, &io, &amp); n == 3 {
			amps[name] = amp
		}
	}
	if len(amps) != 4 {
		t.Fatalf("parsed %d stores from output:\n%s", len(amps), out)
	}
	// PebblesDB must clearly beat the baselines that share its exact
	// parameters (the paper's 2.4-3x / 1.6x claims). The RocksDB preset's
	// large L0/memtables absorb a big fraction of a scaled dataset, so it
	// can tie PebblesDB here (documented deviation in EXPERIMENTS.md);
	// only a clear loss to it would be a regression.
	for _, name := range []string{"HyperLevelDB", "LevelDB"} {
		if amps["PebblesDB"] >= amps[name] {
			t.Errorf("PebblesDB write amp %.2f not below %s's %.2f", amps["PebblesDB"], name, amps[name])
		}
	}
	if amps["PebblesDB"] > amps["RocksDB"]*1.25 {
		t.Errorf("PebblesDB write amp %.2f clearly above RocksDB preset's %.2f", amps["PebblesDB"], amps["RocksDB"])
	}
}

func parseAmpLine(line string, name *string, io, amp *float64) (int, error) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, "writeAmp") || strings.HasPrefix(line, "==") {
		return 0, nil
	}
	fields := strings.Fields(line)
	// NAME writeIO X GB writeAmp Y
	if len(fields) != 6 {
		return 0, nil
	}
	*name = fields[0]
	n := 1
	if _, err := fmtSscan(fields[2], io); err == nil {
		n++
	}
	if _, err := fmtSscan(fields[5], amp); err == nil {
		n++
	}
	return n, nil
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
