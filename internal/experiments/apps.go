package experiments

import (
	"fmt"
	"math/rand"

	"pebblesdb"
	"pebblesdb/internal/apps"
	"pebblesdb/internal/btree"
	"pebblesdb/internal/harness"
	"pebblesdb/internal/vfs"
	"pebblesdb/internal/ycsb"
)

// runYCSBSuite loads then runs the full YCSB suite against store, printing
// per-workload throughput. ioStats, if non-nil, is sampled before and
// after to report total write IO.
func runYCSBSuite(cfg Config, label string, store ycsb.Store, recordsA, recordsE, opsEach uint64, report func(workload string, opsPerSec float64)) error {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 4
	}
	r := ycsb.NewRunner(store)

	// Load A, then workloads A-D and F.
	if _, err := r.Load(recordsA, 1024, threads, 1); err != nil {
		return err
	}
	report("LoadA", 0) // placeholder; Load throughput reported by caller if needed
	for _, name := range []string{"A", "B", "C", "D", "F"} {
		res, err := r.Run(ycsb.Workloads[name], ycsb.RunnerOptions{
			RecordCount: recordsA, OpCount: opsEach, Threads: threads, ValueSize: 1024, Seed: 7,
		})
		if err != nil {
			return err
		}
		report(name, res.OpsPerSec)
	}
	// Load E then E, per Table 5.3.
	if _, err := r.Load(recordsE, 1024, threads, 2); err != nil {
		return err
	}
	resE, err := r.Run(ycsb.Workloads["E"], ycsb.RunnerOptions{
		RecordCount: recordsE, OpCount: opsEach / 10, Threads: threads, ValueSize: 1024, Seed: 8,
	})
	if err != nil {
		return err
	}
	report("E", resE.OpsPerSec)
	return nil
}

// Fig55YCSB reproduces Figure 5.5: the full YCSB suite with 4 threads and
// RocksDB parameters across the four stores, plus total write IO. Paper:
// PebblesDB wins write-dominated workloads (Load A, Load E) 1.5-2x,
// matches elsewhere, and writes ~2x less IO than RocksDB.
func Fig55YCSB(cfg Config) error {
	loadN := uint64(cfg.scaled(50_000_000))
	opsEach := uint64(cfg.scaled(10_000_000))
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.5: YCSB suite, load %d records, %d ops/workload ==\n", loadN, opsEach)

	for _, spec := range harness.DefaultStores() {
		o := *spec.Options
		o.MemtableSize = 64 << 20
		o.L0SlowdownTrigger = 20
		o.L0StopTrigger = 24
		harness.Scale(&o, cfg.StoreScale)
		db, err := harness.Open(harness.Spec{Name: spec.Name, Options: &o})
		if err != nil {
			return err
		}
		before := db.Metrics()
		fmt.Fprintf(w, " %s:\n", spec.Name)
		err = runYCSBSuite(cfg, spec.Name, harness.DBAdapter{DB: db}, loadN, loadN, opsEach,
			func(workload string, opsPerSec float64) {
				if opsPerSec > 0 {
					fmt.Fprintf(w, "   %-6s %10.1f KOps/s\n", workload, opsPerSec/1000)
				}
			})
		if err != nil {
			db.Close()
			return err
		}
		db.WaitIdle()
		after := db.Metrics()
		io := after.IO.Sub(before.IO)
		fmt.Fprintf(w, "   %-6s %10.3f GB total write IO\n", "IO", float64(io.TotalWritten())/(1<<30))
		db.Close()
	}
	return nil
}

// Fig56aHyperDex reproduces Figure 5.6a: YCSB against a HyperDex-style
// server (application latency + read-before-write) backed by PebblesDB vs
// HyperLevelDB. Paper: PebblesDB lifts HyperDex throughput up to 59%
// (Load E) while reducing write IO.
func Fig56aHyperDex(cfg Config) error {
	loadN := uint64(cfg.scaled(20_000_000))
	opsEach := uint64(cfg.scaled(10_000_000))
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.6a: HyperDex shim, load %d records ==\n", loadN)

	backends := []harness.Spec{
		{Name: "HyperDex+HyperLevelDB", Options: harness.Scale(tweak16MB(pebblesdb.PresetHyperLevelDB.Options()), cfg.StoreScale)},
		{Name: "HyperDex+PebblesDB", Options: harness.Scale(tweak16MB(pebblesdb.PresetPebblesDB.Options()), cfg.StoreScale)},
	}
	for _, spec := range backends {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		before := db.Metrics()
		server := apps.NewHyperDex(harness.DBAdapter{DB: db})
		fmt.Fprintf(w, " %s:\n", spec.Name)
		err = runYCSBSuite(cfg, spec.Name, server, loadN, loadN*3/2, opsEach,
			func(workload string, opsPerSec float64) {
				if opsPerSec > 0 {
					fmt.Fprintf(w, "   %-6s %10.1f KOps/s\n", workload, opsPerSec/1000)
				}
			})
		if err != nil {
			db.Close()
			return err
		}
		db.WaitIdle()
		io := db.Metrics().IO.Sub(before.IO)
		fmt.Fprintf(w, "   %-6s %10.3f GB total write IO\n", "IO", float64(io.TotalWritten())/(1<<30))
		db.Close()
	}
	return nil
}

// tweak16MB applies the HyperDex default 16 MB memtable (§5.4).
func tweak16MB(o *pebblesdb.Options) *pebblesdb.Options {
	o.MemtableSize = 16 << 20
	return o
}

// Fig56bMongoDB reproduces Figure 5.6b: a MongoDB-style server over three
// storage engines — WiredTiger (the checkpointing B+ tree), RocksDB-style
// leveled LSM, and PebblesDB — with 8 MB cache and 16 MB memtables.
// Paper: both LSMs beat WiredTiger on all workloads; PebblesDB matches
// RocksDB's throughput while writing ~40% less IO (and 4% less than
// WiredTiger).
func Fig56bMongoDB(cfg Config) error {
	loadN := uint64(cfg.scaled(20_000_000))
	opsEach := uint64(cfg.scaled(10_000_000))
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.6b: MongoDB shim, load %d records ==\n", loadN)

	type backend struct {
		name  string
		open  func() (ycsb.Store, func() (float64, error), error) // store, close->writeGB
	}
	mongoOpts := func(p pebblesdb.Preset) *pebblesdb.Options {
		o := p.Options()
		o.MemtableSize = 16 << 20
		o.BlockCacheSize = 8 << 20
		return harness.Scale(o, cfg.StoreScale)
	}
	backends := []backend{
		{name: "MongoDB+WiredTiger", open: func() (ycsb.Store, func() (float64, error), error) {
			fs := vfs.NewCounting(vfs.NewMem())
			bt, err := btree.Open(fs, "wt", btree.Options{CheckpointEvery: 16 << 20})
			if err != nil {
				return nil, nil, err
			}
			return bt, func() (float64, error) {
				err := bt.Close()
				return float64(fs.Stats().TotalWritten()) / (1 << 30), err
			}, nil
		}},
		{name: "MongoDB+RocksDB", open: func() (ycsb.Store, func() (float64, error), error) {
			db, err := harness.Open(harness.Spec{Name: "RocksDB", Options: mongoOpts(pebblesdb.PresetRocksDB)})
			if err != nil {
				return nil, nil, err
			}
			return harness.DBAdapter{DB: db}, func() (float64, error) {
				db.WaitIdle()
				gb := float64(db.Metrics().IO.TotalWritten()) / (1 << 30)
				return gb, db.Close()
			}, nil
		}},
		{name: "MongoDB+PebblesDB", open: func() (ycsb.Store, func() (float64, error), error) {
			db, err := harness.Open(harness.Spec{Name: "PebblesDB", Options: mongoOpts(pebblesdb.PresetPebblesDB)})
			if err != nil {
				return nil, nil, err
			}
			return harness.DBAdapter{DB: db}, func() (float64, error) {
				db.WaitIdle()
				gb := float64(db.Metrics().IO.TotalWritten()) / (1 << 30)
				return gb, db.Close()
			}, nil
		}},
	}

	for _, b := range backends {
		store, finish, err := b.open()
		if err != nil {
			return err
		}
		server := apps.NewMongoDB(store)
		fmt.Fprintf(w, " %s:\n", b.name)
		err = runYCSBSuite(cfg, b.name, server, loadN, loadN*3/2, opsEach,
			func(workload string, opsPerSec float64) {
				if opsPerSec > 0 {
					fmt.Fprintf(w, "   %-6s %10.1f KOps/s\n", workload, opsPerSec/1000)
				}
			})
		if err != nil {
			finish()
			return err
		}
		gb, err := finish()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "   %-6s %10.3f GB total write IO\n", "IO", gb)
	}
	return nil
}

// Table54Memory reproduces Table 5.4: memory consumed by the stores for
// write, read and seek workloads. Paper (MB): writes Hyper 159 / RocksDB
// 896 / Pebbles 434; reads 154/36/500; seeks 111/34/430 — PebblesDB pays
// for resident sstable bloom filters.
func Table54Memory(cfg Config) error {
	n := cfg.scaled(100_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Table 5.4: resident store memory after %d inserts + reads + seeks ==\n", n)
	for _, spec := range cfg.stores() {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		if err := harness.FillRandom(db, n, n, 1024, 1); err != nil {
			db.Close()
			return err
		}
		db.WaitIdle()
		if _, err := harness.ReadRandom(db, n/10, n, 2); err != nil {
			db.Close()
			return err
		}
		if err := harness.SeekRandom(db, n/100, n, 0, 3); err != nil {
			db.Close()
			return err
		}
		m := db.Metrics()
		resident := m.MemtableBytes + m.Cache.FilterBytes + m.Cache.IndexBytes
		fmt.Fprintf(w, "  %-14s memtable %6.2f MB  bloom filters %6.2f MB  index blocks %6.2f MB  total %6.2f MB (open tables %d)\n",
			spec.Name,
			float64(m.MemtableBytes)/(1<<20),
			float64(m.Cache.FilterBytes)/(1<<20),
			float64(m.Cache.IndexBytes)/(1<<20),
			float64(resident)/(1<<20),
			m.Cache.OpenTables)
		db.Close()
	}
	return nil
}

// Ablations reproduces the §5.2 "Impact of Different Optimizations"
// paragraph: range-query throughput without any optimization, with
// parallel seeks only, with seek-based compaction only; and read
// throughput with and without sstable bloom filters. Paper: range queries
// -66% bare, -48% parallel-seeks-only, -7% seek-compaction-only; bloom
// filters improve reads 63%.
func Ablations(cfg Config) error {
	n := cfg.scaled(50_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== §5.2 ablations, %d keys ==\n", n)

	variant := func(name string, mut func(*pebblesdb.Options)) (seek harness.Result, read harness.Result, err error) {
		o := pebblesdb.PresetPebblesDB.Options()
		mut(o)
		harness.Scale(o, cfg.StoreScale)
		db, err := harness.Open(harness.Spec{Name: name, Options: o})
		if err != nil {
			return seek, read, err
		}
		defer db.Close()
		if err = harness.FillRandom(db, n, n, 1024, 1); err != nil {
			return seek, read, err
		}
		if err = db.WaitIdle(); err != nil {
			return seek, read, err
		}
		nOps := n / 10
		seek, err = harness.Measure(db, name, "seeks", int64(nOps), func() error {
			return harness.SeekRandom(db, nOps, n, 0, 2)
		})
		if err != nil {
			return seek, read, err
		}
		read, err = harness.Measure(db, name, "reads", int64(nOps*2), func() error {
			_, err := harness.ReadRandom(db, nOps*2, n, 3)
			return err
		})
		return seek, read, err
	}

	type row struct {
		name string
		mut  func(*pebblesdb.Options)
	}
	rows := []row{
		{"full PebblesDB", func(o *pebblesdb.Options) {}},
		{"no optimizations", func(o *pebblesdb.Options) {
			o.ParallelSeeks = false
			o.SeekCompactionThreshold = -1
			o.SizeRatioPct = -1
		}},
		{"parallel seeks only", func(o *pebblesdb.Options) {
			o.SeekCompactionThreshold = -1
			o.SizeRatioPct = -1
		}},
		{"seek compaction only", func(o *pebblesdb.Options) {
			o.ParallelSeeks = false
		}},
		{"no bloom filters", func(o *pebblesdb.Options) {
			o.BloomBitsPerKey = -1
		}},
	}
	for _, r := range rows {
		seek, read, err := variant(r.name, r.mut)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-22s seeks %8.1f KOps/s  reads %8.1f KOps/s\n",
			r.name, seek.KOpsPerSec, read.KOpsPerSec)
	}
	return nil
}

// BTreeWriteAmplification reproduces the §2.2 claim that B+-tree stores
// (KyotoCabinet) suffer extreme write amplification under random inserts
// (paper: 100M inserts wrote 829 GB, 61x).
func BTreeWriteAmplification(cfg Config) error {
	n := cfg.scaled(100_000_000)
	w := cfg.out()
	fs := vfs.NewCounting(vfs.NewMem())
	bt, err := btree.Open(fs, "kc", btree.Options{})
	if err != nil {
		return err
	}
	val := make([]byte, 64)
	key := make([]byte, 0, 16)
	rng := newRand(1)
	for i := 0; i < n; i++ {
		rng.Read(val)
		key = harness.KeyAt(key, uint64(rng.Intn(n*4)))
		if err := bt.Put(key, val); err != nil {
			return err
		}
	}
	if err := bt.Close(); err != nil {
		return err
	}
	m := bt.Metrics()
	fmt.Fprintf(w, "== §2.2: B+-tree (KyotoCabinet-style) write amplification, %d random inserts ==\n", n)
	fmt.Fprintf(w, "  user %.3f GB, storage writes %.3f GB, write amp %.1fx (pages %d, checkpoints %d)\n",
		float64(m.UserBytes)/(1<<30),
		float64(m.JournalBytes+m.PageBytes)/(1<<30),
		m.WriteAmplification(), m.Pages, m.Checkpoints)
	return nil
}

// newRand returns a seeded *rand.Rand (kept here so apps.go owns its own
// randomness helper without widening the harness API).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
