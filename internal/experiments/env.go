package experiments

import (
	"fmt"

	"pebblesdb"
	"pebblesdb/internal/harness"
)

// Fig52aAging reproduces Figure 5.2a: performance after key-value-store
// aging (4 threads each inserting, deleting and updating). The paper also
// ages the file system (ext4 fill/delete cycles); that part cannot be
// reproduced on a memory filesystem and is documented as a substitution in
// DESIGN.md. Paper: PebblesDB's write speedup drops from 2.7x to 2x and
// reads from +20% to +8%; range queries degrade to -40%.
func Fig52aAging(cfg Config) error {
	n := cfg.scaled(50_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.2a: aged key-value store (insert %d, delete %d, update %d) ==\n",
		n, n*2/5, n*2/5)
	var results []harness.Result
	for _, spec := range cfg.stores() {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		if err := harness.Age(db, n, n*2/5, n*2/5, n, 1024, 1); err != nil {
			db.Close()
			return err
		}
		if err := db.WaitIdle(); err != nil {
			db.Close()
			return err
		}

		nOps := n / 5
		res, err := harness.Measure(db, spec.Name, "aged-write", int64(nOps), func() error {
			if err := harness.FillRandom(db, nOps, n, 1024, 2); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "aged-read", int64(nOps), func() error {
			_, err := harness.ReadRandom(db, nOps, n, 3)
			return err
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "aged-seek", int64(nOps/10), func() error {
			return harness.SeekRandom(db, nOps/10, n, 0, 4)
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}

// Fig52bLowMemory reproduces Figure 5.2b: available memory is a small
// fraction of the dataset (the paper boots with 4 GB RAM against a 65 GB
// dataset; here the block/table caches are shrunk to ~6% of the dataset).
// Paper: PebblesDB keeps +64% writes and +63% reads over HyperLevelDB;
// range queries suffer ~40%.
func Fig52bLowMemory(cfg Config) error {
	n := cfg.scaled(100_000_000)
	w := cfg.out()
	datasetBytes := int64(n) * (16 + 1024)
	cache := datasetBytes * 6 / 100
	fmt.Fprintf(w, "== Figure 5.2b: low memory, %d keys, caches limited to %d MB (6%% of dataset) ==\n",
		n, cache>>20)
	var results []harness.Result
	for _, spec := range harness.DefaultStores() {
		o := *spec.Options
		// Paper: 64 MB memtable + large level 0 for all stores here.
		o.MemtableSize = 64 << 20
		o.L0SlowdownTrigger = 20
		o.L0StopTrigger = 24
		harness.Scale(&o, cfg.StoreScale)
		o.BlockCacheSize = cache
		o.TableCacheSize = 100
		sp := harness.Spec{Name: spec.Name, Options: &o}
		db, err := harness.Open(sp)
		if err != nil {
			return err
		}
		res, err := harness.Measure(db, spec.Name, "lowmem-write", int64(n), func() error {
			if err := harness.FillRandom(db, n, n, 1024, 1); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		nRead := n / 10
		res, err = harness.Measure(db, spec.Name, "lowmem-read", int64(nRead), func() error {
			_, err := harness.ReadRandom(db, nRead, n, 2)
			return err
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "lowmem-seek", int64(nRead/10), func() error {
			return harness.SeekRandom(db, nRead/10, n, 0, 3)
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}

// Fig53SpaceAmplification reproduces Figure 5.3: storage used after (a)
// unique-key inserts and (b) inserting 5M keys then updating each 10
// times. Paper: unique-key space is within 2% across stores; with
// duplicates PebblesDB uses 7.9 GB vs RocksDB's 7.1 GB (delayed merging).
func Fig53SpaceAmplification(cfg Config) error {
	n := cfg.scaled(50_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.3: space amplification ==\n")

	report := func(tag string, fill func(db *pebblesdb.DB) error, userBytes int64) error {
		fmt.Fprintf(w, " %s (logical data %.2f GB):\n", tag, float64(userBytes)/(1<<30))
		for _, spec := range cfg.stores() {
			db, err := harness.Open(spec)
			if err != nil {
				return err
			}
			if err := fill(db); err != nil {
				db.Close()
				return err
			}
			if err := db.WaitIdle(); err != nil {
				db.Close()
				return err
			}
			m := db.Metrics()
			var live int64
			for _, b := range m.Tree.LevelBytes {
				live += b
			}
			db.Close()
			fmt.Fprintf(w, "  %-14s live sstable bytes %8.3f GB  space amp %5.2f\n",
				spec.Name, float64(live)/(1<<30), float64(live)/float64(userBytes))
		}
		return nil
	}

	userBytes := int64(n) * (16 + 1024)
	if err := report("unique keys", func(db *pebblesdb.DB) error {
		return harness.FillSeqUnique(db, n, 1024, 1)
	}, userBytes); err != nil {
		return err
	}

	nDup := n / 10
	if err := report("10x duplicate updates", func(db *pebblesdb.DB) error {
		for round := 0; round < 10; round++ {
			if err := harness.FillRandom(db, nDup, nDup, 1024, int64(round)); err != nil {
				return err
			}
		}
		return nil
	}, int64(nDup)*10*(16+1024)); err != nil {
		return err
	}
	return nil
}

// Fig54EmptyGuards reproduces Figure 5.4: twenty iterations of insert /
// read / delete-all over shifting key ranges, so empty guards accumulate
// (the paper reports 9000 empty guards by the final iteration with no
// throughput degradation).
func Fig54EmptyGuards(cfg Config) error {
	n := cfg.scaled(20_000_000)
	iterations := 8
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.4: time-series pattern, %d iterations of %d keys ==\n", iterations, n)

	spec := cfg.stores()[0] // PebblesDB
	db, err := harness.Open(spec)
	if err != nil {
		return err
	}
	defer db.Close()

	var firstRead float64
	for it := 0; it < iterations; it++ {
		lo := uint64(it) * uint64(n)
		if err := harness.FillRange(db, lo, lo+uint64(n), 512, int64(it)); err != nil {
			return err
		}
		db.WaitIdle()
		res, err := harness.Measure(db, spec.Name, fmt.Sprintf("iter%d-read", it), int64(n/4), func() error {
			_, err := harness.ReadRange(db, lo, lo+uint64(n), n/4, int64(it))
			return err
		})
		if err != nil {
			return err
		}
		if it == 0 {
			firstRead = res.KOpsPerSec
		}
		empty := db.Metrics().Tree.EmptyGuards
		fmt.Fprintf(w, "  iter %2d: read %8.1f KOps/s (%.2fx of first)  empty guards %d\n",
			it, res.KOpsPerSec, res.KOpsPerSec/firstRead, empty)
		if err := harness.DeleteRange(db, lo, lo+uint64(n)); err != nil {
			return err
		}
		db.WaitIdle()
	}
	return nil
}
