// Package experiments regenerates every table and figure in the paper's
// evaluation (chapter 5, plus Figure 1.1 and the §2.2 B+-tree claim). Each
// experiment is a function over a Config whose Scale divides the paper's
// key counts; EXPERIMENTS.md records the scale used for the published
// numbers in this repository. The functions are shared by bench_test.go
// and cmd/experiments.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"pebblesdb/internal/harness"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the human-readable report.
	Out io.Writer
	// Scale divides the paper's operation counts (e.g. 500 turns Figure
	// 1.1's 500M inserts into 1M). Minimum 1.
	Scale int
	// StoreScale divides the stores' size parameters (memtables, level
	// budgets, file-size targets, caches) so small datasets still flow
	// through as many levels and compactions as the paper's full-size
	// runs. Preset ratios are preserved. 0 or 1 keeps paper parameters.
	StoreScale int
	// Threads for multi-threaded workloads (paper: 4).
	Threads int
}

// stores returns the paper's four store specs with StoreScale applied.
func (c Config) stores() []harness.Spec {
	specs := harness.DefaultStores()
	for i := range specs {
		harness.Scale(specs[i].Options, c.StoreScale)
	}
	return specs
}

func (c Config) scaled(paperCount int) int {
	s := c.Scale
	if s < 1 {
		s = 1
	}
	n := paperCount / s
	if n < 1000 {
		n = 1000
	}
	return n
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Registry maps experiment ids (figure/table numbers) to runners, for
// cmd/experiments.
var Registry = map[string]func(Config) error{
	"fig1.1":  Fig1WriteAmplification,
	"tab5.1":  Table51SSTableSizes,
	"tab5.2":  Table52UpdateThroughput,
	"fig5.1b": Fig51bMicrobenchmarks,
	"fig5.1c": Fig51cMultithreaded,
	"fig5.1d": Fig51dCached,
	"fig5.1e": Fig51eSmallValues,
	"fig5.2a": Fig52aAging,
	"fig5.2b": Fig52bLowMemory,
	"fig5.3":  Fig53SpaceAmplification,
	"fig5.4":  Fig54EmptyGuards,
	"fig5.5":  Fig55YCSB,
	"fig5.6a": Fig56aHyperDex,
	"fig5.6b": Fig56bMongoDB,
	"tab5.4":  Table54Memory,
	"ablation": Ablations,
	"btree":   BTreeWriteAmplification,
}

// Names returns the registry keys in a stable order.
func Names() []string {
	var names []string
	for k := range Registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Fig1WriteAmplification reproduces Figure 1.1 / Figure 5.1a: total write
// IO and write amplification for random inserts (16 B keys, 128 B values)
// across the four stores. Paper (500M keys): PebblesDB ~2.5x lower write
// amplification than RocksDB/HyperLevelDB, ~1.6x lower than LevelDB.
func Fig1WriteAmplification(cfg Config) error {
	n := cfg.scaled(500_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 1.1 / 5.1a: write amplification, %d random inserts (16B/128B) ==\n", n)
	var results []harness.Result
	for _, spec := range cfg.stores() {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		res, err := harness.Measure(db, spec.Name, "write-amp", int64(n), func() error {
			if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Fprintf(w, "  %-14s writeIO %8.3f GB  writeAmp %6.2f\n", spec.Name, res.WriteGB, res.WriteAmp)
	}
	base := results[0]
	for _, r := range results[1:] {
		fmt.Fprintf(w, "  %s/%s write-amp ratio: %.2fx\n", r.Store, base.Store, r.WriteAmp/base.WriteAmp)
	}
	return nil
}

// Table51SSTableSizes reproduces Table 5.1: the sstable size distribution
// for PebblesDB vs HyperLevelDB after a 50M-key load (scaled). Paper:
// PebblesDB has fewer, larger tables (mean 17.2 MB vs 13.3 MB; p95 68 MB
// vs 16.6 MB).
func Table51SSTableSizes(cfg Config) error {
	n := cfg.scaled(50_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Table 5.1: sstable size distribution after %d inserts (16B/1KB) ==\n", n)
	for _, spec := range cfg.stores()[:2] { // PebblesDB, HyperLevelDB
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		if err := harness.FillRandom(db, n, n, 1024, 1); err != nil {
			db.Close()
			return err
		}
		if err := db.WaitIdle(); err != nil {
			db.Close()
			return err
		}
		d := harness.SSTableSizes(db)
		db.Close()
		fmt.Fprintf(w, "  %-14s tables %5d  mean %7.2f MB  median %7.2f  p90 %7.2f  p95 %7.2f\n",
			spec.Name, d.Count, d.MeanMB, d.MedianMB, d.P90MB, d.P95MB)
	}
	return nil
}

// Table52UpdateThroughput reproduces Table 5.2: throughput for inserting
// 50M pairs then updating them twice. Paper (KOps/s): PebblesDB 56/48/43,
// HyperLevelDB 40/25/20, LevelDB 22/12/12, RocksDB 14/8/7 — PebblesDB
// retains ~75% of its insert throughput while others drop to ~50%.
func Table52UpdateThroughput(cfg Config) error {
	n := cfg.scaled(50_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Table 5.2: insert + 2 update rounds of %d keys (16B/1KB) ==\n", n)
	for _, spec := range cfg.stores() {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		var rows []float64
		for round := 0; round < 3; round++ {
			res, err := harness.Measure(db, spec.Name, fmt.Sprintf("round%d", round), int64(n), func() error {
				if err := harness.FillRandom(db, n, n, 1024, int64(round+1)); err != nil {
					return err
				}
				return db.WaitIdle()
			})
			if err != nil {
				db.Close()
				return err
			}
			rows = append(rows, res.KOpsPerSec)
		}
		db.Close()
		fmt.Fprintf(w, "  %-14s insert %8.1f  update1 %8.1f  update2 %8.1f KOps/s (retention %4.0f%%)\n",
			spec.Name, rows[0], rows[1], rows[2], 100*rows[2]/rows[0])
	}
	return nil
}
