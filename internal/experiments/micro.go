package experiments

import (
	"fmt"

	"pebblesdb"
	"pebblesdb/internal/harness"
)

// Fig51bMicrobenchmarks reproduces Figure 5.1b: single-threaded db_bench
// workloads — sequential writes, random writes, random reads, random
// seeks, deletes (16 B keys, 1 KB values). Paper: PebblesDB wins random
// writes 2.7x over HyperLevelDB but loses sequential writes 3x (no trivial
// moves); reads comparable; seeks ~30% slower on a compacted store.
func Fig51bMicrobenchmarks(cfg Config) error {
	nWrite := cfg.scaled(50_000_000)
	nRead := cfg.scaled(10_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.1b: single-threaded micro-benchmarks (%d writes, %d reads/seeks) ==\n", nWrite, nRead)
	var results []harness.Result

	for _, spec := range cfg.stores() {
		// fillseq on a fresh store.
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		res, err := harness.Measure(db, spec.Name, "fillseq", int64(nWrite), func() error {
			if err := harness.FillSeq(db, nWrite, 1024, 1); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)

		// fillrandom on a fresh store; reads and seeks run on its output.
		db, err = harness.Open(spec)
		if err != nil {
			return err
		}
		res, err = harness.Measure(db, spec.Name, "fillrandom", int64(nWrite), func() error {
			if err := harness.FillRandom(db, nWrite, nWrite, 1024, 2); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		// Paper: reads/seeks are measured after giving the store time to
		// compact.
		if err := db.CompactAll(); err != nil {
			db.Close()
			return err
		}
		res, err = harness.Measure(db, spec.Name, "readrandom", int64(nRead), func() error {
			_, err := harness.ReadRandom(db, nRead, nWrite, 3)
			return err
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		nSeek := nRead / 10
		res, err = harness.Measure(db, spec.Name, "seekrandom", int64(nSeek), func() error {
			return harness.SeekRandom(db, nSeek, nWrite, 0, 4)
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "deleterandom", int64(nRead), func() error {
			if err := harness.DeleteRandom(db, nRead, nWrite, 5); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}

// Fig51cMultithreaded reproduces Figure 5.1c: 4-thread writes, reads, and
// a mixed 2r+2w workload under the RocksDB parameter set (64 MB memtable,
// large level 0). Paper: PebblesDB achieves 3.3x RocksDB's multithreaded
// write throughput and wins the mixed workload.
func Fig51cMultithreaded(cfg Config) error {
	n := cfg.scaled(10_000_000)
	threads := cfg.Threads
	if threads <= 0 {
		threads = 4
	}
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.1c: %d-thread workloads, %d ops each (RocksDB params) ==\n", threads, n)
	var results []harness.Result

	for _, spec := range harness.DefaultStores() {
		// The paper runs this experiment with the RocksDB configuration on
		// every store.
		o := *spec.Options
		o.MemtableSize = 64 << 20
		o.L0SlowdownTrigger = 20
		o.L0StopTrigger = 24
		harness.Scale(&o, cfg.StoreScale)
		sp := harness.Spec{Name: spec.Name, Options: &o}

		db, err := harness.Open(sp)
		if err != nil {
			return err
		}
		per := n / threads
		res, err := harness.Measure(db, spec.Name, "mt-write", int64(per*threads), func() error {
			return harness.Concurrent(threads, func(th int) error {
				return harness.FillRandom(db, per, n, 1024, int64(100+th))
			})
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)
		db.WaitIdle()

		res, err = harness.Measure(db, spec.Name, "mt-read", int64(per*threads), func() error {
			return harness.Concurrent(threads, func(th int) error {
				_, err := harness.ReadRandom(db, per, n, int64(200+th))
				return err
			})
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "mt-mixed", int64(per*threads), func() error {
			return harness.Concurrent(threads, func(th int) error {
				if th%2 == 0 {
					_, err := harness.ReadRandom(db, per, n, int64(300+th))
					return err
				}
				return harness.FillRandom(db, per, n, 1024, int64(300+th))
			})
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}

// Fig51dCached reproduces Figure 5.1d: a dataset that fits in memory (1M x
// 1KB in the paper), where FLSM's extra per-guard work is visible; it also
// runs PebblesDB-1 (max_sstables_per_guard=1), which recovers most of the
// read/seek gap (§3.5).
func Fig51dCached(cfg Config) error {
	n := cfg.scaled(1_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.1d: fully-cached dataset, %d keys (16B/1KB) ==\n", n)
	specs := []harness.Spec{
		{Name: "PebblesDB", Options: pebblesdb.PresetPebblesDB.Options()},
		{Name: "HyperLevelDB", Options: pebblesdb.PresetHyperLevelDB.Options()},
		{Name: "PebblesDB-1", Options: pebblesdb.PresetPebblesDB1.Options()},
	}
	var results []harness.Result
	for _, spec := range specs {
		// Large caches: everything stays resident.
		harness.Scale(spec.Options, cfg.StoreScale)
		spec.Options.BlockCacheSize = 2 << 30
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		res, err := harness.Measure(db, spec.Name, "fillrandom", int64(n), func() error {
			if err := harness.FillRandom(db, n, n, 1024, 1); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		res, err = harness.Measure(db, spec.Name, "readrandom", int64(n), func() error {
			_, err := harness.ReadRandom(db, n, n, 2)
			return err
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		nSeek := n / 10
		res, err = harness.Measure(db, spec.Name, "seekrandom", int64(nSeek), func() error {
			return harness.SeekRandom(db, nSeek, n, 0, 3)
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}

// Fig51eSmallValues reproduces Figure 5.1e: 300M (scaled) small key-value
// pairs (16 B keys, 128 B values). Paper: PebblesDB still wins writes with
// equivalent reads and seeks.
func Fig51eSmallValues(cfg Config) error {
	n := cfg.scaled(300_000_000)
	w := cfg.out()
	fmt.Fprintf(w, "== Figure 5.1e: small pairs, %d keys (16B/128B) ==\n", n)
	var results []harness.Result
	for _, spec := range cfg.stores() {
		db, err := harness.Open(spec)
		if err != nil {
			return err
		}
		res, err := harness.Measure(db, spec.Name, "fillrandom-small", int64(n), func() error {
			if err := harness.FillRandom(db, n, n, 128, 1); err != nil {
				return err
			}
			return db.WaitIdle()
		})
		if err != nil {
			db.Close()
			return err
		}
		results = append(results, res)

		nRead := n / 5
		res, err = harness.Measure(db, spec.Name, "readrandom-small", int64(nRead), func() error {
			_, err := harness.ReadRandom(db, nRead, n, 2)
			return err
		})
		db.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	harness.Table(w, results, "HyperLevelDB", true)
	return nil
}
