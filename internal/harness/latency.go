package harness

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the histogram size: 64 octaves x 4 sub-buckets gives
// ~19% resolution over the full nanosecond range with a fixed footprint.
const latencyBuckets = 64 * 4

// LatencyRecorder is a concurrency-safe log-scale latency histogram.
// Workloads record per-operation durations into it; percentiles come out
// with bucket-level (~19%) resolution, which is plenty for p50/p99-style
// reporting without per-op allocation or locking.
type LatencyRecorder struct {
	buckets [latencyBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a duration to its histogram bucket: the exponent (bit
// length) picks the octave, the top two mantissa bits the sub-bucket.
func bucketOf(d time.Duration) int {
	ns := uint64(d)
	if ns == 0 {
		return 0
	}
	exp := bits.Len64(ns) - 1 // 0..63
	var sub uint64
	if exp >= 2 {
		sub = (ns >> (uint(exp) - 2)) & 3
	}
	return exp<<2 | int(sub)
}

// bucketUpper returns the inclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	exp, sub := uint(i>>2), uint64(i&3)
	if exp < 2 {
		return int64(1) << (exp + 1)
	}
	// Upper edge of the sub-bucket: (4+sub+1) * 2^(exp-2) - 1.
	return int64((4+sub+1)<<(exp-2)) - 1
}

// Start begins timing one operation; it is nil-safe (a nil recorder costs
// nothing). Pair with Done:
//
//	start := rec.Start()
//	... the operation ...
//	rec.Done(start)
func (r *LatencyRecorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Done records the duration since start; nil-safe like Start.
func (r *LatencyRecorder) Done(start time.Time) {
	if r == nil {
		return
	}
	r.Record(time.Since(start))
}

// Record adds one operation's duration.
func (r *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.buckets[bucketOf(d)].Add(1)
	r.count.Add(1)
	r.sum.Add(int64(d))
	for {
		cur := r.max.Load()
		if int64(d) <= cur || r.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded operations.
func (r *LatencyRecorder) Count() int64 { return r.count.Load() }

// Mean returns the mean recorded latency.
func (r *LatencyRecorder) Mean() time.Duration {
	n := r.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(r.sum.Load() / n)
}

// Max returns the largest recorded latency.
func (r *LatencyRecorder) Max() time.Duration { return time.Duration(r.max.Load()) }

// Percentile returns the latency at quantile p in [0, 1], to bucket
// resolution. Concurrent Records skew the result slightly; snapshot after
// the workload for exact numbers.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	total := r.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < latencyBuckets; i++ {
		seen += r.buckets[i].Load()
		if seen > rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return r.Max()
}

// rec returns the optional recorder from a variadic tail (the workload
// functions take `recs ...*LatencyRecorder` so existing call sites stay
// source-compatible); nil means don't record.
func recOf(recs []*LatencyRecorder) *LatencyRecorder {
	if len(recs) > 0 {
		return recs[0]
	}
	return nil
}
