package harness

import (
	"bytes"
	"strings"
	"testing"

	"pebblesdb"
)

func smallSpec(p pebblesdb.Preset, name string) Spec {
	o := p.Options()
	Scale(o, 64) // shrink memtables/levels so tiny datasets still compact
	return Spec{Name: name, Options: o}
}

func TestOpenAndFill(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetPebblesDB, "PebblesDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := FillRandom(db, 5000, 100000, 128, 1); err != nil {
		t.Fatal(err)
	}
	hits, err := ReadRandom(db, 1000, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("no read hits after fill")
	}
}

func TestMeasureCapturesIOAndWriteAmp(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetPebblesDB, "PebblesDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := Measure(db, "PebblesDB", "fillrandom", 5000, func() error {
		if err := FillRandom(db, 5000, 100000, 128, 1); err != nil {
			return err
		}
		return db.WaitIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KOpsPerSec <= 0 || res.WriteGB <= 0 || res.WriteAmp <= 0 {
		t.Fatalf("measurement incomplete: %+v", res)
	}
	if res.WriteAmp < 1 {
		t.Fatalf("write amp below 1 is impossible: %+v", res)
	}
}

func TestSeekAndDeleteWorkloads(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetHyperLevelDB, "HyperLevelDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := FillSeq(db, 3000, 128, 1); err != nil {
		t.Fatal(err)
	}
	if err := SeekRandom(db, 200, 3000, 10, 2); err != nil {
		t.Fatal(err)
	}
	if err := DeleteRandom(db, 500, 3000, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAgeChurnsStore(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetPebblesDB, "PebblesDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := Age(db, 2000, 800, 800, 50000, 64, 1); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Writes == 0 {
		t.Fatal("aging wrote nothing")
	}
}

func TestSSTableSizesDistribution(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetPebblesDB, "PebblesDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := FillRandom(db, 8000, 100000, 256, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	d := SSTableSizes(db)
	if d.Count == 0 || d.MeanMB <= 0 {
		t.Fatalf("distribution empty: %+v", d)
	}
	if d.P95MB < d.MedianMB {
		t.Fatalf("p95 below median: %+v", d)
	}
}

func TestTableRendersRelative(t *testing.T) {
	results := []Result{
		{Store: "PebblesDB", Workload: "writes", KOpsPerSec: 270},
		{Store: "HyperLevelDB", Workload: "writes", KOpsPerSec: 100},
	}
	var buf bytes.Buffer
	Table(&buf, results, "HyperLevelDB", true)
	out := buf.String()
	if !strings.Contains(out, "2.70x") {
		t.Fatalf("relative value missing:\n%s", out)
	}
}

func TestDBAdapterScan(t *testing.T) {
	db, err := Open(smallSpec(pebblesdb.PresetPebblesDB, "PebblesDB"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a := DBAdapter{DB: db}
	for i := 0; i < 100; i++ {
		a.Put(KeyAt(nil, uint64(i)), []byte("v"))
	}
	n, err := a.Scan(KeyAt(nil, 50), nil, 20)
	if err != nil || n != 20 {
		t.Fatalf("scan: %d %v", n, err)
	}
	n, _ = a.Scan(KeyAt(nil, 95), nil, 20)
	if n != 5 {
		t.Fatalf("tail scan: %d", n)
	}
}
