package harness

import (
	"testing"

	"pebblesdb/internal/compress"
)

func TestValueSourceOversizedValuesStayCompressible(t *testing.T) {
	for _, size := range []int{64, 4096, 1 << 20, 2 << 20, 3<<20 + 17} {
		vs := NewValueSource(size, CompressibleFraction, 42)
		v1 := append([]byte(nil), vs.Next()...)
		v2 := vs.Next()
		if len(v1) != size || len(v2) != size {
			t.Fatalf("size %d: got %d/%d", size, len(v1), len(v2))
		}
		// No zero-padding tail: the pool must be real generated content.
		zeros := 0
		for _, b := range v1 {
			if b == 0 {
				zeros++
			}
		}
		if zeros > 0 {
			t.Fatalf("size %d: %d zero bytes leaked into the value", size, zeros)
		}
		enc := compress.Encode(nil, v1)
		ratio := float64(len(enc)) / float64(len(v1))
		if size >= 4096 && (ratio < 0.3 || ratio > 0.8) {
			t.Fatalf("size %d: snappy ratio %.3f outside semi-compressible band", size, ratio)
		}
	}
}
