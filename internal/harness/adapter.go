package harness

import (
	"pebblesdb"
	"pebblesdb/internal/ycsb"
)

// DBAdapter exposes a pebblesdb.DB through the ycsb.Store interface.
type DBAdapter struct {
	DB *pebblesdb.DB
}

// Put implements ycsb.Store.
func (a DBAdapter) Put(key, value []byte) error { return a.DB.Put(key, value) }

// Get implements ycsb.Store.
func (a DBAdapter) Get(key []byte) ([]byte, bool, error) { return a.DB.Get(key, nil) }

// Scan implements ycsb.Store: a seek followed by next()s (§2.1). A non-nil
// end becomes the iterator's upper bound, so the store prunes guards and
// sstables past it before any IO.
func (a DBAdapter) Scan(start, end []byte, count int) (int, error) {
	var opts *pebblesdb.IterOptions
	if end != nil {
		opts = &pebblesdb.IterOptions{UpperBound: end}
	}
	it, err := a.DB.NewIter(opts)
	if err != nil {
		return 0, err
	}
	n := 0
	for it.SeekGE(start); it.Valid() && n < count; it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		return n, err
	}
	return n, nil
}

var _ ycsb.Store = DBAdapter{}
