// Package harness drives the paper's experiments: db_bench-style
// micro-workloads (§5.2), store presets with per-run in-memory filesystems,
// IO/write-amplification accounting, and paper-style relative reporting.
// Every table and figure in EXPERIMENTS.md is regenerated through this
// package, either from the root bench_test.go or cmd/experiments.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pebblesdb"
	"pebblesdb/internal/vfs"
)

// Spec names a store configuration under test.
type Spec struct {
	// Name is the display name used in tables ("PebblesDB", ...).
	Name string
	// Options is the full configuration; each Open gets a fresh private
	// in-memory filesystem unless one is already set.
	Options *pebblesdb.Options
}

// DefaultStores returns the four stores the paper compares (§5.1), in the
// order its figures list them.
func DefaultStores() []Spec {
	return []Spec{
		{Name: "PebblesDB", Options: pebblesdb.PresetPebblesDB.Options()},
		{Name: "HyperLevelDB", Options: pebblesdb.PresetHyperLevelDB.Options()},
		{Name: "LevelDB", Options: pebblesdb.PresetLevelDB.Options()},
		{Name: "RocksDB", Options: pebblesdb.PresetRocksDB.Options()},
	}
}

// ParseBytes parses a human byte size like "512MiB", "4gb" or "1048576"
// (suffixes are powers of two either way). CLI flags in cmd/ share it.
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	lower := strings.ToLower(s)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			s = s[:len(s)-len(u.suffix)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// Scale shrinks the stores' size parameters so that scaled-down datasets
// exercise the same number of levels and compactions the paper's full-size
// runs do. factor=1 keeps the paper's parameters. Ratios between the
// parameters (and therefore between presets) are preserved.
func Scale(o *pebblesdb.Options, factor int) *pebblesdb.Options {
	if factor <= 1 {
		return o
	}
	div := func(v int) int {
		if v/factor < 1 {
			return 1
		}
		return v / factor
	}
	o.MemtableSize = div(o.MemtableSize)
	o.LevelBaseBytes = int64(div(int(o.LevelBaseBytes)))
	o.TargetFileSize = int64(div(int(o.TargetFileSize)))
	if o.BlockCacheSize == 0 {
		o.BlockCacheSize = 8 << 20
	}
	o.BlockCacheSize = int64(div(int(o.BlockCacheSize)))
	// Guard probability tracks dataset size (§4.4: top_level_bits is set
	// for the expected key count). Halving the dataset 2^k times calls
	// for k fewer required bits so guard counts stay proportional.
	if o.TopLevelBits > 0 {
		bits := 0
		for f := factor; f > 1; f /= 2 {
			bits++
		}
		o.TopLevelBits -= bits
		// Keep the last level's guard probability at or below 1/64: finer
		// guards degenerate into per-handful-of-keys fragments and
		// metadata dominates.
		floor := 6 + (o.NumLevels-2)*o.BitDecrement
		if o.TopLevelBits < floor {
			o.TopLevelBits = floor
		}
	}
	return o
}

// Open opens a fresh store for the spec on its own in-memory filesystem.
func Open(spec Spec) (*pebblesdb.DB, error) {
	o := *spec.Options // copy so reuse across opens stays clean
	o.InMemory = false
	o.WithFS(vfs.NewMem())
	return pebblesdb.Open("bench", &o)
}

// Result is one workload measurement.
type Result struct {
	Store    string
	Workload string
	Ops      int64
	Duration time.Duration
	// KOpsPerSec is throughput in thousands of operations per second (the
	// unit the paper reports).
	KOpsPerSec float64
	// WriteGB / ReadGB are storage IO in gigabytes.
	WriteGB float64
	ReadGB  float64
	// WriteAmp is write IO over user bytes (Fig 1.1).
	WriteAmp float64
}

// Measure runs fn against the DB and captures throughput plus the IO
// delta.
func Measure(db *pebblesdb.DB, store, workload string, ops int64, fn func() error) (Result, error) {
	before := db.Metrics()
	start := time.Now()
	err := fn()
	dur := time.Since(start)
	after := db.Metrics()
	io := after.IO.Sub(before.IO)
	res := Result{
		Store:      store,
		Workload:   workload,
		Ops:        ops,
		Duration:   dur,
		KOpsPerSec: float64(ops) / dur.Seconds() / 1000,
		WriteGB:    float64(io.TotalWritten()) / (1 << 30),
		ReadGB:     float64(io.TotalRead()) / (1 << 30),
	}
	if ub := after.UserBytesWritten - before.UserBytesWritten; ub > 0 {
		res.WriteAmp = float64(io.TotalWritten()) / float64(ub)
	}
	return res, err
}

// KeyAt renders the fixed-width 16-byte key for index i (the paper uses
// 16-byte keys throughout §5.2).
func KeyAt(dst []byte, i uint64) []byte {
	dst = dst[:0]
	var buf [16]byte
	for p := len(buf) - 1; p >= 0; p-- {
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, buf[:]...)
}

// CompressibleFraction is the default fraction of each benchmark value that
// is unique random data; the rest repeats it. 0.5 matches LevelDB
// db_bench's compression_ratio default, so fill workloads exercise the
// block codec with a realistic ~2x-compressible payload.
const CompressibleFraction = 0.5

// ValueSource produces semi-compressible benchmark values, mirroring
// LevelDB db_bench's RandomGenerator: a ~1MB pool assembled from 100-byte
// pieces that are `fraction` random data repeated to full size, served as
// a sliding window so successive values differ.
type ValueSource struct {
	pool []byte
	size int
	pos  int
}

// NewValueSource returns a generator of size-byte values of which roughly
// fraction is incompressible.
func NewValueSource(size int, fraction float64, seed int64) *ValueSource {
	rng := rand.New(rand.NewSource(seed))
	if size < 1 {
		size = 1
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	raw := int(100 * fraction)
	if raw < 1 {
		raw = 1
	}
	// The pool must hold at least one full value, so oversized values
	// (> 1MiB) still get genuine semi-compressible content.
	target := 1 << 20
	if size > target {
		target = size
	}
	pool := make([]byte, 0, target+size+100)
	frag := make([]byte, raw)
	for len(pool) < target {
		for i := range frag {
			frag[i] = byte(' ' + rng.Intn(95))
		}
		piece := len(pool) + 100
		for len(pool) < piece {
			pool = append(pool, frag...)
		}
	}
	// Tail pad so every window of size bytes stays in range.
	pool = append(pool, pool[:size]...)
	return &ValueSource{pool: pool, size: size}
}

// Next returns the next value. The returned slice aliases the pool: copy it
// if it must outlive the following call (db.Put copies internally).
func (v *ValueSource) Next() []byte {
	if v.pos+v.size > len(v.pool) {
		v.pos = 0
	}
	b := v.pool[v.pos : v.pos+v.size]
	v.pos += v.size
	return b
}

// FillSeq inserts n keys in ascending order.
func FillSeq(db *pebblesdb.DB, n int, valueSize int, seed int64, recs ...*LatencyRecorder) error {
	vals := NewValueSource(valueSize, CompressibleFraction, seed)
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(i))
		if err := timedPut(db, key, vals.Next(), rec); err != nil {
			return err
		}
	}
	return nil
}

// FillRandom inserts n keys drawn uniformly from keySpace.
func FillRandom(db *pebblesdb.DB, n, keySpace, valueSize int, seed int64, recs ...*LatencyRecorder) error {
	rng := rand.New(rand.NewSource(seed))
	vals := NewValueSource(valueSize, CompressibleFraction, seed)
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		if err := timedPut(db, key, vals.Next(), rec); err != nil {
			return err
		}
	}
	return nil
}

// timedPut is Put with optional (nil-safe) per-op latency recording.
func timedPut(db *pebblesdb.DB, key, value []byte, rec *LatencyRecorder) error {
	start := rec.Start()
	err := db.Put(key, value)
	rec.Done(start)
	return err
}

// FillSync inserts n keys drawn uniformly from keySpace, each as its own
// durable (Sync) commit — the workload where the commit pipeline's fsync
// amortization shows up directly.
func FillSync(db *pebblesdb.DB, n, keySpace, valueSize int, seed int64, recs ...*LatencyRecorder) error {
	rng := rand.New(rand.NewSource(seed))
	vals := NewValueSource(valueSize, CompressibleFraction, seed)
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	b := db.NewBatch()
	for i := 0; i < n; i++ {
		b.Reset()
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		b.Set(key, vals.Next())
		start := rec.Start()
		if err := db.Apply(b, pebblesdb.Sync); err != nil {
			return err
		}
		rec.Done(start)
	}
	return nil
}

// FillSeqUnique inserts exactly the keys [0, n), each once, in order
// (space-amplification experiments need unique keys).
func FillSeqUnique(db *pebblesdb.DB, n, valueSize int, seed int64) error {
	return FillSeq(db, n, valueSize, seed)
}

// FillRange inserts every key in [lo, hi) once.
func FillRange(db *pebblesdb.DB, lo, hi uint64, valueSize int, seed int64) error {
	vals := NewValueSource(valueSize, CompressibleFraction, seed)
	key := make([]byte, 0, 16)
	for i := lo; i < hi; i++ {
		key = KeyAt(key, i)
		if err := db.Put(key, vals.Next()); err != nil {
			return err
		}
	}
	return nil
}

// ReadRange performs n gets uniformly over [lo, hi); returns hits.
func ReadRange(db *pebblesdb.DB, lo, hi uint64, n int, seed int64) (hits int, err error) {
	rng := rand.New(rand.NewSource(seed))
	key := make([]byte, 0, 16)
	span := int64(hi - lo)
	for i := 0; i < n; i++ {
		key = KeyAt(key, lo+uint64(rng.Int63n(span)))
		_, ok, gerr := db.Get(key, nil)
		if gerr != nil {
			return hits, gerr
		}
		if ok {
			hits++
		}
	}
	return hits, nil
}

// DeleteRange deletes every key in [lo, hi) with one range tombstone.
func DeleteRange(db *pebblesdb.DB, lo, hi uint64) error {
	if lo >= hi {
		return nil
	}
	return db.DeleteRange(KeyAt(nil, lo), KeyAt(nil, hi))
}

// DeleteKeys deletes every key in [lo, hi) one point tombstone at a time —
// the pre-range-deletion way to drop a window, kept as the baseline the
// retention workload is measured against.
func DeleteKeys(db *pebblesdb.DB, lo, hi uint64) error {
	key := make([]byte, 0, 16)
	for i := lo; i < hi; i++ {
		key = KeyAt(key, i)
		if err := db.Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// Retention is the rolling time-window workload (time-series retention,
// dropping a tenant, truncating a queue): fill sequential windows of
// windowSize keys each, and once retain windows are live, drop the oldest
// whole window — with a single DeleteRange, or with per-key tombstones
// when perKey is set (the baseline this PR's range deletions replace). n
// counts puts; deletes ride on top. Returns the number of windows dropped.
func Retention(db *pebblesdb.DB, n, windowSize, retain, valueSize int, seed int64, perKey bool, recs ...*LatencyRecorder) (deletedWindows int, err error) {
	if windowSize < 1 {
		windowSize = 1
	}
	if retain < 1 {
		retain = 1
	}
	rec := recOf(recs)
	vals := NewValueSource(valueSize, CompressibleFraction, seed)
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(i))
		if err := timedPut(db, key, vals.Next(), rec); err != nil {
			return deletedWindows, err
		}
		if (i+1)%windowSize == 0 {
			window := (i + 1) / windowSize
			if window > retain {
				lo := uint64((window - retain - 1) * windowSize)
				hi := lo + uint64(windowSize)
				if perKey {
					err = DeleteKeys(db, lo, hi)
				} else {
					err = DeleteRange(db, lo, hi)
				}
				if err != nil {
					return deletedWindows, err
				}
				deletedWindows++
			}
		}
	}
	return deletedWindows, nil
}

// ReadRandom performs n gets over keySpace; returns the hit count. The
// loop reuses one destination buffer through DB.GetTo, so on a warm cache
// it runs allocation-free end to end.
func ReadRandom(db *pebblesdb.DB, n, keySpace int, seed int64, recs ...*LatencyRecorder) (hits int, err error) {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	buf := make([]byte, 0, 4096)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		start := rec.Start()
		v, ok, gerr := db.GetTo(key, buf, nil)
		rec.Done(start)
		if gerr != nil {
			return hits, gerr
		}
		if ok {
			hits++
			buf = v[:0]
		}
	}
	return hits, nil
}

// SeekRandom performs n seeks, each followed by nexts Next calls (the
// paper's range query: a seek() then next()s, §5.2). One iterator serves
// every seek — the warm scan path: pooled table cursors and retained seek
// buffers make the steady-state SeekGE+Next loop allocation-free. The view
// is pinned at iterator creation, which is what a repeated-range-query
// benchmark wants anyway.
func SeekRandom(db *pebblesdb.DB, n, keySpace, nexts int, seed int64, recs ...*LatencyRecorder) error {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	it, err := db.NewIter(nil)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		start := rec.Start()
		it.SeekGE(key)
		for j := 0; j < nexts && it.Valid(); j++ {
			it.Next()
		}
		rec.Done(start)
		if err := it.Error(); err != nil {
			it.Close()
			return err
		}
	}
	return it.Close()
}

// ScanShort performs n short prefix scans: each picks a random key, keeps
// its first prefixLen bytes, and iterates every key sharing that prefix
// via IterOptions.Prefix. When prefixLen matches the store's
// PrefixBloomLength, sstables whose prefix filter rules the prefix out are
// skipped before any block IO (Metrics.IterTableSkipRatio reports the
// skip fraction). Returns the number of entries read.
func ScanShort(db *pebblesdb.DB, n, keySpace, prefixLen int, seed int64, recs ...*LatencyRecorder) (read int, err error) {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	prefix := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		p := prefixLen
		if p > len(key) {
			p = len(key)
		}
		prefix = append(prefix[:0], key[:p]...)
		start := rec.Start()
		it, err := db.NewIter(&pebblesdb.IterOptions{Prefix: prefix})
		if err != nil {
			return read, err
		}
		for it.First(); it.Valid(); it.Next() {
			read++
		}
		if err := it.Close(); err != nil {
			return read, err
		}
		rec.Done(start)
	}
	return read, nil
}

// SeekRandomReverse performs n reverse range queries: SeekLT to a random
// key, then prevs Prev calls (the v2 API's mirror of SeekRandom).
func SeekRandomReverse(db *pebblesdb.DB, n, keySpace, prevs int, seed int64, recs ...*LatencyRecorder) error {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		start := rec.Start()
		it, err := db.NewIter(nil)
		if err != nil {
			return err
		}
		it.SeekLT(key)
		for j := 0; j < prevs && it.Valid(); j++ {
			it.Prev()
		}
		if err := it.Close(); err != nil {
			return err
		}
		rec.Done(start)
	}
	return nil
}

// ScanBounded performs n bounded range queries of span keys each: the end
// key is pushed into the iterator as an upper bound so the store prunes
// sstables past it before IO.
func ScanBounded(db *pebblesdb.DB, n, keySpace, span int, seed int64, recs ...*LatencyRecorder) (read int, err error) {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	lo := make([]byte, 0, 16)
	hi := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		first := uint64(rng.Intn(keySpace))
		lo = KeyAt(lo, first)
		hi = KeyAt(hi, first+uint64(span))
		start := rec.Start()
		it, err := db.NewIter(&pebblesdb.IterOptions{LowerBound: lo, UpperBound: hi})
		if err != nil {
			return read, err
		}
		for it.First(); it.Valid(); it.Next() {
			read++
		}
		if err := it.Close(); err != nil {
			return read, err
		}
		rec.Done(start)
	}
	return read, nil
}

// DeleteRandom deletes n keys drawn uniformly from keySpace.
func DeleteRandom(db *pebblesdb.DB, n, keySpace int, seed int64, recs ...*LatencyRecorder) error {
	rng := rand.New(rand.NewSource(seed))
	rec := recOf(recs)
	key := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		key = KeyAt(key, uint64(rng.Intn(keySpace)))
		start := rec.Start()
		if err := db.Delete(key); err != nil {
			return err
		}
		rec.Done(start)
	}
	return nil
}

// Concurrent runs worker(threadID) on threads goroutines and returns the
// first error (the paper's multi-threaded benchmarks, Fig 5.1c).
func Concurrent(threads int, worker func(th int) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			if err := worker(th); err != nil {
				errCh <- err
			}
		}(th)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// Age churns the store per the paper's key-value-store aging procedure
// (Fig 5.2a): concurrent inserts, deletes and updates in random order.
func Age(db *pebblesdb.DB, inserts, deletes, updates, keySpace, valueSize int, seed int64) error {
	return Concurrent(4, func(th int) error {
		rng := rand.New(rand.NewSource(seed + int64(th)))
		vals := NewValueSource(valueSize, CompressibleFraction, seed+int64(th))
		key := make([]byte, 0, 16)
		for i := 0; i < inserts/4; i++ {
			key = KeyAt(key, uint64(rng.Intn(keySpace)))
			if err := db.Put(key, vals.Next()); err != nil {
				return err
			}
		}
		for i := 0; i < deletes/4; i++ {
			key = KeyAt(key, uint64(rng.Intn(keySpace)))
			if err := db.Delete(key); err != nil {
				return err
			}
		}
		for i := 0; i < updates/4; i++ {
			key = KeyAt(key, uint64(rng.Intn(keySpace)))
			if err := db.Put(key, vals.Next()); err != nil {
				return err
			}
		}
		return nil
	})
}

// SizeDistribution summarizes sstable sizes in MB (Table 5.1).
type SizeDistribution struct {
	Count            int
	MeanMB, MedianMB float64
	P90MB, P95MB     float64
}

// SSTableSizes computes the live sstable size distribution.
func SSTableSizes(db *pebblesdb.DB) SizeDistribution {
	sizes := db.Metrics().Tree.TableFileSizes
	if len(sizes) == 0 {
		return SizeDistribution{}
	}
	sorted := append([]uint64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum uint64
	for _, s := range sorted {
		sum += s
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx]) / (1 << 20)
	}
	return SizeDistribution{
		Count:    len(sorted),
		MeanMB:   float64(sum) / float64(len(sorted)) / (1 << 20),
		MedianMB: pct(0.5),
		P90MB:    pct(0.9),
		P95MB:    pct(0.95),
	}
}

// Table renders results grouped by workload with values relative to a
// baseline store, matching the paper's figure style ("values are shown
// relative to HyperLevelDB").
func Table(w io.Writer, results []Result, baseline string, higherIsBetter bool) {
	byWorkload := map[string][]Result{}
	var order []string
	for _, r := range results {
		if len(byWorkload[r.Workload]) == 0 {
			order = append(order, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for _, wl := range order {
		rs := byWorkload[wl]
		var base float64
		for _, r := range rs {
			if r.Store == baseline {
				base = r.KOpsPerSec
			}
		}
		fmt.Fprintf(w, "%s (baseline %s = %.1f KOps/s):\n", wl, baseline, base)
		for _, r := range rs {
			rel := 0.0
			if base > 0 {
				rel = r.KOpsPerSec / base
			}
			fmt.Fprintf(w, "  %-14s %10.1f KOps/s  %5.2fx  writeIO %7.3f GB  writeAmp %6.2f\n",
				r.Store, r.KOpsPerSec, rel, r.WriteGB, r.WriteAmp)
		}
	}
}
