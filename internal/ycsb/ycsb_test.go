package ycsb

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestUniformInRange(t *testing.T) {
	g := Uniform{N: 100}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if v := g.Next(rng); v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000)
	rng := rand.New(rand.NewSource(2))
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next(rng)
		if v >= 10000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must dominate; the head (top 1%) should carry a large share.
	if counts[0] < n/100 {
		t.Fatalf("item 0 drawn only %d times", counts[0])
	}
	head := 0
	for v, c := range counts {
		if v < 100 {
			head += c
		}
	}
	if float64(head)/n < 0.3 {
		t.Fatalf("zipfian head too light: %.2f", float64(head)/n)
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(10000)
	rng := rand.New(rand.NewSource(3))
	var xs []uint64
	for i := 0; i < 5000; i++ {
		v := s.Next(rng)
		if v >= 10000 {
			t.Fatalf("out of range: %d", v)
		}
		xs = append(xs, v)
	}
	// The hot keys must not all cluster at the low end of the keyspace.
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	if xs[len(xs)/2] < 1000 {
		t.Fatalf("scrambled zipfian median %d suspiciously low", xs[len(xs)/2])
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	var counter atomic.Uint64
	counter.Store(10000)
	l := NewLatest(&counter)
	rng := rand.New(rand.NewSource(4))
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := l.Next(rng)
		if v >= 10000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 9000 {
			recent++
		}
	}
	if float64(recent)/n < 0.5 {
		t.Fatalf("latest distribution not skewed to recent: %.2f", float64(recent)/n)
	}
}

func TestKeyForIndexSortableAndFixed(t *testing.T) {
	a := KeyForIndex(nil, 5)
	b := KeyForIndex(nil, 50)
	if len(a) != len(b) {
		t.Fatal("keys must be fixed width")
	}
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("larger index must produce larger key")
	}
}

// mapStore is an in-memory ycsb.Store for runner tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Put(k, v []byte) error {
	s.mu.Lock()
	s.m[string(k)] = append([]byte(nil), v...)
	s.mu.Unlock()
	return nil
}

func (s *mapStore) Get(k []byte) ([]byte, bool, error) {
	s.mu.Lock()
	v, ok := s.m[string(k)]
	s.mu.Unlock()
	return v, ok, nil
}

func (s *mapStore) Scan(start, end []byte, count int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.m {
		if k >= string(start) && (end == nil || k < string(end)) {
			n++
			if n >= count {
				break
			}
		}
	}
	return n, nil
}

func TestLoadAndRunWorkloads(t *testing.T) {
	store := newMapStore()
	r := NewRunner(store)
	if _, err := r.Load(1000, 64, 4, 1); err != nil {
		t.Fatal(err)
	}
	if r.Inserted() != 1000 {
		t.Fatalf("inserted %d", r.Inserted())
	}
	if len(store.m) != 1000 {
		t.Fatalf("store holds %d records", len(store.m))
	}

	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		w := Workloads[name]
		res, err := r.Run(w, RunnerOptions{
			RecordCount: 1000, OpCount: 2000, Threads: 4, ValueSize: 64, Seed: 7,
		})
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		if res.Ops == 0 || res.OpsPerSec <= 0 {
			t.Fatalf("workload %s produced no throughput: %+v", name, res)
		}
		if res.Errors != 0 {
			t.Fatalf("workload %s had %d errors", name, res.Errors)
		}
	}
	// Workload D and E insert, so the record counter must have advanced.
	if r.Inserted() <= 1000 {
		t.Fatal("inserting workloads did not advance the counter")
	}
}

func TestWorkloadTableMatchesPaper(t *testing.T) {
	// Table 5.3 checks.
	if w := Workloads["A"]; w.Mix.Read != 0.5 || w.Mix.Update != 0.5 {
		t.Fatal("workload A must be 50/50 read/update")
	}
	if w := Workloads["C"]; w.Mix.Read != 1 {
		t.Fatal("workload C must be read-only")
	}
	if w := Workloads["D"]; w.Distribution != "latest" || w.Mix.Insert != 0.05 {
		t.Fatal("workload D must read latest with 5% inserts")
	}
	if w := Workloads["E"]; w.Mix.Scan != 0.95 || w.MaxScanLen != 100 {
		t.Fatal("workload E must be 95% scans up to 100")
	}
	if w := Workloads["F"]; w.Mix.RMW != 0.5 {
		t.Fatal("workload F must be 50% read-modify-write")
	}
	if w := Workloads["LoadA"]; w.Mix.Insert != 1 {
		t.Fatal("Load A must be pure inserts")
	}
}
