// Package ycsb implements the Yahoo! Cloud Serving Benchmark core
// workloads (Cooper et al., SoCC 2010) used throughout the paper's §5.3
// evaluation: the zipfian, scrambled-zipfian, latest and uniform request
// distributions, and workloads Load A, A–D, F, Load E and E as described in
// Table 5.3.
package ycsb

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"pebblesdb/internal/murmur"
)

// Generator produces the next key index to operate on.
type Generator interface {
	// Next returns a key index in [0, n) for the generator's current n.
	Next(rng *rand.Rand) uint64
}

// Uniform selects uniformly from [0, N).
type Uniform struct{ N uint64 }

// Next implements Generator.
func (u Uniform) Next(rng *rand.Rand) uint64 { return uint64(rng.Int63n(int64(u.N))) }

// zipfConst is YCSB's default zipfian skew.
const zipfConst = 0.99

// Zipfian implements the Gray et al. incremental zipfian generator used by
// YCSB: item 0 is the most popular.
type Zipfian struct {
	items          uint64
	theta          float64
	zetaN, zeta2   float64
	alpha, eta     float64
}

// NewZipfian returns a zipfian generator over [0, items).
func NewZipfian(items uint64) *Zipfian {
	z := &Zipfian{items: items, theta: zipfConst}
	z.zeta2 = zetaStatic(2, z.theta)
	z.zetaN = zetaStatic(items, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-z.theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetaN
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads the zipfian head across the key space by
// hashing, matching YCSB's request distribution for workloads A–C and F.
type ScrambledZipfian struct {
	z     *Zipfian
	items uint64
}

// NewScrambledZipfian returns a scrambled zipfian over [0, items).
func NewScrambledZipfian(items uint64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(items), items: items}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(rng *rand.Rand) uint64 {
	v := s.z.Next(rng)
	return murmur.Hash64([]byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}, 0xdeadbeef) % s.items
}

// Latest skews toward recently inserted keys (workload D: "news feed").
// The insertion counter advances as the workload inserts.
type Latest struct {
	counter *atomic.Uint64

	mu    sync.Mutex
	z     *Zipfian
	zFor  uint64
}

// NewLatest returns a latest-distribution generator following counter.
func NewLatest(counter *atomic.Uint64) *Latest {
	return &Latest{counter: counter}
}

// Next implements Generator.
func (l *Latest) Next(rng *rand.Rand) uint64 {
	n := l.counter.Load()
	if n == 0 {
		return 0
	}
	l.mu.Lock()
	if l.z == nil || l.zFor < n/2 || l.zFor > n {
		// Rebuild the zipfian lazily as the item count grows; exact YCSB
		// recomputes incrementally, the periodic rebuild preserves the
		// distribution shape at far lower cost.
		l.z = NewZipfian(n)
		l.zFor = n
	}
	z := l.z
	l.mu.Unlock()
	off := z.Next(rng)
	if off >= n {
		off = n - 1
	}
	return n - 1 - off
}

// KeyForIndex renders the canonical YCSB key for an index.
func KeyForIndex(dst []byte, idx uint64) []byte {
	dst = dst[:0]
	dst = append(dst, "user"...)
	// Fixed-width zero-padded decimal keeps keys sortable and constant
	// size, matching YCSB's hashed key formatting closely enough.
	var buf [19]byte
	for i := len(buf) - 1; i >= 0; i-- {
		buf[i] = byte('0' + idx%10)
		idx /= 10
	}
	return append(dst, buf[:]...)
}
