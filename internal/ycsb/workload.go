package ycsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the key-value interface the benchmark drives; pebblesdb.DB and
// the application shims satisfy it via small adapters.
type Store interface {
	Put(key, value []byte) error
	Get(key []byte) (value []byte, found bool, err error)
	// Scan positions at start and iterates up to count entries, returning
	// how many were read. A non-nil end is an exclusive upper bound the
	// scan must not cross (stores with bounded iterators push it down so
	// non-overlapping sstables are pruned before IO).
	Scan(start, end []byte, count int) (int, error)
}

// OpKind enumerates YCSB operation types.
type OpKind int

const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// Mix is an operation mix with proportions summing to 1.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
}

// Workload describes one YCSB workload (Table 5.3).
type Workload struct {
	// Name is the YCSB letter ("A".."F", "LoadA", "LoadE").
	Name string
	// Description matches Table 5.3's "Represents" column.
	Description string
	Mix         Mix
	// Distribution picks keys: "zipfian", "latest", "uniform".
	Distribution string
	// MaxScanLen bounds scan lengths (workload E; uniform 1..MaxScanLen).
	MaxScanLen int
	// BoundedScans passes an exclusive end key (start + scan length) to
	// every scan, exercising the store's bounded-iterator path ("Ebound").
	BoundedScans bool
}

// Workloads is the YCSB core suite as used in the paper (Table 5.3).
// Workloads A–D and F are preceded by Load A; E is preceded by Load E.
var Workloads = map[string]Workload{
	"LoadA": {Name: "LoadA", Description: "insert data for A-D, F",
		Mix: Mix{Insert: 1}, Distribution: "zipfian"},
	"A": {Name: "A", Description: "session store recording recent actions: 50% reads, 50% updates",
		Mix: Mix{Read: 0.5, Update: 0.5}, Distribution: "zipfian"},
	"B": {Name: "B", Description: "photo tagging: 95% reads, 5% updates",
		Mix: Mix{Read: 0.95, Update: 0.05}, Distribution: "zipfian"},
	"C": {Name: "C", Description: "caches: 100% reads",
		Mix: Mix{Read: 1}, Distribution: "zipfian"},
	"D": {Name: "D", Description: "news feed: 95% reads of latest, 5% inserts",
		Mix: Mix{Read: 0.95, Insert: 0.05}, Distribution: "latest"},
	"LoadE": {Name: "LoadE", Description: "insert data for E",
		Mix: Mix{Insert: 1}, Distribution: "zipfian"},
	"E": {Name: "E", Description: "threaded conversations: 95% scans, 5% inserts",
		Mix: Mix{Scan: 0.95, Insert: 0.05}, Distribution: "zipfian", MaxScanLen: 100},
	"Ebound": {Name: "Ebound", Description: "workload E with bounded scans: the end key is pushed into the iterator",
		Mix: Mix{Scan: 0.95, Insert: 0.05}, Distribution: "zipfian", MaxScanLen: 100, BoundedScans: true},
	"F": {Name: "F", Description: "database: 50% reads, 50% read-modify-writes",
		Mix: Mix{Read: 0.5, RMW: 0.5}, Distribution: "zipfian"},
}

// RunnerOptions configures a workload execution.
type RunnerOptions struct {
	// RecordCount is the number of loaded records keys are drawn from.
	RecordCount uint64
	// OpCount is the total operations across all threads.
	OpCount uint64
	// Threads is the worker count (the paper uses 4, §5.3).
	Threads int
	// ValueSize is the value payload in bytes (YCSB default ~1 KB).
	ValueSize int
	// Seed makes runs reproducible.
	Seed int64
}

// Result summarizes one workload run.
type Result struct {
	Workload  string
	Ops       uint64
	Duration  time.Duration
	OpsPerSec float64
	Errors    int64
}

// Run executes the workload against store. The inserted-record counter is
// shared across Load and Run phases via the Runner.
type Runner struct {
	store    Store
	inserted atomic.Uint64
}

// NewRunner wraps store for benchmark execution.
func NewRunner(store Store) *Runner { return &Runner{store: store} }

// Inserted returns the number of records known to exist (loaded+inserted).
func (r *Runner) Inserted() uint64 { return r.inserted.Load() }

// SetInserted primes the record counter (e.g. when the store was loaded
// out of band).
func (r *Runner) SetInserted(n uint64) { r.inserted.Store(n) }

// Run executes w with the given options and returns throughput.
func (r *Runner) Run(w Workload, opts RunnerOptions) (Result, error) {
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	if opts.ValueSize <= 0 {
		opts.ValueSize = 1024
	}
	if opts.RecordCount == 0 {
		opts.RecordCount = r.inserted.Load()
	}

	makeGen := func() Generator {
		switch w.Distribution {
		case "latest":
			return NewLatest(&r.inserted)
		case "uniform":
			return Uniform{N: opts.RecordCount}
		default:
			return NewScrambledZipfian(opts.RecordCount)
		}
	}

	var wg sync.WaitGroup
	var errs atomic.Int64
	var firstErr atomic.Value
	perThread := opts.OpCount / uint64(opts.Threads)
	start := time.Now()
	for th := 0; th < opts.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(th)*7919))
			gen := makeGen()
			key := make([]byte, 0, 32)
			value := make([]byte, opts.ValueSize)
			rng.Read(value)
			for i := uint64(0); i < perThread; i++ {
				if err := r.oneOp(w, gen, rng, key, value, opts); err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(th)
	}
	wg.Wait()
	dur := time.Since(start)
	res := Result{
		Workload:  w.Name,
		Ops:       perThread * uint64(opts.Threads),
		Duration:  dur,
		OpsPerSec: float64(perThread*uint64(opts.Threads)) / dur.Seconds(),
		Errors:    errs.Load(),
	}
	if e := firstErr.Load(); e != nil {
		return res, e.(error)
	}
	return res, nil
}

func (r *Runner) oneOp(w Workload, gen Generator, rng *rand.Rand, key, value []byte, opts RunnerOptions) error {
	p := rng.Float64()
	m := w.Mix
	switch {
	case p < m.Insert:
		idx := r.inserted.Add(1) - 1
		key = KeyForIndex(key, idx)
		return r.store.Put(key, value)
	case p < m.Insert+m.Read:
		key = KeyForIndex(key, gen.Next(rng)%max1(opts.RecordCount))
		_, _, err := r.store.Get(key)
		return err
	case p < m.Insert+m.Read+m.Update:
		key = KeyForIndex(key, gen.Next(rng)%max1(opts.RecordCount))
		return r.store.Put(key, value)
	case p < m.Insert+m.Read+m.Update+m.Scan:
		idx := gen.Next(rng) % max1(opts.RecordCount)
		key = KeyForIndex(key, idx)
		n := 1
		if w.MaxScanLen > 1 {
			n = 1 + rng.Intn(w.MaxScanLen)
		}
		var end []byte
		if w.BoundedScans {
			end = KeyForIndex(nil, idx+uint64(n))
		}
		_, err := r.store.Scan(key, end, n)
		return err
	default: // read-modify-write
		key = KeyForIndex(key, gen.Next(rng)%max1(opts.RecordCount))
		if _, _, err := r.store.Get(key); err != nil {
			return err
		}
		return r.store.Put(key, value)
	}
}

func max1(n uint64) uint64 {
	if n == 0 {
		return 1
	}
	return n
}

// Load inserts records [0, n) with the given value size, using the
// runner's threads; it primes the inserted counter.
func (r *Runner) Load(n uint64, valueSize, threads int, seed int64) (Result, error) {
	if threads <= 0 {
		threads = 1
	}
	var wg sync.WaitGroup
	var errs atomic.Int64
	var firstErr atomic.Value
	per := n / uint64(threads)
	start := time.Now()
	for th := 0; th < threads; th++ {
		lo := uint64(th) * per
		hi := lo + per
		if th == threads-1 {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi uint64, th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(th)))
			value := make([]byte, valueSize)
			rng.Read(value)
			key := make([]byte, 0, 32)
			for i := lo; i < hi; i++ {
				key = KeyForIndex(key, i)
				if err := r.store.Put(key, value); err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(lo, hi, th)
	}
	wg.Wait()
	r.inserted.Store(n)
	dur := time.Since(start)
	res := Result{
		Workload:  fmt.Sprintf("load-%d", n),
		Ops:       n,
		Duration:  dur,
		OpsPerSec: float64(n) / dur.Seconds(),
		Errors:    errs.Load(),
	}
	if e := firstErr.Load(); e != nil {
		return res, e.(error)
	}
	return res, nil
}
