// Package batch implements atomic write batches. The serialized form is
// both the WAL record payload and the unit of group commit: a header of
// [seq:8][count:4] followed by records of kind, key and (for sets) value.
package batch

import (
	"encoding/binary"
	"errors"

	"pebblesdb/internal/base"
)

const headerLen = 12

// ErrCorrupt is returned when a serialized batch cannot be decoded.
var ErrCorrupt = errors.New("batch: corrupt repr")

// Batch accumulates mutations to be applied atomically.
type Batch struct {
	data  []byte
	count uint32
	// trusted marks batches whose framing is well-formed by construction
	// (built through Set/Delete); batches wrapped from external bytes
	// (FromRepr) are untrusted until validated.
	trusted bool
}

// New returns an empty batch.
func New() *Batch {
	return &Batch{data: make([]byte, headerLen), trusted: true}
}

// FromRepr wraps a serialized batch (e.g. recovered from the WAL).
func FromRepr(repr []byte) (*Batch, error) {
	if len(repr) < headerLen {
		return nil, ErrCorrupt
	}
	return &Batch{data: repr, count: binary.LittleEndian.Uint32(repr[8:12])}, nil
}

// Reset clears the batch for reuse. The emptied batch is well-formed, so
// it is trusted regardless of provenance.
func (b *Batch) Reset() {
	b.data = b.data[:headerLen]
	for i := range b.data {
		b.data[i] = 0
	}
	b.count = 0
	b.trusted = true
}

// Set queues a put of key to value.
func (b *Batch) Set(key, value []byte) {
	b.data = append(b.data, byte(base.KindSet))
	b.data = appendBytes(b.data, key)
	b.data = appendBytes(b.data, value)
	b.count++
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.data = append(b.data, byte(base.KindDelete))
	b.data = appendBytes(b.data, key)
	b.count++
}

// DeleteRange queues a range tombstone deleting every key in [start, end).
// The record is encoded like a Set with the exclusive end key in the value
// position, under KindRangeDelete.
func (b *Batch) DeleteRange(start, end []byte) {
	b.data = append(b.data, byte(base.KindRangeDelete))
	b.data = appendBytes(b.data, start)
	b.data = appendBytes(b.data, end)
	b.count++
}

func appendBytes(dst, p []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
	dst = append(dst, lenBuf[:n]...)
	return append(dst, p...)
}

// Count returns the number of queued mutations.
func (b *Batch) Count() uint32 { return b.count }

// Empty reports whether the batch holds no mutations.
func (b *Batch) Empty() bool { return b.count == 0 }

// SetSeqNum stamps the sequence number assigned to the batch's first
// mutation; subsequent mutations use consecutive numbers.
func (b *Batch) SetSeqNum(seq base.SeqNum) {
	binary.LittleEndian.PutUint64(b.data[:8], uint64(seq))
	binary.LittleEndian.PutUint32(b.data[8:12], b.count)
}

// SeqNum returns the stamped sequence number.
func (b *Batch) SeqNum() base.SeqNum {
	return base.SeqNum(binary.LittleEndian.Uint64(b.data[:8]))
}

// Repr returns the serialized batch. SetSeqNum must have been called.
func (b *Batch) Repr() []byte {
	binary.LittleEndian.PutUint32(b.data[8:12], b.count)
	return b.data
}

// ApproxSize returns the serialized size in bytes.
func (b *Batch) ApproxSize() int { return len(b.data) }

// Append concatenates other's mutations onto b (used by group commit).
func (b *Batch) Append(other *Batch) {
	b.data = append(b.data, other.data[headerLen:]...)
	b.count += other.count
	b.trusted = b.trusted && other.trusted
}

// Validate checks the batch's framing without visiting the mutations. The
// engine rejects malformed batches before sequencing them, so a corrupt
// repr can never be applied partially. Batches built through Set/Delete
// are well-formed by construction and return immediately; only externally
// sourced reprs (FromRepr) pay the full walk.
func (b *Batch) Validate() error {
	if b.trusted {
		return nil
	}
	p := b.data[headerLen:]
	for i := uint32(0); i < b.count; i++ {
		if len(p) < 1 {
			return ErrCorrupt
		}
		kind := base.Kind(p[0])
		p = p[1:]
		var ok bool
		if _, p, ok = readBytes(p); !ok {
			return ErrCorrupt
		}
		if kind == base.KindSet || kind == base.KindRangeDelete {
			if _, p, ok = readBytes(p); !ok {
				return ErrCorrupt
			}
		} else if kind != base.KindDelete {
			return ErrCorrupt
		}
	}
	if len(p) != 0 {
		return ErrCorrupt
	}
	return nil
}

// Iterate decodes the batch, invoking fn for each mutation with the
// sequence number it was assigned. For KindRangeDelete mutations ukey is
// the inclusive start key and value the exclusive end key. Iterate
// validates framing and returns ErrCorrupt on malformed input.
func (b *Batch) Iterate(fn func(kind base.Kind, ukey, value []byte, seq base.SeqNum) error) error {
	binary.LittleEndian.PutUint32(b.data[8:12], b.count)
	seq := b.SeqNum()
	p := b.data[headerLen:]
	for i := uint32(0); i < b.count; i++ {
		if len(p) < 1 {
			return ErrCorrupt
		}
		kind := base.Kind(p[0])
		p = p[1:]
		var key, value []byte
		var ok bool
		if key, p, ok = readBytes(p); !ok {
			return ErrCorrupt
		}
		if kind == base.KindSet || kind == base.KindRangeDelete {
			if value, p, ok = readBytes(p); !ok {
				return ErrCorrupt
			}
		} else if kind != base.KindDelete {
			return ErrCorrupt
		}
		if err := fn(kind, key, value, seq+base.SeqNum(i)); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return ErrCorrupt
	}
	return nil
}

func readBytes(p []byte) (val, rest []byte, ok bool) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return nil, nil, false
	}
	return p[n : n+int(l)], p[n+int(l):], true
}
