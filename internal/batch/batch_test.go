package batch

import (
	"fmt"
	"testing"

	"pebblesdb/internal/base"
)

func TestRoundtrip(t *testing.T) {
	b := New()
	b.Set([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Set([]byte(""), []byte("")) // empty key and value are legal
	b.SetSeqNum(100)

	if b.Count() != 3 {
		t.Fatalf("count %d", b.Count())
	}
	if b.SeqNum() != 100 {
		t.Fatalf("seq %d", b.SeqNum())
	}

	type op struct {
		kind base.Kind
		key  string
		val  string
		seq  base.SeqNum
	}
	var got []op
	err := b.Iterate(func(kind base.Kind, k, v []byte, seq base.SeqNum) error {
		got = append(got, op{kind, string(k), string(v), seq})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []op{
		{base.KindSet, "k1", "v1", 100},
		{base.KindDelete, "k2", "", 101},
		{base.KindSet, "", "", 102},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestFromReprRoundtrip(t *testing.T) {
	b := New()
	b.Set([]byte("key"), []byte("value"))
	b.SetSeqNum(7)
	repr := append([]byte(nil), b.Repr()...)

	b2, err := FromRepr(repr)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Count() != 1 || b2.SeqNum() != 7 {
		t.Fatalf("recovered count=%d seq=%d", b2.Count(), b2.SeqNum())
	}
	n := 0
	b2.Iterate(func(kind base.Kind, k, v []byte, seq base.SeqNum) error {
		n++
		if string(k) != "key" || string(v) != "value" || seq != 7 {
			t.Fatalf("bad op %q %q %d", k, v, seq)
		}
		return nil
	})
	if n != 1 {
		t.Fatal("expected one op")
	}
}

func TestCorruptReprs(t *testing.T) {
	if _, err := FromRepr([]byte("short")); err == nil {
		t.Fatal("short repr should fail")
	}
	b := New()
	b.Set([]byte("k"), []byte("v"))
	b.SetSeqNum(1)
	repr := append([]byte(nil), b.Repr()...)

	// Truncate the payload: Iterate must report corruption.
	trunc, _ := FromRepr(repr[:len(repr)-2])
	// count still says 1 but data is short
	if err := trunc.Iterate(func(base.Kind, []byte, []byte, base.SeqNum) error { return nil }); err == nil {
		t.Fatal("truncated batch should fail to iterate")
	}

	// Bad kind byte.
	bad := append([]byte(nil), repr...)
	bad[12] = 0x77
	bb, _ := FromRepr(bad)
	if err := bb.Iterate(func(base.Kind, []byte, []byte, base.SeqNum) error { return nil }); err == nil {
		t.Fatal("bad kind should fail")
	}
}

func TestAppendCombinesBatches(t *testing.T) {
	a := New()
	a.Set([]byte("a"), []byte("1"))
	b := New()
	b.Set([]byte("b"), []byte("2"))
	b.Delete([]byte("c"))

	a.Append(b)
	a.SetSeqNum(10)
	if a.Count() != 3 {
		t.Fatalf("combined count %d", a.Count())
	}
	var keys []string
	a.Iterate(func(_ base.Kind, k, _ []byte, _ base.SeqNum) error {
		keys = append(keys, string(k))
		return nil
	})
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("keys %v", keys)
	}
}

func TestReset(t *testing.T) {
	b := New()
	b.Set([]byte("k"), []byte("v"))
	b.Reset()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("reset should empty the batch")
	}
	b.Set([]byte("k2"), []byte("v2"))
	b.SetSeqNum(5)
	n := 0
	b.Iterate(func(_ base.Kind, k, _ []byte, _ base.SeqNum) error { n++; return nil })
	if n != 1 {
		t.Fatal("reused batch should hold one op")
	}
}

func TestDeleteRangeRoundTrip(t *testing.T) {
	b := New()
	b.Set([]byte("a"), []byte("v1"))
	b.DeleteRange([]byte("b"), []byte("f"))
	b.Set([]byte("c"), []byte("v2"))
	b.SetSeqNum(100)

	// Re-wrap the serialized form, as WAL replay does, and check the
	// range-delete record survives with start in the key position and the
	// exclusive end in the value position, sequenced between its
	// neighbors.
	rb, err := FromRepr(append([]byte(nil), b.Repr()...))
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Validate(); err != nil {
		t.Fatal(err)
	}
	type op struct {
		kind       base.Kind
		key, value string
		seq        base.SeqNum
	}
	var got []op
	err = rb.Iterate(func(kind base.Kind, k, v []byte, seq base.SeqNum) error {
		got = append(got, op{kind, string(k), string(v), seq})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []op{
		{base.KindSet, "a", "v1", 100},
		{base.KindRangeDelete, "b", "f", 101},
		{base.KindSet, "c", "v2", 102},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}
