package rangedel

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/base"
)

func ts(start, end string, seq base.SeqNum) Tombstone {
	return Tombstone{Start: []byte(start), End: []byte(end), Seq: seq}
}

func TestCoverSeqBasic(t *testing.T) {
	l := NewList([]Tombstone{ts("b", "f", 10)})
	cases := []struct {
		key   string
		at    base.SeqNum
		want  base.SeqNum
		label string
	}{
		{"a", 100, 0, "before start"},
		{"b", 100, 10, "inclusive start"},
		{"d", 100, 10, "inside"},
		{"f", 100, 0, "exclusive end"},
		{"z", 100, 0, "after end"},
		{"d", 9, 0, "tombstone newer than snapshot"},
		{"d", 10, 10, "snapshot at tombstone"},
	}
	for _, c := range cases {
		if got := l.CoverSeq([]byte(c.key), c.at); got != c.want {
			t.Errorf("%s: CoverSeq(%q,%d) = %d, want %d", c.label, c.key, c.at, got, c.want)
		}
	}
}

func TestCoverSeqOverlapping(t *testing.T) {
	// Two overlapping tombstones: a snapshot between their seqs must see
	// only the older one, so coalescing must retain both sequence numbers.
	l := NewList([]Tombstone{ts("a", "m", 5), ts("g", "z", 20)})
	if got := l.CoverSeq([]byte("h"), 100); got != 20 {
		t.Fatalf("newest visible: got %d want 20", got)
	}
	if got := l.CoverSeq([]byte("h"), 10); got != 5 {
		t.Fatalf("snapshot between: got %d want 5", got)
	}
	if got := l.CoverSeq([]byte("c"), 10); got != 5 {
		t.Fatalf("older-only region: got %d want 5", got)
	}
	if got := l.CoverSeq([]byte("p"), 10); got != 0 {
		t.Fatalf("newer-only region below its seq: got %d want 0", got)
	}
}

func TestFragmentsCoalesce(t *testing.T) {
	// Identical coverage across adjacent elementary intervals must merge
	// back into a single fragment.
	l := NewList([]Tombstone{ts("a", "g", 7), ts("c", "g", 7)})
	frags := l.Fragments()
	// [a,c) seqs{7}, [c,g) seqs{7} — wait: [c,g) has 7 twice, deduped to
	// {7}, equal to [a,c)'s set, so one fragment [a,g) remains.
	if len(frags) != 1 || string(frags[0].Start) != "a" || string(frags[0].End) != "g" {
		t.Fatalf("fragments = %v, want single [a,g)", frags)
	}
	if len(frags[0].Seqs) != 1 || frags[0].Seqs[0] != 7 {
		t.Fatalf("seqs = %v, want [7]", frags[0].Seqs)
	}
}

func TestClipped(t *testing.T) {
	l := NewList([]Tombstone{ts("b", "x", 9)})
	got := l.Clipped([]byte("d"), []byte("m"), 0)
	if len(got) != 1 || string(got[0].Start) != "d" || string(got[0].End) != "m" || got[0].Seq != 9 {
		t.Fatalf("Clipped = %v", got)
	}
	if got := l.Clipped([]byte("x"), nil, 0); len(got) != 0 {
		t.Fatalf("clip beyond end yielded %v", got)
	}
	if got := l.Clipped(nil, nil, 9); len(got) != 0 {
		t.Fatalf("dropLE=9 kept %v", got)
	}
	// Re-merging across fragment boundaries: two overlapping tombstones
	// fragment [a,e) into pieces, but clipping the whole span must give
	// back maximal per-seq ranges.
	l2 := NewList([]Tombstone{ts("a", "e", 4), ts("c", "h", 8)})
	out := l2.Clipped(nil, nil, 0)
	bySeq := map[base.SeqNum]string{}
	for _, o := range out {
		bySeq[o.Seq] += fmt.Sprintf("[%s,%s)", o.Start, o.End)
	}
	if bySeq[4] != "[a,e)" || bySeq[8] != "[c,h)" {
		t.Fatalf("re-merged clip = %v", bySeq)
	}
}

// bruteCover is the reference model: scan every tombstone.
func bruteCover(ts []Tombstone, key []byte, at base.SeqNum) base.SeqNum {
	var best base.SeqNum
	for _, t := range ts {
		if t.Seq <= at && t.Seq > best &&
			bytes.Compare(t.Start, key) <= 0 && bytes.Compare(key, t.End) < 0 {
			best = t.Seq
		}
	}
	return best
}

// FuzzRangeDelFragmenter feeds random overlapping tombstone sets through
// the fragmenter and checks CoverSeq and Clipped against the brute-force
// interval model at every probe point.
func FuzzRangeDelFragmenter(f *testing.F) {
	f.Add(int64(1), 4)
	f.Add(int64(42), 12)
	f.Add(int64(7), 1)
	f.Add(int64(99), 30)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 0 || n > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		key := func() []byte { return []byte{byte('a' + rng.Intn(16))} }
		var raw []Tombstone
		l := &List{}
		var inc *List // built via successive WithTombstone splices
		for i := 0; i < n; i++ {
			a, b := key(), key()
			if bytes.Compare(a, b) > 0 {
				a, b = b, a
			}
			tomb := Tombstone{Start: a, End: b, Seq: base.SeqNum(rng.Intn(20))}
			l.Add(tomb)
			inc = inc.WithTombstone(tomb)
			if !tomb.Empty() {
				raw = append(raw, tomb)
			}
		}
		// CoverSeq vs brute force at every key and several snapshots, for
		// both the batch-fragmented list and the incrementally spliced one
		// (the memtable's copy-on-write path).
		for c := byte('a'); c <= 'a'+16; c++ {
			for _, at := range []base.SeqNum{0, 3, 7, 12, base.MaxSeqNum} {
				want := bruteCover(raw, []byte{c}, at)
				if got := l.CoverSeq([]byte{c}, at); got != want {
					t.Fatalf("CoverSeq(%q,%d) = %d, want %d (raw %v)", c, at, got, want, raw)
				}
				if got := inc.CoverSeq([]byte{c}, at); got != want {
					t.Fatalf("incremental CoverSeq(%q,%d) = %d, want %d (raw %v)", c, at, got, want, raw)
				}
			}
		}
		// Clipping to a random window then re-querying inside it must agree
		// with the unclipped model; outside the window nothing survives.
		lo, hi := key(), key()
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		dropLE := base.SeqNum(rng.Intn(10))
		clipped := NewList(l.Clipped(lo, hi, dropLE))
		for c := byte('a'); c <= 'a'+16; c++ {
			k := []byte{c}
			got := clipped.CoverSeq(k, base.MaxSeqNum)
			var want base.SeqNum
			if bytes.Compare(lo, k) <= 0 && bytes.Compare(k, hi) < 0 {
				if w := bruteCover(raw, k, base.MaxSeqNum); w > dropLE {
					want = w
				}
			}
			if got != want {
				t.Fatalf("clip[%q,%q) dropLE=%d: CoverSeq(%q) = %d, want %d (raw %v)",
					lo, hi, dropLE, c, got, want, raw)
			}
		}
		// Fragments must be disjoint, sorted, and coalesced (no adjacent
		// pair with identical seq sets).
		frags := l.Fragments()
		for i := range frags {
			if bytes.Compare(frags[i].Start, frags[i].End) >= 0 {
				t.Fatalf("empty fragment %v", frags[i])
			}
			if i > 0 {
				if bytes.Compare(frags[i-1].End, frags[i].Start) > 0 {
					t.Fatalf("overlapping fragments %v %v", frags[i-1], frags[i])
				}
				if bytes.Equal(frags[i-1].End, frags[i].Start) && seqsEqual(frags[i-1].Seqs, frags[i].Seqs) {
					t.Fatalf("uncoalesced fragments %v %v", frags[i-1], frags[i])
				}
			}
			for j := 1; j < len(frags[i].Seqs); j++ {
				if frags[i].Seqs[j] >= frags[i].Seqs[j-1] {
					t.Fatalf("seqs not strictly descending: %v", frags[i].Seqs)
				}
			}
		}
	})
}

// TestClippedSnapshotVisibility pins the elision knob: dropLE removes only
// tombstones at or below the bar, and a clipped snapshot-between query
// still sees the retained newer tombstone.
func TestClippedSnapshotVisibility(t *testing.T) {
	l := NewList([]Tombstone{ts("a", "m", 5), ts("a", "m", 20)})
	kept := l.Clipped(nil, nil, 10)
	if len(kept) != 1 || kept[0].Seq != 20 {
		t.Fatalf("dropLE=10 kept %v, want only seq 20", kept)
	}
}
