// Package rangedel implements range-deletion tombstones: the O(1)-write
// mutation that deletes every key in [Start, End) older than the
// tombstone's sequence number. The central type is List, a coalescing
// fragment index built from arbitrary (possibly overlapping) tombstones:
// fragments partition the covered key space into disjoint intervals, each
// carrying the full descending set of tombstone sequence numbers over it,
// so a snapshot reader at any sequence number finds the newest tombstone it
// is allowed to see with one binary search. The same fragment form is what
// sstables store (the writer fragments and coalesces on flush) and what
// compactions clip to output-table bounds, so a guard split or table cut
// can never widen a tombstone and resurrect or re-delete data.
package rangedel

import (
	"bytes"
	"sort"

	"pebblesdb/internal/base"
)

// Tombstone is one range deletion: user keys in [Start, End) written at
// sequence numbers below Seq are deleted. Start >= End is an empty range.
type Tombstone struct {
	Start []byte
	End   []byte
	Seq   base.SeqNum
}

// Empty reports whether the tombstone covers no keys.
func (t Tombstone) Empty() bool { return bytes.Compare(t.Start, t.End) >= 0 }

// Fragment is one disjoint interval of the fragmented key space. Seqs holds
// every tombstone sequence number covering the interval, descending, so the
// newest tombstone visible at a snapshot is the first Seqs entry at or
// below the snapshot's sequence number.
type Fragment struct {
	Start []byte
	End   []byte
	Seqs  []base.SeqNum
}

// List is a set of range tombstones indexed for point queries. Add
// tombstones in any order; queries fragment lazily. A built List is
// immutable and safe for concurrent readers; Add invalidates the built
// form, so writers must serialize externally (the memtable publishes fresh
// Lists copy-on-write instead of mutating a shared one).
type List struct {
	raw   []Tombstone
	frags []Fragment
	built bool
}

// NewList returns a List over the given tombstones. The tombstones' key
// slices are retained, not copied; callers must not mutate them.
func NewList(ts []Tombstone) *List {
	l := &List{}
	for _, t := range ts {
		l.Add(t)
	}
	return l
}

// Add inserts a tombstone. Empty ranges are ignored. The key slices are
// retained, not copied.
func (l *List) Add(t Tombstone) {
	if t.Empty() {
		return
	}
	l.raw = append(l.raw, t)
	l.built = false
}

// Empty reports whether the list holds no tombstones.
func (l *List) Empty() bool { return l == nil || len(l.raw) == 0 }

// Count returns the number of tombstones added.
func (l *List) Count() int {
	if l == nil {
		return 0
	}
	return len(l.raw)
}

// Raw returns the tombstones as added (unfragmented). Callers must not
// mutate the returned slice or its keys.
func (l *List) Raw() []Tombstone {
	if l == nil {
		return nil
	}
	return l.raw
}

// Build fragments the list eagerly. Publishers of shared Lists (the
// memtable's copy-on-write store, the sstable Reader's resident list) call
// it once before handing the List to concurrent readers; afterwards every
// query is a pure read.
func (l *List) Build() {
	if l != nil {
		l.build()
	}
}

// WithTombstone returns a new built List holding l's tombstones plus t,
// leaving l untouched. Unlike NewList+Build — which re-fragments from
// scratch, O(fragments x tombstones) — this splices t into l's existing
// disjoint fragment array in one pass, so a sequence of N single-tombstone
// additions (the memtable's copy-on-write DeleteRange path) costs O(N) per
// addition instead of O(N^2). t's key slices are retained.
func (l *List) WithTombstone(t Tombstone) *List {
	if t.Empty() {
		if l == nil {
			return &List{built: true}
		}
		l.build()
		return l
	}
	nl := &List{built: true}
	var old []Fragment
	if l != nil {
		l.build()
		nl.raw = append(nl.raw, l.raw...)
		old = l.frags
	}
	nl.raw = append(nl.raw, t)

	// Copy fragments left of t, splitting the one t.Start lands in.
	i := 0
	for ; i < len(old) && bytes.Compare(old[i].End, t.Start) <= 0; i++ {
		nl.frags = append(nl.frags, old[i])
	}
	emit := func(start, end []byte, seqs []base.SeqNum, add bool) {
		if bytes.Compare(start, end) >= 0 {
			return
		}
		if add {
			seqs = insertSeq(seqs, t.Seq)
		} else {
			seqs = append([]base.SeqNum(nil), seqs...)
		}
		nl.frags = append(nl.frags, Fragment{Start: start, End: end, Seqs: seqs})
	}
	// cur tracks the uncovered remainder of [t.Start, t.End).
	cur := t.Start
	for ; i < len(old) && bytes.Compare(old[i].Start, t.End) < 0; i++ {
		f := old[i]
		if bytes.Compare(f.Start, cur) > 0 {
			// Gap before f covered only by t.
			emit(cur, f.Start, nil, true)
			cur = f.Start
		}
		// Piece of f left of t (only possible for the first overlap).
		emit(f.Start, maxKey(f.Start, cur), f.Seqs, false)
		// Overlap of f and t.
		lo, hi := maxKey(f.Start, cur), minKey(f.End, t.End)
		emit(lo, hi, f.Seqs, true)
		// Piece of f right of t.
		emit(maxKey(f.Start, t.End), f.End, f.Seqs, false)
		if bytes.Compare(f.End, cur) > 0 {
			cur = f.End
		}
	}
	// Tail of t past the last overlapping fragment.
	emit(cur, t.End, nil, true)
	// Remaining fragments right of t.
	nl.frags = append(nl.frags, old[i:]...)
	return nl
}

func insertSeq(seqs []base.SeqNum, s base.SeqNum) []base.SeqNum {
	out := make([]base.SeqNum, 0, len(seqs)+1)
	placed := false
	for _, v := range seqs {
		if !placed && s >= v {
			if s > v {
				out = append(out, s)
			}
			placed = true
		}
		out = append(out, v)
	}
	if !placed {
		out = append(out, s)
	}
	return out
}

func maxKey(a, b []byte) []byte {
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}

// build fragments the raw tombstones: collect every distinct boundary key,
// then for each elementary interval gather the sequence numbers of the
// tombstones covering it, coalescing adjacent intervals whose sequence sets
// are identical. O(B*N) with B boundaries over N tombstones — tombstones
// are rare relative to points, so simplicity wins over a sweep line.
func (l *List) build() {
	if l.built {
		return
	}
	l.frags = l.frags[:0]
	l.built = true
	if len(l.raw) == 0 {
		return
	}
	bounds := make([][]byte, 0, 2*len(l.raw))
	for _, t := range l.raw {
		bounds = append(bounds, t.Start, t.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bytes.Compare(bounds[i], bounds[j]) < 0 })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if !bytes.Equal(b, uniq[len(uniq)-1]) {
			uniq = append(uniq, b)
		}
	}
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		var seqs []base.SeqNum
		for _, t := range l.raw {
			if bytes.Compare(t.Start, lo) <= 0 && bytes.Compare(hi, t.End) <= 0 {
				seqs = append(seqs, t.Seq)
			}
		}
		if len(seqs) == 0 {
			continue
		}
		sort.Slice(seqs, func(a, b int) bool { return seqs[a] > seqs[b] })
		seqs = dedupeSeqs(seqs)
		if n := len(l.frags); n > 0 && bytes.Equal(l.frags[n-1].End, lo) && seqsEqual(l.frags[n-1].Seqs, seqs) {
			l.frags[n-1].End = hi // coalesce
			continue
		}
		l.frags = append(l.frags, Fragment{Start: lo, End: hi, Seqs: seqs})
	}
}

func dedupeSeqs(seqs []base.SeqNum) []base.SeqNum {
	out := seqs[:1]
	for _, s := range seqs[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func seqsEqual(a, b []base.SeqNum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fragments returns the disjoint fragment form, sorted by Start. The
// returned slice is owned by the List.
func (l *List) Fragments() []Fragment {
	if l == nil {
		return nil
	}
	l.build()
	return l.frags
}

// CoverSeq returns the sequence number of the newest tombstone covering
// ukey that is visible at atSeq (tombstone seq <= atSeq), or 0 when no
// visible tombstone covers ukey. A point entry (ukey, seq) is deleted at a
// read snapshot exactly when CoverSeq(ukey, snapshotSeq) > seq.
// Allocation-free once the list is built — the point-read fast path relies
// on this.
func (l *List) CoverSeq(ukey []byte, atSeq base.SeqNum) base.SeqNum {
	if l == nil || len(l.raw) == 0 {
		return 0
	}
	l.build()
	// First fragment with End > ukey; it covers ukey iff Start <= ukey.
	lo, hi := 0, len(l.frags)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.frags[mid].End, ukey) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(l.frags) || bytes.Compare(l.frags[lo].Start, ukey) > 0 {
		return 0
	}
	for _, s := range l.frags[lo].Seqs {
		if s <= atSeq {
			return s
		}
	}
	return 0
}

// Clipped flattens the fragments intersecting [lo, hi) into per-sequence
// tombstones truncated to those bounds, merging adjacent equal-sequence
// pieces back together. A nil bound is unbounded. Tombstone sequence
// numbers at or below dropLE are omitted — the compaction elision knob:
// when nothing below the output can hold covered keys and no snapshot can
// see below dropLE, those tombstones have done their work.
func (l *List) Clipped(lo, hi []byte, dropLE base.SeqNum) []Tombstone {
	if l.Empty() {
		return nil
	}
	l.build()
	var out []Tombstone
	// last[s] is the index in out of the most recent piece written for
	// sequence s; a new piece that starts exactly where that one ended is
	// the same tombstone split only by fragmentation, so extend it.
	last := make(map[base.SeqNum]int)
	for i := range l.frags {
		f := &l.frags[i]
		start, end := f.Start, f.End
		if lo != nil && bytes.Compare(start, lo) < 0 {
			start = lo
		}
		if hi != nil && bytes.Compare(hi, end) < 0 {
			end = hi
		}
		if bytes.Compare(start, end) >= 0 {
			continue
		}
		for _, s := range f.Seqs {
			if s <= dropLE {
				continue
			}
			if j, ok := last[s]; ok && bytes.Equal(out[j].End, start) {
				out[j].End = end
				continue
			}
			last[s] = len(out)
			out = append(out, Tombstone{Start: start, End: end, Seq: s})
		}
	}
	return out
}

// Span returns the user-key span [start, end) covered by the list, or nils
// when empty.
func (l *List) Span() (start, end []byte) {
	if l.Empty() {
		return nil, nil
	}
	l.build()
	if len(l.frags) == 0 {
		return nil, nil
	}
	return l.frags[0].Start, l.frags[len(l.frags)-1].End
}
