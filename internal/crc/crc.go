// Package crc provides the masked CRC-32C checksums used to protect WAL
// records and sstable blocks, following the LevelDB convention of masking
// the raw checksum so that checksumming data that embeds checksums stays
// robust.
package crc

import "hash/crc32"

var table = crc32.MakeTable(crc32.Castagnoli)

const maskDelta = 0xa282ead8

// Value computes the masked CRC-32C of data.
func Value(data []byte) uint32 { return mask(crc32.Checksum(data, table)) }

// ValueExtended computes the masked CRC-32C of the concatenation a||b
// without materializing it.
func ValueExtended(a, b []byte) uint32 {
	c := crc32.Update(crc32.Checksum(a, table), table, b)
	return mask(c)
}

func mask(c uint32) uint32 { return ((c >> 15) | (c << 17)) + maskDelta }
