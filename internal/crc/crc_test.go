package crc

import "testing"

func TestValueStability(t *testing.T) {
	a := Value([]byte("hello"))
	if a != Value([]byte("hello")) {
		t.Fatal("crc not deterministic")
	}
	if a == Value([]byte("hellp")) {
		t.Fatal("crc should differ for different input")
	}
}

func TestValueExtendedMatchesConcat(t *testing.T) {
	a, b := []byte("log-record-"), []byte("payload")
	if ValueExtended(a, b) != Value(append(append([]byte(nil), a...), b...)) {
		t.Fatal("extended crc must equal crc of concatenation")
	}
}

func TestMaskingChangesValue(t *testing.T) {
	// The masked value must differ from the raw castagnoli checksum so
	// that checksums-of-checksums stay robust; empirically just check the
	// mask is not the identity on a few inputs.
	inputs := [][]byte{[]byte(""), []byte("a"), []byte("abc")}
	for _, in := range inputs {
		v := Value(in)
		if v == 0 {
			t.Fatalf("masked crc of %q is zero", in)
		}
	}
	if Value([]byte("")) == Value([]byte{0}) {
		t.Fatal("distinct inputs collide")
	}
}
