// Package sstable implements the on-storage sorted table: data blocks, a
// single table-level bloom filter (§4.1), an index block, and a fixed
// footer. Every block carries a masked CRC-32C. PebblesDB keeps the
// LevelDB table concept intact — guards are a layer above sstables — so
// this package is shared untouched by the FLSM and leveled trees.
package sstable

import (
	"encoding/binary"
	"fmt"

	"pebblesdb/internal/base"
	"pebblesdb/internal/block"
	"pebblesdb/internal/bloom"
	"pebblesdb/internal/crc"
	"pebblesdb/internal/vfs"
)

const (
	footerLen   = 40
	tableMagic  = 0x8773537fdb4eac2e
	blockTrailerLen = 4 // crc32
)

type blockHandle struct {
	offset uint64
	length uint64 // payload length, excluding the crc trailer
}

// WriterOptions configures table construction.
type WriterOptions struct {
	BlockSize            int
	BlockRestartInterval int
	// BloomBitsPerKey sizes the table-level bloom filter; 0 disables it.
	BloomBitsPerKey int
}

func (o *WriterOptions) ensureDefaults() {
	if o.BlockSize == 0 {
		o.BlockSize = 4 << 10
	}
	if o.BlockRestartInterval == 0 {
		o.BlockRestartInterval = 16
	}
}

// Writer builds an sstable from internal keys added in increasing order.
type Writer struct {
	f       vfs.File
	opts    WriterOptions
	data    *block.Builder
	index   *block.Builder
	offset  uint64
	userKeys [][]byte // for the bloom filter
	smallest []byte
	largest  []byte
	count    int
	pendingIndexKey []byte
	pendingHandle   blockHandle
	hasPending      bool
	err error
}

// NewWriter returns a Writer emitting to f.
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	opts.ensureDefaults()
	return &Writer{
		f:     f,
		opts:  opts,
		data:  block.NewBuilder(opts.BlockRestartInterval),
		index: block.NewBuilder(1),
	}
}

// Add appends an internal key and value. Keys must arrive in strictly
// increasing base.InternalCompare order.
func (w *Writer) Add(ikey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.smallest == nil {
		w.smallest = append([]byte(nil), ikey...)
	}
	w.largest = append(w.largest[:0], ikey...)
	if w.opts.BloomBitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), base.UserKey(ikey)...))
	}
	w.flushPendingIndex()
	w.data.Add(ikey, value)
	w.count++
	if w.data.EstimatedSize() >= w.opts.BlockSize {
		w.err = w.finishDataBlock()
	}
	return w.err
}

// flushPendingIndex writes the queued index entry for the previous data
// block. Deferred so the index key could be shortened against the next
// block's first key; we use the exact last key, which is always correct.
func (w *Writer) flushPendingIndex() {
	if !w.hasPending {
		return
	}
	var hv [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hv[:], w.pendingHandle.offset)
	n += binary.PutUvarint(hv[n:], w.pendingHandle.length)
	w.index.Add(w.pendingIndexKey, hv[:n])
	w.hasPending = false
}

func (w *Writer) finishDataBlock() error {
	if w.data.Empty() {
		return nil
	}
	payload := w.data.Finish()
	h, err := w.writeRawBlock(payload)
	if err != nil {
		return err
	}
	w.pendingIndexKey = append(w.pendingIndexKey[:0], w.largest...)
	w.pendingHandle = h
	w.hasPending = true
	w.data.Reset()
	return nil
}

func (w *Writer) writeRawBlock(payload []byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(payload))}
	if _, err := w.f.Write(payload); err != nil {
		return h, err
	}
	var tr [blockTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc.Value(payload))
	if _, err := w.f.Write(tr[:]); err != nil {
		return h, err
	}
	w.offset += uint64(len(payload)) + blockTrailerLen
	return h, nil
}

// TableInfo summarizes a finished table.
type TableInfo struct {
	Size     uint64
	Smallest []byte // internal key
	Largest  []byte // internal key
	Count    int
}

// EstimatedSize returns the bytes written so far plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.data.EstimatedSize())
}

// Count returns the number of entries added so far.
func (w *Writer) Count() int { return w.count }

// Finish completes the table and returns its metadata. The caller owns
// syncing and closing the file.
func (w *Writer) Finish() (TableInfo, error) {
	if w.err != nil {
		return TableInfo{}, w.err
	}
	if w.count == 0 {
		return TableInfo{}, fmt.Errorf("sstable: empty table")
	}
	if err := w.finishDataBlock(); err != nil {
		return TableInfo{}, err
	}
	w.flushPendingIndex()

	// Filter block.
	var filterHandle blockHandle
	if w.opts.BloomBitsPerKey > 0 {
		f := bloom.Build(w.userKeys, w.opts.BloomBitsPerKey)
		h, err := w.writeRawBlock(f)
		if err != nil {
			return TableInfo{}, err
		}
		filterHandle = h
	}

	// Index block.
	indexHandle, err := w.writeRawBlock(w.index.Finish())
	if err != nil {
		return TableInfo{}, err
	}

	// Footer.
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], filterHandle.offset)
	binary.LittleEndian.PutUint64(footer[8:], filterHandle.length)
	binary.LittleEndian.PutUint64(footer[16:], indexHandle.offset)
	binary.LittleEndian.PutUint64(footer[24:], indexHandle.length)
	binary.LittleEndian.PutUint64(footer[32:], tableMagic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return TableInfo{}, err
	}
	w.offset += footerLen

	return TableInfo{
		Size:     w.offset,
		Smallest: w.smallest,
		Largest:  append([]byte(nil), w.largest...),
		Count:    w.count,
	}, nil
}
