// Package sstable implements the on-storage sorted table: data blocks, a
// single table-level bloom filter (§4.1), an index block, and a fixed
// footer. Every block carries a masked CRC-32C. PebblesDB keeps the
// LevelDB table concept intact — guards are a layer above sstables — so
// this package is shared untouched by the FLSM and leveled trees.
//
// Two on-storage formats exist:
//
//   - Format v1 (legacy, read-only): 4-byte block trailer holding only the
//     crc32 of the payload, 40-byte footer ending in magicV1. Blocks are
//     always raw.
//   - Format v2 (written for tables without range tombstones): 5-byte block
//     trailer — a 1-byte block-type tag (none/snappy) followed by the crc32
//     of payload+type — and a 48-byte footer carrying a format-version byte
//     and ending in magicV2. Data blocks are compressed when the codec
//     saves at least 12.5%; filter and index blocks are always raw (they
//     stay resident in memory, so compressing them would buy nothing after
//     open).
//   - Format v3 (written only when the table holds range tombstones): v2
//     plus a dedicated range-del block (fragmented, coalesced tombstones in
//     internal-key order; always raw, resident like the index) addressed by
//     a third handle in a 64-byte footer ending in magicV3. Tables without
//     tombstones keep the v2 footer, so the overwhelmingly common case is
//     byte-identical to before.
//   - Format v4 (written only when a prefix bloom filter is configured): v3
//     plus a prefix-filter block — one byte holding the fixed prefix length
//     followed by a bloom filter over the distinct first-P-byte user-key
//     prefixes in the table (always raw, resident like the key filter) —
//     addressed by a fourth handle in an 80-byte footer ending in magicV4.
//     Prefix iterators consult it to skip tables whose key range overlaps
//     the scan but whose contents cannot match the prefix. Stores without
//     the knob keep writing v2/v3; all older formats stay readable.
package sstable

import (
	"encoding/binary"
	"fmt"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/block"
	"pebblesdb/internal/bloom"
	"pebblesdb/internal/compress"
	"pebblesdb/internal/crc"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/vfs"
)

const (
	footerLenV1 = 40
	footerLenV2 = 48
	footerLenV3 = 64
	footerLenV4 = 80

	tableMagicV1 = 0x8773537fdb4eac2e
	tableMagicV2 = 0xf09f95ccdb4eac2e
	tableMagicV3 = 0xf09f97bbdb4eac2e
	tableMagicV4 = 0xf09f94aedb4eac2e

	formatV1 = 1
	formatV2 = 2
	formatV3 = 3
	formatV4 = 4

	blockTrailerLenV1 = 4 // crc32(payload)
	blockTrailerLenV2 = 5 // type byte + crc32(payload ++ type)

	// blockTypeNone / blockTypeSnappy are the v2 trailer type tags
	// (LevelDB-compatible values).
	blockTypeNone   = 0
	blockTypeSnappy = 1
)

type blockHandle struct {
	offset uint64
	length uint64 // physical payload length, excluding the trailer
}

// WriterOptions configures table construction.
type WriterOptions struct {
	BlockSize            int
	BlockRestartInterval int
	// BloomBitsPerKey sizes the table-level bloom filter; 0 disables it.
	BloomBitsPerKey int
	// PrefixBloomLength, when positive, adds a second bloom filter over the
	// distinct first-PrefixBloomLength-byte user-key prefixes (keys shorter
	// than the length are omitted: they can never carry a full-length
	// prefix). Tables gain the v4 footer; 0 keeps the v2/v3 formats.
	PrefixBloomLength int
	// Compression selects the data-block codec. Blocks that fail to shrink
	// by at least 1/8th are stored raw regardless.
	Compression compress.Kind
}

func (o *WriterOptions) ensureDefaults() {
	if o.BlockSize == 0 {
		o.BlockSize = 4 << 10
	}
	if o.BlockRestartInterval == 0 {
		o.BlockRestartInterval = 16
	}
}

// CompressionStats accounts the writer side of the block codec: logical
// bytes are data-block payloads before compression, physical bytes are
// what actually reached storage. The gap is IO saved on every future read
// and compaction of the table.
type CompressionStats struct {
	// LogicalDataBytes / PhysicalDataBytes cover data blocks only
	// (excluding trailers, filter, index and footer).
	LogicalDataBytes  int64
	PhysicalDataBytes int64
	// DataBlocks / CompressedBlocks count data blocks written vs those
	// that were stored compressed.
	DataBlocks       int64
	CompressedBlocks int64
	// CompressNanos is time spent inside the codec's encoder.
	CompressNanos int64
}

// Merge accumulates o into s.
func (s *CompressionStats) Merge(o CompressionStats) {
	s.LogicalDataBytes += o.LogicalDataBytes
	s.PhysicalDataBytes += o.PhysicalDataBytes
	s.DataBlocks += o.DataBlocks
	s.CompressedBlocks += o.CompressedBlocks
	s.CompressNanos += o.CompressNanos
}

// Ratio returns physical/logical data bytes (1.0 = incompressible, 0 before
// any data is written).
func (s CompressionStats) Ratio() float64 {
	if s.LogicalDataBytes == 0 {
		return 0
	}
	return float64(s.PhysicalDataBytes) / float64(s.LogicalDataBytes)
}

// Writer builds a format-v2 sstable from internal keys added in increasing
// order.
type Writer struct {
	f               vfs.File
	opts            WriterOptions
	data            *block.Builder
	index           *block.Builder
	offset          uint64
	userKeys        [][]byte // for the bloom filter
	prefixes        [][]byte // distinct key prefixes for the prefix filter
	smallest        []byte
	largest         []byte
	count           int
	pendingIndexKey []byte
	pendingHandle   blockHandle
	hasPending      bool
	cbuf            []byte // reusable compression output buffer
	stats           CompressionStats
	rangeDels       rangedel.List
	err             error
}

// NewWriter returns a Writer emitting to f.
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	opts.ensureDefaults()
	return &Writer{
		f:     f,
		opts:  opts,
		data:  block.NewBuilder(opts.BlockRestartInterval),
		index: block.NewBuilder(1),
	}
}

// Add appends an internal key and value. Keys must arrive in strictly
// increasing base.InternalCompare order.
func (w *Writer) Add(ikey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.smallest == nil {
		w.smallest = append([]byte(nil), ikey...)
	}
	w.largest = append(w.largest[:0], ikey...)
	if w.opts.BloomBitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), base.UserKey(ikey)...))
	}
	if p := w.opts.PrefixBloomLength; p > 0 {
		// Keys arrive sorted, so equal prefixes are adjacent: comparing
		// against the last collected prefix dedups in O(1).
		if ukey := base.UserKey(ikey); len(ukey) >= p {
			if n := len(w.prefixes); n == 0 || string(w.prefixes[n-1]) != string(ukey[:p]) {
				w.prefixes = append(w.prefixes, append([]byte(nil), ukey[:p]...))
			}
		}
	}
	w.flushPendingIndex()
	w.data.Add(ikey, value)
	w.count++
	if w.data.EstimatedSize() >= w.opts.BlockSize {
		w.err = w.finishDataBlock()
	}
	return w.err
}

// AddRangeDel records a range tombstone over [start, end) at seq. Unlike
// Add, calls may arrive in any order and ranges may overlap: Finish
// fragments and coalesces the set into the table's range-del block. The key
// slices must stay immutable until Finish.
func (w *Writer) AddRangeDel(start, end []byte, seq base.SeqNum) {
	w.rangeDels.Add(rangedel.Tombstone{Start: start, End: end, Seq: seq})
}

// flushPendingIndex writes the queued index entry for the previous data
// block. Deferred so the index key could be shortened against the next
// block's first key; we use the exact last key, which is always correct.
func (w *Writer) flushPendingIndex() {
	if !w.hasPending {
		return
	}
	var hv [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hv[:], w.pendingHandle.offset)
	n += binary.PutUvarint(hv[n:], w.pendingHandle.length)
	w.index.Add(w.pendingIndexKey, hv[:n])
	w.hasPending = false
}

func (w *Writer) finishDataBlock() error {
	if w.data.Empty() {
		return nil
	}
	payload := w.data.Finish()
	h, err := w.writeDataBlock(payload)
	if err != nil {
		return err
	}
	w.pendingIndexKey = append(w.pendingIndexKey[:0], w.largest...)
	w.pendingHandle = h
	w.hasPending = true
	w.data.Reset()
	return nil
}

// writeDataBlock writes one data block, compressing it when the configured
// codec shrinks the payload by at least 12.5% (LevelDB's threshold: below
// that, the decompression cost on every future read outweighs the IO
// saved).
func (w *Writer) writeDataBlock(payload []byte) (blockHandle, error) {
	stored, typ := payload, byte(blockTypeNone)
	if w.opts.Compression == compress.Snappy {
		start := time.Now()
		w.cbuf = compress.Encode(w.cbuf[:cap(w.cbuf)], payload)
		w.stats.CompressNanos += time.Since(start).Nanoseconds()
		if len(w.cbuf) < len(payload)-len(payload)/8 {
			stored, typ = w.cbuf, blockTypeSnappy
			w.stats.CompressedBlocks++
		}
	}
	w.stats.DataBlocks++
	w.stats.LogicalDataBytes += int64(len(payload))
	w.stats.PhysicalDataBytes += int64(len(stored))
	return w.writeRawBlock(stored, typ)
}

// writeRawBlock writes an already-encoded payload with its v2 trailer.
func (w *Writer) writeRawBlock(payload []byte, typ byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(payload))}
	if _, err := w.f.Write(payload); err != nil {
		return h, err
	}
	var tr [blockTrailerLenV2]byte
	tr[0] = typ
	binary.LittleEndian.PutUint32(tr[1:], crc.ValueExtended(payload, tr[:1]))
	if _, err := w.f.Write(tr[:]); err != nil {
		return h, err
	}
	w.offset += uint64(len(payload)) + blockTrailerLenV2
	return h, nil
}

// TableInfo summarizes a finished table. Smallest and Largest cover both
// point entries and range tombstones; a table whose upper bound comes from
// a tombstone's exclusive end carries a range-del sentinel key there.
type TableInfo struct {
	Size     uint64
	Smallest []byte // internal key
	Largest  []byte // internal key
	Count    int    // point entries
	// NumRangeDels counts tombstone fragments in the range-del block;
	// RangeDelStart/RangeDelEnd are the user-key span [start, end) they
	// cover (nil when none). Reads use the span to skip clean tables.
	NumRangeDels  int
	RangeDelStart []byte
	RangeDelEnd   []byte
	// Compression accounts the data-block codec work for this table.
	Compression CompressionStats
}

// EstimatedSize returns the bytes written so far plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.data.EstimatedSize())
}

// Count returns the number of entries added so far.
func (w *Writer) Count() int { return w.count }

// Finish completes the table and returns its metadata. The caller owns
// syncing and closing the file. A table may consist solely of range
// tombstones; a table with neither points nor tombstones is an error.
func (w *Writer) Finish() (TableInfo, error) {
	if w.err != nil {
		return TableInfo{}, w.err
	}
	frags := w.rangeDels.Fragments()
	if w.count == 0 && len(frags) == 0 {
		return TableInfo{}, fmt.Errorf("sstable: empty table")
	}
	if err := w.finishDataBlock(); err != nil {
		return TableInfo{}, err
	}
	w.flushPendingIndex()

	// Range-del block (never compressed: resident like the index). One
	// entry per (fragment, seq), in internal-key order — fragment starts
	// ascending, and within a start the fragment's seqs descending, which
	// is exactly descending-trailer order.
	var rangeDelHandle blockHandle
	info := TableInfo{
		Smallest: w.smallest,
		Largest:  append([]byte(nil), w.largest...),
		Count:    w.count,
	}
	if len(frags) > 0 {
		rd := block.NewBuilder(1)
		for _, f := range frags {
			for _, seq := range f.Seqs {
				rd.Add(base.MakeInternalKey(nil, f.Start, seq, base.KindRangeDelete), f.End)
				info.NumRangeDels++
			}
		}
		h, err := w.writeRawBlock(rd.Finish(), blockTypeNone)
		if err != nil {
			return TableInfo{}, err
		}
		rangeDelHandle = h

		// Extend the table bounds to the tombstone span: pruning, guard
		// assignment and compaction picking must see the covered range.
		// Copied, not aliased: fragment keys may point into caller-owned
		// buffers (a compaction's cut boundary is the merge iterator's
		// reused key buffer) that are rewritten after Finish returns, and
		// these spans outlive the compaction in FileMetadata and the
		// manifest.
		info.RangeDelStart = append([]byte(nil), frags[0].Start...)
		info.RangeDelEnd = append([]byte(nil), frags[len(frags)-1].End...)
		rdSmallest := base.MakeInternalKey(nil, info.RangeDelStart, frags[0].Seqs[0], base.KindRangeDelete)
		if info.Smallest == nil || base.InternalCompare(rdSmallest, info.Smallest) < 0 {
			info.Smallest = rdSmallest
		}
		rdLargest := base.MakeRangeDelSentinelKey(nil, info.RangeDelEnd)
		if info.Largest == nil || base.InternalCompare(rdLargest, info.Largest) > 0 {
			info.Largest = rdLargest
		}
	}

	// Filter block (never compressed: resident for the Reader's lifetime).
	var filterHandle blockHandle
	if w.opts.BloomBitsPerKey > 0 && len(w.userKeys) > 0 {
		f := bloom.Build(w.userKeys, w.opts.BloomBitsPerKey)
		h, err := w.writeRawBlock(f, blockTypeNone)
		if err != nil {
			return TableInfo{}, err
		}
		filterHandle = h
	}

	// Prefix-filter block (resident, never compressed): the fixed prefix
	// length followed by a bloom filter over the table's distinct prefixes.
	// Sized by the same bits-per-key knob as the key filter; distinct
	// prefixes are far fewer than keys, so the block is small.
	var prefixHandle blockHandle
	if w.opts.PrefixBloomLength > 0 && len(w.prefixes) > 0 {
		bits := w.opts.BloomBitsPerKey
		if bits <= 0 {
			bits = 10
		}
		blk := EncodePrefixFilter(w.opts.PrefixBloomLength, bloom.Build(w.prefixes, bits))
		h, err := w.writeRawBlock(blk, blockTypeNone)
		if err != nil {
			return TableInfo{}, err
		}
		prefixHandle = h
	}

	// Index block (never compressed, same reason). A tombstone-only table
	// still writes its (empty) index so the reader's open path is uniform.
	indexHandle, err := w.writeRawBlock(w.index.Finish(), blockTypeNone)
	if err != nil {
		return TableInfo{}, err
	}

	// Footer: handles, format version, magic. Tables without tombstones
	// keep the v2 footer so existing tables and tools see no change; the v4
	// footer appears only when a prefix filter was actually written.
	if prefixHandle.length > 0 {
		var footer [footerLenV4]byte
		binary.LittleEndian.PutUint64(footer[0:], filterHandle.offset)
		binary.LittleEndian.PutUint64(footer[8:], filterHandle.length)
		binary.LittleEndian.PutUint64(footer[16:], indexHandle.offset)
		binary.LittleEndian.PutUint64(footer[24:], indexHandle.length)
		binary.LittleEndian.PutUint64(footer[32:], rangeDelHandle.offset)
		binary.LittleEndian.PutUint64(footer[40:], rangeDelHandle.length)
		binary.LittleEndian.PutUint64(footer[48:], prefixHandle.offset)
		binary.LittleEndian.PutUint64(footer[56:], prefixHandle.length)
		footer[64] = formatV4
		binary.LittleEndian.PutUint64(footer[72:], tableMagicV4)
		if _, err := w.f.Write(footer[:]); err != nil {
			return TableInfo{}, err
		}
		w.offset += footerLenV4
	} else if len(frags) == 0 {
		var footer [footerLenV2]byte
		binary.LittleEndian.PutUint64(footer[0:], filterHandle.offset)
		binary.LittleEndian.PutUint64(footer[8:], filterHandle.length)
		binary.LittleEndian.PutUint64(footer[16:], indexHandle.offset)
		binary.LittleEndian.PutUint64(footer[24:], indexHandle.length)
		footer[32] = formatV2
		binary.LittleEndian.PutUint64(footer[40:], tableMagicV2)
		if _, err := w.f.Write(footer[:]); err != nil {
			return TableInfo{}, err
		}
		w.offset += footerLenV2
	} else {
		var footer [footerLenV3]byte
		binary.LittleEndian.PutUint64(footer[0:], filterHandle.offset)
		binary.LittleEndian.PutUint64(footer[8:], filterHandle.length)
		binary.LittleEndian.PutUint64(footer[16:], indexHandle.offset)
		binary.LittleEndian.PutUint64(footer[24:], indexHandle.length)
		binary.LittleEndian.PutUint64(footer[32:], rangeDelHandle.offset)
		binary.LittleEndian.PutUint64(footer[40:], rangeDelHandle.length)
		footer[48] = formatV3
		binary.LittleEndian.PutUint64(footer[56:], tableMagicV3)
		if _, err := w.f.Write(footer[:]); err != nil {
			return TableInfo{}, err
		}
		w.offset += footerLenV3
	}

	info.Size = w.offset
	info.Compression = w.stats
	return info, nil
}
