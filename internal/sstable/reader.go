package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/block"
	"pebblesdb/internal/bloom"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/compress"
	"pebblesdb/internal/crc"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/vfs"
)

// ErrCorrupt indicates a structurally invalid table or checksum failure.
var ErrCorrupt = errors.New("sstable: corrupt table")

// CodecStats aggregates the read-side codec work across every Reader that
// shares it (one instance per table cache). Cache hits on decompressed
// blocks bypass the codec entirely and are invisible here — that is the
// point of caching decompressed payloads.
type CodecStats struct {
	// BlocksDecompressed counts compressed blocks inflated on read.
	BlocksDecompressed atomic.Int64
	// BytesDecompressed is decompressed payload bytes produced.
	BytesDecompressed atomic.Int64
	// DecompressNanos is time spent inside the codec's decoder.
	DecompressNanos atomic.Int64
}

// ReadaheadSize is the chunk size prefetched by sequential iterators
// (compaction inputs, full-table scans): one ReadAt per ~256KiB of table
// instead of one per block.
const ReadaheadSize = 256 << 10

// Reader provides random access to an sstable. The index block and bloom
// filter stay resident for the Reader's lifetime (the paper stores guards
// and bloom filters in memory, §3.7); data blocks go through the optional
// shared block cache, which stores the *decompressed* payload so cache
// hits never pay the codec.
type Reader struct {
	f       vfs.File
	fileNum base.FileNum
	size    int64
	version int // formatV1 .. formatV4
	index   []byte
	filter  bloom.Filter
	blocks  *cache.Cache // shared block cache; may be nil
	codec   *CodecStats  // shared decompression counters; may be nil

	// prefixFilter/prefixLen hold the resident v4 prefix bloom filter: a
	// filter over the distinct first-prefixLen-byte user-key prefixes in the
	// table. nil/0 for tables without one (all pre-v4 formats).
	prefixFilter bloom.Filter
	prefixLen    int

	// rangeDels is the resident, pre-built tombstone list decoded from the
	// v3 range-del block; nil for tables without tombstones. Like the index
	// and filter it stays in memory for the Reader's lifetime, so visibility
	// checks on the point-read path are a lock-free binary search.
	rangeDels *rangedel.List

	// refs counts users of the Reader: the table cache holds one
	// reference, and every caller of tablecache.Find holds another until
	// it calls Unref. The file closes when the count reaches zero, so
	// cache eviction never yanks a table out from under a reader.
	refs atomic.Int32
}

// Ref acquires a reference.
func (r *Reader) Ref() { r.refs.Add(1) }

// Unref releases a reference, closing the file on the last one.
func (r *Reader) Unref() error {
	if r.refs.Add(-1) == 0 {
		return r.f.Close()
	}
	return nil
}

// Open reads the table's footer, index and filter. The Reader owns f and
// closes it on Close. codec, when non-nil, receives decompression counters
// shared across readers.
func Open(f vfs.File, size int64, fileNum base.FileNum, blockCache *cache.Cache, codec *CodecStats) (*Reader, error) {
	if size < footerLenV1 {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	var magicBuf [8]byte
	if _, err := f.ReadAt(magicBuf[:], size-8); err != nil {
		return nil, err
	}
	r := &Reader{f: f, fileNum: fileNum, size: size, blocks: blockCache, codec: codec}
	r.refs.Store(1)

	var filterH, indexH, rangeDelH, prefixH blockHandle
	switch binary.LittleEndian.Uint64(magicBuf[:]) {
	case tableMagicV4:
		if size < footerLenV4 {
			return nil, fmt.Errorf("%w: v4 file too small (%d bytes)", ErrCorrupt, size)
		}
		var footer [footerLenV4]byte
		if _, err := f.ReadAt(footer[:], size-footerLenV4); err != nil {
			return nil, err
		}
		if v := footer[64]; v != formatV4 {
			return nil, fmt.Errorf("%w: unknown format version %d", ErrCorrupt, v)
		}
		r.version = formatV4
		filterH = blockHandle{binary.LittleEndian.Uint64(footer[0:]), binary.LittleEndian.Uint64(footer[8:])}
		indexH = blockHandle{binary.LittleEndian.Uint64(footer[16:]), binary.LittleEndian.Uint64(footer[24:])}
		rangeDelH = blockHandle{binary.LittleEndian.Uint64(footer[32:]), binary.LittleEndian.Uint64(footer[40:])}
		prefixH = blockHandle{binary.LittleEndian.Uint64(footer[48:]), binary.LittleEndian.Uint64(footer[56:])}
	case tableMagicV3:
		if size < footerLenV3 {
			return nil, fmt.Errorf("%w: v3 file too small (%d bytes)", ErrCorrupt, size)
		}
		var footer [footerLenV3]byte
		if _, err := f.ReadAt(footer[:], size-footerLenV3); err != nil {
			return nil, err
		}
		if v := footer[48]; v != formatV3 {
			return nil, fmt.Errorf("%w: unknown format version %d", ErrCorrupt, v)
		}
		r.version = formatV3
		filterH = blockHandle{binary.LittleEndian.Uint64(footer[0:]), binary.LittleEndian.Uint64(footer[8:])}
		indexH = blockHandle{binary.LittleEndian.Uint64(footer[16:]), binary.LittleEndian.Uint64(footer[24:])}
		rangeDelH = blockHandle{binary.LittleEndian.Uint64(footer[32:]), binary.LittleEndian.Uint64(footer[40:])}
	case tableMagicV2:
		if size < footerLenV2 {
			return nil, fmt.Errorf("%w: v2 file too small (%d bytes)", ErrCorrupt, size)
		}
		var footer [footerLenV2]byte
		if _, err := f.ReadAt(footer[:], size-footerLenV2); err != nil {
			return nil, err
		}
		if v := footer[32]; v != formatV2 {
			return nil, fmt.Errorf("%w: unknown format version %d", ErrCorrupt, v)
		}
		r.version = formatV2
		filterH = blockHandle{binary.LittleEndian.Uint64(footer[0:]), binary.LittleEndian.Uint64(footer[8:])}
		indexH = blockHandle{binary.LittleEndian.Uint64(footer[16:]), binary.LittleEndian.Uint64(footer[24:])}
	case tableMagicV1:
		var footer [footerLenV1]byte
		if _, err := f.ReadAt(footer[:], size-footerLenV1); err != nil {
			return nil, err
		}
		r.version = formatV1
		filterH = blockHandle{binary.LittleEndian.Uint64(footer[0:]), binary.LittleEndian.Uint64(footer[8:])}
		indexH = blockHandle{binary.LittleEndian.Uint64(footer[16:]), binary.LittleEndian.Uint64(footer[24:])}
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}

	idx, err := r.readBlockUncached(indexH, nil)
	if err != nil {
		return nil, err
	}
	// Validate the index's restart array once here; the per-Get probe and
	// the table iterator then use InitValidated and skip the O(entries)
	// scan (index blocks restart on every entry).
	var check block.Iter
	if err := check.Init(idx, base.InternalCompare); err != nil {
		return nil, fmt.Errorf("%w: bad index block", ErrCorrupt)
	}
	r.index = idx
	if filterH.length > 0 {
		flt, err := r.readBlockUncached(filterH, nil)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(flt)
	}
	if prefixH.length > 0 {
		blk, err := r.readBlockUncached(prefixH, nil)
		if err != nil {
			return nil, err
		}
		p, pf, err := DecodePrefixFilter(blk)
		if err != nil {
			return nil, err
		}
		r.prefixLen, r.prefixFilter = p, pf
	}
	if rangeDelH.length > 0 {
		payload, err := r.readBlockUncached(rangeDelH, nil)
		if err != nil {
			return nil, err
		}
		var it block.Iter
		if err := it.Init(payload, base.InternalCompare); err != nil {
			return nil, fmt.Errorf("%w: bad range-del block", ErrCorrupt)
		}
		l := &rangedel.List{}
		for it.First(); it.Valid(); it.Next() {
			start, seq, kind, ok := base.DecodeInternalKey(it.Key())
			if !ok || kind != base.KindRangeDelete {
				return nil, fmt.Errorf("%w: bad range-del entry", ErrCorrupt)
			}
			l.Add(rangedel.Tombstone{
				Start: append([]byte(nil), start...),
				End:   append([]byte(nil), it.Value()...),
				Seq:   seq,
			})
		}
		if err := it.Error(); err != nil {
			return nil, err
		}
		l.Build()
		r.rangeDels = l
	}
	return r, nil
}

// RangeDels returns the table's resident range-tombstone list, or nil when
// the table has none. The list is immutable and safe for concurrent use.
func (r *Reader) RangeDels() *rangedel.List { return r.rangeDels }

// trailerLen returns the block trailer length for the table's format.
func (r *Reader) trailerLen() uint64 {
	if r.version == formatV1 {
		return blockTrailerLenV1
	}
	return blockTrailerLenV2
}

// readBlockUncached reads, verifies and decompresses the block at h,
// bypassing the cache. ra, when non-nil, supplies the bytes through a
// readahead buffer instead of a per-block ReadAt.
func (r *Reader) readBlockUncached(h blockHandle, ra *readahead) ([]byte, error) {
	trailer := r.trailerLen()
	if h.offset+h.length+trailer > uint64(r.size) {
		return nil, fmt.Errorf("%w: block handle out of range", ErrCorrupt)
	}
	buf := make([]byte, h.length+trailer)
	if ra != nil {
		if err := ra.readAt(buf, int64(h.offset)); err != nil {
			return nil, err
		}
	} else if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, err
	}
	payload := buf[:h.length]

	if r.version == formatV1 {
		want := binary.LittleEndian.Uint32(buf[h.length:])
		if crc.Value(payload) != want {
			return nil, fmt.Errorf("%w: block checksum mismatch at offset %d", ErrCorrupt, h.offset)
		}
		return payload, nil
	}

	typ := buf[h.length]
	want := binary.LittleEndian.Uint32(buf[h.length+1:])
	if crc.ValueExtended(payload, buf[h.length:h.length+1]) != want {
		return nil, fmt.Errorf("%w: block checksum mismatch at offset %d", ErrCorrupt, h.offset)
	}
	switch typ {
	case blockTypeNone:
		return payload, nil
	case blockTypeSnappy:
		start := time.Now()
		decoded, err := compress.Decode(nil, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: snappy block at offset %d: %v", ErrCorrupt, h.offset, err)
		}
		if r.codec != nil {
			r.codec.BlocksDecompressed.Add(1)
			r.codec.BytesDecompressed.Add(int64(len(decoded)))
			r.codec.DecompressNanos.Add(time.Since(start).Nanoseconds())
		}
		return decoded, nil
	default:
		return nil, fmt.Errorf("%w: unknown block type %d at offset %d", ErrCorrupt, typ, h.offset)
	}
}

// readBlock returns the decompressed payload of the block at h. Random
// reads (ra == nil) fill the shared cache, charging the decompressed size;
// sequential reads consult the cache but never populate it, so one-pass
// compaction scans cannot evict the read path's working set. stats, when
// non-nil, receives the block-cache outcome (point-read metrics).
func (r *Reader) readBlock(h blockHandle, ra *readahead, stats *GetStats) ([]byte, error) {
	if r.blocks != nil {
		if v, ok := r.blocks.Get(cache.Key{File: uint64(r.fileNum), Off: h.offset}); ok {
			if stats != nil {
				stats.BlockHits++
			}
			return v.([]byte), nil
		}
	}
	if stats != nil {
		stats.BlockMisses++
	}
	payload, err := r.readBlockUncached(h, ra)
	if err != nil {
		return nil, err
	}
	if r.blocks != nil && ra == nil {
		r.blocks.Set(cache.Key{File: uint64(r.fileNum), Off: h.offset}, payload, int64(len(payload)))
	}
	return payload, nil
}

// readahead is the sequential-read buffer: a sliding ~256KiB window over
// the file served from a single ReadAt, refilled as the iterator walks
// forward. Reads outside the window (backward iteration after a reposition,
// oversized blocks) fall through untouched.
type readahead struct {
	f    vfs.File
	size int64
	buf  []byte
	off  int64 // file offset of buf[0]
}

func (ra *readahead) readAt(p []byte, off int64) error {
	if off < ra.off || off+int64(len(p)) > ra.off+int64(len(ra.buf)) {
		if int64(len(p)) >= ReadaheadSize {
			// Block larger than the window: read it directly.
			return fullReadAt(ra.f, p, off)
		}
		want := int64(ReadaheadSize)
		if off+want > ra.size {
			want = ra.size - off
		}
		if want < int64(len(p)) {
			return fmt.Errorf("%w: read beyond file end", ErrCorrupt)
		}
		if cap(ra.buf) < int(want) {
			ra.buf = make([]byte, want)
		}
		ra.buf = ra.buf[:want]
		if err := fullReadAt(ra.f, ra.buf, off); err != nil {
			ra.buf = ra.buf[:0]
			return err
		}
		ra.off = off
	}
	copy(p, ra.buf[off-ra.off:])
	return nil
}

// fullReadAt is ReadAt tolerating the io.EOF that a read ending exactly at
// the file end may legally return alongside full data.
func fullReadAt(f vfs.File, p []byte, off int64) error {
	n, err := f.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		return nil
	}
	return err
}

// MayContain consults the table's bloom filter for ukey. True when no
// filter is present.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(ukey)
}

// MayContainPrefix consults the table's prefix bloom filter (format v4): a
// false return guarantees no user key in the table starts with pfx. True
// when the table has no prefix filter or was built for a different prefix
// length — the filter only answers for exactly the length it was built over.
func (r *Reader) MayContainPrefix(pfx []byte) bool {
	if r.prefixFilter == nil || len(pfx) != r.prefixLen {
		return true
	}
	return r.prefixFilter.MayContain(pfx)
}

// PrefixFilterLength returns the prefix length the table's prefix filter
// was built over, or 0 when the table has none.
func (r *Reader) PrefixFilterLength() int { return r.prefixLen }

// FilterMemory returns the resident bloom-filter size in bytes — key and
// prefix filters together (Table 5.4).
func (r *Reader) FilterMemory() int { return len(r.filter) + len(r.prefixFilter) }

// IndexMemory returns the resident index-block size in bytes.
func (r *Reader) IndexMemory() int { return len(r.index) }

// FileNum returns the table's file number.
func (r *Reader) FileNum() base.FileNum { return r.fileNum }

// FormatVersion returns the table's on-storage format (1 or 2).
func (r *Reader) FormatVersion() int { return r.version }

func decodeHandle(v []byte) (blockHandle, bool) {
	off, n := binary.Uvarint(v)
	if n <= 0 {
		return blockHandle{}, false
	}
	length, m := binary.Uvarint(v[n:])
	if m <= 0 {
		return blockHandle{}, false
	}
	return blockHandle{off, length}, true
}

// GetScratched is the allocation-free point probe: it returns the newest
// visible version of the search key's user key, or found=false when this
// table holds none. The returned value aliases the (immutable) block
// payload — cached or freshly read — so it stays valid after the scratch is
// reused; the sequence number and kind are decoded here so callers never
// need the entry's key bytes, which live in scratch-owned buffers.
func (r *Reader) GetScratched(search []byte, s *GetScratch) (value []byte, seq base.SeqNum, kind base.Kind, found bool, err error) {
	s.Stats.TablesProbed++
	if err := s.index.InitValidated(r.index, base.InternalCompare); err != nil {
		return nil, 0, 0, false, err
	}
	// Index keys are each block's largest key, so the first index entry
	// >= search points at the only block that can contain the search key.
	s.index.SeekGE(search)
	if err := s.index.Error(); err != nil {
		return nil, 0, 0, false, err
	}
	if !s.index.Valid() {
		return nil, 0, 0, r.noteMiss(s), nil
	}
	h, ok := decodeHandle(s.index.Value())
	if !ok {
		return nil, 0, 0, false, fmt.Errorf("%w: bad index entry", ErrCorrupt)
	}
	payload, err := r.readBlock(h, nil, &s.Stats)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if err := s.data.Init(payload, base.InternalCompare); err != nil {
		return nil, 0, 0, false, err
	}
	s.data.SeekGE(search)
	if err := s.data.Error(); err != nil {
		return nil, 0, 0, false, err
	}
	if !s.data.Valid() {
		return nil, 0, 0, r.noteMiss(s), nil
	}
	ikey := s.data.Key()
	gotU, seq, kind, ok := base.DecodeInternalKey(ikey)
	if !ok || !bytes.Equal(gotU, base.UserKey(search)) {
		return nil, 0, 0, r.noteMiss(s), nil
	}
	return s.data.Value(), seq, kind, true, nil
}

// noteMiss charges a bloom false positive when a filtered table was probed
// without a hit. It always returns false, for use in probe-miss returns.
func (r *Reader) noteMiss(s *GetScratch) bool {
	if r.filter != nil {
		s.Stats.BloomFalsePositives++
	}
	return false
}

// Get returns the internal key and value of the newest visible version of
// the search key's user key. found=false means this table holds no visible
// version. Convenience wrapper over GetScratched for tests and tools; the
// returned slices are freshly allocated.
func (r *Reader) Get(search []byte) (ikey, value []byte, found bool, err error) {
	s := AcquireGetScratch()
	defer ReleaseGetScratch(s)
	v, seq, kind, found, err := r.GetScratched(search, s)
	if err != nil || !found {
		return nil, nil, false, err
	}
	k := base.MakeInternalKey(nil, base.UserKey(search), seq, kind)
	return k, append([]byte(nil), v...), true, nil
}

// NewIter returns a random-access iterator over the table's internal keys.
func (r *Reader) NewIter() iterator.Iterator {
	return r.newIter(false)
}

// NewSequentialIter returns an iterator for one-pass scans (compaction
// inputs): it prefetches ReadaheadSize chunks instead of issuing one ReadAt
// per block, and does not populate the block cache.
func (r *Reader) NewSequentialIter() iterator.Iterator {
	return r.newIter(true)
}

func (r *Reader) newIter(sequential bool) iterator.Iterator {
	t := &TableIter{}
	if err := t.Init(r); err != nil {
		return &iterator.Empty{Err: err}
	}
	if sequential {
		t.ra = &readahead{f: r.f, size: r.size}
	}
	return t
}

// Close drops the initial reference (held by the opener / table cache).
func (r *Reader) Close() error { return r.Unref() }

// TableIter is the two-level iterator: an index cursor selecting data
// blocks, and a data cursor within the current block. Both cursors are
// embedded by value and re-pointed with Init, so walking a table allocates
// nothing beyond the iterator itself — and a TableIter is itself reusable
// across tables via Init, which is how the iterator stack keeps a pooled
// set of table cursors alive across Seek calls (internal/treebase).
type TableIter struct {
	r      *Reader
	index  block.Iter
	data   block.Iter
	dataOK bool       // data is initialized on the current index block
	ra     *readahead // non-nil in sequential mode
	err    error
}

// Init points the iterator at table r, retaining both block cursors' key
// buffers. The caller owns r's reference accounting.
func (t *TableIter) Init(r *Reader) error {
	t.r = r
	t.dataOK = false
	t.ra = nil
	t.err = nil
	t.data.Release()
	return t.index.InitValidated(r.index, base.InternalCompare)
}

// ReleaseBuffers drops the iterator's references into the table and its
// block payloads (keeping buffer capacity), so a pooled idle iterator pins
// neither cache entries nor the Reader.
func (t *TableIter) ReleaseBuffers() {
	t.r = nil
	t.ra = nil
	t.dataOK = false
	t.index.Release()
	t.data.Release()
}

func (t *TableIter) loadBlock() bool {
	t.dataOK = false
	if !t.index.Valid() {
		return false
	}
	h, ok := decodeHandle(t.index.Value())
	if !ok {
		t.err = fmt.Errorf("%w: bad index entry", ErrCorrupt)
		return false
	}
	payload, err := t.r.readBlock(h, t.ra, nil)
	if err != nil {
		t.err = err
		return false
	}
	if err := t.data.Init(payload, base.InternalCompare); err != nil {
		t.err = err
		return false
	}
	t.dataOK = true
	return true
}

func (t *TableIter) SeekGE(target []byte) {
	if t.err != nil {
		return
	}
	// Index keys are each block's largest key, so the first index entry
	// >= target points at the only block that can contain target.
	t.index.SeekGE(target)
	if !t.loadBlock() {
		return
	}
	t.data.SeekGE(target)
	t.skipForwardIfExhausted()
}

// SeekLT positions at the last entry with key < target.
func (t *TableIter) SeekLT(target []byte) {
	if t.err != nil {
		return
	}
	// The first index entry >= target points at the only block that can
	// contain keys in [target's block lower edge, target); earlier blocks
	// hold strictly smaller keys.
	t.index.SeekGE(target)
	if !t.index.Valid() {
		// target is beyond every key in the table.
		t.Last()
		return
	}
	if !t.loadBlock() {
		return
	}
	t.data.SeekLT(target)
	t.skipBackwardIfExhausted()
}

func (t *TableIter) First() {
	if t.err != nil {
		return
	}
	t.index.First()
	if !t.loadBlock() {
		return
	}
	t.data.First()
	t.skipForwardIfExhausted()
}

func (t *TableIter) Last() {
	if t.err != nil {
		return
	}
	t.index.Last()
	if !t.loadBlock() {
		return
	}
	t.data.Last()
	t.skipBackwardIfExhausted()
}

func (t *TableIter) Next() {
	if !t.dataOK || t.err != nil {
		return
	}
	t.data.Next()
	t.skipForwardIfExhausted()
}

func (t *TableIter) Prev() {
	if !t.dataOK || t.err != nil {
		return
	}
	t.data.Prev()
	t.skipBackwardIfExhausted()
}

// skipForwardIfExhausted advances to the next data block when the current
// one is exhausted. Blocks are never empty, so one step suffices, but loop
// defensively.
func (t *TableIter) skipForwardIfExhausted() {
	for t.dataOK && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Next()
		if !t.loadBlock() {
			return
		}
		t.data.First()
	}
}

// skipBackwardIfExhausted steps to the previous data block when the
// current one has no entry at or before the position.
func (t *TableIter) skipBackwardIfExhausted() {
	for t.dataOK && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Prev()
		if !t.loadBlock() {
			return
		}
		t.data.Last()
	}
}

func (t *TableIter) Valid() bool {
	return t.err == nil && t.dataOK && t.data.Valid()
}

func (t *TableIter) Key() []byte   { return t.data.Key() }
func (t *TableIter) Value() []byte { return t.data.Value() }

func (t *TableIter) Error() error {
	if t.err != nil {
		return t.err
	}
	return t.index.Error()
}

func (t *TableIter) Close() error { return t.Error() }
