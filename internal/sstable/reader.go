package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"pebblesdb/internal/base"
	"pebblesdb/internal/block"
	"pebblesdb/internal/bloom"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/crc"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/vfs"
)

// ErrCorrupt indicates a structurally invalid table or checksum failure.
var ErrCorrupt = errors.New("sstable: corrupt table")

// Reader provides random access to an sstable. The index block and bloom
// filter stay resident for the Reader's lifetime (the paper stores guards
// and bloom filters in memory, §3.7); data blocks go through the optional
// shared block cache.
type Reader struct {
	f       vfs.File
	fileNum base.FileNum
	size    int64
	index   []byte
	filter  bloom.Filter
	blocks  *cache.Cache // shared block cache; may be nil

	// refs counts users of the Reader: the table cache holds one
	// reference, and every caller of tablecache.Find holds another until
	// it calls Unref. The file closes when the count reaches zero, so
	// cache eviction never yanks a table out from under a reader.
	refs atomic.Int32
}

// Ref acquires a reference.
func (r *Reader) Ref() { r.refs.Add(1) }

// Unref releases a reference, closing the file on the last one.
func (r *Reader) Unref() error {
	if r.refs.Add(-1) == 0 {
		return r.f.Close()
	}
	return nil
}

// Open reads the table's footer, index and filter. The Reader owns f and
// closes it on Close.
func Open(f vfs.File, size int64, fileNum base.FileNum, blockCache *cache.Cache) (*Reader, error) {
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[32:]) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Reader{f: f, fileNum: fileNum, size: size, blocks: blockCache}
	r.refs.Store(1)

	filterH := blockHandle{binary.LittleEndian.Uint64(footer[0:]), binary.LittleEndian.Uint64(footer[8:])}
	indexH := blockHandle{binary.LittleEndian.Uint64(footer[16:]), binary.LittleEndian.Uint64(footer[24:])}

	idx, err := r.readBlockUncached(indexH)
	if err != nil {
		return nil, err
	}
	r.index = idx
	if filterH.length > 0 {
		flt, err := r.readBlockUncached(filterH)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(flt)
	}
	return r, nil
}

func (r *Reader) readBlockUncached(h blockHandle) ([]byte, error) {
	if h.offset+h.length+blockTrailerLen > uint64(r.size) {
		return nil, fmt.Errorf("%w: block handle out of range", ErrCorrupt)
	}
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, err
	}
	payload := buf[:h.length]
	want := binary.LittleEndian.Uint32(buf[h.length:])
	if crc.Value(payload) != want {
		return nil, fmt.Errorf("%w: block checksum mismatch at offset %d", ErrCorrupt, h.offset)
	}
	return payload, nil
}

func (r *Reader) readBlock(h blockHandle) ([]byte, error) {
	if r.blocks != nil {
		if v, ok := r.blocks.Get(cache.Key{File: uint64(r.fileNum), Off: h.offset}); ok {
			return v.([]byte), nil
		}
	}
	payload, err := r.readBlockUncached(h)
	if err != nil {
		return nil, err
	}
	if r.blocks != nil {
		r.blocks.Set(cache.Key{File: uint64(r.fileNum), Off: h.offset}, payload, int64(len(payload)))
	}
	return payload, nil
}

// MayContain consults the table's bloom filter for ukey. True when no
// filter is present.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(ukey)
}

// FilterMemory returns the resident bloom-filter size in bytes (Table 5.4).
func (r *Reader) FilterMemory() int { return len(r.filter) }

// IndexMemory returns the resident index-block size in bytes.
func (r *Reader) IndexMemory() int { return len(r.index) }

// FileNum returns the table's file number.
func (r *Reader) FileNum() base.FileNum { return r.fileNum }

func decodeHandle(v []byte) (blockHandle, bool) {
	off, n := binary.Uvarint(v)
	if n <= 0 {
		return blockHandle{}, false
	}
	length, m := binary.Uvarint(v[n:])
	if m <= 0 {
		return blockHandle{}, false
	}
	return blockHandle{off, length}, true
}

// Get returns the value of the smallest internal key >= search whose user
// key equals the search's user key, i.e. the newest visible version.
// found=false means this table holds no visible version.
func (r *Reader) Get(search []byte) (ikey, value []byte, found bool, err error) {
	it := r.NewIter()
	defer it.Close()
	it.SeekGE(search)
	if err := it.Error(); err != nil {
		return nil, nil, false, err
	}
	if !it.Valid() {
		return nil, nil, false, nil
	}
	gotU := base.UserKey(it.Key())
	wantU := base.UserKey(search)
	if string(gotU) != string(wantU) {
		return nil, nil, false, nil
	}
	k := append([]byte(nil), it.Key()...)
	v := append([]byte(nil), it.Value()...)
	return k, v, true, nil
}

// NewIter returns an iterator over the table's internal keys.
func (r *Reader) NewIter() iterator.Iterator {
	idx, err := block.NewIter(r.index, base.InternalCompare)
	if err != nil {
		return &iterator.Empty{Err: err}
	}
	return &tableIter{r: r, index: idx}
}

// Close drops the initial reference (held by the opener / table cache).
func (r *Reader) Close() error { return r.Unref() }

// tableIter is the two-level iterator: an index cursor selecting data
// blocks, and a data cursor within the current block.
type tableIter struct {
	r     *Reader
	index *block.Iter
	data  *block.Iter
	err   error
}

func (t *tableIter) loadBlock() bool {
	t.data = nil
	if !t.index.Valid() {
		return false
	}
	h, ok := decodeHandle(t.index.Value())
	if !ok {
		t.err = fmt.Errorf("%w: bad index entry", ErrCorrupt)
		return false
	}
	payload, err := t.r.readBlock(h)
	if err != nil {
		t.err = err
		return false
	}
	d, err := block.NewIter(payload, base.InternalCompare)
	if err != nil {
		t.err = err
		return false
	}
	t.data = d
	return true
}

func (t *tableIter) SeekGE(target []byte) {
	if t.err != nil {
		return
	}
	// Index keys are each block's largest key, so the first index entry
	// >= target points at the only block that can contain target.
	t.index.SeekGE(target)
	if !t.loadBlock() {
		return
	}
	t.data.SeekGE(target)
	t.skipForwardIfExhausted()
}

// SeekLT positions at the last entry with key < target.
func (t *tableIter) SeekLT(target []byte) {
	if t.err != nil {
		return
	}
	// The first index entry >= target points at the only block that can
	// contain keys in [target's block lower edge, target); earlier blocks
	// hold strictly smaller keys.
	t.index.SeekGE(target)
	if !t.index.Valid() {
		// target is beyond every key in the table.
		t.Last()
		return
	}
	if !t.loadBlock() {
		return
	}
	t.data.SeekLT(target)
	t.skipBackwardIfExhausted()
}

func (t *tableIter) First() {
	if t.err != nil {
		return
	}
	t.index.First()
	if !t.loadBlock() {
		return
	}
	t.data.First()
	t.skipForwardIfExhausted()
}

func (t *tableIter) Last() {
	if t.err != nil {
		return
	}
	t.index.Last()
	if !t.loadBlock() {
		return
	}
	t.data.Last()
	t.skipBackwardIfExhausted()
}

func (t *tableIter) Next() {
	if t.data == nil || t.err != nil {
		return
	}
	t.data.Next()
	t.skipForwardIfExhausted()
}

func (t *tableIter) Prev() {
	if t.data == nil || t.err != nil {
		return
	}
	t.data.Prev()
	t.skipBackwardIfExhausted()
}

// skipForwardIfExhausted advances to the next data block when the current
// one is exhausted. Blocks are never empty, so one step suffices, but loop
// defensively.
func (t *tableIter) skipForwardIfExhausted() {
	for t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Next()
		if !t.loadBlock() {
			return
		}
		t.data.First()
	}
}

// skipBackwardIfExhausted steps to the previous data block when the
// current one has no entry at or before the position.
func (t *tableIter) skipBackwardIfExhausted() {
	for t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Prev()
		if !t.loadBlock() {
			return
		}
		t.data.Last()
	}
}

func (t *tableIter) Valid() bool {
	return t.err == nil && t.data != nil && t.data.Valid()
}

func (t *tableIter) Key() []byte   { return t.data.Key() }
func (t *tableIter) Value() []byte { return t.data.Value() }

func (t *tableIter) Error() error {
	if t.err != nil {
		return t.err
	}
	if t.index != nil {
		if err := t.index.Error(); err != nil {
			return err
		}
	}
	return nil
}

func (t *tableIter) Close() error { return t.Error() }
