package sstable

import (
	"bytes"
	"math/rand"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/vfs"
)

func TestIterReverseMatchesForward(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(2000, 7)
	// Small blocks so the reverse path crosses many block boundaries.
	buildTable(t, fs, "t.sst", entries, WriterOptions{BlockSize: 256, BloomBitsPerKey: 10})

	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()

	i := len(entries) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if !bytes.Equal(it.Key(), entries[i].ikey) {
			t.Fatalf("pos %d key mismatch: got %s want %s",
				i, base.InternalKeyString(it.Key()), base.InternalKeyString(entries[i].ikey))
		}
		if !bytes.Equal(it.Value(), entries[i].value) {
			t.Fatalf("pos %d value mismatch", i)
		}
		i--
	}
	if it.Error() != nil {
		t.Fatal(it.Error())
	}
	if i != -1 {
		t.Fatalf("reverse visited %d of %d", len(entries)-1-i, len(entries))
	}
}

func TestIterSeekLT(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(500, 8)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BlockSize: 256})

	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(entries))
		target := entries[i].ikey
		it.SeekLT(target)
		if i == 0 {
			if it.Valid() {
				t.Fatalf("SeekLT(first) returned %s", base.InternalKeyString(it.Key()))
			}
			continue
		}
		if !it.Valid() || !bytes.Equal(it.Key(), entries[i-1].ikey) {
			t.Fatalf("SeekLT(%s): got %s want %s", base.InternalKeyString(target),
				base.InternalKeyString(it.Key()), base.InternalKeyString(entries[i-1].ikey))
		}
	}

	// Past-the-end target lands on the last entry.
	it.SeekLT(base.MakeInternalKey(nil, []byte("zzzz"), 1, base.KindSet))
	if !it.Valid() || !bytes.Equal(it.Key(), entries[len(entries)-1].ikey) {
		t.Fatal("SeekLT(past end) should land on last entry")
	}
}

func TestIterNextPrevAcrossBlocks(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(300, 10)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BlockSize: 128})

	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()

	pos := 150
	it.SeekGE(entries[pos].ikey)
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 1000 && it.Valid(); step++ {
		if rng.Intn(2) == 0 {
			it.Next()
			pos++
		} else {
			it.Prev()
			pos--
		}
		if pos < 0 || pos >= len(entries) {
			if it.Valid() {
				t.Fatalf("expected invalid at pos %d", pos)
			}
			break
		}
		if !it.Valid() || !bytes.Equal(it.Key(), entries[pos].ikey) {
			t.Fatalf("step %d pos %d: got %s want %s", step, pos,
				base.InternalKeyString(it.Key()), base.InternalKeyString(entries[pos].ikey))
		}
	}
}
