package sstable

import (
	"fmt"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/bloom"
	"pebblesdb/internal/vfs"
)

// prefixEntries returns sorted entries whose keys share 8-byte prefixes in
// groups ("pfx-0003key...").
func prefixEntries(groups, perGroup int) []kv {
	var entries []kv
	seq := base.SeqNum(1)
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			k := fmt.Sprintf("pfx-%04dkey%04d", g, i)
			entries = append(entries, kv{
				ikey:  base.MakeInternalKey(nil, []byte(k), seq, base.KindSet),
				value: []byte("v"),
			})
			seq++
		}
	}
	return entries
}

func TestPrefixFilterRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	entries := prefixEntries(32, 8)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10, PrefixBloomLength: 8})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()

	if r.FormatVersion() != formatV4 {
		t.Fatalf("format = v%d, want v4", r.FormatVersion())
	}
	if r.PrefixFilterLength() != 8 {
		t.Fatalf("prefix length = %d, want 8", r.PrefixFilterLength())
	}
	// Every present prefix must pass (no false negatives).
	for g := 0; g < 32; g++ {
		pfx := []byte(fmt.Sprintf("pfx-%04d", g))
		if !r.MayContainPrefix(pfx) {
			t.Fatalf("false negative for present prefix %q", pfx)
		}
	}
	// Absent prefixes should mostly fail; require at least some negatives
	// (a few false positives are legal).
	neg := 0
	for g := 1000; g < 1100; g++ {
		if !r.MayContainPrefix([]byte(fmt.Sprintf("pfx-%04d", g))) {
			neg++
		}
	}
	if neg < 90 {
		t.Fatalf("only %d/100 absent prefixes were excluded", neg)
	}
	// Length-mismatched probes must be conservative.
	if !r.MayContainPrefix([]byte("pfx")) || !r.MayContainPrefix([]byte("pfx-0001ke")) {
		t.Fatal("length-mismatched prefix probe must return true")
	}
	// The point-key filter still works alongside the prefix filter.
	if !r.MayContain([]byte("pfx-0000key0000")) {
		t.Fatal("key filter false negative")
	}

	// Every entry survives the round trip.
	it := r.NewIter()
	defer it.Close()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != string(entries[i].ikey) {
			t.Fatalf("entry %d: key mismatch", i)
		}
		i++
	}
	if i != len(entries) {
		t.Fatalf("iterated %d entries, want %d", i, len(entries))
	}
}

// TestPrefixFilterDisabled: tables written without the knob keep the old
// format and answer every prefix probe conservatively.
func TestPrefixFilterDisabled(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", prefixEntries(4, 4), WriterOptions{BloomBitsPerKey: 10})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	if r.FormatVersion() != formatV2 {
		t.Fatalf("format = v%d, want v2", r.FormatVersion())
	}
	if r.PrefixFilterLength() != 0 {
		t.Fatalf("prefix length = %d, want 0", r.PrefixFilterLength())
	}
	if !r.MayContainPrefix([]byte("pfx-0000")) || !r.MayContainPrefix([]byte("nope-999")) {
		t.Fatal("tables without a prefix filter must answer true")
	}
}

// TestPrefixFilterShortKeys: keys shorter than the prefix length are
// omitted from the filter without breaking the table.
func TestPrefixFilterShortKeys(t *testing.T) {
	fs := vfs.NewMem()
	entries := []kv{
		{ikey: base.MakeInternalKey(nil, []byte("ab"), 1, base.KindSet), value: []byte("v")},
		{ikey: base.MakeInternalKey(nil, []byte("abcdefgh-tail"), 2, base.KindSet), value: []byte("v")},
	}
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10, PrefixBloomLength: 8})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	if r.FormatVersion() != formatV4 {
		t.Fatalf("format = v%d, want v4", r.FormatVersion())
	}
	if !r.MayContainPrefix([]byte("abcdefgh")) {
		t.Fatal("false negative for present prefix")
	}
}

func TestDecodePrefixFilterRejects(t *testing.T) {
	for _, bad := range [][]byte{nil, {}, {8}, {0, 1, 2}} {
		if _, _, err := DecodePrefixFilter(bad); err == nil {
			t.Fatalf("DecodePrefixFilter(%v) accepted a malformed block", bad)
		}
	}
}

// FuzzPrefixFilter exercises the prefix-filter block decoder and probe with
// arbitrary block bytes: decode must never panic, must reject structurally
// impossible blocks, and an accepted filter must answer probes without
// panicking (any answer is legal for garbage bits — bloom filters degrade
// to "maybe").
func FuzzPrefixFilter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 0xff})
	f.Add(EncodePrefixFilter(8, bloom.Build([][]byte{[]byte("prefix-a"), []byte("prefix-b")}, 10)))
	f.Add(EncodePrefixFilter(1, bloom.Build(nil, 10)))
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 31}) // k=31: out-of-range probe count
	f.Fuzz(func(t *testing.T, payload []byte) {
		p, flt, err := DecodePrefixFilter(payload)
		if err != nil {
			return
		}
		if p < 1 || p > 255 {
			t.Fatalf("accepted prefix length %d", p)
		}
		probe := make([]byte, p)
		for i := range probe {
			probe[i] = byte(i)
		}
		flt.MayContain(probe)
		flt.MayContain(probe[:p/2])
	})
}

// TestPrefixFilterRoundTripFuzzSeed pins the encode->decode identity the
// fuzzer assumes.
func TestPrefixFilterRoundTripFuzzSeed(t *testing.T) {
	src := bloom.Build([][]byte{[]byte("aaaa"), []byte("bbbb")}, 10)
	p, flt, err := DecodePrefixFilter(EncodePrefixFilter(4, src))
	if err != nil {
		t.Fatal(err)
	}
	if p != 4 || string(flt) != string(src) {
		t.Fatal("round trip mismatch")
	}
	if !flt.MayContain([]byte("aaaa")) || !flt.MayContain([]byte("bbbb")) {
		t.Fatal("false negative after round trip")
	}
}
