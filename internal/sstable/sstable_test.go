package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/vfs"
)

type kv struct {
	ikey  []byte
	value []byte
}

func buildTable(t *testing.T, fs vfs.FS, name string, entries []kv, opts WriterOptions) TableInfo {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for _, e := range entries {
		if err := w.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return info
}

func sortedEntries(n int, seed int64) []kv {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var keys []string
	for len(seen) < n {
		k := fmt.Sprintf("key%08d", rng.Intn(1<<28))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	entries := make([]kv, n)
	for i, k := range keys {
		entries[i] = kv{
			ikey:  base.MakeInternalKey(nil, []byte(k), base.SeqNum(i+1), base.KindSet),
			value: []byte("value:" + k),
		}
	}
	return entries
}

func openTable(t *testing.T, fs vfs.FS, name string, c *cache.Cache) *Reader {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat(name)
	r, err := Open(f, size, 1, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(2000, 1)
	info := buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10})

	if info.Count != len(entries) {
		t.Fatalf("count %d", info.Count)
	}
	if !bytes.Equal(info.Smallest, entries[0].ikey) || !bytes.Equal(info.Largest, entries[len(entries)-1].ikey) {
		t.Fatal("bounds mismatch")
	}

	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), entries[i].ikey) {
			t.Fatalf("pos %d key mismatch", i)
		}
		if !bytes.Equal(it.Value(), entries[i].value) {
			t.Fatalf("pos %d value mismatch", i)
		}
		i++
	}
	if it.Error() != nil {
		t.Fatal(it.Error())
	}
	if i != len(entries) {
		t.Fatalf("iterated %d of %d", i, len(entries))
	}
}

func TestGetFindsNewestVisible(t *testing.T) {
	fs := vfs.NewMem()
	// Two versions of the same key plus a tombstone of another.
	entries := []kv{
		{base.MakeInternalKey(nil, []byte("a"), 9, base.KindSet), []byte("a9")},
		{base.MakeInternalKey(nil, []byte("a"), 5, base.KindSet), []byte("a5")},
		{base.MakeInternalKey(nil, []byte("b"), 7, base.KindDelete), nil},
		{base.MakeInternalKey(nil, []byte("c"), 3, base.KindSet), []byte("c3")},
	}
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()

	get := func(k string, seq base.SeqNum) (string, base.Kind, bool) {
		search := base.MakeSearchKey(nil, []byte(k), seq)
		ik, v, ok, err := r.Get(search)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return "", 0, false
		}
		_, _, kind, _ := base.DecodeInternalKey(ik)
		return string(v), kind, true
	}

	if v, _, ok := get("a", base.MaxSeqNum); !ok || v != "a9" {
		t.Fatalf("a latest: %q %v", v, ok)
	}
	if v, _, ok := get("a", 6); !ok || v != "a5" {
		t.Fatalf("a@6: %q %v", v, ok)
	}
	if _, _, ok := get("a", 4); ok {
		t.Fatal("a@4 should miss")
	}
	if _, kind, ok := get("b", base.MaxSeqNum); !ok || kind != base.KindDelete {
		t.Fatal("b should be a visible tombstone")
	}
	if _, _, ok := get("zzz", base.MaxSeqNum); ok {
		t.Fatal("absent key should miss")
	}
}

func TestBloomFilterUsed(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(1000, 2)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()

	for _, e := range entries {
		if !r.MayContain(base.UserKey(e.ikey)) {
			t.Fatal("bloom false negative")
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("absent%06d", i))) {
			misses++
		}
	}
	if misses < 900 {
		t.Fatalf("bloom rejected only %d/1000 absent keys", misses)
	}
	if r.FilterMemory() == 0 {
		t.Fatal("filter should be resident")
	}
}

func TestNoBloomFilter(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(100, 3)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 0})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	if !r.MayContain([]byte("anything")) {
		t.Fatal("without a filter MayContain must be permissive")
	}
	if r.FilterMemory() != 0 {
		t.Fatal("no filter should be resident")
	}
}

func TestSeekGEAcrossBlocks(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(5000, 4)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BlockSize: 256, BloomBitsPerKey: 10})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		idx := rng.Intn(len(entries))
		it.SeekGE(entries[idx].ikey)
		if !it.Valid() || !bytes.Equal(it.Key(), entries[idx].ikey) {
			t.Fatalf("seek to entry %d failed", idx)
		}
	}
	// Seek past the end.
	it.SeekGE(base.MakeInternalKey(nil, []byte("zzzzzz"), 1, base.KindSet))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestBlockCacheUsed(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(3000, 6)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BlockSize: 512, BloomBitsPerKey: 10})
	c := cache.New(1<<20, nil)
	r := openTable(t, fs, "t.sst", c)
	defer r.Close()

	// Two full scans: the second should hit the cache.
	for pass := 0; pass < 2; pass++ {
		it := r.NewIter()
		for it.First(); it.Valid(); it.Next() {
		}
		it.Close()
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatalf("expected cache hits, got stats %+v", st)
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(200, 7)
	buildTable(t, fs, "t.sst", entries, WriterOptions{BloomBitsPerKey: 10})

	size, _ := fs.Stat("t.sst")
	f, _ := fs.Open("t.sst")
	data := make([]byte, size)
	f.ReadAt(data, 0)
	f.Close()

	// Flip a byte in the first data block.
	data[10] ^= 0xff
	fw, _ := fs.Create("bad.sst")
	fw.Write(data)
	fw.Close()

	bf, _ := fs.Open("bad.sst")
	r, err := Open(bf, size, 2, nil, nil)
	if err != nil {
		return // index/footer corruption detected at open: fine
	}
	it := r.NewIter()
	for it.First(); it.Valid(); it.Next() {
	}
	if it.Error() == nil {
		t.Fatal("corrupted block should surface an error")
	}
	it.Close()
	r.Close()
}

func TestTruncatedFileRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	f.Write([]byte("not a table"))
	f.Close()
	rf, _ := fs.Open("t.sst")
	if _, err := Open(rf, 11, 1, nil, nil); err == nil {
		t.Fatal("tiny file should be rejected")
	}
}

func TestEmptyTableRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if _, err := w.Finish(); err == nil {
		t.Fatal("finishing an empty table should fail")
	}
	f.Close()
}

func TestRefcounting(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(10, 8)
	buildTable(t, fs, "t.sst", entries, WriterOptions{})
	r := openTable(t, fs, "t.sst", nil)

	r.Ref() // simulate a second user
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Still readable through the remaining reference.
	it := r.NewIter()
	it.First()
	if !it.Valid() {
		t.Fatal("reader closed while referenced")
	}
	it.Close()
	r.Unref()
}

func BenchmarkTableGet(b *testing.B) {
	fs := vfs.NewMem()
	entries := sortedEntries(50000, 42)
	bf, _ := fs.Create("bench.sst")
	bw := NewWriter(bf, WriterOptions{BloomBitsPerKey: 10})
	for _, e := range entries {
		bw.Add(e.ikey, e.value)
	}
	if _, err := bw.Finish(); err != nil {
		b.Fatal(err)
	}
	bf.Close()
	f, _ := fs.Open("bench.sst")
	size, _ := fs.Stat("bench.sst")
	r, err := Open(f, size, 1, cache.New(64<<20, nil), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		search := base.MakeSearchKey(nil, base.UserKey(e.ikey), base.MaxSeqNum)
		if _, _, ok, err := r.Get(search); err != nil || !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableWrite(b *testing.B) {
	entries := sortedEntries(10000, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.NewMem()
		f, _ := fs.Create("w.sst")
		w := NewWriter(f, WriterOptions{BloomBitsPerKey: 10})
		for _, e := range entries {
			w.Add(e.ikey, e.value)
		}
		if _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
