package sstable

import (
	"bytes"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/vfs"
)

// buildRangeDelTable writes points plus tombstones and reopens the table.
func buildRangeDelTable(t *testing.T, points []kv, dels [][3]interface{}) (*Reader, TableInfo) {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{BloomBitsPerKey: 10})
	for _, e := range points {
		if err := w.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range dels {
		w.AddRangeDel([]byte(d[0].(string)), []byte(d[1].(string)), base.SeqNum(d[2].(int)))
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTable(t, fs, "t.sst", nil)
	return r, info
}

// TestRangeDelRoundTrip: tombstones written to the v3 range-del block come
// back fragmented, bounds include the tombstone span, and tables without
// tombstones keep the v2 footer.
func TestRangeDelRoundTrip(t *testing.T) {
	points := []kv{
		{ikey: base.MakeInternalKey(nil, []byte("d"), 5, base.KindSet), value: []byte("v1")},
		{ikey: base.MakeInternalKey(nil, []byte("m"), 6, base.KindSet), value: []byte("v2")},
	}
	r, info := buildRangeDelTable(t, points, [][3]interface{}{
		{"b", "k", 9},
		{"e", "q", 12}, // overlaps the first: fragmented on flush
	})
	defer r.Close()

	if r.FormatVersion() != formatV3 {
		t.Fatalf("format %d, want v3", r.FormatVersion())
	}
	if info.NumRangeDels == 0 {
		t.Fatal("no fragments recorded")
	}
	if string(info.RangeDelStart) != "b" || string(info.RangeDelEnd) != "q" {
		t.Fatalf("span [%s,%s), want [b,q)", info.RangeDelStart, info.RangeDelEnd)
	}
	// Smallest extends to the tombstone start; largest is the exclusive
	// sentinel at the tombstone end (beyond the largest point "m").
	if u := base.UserKey(info.Smallest); string(u) != "b" {
		t.Fatalf("smallest %q, want b", u)
	}
	if !base.IsRangeDelSentinel(info.Largest) || string(base.UserKey(info.Largest)) != "q" {
		t.Fatalf("largest %s, want sentinel at q", base.InternalKeyString(info.Largest))
	}

	rd := r.RangeDels()
	if rd == nil {
		t.Fatal("reader lost the tombstones")
	}
	cases := []struct {
		key  string
		at   base.SeqNum
		want base.SeqNum
	}{
		{"a", 100, 0}, {"b", 100, 9}, {"d", 100, 9}, {"e", 100, 12},
		{"j", 100, 12}, {"j", 10, 9}, {"k", 100, 12}, {"p", 100, 12},
		{"q", 100, 0}, {"d", 8, 0},
	}
	for _, c := range cases {
		if got := rd.CoverSeq([]byte(c.key), c.at); got != c.want {
			t.Errorf("CoverSeq(%q,%d) = %d, want %d", c.key, c.at, got, c.want)
		}
	}

	// Point entries are unaffected by the tombstone block.
	it := r.NewIter()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), points[n].ikey) {
			t.Fatalf("point %d mismatch", n)
		}
		n++
	}
	if n != len(points) {
		t.Fatalf("read %d points, want %d", n, len(points))
	}

	// A clean table stays v2.
	clean, cleanInfo := buildRangeDelTable(t, points, nil)
	defer clean.Close()
	if clean.FormatVersion() != formatV2 {
		t.Fatalf("clean table format %d, want v2", clean.FormatVersion())
	}
	if clean.RangeDels() != nil || cleanInfo.NumRangeDels != 0 {
		t.Fatal("clean table reports tombstones")
	}
}

// TestRangeDelSpanDoesNotAliasInputs pins a metadata-corruption
// regression: the spans Finish returns must be copies, because compaction
// passes clip bounds that alias the merge iterator's reused key buffer,
// which is rewritten right after the table is cut — while RangeDelStart/
// RangeDelEnd live on in FileMetadata and the manifest.
func TestRangeDelSpanDoesNotAliasInputs(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{})
	start := []byte("b")
	end := []byte("k")
	w.AddRangeDel(start, end, 7)
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	start[0], end[0] = 'z', 'z' // the caller reuses its buffers
	if string(info.RangeDelStart) != "b" || string(info.RangeDelEnd) != "k" {
		t.Fatalf("span [%s,%s) aliases caller buffers, want [b,k)", info.RangeDelStart, info.RangeDelEnd)
	}
}

// TestRangeDelOnlyTable: a table holding only tombstones is legal — empty
// index, no filter, bounds from the tombstone span — and point probes and
// scans find nothing.
func TestRangeDelOnlyTable(t *testing.T) {
	r, info := buildRangeDelTable(t, nil, [][3]interface{}{{"c", "h", 7}})
	defer r.Close()
	if info.Count != 0 || info.NumRangeDels != 1 {
		t.Fatalf("info %+v", info)
	}
	if u := base.UserKey(info.Smallest); string(u) != "c" {
		t.Fatalf("smallest %q", u)
	}
	if !base.IsRangeDelSentinel(info.Largest) {
		t.Fatal("largest not a sentinel")
	}
	search := base.MakeSearchKey(nil, []byte("e"), base.MaxSeqNum)
	if _, _, ok, err := r.Get(search); err != nil || ok {
		t.Fatalf("point probe on tombstone-only table: ok=%v err=%v", ok, err)
	}
	it := r.NewIter()
	defer it.Close()
	for it.First(); it.Valid(); it.Next() {
		t.Fatal("tombstone-only table yielded a point entry")
	}
	if got := r.RangeDels().CoverSeq([]byte("e"), 100); got != 7 {
		t.Fatalf("CoverSeq = %d, want 7", got)
	}
}
