package sstable

import (
	"fmt"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/compress"
	"pebblesdb/internal/race"
	"pebblesdb/internal/vfs"
)

// buildAllocTable writes a small table and returns a Reader backed by a
// block cache large enough to hold every data block.
func buildAllocTable(t *testing.T, n int) *Reader {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("alloc.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{BloomBitsPerKey: 10, Compression: compress.Snappy})
	for i := 0; i < n; i++ {
		ik := base.MakeInternalKey(nil, []byte(fmt.Sprintf("key%06d", i)), base.SeqNum(i)+1, base.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("value%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open("alloc.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(rf, int64(info.Size), 1, cache.New(32<<20, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGetScratchedAllocs pins the sstable probe budgets: with a warm block
// cache, a hit probe, a probe miss, and a bloom-filter rejection are all
// allocation-free.
func TestGetScratchedAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	r := buildAllocTable(t, 2000)
	defer r.Close()

	s := AcquireGetScratch()
	defer ReleaseGetScratch(s)
	hit := base.MakeSearchKey(nil, []byte("key000042"), base.MaxSeqNum)
	// Same length as real keys so the bloom filter, not the key shape,
	// decides; a missing key that reaches the blocks exercises the probe's
	// miss path.
	missing := base.MakeSearchKey(nil, []byte("key999999"), base.MaxSeqNum)

	// Warm: first probes grow the scratch's key buffers and fill the cache.
	if _, _, _, found, err := r.GetScratched(hit, s); err != nil || !found {
		t.Fatalf("warm hit: found=%v err=%v", found, err)
	}
	if _, _, _, _, err := r.GetScratched(missing, s); err != nil {
		t.Fatalf("warm miss: %v", err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, found, err := r.GetScratched(hit, s); err != nil || !found {
			t.Fatalf("hit: found=%v err=%v", found, err)
		}
	})
	if allocs > 0 {
		t.Errorf("GetScratched(hit) allocs/op = %v, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(100, func() {
		if _, _, _, found, err := r.GetScratched(missing, s); err != nil || found {
			t.Fatalf("miss: found=%v err=%v", found, err)
		}
	})
	if allocs > 0 {
		t.Errorf("GetScratched(miss) allocs/op = %v, want 0", allocs)
	}

	// The bloom pre-filter itself must be allocation-free so a filtered-out
	// table costs no memory at all.
	ukey := []byte("nonexistent-key")
	allocs = testing.AllocsPerRun(100, func() {
		r.MayContain(ukey)
	})
	if allocs > 0 {
		t.Errorf("MayContain allocs/op = %v, want 0", allocs)
	}
}
