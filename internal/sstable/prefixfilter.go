package sstable

import (
	"fmt"

	"pebblesdb/internal/bloom"
)

// The prefix-filter block (sstable format v4) is one byte holding the fixed
// prefix length P, followed by a bloom filter built over the distinct
// first-P-byte user-key prefixes in the table. It is always stored raw and
// stays resident for the Reader's lifetime, like the key filter: a prefix
// iterator consults it with one hash, no IO.

// EncodePrefixFilter serializes a prefix-filter block for prefix length p
// (1..255).
func EncodePrefixFilter(p int, f bloom.Filter) []byte {
	blk := make([]byte, 0, 1+len(f))
	blk = append(blk, byte(p))
	return append(blk, f...)
}

// DecodePrefixFilter parses a prefix-filter block. The filter bytes alias
// payload. It rejects structurally impossible blocks (no length byte, a zero
// prefix length, or a filter too short to hold its probe-count byte); the
// bloom filter itself tolerates arbitrary bit patterns, degrading to
// "may contain" rather than misreading.
func DecodePrefixFilter(payload []byte) (prefixLen int, f bloom.Filter, err error) {
	if len(payload) < 2 {
		return 0, nil, fmt.Errorf("%w: prefix-filter block too short (%d bytes)", ErrCorrupt, len(payload))
	}
	if payload[0] == 0 {
		return 0, nil, fmt.Errorf("%w: prefix-filter length byte is zero", ErrCorrupt)
	}
	return int(payload[0]), bloom.Filter(payload[1:]), nil
}
