package sstable

import (
	"sync"

	"pebblesdb/internal/block"
)

// GetStats counts read-path work done through one GetScratch. The fields
// are plain ints: a scratch is owned by exactly one Get at a time, and the
// engine folds the counts into its atomics when it releases the scratch.
type GetStats struct {
	// TablesProbed counts sstables whose index was actually searched (the
	// bloom filter passed or was absent).
	TablesProbed int64
	// BloomNegatives counts tables skipped because the bloom filter ruled
	// the key out — the filter saved a block read.
	BloomNegatives int64
	// BloomFalsePositives counts probes that passed a bloom filter but
	// found no matching key — the filter cost a wasted block read.
	BloomFalsePositives int64
	// BlockHits / BlockMisses count block-cache outcomes on the get path.
	BlockHits   int64
	BlockMisses int64
}

// Reset zeroes the counters.
func (s *GetStats) Reset() { *s = GetStats{} }

// GetScratch is the reusable per-Get working set threaded through the whole
// point-read stack (engine -> tree -> table cache -> sstable -> block). It
// exists so a steady-state Get performs O(1) allocations: the search-key
// buffer and both block cursors persist across calls via a sync.Pool.
//
// Ownership rules: a scratch belongs to exactly one Get call at a time.
// Values returned by Reader.GetScratched alias immutable block payloads
// (cached or freshly read), never the scratch's own buffers, so they remain
// valid after the scratch is released — the garbage collector keeps the
// payload alive for as long as the caller retains the slice.
type GetScratch struct {
	// SearchKey is the reusable search-key buffer; layers build the
	// (ukey, seq, KindSeek) key into it with base.MakeSearchKey.
	SearchKey []byte
	// Stats accumulates read-path counters for this scratch's current Get.
	Stats GetStats

	index block.Iter
	data  block.Iter
}

var getScratchPool = sync.Pool{New: func() interface{} { return &GetScratch{} }}

// AcquireGetScratch returns a pooled scratch. Pair with ReleaseGetScratch.
func AcquireGetScratch() *GetScratch {
	return getScratchPool.Get().(*GetScratch)
}

// ReleaseGetScratch resets the scratch's stats, drops its references into
// the last probed block payloads (an idle pooled scratch must not pin
// cache-evicted blocks), and returns it to the pool. The caller must not
// retain references into the scratch's buffers.
func ReleaseGetScratch(s *GetScratch) {
	s.Stats.Reset()
	s.index.Release()
	s.data.Release()
	getScratchPool.Put(s)
}
