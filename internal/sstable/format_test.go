package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/compress"
	"pebblesdb/internal/crc"
	"pebblesdb/internal/vfs"
)

// compressibleEntries returns sorted entries whose values are ~50%
// compressible (a random-ish half repeated), like the benchmark workloads.
func compressibleEntries(n int) []kv {
	entries := make([]kv, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		half := fmt.Sprintf("payload-%06d-%x-", i, i*2654435761)
		entries[i] = kv{
			ikey:  base.MakeInternalKey(nil, []byte(k), base.SeqNum(i+1), base.KindSet),
			value: []byte(strings.Repeat(half, 4)),
		}
	}
	return entries
}

// TestV1FixtureReadable opens a table written by the format-v1 code
// (testdata/v1-format.sst, generated before the v2 change landed) and
// verifies every entry plus point lookups: old stores stay readable after
// upgrading.
func TestV1FixtureReadable(t *testing.T) {
	const path = "testdata/v1-format.sst"
	size, err := vfs.Default.Stat(path)
	if err != nil {
		t.Fatalf("fixture missing: %v", err)
	}
	f, err := vfs.Default.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(f, size, 1, cache.New(1<<20, nil), nil)
	if err != nil {
		t.Fatalf("open v1 fixture: %v", err)
	}
	defer r.Close()

	if r.FormatVersion() != formatV1 {
		t.Fatalf("fixture detected as format %d, want %d", r.FormatVersion(), formatV1)
	}

	// The generator wrote keyNNNNN -> value-NNNNN-MMMMM for N in [0,500).
	it := r.NewIter()
	defer it.Close()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		wantKey := fmt.Sprintf("key%05d", i)
		wantVal := fmt.Sprintf("value-%05d-%05d", i, i*7)
		if string(base.UserKey(it.Key())) != wantKey {
			t.Fatalf("entry %d: key %q, want %q", i, base.UserKey(it.Key()), wantKey)
		}
		if string(it.Value()) != wantVal {
			t.Fatalf("entry %d: value %q, want %q", i, it.Value(), wantVal)
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != 500 {
		t.Fatalf("iterated %d entries, want 500", i)
	}

	// Point lookups exercise the v1 block-read path through Get.
	for _, n := range []int{0, 123, 499} {
		search := base.MakeSearchKey(nil, []byte(fmt.Sprintf("key%05d", n)), base.MaxSeqNum)
		_, v, ok, err := r.Get(search)
		if err != nil || !ok {
			t.Fatalf("get key%05d: ok=%v err=%v", n, ok, err)
		}
		if want := fmt.Sprintf("value-%05d-%05d", n, n*7); string(v) != want {
			t.Fatalf("get key%05d: %q, want %q", n, v, want)
		}
	}

	if !r.MayContain([]byte("key00042")) {
		t.Fatal("v1 bloom filter lost a present key")
	}
}

// buildSingleBlockSnappyTable writes a table with exactly one, compressed
// data block and no filter, returning the raw file image and the data
// block's physical payload length.
func buildSingleBlockSnappyTable(t *testing.T, fs vfs.FS, name string) (data []byte, payloadLen uint64) {
	t.Helper()
	info := buildTable(t, fs, name, compressibleEntries(50), WriterOptions{
		BlockSize:       1 << 20, // everything fits one block
		BloomBitsPerKey: 0,
		Compression:     compress.Snappy,
	})
	if info.Compression.CompressedBlocks != 1 || info.Compression.DataBlocks != 1 {
		t.Fatalf("expected 1 compressed data block, got %+v", info.Compression)
	}
	size, _ := fs.Stat(name)
	f, _ := fs.Open(name)
	data = make([]byte, size)
	if err := fullReadAt(f, data, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// No filter => the index block directly follows the data block, so the
	// footer's index offset gives the data block extent.
	footer := data[len(data)-footerLenV2:]
	indexOff := binary.LittleEndian.Uint64(footer[16:])
	return data, indexOff - blockTrailerLenV2
}

func openRaw(t *testing.T, data []byte) (*Reader, error) {
	t.Helper()
	fs := vfs.NewMem()
	f, _ := fs.Create("raw.sst")
	f.Write(data)
	f.Close()
	rf, _ := fs.Open("raw.sst")
	return Open(rf, int64(len(data)), 9, nil, nil)
}

func scanAll(r *Reader) error {
	it := r.NewIter()
	for it.First(); it.Valid(); it.Next() {
	}
	return it.Close()
}

// TestCorruptCompressedBlock covers the three failure layers of a v2
// compressed block: a bit flip caught by the checksum, a checksum-valid
// stream the codec rejects, and an unknown block-type tag.
func TestCorruptCompressedBlock(t *testing.T) {
	fs := vfs.NewMem()
	data, payloadLen := buildSingleBlockSnappyTable(t, fs, "good.sst")

	fixup := func(img []byte) {
		// Recompute the trailer crc so corruption survives the checksum.
		payload := img[:payloadLen]
		img[payloadLen+1+0] = 0 // scratch
		binary.LittleEndian.PutUint32(img[payloadLen+1:], crc.ValueExtended(payload, img[payloadLen:payloadLen+1]))
	}

	t.Run("bit-flip", func(t *testing.T) {
		img := append([]byte(nil), data...)
		img[payloadLen/2] ^= 0xff
		r, err := openRaw(t, img)
		if err == nil {
			err = scanAll(r)
			r.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("valid-crc-bad-snappy", func(t *testing.T) {
		img := append([]byte(nil), data...)
		// Truncate the stream's content mid-element: keep the header varint
		// but garble everything after it, then fix the crc.
		for i := uint64(4); i < payloadLen; i++ {
			img[i] = 0xff
		}
		fixup(img)
		r, err := openRaw(t, img)
		if err == nil {
			err = scanAll(r)
			r.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("unknown-block-type", func(t *testing.T) {
		img := append([]byte(nil), data...)
		img[payloadLen] = 0x07
		payload := img[:payloadLen]
		binary.LittleEndian.PutUint32(img[payloadLen+1:], crc.ValueExtended(payload, img[payloadLen:payloadLen+1]))
		r, err := openRaw(t, img)
		if err == nil {
			err = scanAll(r)
			r.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("unknown-footer-version", func(t *testing.T) {
		img := append([]byte(nil), data...)
		img[len(img)-footerLenV2+32] = 9
		if _, err := openRaw(t, img); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestCompressionShrinksTables checks the 12.5% rule end to end: the
// compressible table shrinks well past the threshold, the incompressible
// one stays raw, and both read back correctly.
func TestCompressionShrinksTables(t *testing.T) {
	fs := vfs.NewMem()
	entries := compressibleEntries(2000)

	raw := buildTable(t, fs, "raw.sst", entries, WriterOptions{Compression: compress.None})
	snap := buildTable(t, fs, "snappy.sst", entries, WriterOptions{Compression: compress.Snappy})

	if snap.Size >= raw.Size*3/4 {
		t.Fatalf("snappy table %d bytes, raw %d: expected >25%% saving", snap.Size, raw.Size)
	}
	if snap.Compression.CompressedBlocks == 0 || snap.Compression.Ratio() > 0.75 {
		t.Fatalf("compression stats %+v", snap.Compression)
	}
	if raw.Compression.PhysicalDataBytes != raw.Compression.LogicalDataBytes {
		t.Fatalf("uncompressed table should have equal logical/physical: %+v", raw.Compression)
	}

	r := openTable(t, fs, "snappy.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), entries[i].ikey) || !bytes.Equal(it.Value(), entries[i].value) {
			t.Fatalf("entry %d mismatch reading compressed table", i)
		}
		i++
	}
	if i != len(entries) {
		t.Fatalf("read %d of %d entries", i, len(entries))
	}
}

// TestIncompressibleBlocksStayRaw: blocks that don't clear the 12.5%
// saving are stored with the none type even under Snappy options.
func TestIncompressibleBlocksStayRaw(t *testing.T) {
	fs := vfs.NewMem()
	entries := sortedEntries(300, 11)
	// Make values truly incompressible random bytes.
	rng := rand.New(rand.NewSource(99))
	for i := range entries {
		v := make([]byte, 64)
		rng.Read(v)
		entries[i].value = v
	}
	info := buildTable(t, fs, "t.sst", entries, WriterOptions{Compression: compress.Snappy})
	if info.Compression.CompressedBlocks != 0 {
		t.Fatalf("incompressible blocks were compressed: %+v", info.Compression)
	}
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	if err := scanAll(r); err != nil {
		t.Fatal(err)
	}
}

// TestCacheChargesDecompressedBytes: the block cache must hold and charge
// the inflated payload, so hits skip the codec and capacity is honest
// about resident memory.
func TestCacheChargesDecompressedBytes(t *testing.T) {
	fs := vfs.NewMem()
	info := buildTable(t, fs, "t.sst", compressibleEntries(2000), WriterOptions{
		BlockSize:   4 << 10,
		Compression: compress.Snappy,
	})
	cs := info.Compression
	if cs.PhysicalDataBytes >= cs.LogicalDataBytes*3/4 {
		t.Fatalf("table not compressed enough for the test: %+v", cs)
	}

	c := cache.New(64<<20, nil)
	var codec CodecStats
	f, _ := fs.Open("t.sst")
	size, _ := fs.Stat("t.sst")
	r, err := Open(f, size, 1, c, &codec)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := scanAll(r); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().UsedBytes; got != cs.LogicalDataBytes {
		t.Fatalf("cache charged %d bytes, want decompressed %d", got, cs.LogicalDataBytes)
	}
	decompressed := codec.BlocksDecompressed.Load()
	if decompressed != cs.CompressedBlocks {
		t.Fatalf("decompressed %d blocks, want %d", decompressed, cs.CompressedBlocks)
	}

	// Second scan: all cache hits, zero additional codec work.
	if err := scanAll(r); err != nil {
		t.Fatal(err)
	}
	if again := codec.BlocksDecompressed.Load(); again != decompressed {
		t.Fatalf("cache hits still decompressed (%d -> %d)", decompressed, again)
	}
}

// TestSequentialIterMatchesRandom: the readahead iterator must observe the
// same sequence as the per-block path, and must not populate the cache.
func TestSequentialIterMatchesRandom(t *testing.T) {
	fs := vfs.NewMem()
	entries := compressibleEntries(5000)
	buildTable(t, fs, "t.sst", entries, WriterOptions{
		BlockSize:   1 << 10,
		Compression: compress.Snappy,
	})
	c := cache.New(64<<20, nil)
	r := openTable(t, fs, "t.sst", c)
	defer r.Close()

	seq := r.NewSequentialIter()
	defer seq.Close()
	i := 0
	for seq.First(); seq.Valid(); seq.Next() {
		if !bytes.Equal(seq.Key(), entries[i].ikey) || !bytes.Equal(seq.Value(), entries[i].value) {
			t.Fatalf("sequential entry %d mismatch", i)
		}
		i++
	}
	if err := seq.Error(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("sequential scan read %d of %d", i, len(entries))
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("sequential scan populated the cache: %+v", st)
	}

	// Seeks reposition the window arbitrarily; results must still match.
	seq2 := r.NewSequentialIter()
	defer seq2.Close()
	for _, idx := range []int{4000, 100, 2500, 0, len(entries) - 1} {
		seq2.SeekGE(entries[idx].ikey)
		if !seq2.Valid() || !bytes.Equal(seq2.Key(), entries[idx].ikey) {
			t.Fatalf("sequential SeekGE to %d failed", idx)
		}
	}
}

// TestV2RoundTripAcrossFormats writes v2 with compression, reopens, and
// spot-checks reverse iteration across compressed block boundaries.
func TestV2ReverseAcrossCompressedBlocks(t *testing.T) {
	fs := vfs.NewMem()
	entries := compressibleEntries(3000)
	buildTable(t, fs, "t.sst", entries, WriterOptions{
		BlockSize:   512,
		Compression: compress.Snappy,
	})
	r := openTable(t, fs, "t.sst", nil)
	defer r.Close()
	it := r.NewIter()
	defer it.Close()
	i := len(entries) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if !bytes.Equal(it.Key(), entries[i].ikey) {
			t.Fatalf("reverse entry %d mismatch", i)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped at %d", i+1)
	}
}
