package vfs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// MemFS is a thread-safe in-memory filesystem. It is the default substrate
// for tests and benchmarks: deterministic, fast, and free of OS page-cache
// effects so that byte-level IO accounting is exact.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

type memNode struct {
	mu     sync.Mutex
	data   []byte
	synced int // bytes known durable; used by CrashFS
	refs   int
}

// NewMem returns an empty in-memory filesystem with a root directory.
func NewMem() *MemFS {
	return &MemFS{
		files: make(map[string]*memNode),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

func (fs *MemFS) Create(name string) (File, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := &memNode{}
	fs.files[name] = n
	return &memHandle{node: n}, nil
}

func (fs *MemFS) Open(name string) (File, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{node: n, readonly: true}, nil
}

func (fs *MemFS) Remove(name string) error {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

func (fs *MemFS) Rename(oldname, newname string) error {
	oldname, newname = Clean(oldname), Clean(newname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(fs.files, oldname)
	fs.files[newname] = n
	return nil
}

func (fs *MemFS) MkdirAll(dir string) error {
	dir = Clean(dir)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for dir != "." && dir != "/" && dir != "" {
		fs.dirs[dir] = true
		i := strings.LastIndexByte(dir, '/')
		if i < 0 {
			break
		}
		dir = dir[:i]
	}
	return nil
}

func (fs *MemFS) List(dir string) ([]string, error) {
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "." || dir == "/" {
		prefix = ""
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	seen := map[string]bool{}
	for name := range fs.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) Stat(name string) (int64, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.data)), nil
}

// TotalBytes reports the sum of all file sizes; used by space-amplification
// experiments.
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, n := range fs.files {
		n.mu.Lock()
		total += int64(len(n.data))
		n.mu.Unlock()
	}
	return total
}

type memHandle struct {
	node     *memNode
	readonly bool
	closed   bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: write to closed file")
	}
	if h.readonly {
		return 0, fmt.Errorf("vfs: write to read-only file")
	}
	h.node.mu.Lock()
	h.node.data = append(h.node.data, p...)
	h.node.mu.Unlock()
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: read from closed file")
	}
	h.node.mu.Lock()
	defer h.node.mu.Unlock()
	if off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.node.mu.Lock()
	h.node.synced = len(h.node.data)
	h.node.mu.Unlock()
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
