package vfs

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Op classifies filesystem operations for fault injection. Values are bits
// so an injection point can target any combination of classes.
type Op uint32

const (
	// OpCreate is FS.Create.
	OpCreate Op = 1 << iota
	// OpOpen is FS.Open.
	OpOpen
	// OpRead is File.ReadAt.
	OpRead
	// OpWrite is File.Write.
	OpWrite
	// OpSync is File.Sync.
	OpSync
	// OpRename is FS.Rename.
	OpRename
	// OpRemove is FS.Remove.
	OpRemove
	// OpMkdir is FS.MkdirAll.
	OpMkdir
	// OpList is FS.List.
	OpList
	// OpStat is FS.Stat.
	OpStat

	// OpAll matches every operation.
	OpAll = OpCreate | OpOpen | OpRead | OpWrite | OpSync | OpRename |
		OpRemove | OpMkdir | OpList | OpStat
	// OpWriteClass matches the operations that allocate storage — the set a
	// full disk fails. Remove and the read-side ops stay working, which is
	// what makes ENOSPC recoverable in place.
	OpWriteClass = OpCreate | OpWrite | OpSync | OpRename | OpMkdir
)

// ErrInjected is the default error returned by an armed injection point.
var ErrInjected = errors.New("errfs: injected error")

// ErrNoSpace simulates ENOSPC while SetFull(true) is in effect.
var ErrNoSpace = errors.New("errfs: no space left on device")

// ErrFS wraps another FS and injects deterministic failures. Two modes
// compose:
//
//   - FailAt(n, mask, err, sticky): the first mask-matching operation whose
//     global operation index is >= n fails with err; sticky keeps every
//     later matching operation failing too (a dead device), otherwise the
//     fault fires once (a transient hiccup).
//   - SetFull(true): every space-allocating operation (OpWriteClass) fails
//     with ErrNoSpace until SetFull(false) — a full disk that an operator
//     later clears.
//
// Every operation (FS-level and File-level) increments one global counter,
// so a workload can be run once against a healthy ErrFS to learn its
// operation count and then re-run with each index armed in turn — the
// metamorphic fault sweep. ErrFS composes with the other wrappers (it can
// wrap or be wrapped by CrashFS, FencedFS, CountingFS).
type ErrFS struct {
	inner FS

	ops      atomic.Int64 // operations observed so far (also the next index)
	injected atomic.Int64
	full     atomic.Bool

	mu     sync.Mutex
	armed  bool
	armAt  int64
	mask   Op
	err    error
	sticky bool
	fired  bool
}

// NewErr returns an ErrFS over inner with no faults armed.
func NewErr(inner FS) *ErrFS {
	return &ErrFS{inner: inner}
}

// FailAt arms the injection point: the first operation matching mask whose
// global index is >= n fails with err (ErrInjected when err is nil). When
// sticky is set, every later matching operation fails too. Re-arming
// replaces any previous configuration.
func (fs *ErrFS) FailAt(n int64, mask Op, err error, sticky bool) {
	if err == nil {
		err = ErrInjected
	}
	fs.mu.Lock()
	fs.armed, fs.armAt, fs.mask, fs.err, fs.sticky, fs.fired = true, n, mask, err, sticky, false
	fs.mu.Unlock()
}

// SetFull toggles ENOSPC mode: while on, every OpWriteClass operation
// fails with ErrNoSpace. Reads, removes and lists keep working.
func (fs *ErrFS) SetFull(on bool) { fs.full.Store(on) }

// Clear disarms FailAt and turns ENOSPC mode off.
func (fs *ErrFS) Clear() {
	fs.full.Store(false)
	fs.mu.Lock()
	fs.armed = false
	fs.mu.Unlock()
}

// OpCount returns the number of operations observed so far.
func (fs *ErrFS) OpCount() int64 { return fs.ops.Load() }

// Injected returns how many operations failed by injection.
func (fs *ErrFS) Injected() int64 { return fs.injected.Load() }

// check assigns the operation its global index and decides whether it
// fails.
func (fs *ErrFS) check(op Op) error {
	idx := fs.ops.Add(1) - 1
	if fs.full.Load() && op&OpWriteClass != 0 {
		fs.injected.Add(1)
		return ErrNoSpace
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.armed || op&fs.mask == 0 || idx < fs.armAt {
		return nil
	}
	if fs.fired && !fs.sticky {
		return nil
	}
	fs.fired = true
	fs.injected.Add(1)
	return fs.err
}

func (fs *ErrFS) Create(name string) (File, error) {
	if err := fs.check(OpCreate); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return errFile{f: f, fs: fs}, nil
}

func (fs *ErrFS) Open(name string) (File, error) {
	if err := fs.check(OpOpen); err != nil {
		return nil, err
	}
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return errFile{f: f, fs: fs}, nil
}

func (fs *ErrFS) Remove(name string) error {
	if err := fs.check(OpRemove); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

func (fs *ErrFS) Rename(oldname, newname string) error {
	if err := fs.check(OpRename); err != nil {
		return err
	}
	return fs.inner.Rename(oldname, newname)
}

func (fs *ErrFS) MkdirAll(dir string) error {
	if err := fs.check(OpMkdir); err != nil {
		return err
	}
	return fs.inner.MkdirAll(dir)
}

func (fs *ErrFS) List(dir string) ([]string, error) {
	if err := fs.check(OpList); err != nil {
		return nil, err
	}
	return fs.inner.List(dir)
}

func (fs *ErrFS) Stat(name string) (int64, error) {
	if err := fs.check(OpStat); err != nil {
		return 0, err
	}
	return fs.inner.Stat(name)
}

// errFile routes data-path operations through the checker. Close is never
// injected: resource release must always be possible, or every failure
// test would leak handles instead of exercising error paths.
type errFile struct {
	f  File
	fs *ErrFS
}

func (f errFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f errFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(OpRead); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f errFile) Sync() error {
	if err := f.fs.check(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f errFile) Close() error { return f.f.Close() }
