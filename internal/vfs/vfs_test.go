package vfs

import (
	"io"
	"os"
	"testing"
)

func writeFile(t *testing.T, fs FS, name, content string, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := fs.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	return string(buf)
}

func TestMemFSBasics(t *testing.T) {
	fs := NewMem()
	writeFile(t, fs, "dir/a.txt", "hello", true)
	if got := readAll(t, fs, "dir/a.txt"); got != "hello" {
		t.Fatalf("read back %q", got)
	}
	if sz, _ := fs.Stat("dir/a.txt"); sz != 5 {
		t.Fatalf("stat size %d", sz)
	}
	if err := fs.Rename("dir/a.txt", "dir/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("dir/a.txt"); err == nil {
		t.Fatal("old name should be gone")
	}
	if got := readAll(t, fs, "dir/b.txt"); got != "hello" {
		t.Fatalf("renamed read %q", got)
	}
	if err := fs.Remove("dir/b.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("dir/b.txt"); !os.IsNotExist(err) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestMemFSList(t *testing.T) {
	fs := NewMem()
	writeFile(t, fs, "db/1.sst", "x", false)
	writeFile(t, fs, "db/2.sst", "y", false)
	writeFile(t, fs, "other/3.sst", "z", false)
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "1.sst" || names[1] != "2.sst" {
		t.Fatalf("list: %v", names)
	}
}

func TestMemFSAppendSemantics(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	f.Write([]byte("ab"))
	f.Write([]byte("cd"))
	f.Close()
	if got := readAll(t, fs, "f"); got != "abcd" {
		t.Fatalf("appended content %q", got)
	}
}

func TestMemFSReadAtPastEOF(t *testing.T) {
	fs := NewMem()
	writeFile(t, fs, "f", "abc", false)
	f, _ := fs.Open("f")
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past EOF: %v", err)
	}
}

func TestCountingFS(t *testing.T) {
	fs := NewCounting(NewMem())
	writeFile(t, fs, "db/000001.sst", "12345678", false)
	writeFile(t, fs, "db/000002.log", "1234", false)
	writeFile(t, fs, "db/MANIFEST-000003", "12", false)
	readAll(t, fs, "db/000001.sst")

	st := fs.Stats()
	if st.BytesWritten[CatTable] != 8 {
		t.Fatalf("table bytes %d", st.BytesWritten[CatTable])
	}
	if st.BytesWritten[CatLog] != 4 {
		t.Fatalf("log bytes %d", st.BytesWritten[CatLog])
	}
	if st.BytesWritten[CatManifest] != 2 {
		t.Fatalf("manifest bytes %d", st.BytesWritten[CatManifest])
	}
	if st.TotalWritten() != 14 {
		t.Fatalf("total written %d", st.TotalWritten())
	}
	if st.BytesRead[CatTable] != 8 {
		t.Fatalf("table read bytes %d", st.BytesRead[CatTable])
	}

	st2 := fs.Stats().Sub(st)
	if st2.TotalWritten() != 0 || st2.TotalRead() != 0 {
		t.Fatal("sub of identical snapshots should be zero")
	}
}

func TestCrashFSDropsUnsynced(t *testing.T) {
	fs := NewCrash()

	// Synced data survives; unsynced tail lost.
	f, _ := fs.Create("a")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-lost"))
	f.Close()

	// Never-synced file vanishes entirely.
	g, _ := fs.Create("b")
	g.Write([]byte("gone"))
	g.Close()

	fs.Crash()

	af, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _ := af.ReadAt(buf, 0)
	if string(buf[:n]) != "durable" {
		t.Fatalf("after crash: %q", buf[:n])
	}
	if _, err := fs.Open("b"); err == nil {
		t.Fatal("unsynced file should vanish")
	}
}

func TestCrashFSRenameDurable(t *testing.T) {
	fs := NewCrash()
	f, _ := fs.Create("tmp")
	f.Write([]byte("MANIFEST-000001\n"))
	f.Close()
	if err := fs.Rename("tmp", "CURRENT"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.Open("CURRENT"); err != nil {
		t.Fatalf("renamed file should survive crash: %v", err)
	}
}
