// Package vfs abstracts the filesystem under the store. The abstraction
// exists for three reasons that the PebblesDB reproduction depends on:
// deterministic in-memory benchmarking (MemFS), byte-exact write-
// amplification accounting (CountingFS), and crash-recovery testing
// (CrashFS). The Default implementation is backed by the OS.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle interface used by the store. Writes are append-only:
// the store never overwrites file contents in place (the LSM/FLSM design
// guarantees this), which keeps every implementation simple.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync makes previously written data durable.
	Sync() error
}

// FS is the filesystem interface. Paths use forward slashes and are
// interpreted relative to the FS root.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldname, newname string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not paths) of directory entries, sorted.
	List(dir string) ([]string, error)
	// Stat returns the size in bytes of the named file.
	Stat(name string) (int64, error)
}

// Default is the operating-system filesystem.
var Default FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Remove(name string) error            { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) MkdirAll(dir string) error           { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

type osFile struct{ *os.File }

func (f osFile) Sync() error { return f.File.Sync() }

// Clean normalizes a path for use as a map key in the in-memory
// implementations.
func Clean(p string) string { return filepath.ToSlash(filepath.Clean(p)) }
