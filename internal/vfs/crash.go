package vfs

import (
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// CrashFS simulates power loss over an in-memory filesystem. Data written
// but not synced is lost at Crash(); files created but never synced vanish;
// renames are atomic and durable once performed (matching the rename
// semantics journaling filesystems provide for small metadata operations,
// which LevelDB-family stores rely on for CURRENT updates).
//
// Crash-recovery tests drive the store through a workload, call Crash, then
// reopen the store on the surviving state and verify the recovered contents
// against what was durably acknowledged.
type CrashFS struct {
	mu    sync.Mutex
	files map[string]*crashNode
}

type crashNode struct {
	data   []byte
	synced int
	// everSynced records whether the file survived at least one Sync; files
	// that never synced disappear entirely at crash, matching directory
	// entries that were never flushed.
	everSynced bool
}

// NewCrash returns an empty crash-simulating filesystem.
func NewCrash() *CrashFS {
	return &CrashFS{files: make(map[string]*crashNode)}
}

// Crash drops all unsynced state, as if the machine lost power.
func (fs *CrashFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name, n := range fs.files {
		if !n.everSynced {
			delete(fs.files, name)
			continue
		}
		n.data = n.data[:n.synced]
	}
}

func (fs *CrashFS) Create(name string) (File, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := &crashNode{}
	fs.files[name] = n
	return &crashHandle{fs: fs, node: n}, nil
}

func (fs *CrashFS) Open(name string) (File, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &crashHandle{fs: fs, node: n, readonly: true}, nil
}

func (fs *CrashFS) Remove(name string) error {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

func (fs *CrashFS) Rename(oldname, newname string) error {
	oldname, newname = Clean(oldname), Clean(newname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	// A rename is treated as durable: LevelDB-family stores sync file
	// contents before renaming into place (CURRENT updates).
	n.everSynced = true
	n.synced = len(n.data)
	delete(fs.files, oldname)
	fs.files[newname] = n
	return nil
}

func (fs *CrashFS) MkdirAll(dir string) error { return nil }

func (fs *CrashFS) List(dir string) ([]string, error) {
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "." || dir == "/" {
		prefix = ""
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	seen := map[string]bool{}
	for name := range fs.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (fs *CrashFS) Stat(name string) (int64, error) {
	name = Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(n.data)), nil
}

type crashHandle struct {
	fs       *CrashFS
	node     *crashNode
	readonly bool
}

func (h *crashHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	h.node.data = append(h.node.data, p...)
	h.fs.mu.Unlock()
	return len(p), nil
}

func (h *crashHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *crashHandle) Sync() error {
	h.fs.mu.Lock()
	h.node.synced = len(h.node.data)
	h.node.everSynced = true
	h.fs.mu.Unlock()
	return nil
}

func (h *crashHandle) Close() error { return nil }
