package vfs

import (
	"errors"
	"testing"
)

func TestErrFSFailAtOneShot(t *testing.T) {
	fs := NewErr(NewMem())
	fs.FailAt(1, OpCreate, nil, false)

	if _, err := fs.Create("a"); err != nil {
		t.Fatalf("op 0 should pass: %v", err)
	}
	if _, err := fs.Create("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1 should fail injected, got %v", err)
	}
	if _, err := fs.Create("c"); err != nil {
		t.Fatalf("one-shot must clear after firing: %v", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestErrFSSticky(t *testing.T) {
	fs := NewErr(NewMem())
	sentinel := errors.New("dead device")
	fs.FailAt(0, OpCreate|OpWrite, sentinel, true)

	for i := 0; i < 3; i++ {
		if _, err := fs.Create("x"); !errors.Is(err, sentinel) {
			t.Fatalf("sticky attempt %d: got %v", i, err)
		}
	}
	// Non-matching classes still work.
	if _, err := fs.List("."); err != nil {
		t.Fatalf("List should not match mask: %v", err)
	}
	fs.Clear()
	if _, err := fs.Create("x"); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestErrFSOpClasses(t *testing.T) {
	fs := NewErr(NewMem())
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	// Arm against sync only: writes keep passing, the sync fails.
	fs.FailAt(0, OpSync, nil, true)
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatalf("write must not match OpSync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync should fail, got %v", err)
	}
	fs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reads go through the checker too.
	fs.FailAt(0, OpRead, nil, true)
	rf, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := rf.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read should fail, got %v", err)
	}
	fs.Clear()
	if _, err := rf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcdef" {
		t.Fatalf("read back %q", buf)
	}
	rf.Close()
}

func TestErrFSFullMode(t *testing.T) {
	fs := NewErr(NewMem())
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFull(true)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write on full disk: got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("sync on full disk: got %v", err)
	}
	if _, err := fs.Create("g"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("create on full disk: got %v", err)
	}
	// Reads, listing and deletion still work: that is what lets a store
	// keep serving and an operator free space.
	if _, err := fs.List("."); err != nil {
		t.Fatalf("list on full disk: %v", err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatalf("remove on full disk: %v", err)
	}
	fs.SetFull(false)
	if _, err := fs.Create("g"); err != nil {
		t.Fatalf("after clearing full: %v", err)
	}
}

func TestErrFSOpCountDeterministic(t *testing.T) {
	workload := func(fs FS) {
		f, _ := fs.Create("a")
		f.Write([]byte("hello"))
		f.Sync()
		f.Close()
		fs.Rename("a", "b")
		g, _ := fs.Open("b")
		buf := make([]byte, 5)
		g.ReadAt(buf, 0)
		g.Close()
		fs.Stat("b")
		fs.List(".")
		fs.Remove("b")
	}
	a := NewErr(NewMem())
	b := NewErr(NewMem())
	workload(a)
	workload(b)
	if a.OpCount() != b.OpCount() || a.OpCount() == 0 {
		t.Fatalf("op counts differ: %d vs %d", a.OpCount(), b.OpCount())
	}
}

// TestErrFSComposesWithCrash pins the composition the sweep and crash tests
// rely on: ErrFS wrapping CrashFS forwards faults while the crash wrapper
// keeps its own semantics.
func TestErrFSComposesWithCrash(t *testing.T) {
	crash := NewCrash()
	fs := NewErr(crash)
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	fs.FailAt(0, OpSync, nil, true)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync through composed stack: got %v", err)
	}
	fs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
