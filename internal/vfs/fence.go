package vfs

import (
	"errors"
	"sync/atomic"
)

// ErrFenced is returned by every operation on a fenced filesystem.
var ErrFenced = errors.New("vfs: filesystem fenced (simulated process death)")

// FencedFS wraps an FS so that all IO through it can be cut off at once.
// Crash tests pair it with CrashFS: fencing the old store instance models
// the death of its process (its background goroutines can no longer touch
// storage), and Crash() then discards unsynced data before the next
// instance opens the surviving files directly.
type FencedFS struct {
	inner  FS
	fenced atomic.Bool
}

// NewFenced wraps fs.
func NewFenced(fs FS) *FencedFS { return &FencedFS{inner: fs} }

// Fence cuts off all subsequent operations, including those on files
// opened earlier through this wrapper.
func (f *FencedFS) Fence() { f.fenced.Store(true) }

func (f *FencedFS) check() error {
	if f.fenced.Load() {
		return ErrFenced
	}
	return nil
}

func (f *FencedFS) Create(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &fencedFile{File: file, fs: f}, nil
}

func (f *FencedFS) Open(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &fencedFile{File: file, fs: f}, nil
}

func (f *FencedFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FencedFS) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FencedFS) MkdirAll(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FencedFS) List(dir string) ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.List(dir)
}

func (f *FencedFS) Stat(name string) (int64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.inner.Stat(name)
}

type fencedFile struct {
	File
	fs *FencedFS
}

func (f *fencedFile) Write(p []byte) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *fencedFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *fencedFile) Sync() error {
	if err := f.fs.check(); err != nil {
		return err
	}
	return f.File.Sync()
}
