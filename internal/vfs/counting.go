package vfs

import (
	"strings"
	"sync/atomic"
)

// IOCategory classifies IO by the kind of file it touched, so experiments
// can report write amplification per source (the paper's Figure 1.1 counts
// all write IO: sstables, logs, and manifests).
type IOCategory int

const (
	// CatTable is sstable IO.
	CatTable IOCategory = iota
	// CatLog is write-ahead-log IO.
	CatLog
	// CatManifest is MANIFEST/CURRENT IO.
	CatManifest
	// CatOther is everything else.
	CatOther
	numCategories
)

func categorize(name string) IOCategory {
	switch {
	case strings.HasSuffix(name, ".sst"), strings.HasSuffix(name, ".tmp"):
		return CatTable
	case strings.HasSuffix(name, ".log"):
		return CatLog
	case strings.Contains(name, "MANIFEST"), strings.HasSuffix(name, "CURRENT"):
		return CatManifest
	}
	return CatOther
}

// IOStats is a snapshot of byte counters taken from a CountingFS.
type IOStats struct {
	BytesWritten [numCategories]int64
	BytesRead    [numCategories]int64
}

// TotalWritten is the sum of bytes written across all categories.
func (s IOStats) TotalWritten() int64 {
	var t int64
	for _, v := range s.BytesWritten {
		t += v
	}
	return t
}

// TotalRead is the sum of bytes read across all categories.
func (s IOStats) TotalRead() int64 {
	var t int64
	for _, v := range s.BytesRead {
		t += v
	}
	return t
}

// Sub returns s - o, counter-wise; used to measure an interval.
func (s IOStats) Sub(o IOStats) IOStats {
	var r IOStats
	for i := 0; i < int(numCategories); i++ {
		r.BytesWritten[i] = s.BytesWritten[i] - o.BytesWritten[i]
		r.BytesRead[i] = s.BytesRead[i] - o.BytesRead[i]
	}
	return r
}

// Add returns s + o, counter-wise; used to aggregate across stores (e.g.
// the shards of one server process).
func (s IOStats) Add(o IOStats) IOStats {
	var r IOStats
	for i := 0; i < int(numCategories); i++ {
		r.BytesWritten[i] = s.BytesWritten[i] + o.BytesWritten[i]
		r.BytesRead[i] = s.BytesRead[i] + o.BytesRead[i]
	}
	return r
}

// CountingFS wraps another FS and counts every byte read and written,
// classified by file kind. It is the measurement instrument behind all
// write-amplification numbers in EXPERIMENTS.md.
type CountingFS struct {
	inner        FS
	bytesWritten [numCategories]atomic.Int64
	bytesRead    [numCategories]atomic.Int64
}

// NewCounting wraps fs with byte accounting.
func NewCounting(fs FS) *CountingFS { return &CountingFS{inner: fs} }

// Stats returns a snapshot of the counters.
func (c *CountingFS) Stats() IOStats {
	var s IOStats
	for i := 0; i < int(numCategories); i++ {
		s.BytesWritten[i] = c.bytesWritten[i].Load()
		s.BytesRead[i] = c.bytesRead[i].Load()
	}
	return s
}

func (c *CountingFS) Create(name string) (File, error) {
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c, cat: categorize(name)}, nil
}

func (c *CountingFS) Open(name string) (File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c, cat: categorize(name)}, nil
}

func (c *CountingFS) Remove(name string) error             { return c.inner.Remove(name) }
func (c *CountingFS) Rename(o, n string) error             { return c.inner.Rename(o, n) }
func (c *CountingFS) MkdirAll(dir string) error            { return c.inner.MkdirAll(dir) }
func (c *CountingFS) List(dir string) ([]string, error)    { return c.inner.List(dir) }
func (c *CountingFS) Stat(name string) (int64, error)      { return c.inner.Stat(name) }

type countingFile struct {
	File
	fs  *CountingFS
	cat IOCategory
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.bytesWritten[f.cat].Add(int64(n))
	return n, err
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.fs.bytesRead[f.cat].Add(int64(n))
	return n, err
}
