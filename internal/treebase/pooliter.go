package treebase

import (
	"sync"

	"pebblesdb/internal/iterator"
	"pebblesdb/internal/sstable"
)

// pooledTableIter is a table iterator drawn from a sync.Pool. Close drops
// the table-cache reference and returns the iterator (with its retained
// key/index buffers) to the pool, so a warm Seek that opens and closes
// sstable iterators settles into zero allocations.
type pooledTableIter struct {
	sstable.TableIter
	r *sstable.Reader
}

var tableIterPool = sync.Pool{New: func() interface{} { return &pooledTableIter{} }}

// GetTableIter returns a pooled iterator over r that releases the caller's
// table-cache reference on Close. It is the scan-path counterpart to
// NewTableIter; compactions keep NewSequentialTableIter (their iterators
// live long enough that pooling buys nothing).
func GetTableIter(r *sstable.Reader) iterator.Iterator {
	t := tableIterPool.Get().(*pooledTableIter)
	if err := t.Init(r); err != nil {
		r.Unref()
		t.ReleaseBuffers()
		tableIterPool.Put(t)
		return &iterator.Empty{Err: err}
	}
	t.r = r
	return t
}

func (t *pooledTableIter) Close() error {
	err := t.TableIter.Close()
	t.ReleaseBuffers()
	if t.r != nil {
		t.r.Unref()
		t.r = nil
	}
	tableIterPool.Put(t)
	return err
}
