package treebase

import (
	"pebblesdb/internal/base"
)

// IterStats accumulates per-iterator counters with plain (non-atomic) ints.
// The engine's pooled iterator owns one and folds the totals into its
// atomic metrics once, at Close, so the hot scan loop never touches shared
// cache lines.
type IterStats struct {
	// TablesOpened counts sstable iterators actually opened (after filter
	// pruning) over the iterator's lifetime.
	TablesOpened int64
	// PrefixSkips counts sstables skipped because their prefix bloom filter
	// ruled out the iterator's prefix before any data-block IO.
	PrefixSkips int64
}

// IterRequest carries everything a tree needs to build the sstable leg of a
// point iterator: the key bounds, an optional fixed-length prefix the scan
// is constrained to (tables whose prefix filter excludes it are skipped),
// and a stats sink shared by every level/guard iterator the tree creates.
type IterRequest struct {
	Bounds base.Bounds
	// Prefix, when non-nil, promises every key the iterator will visit
	// starts with these bytes. Trees may skip any sstable whose prefix
	// bloom filter (of matching length) rules it out. Bounds must already
	// reflect the prefix — Prefix is a pruning hint, not a constraint the
	// tree enforces.
	Prefix []byte
	// Stats, when non-nil, receives table-open and prefix-skip counts.
	Stats *IterStats
}

// CountOpen records a table iterator actually being opened.
func (r *IterRequest) CountOpen() {
	if r.Stats != nil {
		r.Stats.TablesOpened++
	}
}

// CountPrefixSkip records a table pruned by its prefix filter.
func (r *IterRequest) CountPrefixSkip() {
	if r.Stats != nil {
		r.Stats.PrefixSkips++
	}
}
