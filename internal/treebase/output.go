package treebase

import (
	"path/filepath"

	"pebblesdb/internal/base"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/vfs"
)

// FileNumAllocator hands out fresh file numbers (the version set).
type FileNumAllocator interface {
	NewFileNum() base.FileNum
}

// PendingRegistry tracks files being written so the obsolete-file sweeper
// never deletes in-flight compaction outputs.
type PendingRegistry interface {
	AddPending(base.FileNum)
	RemovePending(base.FileNum)
}

// OutputBuilder streams compaction or flush output into a sequence of
// sstables. The caller decides when to cut a table (guard boundary for
// FLSM, size threshold for leveled compaction).
type OutputBuilder struct {
	fs      vfs.FS
	dir     string
	wopts   sstable.WriterOptions
	alloc   FileNumAllocator
	pending PendingRegistry

	cur     *sstable.Writer
	curFile vfs.File
	curFn   base.FileNum

	metas []*base.FileMetadata
	stats sstable.CompressionStats
	err   error
}

// NewOutputBuilder returns a builder writing tables into dir.
func NewOutputBuilder(fs vfs.FS, dir string, wopts sstable.WriterOptions, alloc FileNumAllocator, pending PendingRegistry) *OutputBuilder {
	return &OutputBuilder{fs: fs, dir: dir, wopts: wopts, alloc: alloc, pending: pending}
}

// Add appends an entry to the current table, opening one if needed.
func (o *OutputBuilder) Add(ikey, value []byte) error {
	if o.err != nil {
		return o.err
	}
	if o.cur == nil {
		if err := o.open(); err != nil {
			return err
		}
	}
	return o.setErr(o.cur.Add(ikey, value))
}

func (o *OutputBuilder) open() error {
	fn := o.alloc.NewFileNum()
	if o.pending != nil {
		o.pending.AddPending(fn)
	}
	f, err := o.fs.Create(filepath.Join(o.dir, base.MakeFilename(base.FileTypeTable, fn)))
	if err != nil {
		if o.pending != nil {
			o.pending.RemovePending(fn)
		}
		return o.setErr(err)
	}
	o.cur = sstable.NewWriter(f, o.wopts)
	o.curFile = f
	o.curFn = fn
	return nil
}

// AddRangeDels attaches range tombstones to the current table, opening one
// if needed. The caller has already fragmented and truncated them to the
// table's intended bounds (guard partition interval or leveled cut
// boundaries); the writer coalesces them into the table's range-del block
// at Cut. A table may hold tombstones and no points.
func (o *OutputBuilder) AddRangeDels(ts []rangedel.Tombstone) error {
	if o.err != nil {
		return o.err
	}
	if len(ts) == 0 {
		return nil
	}
	if o.cur == nil {
		if err := o.open(); err != nil {
			return err
		}
	}
	for _, t := range ts {
		o.cur.AddRangeDel(t.Start, t.End, t.Seq)
	}
	return nil
}

// HasOpen reports whether a table is currently being written.
func (o *OutputBuilder) HasOpen() bool { return o.cur != nil }

// CurrentSize returns the estimated size of the open table.
func (o *OutputBuilder) CurrentSize() uint64 {
	if o.cur == nil {
		return 0
	}
	return o.cur.EstimatedSize()
}

// Cut finishes the open table, syncing it and recording its metadata.
// No-op when no table is open.
func (o *OutputBuilder) Cut() error {
	if o.err != nil || o.cur == nil {
		return o.err
	}
	info, err := o.cur.Finish()
	if err == nil {
		err = o.curFile.Sync()
	}
	if cerr := o.curFile.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// The half-written table is garbage: remove it now rather than
		// leaving an orphan for the next open's sweep to find.
		o.fs.Remove(filepath.Join(o.dir, base.MakeFilename(base.FileTypeTable, o.curFn)))
		if o.pending != nil {
			o.pending.RemovePending(o.curFn)
		}
		o.cur, o.curFile = nil, nil
		return o.setErr(err)
	}
	o.metas = append(o.metas, &base.FileMetadata{
		FileNum:       o.curFn,
		Size:          info.Size,
		Smallest:      info.Smallest,
		Largest:       info.Largest,
		NumRangeDels:  info.NumRangeDels,
		RangeDelStart: info.RangeDelStart,
		RangeDelEnd:   info.RangeDelEnd,
	})
	o.stats.Merge(info.Compression)
	o.cur, o.curFile = nil, nil
	return nil
}

// CompressionStats returns the accumulated data-block codec accounting of
// every table finished so far.
func (o *OutputBuilder) CompressionStats() sstable.CompressionStats { return o.stats }

// Finish cuts any open table and returns the metadata of all tables
// written. The caller must call ReleasePending after installing (or
// abandoning) the outputs.
func (o *OutputBuilder) Finish() ([]*base.FileMetadata, error) {
	if err := o.Cut(); err != nil {
		return nil, err
	}
	return o.metas, o.err
}

// ReleasePending unregisters every produced file from the pending set;
// call after the version edit is durable (or after cleaning up a failure).
func (o *OutputBuilder) ReleasePending() {
	if o.pending == nil {
		return
	}
	for _, m := range o.metas {
		o.pending.RemovePending(m.FileNum)
	}
	if o.cur != nil {
		o.pending.RemovePending(o.curFn)
	}
}

// Abandon closes and removes any open table after a failure.
func (o *OutputBuilder) Abandon() {
	if o.cur != nil {
		o.curFile.Close()
		o.fs.Remove(filepath.Join(o.dir, base.MakeFilename(base.FileTypeTable, o.curFn)))
		if o.pending != nil {
			o.pending.RemovePending(o.curFn)
		}
		o.cur = nil
	}
	for _, m := range o.metas {
		o.fs.Remove(filepath.Join(o.dir, base.MakeFilename(base.FileTypeTable, m.FileNum)))
		if o.pending != nil {
			o.pending.RemovePending(m.FileNum)
		}
	}
	o.metas = nil
}

func (o *OutputBuilder) setErr(err error) error {
	if o.err == nil {
		o.err = err
	}
	return o.err
}

// Metrics aggregates tree-level statistics reported up through the engine.
type Metrics struct {
	// Compactions counts completed compaction units.
	Compactions int64
	// TrivialMoves counts leveled-tree metadata-only moves.
	TrivialMoves int64
	// InPlaceMerges counts FLSM last-level (and second-to-last) rewrites.
	InPlaceMerges int64
	// SeekCompactions counts compactions triggered by seek thresholds.
	SeekCompactions int64
	// BytesCompactedIn / BytesCompactedOut are compaction read/write IO.
	BytesCompactedIn  int64
	BytesCompactedOut int64
	// BytesFlushed is memtable-flush write IO.
	BytesFlushed int64
	// LevelFiles / LevelBytes describe the current version.
	LevelFiles []int
	LevelBytes []int64
	// GuardsPerLevel counts committed guards (FLSM only).
	GuardsPerLevel []int
	// EmptyGuards counts committed guards with no files (FLSM only).
	EmptyGuards int
	// TableFileSizes lists the sizes of all live sstables (Table 5.1).
	TableFileSizes []uint64
	// CompactionUnits counts units claimed by the parallel compaction
	// scheduler (flsm: guard groups; leveled: input+target file sets).
	CompactionUnits int64
	// UnitsInflight is the point-in-time number of running units.
	UnitsInflight int64
	// PeakUnitsInflight is the high-water mark of concurrently running
	// units within one tree; Merge takes the max, so an aggregate reports
	// the most parallel any single shard ever was.
	PeakUnitsInflight int64
	// PeakLevelUnits[l] is the high-water mark of concurrent units whose
	// *source* is level l. PeakLevelUnits[l] > 1 for some l >= 1 is the
	// FLSM paper's structural claim realized: disjoint guards of one level
	// compacting simultaneously.
	PeakLevelUnits []int
	// ClaimConflicts counts picker passes that found pending work but
	// could claim none of it (every unit held by a running peer);
	// ClaimStallNanos is the time workers spent in that state before the
	// next successful claim.
	ClaimConflicts  int64
	ClaimStallNanos int64
	// Compression accounts the write-side block codec across flushes and
	// compactions: logical (pre-compression) vs physical data-block bytes,
	// block counts, and encoder time.
	Compression sstable.CompressionStats
}

// Merge accumulates o into m, counter-wise: per-level slices are summed
// element-wise (growing m's to cover o's levels), table sizes are
// concatenated, and everything else adds. Aggregating the shards of a
// multi-engine server goes through here.
func (m *Metrics) Merge(o Metrics) {
	m.Compactions += o.Compactions
	m.TrivialMoves += o.TrivialMoves
	m.InPlaceMerges += o.InPlaceMerges
	m.SeekCompactions += o.SeekCompactions
	m.BytesCompactedIn += o.BytesCompactedIn
	m.BytesCompactedOut += o.BytesCompactedOut
	m.BytesFlushed += o.BytesFlushed
	for len(m.LevelFiles) < len(o.LevelFiles) {
		m.LevelFiles = append(m.LevelFiles, 0)
	}
	for i, n := range o.LevelFiles {
		m.LevelFiles[i] += n
	}
	for len(m.LevelBytes) < len(o.LevelBytes) {
		m.LevelBytes = append(m.LevelBytes, 0)
	}
	for i, b := range o.LevelBytes {
		m.LevelBytes[i] += b
	}
	for len(m.GuardsPerLevel) < len(o.GuardsPerLevel) {
		m.GuardsPerLevel = append(m.GuardsPerLevel, 0)
	}
	for i, g := range o.GuardsPerLevel {
		m.GuardsPerLevel[i] += g
	}
	m.EmptyGuards += o.EmptyGuards
	m.TableFileSizes = append(m.TableFileSizes, o.TableFileSizes...)
	m.CompactionUnits += o.CompactionUnits
	m.UnitsInflight += o.UnitsInflight
	if o.PeakUnitsInflight > m.PeakUnitsInflight {
		m.PeakUnitsInflight = o.PeakUnitsInflight
	}
	for len(m.PeakLevelUnits) < len(o.PeakLevelUnits) {
		m.PeakLevelUnits = append(m.PeakLevelUnits, 0)
	}
	for i, u := range o.PeakLevelUnits {
		if u > m.PeakLevelUnits[i] {
			m.PeakLevelUnits[i] = u
		}
	}
	m.ClaimConflicts += o.ClaimConflicts
	m.ClaimStallNanos += o.ClaimStallNanos
	m.Compression.Merge(o.Compression)
}

// MaxLevelParallelism is the largest per-source-level unit high-water mark
// at levels >= 1 — the single-level concurrency number the FLSM guard
// structure is supposed to unlock.
func (m Metrics) MaxLevelParallelism() int {
	best := 0
	for l, u := range m.PeakLevelUnits {
		if l >= 1 && u > best {
			best = u
		}
	}
	return best
}
