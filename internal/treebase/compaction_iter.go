// Package treebase holds machinery shared by the FLSM tree (the paper's
// contribution) and the leveled LSM tree (the baseline): the compaction
// iterator that applies snapshot-aware garbage collection, the output table
// builder, and small shared types. Keeping this layer common makes the
// FLSM-vs-LSM benchmarks an apples-to-apples comparison of the compaction
// algorithms alone.
package treebase

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/rangedel"
)

// Host is the engine-side contract the trees depend on: snapshot
// visibility for compaction GC, and obsolete-file reporting. Physical
// deletion is centralized in the engine, which defers it while reads are
// in flight; trees never unlink table files themselves.
type Host interface {
	// SmallestSnapshot reports the oldest sequence number any live
	// snapshot can observe; compactions must retain the newest version at
	// or below it for every key.
	SmallestSnapshot() base.SeqNum
	// NoteObsoleteTables queues table files that just left the live
	// version for physical deletion.
	NoteObsoleteTables(fns []base.FileNum)
}

// CompactionIter filters a merged input stream during compaction:
//   - versions older than the newest version visible at the smallest
//     snapshot are dropped ("keys marked for deletion are garbage collected
//     during compaction", §4.3);
//   - deletion tombstones are elided when compacting into the last level,
//     where nothing older can hide beneath them;
//   - point entries covered by an input range tombstone that every live
//     snapshot can see (tombstone seq <= smallest snapshot, entry seq below
//     the tombstone's) are dropped at any level: the covering tombstone
//     either travels to the output with them or the output is the last
//     level, so no reader can lose the deletion.
type CompactionIter struct {
	in               iterator.Iterator
	smallestSnapshot base.SeqNum
	elideTombstones  bool
	rangeDels        *rangedel.List // may be nil

	curUkey     []byte
	seenBelowSS bool // emitted (or elided) the newest <= snapshot version of curUkey

	key   []byte
	value []byte
	valid bool
}

// NewCompactionIter wraps in (which must yield internal keys in order).
// rangeDels, when non-nil, holds the compaction inputs' range tombstones
// and enables covered-point elision.
func NewCompactionIter(in iterator.Iterator, smallestSnapshot base.SeqNum, elideTombstones bool, rangeDels *rangedel.List) *CompactionIter {
	if rangeDels.Empty() {
		rangeDels = nil
	}
	return &CompactionIter{in: in, smallestSnapshot: smallestSnapshot, elideTombstones: elideTombstones, rangeDels: rangeDels}
}

// First positions at the first surviving entry.
func (c *CompactionIter) First() {
	c.in.First()
	c.curUkey = nil
	c.seenBelowSS = false
	c.findNext()
}

// Next advances to the next surviving entry.
func (c *CompactionIter) Next() {
	c.in.Next()
	c.findNext()
}

func (c *CompactionIter) findNext() {
	c.valid = false
	for c.in.Valid() {
		ikey := c.in.Key()
		ukey, seq, kind, ok := base.DecodeInternalKey(ikey)
		if !ok {
			// Malformed keys cannot occur in tables we wrote; skip
			// defensively.
			c.in.Next()
			continue
		}
		if c.curUkey == nil || string(ukey) != string(c.curUkey) {
			c.curUkey = append(c.curUkey[:0], ukey...)
			c.seenBelowSS = false
		} else if c.seenBelowSS {
			// An older version of a key whose newest <= snapshot version
			// was already handled: shadowed for every possible reader.
			c.in.Next()
			continue
		}
		if seq <= c.smallestSnapshot {
			c.seenBelowSS = true
			if kind == base.KindDelete && c.elideTombstones {
				// The tombstone is the newest visible version and nothing
				// can live below the output level: drop it and everything
				// older.
				c.in.Next()
				continue
			}
			if c.rangeDels != nil && c.rangeDels.CoverSeq(ukey, c.smallestSnapshot) > seq {
				// Covered by a range tombstone no snapshot can miss: every
				// reader that could see this version sees the deletion
				// instead. Older versions are shadowed via seenBelowSS.
				c.in.Next()
				continue
			}
		}
		c.key = ikey
		c.value = c.in.Value()
		c.valid = true
		return
	}
}

// Valid reports whether the iterator is positioned on a surviving entry.
func (c *CompactionIter) Valid() bool { return c.valid }

// Key returns the current internal key.
func (c *CompactionIter) Key() []byte { return c.key }

// Value returns the current value.
func (c *CompactionIter) Value() []byte { return c.value }

// Error returns the input's error.
func (c *CompactionIter) Error() error { return c.in.Error() }

// Close closes the input.
func (c *CompactionIter) Close() error { return c.in.Close() }
