package treebase

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/vfs"
)

// entriesIter yields pre-sorted internal keys for compaction-iter tests.
type entriesIter struct {
	keys [][]byte
	vals [][]byte
	idx  int
}

func (e *entriesIter) SeekGE(target []byte) {
	e.idx = sort.Search(len(e.keys), func(i int) bool {
		return base.InternalCompare(e.keys[i], target) >= 0
	})
}
func (e *entriesIter) SeekLT(target []byte) {
	e.SeekGE(target)
	e.idx--
}
func (e *entriesIter) First()        { e.idx = 0 }
func (e *entriesIter) Last()         { e.idx = len(e.keys) - 1 }
func (e *entriesIter) Next()         { e.idx++ }
func (e *entriesIter) Prev()         { e.idx-- }
func (e *entriesIter) Valid() bool   { return e.idx >= 0 && e.idx < len(e.keys) }
func (e *entriesIter) Key() []byte   { return e.keys[e.idx] }
func (e *entriesIter) Value() []byte { return e.vals[e.idx] }
func (e *entriesIter) Error() error  { return nil }
func (e *entriesIter) Close() error  { return nil }

func makeInput(specs []string) *entriesIter {
	// spec format: "ukey/seq/kind" with kind s or d, pre-sorted by caller
	// logic below.
	e := &entriesIter{}
	for _, s := range specs {
		var ukey string
		var seq int
		var kind string
		fmt.Sscanf(s, "%1s/%d/%1s", &ukey, &seq, &kind)
		k := base.KindSet
		if kind == "d" {
			k = base.KindDelete
		}
		e.keys = append(e.keys, base.MakeInternalKey(nil, []byte(ukey), base.SeqNum(seq), k))
		e.vals = append(e.vals, []byte(fmt.Sprintf("%s@%d", ukey, seq)))
	}
	// Sort keys and values together.
	type pair struct{ k, v []byte }
	var ps []pair
	for i := range e.keys {
		ps = append(ps, pair{e.keys[i], e.vals[i]})
	}
	sort.Slice(ps, func(i, j int) bool { return base.InternalCompare(ps[i].k, ps[j].k) < 0 })
	for i := range ps {
		e.keys[i], e.vals[i] = ps[i].k, ps[i].v
	}
	return e
}

func collect(t *testing.T, ci *CompactionIter) []string {
	t.Helper()
	var out []string
	for ci.First(); ci.Valid(); ci.Next() {
		ukey, seq, kind, _ := base.DecodeInternalKey(ci.Key())
		out = append(out, fmt.Sprintf("%s/%d/%v", ukey, seq, kind))
	}
	return out
}

func TestCompactionIterDropsShadowedVersions(t *testing.T) {
	in := makeInput([]string{"a/5/s", "a/3/s", "a/1/s", "b/2/s"})
	ci := NewCompactionIter(in, base.MaxSeqNum, false, nil)
	got := collect(t, ci)
	// Newest of 'a' survives, older shadowed versions die.
	want := []string{"a/5/SET", "b/2/SET"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCompactionIterRespectsSnapshots(t *testing.T) {
	in := makeInput([]string{"a/9/s", "a/5/s", "a/2/s"})
	// A snapshot at 5 requires keeping a@9 (latest) and a@5 (newest <= 5);
	// a@2 is shadowed for every possible reader.
	ci := NewCompactionIter(in, 5, false, nil)
	got := collect(t, ci)
	want := []string{"a/9/SET", "a/5/SET"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCompactionIterTombstoneElision(t *testing.T) {
	in := makeInput([]string{"a/5/d", "a/3/s", "b/2/s"})
	// Without elision the tombstone is kept (data below could exist).
	ci := NewCompactionIter(in, base.MaxSeqNum, false, nil)
	got := collect(t, ci)
	want := []string{"a/5/DEL", "b/2/SET"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("no-elide: got %v want %v", got, want)
	}

	// With elision (last level) the tombstone and everything under it die.
	in2 := makeInput([]string{"a/5/d", "a/3/s", "b/2/s"})
	ci2 := NewCompactionIter(in2, base.MaxSeqNum, true, nil)
	got2 := collect(t, ci2)
	want2 := []string{"b/2/SET"}
	if fmt.Sprint(got2) != fmt.Sprint(want2) {
		t.Fatalf("elide: got %v want %v", got2, want2)
	}
}

func TestCompactionIterTombstoneAboveSnapshotKept(t *testing.T) {
	// A tombstone newer than the smallest snapshot must survive even at
	// the last level: snapshot readers still need the value under it, and
	// non-snapshot readers need the tombstone.
	in := makeInput([]string{"a/9/d", "a/5/s"})
	ci := NewCompactionIter(in, 5, true, nil)
	got := collect(t, ci)
	want := []string{"a/9/DEL", "a/5/SET"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

type testAlloc struct{ n uint64 }

func (a *testAlloc) NewFileNum() base.FileNum { a.n++; return base.FileNum(a.n) }

func TestOutputBuilderCutsAndFinishes(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	alloc := &testAlloc{}
	ob := NewOutputBuilder(fs, "db", sstable.WriterOptions{}, alloc, nil)

	add := func(k string, seq int) {
		ik := base.MakeInternalKey(nil, []byte(k), base.SeqNum(seq), base.KindSet)
		if err := ob.Add(ik, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 1)
	add("b", 2)
	if err := ob.Cut(); err != nil {
		t.Fatal(err)
	}
	add("c", 3)
	metas, err := ob.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(metas))
	}
	if string(metas[0].SmallestUserKey()) != "a" || string(metas[0].LargestUserKey()) != "b" {
		t.Fatalf("table 0 bounds: %v", metas[0])
	}
	if string(metas[1].SmallestUserKey()) != "c" {
		t.Fatalf("table 1 bounds: %v", metas[1])
	}
	for _, m := range metas {
		if _, err := fs.Stat("db/" + base.MakeFilename(base.FileTypeTable, m.FileNum)); err != nil {
			t.Fatalf("output file missing: %v", err)
		}
	}
}

func TestOutputBuilderAbandonRemovesFiles(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	alloc := &testAlloc{}
	ob := NewOutputBuilder(fs, "db", sstable.WriterOptions{}, alloc, nil)
	ik := base.MakeInternalKey(nil, []byte("a"), 1, base.KindSet)
	ob.Add(ik, []byte("v"))
	ob.Cut()
	ob.Add(base.MakeInternalKey(nil, []byte("b"), 2, base.KindSet), []byte("v"))
	ob.Abandon()
	names, _ := fs.List("db")
	if len(names) != 0 {
		t.Fatalf("abandon left files: %v", names)
	}
}

func TestOutputBuilderEmptyFinish(t *testing.T) {
	fs := vfs.NewMem()
	ob := NewOutputBuilder(fs, "db", sstable.WriterOptions{}, &testAlloc{}, nil)
	metas, err := ob.Finish()
	if err != nil || len(metas) != 0 {
		t.Fatalf("empty finish: %v %v", metas, err)
	}
}

var _ iterator.Iterator = (*entriesIter)(nil)
var _ = bytes.Compare
