package treebase

import (
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/sstable"
)

// tableIterWithRef ties an sstable iterator's lifetime to the table-cache
// reference that backs it: Close releases the reference.
type tableIterWithRef struct {
	iterator.Iterator
	r *sstable.Reader
}

// NewTableIter returns an iterator over r that releases the caller's
// table-cache reference on Close.
func NewTableIter(r *sstable.Reader) iterator.Iterator {
	return &tableIterWithRef{Iterator: r.NewIter(), r: r}
}

// NewSequentialTableIter is NewTableIter in sequential-read mode: the
// iterator prefetches ~256KiB chunks and skips block-cache population.
// Compaction inputs use it — they read every block exactly once.
func NewSequentialTableIter(r *sstable.Reader) iterator.Iterator {
	return &tableIterWithRef{Iterator: r.NewSequentialIter(), r: r}
}

func (t *tableIterWithRef) Close() error {
	err := t.Iterator.Close()
	t.r.Unref()
	return err
}
