package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"pebblesdb"
)

// DebugHandler returns the server's observability endpoint:
//
//	/metrics              Prometheus text exposition of the merged
//	                      cross-shard metrics plus server-level families
//	/debug/metrics        the same numbers; ?format=text renders the
//	                      human-readable Metrics.String report, otherwise
//	                      JSON
//	/debug/events         the per-shard flight recorders (recent background
//	                      events) as JSON
//	/debug/pprof/*        the standard runtime profiles
//
// Serve it on an operator-facing address (dbserver's -obs flag), separate
// from the data-plane listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleProm)
	mux.HandleFunc("/debug/metrics", s.handleDebugMetrics)
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st.Aggregate.WritePrometheus(w)
	fmt.Fprintf(w, "# HELP pebblesdb_server_shards Shard engines in this process.\n# TYPE pebblesdb_server_shards gauge\npebblesdb_server_shards %d\n", st.Shards)
	fmt.Fprintf(w, "# HELP pebblesdb_server_read_only_shards Shards degraded to read-only.\n# TYPE pebblesdb_server_read_only_shards gauge\npebblesdb_server_read_only_shards %d\n", st.ReadOnlyShards)
	fmt.Fprintf(w, "# HELP pebblesdb_server_active_conns Open client connections.\n# TYPE pebblesdb_server_active_conns gauge\npebblesdb_server_active_conns %d\n", st.ActiveConns)
	fmt.Fprintf(w, "# HELP pebblesdb_server_conns_total Connections accepted.\n# TYPE pebblesdb_server_conns_total counter\npebblesdb_server_conns_total %d\n", st.TotalConns)
	fmt.Fprintf(w, "# HELP pebblesdb_server_requests_total Wire requests handled.\n# TYPE pebblesdb_server_requests_total counter\npebblesdb_server_requests_total %d\n", st.Requests)
	fmt.Fprintf(w, "# HELP pebblesdb_server_uptime_seconds Seconds since the server started.\n# TYPE pebblesdb_server_uptime_seconds gauge\npebblesdb_server_uptime_seconds %g\n", st.UptimeSecs)
}

func (s *Server) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "shards %d (read-only %d), conns %d active / %d total, requests %d, uptime %.1fs\n\n",
			st.Shards, st.ReadOnlyShards, st.ActiveConns, st.TotalConns, st.Requests, st.UptimeSecs)
		fmt.Fprint(w, st.Aggregate.String())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// shardEvents is one shard's flight-recorder snapshot in /debug/events.
type shardEvents struct {
	Shard  int               `json:"shard"`
	Events []pebblesdb.Event `json:"events"`
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	out := make([]shardEvents, len(s.shards))
	for i, db := range s.shards {
		ev := db.RecentEvents()
		if ev == nil {
			ev = []pebblesdb.Event{}
		}
		out[i] = shardEvents{Shard: i, Events: ev}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
