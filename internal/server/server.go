package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb"
)

// Options tunes the server; the zero value selects the defaults.
type Options struct {
	// AccumBytes caps how many write-payload bytes a connection
	// accumulates before it must apply them. The cap bounds per-connection
	// memory and is the backpressure valve: once a flush is forced, the
	// connection's read loop blocks inside the engines' write path — which
	// stalls under compaction debt — and TCP pushes that stall back to the
	// client. Default 512 KiB.
	AccumBytes int
	// MaxScanLimit caps a single Scan response; requests asking for more
	// (or for 0 = server default) are clamped. Default 65536 / 1024.
	MaxScanLimit     int
	DefaultScanLimit int
	// Logf, when set, receives connection-level error logs and slow-op
	// lines.
	Logf func(format string, args ...any)
	// SlowOpThreshold, when positive, logs every RPC (and every
	// accumulated-write flush) slower than the threshold through Logf.
	// Pair it with Options.SlowOpThreshold on the shard stores to also get
	// the per-commit stage breakdown.
	SlowOpThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.AccumBytes <= 0 {
		o.AccumBytes = 512 << 10
	}
	if o.MaxScanLimit <= 0 {
		o.MaxScanLimit = 65536
	}
	if o.DefaultScanLimit <= 0 {
		o.DefaultScanLimit = 1024
	}
	return o
}

// Server serves the wire protocol over M shard engines in one process.
// Keys route to shards via a consistent-hash ring; range operations
// (DeleteRange, Scan) broadcast to every shard, because hash routing
// scatters any key interval across all of them. The server does not own
// the shard DBs: Close drains connections, and the caller closes the
// shards afterwards (DB.Close itself waits out reads that raced the
// drain).
type Server struct {
	shards []*pebblesdb.DB
	ring   *ring
	opts   Options
	start  time.Time

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	totalConns atomic.Int64
	requests   atomic.Int64
}

// New returns a server over the given shard engines (at least one).
func New(shards []*pebblesdb.DB, opts *Options) *Server {
	if len(shards) == 0 {
		panic("server: no shards")
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	return &Server{
		shards: shards,
		ring:   newRing(len(shards)),
		opts:   o.withDefaults(),
		start:  time.Now(),
		lns:    make(map[net.Listener]struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Serve accepts connections on ln until the listener fails or the server
// closes. It returns nil on a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if !s.track(c) {
			c.Close()
			return nil
		}
		go func() {
			defer s.untrack(c)
			s.serveConn(c)
		}()
	}
}

// ServeConn serves a single connection synchronously (tests, fuzzing, and
// custom accept loops). It returns when the connection ends.
func (s *Server) ServeConn(c net.Conn) {
	if !s.track(c) {
		c.Close()
		return
	}
	defer s.untrack(c)
	s.serveConn(c)
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	s.totalConns.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

// Close drains the server: stop accepting, force every connection's read
// loop to fail, and wait for the handlers (including any in-flight apply)
// to return. The shard DBs stay open — the caller closes them next.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: stop accepting, unblock every
// connection's next read so its handler answers what it has buffered,
// flushes, and returns, then wait for the handlers. Unlike Close, a
// handler mid-request finishes that request (including an in-flight
// apply) and its response reaches the client. Connections still alive
// after timeout are force-closed; Shutdown waits for them to unwind and
// reports whether the drain was clean.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		// An expired read deadline fails the connection's next blocking
		// ReadFrame without tearing down the socket, so the handler's final
		// responses still flush out before it returns.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		s.mu.Lock()
		stuck := len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: graceful drain timed out; force-closed %d connections", stuck)
	}
}

// Stats is the service-level snapshot the Stats RPC returns: connection
// and request accounting plus the shard engines' metrics merged into one
// aggregate (counters summed, histograms merged bucket-wise; see
// Metrics.Merge).
type Stats struct {
	Shards int `json:"shards"`
	// ReadOnlyShards counts shards currently degraded to read-only by a
	// background IO error; nonzero means some writes are failing with
	// StatusReadOnly while reads keep serving.
	ReadOnlyShards int     `json:"read_only_shards"`
	ActiveConns    int     `json:"active_conns"`
	TotalConns     int64   `json:"total_conns"`
	Requests       int64   `json:"requests"`
	UptimeSecs     float64 `json:"uptime_secs"`
	// WriteAmplification is the aggregate ratio, derived from the summed
	// counters (not a mean of per-shard ratios).
	WriteAmplification float64           `json:"write_amplification"`
	Aggregate          pebblesdb.Metrics `json:"aggregate"`
}

// Stats merges every shard's metrics into one snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	var agg pebblesdb.Metrics
	readOnly := 0
	for i, db := range s.shards {
		m := db.Metrics()
		if i == 0 {
			agg = m
		} else {
			agg.Merge(m)
		}
		if db.ReadOnly() {
			readOnly++
		}
	}
	return Stats{
		Shards:             len(s.shards),
		ReadOnlyShards:     readOnly,
		ActiveConns:        active,
		TotalConns:         s.totalConns.Load(),
		Requests:           s.requests.Load(),
		UptimeSecs:         time.Since(s.start).Seconds(),
		WriteAmplification: agg.WriteAmplification(),
		Aggregate:          agg,
	}
}

// conn is the per-connection state: buffered IO, the per-shard write
// accumulators, and scratch buffers reused across requests.
type conn struct {
	s  *Server
	br *bufio.Reader
	bw *bufio.Writer

	// batches accumulate writes per shard between flushes; pending counts
	// the wire requests they cover (each owed one response, in order).
	batches    []*pebblesdb.Batch
	pending    int
	accumBytes int
	sync       bool

	frame  []byte // frame read buffer
	resp   []byte // response build buffer
	getBuf []byte // Get destination buffer
	scan   scanScratch
}

// scanScratch is the per-connection Scan workspace: the per-shard result
// runs, the flat byte arena their keys and values copy into, and the merge
// cursors. Everything is reused across Scan RPCs, so a scan-heavy
// connection's steady state allocates only the pooled iterator checkout —
// not two copies per returned pair.
type scanScratch struct {
	runs  [][]kvRef
	heads []int
	arena []byte
}

// kvRef locates one scanned pair inside the scratch arena. Offsets stay
// valid when the arena's append reallocates it; slices would not.
type kvRef struct {
	koff, klen uint32
	voff, vlen uint32
}

func (sc *scanScratch) key(r kvRef) []byte { return sc.arena[r.koff : r.koff+r.klen] }
func (sc *scanScratch) val(r kvRef) []byte { return sc.arena[r.voff : r.voff+r.vlen] }

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		s:       s,
		br:      bufio.NewReaderSize(nc, 64<<10),
		bw:      bufio.NewWriterSize(nc, 64<<10),
		batches: make([]*pebblesdb.Batch, len(s.shards)),
	}
	for {
		payload, err := ReadFrame(c.br, c.frame)
		if err != nil {
			// Unacked accumulated writes die with the connection: they
			// were never applied, never answered, and the client cannot
			// assume otherwise. (Clean EOF between frames is the normal
			// end of a connection.)
			return
		}
		c.frame = payload[:0]
		req, perr := ParseRequest(payload)
		if perr != nil {
			// A malformed frame means the stream is not trustworthy
			// beyond this point (framing may be desynchronized): answer
			// with the parse error, flush, and drop the connection.
			// Accumulated writes are applied first — they were well-formed
			// requests and may already be what the client is relying on.
			if err := c.flushWrites(); err != nil && s.opts.Logf != nil {
				s.opts.Logf("server: apply before protocol error: %v", err)
			}
			c.writeResponse(StatusErr, []byte(perr.Error()))
			c.bw.Flush()
			return
		}
		s.requests.Add(1)
		slow := s.opts.SlowOpThreshold
		var t0 time.Time
		if slow > 0 {
			t0 = time.Now()
		}
		switch req.Op {
		case OpPut, OpDelete, OpDeleteRange, OpApplyBatch:
			c.accumulate(&req)
			if c.accumBytes >= s.opts.AccumBytes {
				if err := c.flushWrites(); err != nil {
					return
				}
			}
		case OpGet:
			if err := c.flushWrites(); err != nil {
				return
			}
			c.handleGet(req.Key)
		case OpScan:
			if err := c.flushWrites(); err != nil {
				return
			}
			c.handleScan(&req)
		case OpStats:
			if err := c.flushWrites(); err != nil {
				return
			}
			c.handleStats()
		case OpPing:
			if err := c.flushWrites(); err != nil {
				return
			}
			c.writeResponse(StatusOK, nil)
		}
		if slow > 0 && s.opts.Logf != nil {
			// Write ops are covered at flush time (flushWrites), where the
			// engine commit actually happens.
			switch req.Op {
			case OpGet, OpScan, OpStats, OpPing:
				if d := time.Since(t0); d >= slow {
					s.opts.Logf("server: slow op: %s total=%s key=%dB", req.Op, d, len(req.Key))
				}
			}
		}
		// The pipelining heart: while more requests are already buffered,
		// keep decoding and accumulating; the moment the connection goes
		// quiet, apply what accumulated and flush the responses out. A
		// client streaming N puts gets them committed in a handful of
		// group commits; a client doing request/response ping-pong gets
		// every reply immediately.
		if c.br.Buffered() == 0 {
			if err := c.flushWrites(); err != nil {
				return
			}
			if err := c.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// accumulate routes one write request into the per-shard batches.
func (c *conn) accumulate(req *Request) {
	if req.Flags&FlagSync != 0 {
		c.sync = true
	}
	switch req.Op {
	case OpPut:
		c.batch(c.s.ring.shard(req.Key)).Set(req.Key, req.Val)
		c.accumBytes += len(req.Key) + len(req.Val)
	case OpDelete:
		c.batch(c.s.ring.shard(req.Key)).Delete(req.Key)
		c.accumBytes += len(req.Key)
	case OpDeleteRange:
		// One routed range tombstone per shard: the range covers hashed
		// keys on every shard, and each tombstone is O(1) regardless of
		// how many keys it deletes — a tenant drop costs M tombstones.
		for i := range c.s.shards {
			c.batch(i).DeleteRange(req.Key, req.Val)
			c.accumBytes += len(req.Key) + len(req.Val)
		}
	case OpApplyBatch:
		for _, op := range req.Ops {
			switch op.Kind {
			case BatchSet:
				c.batch(c.s.ring.shard(op.Key)).Set(op.Key, op.Val)
			case BatchDelete:
				c.batch(c.s.ring.shard(op.Key)).Delete(op.Key)
			case BatchDeleteRange:
				for i := range c.s.shards {
					c.batch(i).DeleteRange(op.Key, op.Val)
				}
			}
			c.accumBytes += len(op.Key) + len(op.Val)
		}
	}
	c.pending++
}

func (c *conn) batch(shard int) *pebblesdb.Batch {
	if c.batches[shard] == nil {
		c.batches[shard] = c.s.shards[shard].NewBatch()
	}
	return c.batches[shard]
}

// flushWrites applies the accumulated per-shard batches — concurrently
// when more than one shard is involved, so one connection's flush spans
// shards in parallel and each shard's Apply joins whatever group commit
// is forming there — then answers every covered request in order.
func (c *conn) flushWrites() error {
	if c.pending == 0 {
		return nil
	}
	wo := pebblesdb.NoSync
	if c.sync {
		wo = pebblesdb.Sync
	}
	slow := c.s.opts.SlowOpThreshold
	var t0 time.Time
	if slow > 0 {
		t0 = time.Now()
	}
	var firstErr error
	var active []int
	for i, b := range c.batches {
		if b != nil && b.Count() > 0 {
			active = append(active, i)
		}
	}
	if len(active) == 1 {
		firstErr = c.s.shards[active[0]].Apply(c.batches[active[0]], wo)
	} else if len(active) > 1 {
		errs := make([]error, len(active))
		var wg sync.WaitGroup
		for n, i := range active {
			wg.Add(1)
			go func(n, i int) {
				defer wg.Done()
				errs[n] = c.s.shards[i].Apply(c.batches[i], wo)
			}(n, i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	for _, i := range active {
		c.batches[i].Reset()
	}
	if slow > 0 && c.s.opts.Logf != nil {
		if d := time.Since(t0); d >= slow {
			c.s.opts.Logf("server: slow write flush: total=%s requests=%d shards=%d sync=%t",
				d, c.pending, len(active), c.sync)
		}
	}
	// One response per accumulated wire request, in arrival order. A
	// failed apply fails every request in the flushed group: they shared
	// its batches, and per-request attribution would claim a precision
	// the engine does not offer.
	status, body := StatusOK, []byte(nil)
	if firstErr != nil {
		body = []byte(firstErr.Error())
		if errors.Is(firstErr, pebblesdb.ErrReadOnly) {
			status = StatusReadOnly
		} else {
			status = StatusErr
		}
	}
	for n := 0; n < c.pending; n++ {
		c.writeResponse(status, body)
	}
	c.pending = 0
	c.accumBytes = 0
	c.sync = false
	if status == StatusReadOnly {
		// A read-only shard is a degraded-but-serving condition: writes are
		// rejected, reads still work. Keep the connection — the client saw
		// the distinct status and can fall back to reads or back off,
		// without paying a reconnect against a server that would refuse the
		// same writes again.
		return nil
	}
	// Any other failed apply is a store-level condition (background error
	// or a closing shard), not a per-request one: the requests were
	// answered, and the connection drops so the client re-establishes
	// against a healthy server.
	return firstErr
}

func (c *conn) handleGet(key []byte) {
	shard := c.s.ring.shard(key)
	v, ok, err := c.s.shards[shard].GetTo(key, c.getBuf[:0], nil)
	switch {
	case err != nil:
		c.writeResponse(StatusErr, []byte(err.Error()))
	case !ok:
		c.writeResponse(StatusNotFound, nil)
	default:
		c.getBuf = v[:0]
		c.writeResponse(StatusOK, v)
	}
}

func (c *conn) handleScan(req *Request) {
	limit := int(req.Limit)
	if limit <= 0 {
		limit = c.s.opts.DefaultScanLimit
	}
	if limit > c.s.opts.MaxScanLimit {
		limit = c.s.opts.MaxScanLimit
	}
	sc := &c.scan
	if len(sc.runs) != len(c.s.shards) {
		sc.runs = make([][]kvRef, len(c.s.shards))
		sc.heads = make([]int, len(c.s.shards))
	}
	sc.arena = sc.arena[:0]
	var lower, upper []byte
	if len(req.Key) > 0 {
		lower = req.Key
	}
	if len(req.Val) > 0 {
		upper = req.Val
	}
	for i, db := range c.s.shards {
		run := sc.runs[i][:0]
		it, err := db.NewIter(&pebblesdb.IterOptions{LowerBound: lower, UpperBound: upper})
		if err != nil {
			c.writeResponse(StatusErr, []byte(err.Error()))
			return
		}
		for it.First(); it.Valid() && len(run) < limit; it.Next() {
			k, v := it.Key(), it.Value()
			koff := uint32(len(sc.arena))
			sc.arena = append(sc.arena, k...)
			voff := uint32(len(sc.arena))
			sc.arena = append(sc.arena, v...)
			run = append(run, kvRef{koff, uint32(len(k)), voff, uint32(len(v))})
		}
		sc.runs[i] = run
		if err := it.Close(); err != nil {
			c.writeResponse(StatusErr, []byte(err.Error()))
			return
		}
	}
	// Merge the per-shard ascending runs into the response in one pass.
	// Shard counts are small, so a linear scan over the heads beats heap
	// bookkeeping.
	total := 0
	for _, r := range sc.runs {
		total += len(r)
	}
	if total > limit {
		total = limit
	}
	body := c.resp[:0]
	body = binary.AppendUvarint(body, uint64(total))
	for i := range sc.heads {
		sc.heads[i] = 0
	}
	for n := 0; n < total; n++ {
		best := -1
		for i, r := range sc.runs {
			if sc.heads[i] >= len(r) {
				continue
			}
			if best < 0 || bytes.Compare(sc.key(r[sc.heads[i]]), sc.key(sc.runs[best][sc.heads[best]])) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		ref := sc.runs[best][sc.heads[best]]
		sc.heads[best]++
		body = appendBytes(body, sc.key(ref))
		body = appendBytes(body, sc.val(ref))
	}
	c.resp = body[:0]
	c.writeResponse(StatusOK, body)
}

func (c *conn) handleStats() {
	data, err := json.Marshal(c.s.Stats())
	if err != nil {
		c.writeResponse(StatusErr, []byte(err.Error()))
		return
	}
	c.writeResponse(StatusOK, data)
}

// writeResponse appends one framed response to the buffered writer. Write
// errors surface at the next bw.Flush; the read loop exits then.
func (c *conn) writeResponse(st Status, body []byte) {
	var hdr [5]byte
	n := uint32(1 + len(body))
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	hdr[4] = byte(st)
	c.bw.Write(hdr[:])
	if len(body) > 0 {
		c.bw.Write(body)
	}
}

// String renders an opcode for logs.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "Ping"
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpDelete:
		return "Delete"
	case OpDeleteRange:
		return "DeleteRange"
	case OpScan:
		return "Scan"
	case OpApplyBatch:
		return "ApplyBatch"
	case OpStats:
		return "Stats"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}
