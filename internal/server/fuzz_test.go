package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"pebblesdb"
	"pebblesdb/internal/vfs"
)

// fuzzServer lazily builds one shared 2-shard in-memory server for the
// whole fuzz run; rebuilding engines per input would drown the fuzzer in
// setup cost.
var fuzzServer struct {
	once sync.Once
	srv  *Server
}

func getFuzzServer(tb testing.TB) *Server {
	fuzzServer.once.Do(func() {
		shards := make([]*pebblesdb.DB, 2)
		for i := range shards {
			o := pebblesdb.PresetPebblesDB.Options()
			o.MemtableSize = 256 << 10
			o.WithFS(vfs.NewMem())
			db, err := pebblesdb.Open(fmt.Sprintf("fuzz-shard-%d", i), o)
			if err != nil {
				tb.Fatalf("open fuzz shard: %v", err)
			}
			shards[i] = db
		}
		fuzzServer.srv = New(shards, &Options{AccumBytes: 4 << 10})
	})
	return fuzzServer.srv
}

// FuzzServerFrame drives raw bytes through a real server connection: the
// server must never panic, hang, or desynchronize — every input ends with
// the handler returning cleanly. Well-formed prefixes are served normally;
// the first malformed frame gets an error response and the connection
// drops. The same bytes also go through ParseRequest directly, exercising
// the decoder on payloads the framing layer would have rejected.
func FuzzServerFrame(f *testing.F) {
	// Seed with one well-formed frame per opcode, a pipelined run, and the
	// classic malformations; the generator mutates from these.
	seed := func(req *Request) []byte { return AppendRequest(nil, req) }
	f.Add(seed(&Request{Op: OpPing}))
	f.Add(seed(&Request{Op: OpGet, Key: []byte("k")}))
	f.Add(seed(&Request{Op: OpPut, Key: []byte("key"), Val: []byte("val")}))
	f.Add(seed(&Request{Op: OpPut, Flags: FlagSync, Key: []byte("k"), Val: []byte("v")}))
	f.Add(seed(&Request{Op: OpDelete, Key: []byte("key")}))
	f.Add(seed(&Request{Op: OpDeleteRange, Key: []byte("a"), Val: []byte("z")}))
	f.Add(seed(&Request{Op: OpScan, Key: []byte("a"), Val: []byte("z"), Limit: 10}))
	f.Add(seed(&Request{Op: OpStats}))
	f.Add(seed(&Request{Op: OpApplyBatch, Ops: []BatchOp{
		{Kind: BatchSet, Key: []byte("k"), Val: []byte("v")},
		{Kind: BatchDelete, Key: []byte("d")},
		{Kind: BatchDeleteRange, Key: []byte("a"), Val: []byte("z")},
	}}))
	// A pipelined run: several frames in one stream.
	var pipe []byte
	pipe = AppendRequest(pipe, &Request{Op: OpPut, Key: []byte("p1"), Val: []byte("v1")})
	pipe = AppendRequest(pipe, &Request{Op: OpPut, Key: []byte("p2"), Val: []byte("v2")})
	pipe = AppendRequest(pipe, &Request{Op: OpGet, Key: []byte("p1")})
	f.Add(pipe)
	// Malformations: oversized length, truncations, unknown ops, count lies.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0xEE, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, byte(OpGet), 0x00, 0x20, 'a', 'b'})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, byte(OpApplyBatch), 0x00, 0xFF, 0xFF, 0x03})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder alone, on the raw bytes as a payload.
		if req, err := ParseRequest(data); err == nil {
			// A successfully parsed request must re-encode to a payload
			// that parses identically (canonical round trip).
			enc := AppendRequest(nil, &req)
			if _, err := ParseRequest(enc[4:]); err != nil {
				t.Fatalf("re-encoded request failed to parse: %v", err)
			}
		}
		ParseResponse(data)
		ParsePairs(data)

		// The full connection path. net.Pipe is synchronous, so a drainer
		// goroutine keeps the server's writes from blocking forever. A
		// hangup mid-frame is itself a valid case the read loop must
		// handle, so the Write needs no synchronization with the server.
		srv := getFuzzServer(t)
		cl, sv := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(sv)
		}()
		var drain sync.WaitGroup
		drain.Add(1)
		go func() {
			defer drain.Done()
			io.Copy(io.Discard, cl)
		}()
		cl.Write(data)
		cl.Close()
		<-done
		drain.Wait()
	})
}

// TestFuzzSeedsAgainstServer replays the checked-in seed corpus through a
// live connection even when the run has no fuzz budget (plain `go test`),
// so the corpus stays load-bearing in CI's unit pass.
func TestFuzzSeedsAgainstServer(t *testing.T) {
	srv, addr, _ := startServer(t, 2, nil)
	_ = srv
	seeds := [][]byte{
		AppendRequest(nil, &Request{Op: OpPing}),
		AppendRequest(nil, &Request{Op: OpPut, Key: []byte("k"), Val: []byte("v")}),
		{0xFF, 0xFF, 0xFF, 0xFF},
		{0x00, 0x00, 0x00, 0x02, 0xEE, 0x00},
		bytes.Repeat([]byte{0x00}, 4),
	}
	for i, raw := range seeds {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		nc.Write(raw)
		nc.Close()
		_ = i
	}
	// The server is still alive afterwards.
	c := dialT(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("server died on seed replay: %v", err)
	}
}
