// Package server is the network face of the store: a sharded, multi-tenant
// key-value service speaking a length-prefixed binary protocol over TCP.
// One process runs M shard engines; keys route to shards by consistent
// hashing, writes accumulate per connection into per-shard batches that
// feed each shard's group-commit pipeline, and a tenant's whole keyspace
// drops with one routed DeleteRange per shard. cmd/dbserver is the daemon,
// cmd/dbloadgen the matching load generator, and Client the Go client both
// the tests and the load generator use.
//
// Wire format: every frame is a 4-byte big-endian payload length followed
// by the payload. Request payloads are an opcode byte, a flags byte, and
// an opcode-specific body; response payloads are a status byte and a
// status-specific body. Byte strings are uvarint-length-prefixed. Requests
// on one connection are processed in order and answered in order, so
// clients may pipeline: the k-th response always answers the k-th request.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameBytes bounds a single frame's payload. Frames announcing more
// are rejected before any allocation, so a malformed or hostile length
// prefix cannot balloon server memory.
const MaxFrameBytes = 32 << 20

// Op is a request opcode.
type Op byte

const (
	// OpPing answers OK with an empty body; liveness checks.
	OpPing Op = 1
	// OpGet reads one key: body = key.
	OpGet Op = 2
	// OpPut writes one key: body = key, value.
	OpPut Op = 3
	// OpDelete deletes one key: body = key.
	OpDelete Op = 4
	// OpDeleteRange deletes every key in [start, end): body = start, end.
	// The server broadcasts it to every shard — hash routing scatters a
	// key range across all of them — so one frame drops a whole tenant.
	OpDeleteRange Op = 5
	// OpScan merges a bounded ascending scan across shards: body = start,
	// end (empty = unbounded), uvarint limit.
	OpScan Op = 6
	// OpApplyBatch applies a multi-op batch atomically per shard: body =
	// uvarint count, then count × (kind byte, key, value). Atomicity is
	// per shard, not global: ops landing on one shard commit together.
	OpApplyBatch Op = 7
	// OpStats answers with the JSON-encoded aggregate Stats snapshot.
	OpStats Op = 8
)

// FlagSync on a write request makes the commit durable (fsynced) before
// the response; concurrent sync writes share fsyncs through each shard's
// group-commit pipeline.
const FlagSync byte = 1 << 0

// Status is a response code.
type Status byte

const (
	// StatusOK: the operation succeeded; body is op-specific.
	StatusOK Status = 0
	// StatusNotFound: Get on an absent or deleted key; empty body.
	StatusNotFound Status = 1
	// StatusErr: the operation failed; body is the error message.
	StatusErr Status = 2
	// StatusReadOnly: a write was rejected because the target shard store
	// is degraded to read-only by a background IO error; body is the error
	// message. Reads keep working on the same connection — unlike
	// StatusErr on a write, the server does not drop the connection.
	StatusReadOnly Status = 3
)

// BatchOp is one operation inside an OpApplyBatch body.
type BatchOp struct {
	// Kind is BatchSet, BatchDelete or BatchDeleteRange.
	Kind byte
	// Key is the key (Set/Delete) or range start (DeleteRange).
	Key []byte
	// Val is the value (Set) or range end (DeleteRange); empty for Delete.
	Val []byte
}

// BatchOp kinds.
const (
	BatchSet         byte = 0
	BatchDelete      byte = 1
	BatchDeleteRange byte = 2
)

// Request is a decoded request payload.
type Request struct {
	Op    Op
	Flags byte
	// Key is the key (Get/Put/Delete) or range start (DeleteRange/Scan).
	Key []byte
	// Val is the value (Put) or range end (DeleteRange/Scan).
	Val []byte
	// Limit caps Scan results (0 = server default).
	Limit uint32
	// Ops is the ApplyBatch op list.
	Ops []BatchOp
}

// KV is one scan result pair.
type KV struct {
	Key []byte
	Val []byte
}

// Response is a decoded response payload.
type Response struct {
	Status Status
	// Val is the Get value, the Stats JSON, or the StatusErr message.
	Val []byte
	// Pairs are the Scan results.
	Pairs []KV
}

// ErrReadOnly is the error Response.Err returns for StatusReadOnly: the
// shard store is degraded to read-only. Match with errors.Is.
var ErrReadOnly = errors.New("server: store is read-only")

// Err converts a StatusErr or StatusReadOnly response into an error (nil
// otherwise).
func (r *Response) Err() error {
	switch r.Status {
	case StatusErr:
		return errors.New(string(r.Val))
	case StatusReadOnly:
		if len(r.Val) > 0 {
			return fmt.Errorf("%w: %s", ErrReadOnly, r.Val)
		}
		return ErrReadOnly
	}
	return nil
}

// ErrFrameTooLarge rejects frames whose announced payload exceeds
// MaxFrameBytes.
var ErrFrameTooLarge = errors.New("server: frame exceeds maximum size")

// errTruncated reports a payload shorter than its own encoding claims.
var errTruncated = errors.New("server: truncated frame body")

// ReadFrame reads one length-prefixed frame payload from r into buf
// (growing it as needed) and returns the payload. io.EOF before the first
// length byte is a clean end of stream; a partial frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// AppendFrame appends a length-prefixed frame carrying payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendBytes appends a uvarint-length-prefixed byte string.
func appendBytes(dst, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// readBytes consumes one uvarint-length-prefixed byte string. The result
// aliases p.
func readBytes(p []byte) (val, rest []byte, err error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return nil, nil, errTruncated
	}
	return p[sz : sz+int(n)], p[sz+int(n):], nil
}

// AppendRequest appends req encoded as a complete frame (length prefix
// included) to dst.
func AppendRequest(dst []byte, req *Request) []byte {
	payload := make([]byte, 0, 16+len(req.Key)+len(req.Val))
	payload = append(payload, byte(req.Op), req.Flags)
	switch req.Op {
	case OpPing, OpStats:
	case OpGet, OpDelete:
		payload = appendBytes(payload, req.Key)
	case OpPut, OpDeleteRange:
		payload = appendBytes(payload, req.Key)
		payload = appendBytes(payload, req.Val)
	case OpScan:
		payload = appendBytes(payload, req.Key)
		payload = appendBytes(payload, req.Val)
		payload = binary.AppendUvarint(payload, uint64(req.Limit))
	case OpApplyBatch:
		payload = binary.AppendUvarint(payload, uint64(len(req.Ops)))
		for _, op := range req.Ops {
			payload = append(payload, op.Kind)
			payload = appendBytes(payload, op.Key)
			if op.Kind != BatchDelete {
				payload = appendBytes(payload, op.Val)
			}
		}
	}
	return AppendFrame(dst, payload)
}

// ParseRequest decodes a request payload (frame length prefix already
// stripped). The returned request's byte slices alias payload: the caller
// owns their lifetime until the next frame overwrites the buffer.
func ParseRequest(payload []byte) (Request, error) {
	var req Request
	if len(payload) < 2 {
		return req, errTruncated
	}
	req.Op, req.Flags = Op(payload[0]), payload[1]
	body := payload[2:]
	var err error
	switch req.Op {
	case OpPing, OpStats:
	case OpGet, OpDelete:
		if req.Key, body, err = readBytes(body); err != nil {
			return req, err
		}
	case OpPut, OpDeleteRange, OpScan:
		if req.Key, body, err = readBytes(body); err != nil {
			return req, err
		}
		if req.Val, body, err = readBytes(body); err != nil {
			return req, err
		}
		if req.Op == OpScan {
			n, sz := binary.Uvarint(body)
			if sz <= 0 {
				return req, errTruncated
			}
			body = body[sz:]
			if n > uint64(^uint32(0)) {
				return req, errTruncated
			}
			req.Limit = uint32(n)
		}
	case OpApplyBatch:
		n, sz := binary.Uvarint(body)
		if sz <= 0 {
			return req, errTruncated
		}
		body = body[sz:]
		// Each op costs at least 2 bytes on the wire; reject counts the
		// remaining payload cannot possibly hold before allocating.
		if n > uint64(len(body)/2+1) {
			return req, errTruncated
		}
		req.Ops = make([]BatchOp, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(body) < 1 {
				return req, errTruncated
			}
			op := BatchOp{Kind: body[0]}
			body = body[1:]
			if op.Kind > BatchDeleteRange {
				return req, fmt.Errorf("server: unknown batch op kind %d", op.Kind)
			}
			if op.Key, body, err = readBytes(body); err != nil {
				return req, err
			}
			if op.Kind != BatchDelete {
				if op.Val, body, err = readBytes(body); err != nil {
					return req, err
				}
			}
			req.Ops = append(req.Ops, op)
		}
	default:
		return req, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	if len(body) != 0 {
		return req, fmt.Errorf("server: %d trailing bytes after request body", len(body))
	}
	return req, nil
}

// ParseResponse decodes a response payload (frame length prefix already
// stripped). Byte slices alias payload.
func ParseResponse(payload []byte) (Response, error) {
	var resp Response
	if len(payload) < 1 {
		return resp, errTruncated
	}
	resp.Status = Status(payload[0])
	body := payload[1:]
	switch resp.Status {
	case StatusOK, StatusErr, StatusReadOnly:
	case StatusNotFound:
		if len(body) != 0 {
			return resp, errTruncated
		}
		return resp, nil
	default:
		return resp, fmt.Errorf("server: unknown status %d", resp.Status)
	}
	// A scan response is a uvarint pair count followed by pairs; every
	// other OK/Err body is raw bytes. The two are distinguished by the
	// caller: Recv surfaces Val, Scan decodes pairs via ParsePairs.
	resp.Val = body
	return resp, nil
}

// ParsePairs decodes a Scan response body into pairs aliasing body.
func ParsePairs(body []byte) ([]KV, error) {
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, errTruncated
	}
	body = body[sz:]
	if n > uint64(len(body)/2+1) {
		return nil, errTruncated
	}
	pairs := make([]KV, 0, n)
	for i := uint64(0); i < n; i++ {
		var kv KV
		var err error
		if kv.Key, body, err = readBytes(body); err != nil {
			return nil, err
		}
		if kv.Val, body, err = readBytes(body); err != nil {
			return nil, err
		}
		pairs = append(pairs, kv)
	}
	if len(body) != 0 {
		return nil, errTruncated
	}
	return pairs, nil
}
