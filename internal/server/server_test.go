package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pebblesdb"
	"pebblesdb/internal/vfs"
)

// testShards opens n small in-memory shard stores.
func testShards(t testing.TB, n int) []*pebblesdb.DB {
	t.Helper()
	shards := make([]*pebblesdb.DB, n)
	for i := range shards {
		o := pebblesdb.PresetPebblesDB.Options()
		o.MemtableSize = 256 << 10
		o.LevelBaseBytes = 1 << 20
		o.TargetFileSize = 128 << 10
		o.TopLevelBits = 10
		o.BitDecrement = 1
		o.WithFS(vfs.NewMem())
		db, err := pebblesdb.Open(fmt.Sprintf("shard-%d", i), o)
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		shards[i] = db
	}
	return shards
}

// startServer runs a server over n fresh shards on a loopback listener and
// returns it with its address; cleanup closes server then shards.
func startServer(t testing.TB, n int, opts *Options) (*Server, string, []*pebblesdb.DB) {
	t.Helper()
	shards := testShards(t, n)
	srv := New(shards, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		for _, db := range shards {
			db.Close()
		}
	})
	return srv, ln.Addr().String(), shards
}

func dialT(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	_, addr, _ := startServer(t, 4, nil)
	c := dialT(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, found, err := c.Get([]byte("missing")); err != nil || found {
		t.Fatalf("get missing: found=%v err=%v", found, err)
	}
	if err := c.Put([]byte("alpha"), []byte("1"), 0); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := c.Put([]byte("beta"), []byte("2"), FlagSync); err != nil {
		t.Fatalf("put sync: %v", err)
	}
	v, found, err := c.Get([]byte("alpha"))
	if err != nil || !found || string(v) != "1" {
		t.Fatalf("get alpha: %q found=%v err=%v", v, found, err)
	}
	if err := c.Delete([]byte("alpha"), 0); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, found, _ := c.Get([]byte("alpha")); found {
		t.Fatal("alpha survived delete")
	}
	if err := c.ApplyBatch([]BatchOp{
		{Kind: BatchSet, Key: []byte("gamma"), Val: []byte("3")},
		{Kind: BatchSet, Key: []byte("delta"), Val: []byte("4")},
		{Kind: BatchDelete, Key: []byte("beta")},
	}, 0); err != nil {
		t.Fatalf("applybatch: %v", err)
	}
	if _, found, _ := c.Get([]byte("beta")); found {
		t.Fatal("beta survived batch delete")
	}
	pairs, err := c.Scan(nil, nil, 100)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(pairs) != 2 || string(pairs[0].Key) != "delta" || string(pairs[1].Key) != "gamma" {
		t.Fatalf("scan got %d pairs, want delta,gamma: %v", len(pairs), pairs)
	}

	raw, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if st.Shards != 4 {
		t.Fatalf("stats shards = %d, want 4", st.Shards)
	}
	if st.Aggregate.SyncCommits == 0 {
		t.Fatal("FlagSync put did not register a sync commit")
	}
	if st.Requests == 0 || st.TotalConns == 0 {
		t.Fatalf("stats accounting empty: %+v", st)
	}
}

// TestTenantDeleteRangeAcrossShards is the acceptance check: a
// tenant-prefix DeleteRange over the wire must remove the tenant's keys on
// every shard — hash routing scatters each tenant across all of them, and
// the server broadcasts one range tombstone per shard.
// TestRepeatedScansReuseScratch drives many Scan RPCs of varying shapes
// down one connection: the per-connection scan scratch (runs, arena, merge
// cursors) is reused across requests, and a bug in its reset logic would
// leak pairs from one response into the next.
func TestRepeatedScansReuseScratch(t *testing.T) {
	_, addr, _ := startServer(t, 3, nil)
	c := dialT(t, addr)

	const n = 200
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%04d", i)
		if err := c.Put([]byte(key), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatalf("put: %v", err)
		}
		want = append(want, key)
	}
	for round := 0; round < 5; round++ {
		// Full scan: every key, in order.
		pairs, err := c.Scan(nil, nil, n)
		if err != nil {
			t.Fatalf("round %d scan: %v", round, err)
		}
		if len(pairs) != n {
			t.Fatalf("round %d: got %d pairs, want %d", round, len(pairs), n)
		}
		for i, kv := range pairs {
			if string(kv.Key) != want[i] {
				t.Fatalf("round %d pair %d: got %q, want %q", round, i, kv.Key, want[i])
			}
		}
		// Bounded scan with a limit smaller than the result set: the next
		// full scan must not see truncated state.
		pairs, err = c.Scan([]byte("key0050"), []byte("key0150"), 30)
		if err != nil {
			t.Fatalf("round %d bounded scan: %v", round, err)
		}
		if len(pairs) != 30 || string(pairs[0].Key) != "key0050" || string(pairs[29].Key) != "key0079" {
			t.Fatalf("round %d bounded scan: got %d pairs [%q..%q]", round, len(pairs), pairs[0].Key, pairs[len(pairs)-1].Key)
		}
		// Empty scan.
		pairs, err = c.Scan([]byte("zzz"), nil, 10)
		if err != nil {
			t.Fatalf("round %d empty scan: %v", round, err)
		}
		if len(pairs) != 0 {
			t.Fatalf("round %d empty scan: got %d pairs, want 0", round, len(pairs))
		}
	}
}

func TestTenantDeleteRangeAcrossShards(t *testing.T) {
	_, addr, shards := startServer(t, 4, nil)
	c := dialT(t, addr)

	const tenants = 3
	const keysPerTenant = 800
	for ten := 0; ten < tenants; ten++ {
		for i := 0; i < keysPerTenant; i++ {
			key := []byte(fmt.Sprintf("tenant%d/key%06d", ten, i))
			if err := c.Put(key, []byte(fmt.Sprintf("v%d-%d", ten, i)), 0); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	// Every shard must hold keys from the victim tenant before the drop,
	// or the test proves nothing about cross-shard routing.
	for i, db := range shards {
		if n := countPrefix(t, db, "tenant1/"); n == 0 {
			t.Fatalf("shard %d holds no tenant1 keys before the drop; routing is broken", i)
		}
	}

	if err := c.DeleteRange([]byte("tenant1/"), []byte("tenant1/\xff"), 0); err != nil {
		t.Fatalf("tenant drop: %v", err)
	}

	// Over the wire: the tenant is gone, the neighbors are intact.
	pairs, err := c.Scan([]byte("tenant1/"), []byte("tenant1/\xff"), 10000)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(pairs) != 0 {
		t.Fatalf("%d tenant1 keys survived the drop over the wire", len(pairs))
	}
	// On every shard directly: no tenant1 keys anywhere.
	for i, db := range shards {
		if n := countPrefix(t, db, "tenant1/"); n != 0 {
			t.Fatalf("shard %d still holds %d tenant1 keys", i, n)
		}
	}
	// The survivors are complete.
	for _, ten := range []int{0, 2} {
		pairs, err := c.Scan([]byte(fmt.Sprintf("tenant%d/", ten)), []byte(fmt.Sprintf("tenant%d/\xff", ten)), 10000)
		if err != nil {
			t.Fatalf("scan tenant%d: %v", ten, err)
		}
		if len(pairs) != keysPerTenant {
			t.Fatalf("tenant%d has %d keys after neighbor drop, want %d", ten, len(pairs), keysPerTenant)
		}
	}
}

func countPrefix(t *testing.T, db *pebblesdb.DB, prefix string) int {
	t.Helper()
	it, err := db.NewIter(&pebblesdb.IterOptions{
		LowerBound: []byte(prefix),
		UpperBound: []byte(prefix + "\xff"),
	})
	if err != nil {
		t.Fatalf("iter: %v", err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	return n
}

// TestPipelinedWrites streams a window of requests without waiting and
// checks every response arrives, in order, with the data intact — the
// accumulation path the per-connection batcher exists for.
func TestPipelinedWrites(t *testing.T) {
	srv, addr, _ := startServer(t, 4, nil)
	c := dialT(t, addr)

	const n = 4000
	for i := 0; i < n; i++ {
		if err := c.SendPut([]byte(fmt.Sprintf("pipe%06d", i)), []byte(fmt.Sprintf("v%06d", i)), 0); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("put %d: status %d (%s)", i, resp.Status, resp.Val)
		}
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		v, found, err := c.Get([]byte(fmt.Sprintf("pipe%06d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("v%06d", i) {
			t.Fatalf("get pipe%06d: %q found=%v err=%v", i, v, found, err)
		}
	}
	// The pipelined stream must have been accumulated: far fewer engine
	// commits than wire writes.
	st := srv.Stats()
	commits := st.Aggregate.CommitGroups
	if commits == 0 || commits > n/2 {
		t.Fatalf("accumulation missing: %d commit groups for %d pipelined puts", commits, n)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, _ := startServer(t, 4, nil)
	const clients = 16
	const perClient = 500
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("c%02d-%05d", g, i))
				if err := c.Put(key, key, 0); err != nil {
					errCh <- fmt.Errorf("put: %w", err)
					return
				}
			}
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("c%02d-%05d", g, i))
				v, found, err := c.Get(key)
				if err != nil || !found || !bytes.Equal(v, key) {
					errCh <- fmt.Errorf("get %s: %q found=%v err=%v", key, v, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMalformedFrames throws protocol garbage at the server: each variant
// must produce either an error response or a clean connection close —
// never a hang or a panic — and the server must keep serving afterwards.
func TestMalformedFrames(t *testing.T) {
	_, addr, _ := startServer(t, 2, nil)

	cases := map[string][]byte{
		"unknown-opcode":    frame([]byte{0xEE, 0x00}),
		"empty-payload":     frame(nil),
		"opcode-only":       frame([]byte{byte(OpGet)}),
		"truncated-key":     frame([]byte{byte(OpGet), 0, 0x20, 'a', 'b'}),
		"trailing-junk":     frame(append([]byte{byte(OpPing), 0}, "junk"...)),
		"huge-length":       {0xFF, 0xFF, 0xFF, 0xFF},
		"partial-frame":     {0x00, 0x00, 0x01, 0x00, 'x'},
		"batch-count-lie":   frame([]byte{byte(OpApplyBatch), 0, 0xFF, 0xFF, 0x03}),
		"batch-kind-bogus":  frame([]byte{byte(OpApplyBatch), 0, 0x01, 0x77, 0x01, 'k'}),
		"scan-missing-body": frame([]byte{byte(OpScan), 0, 0x01, 'a'}),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer nc.Close()
			nc.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := nc.Write(raw); err != nil {
				t.Fatalf("write: %v", err)
			}
			// Either an error response arrives or the server closes the
			// connection; both end the read loop below promptly.
			buf := make([]byte, 4096)
			for {
				if _, err := nc.Read(buf); err != nil {
					break
				}
			}
		})
	}

	// The server survived all of it.
	c := dialT(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("server did not survive malformed frames: %v", err)
	}
}

func frame(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// TestServerCloseDrains closes the server under load, then the shards:
// in-flight operations must fail cleanly (transport errors), and the
// shard DB.Close must drain without panic or deadlock.
func TestServerCloseDrains(t *testing.T) {
	shards := testShards(t, 4)
	srv := New(shards, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	var wg sync.WaitGroup
	stopPut := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stopPut:
					return
				default:
				}
				key := []byte(fmt.Sprintf("d%02d-%06d", g, i))
				if err := c.Put(key, key, 0); err != nil {
					return // transport error once the drain begins
				}
				if _, _, err := c.Get(key); err != nil {
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	close(stopPut)
	wg.Wait()
	for i, db := range shards {
		if err := db.Close(); err != nil {
			t.Fatalf("shard %d close: %v", i, err)
		}
	}
}

// TestRingDistribution checks the consistent-hash ring spreads keys over
// every shard without gross imbalance.
func TestRingDistribution(t *testing.T) {
	const shardCount = 4
	r := newRing(shardCount)
	counts := make([]int, shardCount)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.shard([]byte(fmt.Sprintf("user%08d", i)))]++
	}
	mean := n / shardCount
	for s, c := range counts {
		if c < mean/3 || c > mean*3 {
			t.Fatalf("shard %d got %d of %d keys (mean %d): ring is unbalanced %v", s, c, n, mean, counts)
		}
	}
	// Stability: the same key always routes to the same shard.
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("user%08d", i))
		if r.shard(key) != newRing(shardCount).shard(key) {
			t.Fatal("ring routing is not deterministic")
		}
	}
}

// TestRequestRoundTrip pins the wire encoding: encode → parse is the
// identity for every opcode.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpStats},
		{Op: OpGet, Key: []byte("k")},
		{Op: OpPut, Flags: FlagSync, Key: []byte("k"), Val: []byte("v")},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpDeleteRange, Key: []byte("a"), Val: []byte("z")},
		{Op: OpScan, Key: []byte("a"), Val: []byte("z"), Limit: 77},
		{Op: OpScan, Key: nil, Val: nil, Limit: 0},
		{Op: OpApplyBatch, Ops: []BatchOp{
			{Kind: BatchSet, Key: []byte("k"), Val: []byte("v")},
			{Kind: BatchDelete, Key: []byte("d")},
			{Kind: BatchDeleteRange, Key: []byte("a"), Val: []byte("z")},
		}},
		{Op: OpApplyBatch, Ops: []BatchOp{}},
	}
	for _, req := range reqs {
		t.Run(req.Op.String(), func(t *testing.T) {
			enc := AppendRequest(nil, &req)
			payload, err := ReadFrame(bytes.NewReader(enc), nil)
			if err != nil {
				t.Fatalf("readframe: %v", err)
			}
			got, err := ParseRequest(payload)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got.Op != req.Op || got.Flags != req.Flags || got.Limit != req.Limit ||
				!bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Val, req.Val) || len(got.Ops) != len(req.Ops) {
				t.Fatalf("round trip mismatch:\n in %+v\nout %+v", req, got)
			}
			for i := range req.Ops {
				if got.Ops[i].Kind != req.Ops[i].Kind ||
					!bytes.Equal(got.Ops[i].Key, req.Ops[i].Key) ||
					!bytes.Equal(got.Ops[i].Val, req.Ops[i].Val) {
					t.Fatalf("batch op %d mismatch: %+v vs %+v", i, req.Ops[i], got.Ops[i])
				}
			}
		})
	}
}

// TestReadOnlyShardWireStatus degrades a shard to read-only behind the
// server and asserts the wire contract: writes come back StatusReadOnly —
// surfaced by the client as a wrapped ErrReadOnly — while the connection
// stays up and keeps serving reads and stats; Stats counts the degraded
// shard; and after the operator clears the fault and resumes the shard,
// the same connection accepts writes again.
func TestReadOnlyShardWireStatus(t *testing.T) {
	efs := vfs.NewErr(vfs.NewMem())
	o := pebblesdb.PresetPebblesDB.Options()
	o.WithFS(efs)
	db, err := pebblesdb.Open("shard-ro", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New([]*pebblesdb.DB{db}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c := dialT(t, ln.Addr().String())
	if err := c.Put([]byte("base"), []byte("v"), FlagSync); err != nil {
		t.Fatalf("baseline put: %v", err)
	}

	// The disk fills. The write that trips the fault surfaces the raw
	// store error (StatusErr, connection dropped); every write after it
	// sees the shard already degraded and gets the distinct status.
	efs.SetFull(true)
	if err := c.Put([]byte("w1"), []byte("v"), FlagSync); err == nil {
		t.Fatal("put succeeded on a full disk")
	}
	if !db.ReadOnly() {
		t.Fatal("shard not read-only after failed write")
	}
	c2 := dialT(t, ln.Addr().String())
	err = c2.Put([]byte("w2"), []byte("v"), 0)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only shard: err=%v, want ErrReadOnly", err)
	}
	// The connection survived the rejected write: reads and stats still
	// answer on it.
	if v, found, err := c2.Get([]byte("base")); err != nil || !found || string(v) != "v" {
		t.Fatalf("read on read-only shard: %q found=%v err=%v", v, found, err)
	}
	raw, err := c2.Stats()
	if err != nil {
		t.Fatalf("stats on read-only shard: %v", err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ReadOnlyShards != 1 {
		t.Fatalf("stats read_only_shards = %d, want 1", st.ReadOnlyShards)
	}
	if !st.Aggregate.ReadOnly {
		t.Fatal("aggregate metrics lost the read-only flag")
	}

	// Space is freed and the shard resumed: the same connection writes
	// again.
	efs.Clear()
	if err := db.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := c2.Put([]byte("w3"), []byte("v"), FlagSync); err != nil {
		t.Fatalf("put after resume: %v", err)
	}
	if _, found, err := c2.Get([]byte("w3")); err != nil || !found {
		t.Fatalf("read-back after resume: found=%v err=%v", found, err)
	}
}

// TestClientReconnect drops the client's connection out from under it and
// checks that idempotent reads transparently redial while writes stay
// fail-fast (a lost write response must surface, never silently retry).
func TestClientReconnect(t *testing.T) {
	_, addr, _ := startServer(t, 2, nil)
	c := dialT(t, addr)
	c.MaxRetries = 3
	c.RetryBaseDelay = time.Millisecond

	if err := c.Put([]byte("k"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}

	c.nc.Close() // the connection dies mid-session
	v, found, err := c.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("get after reconnect: %q found=%v err=%v", v, found, err)
	}

	c.nc.Close()
	if err := c.Put([]byte("k2"), []byte("v"), 0); err == nil {
		t.Fatal("write silently retried across a dropped connection")
	}
	// The sticky transport error from the failed write clears on the next
	// idempotent call's reconnect.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after failed write: %v", err)
	}
}

// TestShutdownDrains checks the graceful path: Shutdown lets an idle
// connection unwind cleanly within the timeout, refuses new connections,
// and leaves the shards untouched for the caller to close.
func TestShutdownDrains(t *testing.T) {
	shards := testShards(t, 2)
	defer func() {
		for _, db := range shards {
			db.Close()
		}
	}()
	srv := New(shards, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	c := dialT(t, ln.Addr().String())
	if err := c.Put([]byte("k"), []byte("v"), FlagSync); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("connection survived shutdown")
	}
	if c2, err := Dial(ln.Addr().String()); err == nil {
		defer c2.Close()
		if err := c2.Ping(); err == nil {
			t.Fatal("new connection accepted after shutdown")
		}
	}
	// Shards remain usable by their owner after the server is gone.
	if _, found, err := shards[0].Get([]byte("k"), nil); err != nil && found {
		t.Fatalf("shard unusable after shutdown: %v", err)
	}
}
