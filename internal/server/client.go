package server

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client speaks the wire protocol over one connection. It supports two
// styles:
//
//   - Synchronous convenience calls (Get, Put, Scan, ...) that send one
//     request and wait for its response — simple, one round trip each.
//   - Pipelining: queue requests with the Send* methods, then collect
//     responses with Recv, which returns them in send order. A window of
//     in-flight requests per connection is how the load generator reaches
//     wire throughput, and how the server's write accumulation sees runs
//     of writes to batch.
//
// A Client is not safe for concurrent use; use one per goroutine (they are
// cheap — one TCP connection and two buffers).
type Client struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  []byte // request frame build buffer
	rcv  []byte // response frame read buffer
	err  error  // first transport error; sticky
	addr string // redial target; empty for NewClient-wrapped connections

	// OpTimeout, when positive, bounds each synchronous convenience call
	// (Get, Put, Scan, ...) with a connection deadline, so a wedged server
	// turns into a timeout error instead of a hung client. Pipelined
	// Send*/Recv traffic is unaffected.
	OpTimeout time.Duration
	// MaxRetries, when positive, lets the idempotent reads (Ping, Get,
	// Scan, Stats) transparently redial and retry after a transport error,
	// with capped exponential backoff between attempts. Writes never
	// retry: a write whose response was lost may or may not have applied,
	// and repeating it would claim certainty the protocol cannot offer.
	// Only Dial-created clients can redial.
	MaxRetries int
	// RetryBaseDelay is the first reconnect backoff (default 50ms); it
	// doubles per attempt, capped at 1s.
	RetryBaseDelay time.Duration
}

// Dial connects to a dbserver. The returned client remembers addr, so
// setting MaxRetries enables reconnect-and-retry for idempotent reads.
func Dial(addr string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := NewClient(nc)
	c.addr = addr
	return c, nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Err returns the sticky transport error, if any.
func (c *Client) Err() error { return c.err }

func (c *Client) send(req *Request) error {
	if c.err != nil {
		return c.err
	}
	c.enc = AppendRequest(c.enc[:0], req)
	if _, err := c.bw.Write(c.enc); err != nil {
		c.err = err
	}
	return c.err
}

// Flush pushes queued requests to the wire.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	if err := c.bw.Flush(); err != nil {
		c.err = err
	}
	return c.err
}

// Recv reads the next response, in send order. The response's byte slices
// alias the client's receive buffer and are valid until the next Recv.
// The error is transport-level; application failures come back as
// resp.Status == StatusErr.
func (c *Client) Recv() (Response, error) {
	if c.err != nil {
		return Response{}, c.err
	}
	payload, err := ReadFrame(c.br, c.rcv)
	if err != nil {
		c.err = err
		return Response{}, err
	}
	c.rcv = payload[:0]
	resp, err := ParseResponse(payload)
	if err != nil {
		c.err = err
		return Response{}, err
	}
	return resp, nil
}

// SendPing / SendGet / SendPut / SendDelete / SendDeleteRange / SendScan /
// SendApplyBatch / SendStats queue one request without flushing; pair each
// with one Recv.

func (c *Client) SendPing() error { return c.send(&Request{Op: OpPing}) }

func (c *Client) SendGet(key []byte) error { return c.send(&Request{Op: OpGet, Key: key}) }

func (c *Client) SendPut(key, val []byte, flags byte) error {
	return c.send(&Request{Op: OpPut, Flags: flags, Key: key, Val: val})
}

func (c *Client) SendDelete(key []byte, flags byte) error {
	return c.send(&Request{Op: OpDelete, Flags: flags, Key: key})
}

func (c *Client) SendDeleteRange(start, end []byte, flags byte) error {
	return c.send(&Request{Op: OpDeleteRange, Flags: flags, Key: start, Val: end})
}

func (c *Client) SendScan(start, end []byte, limit uint32) error {
	return c.send(&Request{Op: OpScan, Key: start, Val: end, Limit: limit})
}

func (c *Client) SendApplyBatch(ops []BatchOp, flags byte) error {
	return c.send(&Request{Op: OpApplyBatch, Flags: flags, Ops: ops})
}

func (c *Client) SendStats() error { return c.send(&Request{Op: OpStats}) }

// roundTrip sends one request and waits for its response (no pipelining).
func (c *Client) roundTrip(req *Request) (Response, error) {
	if c.OpTimeout > 0 && c.err == nil {
		c.nc.SetDeadline(time.Now().Add(c.OpTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := c.send(req); err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// reconnect redials the server, swaps in the fresh connection, and clears
// the sticky transport error.
func (c *Client) reconnect() error {
	nc, err := net.DialTimeout("tcp", c.addr, 10*time.Second)
	if err != nil {
		return err
	}
	c.nc.Close()
	c.nc = nc
	c.br.Reset(nc)
	c.bw.Reset(nc)
	c.err = nil
	return nil
}

// roundTripIdempotent is roundTrip plus reconnect-and-retry for requests
// that are safe to repeat. A request whose transport failed may or may not
// have executed on the server; repeating a read is harmless either way, so
// these calls ride through server restarts and dropped connections.
func (c *Client) roundTripIdempotent(req *Request) (Response, error) {
	resp, err := c.roundTrip(req)
	if err == nil || c.MaxRetries <= 0 || c.addr == "" {
		return resp, err
	}
	delay := c.RetryBaseDelay
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	for attempt := 0; attempt < c.MaxRetries; attempt++ {
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
		if rerr := c.reconnect(); rerr != nil {
			err = rerr
			continue
		}
		if resp, err = c.roundTrip(req); err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTripIdempotent(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Get reads key. The returned value aliases the receive buffer: copy it if
// it must survive the next call.
func (c *Client) Get(key []byte) (val []byte, found bool, err error) {
	resp, err := c.roundTripIdempotent(&Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Val, true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, resp.Err()
	}
}

// Put writes key. flags may carry FlagSync for per-commit durability.
func (c *Client) Put(key, val []byte, flags byte) error {
	resp, err := c.roundTrip(&Request{Op: OpPut, Flags: flags, Key: key, Val: val})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Delete removes key.
func (c *Client) Delete(key []byte, flags byte) error {
	resp, err := c.roundTrip(&Request{Op: OpDelete, Flags: flags, Key: key})
	if err != nil {
		return err
	}
	return resp.Err()
}

// DeleteRange removes every key in [start, end) — on the server, one range
// tombstone per shard, whatever the range covers.
func (c *Client) DeleteRange(start, end []byte, flags byte) error {
	resp, err := c.roundTrip(&Request{Op: OpDeleteRange, Flags: flags, Key: start, Val: end})
	if err != nil {
		return err
	}
	return resp.Err()
}

// ApplyBatch applies ops atomically per shard.
func (c *Client) ApplyBatch(ops []BatchOp, flags byte) error {
	resp, err := c.roundTrip(&Request{Op: OpApplyBatch, Flags: flags, Ops: ops})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Scan returns up to limit pairs in [start, end) in ascending key order,
// merged across shards. Pairs alias the receive buffer.
func (c *Client) Scan(start, end []byte, limit uint32) ([]KV, error) {
	resp, err := c.roundTripIdempotent(&Request{Op: OpScan, Key: start, Val: end, Limit: limit})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		if e := resp.Err(); e != nil {
			return nil, e
		}
		return nil, fmt.Errorf("server: scan status %d", resp.Status)
	}
	return ParsePairs(resp.Val)
}

// Stats returns the server's aggregate JSON stats snapshot. The bytes
// alias the receive buffer.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTripIdempotent(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		if e := resp.Err(); e != nil {
			return nil, e
		}
		return nil, fmt.Errorf("server: stats status %d", resp.Status)
	}
	return resp.Val, nil
}
