package server

import (
	"encoding/binary"
	"sort"

	"pebblesdb/internal/murmur"
)

// ringSeed fixes the hash ring's key hash; it must never change, or keys
// would re-route across restarts of a persistent multi-directory server.
const ringSeed = 0x9e3779b97f4a7c15

// vnodesPerShard is the number of ring points per shard. 128 virtual
// nodes keep the largest shard within a few percent of the mean share of
// the hash space, while the ring stays small enough that routing is one
// cache-resident binary search.
const vnodesPerShard = 128

// ring routes keys to shards by consistent hashing: each shard owns the
// arcs ending at its virtual points, a key lands on the first point at or
// after its hash (wrapping). Compared to hash%M, adding a shard later
// moves only ~1/M of the keyspace — the property a resharding story needs
// — at the cost of one binary search per route.
type ring struct {
	hashes []uint64
	shards []uint32
}

func newRing(shardCount int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, shardCount*vnodesPerShard),
		shards: make([]uint32, 0, shardCount*vnodesPerShard),
	}
	type point struct {
		hash  uint64
		shard uint32
	}
	points := make([]point, 0, shardCount*vnodesPerShard)
	var seed [12]byte
	for s := 0; s < shardCount; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			binary.LittleEndian.PutUint32(seed[0:], uint32(s))
			binary.LittleEndian.PutUint64(seed[4:], uint64(v))
			points = append(points, point{murmur.Hash64(seed[:], ringSeed), uint32(s)})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.shards = append(r.shards, p.shard)
	}
	return r
}

// shard returns the shard index owning key.
func (r *ring) shard(key []byte) int {
	h := murmur.Hash64(key, ringSeed)
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		lo = 0 // wrap past the last point to the first
	}
	return int(r.shards[lo])
}
