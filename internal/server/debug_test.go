package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestDebugHandlerMetrics exercises the observability endpoint end to end:
// /metrics must be valid Prometheus text exposition (every sample preceded
// by HELP/TYPE for its family, histogram buckets cumulative), and
// /debug/events must decode as per-shard event lists.
func TestDebugHandlerMetrics(t *testing.T) {
	srv, addr, _ := startServer(t, 2, nil)
	c := dialT(t, addr)
	defer c.Close()
	for i := 0; i < 200; i++ {
		key := []byte("key" + strings.Repeat("x", i%7) + string(rune('a'+i%26)))
		if err := c.Put(key, []byte("value"), 0); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("bad /metrics content type %q", ct)
	}

	// Parse the exposition: track families declared by TYPE lines, require
	// every sample to belong to a declared family, and check the
	// commit-wait histogram's buckets are cumulative.
	declared := map[string]string{}
	samples := 0
	var lastBucket int64 = -1
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			declared[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && declared[b] == "histogram" {
				base = b
			}
		}
		if _, ok := declared[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
		samples++
		if strings.HasPrefix(line, "pebblesdb_commit_wait_seconds_bucket") {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < lastBucket {
				t.Errorf("histogram buckets not cumulative: %q after %d", line, lastBucket)
			}
			lastBucket = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("/metrics served no samples")
	}
	for _, fam := range []string{
		"pebblesdb_flushes_total",
		"pebblesdb_commit_wait_seconds",
		"pebblesdb_server_requests_total",
		"pebblesdb_io_written_bytes_total",
	} {
		if _, ok := declared[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if lastBucket < 0 {
		t.Error("commit-wait histogram served no buckets")
	}

	// /debug/events: one entry per shard, JSON-decodable.
	eresp, err := ts.Client().Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var events []struct {
		Shard  int               `json:"shard"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.NewDecoder(eresp.Body).Decode(&events); err != nil {
		t.Fatalf("decode /debug/events: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("expected 2 shard entries, got %d", len(events))
	}

	// /debug/metrics?format=text serves the human-readable report.
	tresp, err := ts.Client().Get(ts.URL + "/debug/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(body), "level") {
		t.Errorf("text metrics report missing per-level table: %q", body)
	}
}
