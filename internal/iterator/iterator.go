// Package iterator defines the internal iterator contract shared by
// memtables, sstables, guards and levels, plus the merging iterator that
// combines them (§2.2: "the database iterator is implemented via merging
// level iterators").
package iterator

// Iterator is a forward cursor over internal keys in sorted order
// (base.InternalCompare). Implementations are not safe for concurrent use.
type Iterator interface {
	// SeekGE positions the iterator at the first entry with key >= target
	// (an internal key).
	SeekGE(target []byte)
	// First positions the iterator at the smallest entry.
	First()
	// Next advances the iterator. It must only be called when Valid.
	Next()
	// Valid reports whether the iterator is positioned on an entry.
	Valid() bool
	// Key returns the current internal key. The slice is only valid until
	// the next positioning call.
	Key() []byte
	// Value returns the current value, with the same lifetime as Key.
	Value() []byte
	// Error returns the first IO error the iterator encountered.
	Error() error
	// Close releases resources. The iterator is unusable afterwards.
	Close() error
}

// Empty is an iterator over nothing.
type Empty struct{ Err error }

func (e *Empty) SeekGE([]byte) {}
func (e *Empty) First()        {}
func (e *Empty) Next()         {}
func (e *Empty) Valid() bool   { return false }
func (e *Empty) Key() []byte   { return nil }
func (e *Empty) Value() []byte { return nil }
func (e *Empty) Error() error  { return e.Err }
func (e *Empty) Close() error  { return nil }
