// Package iterator defines the internal iterator contract shared by
// memtables, sstables, guards and levels, plus the merging iterator that
// combines them (§2.2: "the database iterator is implemented via merging
// level iterators").
package iterator

// Iterator is a bidirectional cursor over internal keys in sorted order
// (base.InternalCompare). Implementations are not safe for concurrent use.
//
// Positioning contract: SeekGE/SeekLT/First/Last may be called in any
// state. Next and Prev must only be called when Valid, and may follow any
// positioning call — an iterator positioned by SeekLT supports Next and
// vice versa (the merging iterator relies on this when it switches
// direction).
type Iterator interface {
	// SeekGE positions the iterator at the first entry with key >= target
	// (an internal key).
	SeekGE(target []byte)
	// SeekLT positions the iterator at the last entry with key < target
	// (an internal key).
	SeekLT(target []byte)
	// First positions the iterator at the smallest entry.
	First()
	// Last positions the iterator at the largest entry.
	Last()
	// Next advances the iterator. It must only be called when Valid.
	Next()
	// Prev moves the iterator back one entry. It must only be called when
	// Valid.
	Prev()
	// Valid reports whether the iterator is positioned on an entry.
	Valid() bool
	// Key returns the current internal key. The slice is only valid until
	// the next positioning call.
	Key() []byte
	// Value returns the current value, with the same lifetime as Key.
	Value() []byte
	// Error returns the first IO error the iterator encountered.
	Error() error
	// Close releases resources. The iterator is unusable afterwards.
	Close() error
}

// Empty is an iterator over nothing.
type Empty struct{ Err error }

func (e *Empty) SeekGE([]byte) {}
func (e *Empty) SeekLT([]byte) {}
func (e *Empty) First()        {}
func (e *Empty) Last()         {}
func (e *Empty) Next()         {}
func (e *Empty) Prev()         {}
func (e *Empty) Valid() bool   { return false }
func (e *Empty) Key() []byte   { return nil }
func (e *Empty) Value() []byte { return nil }
func (e *Empty) Error() error  { return e.Err }
func (e *Empty) Close() error  { return nil }
