package iterator

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildChildren(t *testing.T, rng *rand.Rand, numChildren, perChild int) ([]Iterator, []string) {
	t.Helper()
	var children []Iterator
	var all []string
	for c := 0; c < numChildren; c++ {
		var keys []string
		for i := 0; i < perChild; i++ {
			k := fmt.Sprintf("key%08d", rng.Intn(1<<20)*numChildren+c) // disjoint per child
			keys = append(keys, k)
		}
		sort.Strings(keys)
		keys = dedupe(keys)
		all = append(all, keys...)
		children = append(children, newSliceIter(keys))
	}
	sort.Strings(all)
	return children, all
}

func TestMergingReverseMatchesSortedUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	children, all := buildChildren(t, rng, 5, 200)
	m := NewMerging(bytes.Compare, children...)
	defer m.Close()

	i := len(all) - 1
	for m.Last(); m.Valid(); m.Prev() {
		if string(m.Key()) != all[i] {
			t.Fatalf("pos %d: got %q want %q", i, m.Key(), all[i])
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse merged %d of %d", len(all)-1-i, len(all))
	}
}

func TestMergingSeekLT(t *testing.T) {
	a := newSliceIter([]string{"a", "d", "g"})
	b := newSliceIter([]string{"b", "e", "h"})
	c := newSliceIter([]string{"c", "f", "i"})
	m := NewMerging(bytes.Compare, a, b, c)
	defer m.Close()

	m.SeekLT([]byte("f"))
	var got []string
	for ; m.Valid(); m.Prev() {
		got = append(got, string(m.Key()))
	}
	if fmt.Sprint(got) != "[e d c b a]" {
		t.Fatalf("got %v", got)
	}

	m.SeekLT([]byte("a"))
	if m.Valid() {
		t.Fatal("SeekLT(smallest) should be invalid")
	}
	m.SeekLT([]byte("zzz"))
	if !m.Valid() || string(m.Key()) != "i" {
		t.Fatal("SeekLT(past end) should land on largest")
	}
}

func TestMergingDirectionSwitch(t *testing.T) {
	a := newSliceIter([]string{"a", "c", "e"})
	b := newSliceIter([]string{"b", "d", "f"})
	m := NewMerging(bytes.Compare, a, b)
	defer m.Close()

	m.SeekGE([]byte("c"))
	if string(m.Key()) != "c" {
		t.Fatalf("got %q", m.Key())
	}
	m.Prev() // forward -> reverse
	if !m.Valid() || string(m.Key()) != "b" {
		t.Fatalf("Prev after SeekGE: got %v", string(m.Key()))
	}
	m.Next() // reverse -> forward
	if !m.Valid() || string(m.Key()) != "c" {
		t.Fatalf("Next after Prev: got %v", string(m.Key()))
	}
	m.Next()
	if string(m.Key()) != "d" {
		t.Fatalf("got %q", m.Key())
	}
}

// TestMergingRandomWalk drives the merged stream with a random Next/Prev
// walk and checks every position against the sorted union.
func TestMergingRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	children, all := buildChildren(t, rng, 4, 100)
	m := NewMerging(bytes.Compare, children...)
	defer m.Close()

	pos := len(all) / 2
	m.SeekGE([]byte(all[pos]))
	for step := 0; step < 2000 && m.Valid(); step++ {
		if rng.Intn(2) == 0 {
			m.Next()
			pos++
		} else {
			m.Prev()
			pos--
		}
		if pos < 0 || pos >= len(all) {
			if m.Valid() {
				t.Fatalf("step %d: expected invalid at pos %d, got %q", step, pos, m.Key())
			}
			break
		}
		if !m.Valid() || string(m.Key()) != all[pos] {
			t.Fatalf("step %d pos %d: got %v want %q", step, pos, string(m.Key()), all[pos])
		}
	}
}
