package iterator

// Merging merges any number of child iterators into one sorted stream. It
// is the merge procedure the paper describes for range queries (§3.4):
// identifying the next smallest key without performing a full sort. A
// binary heap keyed by the children's current keys gives O(log n)
// advancement. The heap is a min-heap while iterating forward and a
// max-heap while iterating backward; direction switches reposition every
// child around the current key.
type Merging struct {
	cmp  func(a, b []byte) int
	kids []Iterator
	heap []int // indices into kids, heap-ordered; kids[heap[0]] is the root
	// dir is +1 when the heap is a min-heap (forward iteration) and -1
	// when it is a max-heap (reverse iteration).
	dir int
	err error
	// keyBuf holds the pivot key during switchDirection, reused across
	// switches so direction changes do not allocate.
	keyBuf []byte
}

// NewMerging returns a merging iterator over kids ordered by cmp. The
// merging iterator takes ownership: Close closes every child.
func NewMerging(cmp func(a, b []byte) int, kids ...Iterator) *Merging {
	return &Merging{cmp: cmp, kids: kids, dir: 1}
}

// Init readies m to merge kids, retaining m's heap and pivot buffers from
// any prior use. It is the reuse path for pooled iterators: a Merging held
// by value can be re-armed for a new set of children without allocating.
// The caller retains ownership of kids unless it also calls Close.
func (m *Merging) Init(cmp func(a, b []byte) int, kids []Iterator) {
	m.cmp = cmp
	m.kids = kids
	m.heap = m.heap[:0]
	m.dir = 1
	m.err = nil
}

// less orders the heap: smallest key at the root going forward, largest
// going backward.
func (m *Merging) less(i, j int) bool {
	if m.dir > 0 {
		return m.cmp(m.kids[i].Key(), m.kids[j].Key()) < 0
	}
	return m.cmp(m.kids[i].Key(), m.kids[j].Key()) > 0
}

func (m *Merging) initHeap() {
	m.heap = m.heap[:0]
	for i, k := range m.kids {
		if k.Valid() {
			m.heap = append(m.heap, i)
		} else if err := k.Error(); err != nil && m.err == nil {
			m.err = err
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *Merging) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < n && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// InitPositioned rebuilds the heap from the children's current positions
// without repositioning them, assuming forward iteration. PebblesDB's
// parallel seeks (§4.2) position the sstable iterators of a last-level
// guard concurrently, then call this to assemble the merged view.
func (m *Merging) InitPositioned() {
	m.dir = 1
	m.initHeap()
}

// Kid returns the i'th child iterator, for callers (parallel seeks) that
// position children directly before InitPositioned*.
func (m *Merging) Kid(i int) Iterator { return m.kids[i] }

// InitPositionedReverse is InitPositioned for reverse iteration: the
// children have already been positioned (e.g. by concurrent SeekLT calls)
// and the heap is assembled as a max-heap.
func (m *Merging) InitPositionedReverse() {
	m.dir = -1
	m.initHeap()
}

// SeekGE positions every child at target and rebuilds the heap.
func (m *Merging) SeekGE(target []byte) {
	m.dir = 1
	for _, k := range m.kids {
		k.SeekGE(target)
	}
	m.initHeap()
}

// SeekLT positions every child at its last entry < target and rebuilds the
// heap for reverse iteration.
func (m *Merging) SeekLT(target []byte) {
	m.dir = -1
	for _, k := range m.kids {
		k.SeekLT(target)
	}
	m.initHeap()
}

// First positions every child at its first entry and rebuilds the heap.
func (m *Merging) First() {
	m.dir = 1
	for _, k := range m.kids {
		k.First()
	}
	m.initHeap()
}

// Last positions every child at its last entry and rebuilds the heap for
// reverse iteration.
func (m *Merging) Last() {
	m.dir = -1
	for _, k := range m.kids {
		k.Last()
	}
	m.initHeap()
}

// advanceRoot moves the root child one step and restores the heap.
func (m *Merging) advanceRoot() {
	top := m.heap[0]
	if m.dir > 0 {
		m.kids[top].Next()
	} else {
		m.kids[top].Prev()
	}
	if m.kids[top].Valid() {
		m.siftDown(0)
		return
	}
	if err := m.kids[top].Error(); err != nil && m.err == nil {
		m.err = err
	}
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	if len(m.heap) > 0 {
		m.siftDown(0)
	}
}

// switchDirection repositions every child around the current key when Next
// is called while iterating backward or Prev while iterating forward.
// Children other than the root are parked on the far side of the current
// key, so each must be re-seeked.
func (m *Merging) switchDirection(dir int) {
	m.keyBuf = append(m.keyBuf[:0], m.Key()...)
	key := m.keyBuf
	m.dir = dir
	for _, k := range m.kids {
		if dir > 0 {
			k.SeekGE(key)
			// SeekGE is inclusive: the old root lands back on key itself.
			if k.Valid() && m.cmp(k.Key(), key) == 0 {
				k.Next()
			}
		} else {
			// SeekLT is exclusive, so no same-key adjustment is needed.
			k.SeekLT(key)
		}
	}
	m.initHeap()
}

// Next advances the merged stream to the next larger key.
func (m *Merging) Next() {
	if len(m.heap) == 0 {
		return
	}
	if m.dir < 0 {
		m.switchDirection(1)
		return
	}
	m.advanceRoot()
}

// Prev moves the merged stream back to the next smaller key.
func (m *Merging) Prev() {
	if len(m.heap) == 0 {
		return
	}
	if m.dir > 0 {
		m.switchDirection(-1)
		return
	}
	m.advanceRoot()
}

// Valid reports whether the merged stream has a current entry.
func (m *Merging) Valid() bool { return len(m.heap) > 0 && m.err == nil }

// Key returns the current extreme key across children (smallest going
// forward, largest going backward).
func (m *Merging) Key() []byte { return m.kids[m.heap[0]].Key() }

// Value returns the value paired with Key.
func (m *Merging) Value() []byte { return m.kids[m.heap[0]].Value() }

// Error returns the first error from any child.
func (m *Merging) Error() error { return m.err }

// Close closes every child and returns the first error.
func (m *Merging) Close() error {
	var first error
	for _, k := range m.kids {
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.err != nil && first == nil {
		first = m.err
	}
	return first
}
