package iterator

// Merging merges any number of child iterators into one sorted stream. It
// is the merge procedure the paper describes for range queries (§3.4):
// identifying the next smallest key without performing a full sort. A
// binary min-heap keyed by the children's current keys gives O(log n)
// advancement.
type Merging struct {
	cmp  func(a, b []byte) int
	kids []Iterator
	heap []int // indices into kids, heap-ordered; kids[heap[0]] is smallest
	err  error
}

// NewMerging returns a merging iterator over kids ordered by cmp. The
// merging iterator takes ownership: Close closes every child.
func NewMerging(cmp func(a, b []byte) int, kids ...Iterator) *Merging {
	return &Merging{cmp: cmp, kids: kids}
}

func (m *Merging) less(i, j int) bool {
	return m.cmp(m.kids[i].Key(), m.kids[j].Key()) < 0
}

func (m *Merging) initHeap() {
	m.heap = m.heap[:0]
	for i, k := range m.kids {
		if k.Valid() {
			m.heap = append(m.heap, i)
		} else if err := k.Error(); err != nil && m.err == nil {
			m.err = err
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *Merging) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < n && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// InitPositioned rebuilds the heap from the children's current positions
// without repositioning them. PebblesDB's parallel seeks (§4.2) position
// the sstable iterators of a last-level guard concurrently, then call this
// to assemble the merged view.
func (m *Merging) InitPositioned() { m.initHeap() }

// SeekGE positions every child at target and rebuilds the heap.
func (m *Merging) SeekGE(target []byte) {
	for _, k := range m.kids {
		k.SeekGE(target)
	}
	m.initHeap()
}

// First positions every child at its first entry and rebuilds the heap.
func (m *Merging) First() {
	for _, k := range m.kids {
		k.First()
	}
	m.initHeap()
}

// Next advances the child currently at the heap root.
func (m *Merging) Next() {
	if len(m.heap) == 0 {
		return
	}
	top := m.heap[0]
	m.kids[top].Next()
	if m.kids[top].Valid() {
		m.siftDown(0)
		return
	}
	if err := m.kids[top].Error(); err != nil && m.err == nil {
		m.err = err
	}
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	if len(m.heap) > 0 {
		m.siftDown(0)
	}
}

// Valid reports whether the merged stream has a current entry.
func (m *Merging) Valid() bool { return len(m.heap) > 0 && m.err == nil }

// Key returns the smallest current key across children.
func (m *Merging) Key() []byte { return m.kids[m.heap[0]].Key() }

// Value returns the value paired with Key.
func (m *Merging) Value() []byte { return m.kids[m.heap[0]].Value() }

// Error returns the first error from any child.
func (m *Merging) Error() error { return m.err }

// Close closes every child and returns the first error.
func (m *Merging) Close() error {
	var first error
	for _, k := range m.kids {
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.err != nil && first == nil {
		first = m.err
	}
	return first
}
