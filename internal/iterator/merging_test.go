package iterator

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// sliceIter is a test iterator over an in-memory sorted key list.
type sliceIter struct {
	keys [][]byte
	vals [][]byte
	idx  int
}

func newSliceIter(keys []string) *sliceIter {
	s := &sliceIter{idx: -1}
	for _, k := range keys {
		s.keys = append(s.keys, []byte(k))
		s.vals = append(s.vals, []byte("v:"+k))
	}
	return s
}

func (s *sliceIter) SeekGE(target []byte) {
	s.idx = sort.Search(len(s.keys), func(i int) bool {
		return bytes.Compare(s.keys[i], target) >= 0
	})
}
func (s *sliceIter) SeekLT(target []byte) {
	s.idx = sort.Search(len(s.keys), func(i int) bool {
		return bytes.Compare(s.keys[i], target) >= 0
	}) - 1
}
func (s *sliceIter) First()        { s.idx = 0 }
func (s *sliceIter) Last()         { s.idx = len(s.keys) - 1 }
func (s *sliceIter) Next()         { s.idx++ }
func (s *sliceIter) Prev()         { s.idx-- }
func (s *sliceIter) Valid() bool   { return s.idx >= 0 && s.idx < len(s.keys) }
func (s *sliceIter) Key() []byte   { return s.keys[s.idx] }
func (s *sliceIter) Value() []byte { return s.vals[s.idx] }
func (s *sliceIter) Error() error  { return nil }
func (s *sliceIter) Close() error  { return nil }

func TestMergingMatchesSortedUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var children []Iterator
	var all []string
	for c := 0; c < 5; c++ {
		var keys []string
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key%08d", rng.Intn(1<<27)*2+c) // disjoint per child
			keys = append(keys, k)
		}
		sort.Strings(keys)
		keys = dedupe(keys)
		all = append(all, keys...)
		children = append(children, newSliceIter(keys))
	}
	sort.Strings(all)
	all = dedupe(all)

	m := NewMerging(bytes.Compare, children...)
	defer m.Close()
	i := 0
	for m.First(); m.Valid(); m.Next() {
		if string(m.Key()) != all[i] {
			t.Fatalf("pos %d: got %q want %q", i, m.Key(), all[i])
		}
		i++
	}
	if i != len(all) {
		t.Fatalf("merged %d of %d", i, len(all))
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func TestMergingSeekGE(t *testing.T) {
	a := newSliceIter([]string{"a", "d", "g"})
	b := newSliceIter([]string{"b", "e", "h"})
	c := newSliceIter([]string{"c", "f", "i"})
	m := NewMerging(bytes.Compare, a, b, c)
	defer m.Close()

	m.SeekGE([]byte("e"))
	var got []string
	for ; m.Valid(); m.Next() {
		got = append(got, string(m.Key()))
	}
	want := "[e f g h i]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	m := NewMerging(bytes.Compare, newSliceIter(nil), newSliceIter([]string{"x"}), &Empty{})
	defer m.Close()
	m.First()
	if !m.Valid() || string(m.Key()) != "x" {
		t.Fatal("merging with empty children failed")
	}
	m.Next()
	if m.Valid() {
		t.Fatal("should be exhausted")
	}
}

func TestMergingNoChildren(t *testing.T) {
	m := NewMerging(bytes.Compare)
	defer m.Close()
	m.First()
	if m.Valid() {
		t.Fatal("no children should be invalid")
	}
	m.SeekGE([]byte("x"))
	if m.Valid() {
		t.Fatal("no children should be invalid after seek")
	}
}

func TestMergingInitPositioned(t *testing.T) {
	a := newSliceIter([]string{"a", "c"})
	b := newSliceIter([]string{"b", "d"})
	// Position children manually (as parallel seeks do), then assemble.
	a.SeekGE([]byte("b"))
	b.SeekGE([]byte("b"))
	m := NewMerging(bytes.Compare, a, b)
	defer m.Close()
	m.InitPositioned()
	var got []string
	for ; m.Valid(); m.Next() {
		got = append(got, string(m.Key()))
	}
	if fmt.Sprint(got) != "[b c d]" {
		t.Fatalf("got %v", got)
	}
}

func TestMergingDuplicateKeysAcrossChildren(t *testing.T) {
	// Duplicate keys are legal (same user key in overlapping sstables);
	// the merged stream yields both, in child-stable order for ties.
	a := newSliceIter([]string{"k"})
	b := newSliceIter([]string{"k"})
	m := NewMerging(bytes.Compare, a, b)
	defer m.Close()
	n := 0
	for m.First(); m.Valid(); m.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("expected both duplicates, got %d", n)
	}
}
