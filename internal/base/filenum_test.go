package base

import "testing"

func TestFilenameRoundtrip(t *testing.T) {
	cases := []struct {
		ft FileType
		fn FileNum
	}{
		{FileTypeLog, 1},
		{FileTypeLog, 999999},
		{FileTypeTable, 42},
		{FileTypeManifest, 7},
		{FileTypeCurrent, 0},
		{FileTypeTemp, 13},
	}
	for _, c := range cases {
		name := MakeFilename(c.ft, c.fn)
		ft, fn, ok := ParseFilename(name)
		if !ok {
			t.Fatalf("parse %q failed", name)
		}
		if ft != c.ft {
			t.Fatalf("parse %q: type %v want %v", name, ft, c.ft)
		}
		if c.ft != FileTypeCurrent && fn != c.fn {
			t.Fatalf("parse %q: num %v want %v", name, fn, c.fn)
		}
	}
}

func TestParseFilenameRejectsJunk(t *testing.T) {
	for _, name := range []string{"", "foo", "123.bar", "x.log", "MANIFEST-", "MANIFEST-x", ".sst", "12a.sst", "LOCK"} {
		if _, _, ok := ParseFilename(name); ok {
			t.Fatalf("parse %q should fail", name)
		}
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	var c Config
	c.EnsureDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.MemtableSize != 4<<20 || c.NumLevels != 7 || c.L0SlowdownTrigger != 8 {
		t.Fatalf("unexpected defaults: %+v", c)
	}

	bad := c
	bad.L0StopTrigger = c.L0SlowdownTrigger - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("stop < slowdown should be invalid")
	}
	bad2 := c
	bad2.NumLevels = 2
	if err := bad2.Validate(); err == nil {
		t.Fatal("2 levels should be invalid")
	}
}

func TestMaxBytesForLevel(t *testing.T) {
	var c Config
	c.EnsureDefaults()
	if c.MaxBytesForLevel(1) != c.LevelBaseBytes {
		t.Fatal("level 1 should be base size")
	}
	if c.MaxBytesForLevel(3) != c.LevelBaseBytes*int64(c.LevelMultiplier)*int64(c.LevelMultiplier) {
		t.Fatal("level sizing should multiply per level")
	}
}
