package base

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundtrip(t *testing.T) {
	cases := []struct {
		ukey []byte
		seq  SeqNum
		kind Kind
	}{
		{[]byte("hello"), 1, KindSet},
		{[]byte(""), 0, KindDelete},
		{[]byte("k"), MaxSeqNum, KindSet},
		{bytes.Repeat([]byte{0xff}, 100), 123456789, KindDelete},
	}
	for _, c := range cases {
		ik := MakeInternalKey(nil, c.ukey, c.seq, c.kind)
		ukey, seq, kind, ok := DecodeInternalKey(ik)
		if !ok {
			t.Fatalf("decode failed for %q", c.ukey)
		}
		if !bytes.Equal(ukey, c.ukey) || seq != c.seq || kind != c.kind {
			t.Fatalf("roundtrip mismatch: got (%q,%d,%v) want (%q,%d,%v)",
				ukey, seq, kind, c.ukey, c.seq, c.kind)
		}
	}
}

func TestDecodeInternalKeyTooShort(t *testing.T) {
	for i := 0; i < TrailerLen; i++ {
		if _, _, _, ok := DecodeInternalKey(make([]byte, i)); ok {
			t.Fatalf("decode of %d-byte key should fail", i)
		}
	}
}

func TestInternalCompareOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := MakeInternalKey(nil, []byte("k"), 10, KindSet)
	b := MakeInternalKey(nil, []byte("k"), 5, KindSet)
	if InternalCompare(a, b) >= 0 {
		t.Fatal("higher seq should sort before lower seq")
	}
	// Same seq: KindSeek sorts before KindSet before KindDelete.
	seek := MakeInternalKey(nil, []byte("k"), 10, KindSeek)
	set := MakeInternalKey(nil, []byte("k"), 10, KindSet)
	del := MakeInternalKey(nil, []byte("k"), 10, KindDelete)
	if InternalCompare(seek, set) >= 0 || InternalCompare(set, del) >= 0 {
		t.Fatal("kind ordering wrong")
	}
	// Different user keys dominate.
	x := MakeInternalKey(nil, []byte("a"), 1, KindSet)
	y := MakeInternalKey(nil, []byte("b"), MaxSeqNum, KindSet)
	if InternalCompare(x, y) >= 0 {
		t.Fatal("user key should dominate ordering")
	}
}

func TestSearchKeyFindsNewestVisible(t *testing.T) {
	// A search key at seq S must sort before (ukey, S, KindSet) and after
	// (ukey, S+1, anything).
	search := MakeSearchKey(nil, []byte("k"), 7)
	at7 := MakeInternalKey(nil, []byte("k"), 7, KindSet)
	at8 := MakeInternalKey(nil, []byte("k"), 8, KindSet)
	if InternalCompare(search, at7) > 0 {
		t.Fatal("search key must sort at or before same-seq entries")
	}
	if InternalCompare(search, at8) < 0 {
		t.Fatal("search key must sort after higher-seq entries")
	}
}

func TestInternalCompareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() []byte {
		ukey := make([]byte, rng.Intn(8))
		rng.Read(ukey)
		return MakeInternalKey(nil, ukey, SeqNum(rng.Intn(100)), Kind(rng.Intn(2)))
	}
	// Antisymmetry and transitivity via sort consistency.
	keys := make([][]byte, 200)
	for i := range keys {
		keys[i] = gen()
	}
	sort.Slice(keys, func(i, j int) bool { return InternalCompare(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		if InternalCompare(keys[i-1], keys[i]) > 0 {
			t.Fatal("sort produced inconsistent order")
		}
	}
	// Reflexivity.
	if err := quick.Check(func(k []byte, s uint32, d bool) bool {
		kind := KindSet
		if d {
			kind = KindDelete
		}
		ik := MakeInternalKey(nil, k, SeqNum(s), kind)
		return InternalCompare(ik, ik) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrailerPacking(t *testing.T) {
	if err := quick.Check(func(s uint32, d bool) bool {
		kind := KindSet
		if d {
			kind = KindDelete
		}
		tr := MakeTrailer(SeqNum(s), kind)
		return SeqNum(tr>>8) == SeqNum(s) && Kind(tr&0xff) == kind
	}, nil); err != nil {
		t.Fatal(err)
	}
}
