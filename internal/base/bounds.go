package base

import "bytes"

// Bounds restricts iteration to user keys in [Lower, Upper). A nil side is
// unbounded. Bounds let the iterator stack prune guards and sstables whose
// key ranges cannot intersect the scan before any IO is issued.
type Bounds struct {
	// Lower is the inclusive lower user-key bound; nil = unbounded.
	Lower []byte
	// Upper is the exclusive upper user-key bound; nil = unbounded.
	Upper []byte
}

// Unbounded reports whether no bound is set on either side.
func (b Bounds) Unbounded() bool { return b.Lower == nil && b.Upper == nil }

// PrefixSuccessor appends to dst the smallest key greater than every key
// having the given prefix: the prefix with its last non-0xff byte
// incremented and the tail dropped. A prefix scan is exactly the bounds
// [prefix, PrefixSuccessor(prefix)). For an all-0xff prefix no successor
// exists and nil is returned — but then every key >= prefix starts with it,
// so [prefix, +inf) is still exact and callers simply leave the upper bound
// open.
func PrefixSuccessor(dst, prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			dst = append(dst, prefix[:i+1]...)
			dst[len(dst)-1]++
			return dst
		}
	}
	return nil
}

// ContainsUserKey reports whether ukey lies within the bounds.
func (b Bounds) ContainsUserKey(ukey []byte) bool {
	if b.Lower != nil && bytes.Compare(ukey, b.Lower) < 0 {
		return false
	}
	if b.Upper != nil && bytes.Compare(ukey, b.Upper) >= 0 {
		return false
	}
	return true
}

// Overlaps reports whether the file's user-key range [smallest, largest]
// can contain a key within the bounds.
func (b Bounds) Overlaps(f *FileMetadata) bool {
	if b.Upper != nil && bytes.Compare(f.SmallestUserKey(), b.Upper) >= 0 {
		return false
	}
	if b.Lower != nil && bytes.Compare(f.LargestUserKey(), b.Lower) < 0 {
		return false
	}
	return true
}

// FilterFiles returns the files overlapping the bounds, preserving order.
// When every file overlaps (the common unbounded case) the input slice is
// returned without copying.
func (b Bounds) FilterFiles(files []*FileMetadata) []*FileMetadata {
	if b.Unbounded() {
		return files
	}
	all := true
	for _, f := range files {
		if !b.Overlaps(f) {
			all = false
			break
		}
	}
	if all {
		return files
	}
	out := make([]*FileMetadata, 0, len(files))
	for _, f := range files {
		if b.Overlaps(f) {
			out = append(out, f)
		}
	}
	return out
}
