package base

import "bytes"

// Bounds restricts iteration to user keys in [Lower, Upper). A nil side is
// unbounded. Bounds let the iterator stack prune guards and sstables whose
// key ranges cannot intersect the scan before any IO is issued.
type Bounds struct {
	// Lower is the inclusive lower user-key bound; nil = unbounded.
	Lower []byte
	// Upper is the exclusive upper user-key bound; nil = unbounded.
	Upper []byte
}

// Unbounded reports whether no bound is set on either side.
func (b Bounds) Unbounded() bool { return b.Lower == nil && b.Upper == nil }

// ContainsUserKey reports whether ukey lies within the bounds.
func (b Bounds) ContainsUserKey(ukey []byte) bool {
	if b.Lower != nil && bytes.Compare(ukey, b.Lower) < 0 {
		return false
	}
	if b.Upper != nil && bytes.Compare(ukey, b.Upper) >= 0 {
		return false
	}
	return true
}

// Overlaps reports whether the file's user-key range [smallest, largest]
// can contain a key within the bounds.
func (b Bounds) Overlaps(f *FileMetadata) bool {
	if b.Upper != nil && bytes.Compare(f.SmallestUserKey(), b.Upper) >= 0 {
		return false
	}
	if b.Lower != nil && bytes.Compare(f.LargestUserKey(), b.Lower) < 0 {
		return false
	}
	return true
}

// FilterFiles returns the files overlapping the bounds, preserving order.
// When every file overlaps (the common unbounded case) the input slice is
// returned without copying.
func (b Bounds) FilterFiles(files []*FileMetadata) []*FileMetadata {
	if b.Unbounded() {
		return files
	}
	all := true
	for _, f := range files {
		if !b.Overlaps(f) {
			all = false
			break
		}
	}
	if all {
		return files
	}
	out := make([]*FileMetadata, 0, len(files))
	for _, f := range files {
		if b.Overlaps(f) {
			out = append(out, f)
		}
	}
	return out
}
