// Package base defines the fundamental types shared by every layer of the
// store: internal keys, sequence numbers, file numbers, and the shared
// configuration block. The encoding follows the LevelDB lineage that
// PebblesDB (SOSP 2017) builds on: an internal key is the user key followed
// by an 8-byte trailer packing a 56-bit sequence number and an 8-bit kind.
package base

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// SeqNum is a monotonically increasing version number assigned to every
// write. Only the low 56 bits are usable; the top 8 bits of the trailer hold
// the kind.
type SeqNum uint64

// MaxSeqNum is the largest representable sequence number. Reads issued
// without a snapshot use it to observe the latest committed data.
const MaxSeqNum SeqNum = (1 << 56) - 1

// Kind describes what a key-value entry represents.
type Kind uint8

const (
	// KindDelete marks a tombstone: the key has been deleted.
	KindDelete Kind = 0
	// KindSet marks a regular value.
	KindSet Kind = 1
	// KindRangeDelete marks a range tombstone: every key in [ukey, value)
	// with a smaller sequence number is deleted. The start key is the
	// internal key's user key; the exclusive end key travels in the value.
	KindRangeDelete Kind = 2
	// KindSeek is used only in search keys. It is the largest kind, so a
	// search key (ukey, seq, KindSeek) sorts before any real entry with the
	// same user key and sequence number (trailers sort descending).
	KindSeek Kind = 0xff
)

func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DEL"
	case KindSet:
		return "SET"
	case KindRangeDelete:
		return "RANGEDEL"
	case KindSeek:
		return "SEEK"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// TrailerLen is the length in bytes of an internal key trailer.
const TrailerLen = 8

// MakeTrailer packs a sequence number and kind into a trailer.
func MakeTrailer(seq SeqNum, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// MakeInternalKey appends the trailer for (seq, kind) to a copy of ukey and
// returns the internal key.
func MakeInternalKey(dst, ukey []byte, seq SeqNum, kind Kind) []byte {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], MakeTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// MakeSearchKey builds the internal key that SeekGE uses to find the newest
// entry for ukey visible at sequence seq.
func MakeSearchKey(dst, ukey []byte, seq SeqNum) []byte {
	return MakeInternalKey(dst, ukey, seq, KindSeek)
}

// RangeDelSentinelTrailer is the trailer of an exclusive upper-bound key: a
// table whose largest internal key is (end, RangeDelSentinelTrailer)
// contains keys strictly below end (its range tombstones end at end, which
// itself is not covered). The trailer packs the maximum sequence number, so
// the sentinel sorts before every real entry of end and InternalCompare
// against real keys does the right thing on both sides of the bound.
var RangeDelSentinelTrailer = MakeTrailer(MaxSeqNum, KindRangeDelete)

// MakeRangeDelSentinelKey builds the exclusive upper-bound internal key for
// a range tombstone ending at end.
func MakeRangeDelSentinelKey(dst, end []byte) []byte {
	return MakeInternalKey(dst, end, MaxSeqNum, KindRangeDelete)
}

// IsRangeDelSentinel reports whether ikey is an exclusive upper bound built
// by MakeRangeDelSentinelKey.
func IsRangeDelSentinel(ikey []byte) bool {
	return len(ikey) >= TrailerLen && Trailer(ikey) == RangeDelSentinelTrailer
}

// DecodeInternalKey splits an internal key into its components. ok is false
// if the key is too short to contain a trailer.
func DecodeInternalKey(ikey []byte) (ukey []byte, seq SeqNum, kind Kind, ok bool) {
	if len(ikey) < TrailerLen {
		return nil, 0, 0, false
	}
	n := len(ikey) - TrailerLen
	t := binary.LittleEndian.Uint64(ikey[n:])
	return ikey[:n], SeqNum(t >> 8), Kind(t & 0xff), true
}

// UserKey returns the user-key portion of an internal key. It panics on
// malformed keys; callers own the framing.
func UserKey(ikey []byte) []byte {
	if len(ikey) < TrailerLen {
		panic("base: internal key too short")
	}
	return ikey[:len(ikey)-TrailerLen]
}

// Trailer returns the 8-byte trailer of an internal key.
func Trailer(ikey []byte) uint64 {
	return binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerLen:])
}

// InternalCompare orders internal keys: ascending by user key, then
// descending by trailer (newer sequence numbers first).
func InternalCompare(a, b []byte) int {
	au, bu := UserKey(a), UserKey(b)
	if c := bytes.Compare(au, bu); c != 0 {
		return c
	}
	at, bt := Trailer(a), Trailer(b)
	switch {
	case at > bt:
		return -1
	case at < bt:
		return 1
	}
	return 0
}

// InternalKeyString renders an internal key for debugging.
func InternalKeyString(ikey []byte) string {
	ukey, seq, kind, ok := DecodeInternalKey(ikey)
	if !ok {
		return fmt.Sprintf("<malformed:%x>", ikey)
	}
	return fmt.Sprintf("%q#%d,%s", ukey, seq, kind)
}
