package base

import "fmt"

// FileMetadata describes one sstable as recorded in a version. Smallest and
// Largest are internal keys. Guard assignment (FLSM) is derived from the key
// range and the level's guard set; it is not stored here.
type FileMetadata struct {
	FileNum  FileNum
	Size     uint64
	Smallest []byte // internal key
	Largest  []byte // internal key

	// AllowedSeeks implements seek-triggered compaction: it is decremented
	// on every seek that touches the file and the containing guard or level
	// becomes a compaction candidate when it reaches zero. Accessed under
	// the tree mutex.
	AllowedSeeks int
}

func (m *FileMetadata) String() string {
	return fmt.Sprintf("%06d:%d[%s..%s]", m.FileNum, m.Size,
		InternalKeyString(m.Smallest), InternalKeyString(m.Largest))
}

// SmallestUserKey returns the user key of the file's smallest internal key.
func (m *FileMetadata) SmallestUserKey() []byte { return UserKey(m.Smallest) }

// LargestUserKey returns the user key of the file's largest internal key.
func (m *FileMetadata) LargestUserKey() []byte { return UserKey(m.Largest) }
