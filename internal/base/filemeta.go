package base

import (
	"bytes"
	"fmt"
)

// FileMetadata describes one sstable as recorded in a version. Smallest and
// Largest are internal keys and cover both point entries and range
// tombstones; a largest bound contributed by a tombstone's exclusive end is
// a range-del sentinel key (see LargestExclusive). Guard assignment (FLSM)
// is derived from the key range and the level's guard set; it is not stored
// here.
type FileMetadata struct {
	FileNum  FileNum
	Size     uint64
	Smallest []byte // internal key
	Largest  []byte // internal key

	// NumRangeDels counts range-tombstone fragments in the table's
	// range-del block; RangeDelStart/RangeDelEnd are the user-key span
	// [start, end) they cover. Zero/nil for clean tables — the common case —
	// so reads and compaction picking skip tombstone work without opening
	// the table.
	NumRangeDels  int
	RangeDelStart []byte
	RangeDelEnd   []byte

	// AllowedSeeks implements seek-triggered compaction: it is decremented
	// on every seek that touches the file and the containing guard or level
	// becomes a compaction candidate when it reaches zero. Accessed under
	// the tree mutex.
	AllowedSeeks int
}

func (m *FileMetadata) String() string {
	s := fmt.Sprintf("%06d:%d[%s..%s]", m.FileNum, m.Size,
		InternalKeyString(m.Smallest), InternalKeyString(m.Largest))
	if m.NumRangeDels > 0 {
		s += fmt.Sprintf("+rd%d", m.NumRangeDels)
	}
	return s
}

// SmallestUserKey returns the user key of the file's smallest internal key.
func (m *FileMetadata) SmallestUserKey() []byte { return UserKey(m.Smallest) }

// LargestUserKey returns the user key of the file's largest internal key.
func (m *FileMetadata) LargestUserKey() []byte { return UserKey(m.Largest) }

// LargestExclusive reports whether the file's upper bound is exclusive: the
// largest key is a range-del sentinel, so the file holds keys strictly
// below LargestUserKey.
func (m *FileMetadata) LargestExclusive() bool { return IsRangeDelSentinel(m.Largest) }

// HasRangeDels reports whether the table carries range tombstones.
func (m *FileMetadata) HasRangeDels() bool { return m.NumRangeDels > 0 }

// RangeDelSpanContains reports whether ukey lies within the file's
// tombstone span [RangeDelStart, RangeDelEnd) — the cheap pre-filter before
// opening the table's resident tombstone list.
func (m *FileMetadata) RangeDelSpanContains(ukey []byte) bool {
	return m.NumRangeDels > 0 &&
		bytes.Compare(m.RangeDelStart, ukey) <= 0 &&
		bytes.Compare(ukey, m.RangeDelEnd) < 0
}
