package base

import (
	"fmt"
	"strconv"
	"strings"
)

// FileNum identifies a file (sstable, WAL segment, or manifest) within a
// store directory. File numbers are allocated from a single counter recorded
// in the MANIFEST.
type FileNum uint64

// FileType enumerates the kinds of files in a store directory.
type FileType int

const (
	// FileTypeLog is a write-ahead log segment (NNNNNN.log).
	FileTypeLog FileType = iota
	// FileTypeTable is an sstable (NNNNNN.sst).
	FileTypeTable
	// FileTypeManifest is a MANIFEST-NNNNNN version log.
	FileTypeManifest
	// FileTypeCurrent is the CURRENT pointer file.
	FileTypeCurrent
	// FileTypeTemp is a temporary file (NNNNNN.tmp).
	FileTypeTemp
)

// MakeFilename returns the store-relative name for a file of the given type
// and number.
func MakeFilename(ft FileType, fn FileNum) string {
	switch ft {
	case FileTypeLog:
		return fmt.Sprintf("%06d.log", fn)
	case FileTypeTable:
		return fmt.Sprintf("%06d.sst", fn)
	case FileTypeManifest:
		return fmt.Sprintf("MANIFEST-%06d", fn)
	case FileTypeCurrent:
		return "CURRENT"
	case FileTypeTemp:
		return fmt.Sprintf("%06d.tmp", fn)
	}
	panic("base: unknown file type")
}

// ParseFilename decodes a store-relative file name. ok is false for names
// this package did not produce.
func ParseFilename(name string) (ft FileType, fn FileNum, ok bool) {
	switch {
	case name == "CURRENT":
		return FileTypeCurrent, 0, true
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(name[len("MANIFEST-"):], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileTypeManifest, FileNum(n), true
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(name[:len(name)-4], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileTypeLog, FileNum(n), true
	case strings.HasSuffix(name, ".sst"):
		n, err := strconv.ParseUint(name[:len(name)-4], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileTypeTable, FileNum(n), true
	case strings.HasSuffix(name, ".tmp"):
		n, err := strconv.ParseUint(name[:len(name)-4], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileTypeTemp, FileNum(n), true
	}
	return 0, 0, false
}
