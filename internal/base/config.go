package base

import (
	"fmt"
	"time"

	"pebblesdb/internal/compress"
	"pebblesdb/internal/obs"
)

// Config carries every tunable shared by the engine and the two tree
// implementations. The public package translates user-facing Options and
// presets into a Config. Zero fields are filled in by EnsureDefaults.
type Config struct {
	// MemtableSize is the size in bytes at which a memtable is frozen and
	// scheduled for flush. HyperLevelDB's default is 4 MB; RocksDB's 64 MB.
	MemtableSize int

	// L0CompactionTrigger is the number of L0 files that triggers a
	// compaction into level 1.
	L0CompactionTrigger int
	// L0SlowdownTrigger is the L0 file count at which writes are delayed.
	L0SlowdownTrigger int
	// L0StopTrigger is the L0 file count at which writes block.
	L0StopTrigger int

	// NumLevels is the total number of levels including L0.
	NumLevels int
	// LevelBaseBytes is the target size of level 1.
	LevelBaseBytes int64
	// LevelMultiplier is the size ratio between successive levels.
	LevelMultiplier int

	// TargetFileSize bounds output sstables during leveled compaction.
	TargetFileSize int64

	// BlockSize is the uncompressed size target for sstable data blocks.
	BlockSize int
	// BlockRestartInterval is the number of keys between restart points.
	BlockRestartInterval int
	// BloomBitsPerKey sizes the per-sstable bloom filter; 0 selects the
	// default (10) and a negative value disables bloom filters entirely
	// (ablation: §5.2 reports reads improve 63% with them).
	BloomBitsPerKey int
	// PrefixBloomLength, when positive, adds a second bloom filter to every
	// sstable built over the distinct first-PrefixBloomLength-byte prefixes
	// of its user keys (sstable format v4). Prefix iterators whose prefix is
	// exactly this length skip tables whose filter rules the prefix out
	// before any data-block IO. 0 disables the filter (tables keep their
	// v2/v3 format).
	PrefixBloomLength int

	// Compression selects the sstable data-block codec (sstable format
	// v2). The zero value (compress.None) writes raw blocks; the public
	// Options layer defaults stores to Snappy. Blocks that compress by
	// less than 12.5% are stored raw regardless.
	Compression compress.Kind

	// BlockCacheSize is the capacity in bytes of the shared block cache.
	// The cache holds decompressed payloads, so capacity is charged in
	// post-inflation bytes.
	BlockCacheSize int64
	// TableCacheSize is the number of open sstables (and their index
	// blocks/bloom filters) kept cached. The paper notes the stores cache a
	// limited number of sstable index blocks (default 1000).
	TableCacheSize int

	// --- FLSM-specific (ignored by the leveled tree) ---

	// TopLevelBits is the number of consecutive least-significant set bits
	// a key's hash needs to become a guard at level 1 (§4.4).
	TopLevelBits int
	// BitDecrement relaxes the requirement per deeper level (§4.4).
	BitDecrement int
	// MaxSSTablesPerGuard caps sstables per guard; reaching the cap
	// triggers compaction of the guard (§3.5). 1 makes FLSM behave as LSM.
	MaxSSTablesPerGuard int
	// GuardHashSeed seeds guard selection hashing.
	GuardHashSeed uint64
	// SizeRatioPct triggers aggressive compaction of level i when its size
	// is within this percentage of level i+1 (§4.2, default 25). Negative
	// disables the rule (ablation).
	SizeRatioPct int
	// LastLevelRewriteFactor is the IO blow-up beyond which the
	// second-highest level rewrites in place instead of merging into the
	// full last-level guard (§3.4, default 25).
	LastLevelRewriteFactor int
	// ParallelSeeks enables concurrent sstable positioning in last-level
	// guards during seeks (§4.2).
	ParallelSeeks bool
	// ParallelGuardCompaction partitions and writes guard outputs with a
	// worker pool (paper §7 future work, implemented here as an extension).
	ParallelGuardCompaction bool

	// SeekCompactionThreshold is the number of consecutive seeks that mark
	// a guard (FLSM) or file (leveled) for compaction (§4.2, default 10).
	// Negative disables seek-triggered compaction (ablation).
	SeekCompactionThreshold int

	// MaxCompactionConcurrency is the number of background compaction
	// goroutines. LevelDB uses 1; HyperLevelDB/RocksDB/PebblesDB use more.
	MaxCompactionConcurrency int

	// CompactionUnitGuards is the minimum number of guard groups one FLSM
	// compaction unit claims when draining an over-threshold level. Unit
	// size adapts upward: a level's populated groups split into about
	// MaxCompactionConcurrency units so every worker gets a share, but a
	// unit never shrinks below this floor — tiny units spend more time on
	// fixed per-compaction costs (iterator setup, table builds, manifest
	// edits) than on moving data. One whole-level pass is recovered by
	// setting it very large. Default 4.
	CompactionUnitGuards int

	// WALSync, if true, syncs the write-ahead log on every commit.
	WALSync bool

	// BgErrorRetries is how many times a failed background flush or
	// compaction is retried (with capped exponential backoff) before the
	// store degrades to read-only. Corruption is never retried. 0 selects
	// the default (3); a negative value disables retries.
	BgErrorRetries int
	// BgErrorRetryDelay is the initial backoff between background retries,
	// doubling per attempt up to one second. 0 selects the default (50ms).
	BgErrorRetryDelay time.Duration

	// Logger, if non-nil, receives diagnostic messages.
	Logger func(format string, args ...interface{})

	// EventListener, if non-nil, receives structured lifecycle events
	// (flush, compaction, WAL/manifest rotation, stalls, background
	// errors; see internal/obs). The engine tees it with its own flight
	// recorder at Open, so downstream code can assume it is non-nil
	// after that point. When nil before Open, only the flight recorder
	// observes events.
	EventListener obs.Listener

	// SlowOpThreshold, when positive, emits a structured line through
	// SlowOpLogger (falling back to Logger) for every commit whose total
	// latency meets it, with a stage breakdown (wait, WAL sync, apply,
	// stall). Zero disables the slow-op log.
	SlowOpThreshold time.Duration
	// SlowOpLogger, if non-nil, receives slow-op lines instead of Logger.
	SlowOpLogger obs.Logger
}

// EnsureDefaults fills zero-valued fields with the PebblesDB defaults used
// throughout the paper's evaluation (HyperLevelDB-derived).
func (c *Config) EnsureDefaults() {
	if c.MemtableSize == 0 {
		c.MemtableSize = 4 << 20
	}
	if c.L0CompactionTrigger == 0 {
		c.L0CompactionTrigger = 4
	}
	if c.L0SlowdownTrigger == 0 {
		c.L0SlowdownTrigger = 8
	}
	if c.L0StopTrigger == 0 {
		c.L0StopTrigger = 12
	}
	if c.NumLevels == 0 {
		c.NumLevels = 7
	}
	if c.LevelBaseBytes == 0 {
		c.LevelBaseBytes = 10 << 20
	}
	if c.LevelMultiplier == 0 {
		c.LevelMultiplier = 10
	}
	if c.TargetFileSize == 0 {
		c.TargetFileSize = 2 << 20
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4 << 10
	}
	if c.BlockRestartInterval == 0 {
		c.BlockRestartInterval = 16
	}
	if c.BloomBitsPerKey == 0 {
		c.BloomBitsPerKey = 10
	}
	if c.BlockCacheSize == 0 {
		c.BlockCacheSize = 8 << 20
	}
	if c.TableCacheSize == 0 {
		c.TableCacheSize = 1000
	}
	if c.TopLevelBits == 0 {
		c.TopLevelBits = 22
	}
	if c.BitDecrement == 0 {
		c.BitDecrement = 2
	}
	if c.MaxSSTablesPerGuard == 0 {
		c.MaxSSTablesPerGuard = 4
	}
	if c.GuardHashSeed == 0 {
		c.GuardHashSeed = 0x9747b28c
	}
	if c.SizeRatioPct == 0 {
		c.SizeRatioPct = 25
	}
	if c.LastLevelRewriteFactor == 0 {
		c.LastLevelRewriteFactor = 25
	}
	if c.SeekCompactionThreshold == 0 {
		c.SeekCompactionThreshold = 10
	}
	if c.MaxCompactionConcurrency == 0 {
		c.MaxCompactionConcurrency = 3
	}
	if c.CompactionUnitGuards == 0 {
		c.CompactionUnitGuards = 4
	}
	if c.BgErrorRetries == 0 {
		c.BgErrorRetries = 3
	}
	if c.BgErrorRetryDelay == 0 {
		c.BgErrorRetryDelay = 50 * time.Millisecond
	}
}

// Validate rejects configurations the trees cannot honor.
func (c *Config) Validate() error {
	if c.NumLevels < 3 {
		return fmt.Errorf("base: NumLevels must be >= 3, got %d", c.NumLevels)
	}
	if c.L0SlowdownTrigger < c.L0CompactionTrigger {
		return fmt.Errorf("base: L0SlowdownTrigger (%d) < L0CompactionTrigger (%d)",
			c.L0SlowdownTrigger, c.L0CompactionTrigger)
	}
	if c.L0StopTrigger < c.L0SlowdownTrigger {
		return fmt.Errorf("base: L0StopTrigger (%d) < L0SlowdownTrigger (%d)",
			c.L0StopTrigger, c.L0SlowdownTrigger)
	}
	if c.MaxSSTablesPerGuard < 1 {
		return fmt.Errorf("base: MaxSSTablesPerGuard must be >= 1, got %d", c.MaxSSTablesPerGuard)
	}
	if c.CompactionUnitGuards < 1 {
		return fmt.Errorf("base: CompactionUnitGuards must be >= 1, got %d", c.CompactionUnitGuards)
	}
	if c.BitDecrement < 1 {
		return fmt.Errorf("base: BitDecrement must be >= 1, got %d", c.BitDecrement)
	}
	if c.PrefixBloomLength < 0 || c.PrefixBloomLength > 255 {
		return fmt.Errorf("base: PrefixBloomLength must be in [0, 255], got %d", c.PrefixBloomLength)
	}
	return nil
}

// MaxBytesForLevel returns the soft size limit of the given level (level 0
// is bounded by file count, not bytes).
func (c *Config) MaxBytesForLevel(level int) int64 {
	b := c.LevelBaseBytes
	for l := 1; l < level; l++ {
		b *= int64(c.LevelMultiplier)
	}
	return b
}

// Logf logs through the configured logger, if any.
func (c *Config) Logf(format string, args ...interface{}) {
	if c.Logger != nil {
		c.Logger(format, args...)
	}
}

// SlowOpLogf routes a slow-op line through SlowOpLogger, falling back to
// the diagnostic Logger.
func (c *Config) SlowOpLogf(format string, args ...interface{}) {
	if c.SlowOpLogger != nil {
		c.SlowOpLogger(format, args...)
		return
	}
	if c.Logger != nil {
		c.Logger(format, args...)
	}
}

// Emit notifies the configured event listener, if any.
func (c *Config) Emit(e obs.Event) {
	if c.EventListener != nil {
		c.EventListener.Notify(e)
	}
}
