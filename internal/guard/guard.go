// Package guard implements FLSM guards (§3.1–§3.3, §4.4): the skip-list-
// inspired partitioning of each level's key space. A guard is chosen
// probabilistically from inserted keys by hashing the key and counting
// consecutive least-significant set bits; a key that qualifies at level i
// qualifies at every deeper level, so the guards of level i+1 are a strict
// superset of the guards of level i.
package guard

import (
	"bytes"
	"math/bits"
	"sort"

	"pebblesdb/internal/base"
	"pebblesdb/internal/murmur"
)

// Picker decides which inserted keys become guards and at which level.
type Picker struct {
	// TopLevelBits is the number of consecutive LSBs that must be set for
	// a key to be a guard at level 1.
	TopLevelBits int
	// BitDecrement relaxes the requirement by this many bits per level.
	BitDecrement int
	// NumLevels is the total level count including L0 (guards exist for
	// levels 1..NumLevels-1).
	NumLevels int
	// Seed seeds the hash.
	Seed uint64
}

// requiredBits returns the LSB-run length required at the given level
// (1-based), clamped to at least 1.
func (p Picker) requiredBits(level int) int {
	r := p.TopLevelBits - (level-1)*p.BitDecrement
	if r < 1 {
		r = 1
	}
	return r
}

// GuardLevel returns the shallowest level (1-based) at which ukey is a
// guard, and ok=false if it is a guard at no level.
func (p Picker) GuardLevel(ukey []byte) (level int, ok bool) {
	h := murmur.Hash64(ukey, p.Seed)
	run := bits.TrailingZeros64(^h) // length of trailing 1s run
	// requiredBits decreases with level, so scan from the top.
	for l := 1; l < p.NumLevels; l++ {
		if run >= p.requiredBits(l) {
			return l, true
		}
	}
	return 0, false
}

// Guard is one guard within a level: its key and the sstables attached to
// it. Files may have overlapping key ranges with each other (the FLSM
// relaxation), but every file lies within [Key, nextGuard.Key). The
// sentinel guard (keys below the first guard) is represented separately in
// the level structure, not as a Guard with a nil key.
type Guard struct {
	// Key is the guard's user key; sstables attached hold keys >= Key.
	Key []byte
	// Files are the attached sstables.
	Files []*base.FileMetadata
}

// TotalBytes sums the sizes of the guard's files.
func (g *Guard) TotalBytes() uint64 {
	var t uint64
	for _, f := range g.Files {
		t += f.Size
	}
	return t
}

// FindGuard returns the index of the guard interval containing ukey:
// -1 for the sentinel (ukey < guards[0].Key), otherwise the largest i with
// guards[i].Key <= ukey. guards must be sorted by Key.
func FindGuard(guards []Guard, ukey []byte) int {
	// sort.Search finds the first guard with Key > ukey.
	i := sort.Search(len(guards), func(i int) bool {
		return bytes.Compare(guards[i].Key, ukey) > 0
	})
	return i - 1
}

// FindGuardKey is FindGuard over bare keys.
func FindGuardKey(keys [][]byte, ukey []byte) int {
	i := sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(keys[i], ukey) > 0
	})
	return i - 1
}

// InsertKey inserts ukey into a sorted key list if not present, returning
// the (possibly new) list.
func InsertKey(keys [][]byte, ukey []byte) [][]byte {
	i := sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(keys[i], ukey) >= 0
	})
	if i < len(keys) && bytes.Equal(keys[i], ukey) {
		return keys
	}
	keys = append(keys, nil)
	copy(keys[i+1:], keys[i:])
	keys[i] = append([]byte(nil), ukey...)
	return keys
}
