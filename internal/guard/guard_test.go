package guard

import (
	"bytes"
	"fmt"
	"testing"

	"pebblesdb/internal/base"
)

func TestGuardLevelMonotonic(t *testing.T) {
	// Skip-list property: a guard at level i is a guard at all deeper
	// levels. With our required-bits scheme this is structural; verify the
	// picker agrees for a large sample.
	p := Picker{TopLevelBits: 12, BitDecrement: 2, NumLevels: 7, Seed: 0x9747b28c}
	guards := 0
	for i := 0; i < 100000; i++ {
		key := []byte(fmt.Sprintf("user%09d", i))
		if level, ok := p.GuardLevel(key); ok {
			guards++
			if level < 1 || level >= p.NumLevels {
				t.Fatalf("guard level %d out of range", level)
			}
			// requiredBits(level) satisfied implies requiredBits(level+1)
			// satisfied (it is smaller); GuardLevel returns the smallest
			// qualifying level, so deeper levels qualify by construction.
		}
	}
	if guards == 0 {
		t.Fatal("no guards selected in 100k keys")
	}
}

func TestGuardDensityIncreasesWithLevel(t *testing.T) {
	p := Picker{TopLevelBits: 14, BitDecrement: 2, NumLevels: 7, Seed: 1}
	counts := make([]int, p.NumLevels)
	const n = 300000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user%09d", i))
		if level, ok := p.GuardLevel(key); ok {
			for l := level; l < p.NumLevels; l++ {
				counts[l]++
			}
		}
	}
	for l := 2; l < p.NumLevels; l++ {
		if counts[l] < counts[l-1] {
			t.Fatalf("level %d has fewer guards (%d) than level %d (%d)",
				l, counts[l], l-1, counts[l-1])
		}
	}
	// Guard probability at the last level is 2^-(14-2*5)=2^-4; expect
	// roughly n/16 guards.
	want := float64(n) / 16
	got := float64(counts[p.NumLevels-1])
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("last level guards %d, want ~%.0f", counts[p.NumLevels-1], want)
	}
}

func TestGuardSelectionDeterministic(t *testing.T) {
	p := Picker{TopLevelBits: 10, BitDecrement: 2, NumLevels: 7, Seed: 42}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("k%06d", i))
		l1, ok1 := p.GuardLevel(key)
		l2, ok2 := p.GuardLevel(key)
		if l1 != l2 || ok1 != ok2 {
			t.Fatal("guard selection must be deterministic")
		}
	}
}

func TestFindGuard(t *testing.T) {
	guards := []Guard{
		{Key: []byte("f")},
		{Key: []byte("m")},
		{Key: []byte("t")},
	}
	cases := []struct {
		key  string
		want int
	}{
		{"a", -1}, // sentinel
		{"e", -1},
		{"f", 0}, // guard key belongs to its own guard
		{"g", 0},
		{"m", 1},
		{"s", 1},
		{"t", 2},
		{"z", 2},
	}
	for _, c := range cases {
		if got := FindGuard(guards, []byte(c.key)); got != c.want {
			t.Fatalf("FindGuard(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	if FindGuard(nil, []byte("x")) != -1 {
		t.Fatal("empty guard list should map to sentinel")
	}
}

func TestInsertKeySortedUnique(t *testing.T) {
	var keys [][]byte
	for _, k := range []string{"m", "c", "x", "c", "a", "m"} {
		keys = InsertKey(keys, []byte(k))
	}
	want := []string{"a", "c", "m", "x"}
	if len(keys) != len(want) {
		t.Fatalf("got %d keys", len(keys))
	}
	for i, w := range want {
		if string(keys[i]) != w {
			t.Fatalf("pos %d: %q want %q", i, keys[i], w)
		}
	}
}

func TestInsertKeyCopies(t *testing.T) {
	buf := []byte("mutable")
	keys := InsertKey(nil, buf)
	buf[0] = 'X'
	if string(keys[0]) != "mutable" {
		t.Fatal("InsertKey must copy the key")
	}
}

func TestGuardTotalBytes(t *testing.T) {
	g := Guard{Files: []*base.FileMetadata{{Size: 10}, {Size: 32}}}
	if g.TotalBytes() != 42 {
		t.Fatalf("total %d", g.TotalBytes())
	}
}

func TestFindGuardKeyMatchesFindGuard(t *testing.T) {
	keys := [][]byte{[]byte("f"), []byte("m"), []byte("t")}
	guards := []Guard{{Key: keys[0]}, {Key: keys[1]}, {Key: keys[2]}}
	for _, probe := range []string{"a", "f", "g", "m", "z"} {
		if FindGuardKey(keys, []byte(probe)) != FindGuard(guards, []byte(probe)) {
			t.Fatalf("mismatch for %q", probe)
		}
	}
	_ = bytes.MinRead
}
