package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestAddAndIterateSorted(t *testing.T) {
	s := New(bytes.Compare)
	rng := rand.New(rand.NewSource(1))
	n := 2000
	keys := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%08d", rng.Intn(1<<30))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		s.Add([]byte(k), []byte("v"+k))
	}
	sort.Strings(keys)

	it := s.NewIter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("position %d: got %q want %q", i, it.Key(), keys[i])
		}
		if string(it.Value()) != "v"+keys[i] {
			t.Fatalf("value mismatch at %q", keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d of %d keys", i, len(keys))
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", s.Len(), len(keys))
	}
}

func TestSeekGE(t *testing.T) {
	s := New(bytes.Compare)
	for i := 0; i < 100; i += 2 {
		k := fmt.Sprintf("k%03d", i)
		s.Add([]byte(k), nil)
	}
	it := s.NewIter()

	it.SeekGE([]byte("k010")) // exact
	if !it.Valid() || string(it.Key()) != "k010" {
		t.Fatalf("exact seek: %q", it.Key())
	}
	it.SeekGE([]byte("k011")) // between
	if !it.Valid() || string(it.Key()) != "k012" {
		t.Fatalf("between seek: %q", it.Key())
	}
	it.SeekGE([]byte("")) // before all
	if !it.Valid() || string(it.Key()) != "k000" {
		t.Fatalf("before-all seek: %q", it.Key())
	}
	it.SeekGE([]byte("z")) // past all
	if it.Valid() {
		t.Fatal("past-all seek should be invalid")
	}
}

func TestEmptyList(t *testing.T) {
	s := New(bytes.Compare)
	it := s.NewIter()
	it.First()
	if it.Valid() {
		t.Fatal("empty list iterator should be invalid")
	}
	it.SeekGE([]byte("x"))
	if it.Valid() {
		t.Fatal("empty list seek should be invalid")
	}
	if s.Len() != 0 || s.ApproxSize() != 0 {
		t.Fatal("empty list should report zero size")
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	// One writer inserts while readers iterate; readers must never observe
	// out-of-order keys or crash. Run under -race to validate the memory
	// model usage.
	s := New(bytes.Compare)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := s.NewIter()
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						panic("out of order during concurrent read")
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}

	for i := 0; i < 20000; i++ {
		s.Add([]byte(fmt.Sprintf("key%08d", i*7919%1000000)), []byte("v"))
	}
	close(stop)
	wg.Wait()
}

func TestApproxSizeGrows(t *testing.T) {
	s := New(bytes.Compare)
	before := s.ApproxSize()
	s.Add([]byte("key"), make([]byte, 1000))
	if s.ApproxSize() <= before+1000 {
		t.Fatal("size should grow by at least the value size")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(bytes.Compare)
	key := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i)*2654435761)
		s.Add(append([]byte(nil), key...), nil)
	}
}

func BenchmarkSeekGE(b *testing.B) {
	s := New(bytes.Compare)
	key := make([]byte, 16)
	for i := 0; i < 100000; i++ {
		binaryPut(key, uint64(i)*7919)
		s.Add(append([]byte(nil), key...), nil)
	}
	it := s.NewIter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i)*104729)
		it.SeekGE(key)
	}
}

// binaryPut writes v as big-endian into the first 8 bytes of dst.
func binaryPut(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}
