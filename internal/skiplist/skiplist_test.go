package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAddAndIterateSorted(t *testing.T) {
	s := New(bytes.Compare)
	rng := rand.New(rand.NewSource(1))
	n := 2000
	keys := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%08d", rng.Intn(1<<30))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		s.Add([]byte(k), []byte("v"+k))
	}
	sort.Strings(keys)

	it := s.NewIter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("position %d: got %q want %q", i, it.Key(), keys[i])
		}
		if string(it.Value()) != "v"+keys[i] {
			t.Fatalf("value mismatch at %q", keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d of %d keys", i, len(keys))
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", s.Len(), len(keys))
	}
}

func TestSeekGE(t *testing.T) {
	s := New(bytes.Compare)
	for i := 0; i < 100; i += 2 {
		k := fmt.Sprintf("k%03d", i)
		s.Add([]byte(k), nil)
	}
	it := s.NewIter()

	it.SeekGE([]byte("k010")) // exact
	if !it.Valid() || string(it.Key()) != "k010" {
		t.Fatalf("exact seek: %q", it.Key())
	}
	it.SeekGE([]byte("k011")) // between
	if !it.Valid() || string(it.Key()) != "k012" {
		t.Fatalf("between seek: %q", it.Key())
	}
	it.SeekGE([]byte("")) // before all
	if !it.Valid() || string(it.Key()) != "k000" {
		t.Fatalf("before-all seek: %q", it.Key())
	}
	it.SeekGE([]byte("z")) // past all
	if it.Valid() {
		t.Fatal("past-all seek should be invalid")
	}
}

func TestEmptyList(t *testing.T) {
	s := New(bytes.Compare)
	it := s.NewIter()
	it.First()
	if it.Valid() {
		t.Fatal("empty list iterator should be invalid")
	}
	it.SeekGE([]byte("x"))
	if it.Valid() {
		t.Fatal("empty list seek should be invalid")
	}
	if s.Len() != 0 || s.ApproxSize() != 0 {
		t.Fatal("empty list should report zero size")
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	// One writer inserts while readers iterate; readers must never observe
	// out-of-order keys or crash. Run under -race to validate the memory
	// model usage.
	s := New(bytes.Compare)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := s.NewIter()
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						panic("out of order during concurrent read")
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}

	for i := 0; i < 20000; i++ {
		s.Add([]byte(fmt.Sprintf("key%08d", i*7919%1000000)), []byte("v"))
	}
	close(stop)
	wg.Wait()
}

func TestApproxSizeGrows(t *testing.T) {
	s := New(bytes.Compare)
	before := s.ApproxSize()
	s.Add([]byte("key"), make([]byte, 1000))
	if s.ApproxSize() <= before+1000 {
		t.Fatal("size should grow by at least the value size")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(bytes.Compare)
	key := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i)*2654435761)
		s.Add(append([]byte(nil), key...), nil)
	}
}

func BenchmarkSeekGE(b *testing.B) {
	s := New(bytes.Compare)
	key := make([]byte, 16)
	for i := 0; i < 100000; i++ {
		binaryPut(key, uint64(i)*7919)
		s.Add(append([]byte(nil), key...), nil)
	}
	it := s.NewIter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i)*104729)
		it.SeekGE(key)
	}
}

// binaryPut writes v as big-endian into the first 8 bytes of dst.
func binaryPut(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}

// TestConcurrentAdd exercises the CAS-linked insert path: many goroutines
// insert disjoint key sets concurrently, and the final list must contain
// every key exactly once, in sorted order, at every level's reachability.
func TestConcurrentAdd(t *testing.T) {
	s := New(bytes.Compare)
	const (
		goroutines = 8
		perG       = 3000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Interleave key ranges across goroutines so CAS retries at
			// shared splice points actually happen.
			for i := 0; i < perG; i++ {
				k := []byte(fmt.Sprintf("key%08d", i*goroutines+g))
				s.Add(k, []byte(fmt.Sprintf("val%d", g)))
			}
		}(g)
	}
	wg.Wait()

	if got, want := s.Len(), goroutines*perG; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	it := s.NewIter()
	n := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violation at %d: %q then %q", n, prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("iterated %d entries, want %d", n, goroutines*perG)
	}
	// Every key must be findable by SeekGE (checks upper-level links too).
	for i := 0; i < goroutines*perG; i += 97 {
		k := []byte(fmt.Sprintf("key%08d", i))
		it.SeekGE(k)
		if !it.Valid() || !bytes.Equal(it.Key(), k) {
			t.Fatalf("SeekGE lost key %q", k)
		}
	}
}

// TestConcurrentAddWithReaders runs readers over the list while writers
// insert; readers must always observe a sorted, prefix-consistent view.
func TestConcurrentAddWithReaders(t *testing.T) {
	s := New(bytes.Compare)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := s.NewIter()
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Errorf("reader saw order violation: %q then %q", prev, it.Key())
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				s.Add([]byte(fmt.Sprintf("key%08d", i*4+g)), nil)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// BenchmarkAddParallel measures concurrent insert throughput (the
// memtable's write path under the group-commit pipeline).
func BenchmarkAddParallel(b *testing.B) {
	s := New(bytes.Compare)
	var ctr int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&ctr, 1)
			s.Add([]byte(fmt.Sprintf("key%016d", i)), nil)
		}
	})
}
