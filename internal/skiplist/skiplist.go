// Package skiplist provides the in-memory sorted structure underlying the
// memtable (§2.2: "the put() operation writes the key-value pair ... to an
// in-memory skip list"). The list supports any number of concurrent
// writers and lock-free readers: next pointers are spliced with
// compare-and-swap, nodes are immutable after linking, and nothing is ever
// unlinked. This is what lets the engine's group-commit pipeline apply
// concurrent writers' batches to the memtable in parallel.
package skiplist

import (
	"sync/atomic"
)

const maxHeight = 12

// Skiplist is an ordered map from byte-slice keys to byte-slice values.
// Keys must be unique; the memtable guarantees this by suffixing every key
// with a fresh sequence number.
type Skiplist struct {
	head   *node
	height atomic.Int32
	cmp    func(a, b []byte) int
	size   atomic.Int64
	count  atomic.Int64
	rnd    atomic.Uint64
}

type node struct {
	key   []byte
	value []byte
	next  []atomic.Pointer[node]
}

// New returns an empty skiplist ordered by cmp.
func New(cmp func(a, b []byte) int) *Skiplist {
	s := &Skiplist{
		head: &node{next: make([]atomic.Pointer[node], maxHeight)},
		cmp:  cmp,
	}
	s.height.Store(1)
	return s
}

// randomHeight derives per-insert random state from a wait-free counter
// pushed through a splitmix64 finalizer, so concurrent inserts never
// contend on a shared PRNG; p(level up) = 1/4 as in LevelDB.
func (s *Skiplist) randomHeight() int {
	x := s.rnd.Add(1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	h := 1
	for h < maxHeight && x&3 == 0 {
		h++
		x >>= 2
	}
	return h
}

// findGE returns the first node with key >= target, filling prev with the
// rightmost node at each level whose key < target (when prev is non-nil).
func (s *Skiplist) findGE(target []byte, prev *[maxHeight]*node) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && s.cmp(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLT returns the rightmost node with key < target, or nil when every
// node's key is >= target.
func (s *Skiplist) findLT(target []byte) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && s.cmp(next.key, target) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == s.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the last node, or nil when the list is empty.
func (s *Skiplist) findLast() *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == s.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findSplice fills prev/next with the splice points for key at every
// level: prev[i].key < key <= next[i].key (next[i] may be nil). It scans
// from maxHeight-1 so a concurrent height increase cannot be missed.
func (s *Skiplist) findSplice(key []byte, prev, next *[maxHeight]*node) {
	x := s.head
	for level := maxHeight - 1; level >= 0; level-- {
		nx := x.next[level].Load()
		for nx != nil && s.cmp(nx.key, key) < 0 {
			x = nx
			nx = x.next[level].Load()
		}
		prev[level] = x
		next[level] = nx
	}
}

// findSpliceForLevel recomputes the splice at one level after a CAS
// failure, walking forward from start (whose key is known to be < key).
func (s *Skiplist) findSpliceForLevel(key []byte, level int, start *node) (prev, next *node) {
	prev = start
	for {
		next = prev.next[level].Load()
		if next == nil || s.cmp(next.key, key) >= 0 {
			return prev, next
		}
		prev = next
	}
}

// Add inserts key with value. The caller must ensure the key is not already
// present. Add is safe for concurrent use: each next pointer is spliced
// with a CAS, retrying from a recomputed splice point on contention.
func (s *Skiplist) Add(key, value []byte) {
	h := s.randomHeight()
	for {
		cur := s.height.Load()
		if int(cur) >= h || s.height.CompareAndSwap(cur, int32(h)) {
			break
		}
	}

	var prev, next [maxHeight]*node
	s.findSplice(key, &prev, &next)

	n := &node{key: key, value: value, next: make([]atomic.Pointer[node], h)}
	for i := 0; i < h; i++ {
		p, nx := prev[i], next[i]
		for {
			n.next[i].Store(nx)
			if p.next[i].CompareAndSwap(nx, n) {
				break
			}
			// Lost the race at this level: another insert landed between
			// p and nx. Re-search from p (its key is still < ours; nodes
			// are never unlinked) and retry the splice.
			p, nx = s.findSpliceForLevel(key, i, p)
		}
	}
	s.size.Add(int64(len(key) + len(value) + 64))
	s.count.Add(1)
}

// FindGE returns the first entry with key >= target, without materializing
// an iterator — the memtable's point-read fast path.
func (s *Skiplist) FindGE(target []byte) (key, value []byte, ok bool) {
	n := s.findGE(target, nil)
	if n == nil {
		return nil, nil, false
	}
	return n.key, n.value, true
}

// ApproxSize returns the approximate memory footprint in bytes.
func (s *Skiplist) ApproxSize() int64 { return s.size.Load() }

// Len returns the number of entries.
func (s *Skiplist) Len() int { return int(s.count.Load()) }

// Iter is a cursor over the skiplist. It is valid to keep iterating while
// writers insert; the iterator observes a consistent ordering, possibly
// including concurrently inserted entries.
type Iter struct {
	list *Skiplist
	node *node
}

// NewIter returns an unpositioned iterator.
func (s *Skiplist) NewIter() *Iter { return &Iter{list: s} }

// InitIter readies a caller-allocated iterator, the allocation-free
// counterpart to NewIter for pooled iterator stacks.
func (s *Skiplist) InitIter(it *Iter) { *it = Iter{list: s} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.node != nil }

// Key returns the current key. Only valid when Valid().
func (it *Iter) Key() []byte { return it.node.key }

// Value returns the current value. Only valid when Valid().
func (it *Iter) Value() []byte { return it.node.value }

// First positions the iterator at the smallest entry.
func (it *Iter) First() {
	it.node = it.list.head.next[0].Load()
}

// SeekGE positions the iterator at the first entry with key >= target.
func (it *Iter) SeekGE(target []byte) {
	it.node = it.list.findGE(target, nil)
}

// SeekLT positions the iterator at the last entry with key < target.
func (it *Iter) SeekLT(target []byte) {
	it.node = it.list.findLT(target)
}

// Last positions the iterator at the largest entry.
func (it *Iter) Last() {
	it.node = it.list.findLast()
}

// Next advances to the next entry.
func (it *Iter) Next() {
	it.node = it.node.next[0].Load()
}

// Prev moves back one entry. The list is singly linked, so this re-descends
// from the head (O(log n), as in LevelDB's skiplist).
func (it *Iter) Prev() {
	it.node = it.list.findLT(it.node.key)
}
