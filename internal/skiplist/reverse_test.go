package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildList(n int, seed int64) (*Skiplist, []string) {
	rng := rand.New(rand.NewSource(seed))
	s := New(bytes.Compare)
	seen := map[string]bool{}
	for len(seen) < n {
		k := fmt.Sprintf("key%08d", rng.Intn(1<<28))
		if !seen[k] {
			seen[k] = true
			s.Add([]byte(k), []byte("v:"+k))
		}
	}
	keys := make([]string, 0, n)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return s, keys
}

func TestIterReverse(t *testing.T) {
	s, keys := buildList(500, 1)
	it := s.NewIter()
	i := len(keys) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("pos %d: got %q want %q", i, it.Key(), keys[i])
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse visited %d of %d", len(keys)-1-i, len(keys))
	}
}

func TestIterSeekLT(t *testing.T) {
	s, keys := buildList(300, 2)
	it := s.NewIter()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		target := fmt.Sprintf("key%08d", rng.Intn(1<<28))
		want := sort.SearchStrings(keys, target) - 1
		it.SeekLT([]byte(target))
		if want < 0 {
			if it.Valid() {
				t.Fatalf("SeekLT(%q): got %q want invalid", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != keys[want] {
			t.Fatalf("SeekLT(%q): got %v want %q", target, string(it.Key()), keys[want])
		}
	}
	// Strictness on exact keys.
	it.SeekLT([]byte(keys[0]))
	if it.Valid() {
		t.Fatal("SeekLT(first) should be invalid")
	}
	it.SeekLT([]byte(keys[10]))
	if !it.Valid() || string(it.Key()) != keys[9] {
		t.Fatalf("SeekLT(keys[10]): got %v", string(it.Key()))
	}
}

func TestIterEmptyReverse(t *testing.T) {
	s := New(bytes.Compare)
	it := s.NewIter()
	it.Last()
	if it.Valid() {
		t.Fatal("Last on empty list should be invalid")
	}
	it.SeekLT([]byte("x"))
	if it.Valid() {
		t.Fatal("SeekLT on empty list should be invalid")
	}
}
