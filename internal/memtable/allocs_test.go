package memtable

import (
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/race"
)

// TestGetSearchAllocs pins the memtable point-read budgets: GetSearch with
// a caller-built search key is allocation-free; the Get convenience wrapper
// pays exactly the search-key construction.
func TestGetSearchAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	m := New()
	for i := byte(0); i < 100; i++ {
		m.Set([]byte{'k', i}, base.SeqNum(i)+1, base.KindSet, []byte{'v', i})
	}
	search := base.MakeSearchKey(nil, []byte{'k', 42}, base.MaxSeqNum)

	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, found := m.GetSearch(search); !found {
			t.Fatal("key not found")
		}
	})
	if allocs > 0 {
		t.Errorf("GetSearch allocs/op = %v, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(100, func() {
		if _, _, found := m.Get([]byte{'k', 42}, base.MaxSeqNum); !found {
			t.Fatal("key not found")
		}
	})
	if allocs > 1 {
		t.Errorf("Get allocs/op = %v, want <= 1 (the search key)", allocs)
	}
}
