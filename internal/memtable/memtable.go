// Package memtable wraps the skiplist with internal-key framing: every
// mutation is stored under user_key++trailer so that multiple versions of a
// key coexist and reads at a snapshot sequence number see the right one.
package memtable

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/skiplist"
)

// Memtable is an in-memory write buffer. A single writer (the engine's
// commit pipeline) calls Set; readers are lock-free.
type Memtable struct {
	list *skiplist.Skiplist
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{list: skiplist.New(base.InternalCompare)}
}

// Set records a mutation of kind (KindSet or KindDelete) at seq. Both key
// and value are copied: callers (the commit pipeline) own and may reuse
// their buffers — batches in particular are reusable after Apply.
func (m *Memtable) Set(ukey []byte, seq base.SeqNum, kind base.Kind, value []byte) {
	ikey := base.MakeInternalKey(make([]byte, 0, len(ukey)+base.TrailerLen), ukey, seq, kind)
	var v []byte
	if len(value) > 0 {
		v = append(make([]byte, 0, len(value)), value...)
	}
	m.list.Add(ikey, v)
}

// Get returns the newest entry for ukey visible at seq. found reports
// whether any version exists; if found and kind is KindDelete the key is
// deleted at this snapshot.
func (m *Memtable) Get(ukey []byte, seq base.SeqNum) (value []byte, kind base.Kind, found bool) {
	search := base.MakeSearchKey(make([]byte, 0, len(ukey)+base.TrailerLen), ukey, seq)
	it := m.list.NewIter()
	it.SeekGE(search)
	if !it.Valid() {
		return nil, 0, false
	}
	gotUkey, _, gotKind, ok := base.DecodeInternalKey(it.Key())
	if !ok || string(gotUkey) != string(ukey) {
		return nil, 0, false
	}
	return it.Value(), gotKind, true
}

// ApproxSize returns the approximate memory footprint in bytes.
func (m *Memtable) ApproxSize() int64 { return m.list.ApproxSize() }

// Len returns the number of entries.
func (m *Memtable) Len() int { return m.list.Len() }

// NewIter returns an iterator over the memtable's internal keys.
func (m *Memtable) NewIter() iterator.Iterator {
	return &memIter{it: m.list.NewIter()}
}

type memIter struct {
	it *skiplist.Iter
}

func (i *memIter) SeekGE(target []byte) { i.it.SeekGE(target) }
func (i *memIter) SeekLT(target []byte) { i.it.SeekLT(target) }
func (i *memIter) First()               { i.it.First() }
func (i *memIter) Last()                { i.it.Last() }
func (i *memIter) Next()                { i.it.Next() }
func (i *memIter) Prev()                { i.it.Prev() }
func (i *memIter) Valid() bool          { return i.it.Valid() }
func (i *memIter) Key() []byte          { return i.it.Key() }
func (i *memIter) Value() []byte        { return i.it.Value() }
func (i *memIter) Error() error         { return nil }
func (i *memIter) Close() error         { return nil }
