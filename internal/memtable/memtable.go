// Package memtable wraps the skiplist with internal-key framing: every
// mutation is stored under user_key++trailer so that multiple versions of a
// key coexist and reads at a snapshot sequence number see the right one.
package memtable

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/skiplist"
)

// Memtable is an in-memory write buffer. Set is safe for concurrent use
// (the engine's group-commit pipeline lets every committer apply its own
// batch in parallel); readers are lock-free.
//
// The writer-reservation counter coordinates memtable rotation: the commit
// leader reserves a writer slot for every batch it schedules onto this
// memtable, each applier releases its slot when done, and rotation waits
// for the count to drain before freezing the memtable, so no insert can
// land on a memtable that is being flushed.
type Memtable struct {
	list    *skiplist.Skiplist
	writers atomic.Int64

	// Range tombstones live outside the skiplist (the flush path writes
	// them into the sstable's dedicated range-del block, not the point
	// stream). The store is copy-on-write: DeleteRange rebuilds a fresh
	// fragmented List under rdMu and publishes it atomically, so readers —
	// including the zero-allocation point-read fast path — do one atomic
	// load and a binary search, with no locks and no allocation.
	rdMu    sync.Mutex
	rd      atomic.Pointer[rangedel.List]
	rdBytes atomic.Int64
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{list: skiplist.New(base.InternalCompare)}
}

// ReserveWriter registers an in-flight batch application. Called by the
// commit leader while it holds the commit lock, so a reservation can never
// race with rotation.
func (m *Memtable) ReserveWriter() { m.writers.Add(1) }

// WriterDone releases a reservation taken by ReserveWriter.
func (m *Memtable) WriterDone() { m.writers.Add(-1) }

// QuiesceWriters spins until every reserved writer has finished. Appliers
// do no IO, so the wait is short; the caller must hold the commit lock so
// no new reservations arrive.
func (m *Memtable) QuiesceWriters() {
	for m.writers.Load() > 0 {
		runtime.Gosched()
	}
}

// Set records a mutation of kind (KindSet or KindDelete) at seq. Both key
// and value are copied into a single allocation: callers (the commit
// pipeline) own and may reuse their buffers — batches in particular are
// reusable after Apply. Safe for concurrent use.
func (m *Memtable) Set(ukey []byte, seq base.SeqNum, kind base.Kind, value []byte) {
	n := len(ukey) + base.TrailerLen
	buf := base.MakeInternalKey(make([]byte, 0, n+len(value)), ukey, seq, kind)
	ikey := buf
	var v []byte
	if len(value) > 0 {
		buf = append(buf, value...)
		ikey = buf[:n:n]
		v = buf[n:]
	}
	m.list.Add(ikey, v)
}

// DeleteRange records a range tombstone over [start, end) at seq. Both
// keys are copied. Safe for concurrent use with readers and point Sets;
// concurrent DeleteRange calls serialize on an internal mutex.
func (m *Memtable) DeleteRange(start, end []byte, seq base.SeqNum) {
	if bytes.Compare(start, end) >= 0 {
		return
	}
	t := rangedel.Tombstone{
		Start: append([]byte(nil), start...),
		End:   append([]byte(nil), end...),
		Seq:   seq,
	}
	m.rdMu.Lock()
	// WithTombstone splices into the previous list's fragments instead of
	// re-fragmenting from scratch, keeping each DeleteRange linear in the
	// memtable's resident tombstone count.
	m.rd.Store(m.rd.Load().WithTombstone(t))
	m.rdMu.Unlock()
	m.rdBytes.Add(int64(len(start) + len(end) + base.TrailerLen))
}

// CoverSeq returns the newest range tombstone covering ukey visible at
// seq, or 0. Lock- and allocation-free.
func (m *Memtable) CoverSeq(ukey []byte, seq base.SeqNum) base.SeqNum {
	return m.rd.Load().CoverSeq(ukey, seq)
}

// RangeDels returns the memtable's range tombstones (the flush path writes
// them into the output table's range-del block). Nil when none exist. The
// returned slice is an immutable snapshot.
func (m *Memtable) RangeDels() []rangedel.Tombstone {
	return m.rd.Load().Raw()
}

// Get returns the newest entry for ukey visible at seq. found reports
// whether any version exists; if found and kind is KindDelete the key is
// deleted at this snapshot. Range tombstones are not consulted — callers
// compare the returned sequence number against CoverSeq. The search-key
// construction allocates; hot paths build the key once into a reusable
// buffer and call GetSearch.
func (m *Memtable) Get(ukey []byte, seq base.SeqNum) (value []byte, kind base.Kind, found bool) {
	search := base.MakeSearchKey(make([]byte, 0, len(ukey)+base.TrailerLen), ukey, seq)
	value, _, kind, found = m.GetSearch(search)
	return value, kind, found
}

// GetSearch is Get with a caller-built search key (base.MakeSearchKey into
// a reusable buffer): the allocation-free point-read path. The returned
// value aliases the memtable's internal storage; seq is the entry's
// sequence number, for visibility comparison against range tombstones.
func (m *Memtable) GetSearch(search []byte) (value []byte, seq base.SeqNum, kind base.Kind, found bool) {
	k, v, ok := m.list.FindGE(search)
	if !ok {
		return nil, 0, 0, false
	}
	gotUkey, gotSeq, gotKind, ok := base.DecodeInternalKey(k)
	if !ok || !bytes.Equal(gotUkey, base.UserKey(search)) {
		return nil, 0, 0, false
	}
	return v, gotSeq, gotKind, true
}

// ApproxSize returns the approximate memory footprint in bytes.
func (m *Memtable) ApproxSize() int64 { return m.list.ApproxSize() + m.rdBytes.Load() }

// Len returns the number of point entries.
func (m *Memtable) Len() int { return m.list.Len() }

// Empty reports whether the memtable holds no point entries and no range
// tombstones (nothing to flush).
func (m *Memtable) Empty() bool { return m.list.Len() == 0 && m.rd.Load().Empty() }

// NewIter returns an iterator over the memtable's internal keys.
func (m *Memtable) NewIter() iterator.Iterator {
	it := &Iter{}
	m.InitIter(it)
	return it
}

// InitIter readies a caller-allocated Iter over the memtable's internal
// keys. Pooled iterator stacks embed Iter by value and re-arm it here, so
// opening the memtable leg of a scan allocates nothing.
func (m *Memtable) InitIter(it *Iter) { m.list.InitIter(&it.it) }

// Iter iterates over a memtable's internal keys. The zero value is not
// usable; obtain one from NewIter or arm it with InitIter.
type Iter struct {
	it skiplist.Iter
}

func (i *Iter) SeekGE(target []byte) { i.it.SeekGE(target) }
func (i *Iter) SeekLT(target []byte) { i.it.SeekLT(target) }
func (i *Iter) First()               { i.it.First() }
func (i *Iter) Last()                { i.it.Last() }
func (i *Iter) Next()                { i.it.Next() }
func (i *Iter) Prev()                { i.it.Prev() }
func (i *Iter) Valid() bool          { return i.it.Valid() }
func (i *Iter) Key() []byte          { return i.it.Key() }
func (i *Iter) Value() []byte        { return i.it.Value() }
func (i *Iter) Error() error         { return nil }
func (i *Iter) Close() error         { return nil }
