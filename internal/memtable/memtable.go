// Package memtable wraps the skiplist with internal-key framing: every
// mutation is stored under user_key++trailer so that multiple versions of a
// key coexist and reads at a snapshot sequence number see the right one.
package memtable

import (
	"bytes"
	"runtime"
	"sync/atomic"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/skiplist"
)

// Memtable is an in-memory write buffer. Set is safe for concurrent use
// (the engine's group-commit pipeline lets every committer apply its own
// batch in parallel); readers are lock-free.
//
// The writer-reservation counter coordinates memtable rotation: the commit
// leader reserves a writer slot for every batch it schedules onto this
// memtable, each applier releases its slot when done, and rotation waits
// for the count to drain before freezing the memtable, so no insert can
// land on a memtable that is being flushed.
type Memtable struct {
	list    *skiplist.Skiplist
	writers atomic.Int64
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{list: skiplist.New(base.InternalCompare)}
}

// ReserveWriter registers an in-flight batch application. Called by the
// commit leader while it holds the commit lock, so a reservation can never
// race with rotation.
func (m *Memtable) ReserveWriter() { m.writers.Add(1) }

// WriterDone releases a reservation taken by ReserveWriter.
func (m *Memtable) WriterDone() { m.writers.Add(-1) }

// QuiesceWriters spins until every reserved writer has finished. Appliers
// do no IO, so the wait is short; the caller must hold the commit lock so
// no new reservations arrive.
func (m *Memtable) QuiesceWriters() {
	for m.writers.Load() > 0 {
		runtime.Gosched()
	}
}

// Set records a mutation of kind (KindSet or KindDelete) at seq. Both key
// and value are copied into a single allocation: callers (the commit
// pipeline) own and may reuse their buffers — batches in particular are
// reusable after Apply. Safe for concurrent use.
func (m *Memtable) Set(ukey []byte, seq base.SeqNum, kind base.Kind, value []byte) {
	n := len(ukey) + base.TrailerLen
	buf := base.MakeInternalKey(make([]byte, 0, n+len(value)), ukey, seq, kind)
	ikey := buf
	var v []byte
	if len(value) > 0 {
		buf = append(buf, value...)
		ikey = buf[:n:n]
		v = buf[n:]
	}
	m.list.Add(ikey, v)
}

// Get returns the newest entry for ukey visible at seq. found reports
// whether any version exists; if found and kind is KindDelete the key is
// deleted at this snapshot. The search-key construction allocates; hot
// paths build the key once into a reusable buffer and call GetSearch.
func (m *Memtable) Get(ukey []byte, seq base.SeqNum) (value []byte, kind base.Kind, found bool) {
	search := base.MakeSearchKey(make([]byte, 0, len(ukey)+base.TrailerLen), ukey, seq)
	return m.GetSearch(search)
}

// GetSearch is Get with a caller-built search key (base.MakeSearchKey into
// a reusable buffer): the allocation-free point-read path. The returned
// value aliases the memtable's internal storage.
func (m *Memtable) GetSearch(search []byte) (value []byte, kind base.Kind, found bool) {
	k, v, ok := m.list.FindGE(search)
	if !ok {
		return nil, 0, false
	}
	gotUkey, _, gotKind, ok := base.DecodeInternalKey(k)
	if !ok || !bytes.Equal(gotUkey, base.UserKey(search)) {
		return nil, 0, false
	}
	return v, gotKind, true
}

// ApproxSize returns the approximate memory footprint in bytes.
func (m *Memtable) ApproxSize() int64 { return m.list.ApproxSize() }

// Len returns the number of entries.
func (m *Memtable) Len() int { return m.list.Len() }

// NewIter returns an iterator over the memtable's internal keys.
func (m *Memtable) NewIter() iterator.Iterator {
	return &memIter{it: m.list.NewIter()}
}

type memIter struct {
	it *skiplist.Iter
}

func (i *memIter) SeekGE(target []byte) { i.it.SeekGE(target) }
func (i *memIter) SeekLT(target []byte) { i.it.SeekLT(target) }
func (i *memIter) First()               { i.it.First() }
func (i *memIter) Last()                { i.it.Last() }
func (i *memIter) Next()                { i.it.Next() }
func (i *memIter) Prev()                { i.it.Prev() }
func (i *memIter) Valid() bool          { return i.it.Valid() }
func (i *memIter) Key() []byte          { return i.it.Key() }
func (i *memIter) Value() []byte        { return i.it.Value() }
func (i *memIter) Error() error         { return nil }
func (i *memIter) Close() error         { return nil }
