package memtable

import (
	"fmt"
	"testing"

	"pebblesdb/internal/base"
)

func TestSetGetLatestWins(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 1, base.KindSet, []byte("v1"))
	m.Set([]byte("k"), 2, base.KindSet, []byte("v2"))

	v, kind, ok := m.Get([]byte("k"), base.MaxSeqNum)
	if !ok || kind != base.KindSet || string(v) != "v2" {
		t.Fatalf("latest read: %q %v %v", v, kind, ok)
	}
}

func TestSnapshotReads(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 5, base.KindSet, []byte("old"))
	m.Set([]byte("k"), 10, base.KindSet, []byte("new"))

	if v, _, ok := m.Get([]byte("k"), 7); !ok || string(v) != "old" {
		t.Fatalf("read at seq 7: %q ok=%v", v, ok)
	}
	if v, _, ok := m.Get([]byte("k"), 10); !ok || string(v) != "new" {
		t.Fatalf("read at seq 10: %q ok=%v", v, ok)
	}
	if _, _, ok := m.Get([]byte("k"), 4); ok {
		t.Fatal("read below first version should miss")
	}
}

func TestTombstoneVisible(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 1, base.KindSet, []byte("v"))
	m.Set([]byte("k"), 2, base.KindDelete, nil)

	_, kind, ok := m.Get([]byte("k"), base.MaxSeqNum)
	if !ok || kind != base.KindDelete {
		t.Fatalf("tombstone read: kind=%v ok=%v", kind, ok)
	}
	// Below the tombstone the old value is visible.
	v, kind, ok := m.Get([]byte("k"), 1)
	if !ok || kind != base.KindSet || string(v) != "v" {
		t.Fatal("pre-tombstone read failed")
	}
}

func TestGetMissesSimilarKeys(t *testing.T) {
	m := New()
	m.Set([]byte("abc"), 1, base.KindSet, []byte("v"))
	if _, _, ok := m.Get([]byte("ab"), base.MaxSeqNum); ok {
		t.Fatal("prefix key should miss")
	}
	if _, _, ok := m.Get([]byte("abcd"), base.MaxSeqNum); ok {
		t.Fatal("extension key should miss")
	}
}

func TestIterYieldsInternalOrder(t *testing.T) {
	m := New()
	m.Set([]byte("a"), 1, base.KindSet, []byte("v1"))
	m.Set([]byte("a"), 3, base.KindSet, []byte("v3"))
	m.Set([]byte("b"), 2, base.KindSet, []byte("v2"))

	it := m.NewIter()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		ukey, seq, _, _ := base.DecodeInternalKey(it.Key())
		got = append(got, fmt.Sprintf("%s@%d", ukey, seq))
	}
	want := []string{"a@3", "a@1", "b@2"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v want %v", i, got, want)
		}
	}
}

func TestLenAndSize(t *testing.T) {
	m := New()
	if m.Len() != 0 {
		t.Fatal("fresh memtable should be empty")
	}
	for i := 0; i < 100; i++ {
		m.Set([]byte(fmt.Sprintf("k%03d", i)), base.SeqNum(i+1), base.KindSet, []byte("v"))
	}
	if m.Len() != 100 {
		t.Fatalf("Len=%d", m.Len())
	}
	if m.ApproxSize() <= 0 {
		t.Fatal("size should be positive")
	}
}
