package memtable

import (
	"encoding/binary"
	"fmt"
	"testing"

	"pebblesdb/internal/base"
)

func TestSetGetLatestWins(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 1, base.KindSet, []byte("v1"))
	m.Set([]byte("k"), 2, base.KindSet, []byte("v2"))

	v, kind, ok := m.Get([]byte("k"), base.MaxSeqNum)
	if !ok || kind != base.KindSet || string(v) != "v2" {
		t.Fatalf("latest read: %q %v %v", v, kind, ok)
	}
}

func TestSnapshotReads(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 5, base.KindSet, []byte("old"))
	m.Set([]byte("k"), 10, base.KindSet, []byte("new"))

	if v, _, ok := m.Get([]byte("k"), 7); !ok || string(v) != "old" {
		t.Fatalf("read at seq 7: %q ok=%v", v, ok)
	}
	if v, _, ok := m.Get([]byte("k"), 10); !ok || string(v) != "new" {
		t.Fatalf("read at seq 10: %q ok=%v", v, ok)
	}
	if _, _, ok := m.Get([]byte("k"), 4); ok {
		t.Fatal("read below first version should miss")
	}
}

func TestTombstoneVisible(t *testing.T) {
	m := New()
	m.Set([]byte("k"), 1, base.KindSet, []byte("v"))
	m.Set([]byte("k"), 2, base.KindDelete, nil)

	_, kind, ok := m.Get([]byte("k"), base.MaxSeqNum)
	if !ok || kind != base.KindDelete {
		t.Fatalf("tombstone read: kind=%v ok=%v", kind, ok)
	}
	// Below the tombstone the old value is visible.
	v, kind, ok := m.Get([]byte("k"), 1)
	if !ok || kind != base.KindSet || string(v) != "v" {
		t.Fatal("pre-tombstone read failed")
	}
}

func TestGetMissesSimilarKeys(t *testing.T) {
	m := New()
	m.Set([]byte("abc"), 1, base.KindSet, []byte("v"))
	if _, _, ok := m.Get([]byte("ab"), base.MaxSeqNum); ok {
		t.Fatal("prefix key should miss")
	}
	if _, _, ok := m.Get([]byte("abcd"), base.MaxSeqNum); ok {
		t.Fatal("extension key should miss")
	}
}

func TestIterYieldsInternalOrder(t *testing.T) {
	m := New()
	m.Set([]byte("a"), 1, base.KindSet, []byte("v1"))
	m.Set([]byte("a"), 3, base.KindSet, []byte("v3"))
	m.Set([]byte("b"), 2, base.KindSet, []byte("v2"))

	it := m.NewIter()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		ukey, seq, _, _ := base.DecodeInternalKey(it.Key())
		got = append(got, fmt.Sprintf("%s@%d", ukey, seq))
	}
	want := []string{"a@3", "a@1", "b@2"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v want %v", i, got, want)
		}
	}
}

func TestLenAndSize(t *testing.T) {
	m := New()
	if m.Len() != 0 {
		t.Fatal("fresh memtable should be empty")
	}
	for i := 0; i < 100; i++ {
		m.Set([]byte(fmt.Sprintf("k%03d", i)), base.SeqNum(i+1), base.KindSet, []byte("v"))
	}
	if m.Len() != 100 {
		t.Fatalf("Len=%d", m.Len())
	}
	if m.ApproxSize() <= 0 {
		t.Fatal("size should be positive")
	}
}

// TestSetAllocs pins the per-entry allocation budget: one combined
// key+value buffer, one skiplist node, one next-pointer slice. A fourth
// allocation means the old separate key/value make+append pattern crept
// back in.
func TestSetAllocs(t *testing.T) {
	m := New()
	key := []byte("alloc-test-key")
	val := make([]byte, 128)
	seq := base.SeqNum(0)
	got := testing.AllocsPerRun(200, func() {
		seq++
		m.Set(key, seq, base.KindSet, val)
	})
	if got > 3 {
		t.Fatalf("Set allocates %.1f objects per entry, want <= 3", got)
	}
}

// TestSetConcurrent sanity-checks the concurrent-writer contract at the
// memtable layer: distinct (key, seq) entries inserted from multiple
// goroutines must all be retrievable.
func TestSetConcurrent(t *testing.T) {
	m := New()
	done := make(chan struct{})
	const writers, per = 4, 500
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				m.Set(k, base.SeqNum(w*per+i+1), base.KindSet, []byte("v"))
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	if m.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*per)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if _, _, found := m.Get(k, base.SeqNum(writers*per+1)); !found {
				t.Fatalf("key %q lost", k)
			}
		}
	}
}

// BenchmarkMemtableSet tracks the per-entry insert cost and allocation
// count (run with -benchmem; the alloc budget is asserted by
// TestSetAllocs).
func BenchmarkMemtableSet(b *testing.B) {
	m := New()
	key := make([]byte, 16)
	val := make([]byte, 128)
	b.ReportAllocs()
	b.SetBytes(int64(len(key) + len(val)))
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(key, uint64(i))
		m.Set(key, base.SeqNum(i+1), base.KindSet, val)
	}
}

func TestDeleteRangeStore(t *testing.T) {
	m := New()
	m.Set([]byte("b"), 1, base.KindSet, []byte("v1"))
	m.Set([]byte("d"), 2, base.KindSet, []byte("v2"))
	m.DeleteRange([]byte("a"), []byte("c"), 3)
	m.Set([]byte("b"), 4, base.KindSet, []byte("v3"))

	// CoverSeq honors snapshot visibility.
	if got := m.CoverSeq([]byte("b"), base.MaxSeqNum); got != 3 {
		t.Fatalf("CoverSeq(b) = %d, want 3", got)
	}
	if got := m.CoverSeq([]byte("b"), 2); got != 0 {
		t.Fatalf("CoverSeq(b, snap 2) = %d, want 0", got)
	}
	if got := m.CoverSeq([]byte("d"), base.MaxSeqNum); got != 0 {
		t.Fatalf("CoverSeq(d) = %d, want 0 (outside range)", got)
	}

	// Entry-vs-tombstone decisions are the caller's: GetSearch reports the
	// entry seq so the engine can compare against CoverSeq.
	search := base.MakeSearchKey(nil, []byte("b"), base.MaxSeqNum)
	v, seq, kind, ok := m.GetSearch(search)
	if !ok || kind != base.KindSet || seq != 4 || string(v) != "v3" {
		t.Fatalf("GetSearch(b) = %q seq=%d kind=%v ok=%v", v, seq, kind, ok)
	}
	search = base.MakeSearchKey(nil, []byte("b"), 3)
	if _, seq, _, ok := m.GetSearch(search); !ok || seq != 1 {
		t.Fatalf("GetSearch(b@3) seq=%d ok=%v, want the old version", seq, ok)
	}

	// The tombstones flush separately from the point stream.
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 points", m.Len())
	}
	rds := m.RangeDels()
	if len(rds) != 1 || string(rds[0].Start) != "a" || string(rds[0].End) != "c" || rds[0].Seq != 3 {
		t.Fatalf("RangeDels = %v", rds)
	}
	if m.Empty() {
		t.Fatal("memtable with data reported empty")
	}
	if !New().Empty() {
		t.Fatal("fresh memtable not empty")
	}
	rdOnly := New()
	rdOnly.DeleteRange([]byte("a"), []byte("b"), 1)
	if rdOnly.Empty() {
		t.Fatal("tombstone-only memtable must flush (not Empty)")
	}
	if rdOnly.ApproxSize() == 0 {
		t.Fatal("tombstones must count toward ApproxSize")
	}
}
