// Package block implements the sstable block format: prefix-compressed
// key/value entries with periodic restart points that allow binary search
// within a block. The format follows LevelDB (PebblesDB keeps the sstable
// format unchanged, §4.3.1).
package block

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt indicates a block that failed structural validation.
var ErrCorrupt = errors.New("block: corrupt block")

// Builder assembles a block. Keys must be added in strictly increasing
// order (by the caller's comparator).
type Builder struct {
	buf             []byte
	restarts        []uint32
	restartInterval int
	counter         int
	lastKey         []byte
}

// NewBuilder returns a Builder placing a restart point every
// restartInterval entries.
func NewBuilder(restartInterval int) *Builder {
	if restartInterval < 1 {
		restartInterval = 1
	}
	return &Builder{restartInterval: restartInterval, restarts: []uint32{0}}
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.counter = 0
	b.lastKey = b.lastKey[:0]
}

// Add appends a key/value entry.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = appendUvarint(b.buf, uint64(shared))
	b.buf = appendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = appendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
}

// EstimatedSize returns the current encoded size.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Empty reports whether no entries have been added.
func (b *Builder) Empty() bool { return len(b.buf) == 0 }

// Finish returns the completed block. The builder must be Reset before
// reuse; the returned slice aliases the builder's buffer.
func (b *Builder) Finish() []byte {
	var tmp [4]byte
	for _, r := range b.restarts {
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.buf = append(b.buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	b.buf = append(b.buf, tmp[:]...)
	return b.buf
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// Iter is a cursor over an encoded block. The zero value is not positioned;
// Init (or NewIter) must run first. An Iter is reusable across blocks via
// Init, which retains the internal key buffer — the point-read path keeps a
// pooled Iter per Get so steady-state block probes allocate nothing.
type Iter struct {
	cmp  func(a, b []byte) int
	data []byte // entries region only
	// restarts is the raw restart array (4 bytes per entry), read lazily so
	// Init never allocates a decoded []uint32.
	restarts    []byte
	numRestarts int
	off         int // offset of current entry in data
	nextOff     int
	key         []byte
	val         []byte
	valid       bool
	err         error
}

// NewIter returns an iterator over an encoded block using cmp.
func NewIter(data []byte, cmp func(a, b []byte) int) (*Iter, error) {
	it := &Iter{}
	if err := it.Init(data, cmp); err != nil {
		return nil, err
	}
	return it, nil
}

// Init points the iterator at a new block, retaining the key buffer's
// capacity. It validates the restart array structurally; on error the
// iterator is invalid and Error reports ErrCorrupt.
func (i *Iter) Init(data []byte, cmp func(a, b []byte) int) error {
	return i.init(data, cmp, true)
}

// InitValidated is Init without the O(restarts) bounds scan, for blocks the
// caller has validated before — a table's resident index block (restart
// interval 1, so the scan is O(entries)) is checked once at Open and then
// probed on every Get.
func (i *Iter) InitValidated(data []byte, cmp func(a, b []byte) int) error {
	return i.init(data, cmp, false)
}

func (i *Iter) init(data []byte, cmp func(a, b []byte) int, validate bool) error {
	*i = Iter{cmp: cmp, key: i.key[:0]}
	if len(data) < 4 {
		i.err = ErrCorrupt
		return i.err
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	restartsEnd := len(data) - 4
	restartsStart := restartsEnd - 4*n
	if n < 1 || restartsStart < 0 {
		i.err = ErrCorrupt
		return i.err
	}
	if validate {
		for j := 0; j < n; j++ {
			if int(binary.LittleEndian.Uint32(data[restartsStart+4*j:])) > restartsStart {
				i.err = ErrCorrupt
				return i.err
			}
		}
	}
	i.data = data[:restartsStart]
	i.restarts = data[restartsStart:restartsEnd]
	i.numRestarts = n
	return nil
}

// Release drops the iterator's references into the current block, so a
// pooled iterator does not pin block payloads while idle. The key buffer's
// capacity is retained for the next Init.
func (i *Iter) Release() {
	*i = Iter{key: i.key[:0]}
}

// restart returns the entry offset of restart point j.
func (i *Iter) restart(j int) int {
	return int(binary.LittleEndian.Uint32(i.restarts[4*j:]))
}

// decodeAt decodes the entry at off, returning the next entry's offset.
// Returns -1 on corruption.
func (i *Iter) decodeAt(off int, prevKey []byte) int {
	p := i.data[off:]
	shared, n0 := binary.Uvarint(p)
	if n0 <= 0 {
		return -1
	}
	unshared, n1 := binary.Uvarint(p[n0:])
	if n1 <= 0 {
		return -1
	}
	vlen, n2 := binary.Uvarint(p[n0+n1:])
	if n2 <= 0 {
		return -1
	}
	h := n0 + n1 + n2
	if uint64(len(p)-h) < unshared+vlen || uint64(len(prevKey)) < shared {
		return -1
	}
	i.key = append(i.key[:0], prevKey[:shared]...)
	i.key = append(i.key, p[h:h+int(unshared)]...)
	i.val = p[h+int(unshared) : h+int(unshared)+int(vlen)]
	return off + h + int(unshared) + int(vlen)
}

func (i *Iter) corrupt() {
	i.valid = false
	i.err = ErrCorrupt
}

// First positions at the first entry.
func (i *Iter) First() {
	if len(i.data) == 0 {
		i.valid = false
		return
	}
	i.off = 0
	next := i.decodeAt(0, nil)
	if next < 0 {
		i.corrupt()
		return
	}
	i.nextOff = next
	i.valid = true
}

// Next advances to the following entry.
func (i *Iter) Next() {
	if !i.valid {
		return
	}
	if i.nextOff >= len(i.data) {
		i.valid = false
		return
	}
	i.off = i.nextOff
	next := i.decodeAt(i.off, i.key)
	if next < 0 {
		i.corrupt()
		return
	}
	i.nextOff = next
}

// Last positions at the final entry.
func (i *Iter) Last() {
	if len(i.data) == 0 {
		i.valid = false
		return
	}
	off := i.restart(i.numRestarts - 1)
	next := i.decodeAt(off, nil)
	if next < 0 {
		i.corrupt()
		return
	}
	for next < len(i.data) {
		off = next
		if next = i.decodeAt(off, i.key); next < 0 {
			i.corrupt()
			return
		}
	}
	i.off, i.nextOff = off, next
	i.valid = true
}

// Prev moves back one entry. Prefix compression only chains forward, so
// this restarts from the nearest restart point before the current entry and
// walks up to it.
func (i *Iter) Prev() {
	if !i.valid {
		return
	}
	if i.off == 0 {
		i.valid = false
		return
	}
	// Find the last restart strictly before the current entry; restart 0
	// is offset 0, so one always exists.
	lo, hi := 0, i.numRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if i.restart(mid) < i.off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	target := i.off
	off := i.restart(lo)
	next := i.decodeAt(off, nil)
	if next < 0 {
		i.corrupt()
		return
	}
	for next < target {
		off = next
		if next = i.decodeAt(off, i.key); next < 0 {
			i.corrupt()
			return
		}
	}
	i.off, i.nextOff = off, next
}

// SeekLT positions at the last entry with key < target.
func (i *Iter) SeekLT(target []byte) {
	i.SeekGE(target)
	if i.err != nil {
		return
	}
	if i.valid {
		i.Prev()
	} else {
		// Every entry is < target (or the block is empty).
		i.Last()
	}
}

// SeekGE positions at the first entry with key >= target. This is also the
// point-probe entry: when the restart binary search ends on the chosen
// restart (its entry already sits in the iterator's buffers), the final
// re-decode of that entry is skipped.
func (i *Iter) SeekGE(target []byte) {
	if len(i.data) == 0 {
		// Entry-less blocks are legal (the index of a table holding only
		// range tombstones); there is nothing at or after any target.
		i.valid = false
		return
	}
	// Binary search the restart points: find the last restart whose key is
	// < target, then scan forward.
	lo, hi := 0, i.numRestarts-1
	haveLo := false // i.key/i.val hold restart(lo)'s entry
	var loNext int
	for lo < hi {
		mid := (lo + hi + 1) / 2
		next := i.decodeAt(i.restart(mid), nil)
		if next < 0 {
			i.corrupt()
			return
		}
		if i.cmp(i.key, target) < 0 {
			lo, haveLo, loNext = mid, true, next
		} else {
			// The decode overwrote the buffers; lo's entry is gone.
			hi, haveLo = mid-1, false
		}
	}
	i.off = i.restart(lo)
	if !haveLo {
		if loNext = i.decodeAt(i.off, nil); loNext < 0 {
			i.corrupt()
			return
		}
	}
	i.nextOff = loNext
	i.valid = true
	for i.valid && i.cmp(i.key, target) < 0 {
		i.Next()
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (i *Iter) Valid() bool { return i.valid }

// Key returns the current key; valid until the next positioning call.
func (i *Iter) Key() []byte { return i.key }

// Value returns the current value, aliasing the block.
func (i *Iter) Value() []byte { return i.val }

// Error returns any corruption error encountered.
func (i *Iter) Error() error { return i.err }

// Close releases the iterator.
func (i *Iter) Close() error { return i.err }
