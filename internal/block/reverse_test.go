package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestReverseMatchesForward(t *testing.T) {
	keys := sortedKeys(500, 2)
	for _, ri := range []int{1, 2, 16, 1000} {
		data := buildBlock(t, keys, ri)
		it, err := NewIter(data, bytes.Compare)
		if err != nil {
			t.Fatal(err)
		}
		i := len(keys) - 1
		for it.Last(); it.Valid(); it.Prev() {
			if string(it.Key()) != keys[i] {
				t.Fatalf("ri=%d pos=%d: got %q want %q", ri, i, it.Key(), keys[i])
			}
			if string(it.Value()) != "val:"+keys[i] {
				t.Fatalf("ri=%d: value mismatch at %q", ri, it.Key())
			}
			i--
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != -1 {
			t.Fatalf("ri=%d: reverse iterated %d of %d", ri, len(keys)-1-i, len(keys))
		}
	}
}

func TestSeekLT(t *testing.T) {
	keys := sortedKeys(300, 3)
	for _, ri := range []int{1, 3, 16} {
		data := buildBlock(t, keys, ri)
		it, err := NewIter(data, bytes.Compare)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 200; trial++ {
			target := fmt.Sprintf("key%08d", rng.Intn(1<<28))
			want := sort.SearchStrings(keys, target) - 1
			it.SeekLT([]byte(target))
			if want < 0 {
				if it.Valid() {
					t.Fatalf("ri=%d SeekLT(%q): got %q, want invalid", ri, target, it.Key())
				}
				continue
			}
			if !it.Valid() || string(it.Key()) != keys[want] {
				t.Fatalf("ri=%d SeekLT(%q): got %v, want %q", ri, target, string(it.Key()), keys[want])
			}
		}
		// Exact-key targets: SeekLT is strict.
		for _, i := range []int{0, 1, len(keys) / 2, len(keys) - 1} {
			it.SeekLT([]byte(keys[i]))
			if i == 0 {
				if it.Valid() {
					t.Fatalf("SeekLT(first) should be invalid, got %q", it.Key())
				}
			} else if !it.Valid() || string(it.Key()) != keys[i-1] {
				t.Fatalf("SeekLT(%q): got %v want %q", keys[i], string(it.Key()), keys[i-1])
			}
		}
	}
}

func TestNextPrevInterleaved(t *testing.T) {
	keys := sortedKeys(100, 5)
	data := buildBlock(t, keys, 4)
	it, err := NewIter(data, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	pos := 50
	it.SeekGE([]byte(keys[pos]))
	rng := rand.New(rand.NewSource(6))
	for step := 0; step < 500 && it.Valid(); step++ {
		if rng.Intn(2) == 0 {
			it.Next()
			pos++
		} else {
			it.Prev()
			pos--
		}
		if pos < 0 || pos >= len(keys) {
			if it.Valid() {
				t.Fatalf("expected invalid at pos %d", pos)
			}
			break
		}
		if !it.Valid() || string(it.Key()) != keys[pos] {
			t.Fatalf("step %d: got %v want %q", step, string(it.Key()), keys[pos])
		}
	}
}
