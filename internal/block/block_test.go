package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildBlock(t *testing.T, keys []string, restartInterval int) []byte {
	t.Helper()
	b := NewBuilder(restartInterval)
	for _, k := range keys {
		b.Add([]byte(k), []byte("val:"+k))
	}
	return append([]byte(nil), b.Finish()...)
}

func sortedKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	for len(seen) < n {
		seen[fmt.Sprintf("key%08d", rng.Intn(1<<28))] = true
	}
	keys := make([]string, 0, n)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestRoundtripVariousRestartIntervals(t *testing.T) {
	keys := sortedKeys(500, 1)
	for _, ri := range []int{1, 2, 16, 1000} {
		data := buildBlock(t, keys, ri)
		it, err := NewIter(data, bytes.Compare)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != keys[i] {
				t.Fatalf("ri=%d pos=%d: got %q want %q", ri, i, it.Key(), keys[i])
			}
			if string(it.Value()) != "val:"+keys[i] {
				t.Fatalf("ri=%d: value mismatch at %q", ri, it.Key())
			}
			i++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != len(keys) {
			t.Fatalf("ri=%d: iterated %d of %d", ri, i, len(keys))
		}
	}
}

func TestSeekGE(t *testing.T) {
	keys := sortedKeys(300, 2)
	data := buildBlock(t, keys, 4)
	it, err := NewIter(data, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 500; trial++ {
		target := fmt.Sprintf("key%08d", rand.Intn(1<<28))
		it.SeekGE([]byte(target))
		// Model answer: first key >= target.
		idx := sort.SearchStrings(keys, target)
		if idx == len(keys) {
			if it.Valid() {
				t.Fatalf("seek %q: expected invalid, got %q", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != keys[idx] {
			t.Fatalf("seek %q: got %q want %q", target, it.Key(), keys[idx])
		}
	}
}

func TestSeekExactEveryKey(t *testing.T) {
	keys := sortedKeys(100, 3)
	data := buildBlock(t, keys, 7)
	it, _ := NewIter(data, bytes.Compare)
	for _, k := range keys {
		it.SeekGE([]byte(k))
		if !it.Valid() || string(it.Key()) != k {
			t.Fatalf("seek exact %q failed: %q", k, it.Key())
		}
	}
}

func TestEmptyValuesAndSharedPrefixes(t *testing.T) {
	b := NewBuilder(16)
	keys := []string{"prefix", "prefix0", "prefix00", "prefix01", "prefixa"}
	for _, k := range keys {
		b.Add([]byte(k), nil)
	}
	it, err := NewIter(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("pos %d: %q", i, it.Key())
		}
		if len(it.Value()) != 0 {
			t.Fatal("expected empty value")
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d", i)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	if _, err := NewIter([]byte{1, 2}, bytes.Compare); err == nil {
		t.Fatal("tiny block should fail")
	}
	// Restart count pointing past the block.
	bad := []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f}
	if _, err := NewIter(bad, bytes.Compare); err == nil {
		t.Fatal("bogus restart count should fail")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(16)
	b.Add([]byte("a"), []byte("1"))
	b.Finish()
	b.Reset()
	b.Add([]byte("b"), []byte("2"))
	it, err := NewIter(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it.First()
	if !it.Valid() || string(it.Key()) != "b" {
		t.Fatalf("after reset: %q", it.Key())
	}
	it.Next()
	if it.Valid() {
		t.Fatal("reset block should have one entry")
	}
}

func TestEstimatedSizeMonotonic(t *testing.T) {
	b := NewBuilder(16)
	prev := b.EstimatedSize()
	for i := 0; i < 100; i++ {
		b.Add([]byte(fmt.Sprintf("key%04d", i)), []byte("value"))
		if sz := b.EstimatedSize(); sz <= prev {
			t.Fatal("estimated size must grow")
		} else {
			prev = sz
		}
	}
}
