package leveled

import (
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/manifest"
)

func meta(fn base.FileNum, lo, hi string) base.FileMetadata {
	return base.FileMetadata{
		FileNum:  fn,
		Size:     100,
		Smallest: base.MakeInternalKey(nil, []byte(lo), 1, base.KindSet),
		Largest:  base.MakeInternalKey(nil, []byte(hi), 1, base.KindSet),
	}
}

func TestVersionApplyAddDelete(t *testing.T) {
	v := newVersion(3)
	edit := &manifest.VersionEdit{
		NewFiles: []manifest.NewFileEntry{
			{Level: 0, Meta: meta(2, "a", "m")},
			{Level: 0, Meta: meta(3, "c", "z")},
			{Level: 1, Meta: meta(4, "k", "p")},
			{Level: 1, Meta: meta(5, "a", "j")},
		},
	}
	nv, err := v.apply(edit, 3)
	if err != nil {
		t.Fatal(err)
	}
	// L0 sorted newest (highest filenum) first.
	if nv.files[0][0].FileNum != 3 || nv.files[0][1].FileNum != 2 {
		t.Fatalf("L0 order: %v", nv.files[0])
	}
	// L1 sorted by smallest key.
	if nv.files[1][0].FileNum != 5 || nv.files[1][1].FileNum != 4 {
		t.Fatalf("L1 order: %v", nv.files[1])
	}

	del := &manifest.VersionEdit{
		DeletedFiles: []manifest.DeletedFileEntry{{Level: 0, FileNum: 2}},
	}
	nv2, err := nv.apply(del, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nv2.files[0]) != 1 || nv2.files[0][0].FileNum != 3 {
		t.Fatalf("delete failed: %v", nv2.files[0])
	}
	// The original version is untouched (immutability).
	if len(nv.files[0]) != 2 {
		t.Fatal("apply mutated its receiver")
	}
}

func TestVersionApplyRejectsBadLevel(t *testing.T) {
	v := newVersion(3)
	edit := &manifest.VersionEdit{
		NewFiles: []manifest.NewFileEntry{{Level: 7, Meta: meta(2, "a", "b")}},
	}
	if _, err := v.apply(edit, 3); err == nil {
		t.Fatal("out-of-range level must be rejected")
	}
}

func TestFindFile(t *testing.T) {
	m1 := meta(1, "b", "d")
	m2 := meta(2, "f", "h")
	files := []*base.FileMetadata{&m1, &m2}
	cases := []struct {
		key  string
		want int
	}{
		{"a", -1}, {"b", 0}, {"c", 0}, {"d", 0}, {"e", -1}, {"f", 1}, {"h", 1}, {"z", -1},
	}
	for _, c := range cases {
		if got := findFile(files, []byte(c.key)); got != c.want {
			t.Fatalf("findFile(%q)=%d want %d", c.key, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	m1 := meta(1, "b", "d")
	m2 := meta(2, "f", "h")
	m3 := meta(3, "j", "l")
	files := []*base.FileMetadata{&m1, &m2, &m3}

	got := overlaps(files, []byte("c"), []byte("g"))
	if len(got) != 2 || got[0].FileNum != 1 || got[1].FileNum != 2 {
		t.Fatalf("overlaps c..g: %v", got)
	}
	if got := overlaps(files, []byte("m"), []byte("z")); len(got) != 0 {
		t.Fatalf("overlaps m..z: %v", got)
	}
	if got := overlaps(files, []byte("a"), []byte("z")); len(got) != 3 {
		t.Fatalf("overlaps a..z: %v", got)
	}
}

func TestAllowedSeeksFloor(t *testing.T) {
	if allowedSeeks(0) != 100 {
		t.Fatal("floor must be 100")
	}
	if allowedSeeks(32<<20) != (32<<20)/(16<<10) {
		t.Fatal("large files get proportional budgets")
	}
}
