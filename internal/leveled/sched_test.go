package leveled

import (
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/vfs"
)

func fabMeta(fn base.FileNum, size uint64, lo, hi string) base.FileMetadata {
	return base.FileMetadata{
		FileNum:  fn,
		Size:     size,
		Smallest: base.MakeInternalKey(nil, []byte(lo), 100, base.KindSet),
		Largest:  base.MakeInternalKey(nil, []byte(hi), 1, base.KindSet),
	}
}

// openSchedTree fabricates a level 1 at twice its size threshold (four
// 32 KB files against LevelBaseBytes 64 KB) over a populated level 2, so
// two units are claimable at once and neither is a trivial move.
func openSchedTree(t *testing.T) *Tree {
	t.Helper()
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(testConfig(), vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	edit := &manifest.VersionEdit{
		NewFiles: []manifest.NewFileEntry{
			{Level: 1, Meta: fabMeta(101, 32<<10, "a0", "a9")},
			{Level: 1, Meta: fabMeta(102, 32<<10, "b0", "b9")},
			{Level: 1, Meta: fabMeta(103, 32<<10, "c0", "c9")},
			{Level: 1, Meta: fabMeta(104, 32<<10, "d0", "d9")},
			{Level: 2, Meta: fabMeta(201, 8<<10, "a0", "a5")},
			{Level: 2, Meta: fabMeta(202, 8<<10, "b0", "b5")},
			{Level: 2, Meta: fabMeta(203, 8<<10, "c0", "c5")},
			{Level: 2, Meta: fabMeta(204, 8<<10, "d0", "d5")},
		},
	}
	if _, err := tree.logAndInstall(edit); err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestParallelClaimsDisjointFiles: two consecutive picks on the same
// level pair own disjoint input+target file sets, and releasing both
// restores a fully unclaimed scheduler.
func TestParallelClaimsDisjointFiles(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	tree.mu.Lock()
	c1 := tree.pickLocked()
	c2 := tree.pickLocked()
	tree.mu.Unlock()
	if c1 == nil || c2 == nil {
		t.Fatalf("expected two concurrent units, got %v / %v", c1, c2)
	}
	if c1.level != 1 || c2.level != 1 {
		t.Fatalf("both units should source level 1, got %d and %d", c1.level, c2.level)
	}

	seen := map[base.FileNum]bool{}
	for _, c := range []*compaction{c1, c2} {
		for _, f := range append(append([]*base.FileMetadata(nil), c.inputs...), c.targets...) {
			if seen[f.FileNum] {
				t.Fatalf("file %d claimed by both units", f.FileNum)
			}
			seen[f.FileNum] = true
		}
	}

	tree.mu.Lock()
	if got := tree.metrics.PeakLevelUnits[1]; got != 2 {
		t.Errorf("PeakLevelUnits[1] = %d, want 2", got)
	}
	tree.releaseLocked(c1)
	tree.releaseLocked(c2)
	if len(tree.claimed) != 0 || tree.inflightUnits != 0 {
		t.Errorf("claims not fully released: %v, units=%d", tree.claimed, tree.inflightUnits)
	}
	tree.mu.Unlock()
}

// TestL0PriorityAndExclusivity: with L0 over its trigger, the first pick
// is the exclusive L0 unit even when deeper levels are over threshold
// too; a second pick must not touch L0 or any claimed L1 target.
func TestL0PriorityAndExclusivity(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	edit := &manifest.VersionEdit{}
	for i := 0; i < tree.cfg.L0CompactionTrigger; i++ {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{
			Level: 0, Meta: fabMeta(base.FileNum(300+i), 8<<10, "a0", "b9"),
		})
	}
	if _, err := tree.logAndInstall(edit); err != nil {
		t.Fatal(err)
	}

	tree.mu.Lock()
	defer tree.mu.Unlock()
	c1 := tree.pickLocked()
	if c1 == nil || c1.level != 0 {
		t.Fatalf("first pick should be the L0 unit, got %+v", c1)
	}
	c2 := tree.pickLocked()
	if c2 == nil {
		t.Fatal("disjoint level-1 work should remain claimable during the L0 unit")
	}
	if c2.level == 0 {
		t.Fatal("second pick must not claim L0 again")
	}
	for _, f := range c1.targets {
		for _, g := range append(append([]*base.FileMetadata(nil), c2.inputs...), c2.targets...) {
			if f.FileNum == g.FileNum {
				t.Fatalf("file %d shared between the L0 unit and unit %d", f.FileNum, c2.level)
			}
		}
	}
	tree.releaseLocked(c1)
	tree.releaseLocked(c2)
}

// TestNeedsCompactionNoAllocs pins the leveled predicate's allocation-free
// property.
func TestNeedsCompactionNoAllocs(t *testing.T) {
	tree := openSchedTree(t)
	defer tree.Close()

	if !tree.NeedsCompaction() {
		t.Fatal("fabricated level 1 should need compaction")
	}
	if avg := testing.AllocsPerRun(200, func() {
		tree.NeedsCompaction()
	}); avg != 0 {
		t.Errorf("NeedsCompaction allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tree.ClaimableUnits()
	}); avg != 0 {
		t.Errorf("ClaimableUnits allocates %.1f per call, want 0", avg)
	}
}
