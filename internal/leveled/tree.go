package leveled

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
	"pebblesdb/internal/vfs"
)

// Tree is the leveled LSM baseline. All methods are safe for concurrent
// use.
type Tree struct {
	cfg  *base.Config
	fs   vfs.FS
	dir  string
	vs   *manifest.VersionSet
	tc   *tablecache.TableCache
	snap treebase.Host

	mu         sync.Mutex
	cur        *version
	compactPtr [][]byte // per-level round-robin cursor (user key)
	// claimed marks files owned by running compaction units (inputs and
	// targets); l0Busy marks the exclusive L0->L1 unit. Units with disjoint
	// claimed sets run concurrently, even on the same level pair.
	claimed         map[base.FileNum]bool
	l0Busy          bool
	inflightUnits   int
	levelUnits      []int
	claimStallStart time.Time
	// unitID numbers compaction units for the event stream, so concurrent
	// begin/end pairs can be correlated.
	unitID      atomic.Uint64
	seekPending map[base.FileNum]int // fileNum -> level, seek-triggered candidates
	pendingMu   sync.Mutex
	pending     map[base.FileNum]bool

	// logMu/logCond order manifest appends by install ticket: an edit
	// deleting file f must be appended after the edit that added f, or
	// recovery replay fails. Tickets are assigned in the same critical
	// section that installs the in-memory version.
	logMu         sync.Mutex
	logCond       *sync.Cond
	installTicket uint64
	installTurn   uint64

	metrics treebase.Metrics
}

// Open creates or recovers a leveled tree in dir.
func Open(cfg *base.Config, fs vfs.FS, dir string, snap treebase.Host) (*Tree, error) {
	t := &Tree{
		cfg:         cfg,
		fs:          fs,
		dir:         dir,
		snap:        snap,
		cur:         newVersion(cfg.NumLevels),
		compactPtr:  make([][]byte, cfg.NumLevels),
		claimed:     make(map[base.FileNum]bool),
		levelUnits:  make([]int, cfg.NumLevels),
		seekPending: make(map[base.FileNum]int),
		pending:     make(map[base.FileNum]bool),
	}
	t.logCond = sync.NewCond(&t.logMu)
	t.metrics.PeakLevelUnits = make([]int, cfg.NumLevels)
	blockCache := cache.New(cfg.BlockCacheSize, nil)
	t.tc = tablecache.New(fs, dir, cfg.TableCacheSize, blockCache)

	if manifest.Exists(fs, dir) {
		vs, err := manifest.Load(fs, dir, func(e *manifest.VersionEdit) error {
			nv, err := t.cur.apply(e, cfg.NumLevels)
			if err != nil {
				return err
			}
			t.cur = nv
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.vs = vs
		if err := vs.StartAppending(t.snapshotEditLocked()); err != nil {
			return nil, err
		}
	} else {
		vs, err := manifest.Create(fs, dir)
		if err != nil {
			return nil, err
		}
		t.vs = vs
	}
	t.vs.Listener = cfg.EventListener
	return t, nil
}

// snapshotEditLocked describes the full current state as one edit.
func (t *Tree) snapshotEditLocked() *manifest.VersionEdit {
	e := &manifest.VersionEdit{}
	for l, files := range t.cur.files {
		for _, f := range files {
			e.NewFiles = append(e.NewFiles, manifest.NewFileEntry{Level: l, Meta: *f})
		}
	}
	return e
}

// NewFileNum allocates a file number (also used by the engine for WALs).
func (t *Tree) NewFileNum() base.FileNum { return t.vs.NewFileNum() }

// RecoveryLogNum returns the WAL number recovery must replay from.
func (t *Tree) RecoveryLogNum() base.FileNum { return t.vs.LogNum() }

// PersistedLastSeq returns the sequence watermark from the manifest.
func (t *Tree) PersistedLastSeq() base.SeqNum { return t.vs.LastSeq() }

// WantGuard reports whether the engine should route ukey to Ingest; the
// leveled tree has no guards, so never.
func (t *Tree) WantGuard(ukey []byte) bool { return false }

// Ingest is the per-key write hook; the leveled tree has no guards, so it
// is a no-op.
func (t *Tree) Ingest(ukey []byte) {}

// AddPending registers an in-flight output file (treebase.PendingRegistry).
func (t *Tree) AddPending(fn base.FileNum) {
	t.pendingMu.Lock()
	t.pending[fn] = true
	t.pendingMu.Unlock()
}

// RemovePending unregisters an in-flight output file.
func (t *Tree) RemovePending(fn base.FileNum) {
	t.pendingMu.Lock()
	delete(t.pending, fn)
	t.pendingMu.Unlock()
}

func (t *Tree) currentVersion() *version {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

func (t *Tree) writerOptions() sstable.WriterOptions {
	return sstable.WriterOptions{
		BlockSize:            t.cfg.BlockSize,
		BlockRestartInterval: t.cfg.BlockRestartInterval,
		BloomBitsPerKey:      t.cfg.BloomBitsPerKey,
		PrefixBloomLength:    t.cfg.PrefixBloomLength,
		Compression:          t.cfg.Compression,
	}
}

// Flush writes the memtable contents — point entries plus range tombstones
// — as a level-0 sstable and logs an edit recording the new WAL number and
// sequence watermark.
func (t *Tree) Flush(it iterator.Iterator, rangeDels []rangedel.Tombstone, logNum base.FileNum, lastSeq base.SeqNum) error {
	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	for it.First(); it.Valid(); it.Next() {
		if err := ob.Add(it.Key(), it.Value()); err != nil {
			ob.Abandon()
			return err
		}
	}
	if err := it.Error(); err != nil {
		ob.Abandon()
		return err
	}
	if err := ob.AddRangeDels(rangeDels); err != nil {
		ob.Abandon()
		return err
	}
	metas, err := ob.Finish()
	if err != nil {
		ob.Abandon()
		return err
	}

	edit := &manifest.VersionEdit{}
	edit.SetLogNum(logNum)
	edit.SetLastSeq(lastSeq)
	var flushed int64
	for _, m := range metas {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: 0, Meta: *m})
		flushed += int64(m.Size)
	}
	installed, err := t.logAndInstall(edit)
	if err != nil {
		if installed {
			// The tables are referenced by the live in-memory version; keep
			// them for a later manifest rotation to persist. A retried flush
			// re-adds the same keys at the same sequence numbers.
			ob.ReleasePending()
		} else {
			ob.Abandon()
		}
		return err
	}
	ob.ReleasePending()
	t.mu.Lock()
	t.metrics.BytesFlushed += flushed
	t.metrics.Compression.Merge(ob.CompressionStats())
	t.mu.Unlock()
	return nil
}

// logAndInstall installs the version resulting from edit and persists the
// edit. Install-then-log keeps the rotation snapshot (which reads t.cur)
// consistent with the edit it replaces. installed reports whether the
// in-memory switch happened: when true the edit's new files are referenced
// by live reads even if persistence failed, so the caller must NOT delete
// them — a later successful manifest rotation snapshots the installed state
// and makes them durable.
// With concurrent units the append order must match the install order
// (delete-after-add is the one non-commuting edit pair), so each install
// takes a ticket under mu and appends strictly in ticket order.
func (t *Tree) logAndInstall(edit *manifest.VersionEdit) (installed bool, err error) {
	t.mu.Lock()
	nv, err := t.cur.apply(edit, t.cfg.NumLevels)
	if err != nil {
		t.mu.Unlock()
		return false, err
	}
	t.cur = nv
	ticket := t.installTicket
	t.installTicket++
	t.mu.Unlock()

	t.logMu.Lock()
	for t.installTurn != ticket {
		t.logCond.Wait()
	}
	t.logMu.Unlock()
	err = t.vs.LogAndApply(edit, func() *manifest.VersionEdit {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.snapshotEditLocked()
	})
	t.logMu.Lock()
	t.installTurn++
	t.logCond.Broadcast()
	t.logMu.Unlock()
	return true, err
}

// Get returns the newest visible value of ukey at seq. found=false means
// the key is absent or deleted at that snapshot. latest, when non-nil,
// overrides seq with its value loaded *after* the version is pinned — the
// engine's collapse-safe ordering for latest-state reads (see
// engine.Tree.Get). s, when non-nil, supplies the reusable per-call working
// set (a steady-state Get allocates nothing in this layer); nil acquires
// one from the shared pool. The returned value aliases an immutable block
// payload or cache entry — copy it to retain it past the caller's own
// scratch lifetime rules (the engine copies into the caller's destination
// buffer).
func (t *Tree) Get(ukey []byte, seq base.SeqNum, latest *atomic.Uint64, s *sstable.GetScratch) (value []byte, found bool, err error) {
	if s == nil {
		s = sstable.AcquireGetScratch()
		defer sstable.ReleaseGetScratch(s)
	}
	value, found, firstMiss, firstMissLevel, err := t.get(ukey, seq, latest, s)
	// A Get that examines more than one file charges the first file's seek
	// budget (LevelDB's seek-triggered compaction).
	if firstMiss != nil {
		t.chargeSeek(firstMiss, firstMissLevel)
	}
	return value, found, err
}

func (t *Tree) get(ukey []byte, seq base.SeqNum, latest *atomic.Uint64, s *sstable.GetScratch) (value []byte, found bool, firstMiss *base.FileMetadata, firstMissLevel int, err error) {
	v := t.currentVersion()
	if latest != nil {
		seq = base.SeqNum(latest.Load())
	}
	s.SearchKey = base.MakeSearchKey(s.SearchKey[:0], ukey, seq)

	// Level 0: newest file first; a hit (value or tombstone) ends the
	// search. Range tombstones fold in as the search descends (cov): data
	// only moves down, so once any visible entry — point or covering
	// tombstone — is seen, everything deeper is older and the comparison
	// decides the read.
	var cov base.SeqNum
	for _, f := range v.files[0] {
		if !userKeyInRange(ukey, f) {
			continue
		}
		val, fseq, kind, c, hit, probed, gerr := t.probeFile(f, ukey, seq, s)
		if gerr != nil {
			return nil, false, firstMiss, firstMissLevel, gerr
		}
		if c > cov {
			cov = c
		}
		if hit {
			if cov > fseq {
				return nil, false, firstMiss, firstMissLevel, nil
			}
			return val, kind == base.KindSet, firstMiss, firstMissLevel, nil
		}
		if probed && firstMiss == nil {
			firstMiss, firstMissLevel = f, 0
		}
		if cov > 0 {
			return nil, false, firstMiss, firstMissLevel, nil
		}
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		i := findFile(v.files[l], ukey)
		if i < 0 {
			continue
		}
		val, fseq, kind, c, hit, probed, gerr := t.probeFile(v.files[l][i], ukey, seq, s)
		if gerr != nil {
			return nil, false, firstMiss, firstMissLevel, gerr
		}
		if c > cov {
			cov = c
		}
		if hit {
			if cov > fseq {
				return nil, false, firstMiss, firstMissLevel, nil
			}
			return val, kind == base.KindSet, firstMiss, firstMissLevel, nil
		}
		if probed && firstMiss == nil {
			firstMiss, firstMissLevel = v.files[l][i], l
		}
		if cov > 0 {
			return nil, false, firstMiss, firstMissLevel, nil
		}
	}
	return nil, false, firstMiss, firstMissLevel, nil
}

// probeFile checks one sstable for the newest visible point entry of ukey
// and the newest visible range tombstone covering it (cov), in a single
// table-cache round-trip. File bounds include tombstone spans, so range
// pruning cannot reject a file whose tombstones cover ukey; the resident
// tombstone list answers with one binary search, no block IO. probed
// reports whether the table's blocks were actually searched (the bloom
// filter passed or was absent) — the input to seek-charge accounting.
func (t *Tree) probeFile(f *base.FileMetadata, ukey []byte, seq base.SeqNum, s *sstable.GetScratch) (value []byte, fseq base.SeqNum, kind base.Kind, cov base.SeqNum, hit, probed bool, err error) {
	r, err := t.tc.Find(f.FileNum, f.Size)
	if err != nil {
		return nil, 0, 0, 0, false, false, err
	}
	if f.RangeDelSpanContains(ukey) {
		cov = r.RangeDels().CoverSeq(ukey, seq)
	}
	if !r.MayContain(ukey) {
		s.Stats.BloomNegatives++
		r.Unref()
		return nil, 0, 0, cov, false, false, nil
	}
	value, fseq, kind, hit, err = r.GetScratched(s.SearchKey, s)
	r.Unref()
	return value, fseq, kind, cov, hit, true, err
}

// userKeyInRange sits on the Get hot path for every candidate file.
// bytes.Compare guarantees the range check stays allocation-free instead
// of relying on the compiler's string-comparison conversion optimization.
func userKeyInRange(ukey []byte, f *base.FileMetadata) bool {
	return bytes.Compare(ukey, f.SmallestUserKey()) >= 0 &&
		bytes.Compare(ukey, f.LargestUserKey()) <= 0
}

// chargeSeek decrements a file's seek budget, scheduling a seek-triggered
// compaction when exhausted (§4.2's baseline analogue, from LevelDB).
// Level 0 is exempt: L0 files overlap each other, so compacting one L0
// file down alone could bury a key's newest version under an older one
// still sitting in another L0 file; the L0 count trigger handles L0.
func (t *Tree) chargeSeek(f *base.FileMetadata, level int) {
	if t.cfg.SeekCompactionThreshold <= 0 || level == 0 || level >= t.cfg.NumLevels-1 {
		return
	}
	t.mu.Lock()
	f.AllowedSeeks--
	if f.AllowedSeeks <= 0 {
		if _, dup := t.seekPending[f.FileNum]; !dup {
			t.seekPending[f.FileNum] = level
		}
		f.AllowedSeeks = allowedSeeks(f.Size)
	}
	t.mu.Unlock()
}

// NewIters returns one iterator per L0 table plus one concatenating
// iterator per deeper level, along with every range tombstone held by
// tables overlapping the bounds (file bounds include tombstone spans, so
// pruning cannot lose a masking tombstone). Tables whose key ranges fall
// outside bounds are pruned before any table is opened; when the request
// carries a prefix, L0 tables whose prefix bloom filter rules the prefix
// out are skipped (their tombstones are still collected). Iterators are
// appended to dst, which pooled callers recycle across NewIters calls.
func (t *Tree) NewIters(req treebase.IterRequest, dst []iterator.Iterator) ([]iterator.Iterator, []rangedel.Tombstone, error) {
	bounds := req.Bounds
	v := t.currentVersion()
	iters := dst
	var rds []rangedel.Tombstone
	collect := func(f *base.FileMetadata) error {
		if f.NumRangeDels == 0 {
			return nil
		}
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			return err
		}
		rds = append(rds, r.RangeDels().Raw()...)
		r.Unref()
		return nil
	}
	for _, f := range v.files[0] {
		if !bounds.Overlaps(f) {
			continue
		}
		if err := collect(f); err != nil {
			return closeAll(iters, err)
		}
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			return closeAll(iters, err)
		}
		if req.Prefix != nil && !r.MayContainPrefix(req.Prefix) {
			r.Unref()
			req.CountPrefixSkip()
			continue
		}
		req.CountOpen()
		iters = append(iters, treebase.GetTableIter(r))
	}
	for l := 1; l < t.cfg.NumLevels; l++ {
		files := bounds.FilterFiles(v.files[l])
		if len(files) == 0 {
			continue
		}
		iters = append(iters, newLevelIter(t.tc, files, req))
		for _, f := range files {
			if err := collect(f); err != nil {
				return closeAll(iters, err)
			}
		}
	}
	return iters, rds, nil
}

func closeAll(iters []iterator.Iterator, err error) ([]iterator.Iterator, []rangedel.Tombstone, error) {
	for _, it := range iters {
		it.Close()
	}
	return nil, nil, err
}

// L0Count returns the current number of level-0 files (write stalls).
func (t *Tree) L0Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cur.files[0])
}

// ProtectedFiles returns every table file the sweeper must keep: files in
// the live version plus in-flight outputs. The pending set is read first:
// files move pending -> version, so reading the version second guarantees
// a file cannot slip between the two snapshots.
func (t *Tree) ProtectedFiles() map[base.FileNum]bool {
	out := make(map[base.FileNum]bool)
	t.pendingMu.Lock()
	for fn := range t.pending {
		out[fn] = true
	}
	t.pendingMu.Unlock()
	t.mu.Lock()
	for _, files := range t.cur.files {
		for _, f := range files {
			out[f.FileNum] = true
		}
	}
	t.mu.Unlock()
	return out
}

// EvictTable drops a deleted table from the caches.
func (t *Tree) EvictTable(fn base.FileNum) { t.tc.Evict(fn) }

// ManifestFileNum exposes the live manifest number for the sweeper.
func (t *Tree) ManifestFileNum() base.FileNum { return t.vs.ManifestFileNum() }

// LogNum exposes the recovery WAL watermark for the sweeper.
func (t *Tree) LogNum() base.FileNum { return t.vs.LogNum() }

// Metrics reports tree statistics.
func (t *Tree) Metrics() treebase.Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.metrics
	m.PeakLevelUnits = append([]int(nil), t.metrics.PeakLevelUnits...)
	m.UnitsInflight = int64(t.inflightUnits)
	m.LevelFiles = make([]int, t.cfg.NumLevels)
	m.LevelBytes = make([]int64, t.cfg.NumLevels)
	for l, files := range t.cur.files {
		m.LevelFiles[l] = len(files)
		m.LevelBytes[l] = t.cur.levelBytes(l)
		for _, f := range files {
			m.TableFileSizes = append(m.TableFileSizes, f.Size)
		}
	}
	return m
}

// CacheMetrics reports table-cache statistics (Table 5.4).
func (t *Tree) CacheMetrics() tablecache.Metrics { return t.tc.Metrics() }

// Dump writes a human-readable layout description.
func (t *Tree) Dump(w io.Writer) {
	v := t.currentVersion()
	fmt.Fprintf(w, "leveled tree %s\n", t.dir)
	for l, files := range v.files {
		if len(files) == 0 {
			continue
		}
		fmt.Fprintf(w, "  level %d: %d files, %d bytes\n", l, len(files), v.levelBytes(l))
		for _, f := range files {
			fmt.Fprintf(w, "    %s\n", f)
		}
	}
}

// Close releases cached readers and the manifest.
func (t *Tree) Close() error {
	t.tc.Close()
	return t.vs.Close()
}
