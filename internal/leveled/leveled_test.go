package leveled

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/treebase"
	"pebblesdb/internal/vfs"
)

type fakeHost struct {
	smallest base.SeqNum
	obsolete []base.FileNum
}

func (h *fakeHost) SmallestSnapshot() base.SeqNum { return h.smallest }
func (h *fakeHost) NoteObsoleteTables(fns []base.FileNum) {
	h.obsolete = append(h.obsolete, fns...)
}

func testConfig() *base.Config {
	cfg := &base.Config{
		MemtableSize:   32 << 10,
		LevelBaseBytes: 64 << 10,
		TargetFileSize: 16 << 10,
		NumLevels:      5,
	}
	cfg.EnsureDefaults()
	return cfg
}

func openTestTree(t *testing.T) (*Tree, *fakeHost) {
	t.Helper()
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(testConfig(), vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	return tree, host
}

func flushBatch(t *testing.T, tree *Tree, kvs map[string]string, seq *base.SeqNum) {
	t.Helper()
	mem := memtable.New()
	for k, v := range kvs {
		*seq++
		mem.Set([]byte(k), *seq, base.KindSet, []byte(v))
	}
	if err := tree.Flush(mem.NewIter(), nil, tree.NewFileNum(), *seq); err != nil {
		t.Fatal(err)
	}
}

// checkDisjoint verifies the core leveled invariant: levels >= 1 hold
// sstables with pairwise-disjoint user-key ranges, sorted by key.
func checkDisjoint(t *testing.T, tree *Tree) {
	t.Helper()
	v := tree.currentVersion()
	for l := 1; l < tree.cfg.NumLevels; l++ {
		files := v.files[l]
		for i := 1; i < len(files); i++ {
			if bytes.Compare(files[i-1].LargestUserKey(), files[i].SmallestUserKey()) >= 0 {
				t.Fatalf("level %d: files %s and %s overlap or share user keys",
					l, files[i-1], files[i])
			}
		}
	}
}

func TestCompactionMaintainsDisjointLevels(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(21))
	seq := base.SeqNum(0)
	expect := map[string]string{}
	for b := 0; b < 20; b++ {
		kvs := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key%07d", rng.Intn(100000))
			v := fmt.Sprintf("val%d-%d", b, i)
			kvs[k] = v
			expect[k] = v
		}
		flushBatch(t, tree, kvs, &seq)
	}
	if err := tree.CompactAll(); err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, tree)

	for k, v := range expect {
		got, found, err := tree.Get([]byte(k), base.MaxSeqNum, nil, nil)
		if err != nil || !found || string(got) != v {
			t.Fatalf("get %q: %q found=%v err=%v", k, got, found, err)
		}
	}
}

func TestTrivialMoveOnSequentialData(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	// Sequential, non-overlapping flushes: compaction should move files
	// without rewriting (§4.5: the LSM fast path FLSM forgoes).
	for b := 0; b < 30; b++ {
		kvs := map[string]string{}
		for i := 0; i < 400; i++ {
			kvs[fmt.Sprintf("key%08d", b*1000+i)] = "value-payload-xxxxxxxxxxxxxxxx"
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()
	m := tree.Metrics()
	if m.TrivialMoves == 0 {
		t.Fatal("sequential workload should produce trivial moves")
	}
	checkDisjoint(t, tree)
}

func TestL0NewestWins(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	flushBatch(t, tree, map[string]string{"k": "old"}, &seq)
	flushBatch(t, tree, map[string]string{"k": "new"}, &seq)
	v, found, err := tree.Get([]byte("k"), base.MaxSeqNum, nil, nil)
	if err != nil || !found || string(v) != "new" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
}

func TestTombstoneShadowsOlderLevels(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	seq := base.SeqNum(0)
	flushBatch(t, tree, map[string]string{"k": "v"}, &seq)
	tree.CompactAll()

	mem := memtable.New()
	seq++
	mem.Set([]byte("k"), seq, base.KindDelete, nil)
	if err := tree.Flush(mem.NewIter(), nil, tree.NewFileNum(), seq); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tree.Get([]byte("k"), base.MaxSeqNum, nil, nil); found {
		t.Fatal("tombstone in L0 must shadow deeper value")
	}
}

func TestLevelIterConcatenates(t *testing.T) {
	tree, _ := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(22))
	seq := base.SeqNum(0)
	seen := map[string]bool{}
	for b := 0; b < 15; b++ {
		kvs := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key%06d", rng.Intn(50000))
			kvs[k] = "v"
			seen[k] = true
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()

	iters, _, err := tree.NewIters(treebase.IterRequest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := iterator.NewMerging(base.InternalCompare, iters...)
	defer m.Close()
	distinct := map[string]bool{}
	var prev []byte
	for m.First(); m.Valid(); m.Next() {
		if prev != nil && base.InternalCompare(prev, m.Key()) > 0 {
			t.Fatal("merged iterator out of order")
		}
		prev = append(prev[:0], m.Key()...)
		distinct[string(base.UserKey(m.Key()))] = true
	}
	if len(distinct) != len(seen) {
		t.Fatalf("saw %d keys, want %d", len(distinct), len(seen))
	}
}

func TestSeekCompactionTriggers(t *testing.T) {
	cfg := testConfig()
	cfg.SeekCompactionThreshold = 10
	host := &fakeHost{smallest: base.MaxSeqNum}
	tree, err := Open(cfg, vfs.NewMem(), "db", host)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	seq := base.SeqNum(0)

	// Two overlapping runs in different levels so gets touch two files.
	kvs := map[string]string{}
	for i := 0; i < 2000; i++ {
		kvs[fmt.Sprintf("key%06d", i)] = "v1"
	}
	flushBatch(t, tree, kvs, &seq)
	tree.CompactAll()
	kvs2 := map[string]string{}
	for i := 0; i < 2000; i++ {
		kvs2[fmt.Sprintf("key%06d", i)] = "v2"
	}
	flushBatch(t, tree, kvs2, &seq)

	// Hammer gets on keys that miss in the newer file region: each get
	// that examines an extra file charges seek budget.
	for i := 0; i < 300000; i++ {
		tree.Get([]byte(fmt.Sprintf("key%06d", i%2000)), base.MaxSeqNum, nil, nil)
		tree.mu.Lock()
		n := len(t2pending(tree))
		tree.mu.Unlock()
		if n > 0 {
			return // a seek compaction was scheduled
		}
	}
	t.Skip("seek budget not exhausted in this configuration")
}

func t2pending(tree *Tree) map[base.FileNum]int { return tree.seekPending }

func TestObsoleteFilesReported(t *testing.T) {
	tree, host := openTestTree(t)
	defer tree.Close()
	rng := rand.New(rand.NewSource(23))
	seq := base.SeqNum(0)
	for b := 0; b < 10; b++ {
		kvs := map[string]string{}
		for i := 0; i < 500; i++ {
			kvs[fmt.Sprintf("key%06d", rng.Intn(5000))] = "v"
		}
		flushBatch(t, tree, kvs, &seq)
	}
	tree.CompactAll()
	if tree.Metrics().Compactions == 0 {
		t.Skip("no compactions ran")
	}
	if len(host.obsolete) == 0 {
		t.Fatal("compactions must report obsolete inputs")
	}
}
