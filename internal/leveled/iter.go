package leveled

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
)

// levelIter concatenates the (disjoint, sorted) sstables of one level into
// a single bidirectional iterator, opening tables lazily through the table
// cache. Table iterators come from the shared pool, re-seeking into the
// already-open file skips the close/reopen cycle, and when the request
// carries a prefix, files whose prefix bloom filter rules the prefix out
// are passed over (stood in for by an empty iterator, so the skipEmpty
// machinery advances across them) without any block IO.
type levelIter struct {
	tc    *tablecache.TableCache
	files []*base.FileMetadata
	idx   int
	cur   iterator.Iterator
	err   error
	req   treebase.IterRequest
	empty iterator.Empty
}

func newLevelIter(tc *tablecache.TableCache, files []*base.FileMetadata, req treebase.IterRequest) *levelIter {
	return &levelIter{tc: tc, files: files, idx: -1, req: req}
}

func (l *levelIter) openFile(i int) bool {
	if l.cur != nil {
		if err := l.cur.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.cur = nil
	}
	if i < 0 {
		l.idx = -1
		return false
	}
	if i >= len(l.files) {
		l.idx = len(l.files)
		return false
	}
	r, err := l.tc.Find(l.files[i].FileNum, l.files[i].Size)
	if err != nil {
		l.err = err
		return false
	}
	l.idx = i
	if l.req.Prefix != nil && !r.MayContainPrefix(l.req.Prefix) {
		r.Unref()
		l.req.CountPrefixSkip()
		l.empty = iterator.Empty{}
		l.cur = &l.empty
		return true
	}
	l.req.CountOpen()
	l.cur = treebase.GetTableIter(r)
	return true
}

// seekFile opens file i unless it is already the open file — the steady
// state of a warm scan loop re-seeking within one table.
func (l *levelIter) seekFile(i int) bool {
	if i == l.idx && l.cur != nil {
		return true
	}
	return l.openFile(i)
}

// SeekGE positions at the first entry >= target.
func (l *levelIter) SeekGE(target []byte) {
	if l.err != nil {
		return
	}
	// Find the first file whose largest key is >= target.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.InternalCompare(l.files[mid].Largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !l.seekFile(lo) {
		return
	}
	l.cur.SeekGE(target)
	l.skipEmpty()
}

// SeekLT positions at the last entry < target.
func (l *levelIter) SeekLT(target []byte) {
	if l.err != nil {
		return
	}
	// Find the first file whose largest key is >= target; it is the only
	// file that can straddle target. Everything before it is entirely
	// smaller.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.InternalCompare(l.files[mid].Largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(l.files) {
		l.Last()
		return
	}
	if !l.seekFile(lo) {
		return
	}
	l.cur.SeekLT(target)
	l.skipEmptyBackward()
}

// First positions at the level's first entry.
func (l *levelIter) First() {
	if l.err != nil {
		return
	}
	if !l.seekFile(0) {
		return
	}
	l.cur.First()
	l.skipEmpty()
}

// Last positions at the level's last entry.
func (l *levelIter) Last() {
	if l.err != nil {
		return
	}
	if !l.seekFile(len(l.files) - 1) {
		return
	}
	l.cur.Last()
	l.skipEmptyBackward()
}

// Next advances, moving to the next file as needed.
func (l *levelIter) Next() {
	if l.cur == nil || l.err != nil {
		return
	}
	l.cur.Next()
	l.skipEmpty()
}

// Prev moves back, crossing file boundaries as needed.
func (l *levelIter) Prev() {
	if l.cur == nil || l.err != nil {
		return
	}
	l.cur.Prev()
	l.skipEmptyBackward()
}

func (l *levelIter) skipEmpty() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if !l.openFile(l.idx + 1) {
			return
		}
		l.cur.First()
	}
}

func (l *levelIter) skipEmptyBackward() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if !l.openFile(l.idx - 1) {
			return
		}
		l.cur.Last()
	}
}

func (l *levelIter) Valid() bool {
	return l.err == nil && l.cur != nil && l.cur.Valid()
}

func (l *levelIter) Key() []byte   { return l.cur.Key() }
func (l *levelIter) Value() []byte { return l.cur.Value() }

func (l *levelIter) Error() error { return l.err }

func (l *levelIter) Close() error {
	if l.cur != nil {
		if err := l.cur.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.cur = nil
	}
	return l.err
}
