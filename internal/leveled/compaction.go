package leveled

import (
	"bytes"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/treebase"
)

// compaction describes one unit of work: merge inputs (level) with targets
// (level+1) and write the result to level+1.
type compaction struct {
	level     int
	inputs    []*base.FileMetadata
	targets   []*base.FileMetadata
	seek      bool // triggered by seek budget exhaustion
	trivially bool // metadata-only move
}

// NeedsCompaction reports whether claimable compaction work is pending.
// This is the allocation-free scheduling predicate: triggers are evaluated
// against the live version without building candidate file sets.
func (t *Tree) NeedsCompaction() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.claimableLocked(1, false) > 0
}

// ClaimableUnits estimates how many compaction units workers could claim
// right now; the engine sizes its worker pool to it.
func (t *Tree) ClaimableUnits() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.claimableLocked(64, false)
}

// targetsFreeLocked reports whether no level+1 file overlapping [lo, hi]
// is claimed by a running unit. Allocation-free (no target slice built).
func (t *Tree) targetsFreeLocked(v *version, level int, lo, hi []byte) bool {
	for _, g := range v.files[level+1] {
		if bytes.Compare(g.LargestUserKey(), lo) < 0 || bytes.Compare(g.SmallestUserKey(), hi) > 0 {
			continue
		}
		if t.claimed[g.FileNum] {
			return false
		}
	}
	return true
}

// l0Hull returns the user-key hull of level 0 without allocating.
func l0Hull(v *version) (lo, hi []byte) {
	for i, f := range v.files[0] {
		if i == 0 || bytes.Compare(f.SmallestUserKey(), lo) < 0 {
			lo = f.SmallestUserKey()
		}
		if i == 0 || bytes.Compare(f.LargestUserKey(), hi) > 0 {
			hi = f.LargestUserKey()
		}
	}
	return lo, hi
}

// claimableLocked counts the compaction units a worker could claim right
// now, stopping once limit is reached. With ignoreClaims it counts pending
// work as if nothing were claimed — the probe distinguishing "no work"
// from "work exists but peers hold it all" for claim-stall accounting.
func (t *Tree) claimableLocked(limit int, ignoreClaims bool) int {
	v := t.cur
	n := 0
	if len(v.files[0]) >= t.cfg.L0CompactionTrigger {
		free := ignoreClaims
		if !free && !t.l0Busy {
			lo, hi := l0Hull(v)
			free = t.targetsFreeLocked(v, 0, lo, hi)
		}
		if free {
			if n++; n >= limit {
				return n
			}
		}
	}
	// An over-threshold level contributes one unit per file it is over by
	// (score floor), bounded by the files actually free to claim: two
	// workers can drain disjoint ranges of the same level pair.
	for l := 1; l < t.cfg.NumLevels-1; l++ {
		size := v.levelBytes(l)
		max := t.cfg.MaxBytesForLevel(l)
		if size < max {
			continue
		}
		want := int(size / max)
		got := 0
		for _, f := range v.files[l] {
			if got >= want {
				break
			}
			if !ignoreClaims {
				if t.claimed[f.FileNum] ||
					!t.targetsFreeLocked(v, l, f.SmallestUserKey(), f.LargestUserKey()) {
					continue
				}
			}
			got++
		}
		n += got
		if n >= limit {
			return n
		}
	}
	// Seek-triggered candidates; stale entries (file compacted away) are
	// pruned so they cannot keep reporting phantom work.
	for fn, level := range t.seekPending {
		var file *base.FileMetadata
		for _, f := range v.files[level] {
			if f.FileNum == fn {
				file = f
				break
			}
		}
		if file == nil {
			delete(t.seekPending, fn)
			continue
		}
		if !ignoreClaims {
			if t.claimed[fn] ||
				!t.targetsFreeLocked(v, level, file.SmallestUserKey(), file.LargestUserKey()) {
				continue
			}
		}
		if n++; n >= limit {
			return n
		}
	}
	return n
}

// claimLocked marks a unit's files as owned and updates the concurrency
// counters and high-water marks.
func (t *Tree) claimLocked(c *compaction) {
	if c.level == 0 {
		t.l0Busy = true
	}
	for _, f := range c.inputs {
		t.claimed[f.FileNum] = true
	}
	for _, f := range c.targets {
		t.claimed[f.FileNum] = true
	}
	t.inflightUnits++
	t.levelUnits[c.level]++
	t.metrics.CompactionUnits++
	if int64(t.inflightUnits) > t.metrics.PeakUnitsInflight {
		t.metrics.PeakUnitsInflight = int64(t.inflightUnits)
	}
	if t.levelUnits[c.level] > t.metrics.PeakLevelUnits[c.level] {
		t.metrics.PeakLevelUnits[c.level] = t.levelUnits[c.level]
	}
}

// releaseLocked returns a unit's file claims.
func (t *Tree) releaseLocked(c *compaction) {
	if c.level == 0 {
		t.l0Busy = false
	}
	for _, f := range c.inputs {
		delete(t.claimed, f.FileNum)
	}
	for _, f := range c.targets {
		delete(t.claimed, f.FileNum)
	}
	t.inflightUnits--
	t.levelUnits[c.level]--
}

// pickLocked claims and returns the next compaction unit, or nil. Claims
// are file-granular: a unit owns its inputs plus the level+1 files they
// overlap, so units with disjoint key ranges run concurrently even on the
// same level pair. Because targets are always the full contiguous run of
// level+1 files overlapping the input hull, a unit's outputs can never
// straddle a file it does not own — the level's disjointness invariant
// holds under concurrent installs.
func (t *Tree) pickLocked() *compaction {
	v := t.cur

	// L0 gets absolute priority (draining L0 is what clears write stalls)
	// and is exclusive: L0 files overlap arbitrarily, so one unit takes
	// them all.
	if len(v.files[0]) >= t.cfg.L0CompactionTrigger && !t.l0Busy {
		lo, hi := l0Hull(v)
		if t.targetsFreeLocked(v, 0, lo, hi) {
			inputs := append([]*base.FileMetadata(nil), v.files[0]...)
			c := &compaction{level: 0, inputs: inputs, targets: overlaps(v.files[1], lo, hi)}
			if len(c.inputs) == 1 && len(c.targets) == 0 {
				c.trivially = true
			}
			t.claimLocked(c)
			return c
		}
	}

	// Size-triggered levels in score order; within a level, round-robin
	// from the compaction pointer over files free to claim.
	tried := 0
	for {
		bestScore := 0.0
		bestLevel := -1
		for l := 1; l < t.cfg.NumLevels-1; l++ {
			if tried&(1<<l) != 0 {
				continue
			}
			score := float64(v.levelBytes(l)) / float64(t.cfg.MaxBytesForLevel(l))
			if score >= 1.0 && score > bestScore {
				bestScore, bestLevel = score, l
			}
		}
		if bestLevel < 0 {
			break
		}
		if c := t.pickClaimableFileLocked(v, bestLevel); c != nil {
			return c
		}
		tried |= 1 << bestLevel
	}

	return t.pickSeekLocked(v)
}

// pickClaimableFileLocked round-robins from the level's compaction pointer
// (LevelDB style) over files whose input and target sets are free, claims
// the first, and returns the unit; nil when every candidate conflicts with
// a running unit.
func (t *Tree) pickClaimableFileLocked(v *version, level int) *compaction {
	files := v.files[level]
	if len(files) == 0 {
		return nil
	}
	start := 0
	if ptr := t.compactPtr[level]; ptr != nil {
		for i, f := range files {
			if bytes.Compare(f.LargestUserKey(), ptr) > 0 {
				start = i
				break
			}
		}
	}
	for k := 0; k < len(files); k++ {
		f := files[(start+k)%len(files)]
		if t.claimed[f.FileNum] ||
			!t.targetsFreeLocked(v, level, f.SmallestUserKey(), f.LargestUserKey()) {
			continue
		}
		c := &compaction{
			level:   level,
			inputs:  []*base.FileMetadata{f},
			targets: overlaps(v.files[level+1], f.SmallestUserKey(), f.LargestUserKey()),
		}
		if len(c.targets) == 0 {
			c.trivially = true
		}
		t.claimLocked(c)
		return c
	}
	return nil
}

// pickSeekLocked turns a seek-budget exhaustion into a claimed compaction.
func (t *Tree) pickSeekLocked(v *version) *compaction {
	for fn, level := range t.seekPending {
		var file *base.FileMetadata
		for _, f := range v.files[level] {
			if f.FileNum == fn {
				file = f
				break
			}
		}
		if file == nil {
			delete(t.seekPending, fn) // already compacted away
			continue
		}
		if t.claimed[fn] ||
			!t.targetsFreeLocked(v, level, file.SmallestUserKey(), file.LargestUserKey()) {
			continue
		}
		delete(t.seekPending, fn)
		c := &compaction{
			level:   level,
			inputs:  []*base.FileMetadata{file},
			targets: overlaps(v.files[level+1], file.SmallestUserKey(), file.LargestUserKey()),
			seek:    true,
		}
		if len(c.targets) == 0 {
			c.trivially = true
		}
		t.claimLocked(c)
		return c
	}
	return nil
}

// CompactOnce claims and performs at most one compaction unit. A worker
// that finds work pending but fully claimed by its peers starts the
// claim-stall clock; the next successful claim (by any worker) folds the
// elapsed wait into ClaimStallNanos.
func (t *Tree) CompactOnce() (bool, error) {
	t.mu.Lock()
	c := t.pickLocked()
	if c == nil {
		if t.claimableLocked(1, true) > 0 {
			t.metrics.ClaimConflicts++
			if t.claimStallStart.IsZero() {
				t.claimStallStart = time.Now()
			}
		}
		t.mu.Unlock()
		return false, nil
	}
	if !t.claimStallStart.IsZero() {
		t.metrics.ClaimStallNanos += int64(time.Since(t.claimStallStart))
		t.claimStallStart = time.Time{}
	}
	t.mu.Unlock()
	err := t.runCompaction(c)
	t.mu.Lock()
	t.releaseLocked(c)
	t.mu.Unlock()
	return true, err
}

// runCompaction brackets one unit with compaction begin/end events —
// source level, input key range, unit id, input/output volume, duration —
// and delegates the work to compactUnit.
func (t *Tree) runCompaction(c *compaction) error {
	inTables := len(c.inputs) + len(c.targets)
	var inBytes int64
	for _, f := range c.inputs {
		inBytes += int64(f.Size)
	}
	for _, f := range c.targets {
		inBytes += int64(f.Size)
	}
	lo, hi := rangeOfFiles(c.inputs)
	detail := ""
	switch {
	case c.trivially:
		detail = "trivial-move"
	case c.seek:
		detail = "seek"
	}
	id := t.unitID.Add(1)
	t.cfg.Emit(obs.Event{
		Kind: obs.EventCompactionBegin, Nanos: obs.Monotonic(),
		Level: c.level, Unit: id, GuardLo: string(lo), GuardHi: string(hi),
		InputTables: inTables, InputBytes: inBytes, Detail: detail,
	})
	start := time.Now()
	outBytes, outTables, err := t.compactUnit(c)
	t.cfg.Emit(obs.Event{
		Kind: obs.EventCompactionEnd, Nanos: obs.Monotonic(),
		Level: c.level, Unit: id, GuardLo: string(lo), GuardHi: string(hi),
		InputTables: inTables, InputBytes: inBytes,
		OutputTables: outTables, OutputBytes: outBytes,
		Dur: time.Since(start), Err: err, Detail: detail,
	})
	return err
}

// compactUnit performs one claimed unit: merge the inputs with the
// overlapping next-level files (or trivially move a file) and install the
// edit. Returns the installed output volume for the end event.
func (t *Tree) compactUnit(c *compaction) (int64, int, error) {
	if c.trivially {
		// Metadata-only move: the LSM fast path for non-overlapping data
		// that FLSM deliberately forgoes (§4.5: sequential workloads).
		f := c.inputs[0]
		edit := &manifest.VersionEdit{
			DeletedFiles: []manifest.DeletedFileEntry{{Level: c.level, FileNum: f.FileNum}},
			NewFiles:     []manifest.NewFileEntry{{Level: c.level + 1, Meta: *f}},
		}
		if _, err := t.logAndInstall(edit); err != nil {
			return 0, 0, err
		}
		t.mu.Lock()
		t.metrics.TrivialMoves++
		t.compactPtr[c.level] = append([]byte(nil), f.LargestUserKey()...)
		t.mu.Unlock()
		return int64(f.Size), 1, nil
	}

	all := append(append([]*base.FileMetadata(nil), c.inputs...), c.targets...)

	// Open each input once, collecting its range tombstones alongside its
	// merge iterator. The tombstones drive covered-point elision in the
	// compaction iterator and are rewritten into the outputs clipped to
	// each table's cut boundaries, so output tables stay disjoint and a
	// tombstone can never widen past the span its table owns. When the
	// output level is the last, tombstones every snapshot can see have
	// nothing left to mask and are dropped.
	var rd *rangedel.List
	var iters []iterator.Iterator
	var bytesIn int64
	for _, f := range all {
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			for _, it := range iters {
				it.Close()
			}
			return 0, 0, err
		}
		if f.NumRangeDels > 0 {
			if rd == nil {
				rd = &rangedel.List{}
			}
			for _, ts := range r.RangeDels().Raw() {
				rd.Add(ts)
			}
		}
		iters = append(iters, treebase.NewSequentialTableIter(r))
		bytesIn += int64(f.Size)
	}
	merged := iterator.NewMerging(base.InternalCompare, iters...)
	smallest := base.MaxSeqNum
	if t.snap != nil {
		smallest = t.snap.SmallestSnapshot()
	}
	elide := c.level+1 == t.cfg.NumLevels-1
	dropLE := base.SeqNum(0)
	if elide {
		dropLE = smallest
	}
	ci := treebase.NewCompactionIter(merged, smallest, elide, rd)

	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	// cutAt closes the open table, attaching the tombstones clipped to
	// [boundary of the previous cut, hi). hi == nil closes the final table
	// with every remaining tombstone. The clipped tombstones alias cutLo
	// (and hi) until the writer's Finish runs inside Cut, so the table must
	// be cut before the boundary advances, and the boundary copy must be a
	// fresh allocation — reusing the buffer would rewrite the stored
	// fragment starts and silently un-cover the keys after the cut.
	var cutLo []byte
	cutAt := func(hi []byte) error {
		if !rd.Empty() {
			if err := ob.AddRangeDels(rd.Clipped(cutLo, hi, dropLE)); err != nil {
				return err
			}
		}
		if ob.HasOpen() {
			if err := ob.Cut(); err != nil {
				return err
			}
		}
		if hi != nil {
			cutLo = append([]byte(nil), hi...)
		}
		return nil
	}
	var prevUkey []byte
	for ci.First(); ci.Valid(); ci.Next() {
		ukey := base.UserKey(ci.Key())
		// Cut at the size target, but never between two versions of the
		// same user key: deeper levels must stay disjoint in user keys.
		if ob.HasOpen() && ob.CurrentSize() >= uint64(t.cfg.TargetFileSize) &&
			prevUkey != nil && !bytes.Equal(prevUkey, ukey) {
			if err := cutAt(ukey); err != nil {
				ob.Abandon()
				ci.Close()
				return 0, 0, err
			}
		}
		if err := ob.Add(ci.Key(), ci.Value()); err != nil {
			ob.Abandon()
			ci.Close()
			return 0, 0, err
		}
		prevUkey = append(prevUkey[:0], ukey...)
	}
	if err := ci.Error(); err != nil {
		ob.Abandon()
		ci.Close()
		return 0, 0, err
	}
	ci.Close()
	if err := cutAt(nil); err != nil {
		ob.Abandon()
		return 0, 0, err
	}
	metas, err := ob.Finish()
	if err != nil {
		ob.Abandon()
		return 0, 0, err
	}

	edit := &manifest.VersionEdit{}
	for _, f := range c.inputs {
		edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level, FileNum: f.FileNum})
	}
	for _, f := range c.targets {
		edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level + 1, FileNum: f.FileNum})
	}
	var bytesOut int64
	for _, m := range metas {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: c.level + 1, Meta: *m})
		bytesOut += int64(m.Size)
	}
	installed, err := t.logAndInstall(edit)
	if err != nil {
		if installed {
			// Outputs are live in the installed version and inputs are still
			// referenced by the durable manifest: keep everything on disk and
			// skip the obsolete-table notification.
			ob.ReleasePending()
		} else {
			ob.Abandon()
		}
		return 0, 0, err
	}
	ob.ReleasePending()
	if t.snap != nil {
		dead := make([]base.FileNum, 0, len(edit.DeletedFiles))
		for _, d := range edit.DeletedFiles {
			dead = append(dead, d.FileNum)
		}
		t.snap.NoteObsoleteTables(dead)
	}

	t.mu.Lock()
	t.metrics.Compactions++
	if c.seek {
		t.metrics.SeekCompactions++
	}
	t.metrics.BytesCompactedIn += bytesIn
	t.metrics.BytesCompactedOut += bytesOut
	t.metrics.Compression.Merge(ob.CompressionStats())
	if len(c.inputs) > 0 {
		t.compactPtr[c.level] = append([]byte(nil), c.inputs[len(c.inputs)-1].LargestUserKey()...)
	}
	t.mu.Unlock()
	return bytesOut, len(metas), nil
}

// forcePushLocked claims a compaction moving the topmost populated
// level's files one level down regardless of size triggers, or nil when
// everything already sits in the last level (or running units hold any of
// the involved files).
func (t *Tree) forcePushLocked() *compaction {
	v := t.cur
	for l := 0; l < t.cfg.NumLevels-1; l++ {
		if len(v.files[l]) == 0 {
			continue
		}
		if l == 0 && t.l0Busy {
			return nil
		}
		inputs := append([]*base.FileMetadata(nil), v.files[l]...)
		lo, hi := rangeOfFiles(inputs)
		for _, f := range inputs {
			if t.claimed[f.FileNum] {
				return nil
			}
		}
		if !t.targetsFreeLocked(v, l, lo, hi) {
			return nil
		}
		c := &compaction{level: l, inputs: inputs, targets: overlaps(v.files[l+1], lo, hi)}
		if len(inputs) == 1 && len(c.targets) == 0 {
			c.trivially = true
		}
		t.claimLocked(c)
		return c
	}
	return nil
}

// CompactAll drives compaction until no level is over threshold. Used by
// benchmarks that measure fully-compacted stores (Fig 5.1b seeks). Like
// LevelDB's manual CompactRange it then keeps pushing data down until
// everything sits in the last level, so seeks consult one sorted run.
func (t *Tree) CompactAll() error {
	for {
		did, err := t.CompactOnce()
		if err != nil {
			return err
		}
		if did {
			continue
		}
		t.mu.Lock()
		c := t.forcePushLocked()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		err = t.runCompaction(c)
		t.mu.Lock()
		t.releaseLocked(c)
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
}
