package leveled

import (
	"bytes"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/manifest"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/treebase"
)

// compaction describes one unit of work: merge inputs (level) with targets
// (level+1) and write the result to level+1.
type compaction struct {
	level     int
	inputs    []*base.FileMetadata
	targets   []*base.FileMetadata
	seek      bool // triggered by seek budget exhaustion
	trivially bool // metadata-only move
}

// NeedsCompaction reports whether any level is over threshold.
func (t *Tree) NeedsCompaction() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pickLocked(false) != nil
}

// pickLocked chooses the next compaction, or nil. When claim is true the
// involved levels are marked busy.
func (t *Tree) pickLocked(claim bool) *compaction {
	v := t.cur
	bestScore := 0.0
	bestLevel := -1

	if !t.busyLevels[0] && !t.busyLevels[1] {
		score := float64(len(v.files[0])) / float64(t.cfg.L0CompactionTrigger)
		if score >= 1.0 && score > bestScore {
			bestScore, bestLevel = score, 0
		}
	}
	for l := 1; l < t.cfg.NumLevels-1; l++ {
		if t.busyLevels[l] || t.busyLevels[l+1] {
			continue
		}
		score := float64(v.levelBytes(l)) / float64(t.cfg.MaxBytesForLevel(l))
		if score >= 1.0 && score > bestScore {
			bestScore, bestLevel = score, l
		}
	}

	var c *compaction
	switch {
	case bestLevel == 0:
		inputs := append([]*base.FileMetadata(nil), v.files[0]...)
		lo, hi := rangeOfFiles(inputs)
		c = &compaction{level: 0, inputs: inputs, targets: overlaps(v.files[1], lo, hi)}
	case bestLevel > 0:
		f := t.pickFileLocked(v, bestLevel)
		c = &compaction{
			level:   bestLevel,
			inputs:  []*base.FileMetadata{f},
			targets: overlaps(v.files[bestLevel+1], f.SmallestUserKey(), f.LargestUserKey()),
		}
	default:
		c = t.pickSeekLocked(v)
	}
	if c == nil {
		return nil
	}
	if len(c.inputs) == 1 && c.level > 0 && len(c.targets) == 0 {
		c.trivially = true
	}
	if c.level == 0 && len(c.inputs) == 1 && len(c.targets) == 0 {
		c.trivially = true
	}
	if claim {
		t.busyLevels[c.level] = true
		t.busyLevels[c.level+1] = true
	}
	return c
}

// pickFileLocked selects the next file after the level's compaction
// pointer, wrapping around (LevelDB's round-robin).
func (t *Tree) pickFileLocked(v *version, level int) *base.FileMetadata {
	files := v.files[level]
	ptr := t.compactPtr[level]
	for _, f := range files {
		if ptr == nil || bytes.Compare(f.LargestUserKey(), ptr) > 0 {
			return f
		}
	}
	return files[0]
}

// pickSeekLocked turns a seek-budget exhaustion into a compaction.
func (t *Tree) pickSeekLocked(v *version) *compaction {
	for fn, level := range t.seekPending {
		if t.busyLevels[level] || t.busyLevels[level+1] {
			continue
		}
		var file *base.FileMetadata
		for _, f := range v.files[level] {
			if f.FileNum == fn {
				file = f
				break
			}
		}
		delete(t.seekPending, fn)
		if file == nil {
			continue // already compacted away
		}
		return &compaction{
			level:   level,
			inputs:  []*base.FileMetadata{file},
			targets: overlaps(v.files[level+1], file.SmallestUserKey(), file.LargestUserKey()),
			seek:    true,
		}
	}
	return nil
}

// CompactOnce performs at most one compaction unit. It returns whether any
// work was done.
func (t *Tree) CompactOnce() (bool, error) {
	t.mu.Lock()
	c := t.pickLocked(true)
	t.mu.Unlock()
	if c == nil {
		return false, nil
	}
	err := t.runCompaction(c)
	t.mu.Lock()
	delete(t.busyLevels, c.level)
	delete(t.busyLevels, c.level+1)
	t.mu.Unlock()
	return true, err
}

func (t *Tree) runCompaction(c *compaction) error {
	if c.trivially {
		// Metadata-only move: the LSM fast path for non-overlapping data
		// that FLSM deliberately forgoes (§4.5: sequential workloads).
		f := c.inputs[0]
		edit := &manifest.VersionEdit{
			DeletedFiles: []manifest.DeletedFileEntry{{Level: c.level, FileNum: f.FileNum}},
			NewFiles:     []manifest.NewFileEntry{{Level: c.level + 1, Meta: *f}},
		}
		if _, err := t.logAndInstall(edit); err != nil {
			return err
		}
		t.mu.Lock()
		t.metrics.TrivialMoves++
		t.compactPtr[c.level] = append([]byte(nil), f.LargestUserKey()...)
		t.mu.Unlock()
		return nil
	}

	all := append(append([]*base.FileMetadata(nil), c.inputs...), c.targets...)

	// Open each input once, collecting its range tombstones alongside its
	// merge iterator. The tombstones drive covered-point elision in the
	// compaction iterator and are rewritten into the outputs clipped to
	// each table's cut boundaries, so output tables stay disjoint and a
	// tombstone can never widen past the span its table owns. When the
	// output level is the last, tombstones every snapshot can see have
	// nothing left to mask and are dropped.
	var rd *rangedel.List
	var iters []iterator.Iterator
	var bytesIn int64
	for _, f := range all {
		r, err := t.tc.Find(f.FileNum, f.Size)
		if err != nil {
			for _, it := range iters {
				it.Close()
			}
			return err
		}
		if f.NumRangeDels > 0 {
			if rd == nil {
				rd = &rangedel.List{}
			}
			for _, ts := range r.RangeDels().Raw() {
				rd.Add(ts)
			}
		}
		iters = append(iters, treebase.NewSequentialTableIter(r))
		bytesIn += int64(f.Size)
	}
	merged := iterator.NewMerging(base.InternalCompare, iters...)
	smallest := base.MaxSeqNum
	if t.snap != nil {
		smallest = t.snap.SmallestSnapshot()
	}
	elide := c.level+1 == t.cfg.NumLevels-1
	dropLE := base.SeqNum(0)
	if elide {
		dropLE = smallest
	}
	ci := treebase.NewCompactionIter(merged, smallest, elide, rd)

	ob := treebase.NewOutputBuilder(t.fs, t.dir, t.writerOptions(), t.vs, t)
	// cutAt closes the open table, attaching the tombstones clipped to
	// [boundary of the previous cut, hi). hi == nil closes the final table
	// with every remaining tombstone. The clipped tombstones alias cutLo
	// (and hi) until the writer's Finish runs inside Cut, so the table must
	// be cut before the boundary advances, and the boundary copy must be a
	// fresh allocation — reusing the buffer would rewrite the stored
	// fragment starts and silently un-cover the keys after the cut.
	var cutLo []byte
	cutAt := func(hi []byte) error {
		if !rd.Empty() {
			if err := ob.AddRangeDels(rd.Clipped(cutLo, hi, dropLE)); err != nil {
				return err
			}
		}
		if ob.HasOpen() {
			if err := ob.Cut(); err != nil {
				return err
			}
		}
		if hi != nil {
			cutLo = append([]byte(nil), hi...)
		}
		return nil
	}
	var prevUkey []byte
	for ci.First(); ci.Valid(); ci.Next() {
		ukey := base.UserKey(ci.Key())
		// Cut at the size target, but never between two versions of the
		// same user key: deeper levels must stay disjoint in user keys.
		if ob.HasOpen() && ob.CurrentSize() >= uint64(t.cfg.TargetFileSize) &&
			prevUkey != nil && !bytes.Equal(prevUkey, ukey) {
			if err := cutAt(ukey); err != nil {
				ob.Abandon()
				ci.Close()
				return err
			}
		}
		if err := ob.Add(ci.Key(), ci.Value()); err != nil {
			ob.Abandon()
			ci.Close()
			return err
		}
		prevUkey = append(prevUkey[:0], ukey...)
	}
	if err := ci.Error(); err != nil {
		ob.Abandon()
		ci.Close()
		return err
	}
	ci.Close()
	if err := cutAt(nil); err != nil {
		ob.Abandon()
		return err
	}
	metas, err := ob.Finish()
	if err != nil {
		ob.Abandon()
		return err
	}

	edit := &manifest.VersionEdit{}
	for _, f := range c.inputs {
		edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level, FileNum: f.FileNum})
	}
	for _, f := range c.targets {
		edit.DeletedFiles = append(edit.DeletedFiles, manifest.DeletedFileEntry{Level: c.level + 1, FileNum: f.FileNum})
	}
	var bytesOut int64
	for _, m := range metas {
		edit.NewFiles = append(edit.NewFiles, manifest.NewFileEntry{Level: c.level + 1, Meta: *m})
		bytesOut += int64(m.Size)
	}
	installed, err := t.logAndInstall(edit)
	if err != nil {
		if installed {
			// Outputs are live in the installed version and inputs are still
			// referenced by the durable manifest: keep everything on disk and
			// skip the obsolete-table notification.
			ob.ReleasePending()
		} else {
			ob.Abandon()
		}
		return err
	}
	ob.ReleasePending()
	if t.snap != nil {
		dead := make([]base.FileNum, 0, len(edit.DeletedFiles))
		for _, d := range edit.DeletedFiles {
			dead = append(dead, d.FileNum)
		}
		t.snap.NoteObsoleteTables(dead)
	}

	t.mu.Lock()
	t.metrics.Compactions++
	if c.seek {
		t.metrics.SeekCompactions++
	}
	t.metrics.BytesCompactedIn += bytesIn
	t.metrics.BytesCompactedOut += bytesOut
	t.metrics.Compression.Merge(ob.CompressionStats())
	if len(c.inputs) > 0 {
		t.compactPtr[c.level] = append([]byte(nil), c.inputs[len(c.inputs)-1].LargestUserKey()...)
	}
	t.mu.Unlock()
	return nil
}

// forcePushLocked builds a compaction moving the topmost populated
// level's files one level down regardless of size triggers, or nil when
// everything already sits in the last level (or the levels are busy). The
// claimed busy levels are recorded before returning.
func (t *Tree) forcePushLocked() *compaction {
	v := t.cur
	for l := 0; l < t.cfg.NumLevels-1; l++ {
		if len(v.files[l]) == 0 {
			continue
		}
		if t.busyLevels[l] || t.busyLevels[l+1] {
			return nil
		}
		inputs := append([]*base.FileMetadata(nil), v.files[l]...)
		lo, hi := rangeOfFiles(inputs)
		c := &compaction{level: l, inputs: inputs, targets: overlaps(v.files[l+1], lo, hi)}
		if len(inputs) == 1 && len(c.targets) == 0 {
			c.trivially = true
		}
		t.busyLevels[l] = true
		t.busyLevels[l+1] = true
		return c
	}
	return nil
}

// CompactAll drives compaction until no level is over threshold. Used by
// benchmarks that measure fully-compacted stores (Fig 5.1b seeks). Like
// LevelDB's manual CompactRange it then keeps pushing data down until
// everything sits in the last level, so seeks consult one sorted run.
func (t *Tree) CompactAll() error {
	for {
		did, err := t.CompactOnce()
		if err != nil {
			return err
		}
		if did {
			continue
		}
		t.mu.Lock()
		c := t.forcePushLocked()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		err = t.runCompaction(c)
		t.mu.Lock()
		delete(t.busyLevels, c.level)
		delete(t.busyLevels, c.level+1)
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
}
