// Package leveled implements the classic leveled log-structured merge tree
// (§2.2): every level above L0 holds sstables with disjoint key ranges, and
// compaction rewrites overlapping sstables in the next level. It is the
// baseline PebblesDB is measured against; the LevelDB, HyperLevelDB and
// RocksDB presets are configurations of this tree.
package leveled

import (
	"bytes"
	"fmt"
	"sort"

	"pebblesdb/internal/base"
	"pebblesdb/internal/manifest"
)

// version is an immutable snapshot of the file layout. files[0] is sorted
// by file number descending (newest first); deeper levels are sorted by
// smallest key and are disjoint in user-key ranges.
type version struct {
	files [][]*base.FileMetadata
}

func newVersion(numLevels int) *version {
	return &version{files: make([][]*base.FileMetadata, numLevels)}
}

// apply builds a new version from v with edit applied.
func (v *version) apply(edit *manifest.VersionEdit, numLevels int) (*version, error) {
	nv := newVersion(numLevels)
	deleted := make(map[base.FileNum]bool, len(edit.DeletedFiles))
	deletedLevel := make(map[base.FileNum]int, len(edit.DeletedFiles))
	for _, d := range edit.DeletedFiles {
		deleted[d.FileNum] = true
		deletedLevel[d.FileNum] = d.Level
	}
	for l := 0; l < numLevels; l++ {
		for _, f := range v.files[l] {
			if deleted[f.FileNum] && deletedLevel[f.FileNum] == l {
				continue
			}
			nv.files[l] = append(nv.files[l], f)
		}
	}
	for i := range edit.NewFiles {
		nf := &edit.NewFiles[i]
		if nf.Level < 0 || nf.Level >= numLevels {
			return nil, fmt.Errorf("leveled: new file at invalid level %d", nf.Level)
		}
		meta := nf.Meta // copy
		meta.AllowedSeeks = allowedSeeks(meta.Size)
		nv.files[nf.Level] = append(nv.files[nf.Level], &meta)
	}
	sort.Slice(nv.files[0], func(i, j int) bool {
		return nv.files[0][i].FileNum > nv.files[0][j].FileNum
	})
	for l := 1; l < numLevels; l++ {
		fs := nv.files[l]
		sort.Slice(fs, func(i, j int) bool {
			return base.InternalCompare(fs[i].Smallest, fs[j].Smallest) < 0
		})
	}
	return nv, nil
}

// allowedSeeks follows LevelDB: one compaction-triggering seek budget unit
// per 16 KB of file, floored at 100.
func allowedSeeks(size uint64) int {
	n := int(size / (16 << 10))
	if n < 100 {
		n = 100
	}
	return n
}

// levelBytes sums file sizes in a level.
func (v *version) levelBytes(level int) int64 {
	var t int64
	for _, f := range v.files[level] {
		t += int64(f.Size)
	}
	return t
}

// findFile returns the index in the (sorted, disjoint) level of the file
// whose range may contain ukey, or -1. A file whose upper bound is an
// exclusive range-del sentinel at exactly ukey does not contain ukey — the
// neighbor starting at ukey does — so the search treats such files as
// ending before ukey.
func findFile(files []*base.FileMetadata, ukey []byte) int {
	i := sort.Search(len(files), func(i int) bool {
		c := bytes.Compare(files[i].LargestUserKey(), ukey)
		if c != 0 {
			return c > 0
		}
		return !files[i].LargestExclusive()
	})
	if i >= len(files) {
		return -1
	}
	if bytes.Compare(files[i].SmallestUserKey(), ukey) > 0 {
		return -1
	}
	return i
}

// overlaps returns the files in the (sorted, disjoint) level whose user-key
// ranges intersect [lo, hi] (inclusive).
func overlaps(files []*base.FileMetadata, lo, hi []byte) []*base.FileMetadata {
	var out []*base.FileMetadata
	for _, f := range files {
		if bytes.Compare(f.LargestUserKey(), lo) < 0 {
			continue
		}
		if bytes.Compare(f.SmallestUserKey(), hi) > 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

// rangeOfFiles returns the smallest and largest user keys across files.
func rangeOfFiles(files []*base.FileMetadata) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || bytes.Compare(f.SmallestUserKey(), lo) < 0 {
			lo = f.SmallestUserKey()
		}
		if hi == nil || bytes.Compare(f.LargestUserKey(), hi) > 0 {
			hi = f.LargestUserKey()
		}
	}
	return lo, hi
}
