package engine

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
)

// Get returns the value of key, or found=false if absent or deleted. A nil
// snapshot reads the latest committed state.
func (e *Engine) Get(key []byte, snap *Snapshot) (value []byte, found bool, err error) {
	e.stats.gets.Add(1)
	e.opLock.RLock()
	defer e.releaseOp()

	seq := base.SeqNum(e.seq.Load())
	if snap != nil {
		seq = snap.seq
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, false, ErrClosed
	}
	mem, imm := e.mem, e.imm
	e.mu.Unlock()

	if v, kind, ok := mem.Get(key, seq); ok {
		return v, kind == base.KindSet, nil
	}
	if imm != nil {
		if v, kind, ok := imm.Get(key, seq); ok {
			return v, kind == base.KindSet, nil
		}
	}
	return e.tree.Get(key, seq)
}

// Iter is the user-facing iterator: it yields live user keys in ascending
// order, collapsing versions and hiding tombstones at the read sequence.
type Iter struct {
	e       *Engine
	merged  iterator.Iterator
	readSeq base.SeqNum
	ukey    []byte
	value   []byte
	valid   bool
	closed  bool
	err     error
}

// NewIter returns an iterator over the store. A nil snapshot observes the
// latest committed state as of creation. The iterator holds resources;
// Close it promptly.
func (e *Engine) NewIter(snap *Snapshot) (*Iter, error) {
	e.stats.iterators.Add(1)
	e.opLock.RLock()

	seq := base.SeqNum(e.seq.Load())
	if snap != nil {
		seq = snap.seq
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.opLock.RUnlock()
		return nil, ErrClosed
	}
	mem, imm := e.mem, e.imm
	e.mu.Unlock()

	iters := []iterator.Iterator{mem.NewIter()}
	if imm != nil {
		iters = append(iters, imm.NewIter())
	}
	treeIters, err := e.tree.NewIters()
	if err != nil {
		e.opLock.RUnlock()
		return nil, err
	}
	iters = append(iters, treeIters...)
	return &Iter{
		e:       e,
		merged:  iterator.NewMerging(base.InternalCompare, iters...),
		readSeq: seq,
	}, nil
}

// SeekGE positions the iterator at the first live user key >= key.
func (it *Iter) SeekGE(key []byte) {
	if it.closed {
		return
	}
	search := base.MakeSearchKey(make([]byte, 0, len(key)+base.TrailerLen), key, it.readSeq)
	it.merged.SeekGE(search)
	it.findNext(nil)
}

// First positions the iterator at the smallest live user key.
func (it *Iter) First() {
	if it.closed {
		return
	}
	it.merged.First()
	it.findNext(nil)
}

// Next advances to the next live user key.
func (it *Iter) Next() {
	if it.closed || !it.valid {
		return
	}
	prev := append([]byte(nil), it.ukey...)
	it.merged.Next()
	it.findNext(prev)
}

// findNext scans the merged stream for the newest visible version of the
// next user key after skipUkey, skipping invisible sequence numbers,
// shadowed versions and tombstones.
func (it *Iter) findNext(skipUkey []byte) {
	it.valid = false
	for it.merged.Valid() {
		ukey, seq, kind, ok := base.DecodeInternalKey(it.merged.Key())
		if !ok {
			it.merged.Next()
			continue
		}
		if seq > it.readSeq {
			it.merged.Next()
			continue
		}
		if skipUkey != nil && string(ukey) == string(skipUkey) {
			it.merged.Next()
			continue
		}
		if kind == base.KindDelete {
			// Newest visible version is a tombstone: skip this user key
			// entirely.
			skipUkey = append(skipUkey[:0], ukey...)
			it.merged.Next()
			continue
		}
		it.ukey = append(it.ukey[:0], ukey...)
		it.value = it.merged.Value()
		it.valid = true
		return
	}
	if err := it.merged.Error(); err != nil && it.err == nil {
		it.err = err
	}
}

// Valid reports whether the iterator is positioned on a live entry.
func (it *Iter) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *Iter) Key() []byte { return it.ukey }

// Value returns the current value (valid until the next move).
func (it *Iter) Value() []byte { return it.value }

// Error returns the first error the iterator encountered.
func (it *Iter) Error() error { return it.err }

// Close releases the iterator's resources. It must be called exactly once.
func (it *Iter) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.valid = false
	err := it.merged.Close()
	it.e.releaseOp()
	if it.err == nil {
		it.err = err
	}
	return it.err
}
