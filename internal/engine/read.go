package engine

import (
	"bytes"
	"sync"
	"sync/atomic"

	"pebblesdb/internal/base"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/treebase"
)

// Get returns the value of key, or found=false if absent or deleted. A nil
// snapshot reads the latest committed state. The value is appended to
// dst[:0] and returned: passing a buffer with sufficient capacity makes the
// whole read allocation-free; passing nil allocates exactly the value copy.
// The caller owns the returned slice.
func (e *Engine) Get(key []byte, snap *Snapshot, dst []byte) (value []byte, found bool, err error) {
	e.stats.gets.Add(1)
	e.opLock.RLock()
	defer e.releaseOp()

	seq := base.SeqNum(e.seq.Load())
	if snap != nil {
		seq = snap.seq
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, false, ErrClosed
	}
	mem, imm := e.mem, e.imm
	e.mu.Unlock()

	// The pooled scratch (search-key buffer, block cursors) makes the
	// steady-state Get O(1) allocations: the only unavoidable one is the
	// value copy into dst when the caller supplies no buffer.
	s := sstable.AcquireGetScratch()
	defer e.releaseGetScratch(s)

	s.SearchKey = base.MakeSearchKey(s.SearchKey[:0], key, seq)
	// Range tombstones fold into the descent: each memtable reports the
	// newest visible tombstone covering the key alongside its newest point
	// entry, and whichever has the higher sequence number decides. Sequence
	// numbers only decrease down the stack (mem > imm > tree), so a
	// memtable-level tombstone with no newer point short-circuits the whole
	// read — a covered key returns not-found without touching the tree and
	// without allocating.
	cov := mem.CoverSeq(key, seq)
	if v, eseq, kind, ok := mem.GetSearch(s.SearchKey); ok {
		if kind != base.KindSet || cov > eseq {
			return nil, false, nil
		}
		return append(dst[:0], v...), true, nil
	}
	if cov > 0 {
		return nil, false, nil
	}
	if imm != nil {
		cov = imm.CoverSeq(key, seq)
		if v, eseq, kind, ok := imm.GetSearch(s.SearchKey); ok {
			if kind != base.KindSet || cov > eseq {
				return nil, false, nil
			}
			return append(dst[:0], v...), true, nil
		}
		if cov > 0 {
			return nil, false, nil
		}
	}
	// Nil-snapshot reads hand the tree the live sequence counter instead of
	// the frozen seq: the tree pins its version first, then re-resolves the
	// read sequence, closing the window where a concurrent compaction
	// collapses every version <= seq into a successor that seq cannot see.
	// (Memtables never drop versions, so probing them at the earlier seq
	// above is safe; registered snapshots are protected by
	// SmallestSnapshot and keep their fixed seq.)
	var latest *atomic.Uint64
	if snap == nil {
		latest = &e.seq
	}
	v, found, err := e.tree.Get(key, seq, latest, s)
	if err != nil || !found {
		return nil, false, err
	}
	return append(dst[:0], v...), true, nil
}

// releaseGetScratch folds the scratch's read-path counters into the
// engine's metrics and returns it to the shared pool.
func (e *Engine) releaseGetScratch(s *sstable.GetScratch) {
	st := &s.Stats
	if st.TablesProbed != 0 {
		e.stats.getTablesProbed.Add(st.TablesProbed)
	}
	if st.BloomNegatives != 0 {
		e.stats.getBloomNegatives.Add(st.BloomNegatives)
	}
	if st.BloomFalsePositives != 0 {
		e.stats.getBloomFalsePositives.Add(st.BloomFalsePositives)
	}
	if st.BlockHits != 0 {
		e.stats.getBlockHits.Add(st.BlockHits)
	}
	if st.BlockMisses != 0 {
		e.stats.getBlockMisses.Add(st.BlockMisses)
	}
	sstable.ReleaseGetScratch(s)
}

// IterOptions configures an engine iterator.
type IterOptions struct {
	// Lower is the inclusive lower user-key bound; nil = unbounded.
	Lower []byte
	// Upper is the exclusive upper user-key bound; nil = unbounded.
	Upper []byte
	// Prefix restricts the iterator to keys starting with these bytes. It
	// implies bounds [Prefix, PrefixSuccessor(Prefix)) — intersected with
	// Lower/Upper — and additionally lets the trees skip sstables whose
	// prefix bloom filter (built at PrefixBloomLength) rules the prefix
	// out before any data-block IO.
	Prefix []byte
	// Snapshot pins the read sequence; nil observes the latest committed
	// state as of iterator creation.
	Snapshot *Snapshot
}

// Iter is the user-facing iterator: it yields live user keys in key order,
// forward or backward, collapsing versions and hiding tombstones at the
// read sequence, and never strays outside its bounds.
//
// Iters are pooled: Close returns the iterator (and its retained key,
// value, seek-key and bounds buffers, its kids slice, and the embedded
// merging iterator's heap) to a shared pool, so the steady state of a
// scan-heavy workload creates and positions iterators without allocating.
// Close must be called exactly once.
type Iter struct {
	e       *Engine
	merged  iterator.Merging
	readSeq base.SeqNum
	bounds  base.Bounds
	// rangeDels masks point entries covered by a visible range tombstone.
	// It aggregates every tombstone visible to the iterator — memtables
	// plus all in-bounds tables — at creation; nil when none exist (the
	// common case pays one nil check per entry).
	rangeDels *rangedel.List
	ukey      []byte
	value     []byte
	// valLoaded marks value as materialized. Forward iteration defers
	// merged.Value() until Value() is called: key-only scans never touch
	// the value bytes.
	valLoaded bool
	valBuf    []byte
	prevBuf   []byte
	// seekBuf holds the internal search key built by SeekGE/SeekLT/Prev;
	// skipBuf holds findNext's dead-user-key run tracker. Both reused
	// across seeks.
	seekBuf []byte
	skipBuf []byte
	// lowerBuf/upperBuf/prefixBuf back bounds and prefix copies (the
	// iterator outlives the caller's buffers).
	lowerBuf  []byte
	upperBuf  []byte
	prefixBuf []byte
	prefix    []byte
	// kids is the merged iterator's child list: memtable legs (backed by
	// memIters, by value) followed by the tree's iterators.
	kids     []iterator.Iterator
	memIters [2]memtable.Iter
	stats    treebase.IterStats
	// dir is +1 while iterating forward (merged sits on the entry backing
	// ukey/value) and -1 while iterating backward (merged sits just before
	// the current user key's entries, mirroring LevelDB's DBIter).
	dir    int
	valid  bool
	closed bool
	err    error
}

var iterPool = sync.Pool{New: func() interface{} { return &Iter{} }}

// NewIter returns an iterator over the store. Bounds (and the prefix, when
// set) prune guards and sstables before any table IO. The iterator holds
// resources; Close it promptly.
func (e *Engine) NewIter(opts *IterOptions) (*Iter, error) {
	var o IterOptions
	if opts != nil {
		o = *opts
	}
	e.stats.iterators.Add(1)
	e.opLock.RLock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.opLock.RUnlock()
		return nil, ErrClosed
	}
	mem, imm := e.mem, e.imm
	e.mu.Unlock()

	it := iterPool.Get().(*Iter)
	it.e = e
	it.rangeDels = nil
	it.valLoaded = false
	it.value = nil
	it.prefix = nil
	it.stats = treebase.IterStats{}
	it.dir = 1
	it.valid = false
	it.closed = false
	it.err = nil
	it.kids = it.kids[:0]

	// Resolve the effective bounds into retained buffers: the caller's
	// bounds intersected with the key range the prefix spans. The prefix
	// upper bound is exact — every key >= PrefixSuccessor(Prefix) lacks
	// the prefix, and when no successor exists (all-0xff) every key >=
	// Prefix has it, so the unbounded upper loses nothing.
	lower, upper := o.Lower, o.Upper
	upperIsSucc := false
	if o.Prefix != nil {
		it.prefixBuf = append(it.prefixBuf[:0], o.Prefix...)
		it.prefix = it.prefixBuf
		if lower == nil || bytes.Compare(it.prefix, lower) > 0 {
			lower = it.prefix
		}
		if succ := base.PrefixSuccessor(it.upperBuf[:0], it.prefix); succ != nil {
			it.upperBuf = succ
			if upper == nil || bytes.Compare(succ, upper) < 0 {
				upper = succ
				upperIsSucc = true
			}
		}
	}
	it.bounds = base.Bounds{}
	if lower != nil {
		it.lowerBuf = append(it.lowerBuf[:0], lower...)
		it.bounds.Lower = it.lowerBuf
	}
	if upper != nil {
		if !upperIsSucc {
			it.upperBuf = append(it.upperBuf[:0], upper...)
		}
		it.bounds.Upper = it.upperBuf
	}

	mem.InitIter(&it.memIters[0])
	it.kids = append(it.kids, &it.memIters[0])
	if imm != nil {
		imm.InitIter(&it.memIters[1])
		it.kids = append(it.kids, &it.memIters[1])
	}
	req := treebase.IterRequest{Bounds: it.bounds, Prefix: it.prefix, Stats: &it.stats}
	kids, treeRds, err := e.tree.NewIters(req, it.kids)
	if err != nil {
		it.kids = it.kids[:0]
		iterPool.Put(it)
		e.opLock.RUnlock()
		return nil, err
	}
	it.kids = kids

	// Choose the read sequence only after every source is pinned (same
	// collapse-safe ordering as Get): versions dropped by a concurrent
	// compaction are then always shadowed by a version this seq can see.
	seq := base.SeqNum(e.seq.Load())
	if o.Snapshot != nil {
		seq = o.Snapshot.seq
	}
	it.readSeq = seq

	// One visibility mask covers every source: a point entry is dead iff
	// some tombstone anywhere in the stack covers its key with a higher
	// sequence number at or below the read sequence, which is exactly what
	// the aggregated list answers. The memtables' copy-on-write lists are
	// snapshotted only after the read sequence: their point streams are
	// read live, so a tombstone committed up to that sequence must be in
	// the mask (the store only grows; newer tombstones are filtered by
	// CoverSeq's visibility check).
	rds := mem.RangeDels()
	if imm != nil {
		rds = append(rds[:len(rds):len(rds)], imm.RangeDels()...)
	}
	if len(rds) > 0 || len(treeRds) > 0 {
		rdList := rangedel.NewList(rds)
		for _, t := range treeRds {
			rdList.Add(t)
		}
		rdList.Build()
		it.rangeDels = rdList
	}
	it.merged.Init(base.InternalCompare, it.kids)
	return it, nil
}

// SeekGE positions the iterator at the first live user key >= key (clamped
// to the lower bound).
func (it *Iter) SeekGE(key []byte) {
	if it.closed {
		return
	}
	if it.bounds.Lower != nil && bytes.Compare(key, it.bounds.Lower) < 0 {
		key = it.bounds.Lower
	}
	it.seekBuf = base.MakeSearchKey(it.seekBuf[:0], key, it.readSeq)
	search := it.seekBuf
	it.dir = 1
	it.merged.SeekGE(search)
	it.findNext(nil)
	it.checkUpper()
}

// SeekLT positions the iterator at the last live user key < key (clamped
// to the upper bound).
func (it *Iter) SeekLT(key []byte) {
	if it.closed {
		return
	}
	if it.bounds.Upper != nil && bytes.Compare(key, it.bounds.Upper) > 0 {
		key = it.bounds.Upper
	}
	// A search key at MaxSeqNum sorts before every entry of key, so
	// SeekLT lands on the last entry of a strictly smaller user key.
	it.seekBuf = base.MakeSearchKey(it.seekBuf[:0], key, base.MaxSeqNum)
	search := it.seekBuf
	it.dir = -1
	it.merged.SeekLT(search)
	it.findPrev()
	it.checkLower()
}

// First positions the iterator at the smallest live user key within
// bounds.
func (it *Iter) First() {
	if it.closed {
		return
	}
	if it.bounds.Lower != nil {
		it.SeekGE(it.bounds.Lower)
		return
	}
	it.dir = 1
	it.merged.First()
	it.findNext(nil)
	it.checkUpper()
}

// Last positions the iterator at the largest live user key within bounds.
func (it *Iter) Last() {
	if it.closed {
		return
	}
	if it.bounds.Upper != nil {
		it.SeekLT(it.bounds.Upper)
		return
	}
	it.dir = -1
	it.merged.Last()
	it.findPrev()
	it.checkLower()
}

// Next advances to the next live user key.
func (it *Iter) Next() {
	if it.closed || !it.valid {
		return
	}
	it.prevBuf = append(it.prevBuf[:0], it.ukey...)
	prev := it.prevBuf
	if it.dir < 0 {
		// merged sits just before the current key's entries; step onto
		// them and let findNext skip the rest of the run.
		if !it.merged.Valid() {
			it.merged.First()
		} else {
			it.merged.Next()
		}
		it.dir = 1
	} else {
		it.merged.Next()
	}
	it.findNext(prev)
	it.checkUpper()
}

// Prev moves back to the previous live user key.
func (it *Iter) Prev() {
	if it.closed || !it.valid {
		return
	}
	if it.dir > 0 {
		// merged sits on the current entry. One reseek to the last entry
		// of the previous user key hops over the rest of the current
		// key's run — including newer-than-snapshot versions, which sort
		// before it — the same construction SeekLT uses.
		it.seekBuf = base.MakeSearchKey(it.seekBuf[:0], it.ukey, base.MaxSeqNum)
		it.merged.SeekLT(it.seekBuf)
		it.dir = -1
	}
	it.findPrev()
	it.checkLower()
}

// findNext scans the merged stream forward for the newest visible version
// of the next user key after skipUkey, skipping invisible sequence
// numbers, shadowed versions and tombstones.
func (it *Iter) findNext(skipUkey []byte) {
	it.valid = false
	for it.merged.Valid() {
		ukey, seq, kind, ok := base.DecodeInternalKey(it.merged.Key())
		if !ok {
			it.merged.Next()
			continue
		}
		if seq > it.readSeq {
			it.merged.Next()
			continue
		}
		if skipUkey != nil && string(ukey) == string(skipUkey) {
			it.merged.Next()
			continue
		}
		if kind == base.KindDelete ||
			(it.rangeDels != nil && it.rangeDels.CoverSeq(ukey, it.readSeq) > seq) {
			// Newest visible version is a tombstone, or a visible range
			// tombstone covers it: skip this user key entirely. The run
			// tracker lives in a retained buffer so tombstone-dense regions
			// don't allocate per dead key.
			it.skipBuf = append(it.skipBuf[:0], ukey...)
			skipUkey = it.skipBuf
			it.merged.Next()
			continue
		}
		it.ukey = append(it.ukey[:0], ukey...)
		// Defer merged.Value() to Value(): key-only consumers skip the
		// value materialization entirely.
		it.valLoaded = false
		it.valid = true
		return
	}
	if err := it.merged.Error(); err != nil && it.err == nil {
		it.err = err
	}
}

// findPrev scans the merged stream backward for the newest visible version
// of the largest user key at or before the current position. Reverse order
// yields a key's versions oldest-first, so each visible version overwrites
// the saved candidate and the newest visible one wins; a tombstone clears
// the candidate and the scan moves on to smaller keys. The scan stops on
// the first entry of a yet-smaller key, leaving merged "just before" the
// result's run, which is what Prev and Next-after-Prev rely on.
func (it *Iter) findPrev() {
	it.valid = false
	kind := base.KindDelete // nothing saved yet
	for it.merged.Valid() {
		ukey, seq, k, ok := base.DecodeInternalKey(it.merged.Key())
		if ok && seq <= it.readSeq {
			if it.rangeDels != nil && k != base.KindDelete &&
				it.rangeDels.CoverSeq(ukey, it.readSeq) > seq {
				// A visible range tombstone kills this version; for the
				// candidate tracking below that is exactly a point delete.
				k = base.KindDelete
			}
			if kind != base.KindDelete && bytes.Compare(ukey, it.ukey) < 0 {
				// Entered the run of a smaller user key with a live
				// candidate saved: the candidate is the answer.
				it.valid = true
				return
			}
			kind = k
			if k != base.KindDelete {
				it.ukey = append(it.ukey[:0], ukey...)
				// Copy: merged keeps moving, so the current value's backing
				// buffer won't stay put. valBuf never aliases block data.
				it.valBuf = append(it.valBuf[:0], it.merged.Value()...)
				it.value = it.valBuf
				it.valLoaded = true
			}
		}
		it.merged.Prev()
	}
	if err := it.merged.Error(); err != nil && it.err == nil {
		it.err = err
	}
	if kind != base.KindDelete {
		it.valid = true
	}
}

func (it *Iter) checkUpper() {
	if it.valid && it.bounds.Upper != nil && bytes.Compare(it.ukey, it.bounds.Upper) >= 0 {
		it.valid = false
	}
}

func (it *Iter) checkLower() {
	if it.valid && it.bounds.Lower != nil && bytes.Compare(it.ukey, it.bounds.Lower) < 0 {
		it.valid = false
	}
}

// Valid reports whether the iterator is positioned on a live entry.
func (it *Iter) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *Iter) Key() []byte { return it.ukey }

// Value returns the current value (valid until the next move). Forward
// iteration materializes the value lazily, on the first call per entry.
func (it *Iter) Value() []byte {
	if !it.valLoaded {
		if !it.valid {
			return nil
		}
		it.value = it.merged.Value()
		it.valLoaded = true
	}
	return it.value
}

// Error returns the first error the iterator encountered.
func (it *Iter) Error() error { return it.err }

// Close releases the iterator's resources, folds its scan counters into
// the engine's metrics, and returns the iterator to the pool. It must be
// called exactly once: a second Close could tear down the iterator's next
// user.
func (it *Iter) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.valid = false
	err := it.merged.Close()
	if st := &it.stats; st.TablesOpened != 0 || st.PrefixSkips != 0 {
		it.e.stats.iterTablesOpened.Add(st.TablesOpened)
		it.e.stats.iterPrefixSkips.Add(st.PrefixSkips)
	}
	it.e.releaseOp()
	if it.err == nil {
		it.err = err
	}
	finalErr := it.err
	it.e = nil
	it.rangeDels = nil
	it.value = nil
	it.kids = it.kids[:0]
	iterPool.Put(it)
	return finalErr
}
