// Package engine implements the store machinery shared by PebblesDB and
// the LSM baselines: write-ahead logging, memtable rotation, write stalls
// (level0-slowdown / level0-stop, §5.1), background flush and compaction
// scheduling, snapshots, and crash recovery. The on-storage structure is
// delegated to a Tree (internal/flsm or internal/leveled), mirroring how
// PebblesDB replaced HyperLevelDB's version/compaction layer while reusing
// the rest (§4.4).
package engine

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/flsm"
	"pebblesdb/internal/iterator"
	"pebblesdb/internal/leveled"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/rangedel"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
	"pebblesdb/internal/vfs"
	"pebblesdb/internal/wal"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("engine: store is closed")

// ErrReadOnly marks writes rejected while the store is degraded by a
// background error. Match with errors.Is(err, ErrReadOnly); the original
// failure is available through errors.Unwrap. Reads keep serving in this
// state, and Resume restores writability when the cause was transient.
var ErrReadOnly = errors.New("engine: store is in read-only mode")

// readOnlyError wraps the background error that degraded the store so
// callers see both the mode (errors.Is(err, ErrReadOnly)) and the cause.
type readOnlyError struct{ cause error }

func (e *readOnlyError) Error() string {
	return fmt.Sprintf("engine: store is in read-only mode: %v", e.cause)
}
func (e *readOnlyError) Unwrap() error        { return e.cause }
func (e *readOnlyError) Is(target error) bool { return target == ErrReadOnly }

// bgErrPermanent classifies a background failure: corruption means the
// durable state itself is damaged, so retrying or resuming cannot help.
// Everything else (ENOSPC, injected IO errors, failed fsyncs) is
// environmental and may clear.
func bgErrPermanent(err error) bool {
	return errors.Is(err, sstable.ErrCorrupt) || errors.Is(err, wal.ErrCorrupt)
}

// Kind selects the on-storage structure.
type Kind int

const (
	// KindFLSM is the fragmented LSM (PebblesDB).
	KindFLSM Kind = iota
	// KindLeveled is the classic leveled LSM (the baselines).
	KindLeveled
)

// Tree is the on-storage structure contract shared by internal/flsm and
// internal/leveled.
type Tree interface {
	NewFileNum() base.FileNum
	RecoveryLogNum() base.FileNum
	PersistedLastSeq() base.SeqNum
	// WantGuard is the cheap, lock-free pre-filter for Ingest: it reports
	// whether ukey is a guard candidate, so the commit pipeline only pays
	// the Ingest cost (copy + tree mutex) for the rare keys that qualify.
	WantGuard(ukey []byte) bool
	Ingest(ukey []byte)
	// Flush writes one frozen memtable: its point entries (it) plus its
	// range tombstones, which land in the output table's range-del block.
	Flush(it iterator.Iterator, rangeDels []rangedel.Tombstone, logNum base.FileNum, lastSeq base.SeqNum) error
	// Get returns the newest visible version of ukey at seq. latest, when
	// non-nil, is the engine's committed-sequence counter: the tree must
	// pin its current version first and only then load the read sequence
	// from it, so a concurrent compaction can never collapse every version
	// <= seq out of the probed view (versions are only dropped when a
	// newer, also-committed version shadows them — which the later seq
	// load then makes visible). Snapshot reads pass latest=nil: registered
	// snapshots are protected from collapse by SmallestSnapshot. s, when
	// non-nil, supplies the reusable point-read working set; the returned
	// value aliases immutable storage (block payloads, cache entries) and
	// must be copied by the caller if it outlives the read.
	Get(ukey []byte, seq base.SeqNum, latest *atomic.Uint64, s *sstable.GetScratch) (value []byte, found bool, err error)
	// NewIters appends the point iterators for the pinned version to dst
	// and returns them plus every range tombstone its in-bounds tables
	// hold; the engine merges those with the memtables' tombstones into
	// the iterator's visibility mask. The request carries the bounds, an
	// optional prefix hint (tables whose prefix bloom filter excludes it
	// may be skipped), and a stats sink.
	NewIters(req treebase.IterRequest, dst []iterator.Iterator) ([]iterator.Iterator, []rangedel.Tombstone, error)
	NeedsCompaction() bool
	// ClaimableUnits estimates how many compaction units workers could
	// claim right now (disjoint guard groups or file sets); the engine
	// sizes its worker pool to it instead of blindly spawning up to the
	// concurrency cap.
	ClaimableUnits() int
	CompactOnce() (bool, error)
	CompactAll() error
	L0Count() int
	ProtectedFiles() map[base.FileNum]bool
	EvictTable(fn base.FileNum)
	ManifestFileNum() base.FileNum
	LogNum() base.FileNum
	Metrics() treebase.Metrics
	CacheMetrics() tablecache.Metrics
	Dump(w io.Writer)
	Close() error
}

// Engine is a single-node key-value store instance.
type Engine struct {
	cfg  *base.Config
	fs   vfs.FS
	dir  string
	tree Tree

	// commitMu serializes commit leaders: room checks, sequence
	// allocation and WAL appends. Memtable application and fsyncs happen
	// outside it (see commit.go).
	commitMu sync.Mutex

	// cq queues arriving batches for the next commit leader.
	cq commitQueue

	// pendMu guards the pending-commit publication queue; pend[pendHead:]
	// holds scheduled commits in sequence order until their memtable
	// applications land, at which point publishLocked ratchets seq and
	// pubCond wakes the owners.
	pendMu   sync.Mutex
	pend     []*commitRequest
	pendHead int
	pubCond  *sync.Cond
	// pendCount mirrors len(pend[pendHead:]) so the serial fast path can
	// check "pipeline empty" without taking pendMu.
	pendCount atomic.Int64

	// logSeq is the last *allocated* sequence number (guarded by
	// commitMu); seq below trails it until commits publish.
	logSeq uint64

	// ing is the guard-ingestion sidecar (commit.go).
	ing ingestQueue

	// mu protects the mutable fields below and feeds cond.
	mu         sync.Mutex
	cond       *sync.Cond
	mem        *memtable.Memtable
	imm        *memtable.Memtable
	walW       *wal.Writer
	walNum     base.FileNum
	flushing   bool
	compacting int
	// bgErr is the background error that degraded the store to read-only;
	// bgPermanent records its class (corruption cannot be resumed). Both
	// are cleared by Resume when the cause was transient. immLogNum and
	// immLastSeq are the pending flush's stamp, kept so Resume can re-run
	// an interrupted flush with the exact arguments the rotation chose.
	bgErr       error
	bgPermanent bool
	immLogNum   base.FileNum
	immLastSeq  base.SeqNum
	closed      bool
	// stallClear is closed and replaced when a compaction unit brings the
	// L0 count back under the slowdown trigger. Slowdown-stalled writers
	// select on it with a timeout: they wake the instant the stall
	// condition clears, but still sleep out the full backpressure tick
	// while L0 remains high (the 1ms delay is deliberate throttling, not
	// a poll interval — waking on arbitrary progress would defeat it).
	stallClear chan struct{}

	// seq is the volatile last-committed (visible) sequence number.
	seq atomic.Uint64

	// readOnly mirrors bgErr != nil for lock-free observation (metrics,
	// server status).
	readOnly atomic.Bool

	snapMu sync.Mutex
	snaps  map[base.SeqNum]int

	// opLock guards physical file deletion against in-flight reads: reads
	// hold it shared for their duration, the obsolete-file sweeper takes
	// it exclusively (TryLock) and defers when readers are active.
	opLock         sync.RWMutex
	cleanupPending atomic.Bool

	// obsolete queues table files that left the live version; the sweeper
	// deletes them once no reads are in flight. Guarded by mu. Tables are
	// never discovered by directory scanning at runtime (only at Open), so
	// a file being created can never be mistaken for garbage.
	obsolete []base.FileNum

	// rec is the always-on flight recorder: every lifecycle event is teed
	// into it (alongside any user listener) so a degradation comes with
	// its causal trace. flushID and stallID correlate begin/end pairs.
	rec     *obs.Recorder
	flushID atomic.Uint64
	stallID atomic.Uint64

	stats engineStats
}

// engineStats holds the engine's lock-free counters. Keeping them in one
// named struct lets Metrics snapshot them in a single pass (snapshot)
// instead of scattering loads across the constructor — each atomic is
// loaded exactly once per snapshot, so no counter can be read twice at
// different instants within one Metrics value.
type engineStats struct {
	slowdowns       atomic.Int64
	stops           atomic.Int64
	stallNanos      atomic.Int64
	memWaits        atomic.Int64
	flushes         atomic.Int64
	walBytes        atomic.Int64
	walSyncs        atomic.Int64
	syncCommits     atomic.Int64
	commitGroups    atomic.Int64
	commitBatches   atomic.Int64
	commitWaitNanos atomic.Int64
	commitWaitHist  [len(CommitWaitBuckets) + 1]atomic.Int64
	gets            atomic.Int64
	writes          atomic.Int64
	iterators       atomic.Int64

	// Point-read path counters, folded in from per-Get scratches.
	getTablesProbed        atomic.Int64
	getBloomNegatives      atomic.Int64
	getBloomFalsePositives atomic.Int64
	getBlockHits           atomic.Int64
	getBlockMisses         atomic.Int64

	// Scan path counters, folded in from per-iterator stats at Close.
	iterTablesOpened atomic.Int64
	iterPrefixSkips  atomic.Int64

	// Failure-handling counters: degradations by error class, retried
	// background operations, and successful Resumes.
	bgRetryable atomic.Int64
	bgPermanent atomic.Int64
	bgRetries   atomic.Int64
	resumes     atomic.Int64
}

// snapshot loads every counter exactly once into m. This is the single
// atomic pass DB.Metrics relies on: adding a stat means adding its load
// here, next to the field, rather than in a distant constructor.
func (s *engineStats) snapshot(m *Metrics) {
	m.SlowdownWrites = s.slowdowns.Load()
	m.StoppedWrites = s.stops.Load()
	m.MemtableWaits = s.memWaits.Load()
	m.StallNanos = s.stallNanos.Load()
	m.Flushes = s.flushes.Load()
	m.WALBytes = s.walBytes.Load()
	m.WALSyncs = s.walSyncs.Load()
	m.SyncCommits = s.syncCommits.Load()
	m.CommitGroups = s.commitGroups.Load()
	m.CommitBatches = s.commitBatches.Load()
	m.CommitWaitNanos = s.commitWaitNanos.Load()
	for i := range s.commitWaitHist {
		m.CommitWaitHist[i] = s.commitWaitHist[i].Load()
	}
	m.Gets = s.gets.Load()
	m.Writes = s.writes.Load()
	m.Iterators = s.iterators.Load()
	m.GetTablesProbed = s.getTablesProbed.Load()
	m.GetBloomNegatives = s.getBloomNegatives.Load()
	m.GetBloomFalsePositives = s.getBloomFalsePositives.Load()
	m.GetBlockCacheHits = s.getBlockHits.Load()
	m.GetBlockCacheMisses = s.getBlockMisses.Load()
	m.IterTablesOpened = s.iterTablesOpened.Load()
	m.IterPrefixSkips = s.iterPrefixSkips.Load()
	m.BgRetryableErrors = s.bgRetryable.Load()
	m.BgPermanentErrors = s.bgPermanent.Load()
	m.BgRetries = s.bgRetries.Load()
	m.Resumes = s.resumes.Load()
}

// Open creates or recovers a store of the given kind in dir.
func Open(cfg *base.Config, fs vfs.FS, dir string, kind Kind) (*Engine, error) {
	cfg.EnsureDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, fs: fs, dir: dir, snaps: make(map[base.SeqNum]int)}
	e.cond = sync.NewCond(&e.mu)
	e.stallClear = make(chan struct{})
	e.ing.cond = sync.NewCond(&e.ing.mu)
	e.pubCond = sync.NewCond(&e.pendMu)

	// Tee the flight recorder in front of any user listener so every
	// lifecycle event — including those emitted by the trees, WAL, and
	// manifest through this config — is retained for RecentEvents and the
	// degradation dump. Downstream code can rely on cfg.EventListener
	// being non-nil from here on.
	e.rec = obs.NewRecorder(0)
	cfg.EventListener = obs.Tee(e.rec, cfg.EventListener)

	var tree Tree
	var err error
	switch kind {
	case KindFLSM:
		tree, err = flsm.Open(cfg, fs, dir, e)
	case KindLeveled:
		tree, err = leveled.Open(cfg, fs, dir, e)
	default:
		err = fmt.Errorf("engine: unknown tree kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	e.tree = tree
	e.mem = memtable.New()

	maxSeq, err := e.replayWALs()
	if err != nil {
		tree.Close()
		return nil, err
	}
	if s := tree.PersistedLastSeq(); s > maxSeq {
		maxSeq = s
	}
	e.seq.Store(uint64(maxSeq))
	e.logSeq = uint64(maxSeq)

	if err := e.startNewWAL(); err != nil {
		tree.Close()
		return nil, err
	}

	// Flush anything recovered from the logs so the old WALs can go.
	if !e.mem.Empty() {
		recovered := e.mem
		e.mem = memtable.New()
		if err := tree.Flush(recovered.NewIter(), recovered.RangeDels(), e.walNum, maxSeq); err != nil {
			tree.Close()
			return nil, err
		}
	}

	e.removeStaleTemp()
	e.sweepOrphanTables()
	e.cleanup()
	e.maybeScheduleCompaction()
	return e, nil
}

// replayWALs rebuilds the memtable from every log at or after the
// manifest's recovery watermark, in file-number order (§4.3.1).
func (e *Engine) replayWALs() (base.SeqNum, error) {
	names, err := e.fs.List(e.dir)
	if err != nil {
		return 0, err
	}
	var logs []base.FileNum
	for _, name := range names {
		ft, fn, ok := base.ParseFilename(name)
		if ok && ft == base.FileTypeLog && fn >= e.tree.RecoveryLogNum() {
			logs = append(logs, fn)
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })

	var maxSeq base.SeqNum
	for _, fn := range logs {
		path := filepath.Join(e.dir, base.MakeFilename(base.FileTypeLog, fn))
		f, err := e.fs.Open(path)
		if err != nil {
			return 0, err
		}
		size, err := e.fs.Stat(path)
		if err != nil {
			f.Close()
			return 0, err
		}
		r, err := wal.NewReader(f, size)
		f.Close()
		if err != nil {
			return 0, err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, fmt.Errorf("engine: replaying %s: %w", path, err)
			}
			b, err := batch.FromRepr(rec)
			if err != nil {
				return 0, fmt.Errorf("engine: replaying %s: %w", path, err)
			}
			err = b.Iterate(func(kind base.Kind, ukey, value []byte, seq base.SeqNum) error {
				if kind == base.KindRangeDelete {
					// Replayed range tombstone: ukey is the start, the
					// exclusive end travels in the value. Range bounds are
					// not inserted keys, so no guard ingestion.
					e.mem.DeleteRange(ukey, value, seq)
				} else {
					e.mem.Set(ukey, seq, kind, value)
					e.tree.Ingest(ukey)
				}
				if seq > maxSeq {
					maxSeq = seq
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
		}
	}
	return maxSeq, nil
}

// startNewWAL opens a fresh log; the caller holds no locks (open) or
// commitMu+mu (rotation). Closing the previous log drains its sync-request
// queue and references first, so an in-flight group fsync on the old log
// always completes; the wait is bounded by one fsync (sync leaders and ref
// holders release without taking engine locks). The close is synchronous
// on purpose — spawning it as a goroutine inside the rotation critical
// section measurably disturbs the flush/compaction pacing on small
// machines (2-3x fillrandom write amplification on one core).
func (e *Engine) startNewWAL() error {
	fn := e.tree.NewFileNum()
	f, err := e.fs.Create(filepath.Join(e.dir, base.MakeFilename(base.FileTypeLog, fn)))
	if err != nil {
		return err
	}
	if old := e.walW; old != nil {
		old.Close()
	}
	e.walW = wal.NewWriter(f)
	e.walW.SyncCounter = &e.stats.walSyncs
	e.walW.Listener = e.cfg.EventListener
	e.walNum = fn
	e.cfg.Emit(obs.Event{
		Kind: obs.EventWALRotation, Nanos: obs.Monotonic(), Level: -1,
		FileNum: uint64(fn),
	})
	return nil
}

// removeStaleTemp clears temp files left by a crash mid-rename.
func (e *Engine) removeStaleTemp() {
	names, _ := e.fs.List(e.dir)
	for _, name := range names {
		if ft, _, ok := base.ParseFilename(name); ok && ft == base.FileTypeTemp {
			e.fs.Remove(filepath.Join(e.dir, name))
		}
	}
}

// NoteObsoleteTables implements treebase.Host: trees report table files
// that just left the live version; the sweeper deletes them when no reads
// are in flight.
func (e *Engine) NoteObsoleteTables(fns []base.FileNum) {
	e.mu.Lock()
	e.obsolete = append(e.obsolete, fns...)
	e.mu.Unlock()
}

// cleanup physically deletes queued obsolete tables, stale WALs and
// superseded manifests. It defers itself while reads are in flight (an
// open iterator may still be reading tables that left the version).
func (e *Engine) cleanup() {
	if !e.opLock.TryLock() {
		e.cleanupPending.Store(true)
		return
	}
	defer e.opLock.Unlock()
	e.cleanupPending.Store(false)

	e.mu.Lock()
	if e.closed {
		// The tree (and its caches) are gone or going; leftover obsolete
		// files are swept by the next Open. Late releaseOp callers land
		// here.
		e.mu.Unlock()
		return
	}
	obsolete := e.obsolete
	e.obsolete = nil
	curWAL := e.walNum
	e.mu.Unlock()

	for _, fn := range obsolete {
		e.tree.EvictTable(fn)
		e.fs.Remove(filepath.Join(e.dir, base.MakeFilename(base.FileTypeTable, fn)))
	}

	logNum := e.tree.LogNum()
	manifestNum := e.tree.ManifestFileNum()
	names, err := e.fs.List(e.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		ft, fn, ok := base.ParseFilename(name)
		if !ok {
			continue
		}
		remove := false
		switch ft {
		case base.FileTypeLog:
			remove = fn < logNum && fn != curWAL
		case base.FileTypeManifest:
			remove = fn < manifestNum
		}
		if remove {
			e.fs.Remove(filepath.Join(e.dir, name))
		}
	}
}

// sweepOrphanTables removes table files not referenced by the recovered
// version. Only safe at Open, before any background work begins (at
// runtime, in-flight compaction outputs would look like orphans).
func (e *Engine) sweepOrphanTables() {
	protected := e.tree.ProtectedFiles()
	names, err := e.fs.List(e.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		ft, fn, ok := base.ParseFilename(name)
		if ok && ft == base.FileTypeTable && !protected[fn] {
			e.fs.Remove(filepath.Join(e.dir, name))
		}
	}
}

// releaseOp drops a read hold and runs a deferred sweep when possible.
func (e *Engine) releaseOp() {
	e.opLock.RUnlock()
	if e.cleanupPending.Load() {
		e.cleanup()
	}
}

// SmallestSnapshot implements part of treebase.Host.
func (e *Engine) SmallestSnapshot() base.SeqNum {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	min := base.SeqNum(e.seq.Load())
	for s := range e.snaps {
		if s < min {
			min = s
		}
	}
	return min
}

// Snapshot captures the current sequence number; reads through it observe
// the store as of creation. Release with Close.
type Snapshot struct {
	e   *Engine
	seq base.SeqNum
}

// NewSnapshot registers a read snapshot.
func (e *Engine) NewSnapshot() *Snapshot {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	s := base.SeqNum(e.seq.Load())
	e.snaps[s]++
	return &Snapshot{e: e, seq: s}
}

// Seq returns the snapshot's sequence number.
func (s *Snapshot) Seq() base.SeqNum { return s.seq }

// Close releases the snapshot, letting compaction reclaim its versions.
func (s *Snapshot) Close() {
	s.e.snapMu.Lock()
	defer s.e.snapMu.Unlock()
	s.e.snaps[s.seq]--
	if s.e.snaps[s.seq] <= 0 {
		delete(s.e.snaps, s.seq)
	}
}

// maybeScheduleCompaction spins up background workers while the tree has
// work and capacity remains (multi-threaded compaction, §4.4).
func (e *Engine) maybeScheduleCompaction() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.maybeScheduleCompactionLocked()
}

func (e *Engine) maybeScheduleCompactionLocked() {
	if e.closed || e.bgErr != nil {
		return
	}
	for e.compacting < e.cfg.MaxCompactionConcurrency {
		// Size the pool to the work that is actually claimable: spawning
		// more workers than units just burns wakeups on claim conflicts.
		if e.tree.ClaimableUnits() <= e.compacting {
			return
		}
		// Flush priority: while a flush is running and L0 is still healthy,
		// hold the last worker slot back so the flush (which is what
		// unblocks writers) keeps IO and CPU headroom. Once L0 reaches the
		// slowdown trigger, draining it is the priority and every slot goes
		// to compaction.
		if e.flushing && e.compacting >= e.cfg.MaxCompactionConcurrency-1 &&
			e.tree.L0Count() < e.cfg.L0SlowdownTrigger {
			return
		}
		e.compacting++
		go e.compactWorker()
	}
}

// signalStallClearLocked wakes slowdown-stalled writers when the L0 count
// has dropped back under the slowdown trigger. Called with mu held after
// background work completes a unit.
func (e *Engine) signalStallClearLocked() {
	if e.tree.L0Count() >= e.cfg.L0SlowdownTrigger && e.bgErr == nil {
		return
	}
	close(e.stallClear)
	e.stallClear = make(chan struct{})
}

// setDegradedLocked records the first background error and flips the store
// into read-only mode: reads keep serving, writes return a wrapped
// ErrReadOnly, and background scheduling stops. Called with mu held.
func (e *Engine) setDegradedLocked(err error) {
	if e.bgErr != nil {
		return
	}
	e.bgErr = err
	e.bgPermanent = bgErrPermanent(err)
	if e.bgPermanent {
		e.stats.bgPermanent.Add(1)
	} else {
		e.stats.bgRetryable.Add(1)
	}
	e.readOnly.Store(true)
	e.cfg.Logf("engine: degraded to read-only: %v", err)
	detail := "retryable"
	if e.bgPermanent {
		detail = "permanent"
	}
	e.cfg.Emit(obs.Event{
		Kind: obs.EventReadOnly, Nanos: obs.Monotonic(), Level: -1,
		Err: err, Detail: detail,
	})
	// The degradation dump: everything the flight recorder retained up to
	// and including the transition, through the diagnostic logger.
	e.rec.Dump(e.cfg.Logger, fmt.Sprintf("degraded to read-only: %v", err))
	e.cond.Broadcast()
	e.signalStallClearLocked()
}

// maxBgRetryDelay caps the exponential backoff between background retries.
const maxBgRetryDelay = time.Second

// retryBg runs op, retrying transient failures with capped exponential
// backoff per Config.BgErrorRetries / BgErrorRetryDelay. Corruption is
// never retried — the bytes will not get better. Returns op's final
// error. name labels the operation in background-error events so a
// flight-recorder dump identifies what failed.
func (e *Engine) retryBg(name string, op func() error) error {
	retries := e.cfg.BgErrorRetries
	if retries < 0 {
		retries = 0
	}
	delay := e.cfg.BgErrorRetryDelay
	for attempt := 0; ; attempt++ {
		err := op()
		if err != nil {
			e.cfg.Emit(obs.Event{
				Kind: obs.EventBackgroundError, Nanos: obs.Monotonic(),
				Level: -1, Unit: uint64(attempt), Err: err, Detail: name,
			})
		}
		if err == nil || bgErrPermanent(err) || attempt >= retries {
			return err
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return err
		}
		e.stats.bgRetries.Add(1)
		time.Sleep(delay)
		if delay *= 2; delay > maxBgRetryDelay {
			delay = maxBgRetryDelay
		}
	}
}

// Resume clears a retryable background error and restores writability: it
// quiesces the pipeline, rotates to a fresh WAL (the old writer may be
// poisoned by a torn append or failed fsync), re-runs the flush the failure
// interrupted with its original stamp, and restarts background scheduling.
// Returns nil if the store was healthy, ErrClosed after Close, and the
// wrapped cause when the degradation is permanent (corruption).
func (e *Engine) Resume() error {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	e.mem.QuiesceWriters()
	e.drainIngest()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for e.flushing || e.compacting > 0 {
		e.cond.Wait()
	}
	if e.bgErr == nil {
		return nil
	}
	if e.bgPermanent {
		return &readOnlyError{cause: e.bgErr}
	}
	if err := e.startNewWAL(); err != nil {
		return err
	}
	e.bgErr = nil
	e.readOnly.Store(false)
	e.stats.resumes.Add(1)
	e.cfg.Emit(obs.Event{Kind: obs.EventResume, Nanos: obs.Monotonic(), Level: -1})
	if e.imm != nil {
		// The interrupted flush keeps its original log/sequence stamp: its
		// data precedes everything in the memtable's WAL, so the recovery
		// watermark it publishes must not skip past that log.
		e.flushing = true
		go e.flushWorker(e.imm, e.immLogNum, e.immLastSeq)
	}
	e.cond.Broadcast()
	e.signalStallClearLocked()
	e.maybeScheduleCompactionLocked()
	return nil
}

// ReadOnly reports whether the store is degraded to read-only mode.
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// RecentEvents returns the flight recorder's retained lifecycle events,
// oldest-first.
func (e *Engine) RecentEvents() []obs.Event { return e.rec.Snapshot() }

func (e *Engine) compactWorker() {
	for {
		var did bool
		err := e.retryBg("compaction", func() error {
			var cerr error
			did, cerr = e.tree.CompactOnce()
			return cerr
		})
		e.mu.Lock()
		if err != nil {
			e.setDegradedLocked(err)
			e.compacting--
			e.cond.Broadcast()
			e.mu.Unlock()
			return
		}
		if !did {
			e.compacting--
			e.cond.Broadcast()
			e.signalStallClearLocked()
			e.mu.Unlock()
			e.cleanup()
			return
		}
		// A unit completed: wake stalled writers, look for more work.
		e.cond.Broadcast()
		e.signalStallClearLocked()
		e.maybeScheduleCompactionLocked()
		e.mu.Unlock()
		e.cleanup()
	}
}

// WaitIdle blocks until no flush or compaction is running or pending. The
// paper's "fully compacted" read benchmarks (Fig 5.1b seeks) use this.
// Waiters park on the engine condition variable — every flush/compaction
// transition broadcasts it — instead of polling on a timer, so they wake
// the moment the store goes quiescent.
func (e *Engine) WaitIdle() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.bgErr != nil {
			return e.bgErr
		}
		if e.flushing || e.imm != nil || e.compacting > 0 {
			e.cond.Wait()
			continue
		}
		if e.closed || !e.tree.NeedsCompaction() {
			return nil
		}
		e.maybeScheduleCompactionLocked()
		if e.compacting == 0 {
			// Nothing startable (closed or bgErr raced in); re-check above.
			continue
		}
		e.cond.Wait()
	}
}

// Dump writes the tree layout (cmd/flsmdump, Fig 3.1).
func (e *Engine) Dump(w io.Writer) { e.tree.Dump(w) }

// Tree exposes the underlying tree for white-box tests and tools.
func (e *Engine) Tree() Tree { return e.tree }

// Close flushes nothing (the WAL preserves the memtable), waits for
// background work and in-flight reads, and releases resources. Gets and
// iterators that raced past the closed check drain before the tree shuts
// down: an open iterator therefore blocks Close until it is closed, which
// is the contract a serving shutdown wants — drain connections (closing
// their iterators), then close the store.
func (e *Engine) Close() error {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()

	// With commitMu held no new commits can be scheduled; wait for the
	// in-flight appliers and the guard sidecar to drain.
	e.mem.QuiesceWriters()
	e.drainIngest()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	for e.flushing || e.compacting > 0 {
		e.cond.Wait()
	}
	e.closed = true
	e.mu.Unlock()

	// Reads hold opLock shared for their duration (iterators for their
	// lifetime); taking it exclusively here is the barrier that lets them
	// finish against a still-open tree. Readers arriving after the barrier
	// observe closed and return ErrClosed without touching the tree.
	e.opLock.Lock()
	e.opLock.Unlock() //nolint:staticcheck // empty critical section is the drain

	var first error
	if e.walW != nil {
		if err := e.walW.Sync(); err != nil && first == nil {
			first = err
		}
		if err := e.walW.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := e.tree.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
