package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/vfs"
)

func testConfig() *base.Config {
	return &base.Config{
		MemtableSize:   32 << 10,
		LevelBaseBytes: 128 << 10,
		TargetFileSize: 32 << 10,
		TopLevelBits:   8,
		BitDecrement:   1,
		NumLevels:      5,
	}
}

func openEngine(t *testing.T, fs vfs.FS, kind Kind) *Engine {
	t.Helper()
	e, err := Open(testConfig(), fs, "db", kind)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func bothKinds(t *testing.T, fn func(t *testing.T, kind Kind)) {
	t.Run("flsm", func(t *testing.T) { fn(t, KindFLSM) })
	t.Run("leveled", func(t *testing.T) { fn(t, KindLeveled) })
}

func TestBasicCRUD(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		e := openEngine(t, vfs.NewMem(), kind)
		defer e.Close()

		if err := e.Set([]byte("k"), []byte("v"), false); err != nil {
			t.Fatal(err)
		}
		v, ok, err := e.Get([]byte("k"), nil, nil)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("get: %q %v %v", v, ok, err)
		}
		if err := e.Delete([]byte("k"), false); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := e.Get([]byte("k"), nil, nil); ok {
			t.Fatal("deleted key visible")
		}
	})
}

func TestBatchAtomicSequencing(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	b := batch.New()
	b.Set([]byte("a"), []byte("1"))
	b.Set([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := e.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get([]byte("a"), nil, nil); ok {
		t.Fatal("within-batch delete should win (higher seq)")
	}
	if v, ok, _ := e.Get([]byte("b"), nil, nil); !ok || string(v) != "2" {
		t.Fatal("batch set lost")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		e := openEngine(t, vfs.NewMem(), kind)
		defer e.Close()

		e.Set([]byte("k"), []byte("v1"), false)
		snap := e.NewSnapshot()
		defer snap.Close()
		e.Set([]byte("k"), []byte("v2"), false)
		e.Set([]byte("only-after"), []byte("x"), false)

		if v, ok, _ := e.Get([]byte("k"), snap, nil); !ok || string(v) != "v1" {
			t.Fatalf("snapshot read: %q %v", v, ok)
		}
		if _, ok, _ := e.Get([]byte("only-after"), snap, nil); ok {
			t.Fatal("snapshot sees later write")
		}
		if v, _, _ := e.Get([]byte("k"), nil, nil); string(v) != "v2" {
			t.Fatal("latest read wrong")
		}
	})
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	e.Set([]byte("k"), []byte("v1"), false)
	snap := e.NewSnapshot()
	defer snap.Close()

	rng := rand.New(rand.NewSource(31))
	val := make([]byte, 256)
	for i := 0; i < 5000; i++ {
		rng.Read(val)
		e.Set([]byte(fmt.Sprintf("fill%06d", i)), val, false)
	}
	e.Set([]byte("k"), []byte("v2"), false)
	if err := e.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get([]byte("k"), snap, nil); !ok || string(v) != "v1" {
		t.Fatalf("snapshot read after compaction: %q %v", v, ok)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		e := openEngine(t, vfs.NewMem(), kind)
		defer e.Close()

		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 2000; i++ {
					k := fmt.Sprintf("w%d-key%05d", w, i)
					if err := e.Set([]byte(k), []byte("value-"+k), false); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r)))
				for i := 0; i < 2000; i++ {
					k := fmt.Sprintf("w%d-key%05d", rng.Intn(4), rng.Intn(2000))
					v, ok, err := e.Get([]byte(k), nil, nil)
					if err != nil {
						errs <- err
						return
					}
					if ok && string(v) != "value-"+k {
						errs <- fmt.Errorf("torn read for %s: %q", k, v)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if err := e.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		// Verify every written key.
		for w := 0; w < 4; w++ {
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-key%05d", w, i)
				v, ok, err := e.Get([]byte(k), nil, nil)
				if err != nil || !ok || string(v) != "value-"+k {
					t.Fatalf("verify %s: %q %v %v", k, v, ok, err)
				}
			}
		}
	})
}

func TestIteratorDuringWrites(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	for i := 0; i < 3000; i++ {
		e.Set([]byte(fmt.Sprintf("key%06d", i)), []byte("v"), false)
	}
	it, err := e.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writes while the iterator is open.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			e.Set([]byte(fmt.Sprintf("new%06d", i)), []byte("v"), false)
		}
	}()
	var prev []byte
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if n < 3000 {
		t.Fatalf("iterator saw %d keys, want >= 3000", n)
	}
}

func TestRecoveryFromWALOnly(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		fs := vfs.NewMem()
		e := openEngine(t, fs, kind)
		// Few writes: nothing flushed, everything in the WAL.
		for i := 0; i < 100; i++ {
			e.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"), false)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		e2 := openEngine(t, fs, kind)
		defer e2.Close()
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%03d", i)
			v, ok, err := e2.Get([]byte(k), nil, nil)
			if err != nil || !ok || string(v) != "v" {
				t.Fatalf("recovered get %s: %q %v %v", k, v, ok, err)
			}
		}
	})
}

func TestCrashRecoveryDurability(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		fs := vfs.NewCrash()
		cfg := testConfig()
		cfg.WALSync = false
		e, err := Open(cfg, fs, "db", kind)
		if err != nil {
			t.Fatal(err)
		}

		// Unsynced writes may be lost; synced writes must survive.
		for i := 0; i < 50; i++ {
			if err := e.Set([]byte(fmt.Sprintf("unsynced%03d", i)), []byte("v"), false); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if err := e.Set([]byte(fmt.Sprintf("synced%03d", i)), []byte("v"), true); err != nil {
				t.Fatal(err)
			}
		}
		// Simulate power loss without Close.
		fs.Crash()

		cfg2 := testConfig()
		e2, err := Open(cfg2, fs, "db", kind)
		if err != nil {
			t.Fatalf("recovery open: %v", err)
		}
		defer e2.Close()
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("synced%03d", i)
			if _, ok, err := e2.Get([]byte(k), nil, nil); err != nil || !ok {
				t.Fatalf("synced key %s lost after crash (ok=%v err=%v)", k, ok, err)
			}
		}
	})
}

func TestCrashDuringHeavyWrites(t *testing.T) {
	// Crash mid-workload with flushes and compactions in flight; the
	// store must reopen cleanly and serve all previously synced data.
	fs := vfs.NewCrash()
	cfg := testConfig()
	e, err := Open(cfg, fs, "db", KindFLSM)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	val := make([]byte, 128)
	var syncedKeys []string
	for i := 0; i < 8000; i++ {
		rng.Read(val)
		k := fmt.Sprintf("key%06d", rng.Intn(100000))
		sync := i%100 == 99
		if err := e.Set([]byte(k), val, sync); err != nil {
			t.Fatal(err)
		}
		if sync {
			syncedKeys = append(syncedKeys, k)
		}
	}
	e.WaitIdle()
	// One final synced marker: everything before it is durable.
	if err := e.Set([]byte("marker"), []byte("end"), true); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	e2, err := Open(testConfig(), fs, "db", KindFLSM)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer e2.Close()
	if _, ok, err := e2.Get([]byte("marker"), nil, nil); err != nil || !ok {
		t.Fatalf("marker lost: ok=%v err=%v", ok, err)
	}
	for _, k := range syncedKeys {
		if _, ok, err := e2.Get([]byte(k), nil, nil); err != nil || !ok {
			t.Fatalf("synced key %s lost: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestWriteStallsAreCounted(t *testing.T) {
	fs := vfs.NewMem()
	cfg := testConfig()
	cfg.MemtableSize = 4 << 10
	cfg.L0CompactionTrigger = 2
	cfg.L0SlowdownTrigger = 3
	cfg.L0StopTrigger = 5
	cfg.MaxCompactionConcurrency = 1
	e, err := Open(cfg, fs, "db", KindLeveled)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	val := make([]byte, 512)
	for i := 0; i < 4000; i++ {
		if err := e.Set([]byte(fmt.Sprintf("key%06d", i)), val, false); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.SlowdownWrites == 0 && m.StoppedWrites == 0 && m.MemtableWaits == 0 {
		t.Fatal("expected some write stalls under this configuration")
	}
	if m.Flushes == 0 {
		t.Fatal("expected flushes")
	}
}

func TestMetricsPopulated(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()
	for i := 0; i < 3000; i++ {
		e.Set([]byte(fmt.Sprintf("key%06d", i)), make([]byte, 64), false)
	}
	e.CompactAll()
	m := e.Metrics()
	if m.Writes != 3000 {
		t.Fatalf("writes %d", m.Writes)
	}
	if m.WALBytes == 0 {
		t.Fatal("wal bytes should be counted")
	}
	if m.LastSeq != 3000 {
		t.Fatalf("last seq %d", m.LastSeq)
	}
	var total int64
	for _, b := range m.Tree.LevelBytes {
		total += b
	}
	if total == 0 {
		t.Fatal("tree should hold bytes after flush")
	}
}

func TestCloseRejectsFurtherOps(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	e.Set([]byte("k"), []byte("v"), false)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Set([]byte("k2"), []byte("v"), false); err == nil {
		t.Fatal("write after close should fail")
	}
	if _, _, err := e.Get([]byte("k"), nil, nil); err == nil {
		t.Fatal("get after close should fail")
	}
	if err := e.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestFlushIsDurableWithoutWAL(t *testing.T) {
	// After an explicit Flush, data must survive even if the WAL is
	// discarded (it lives in sstables + manifest).
	fs := vfs.NewCrash()
	e, err := Open(testConfig(), fs, "db", KindFLSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"), false)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	e2, err := Open(testConfig(), fs, "db", KindFLSM)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", i)
		if _, ok, err := e2.Get([]byte(k), nil, nil); err != nil || !ok {
			t.Fatalf("flushed key %s lost: ok=%v err=%v", k, ok, err)
		}
	}
}
