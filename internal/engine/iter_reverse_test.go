package engine

import (
	"fmt"
	"testing"

	"pebblesdb/internal/vfs"
)

// fillLayers spreads keys k00..k29 across the memtable, L0 and deeper
// levels, with some overwritten and some deleted, returning the live set.
func fillLayers(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	live := map[string]string{}
	put := func(k, v string) {
		if err := e.Set([]byte(k), []byte(v), false); err != nil {
			t.Fatal(err)
		}
		live[k] = v
	}
	del := func(k string) {
		if err := e.Delete([]byte(k), false); err != nil {
			t.Fatal(err)
		}
		delete(live, k)
	}
	for i := 0; i < 30; i++ {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i += 3 {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("w%02d", i))
	}
	for i := 1; i < 30; i += 5 {
		del(fmt.Sprintf("k%02d", i))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put("k07", "x07") // memtable only
	del("k08")
	return live
}

func sortedLive(live map[string]string) []string {
	var keys []string
	for k := range live {
		keys = append(keys, k)
	}
	// keys are fixed width, so lexicographic == numeric
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func TestIterReverseMatchesForward(t *testing.T) {
	for _, kind := range []Kind{KindFLSM, KindLeveled} {
		e := openEngine(t, vfs.NewMem(), kind)
		live := fillLayers(t, e)
		keys := sortedLive(live)

		it, err := e.NewIter(nil)
		if err != nil {
			t.Fatal(err)
		}
		i := len(keys) - 1
		for it.Last(); it.Valid(); it.Prev() {
			if string(it.Key()) != keys[i] || string(it.Value()) != live[keys[i]] {
				t.Fatalf("kind=%d pos %d: got %q=%q want %q=%q",
					kind, i, it.Key(), it.Value(), keys[i], live[keys[i]])
			}
			i--
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != -1 {
			t.Fatalf("kind=%d: reverse visited %d of %d", kind, len(keys)-1-i, len(keys))
		}
		it.Close()
		e.Close()
	}
}

func TestIterSeekLTSkipsTombstones(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()
	live := fillLayers(t, e)
	keys := sortedLive(live)

	it, err := e.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// SeekLT over every key boundary, including deleted keys.
	for i := 0; i < 30; i++ {
		target := fmt.Sprintf("k%02d", i)
		want := ""
		for _, k := range keys {
			if k < target {
				want = k
			}
		}
		it.SeekLT([]byte(target))
		if want == "" {
			if it.Valid() {
				t.Fatalf("SeekLT(%q): got %q want invalid", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != want {
			t.Fatalf("SeekLT(%q): got %v want %q", target, string(it.Key()), want)
		}
	}
}

func TestIterDirectionSwitches(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()
	live := fillLayers(t, e)
	keys := sortedLive(live)

	it, err := e.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	pos := len(keys) / 2
	it.SeekGE([]byte(keys[pos]))
	// Deterministic zig-zag: N,P,P,N,N,P...
	moves := []int{+1, -1, -1, +1, +1, -1, +1, +1, +1, -1, -1, -1, -1, +1}
	for step, d := range moves {
		if d > 0 {
			it.Next()
		} else {
			it.Prev()
		}
		pos += d
		if pos < 0 || pos >= len(keys) {
			if it.Valid() {
				t.Fatalf("step %d: expected invalid at %d", step, pos)
			}
			return
		}
		if !it.Valid() || string(it.Key()) != keys[pos] || string(it.Value()) != live[keys[pos]] {
			t.Fatalf("step %d: got %q=%q want %q=%q", step, it.Key(), it.Value(), keys[pos], live[keys[pos]])
		}
	}
}

func TestIterBounds(t *testing.T) {
	for _, kind := range []Kind{KindFLSM, KindLeveled} {
		e := openEngine(t, vfs.NewMem(), kind)
		live := fillLayers(t, e)
		keys := sortedLive(live)

		lower, upper := []byte("k05"), []byte("k21")
		var want []string
		for _, k := range keys {
			if k >= string(lower) && k < string(upper) {
				want = append(want, k)
			}
		}

		it, err := e.NewIter(&IterOptions{Lower: lower, Upper: upper})
		if err != nil {
			t.Fatal(err)
		}
		var fwd []string
		for it.First(); it.Valid(); it.Next() {
			fwd = append(fwd, string(it.Key()))
		}
		if fmt.Sprint(fwd) != fmt.Sprint(want) {
			t.Fatalf("kind=%d forward bounded: got %v want %v", kind, fwd, want)
		}
		var rev []string
		for it.Last(); it.Valid(); it.Prev() {
			rev = append(rev, string(it.Key()))
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		if fmt.Sprint(rev) != fmt.Sprint(want) {
			t.Fatalf("kind=%d reverse bounded: got %v want %v", kind, rev, want)
		}

		// Seeks clamp to the bounds.
		it.SeekGE([]byte("k00"))
		if !it.Valid() || string(it.Key()) != want[0] {
			t.Fatalf("kind=%d SeekGE below lower: got %v", kind, string(it.Key()))
		}
		it.SeekLT([]byte("k99"))
		if !it.Valid() || string(it.Key()) != want[len(want)-1] {
			t.Fatalf("kind=%d SeekLT above upper: got %v", kind, string(it.Key()))
		}
		it.Close()
		e.Close()
	}
}

func TestIterReverseSnapshot(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	e.Set([]byte("a"), []byte("old-a"), false)
	e.Set([]byte("b"), []byte("old-b"), false)
	snap := e.NewSnapshot()
	defer snap.Close()
	e.Set([]byte("a"), []byte("new-a"), false)
	e.Set([]byte("c"), []byte("later"), false)
	e.Delete([]byte("b"), false)

	it, err := e.NewIter(&IterOptions{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.Last(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	if fmt.Sprint(got) != "[b=old-b a=old-a]" {
		t.Fatalf("reverse snapshot scan: %v", got)
	}
}
