package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/vfs"
)

// TestCommitPipelineStress runs N writer goroutines committing mixed
// sync/async batches against M reader/iterator goroutines, asserting
// sequence-order visibility: a reader must never observe commit k+1's keys
// without commit k's, and never half of a batch. Sized to run in the CI
// short race job.
func TestCommitPipelineStress(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		e := openEngine(t, vfs.NewMem(), kind)
		defer e.Close()

		const (
			writers = 4
			commits = 120
		)
		key := func(w, i int, suffix string) []byte {
			return []byte(fmt.Sprintf("w%d-c%05d-%s", w, i, suffix))
		}

		// lastDone[w] is the newest commit index writer w has completed;
		// every index at or below it must be visible to later reads.
		var lastDone [writers]atomic.Int64
		for w := range lastDone {
			lastDone[w].Store(-1)
		}

		var wg sync.WaitGroup
		errCh := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < commits; i++ {
					b := batch.New()
					b.Set(key(w, i, "a"), []byte(fmt.Sprintf("v%05d", i)))
					b.Set(key(w, i, "b"), []byte(fmt.Sprintf("v%05d", i)))
					if err := e.Apply(b, i%5 == 0); err != nil {
						errCh <- err
						return
					}
					lastDone[w].Store(int64(i))
				}
			}(w)
		}

		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				rng := rand.New(rand.NewSource(int64(r)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					w := rng.Intn(writers)

					// Completed commits must be visible.
					if done := lastDone[w].Load(); done >= 0 {
						if _, found, err := e.Get(key(w, int(done), "a"), nil, nil); err != nil {
							t.Errorf("get: %v", err)
							return
						} else if !found {
							t.Errorf("writer %d commit %d returned but invisible", w, done)
							return
						}
					}

					// If commit i is visible, commit i-1 and the rest of
					// commit i's batch must be too (the writer issues
					// commits in order; visibility publishes in sequence
					// order).
					i := 1 + rng.Intn(commits-1)
					if _, found, _ := e.Get(key(w, i, "a"), nil, nil); found {
						if _, f2, _ := e.Get(key(w, i, "b"), nil, nil); !f2 {
							t.Errorf("writer %d commit %d: saw half a batch", w, i)
							return
						}
						if _, f3, _ := e.Get(key(w, i-1, "a"), nil, nil); !f3 {
							t.Errorf("writer %d: commit %d visible before commit %d", w, i, i-1)
							return
						}
					}

					// An iterator snapshot must observe an exact prefix of
					// the writer's commits, each batch whole.
					it, err := e.NewIter(&IterOptions{
						Lower: []byte(fmt.Sprintf("w%d-c", w)),
						Upper: []byte(fmt.Sprintf("w%d-d", w)),
					})
					if err != nil {
						t.Errorf("iter: %v", err)
						return
					}
					seen := make(map[int]int)
					maxIdx := -1
					for it.First(); it.Valid(); it.Next() {
						var idx int
						var suffix string
						if _, err := fmt.Sscanf(string(it.Key()), "w"+fmt.Sprint(w)+"-c%05d-%s", &idx, &suffix); err != nil {
							t.Errorf("unparseable key %q", it.Key())
							it.Close()
							return
						}
						seen[idx]++
						if idx > maxIdx {
							maxIdx = idx
						}
					}
					it.Close()
					for i := 0; i <= maxIdx; i++ {
						if seen[i] != 2 {
							t.Errorf("writer %d: snapshot saw commit %d with %d/2 keys (max visible %d)",
								w, i, seen[i], maxIdx)
							return
						}
					}
				}
			}(r)
		}

		wg.Wait()
		close(stop)
		readers.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}

		// Everything committed must be durable in the final state.
		for w := 0; w < writers; w++ {
			for i := 0; i < commits; i++ {
				if _, found, _ := e.Get(key(w, i, "a"), nil, nil); !found {
					t.Fatalf("writer %d commit %d missing after quiesce", w, i)
				}
			}
		}

		m := e.Metrics()
		if m.CommitGroups == 0 || m.CommitBatches < m.CommitGroups {
			t.Fatalf("implausible pipeline metrics: groups=%d batches=%d", m.CommitGroups, m.CommitBatches)
		}
		var histTotal int64
		for _, c := range m.CommitWaitHist {
			histTotal += c
		}
		if want := int64(writers * commits); histTotal != want {
			t.Fatalf("commit-wait histogram total = %d, want %d", histTotal, want)
		}
		if m.WALSyncs > m.SyncCommits {
			t.Fatalf("more fsyncs (%d) than sync commits (%d)", m.WALSyncs, m.SyncCommits)
		}
	})
}

// slowSyncFS delays every fsync, modeling a real disk, so that concurrent
// sync commits pile up behind the in-flight fsync and the group-commit
// amortization becomes deterministic enough to assert on.
type slowSyncFS struct {
	vfs.FS
	delay time.Duration
}

func (fs slowSyncFS) Create(name string) (vfs.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: f, delay: fs.delay}, nil
}

type slowSyncFile struct {
	vfs.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestSyncAmortization asserts the acceptance criterion that N concurrent
// Sync committers trigger far fewer than N fsyncs: one WAL fsync covers
// every commit whose record reached the log before it.
func TestSyncAmortization(t *testing.T) {
	e := openEngine(t, slowSyncFS{FS: vfs.NewMem(), delay: 500 * time.Microsecond}, KindFLSM)
	defer e.Close()

	const (
		writers = 8
		commits = 30
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				b := batch.New()
				b.Set([]byte(fmt.Sprintf("s%d-%04d", w, i)), []byte("v"))
				if err := e.Apply(b, true); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	m := e.Metrics()
	if m.SyncCommits != writers*commits {
		t.Fatalf("sync commits = %d, want %d", m.SyncCommits, writers*commits)
	}
	if m.WALSyncs == 0 {
		t.Fatal("no WAL fsyncs recorded")
	}
	if m.WALSyncs > m.SyncCommits/2 {
		t.Fatalf("fsyncs not amortized: %d fsyncs for %d sync commits (%.2f syncs/commit)",
			m.WALSyncs, m.SyncCommits, m.SyncsPerCommit())
	}
	t.Logf("syncs/commit = %.3f (%d fsyncs / %d sync commits), mean group size %.2f",
		m.SyncsPerCommit(), m.WALSyncs, m.SyncCommits, m.CommitGroupSize())
}

// TestCommitGroupingUnderContention checks that concurrent async writers
// actually form multi-batch groups.
func TestCommitGroupingUnderContention(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := batch.New()
				b.Set([]byte(fmt.Sprintf("g%d-%04d", w, i)), []byte("v"))
				if err := e.Apply(b, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	m := e.Metrics()
	if m.CommitBatches != writers*200 {
		t.Fatalf("commit batches = %d, want %d", m.CommitBatches, writers*200)
	}
	t.Logf("groups=%d, mean size %.2f", m.CommitGroups, m.CommitGroupSize())
	if m.CommitGroups == m.CommitBatches {
		t.Log("warning: no grouping observed (single-core scheduler?)")
	}
}

// TestCommitPipelineTinyMemtable is the regression test for the
// follower/rotation deadlock: with a memtable small enough that rotations
// constantly overlap follower queuing, a follower that parked on commitMu
// while holding a leader-taken writer reservation would deadlock against
// the rotation quiescing that very reservation. Followers must never
// block on commitMu.
func TestCommitPipelineTinyMemtable(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		cfg := testConfig()
		cfg.MemtableSize = 2 << 10
		e, err := Open(cfg, vfs.NewMem(), "db", kind)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		const writers, commits = 16, 150
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < commits; i++ {
					b := batch.New()
					b.Set([]byte(fmt.Sprintf("t%02d-%04d", w, i)), []byte("0123456789abcdef"))
					if err := e.Apply(b, i%7 == 0); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		for w := 0; w < writers; w++ {
			for i := 0; i < commits; i++ {
				if _, found, err := e.Get([]byte(fmt.Sprintf("t%02d-%04d", w, i)), nil, nil); err != nil || !found {
					t.Fatalf("writer %d commit %d: found=%v err=%v", w, i, found, err)
				}
			}
		}
	})
}

// TestGroupCommitSyncFailure drives concurrent sync committers into a
// sticky WAL fsync failure and asserts the group-failure contract: every
// waiter whose durability could not be honored gets an error (never a
// silent success), batches stay atomic (no reader sees half of one), the
// store degrades to read-only with reads still serving, Resume restores
// writability once the fault clears, and every write acknowledged before
// the fault — plus everything after Resume — survives a reopen.
func TestGroupCommitSyncFailure(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		mem := vfs.NewMem()
		// The sync delay piles concurrent committers into shared groups so
		// the failure exercises the group path, not just serial commits.
		efs := vfs.NewErr(slowSyncFS{FS: mem, delay: 200 * time.Microsecond})
		cfg := testConfig()
		cfg.BgErrorRetries = -1 // fail fast; this test drives Resume itself
		cfg.BgErrorRetryDelay = time.Millisecond
		e, err := Open(cfg, efs, "db", kind)
		if err != nil {
			t.Fatal(err)
		}

		if err := e.Set([]byte("base"), []byte("v"), true); err != nil {
			t.Fatal(err)
		}

		// Every fsync from here on fails (a dying device).
		efs.FailAt(efs.OpCount(), vfs.OpSync, nil, true)

		const writers = 8
		errs := make([]error, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				b := batch.New()
				b.Set([]byte(fmt.Sprintf("g%d-a", w)), []byte("v"))
				b.Set([]byte(fmt.Sprintf("g%d-b", w)), []byte("v"))
				errs[w] = e.Apply(b, true)
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err == nil {
				t.Fatalf("writer %d: sync commit acknowledged despite failed fsync", w)
			}
		}

		// The store is read-only; reads keep serving; batches are whole.
		if !e.ReadOnly() {
			t.Fatal("store not read-only after WAL sync failure")
		}
		if err := e.Set([]byte("rejected"), []byte("v"), true); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("write in read-only mode: err=%v, want ErrReadOnly", err)
		}
		if _, found, err := e.Get([]byte("base"), nil, nil); err != nil || !found {
			t.Fatalf("read in read-only mode: found=%v err=%v", found, err)
		}
		for w := 0; w < writers; w++ {
			_, fa, _ := e.Get([]byte(fmt.Sprintf("g%d-a", w)), nil, nil)
			_, fb, _ := e.Get([]byte(fmt.Sprintf("g%d-b", w)), nil, nil)
			if fa != fb {
				t.Fatalf("writer %d: half a batch visible (a=%v b=%v)", w, fa, fb)
			}
		}

		// The device recovers: Resume rotates to a fresh WAL and restores
		// writability.
		efs.Clear()
		if err := e.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if e.ReadOnly() {
			t.Fatal("still read-only after Resume")
		}
		if err := e.Set([]byte("after"), []byte("v"), true); err != nil {
			t.Fatalf("sync write after resume: %v", err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		// Acked-before and acked-after writes are durable across reopen,
		// and batch atomicity holds in the recovered state too.
		e2, err := Open(testConfig(), mem, "db", kind)
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		for _, k := range []string{"base", "after"} {
			if _, found, err := e2.Get([]byte(k), nil, nil); err != nil || !found {
				t.Fatalf("acked key %q after reopen: found=%v err=%v", k, found, err)
			}
		}
		for w := 0; w < writers; w++ {
			_, fa, _ := e2.Get([]byte(fmt.Sprintf("g%d-a", w)), nil, nil)
			_, fb, _ := e2.Get([]byte(fmt.Sprintf("g%d-b", w)), nil, nil)
			if fa != fb {
				t.Fatalf("writer %d: half a batch recovered (a=%v b=%v)", w, fa, fb)
			}
		}
	})
}

// TestCorruptBatchRejected checks that a malformed batch repr is rejected
// up front — before sequencing — so nothing is partially applied, nothing
// is published, and the store stays healthy for subsequent commits.
func TestCorruptBatchRejected(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	corrupt, err := batch.FromRepr(append(make([]byte, 12), 0xff, 0x01, 0x02))
	if err != nil {
		t.Fatal(err)
	}
	// FromRepr trusts the header; make the count nonzero so it is not Empty.
	corrupt.Set([]byte("k"), []byte("v"))
	corruptRepr := corrupt.Repr()
	corruptRepr[12] = 0xff // clobber the first record's kind byte
	if err := e.Apply(corrupt, false); err == nil {
		t.Fatal("corrupt batch accepted")
	}
	before := base.SeqNum(0)
	if m := e.Metrics(); m.LastSeq != before {
		t.Fatalf("corrupt batch advanced seq to %d", m.LastSeq)
	}
	if err := e.Set([]byte("ok"), []byte("v"), false); err != nil {
		t.Fatalf("store poisoned by rejected batch: %v", err)
	}
	if _, found, _ := e.Get([]byte("ok"), nil, nil); !found {
		t.Fatal("write after rejected batch not visible")
	}
}
