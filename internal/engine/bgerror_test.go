package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/vfs"
)

// faultConfig is testConfig with fast, bounded background retries so the
// failure tests exercise the retry loop without slowing the suite.
func faultConfig(retries int) *base.Config {
	cfg := testConfig()
	cfg.BgErrorRetries = retries
	cfg.BgErrorRetryDelay = time.Millisecond
	return cfg
}

// TestFlushFailureDegradesAndResumes injects a sticky write-class failure
// under a forced flush and asserts the full degradation contract: the
// flush fails cleanly, the store flips to read-only (writes rejected with
// a wrapped ErrReadOnly, reads still serving), and once the fault clears,
// Resume restores writability and re-runs the interrupted flush without
// losing a single pre-failure write.
func TestFlushFailureDegradesAndResumes(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		mem := vfs.NewMem()
		efs := vfs.NewErr(mem)
		e, err := Open(faultConfig(1), efs, "db", kind)
		if err != nil {
			t.Fatal(err)
		}

		const n = 100
		key := func(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }
		for i := 0; i < n; i++ {
			if err := e.Set(key(i), []byte("v"), false); err != nil {
				t.Fatal(err)
			}
		}

		// Every storage-allocating op fails from here on: whichever op the
		// flush path hits first (WAL rotation, sstable build, manifest
		// append), the store must degrade cleanly rather than panic or
		// wedge.
		efs.FailAt(efs.OpCount(), vfs.OpWriteClass, nil, true)
		if err := e.Flush(); err == nil {
			t.Fatal("flush succeeded under sticky write failure")
		}
		if !e.ReadOnly() {
			t.Fatal("store not read-only after failed flush")
		}
		if err := e.Set([]byte("rejected"), []byte("v"), false); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("write in read-only mode: err=%v, want ErrReadOnly", err)
		}
		for i := 0; i < n; i++ {
			if _, found, err := e.Get(key(i), nil, nil); err != nil || !found {
				t.Fatalf("read-only mode lost key %d: found=%v err=%v", i, found, err)
			}
		}

		// The fault clears (disk freed, device back): Resume restores
		// writability and re-runs any interrupted flush with its original
		// stamp.
		efs.Clear()
		if err := e.Resume(); err != nil {
			t.Fatalf("resume after clearing fault: %v", err)
		}
		if e.ReadOnly() {
			t.Fatal("still read-only after Resume")
		}
		if err := e.Set([]byte("after"), []byte("v"), false); err != nil {
			t.Fatalf("write after resume: %v", err)
		}
		if err := e.Flush(); err != nil {
			t.Fatalf("flush after resume: %v", err)
		}
		m := e.Metrics()
		if m.BgRetryableErrors == 0 {
			t.Fatal("no retryable background error counted")
		}
		if m.Resumes != 1 {
			t.Fatalf("resumes = %d, want 1", m.Resumes)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		// Nothing leaked and nothing was lost: reopen on the raw FS and
		// check every key plus the orphan invariants.
		e2, err := Open(testConfig(), mem, "db", kind)
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		for i := 0; i < n; i++ {
			if _, found, err := e2.Get(key(i), nil, nil); err != nil || !found {
				t.Fatalf("key %d missing after reopen: found=%v err=%v", i, found, err)
			}
		}
		if _, found, _ := e2.Get([]byte("after"), nil, nil); !found {
			t.Fatal("post-resume write missing after reopen")
		}
		assertNoOrphans(t, e2, mem)
	})
}

// assertNoOrphans checks the on-disk file set of a freshly reopened
// engine: no temp files survive, and every table file is referenced by
// the recovered version (orphans from failed flushes/compactions must
// have been removed, either at failure time or by the open-time sweep).
func assertNoOrphans(t *testing.T, e *Engine, fs vfs.FS) {
	t.Helper()
	protected := e.tree.ProtectedFiles()
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		ft, fn, ok := base.ParseFilename(name)
		if !ok {
			continue
		}
		switch ft {
		case base.FileTypeTemp:
			t.Errorf("orphan temp file %s", name)
		case base.FileTypeTable:
			if !protected[fn] {
				t.Errorf("orphan table file %s not referenced by the recovered version", name)
			}
		}
	}
}

// TestCorruptionIsPermanent asserts the permanent branch of the state
// machine: an error wrapping sstable.ErrCorrupt is never retried, counts
// as permanent, and Resume refuses to clear it.
func TestCorruptionIsPermanent(t *testing.T) {
	mem := vfs.NewMem()
	efs := vfs.NewErr(mem)
	e, err := Open(faultConfig(3), efs, "db", KindFLSM)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Set([]byte("k"), []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	corrupt := fmt.Errorf("injected: %w", sstable.ErrCorrupt)
	efs.FailAt(efs.OpCount(), vfs.OpWriteClass, corrupt, true)
	if err := e.Flush(); err == nil {
		t.Fatal("flush succeeded under injected corruption")
	}
	if !e.ReadOnly() {
		t.Fatal("store not read-only after corruption")
	}
	m := e.Metrics()
	if m.BgPermanentErrors == 0 {
		t.Fatal("corruption not counted as permanent")
	}
	if m.BgRetries != 0 {
		t.Fatalf("corruption was retried %d times", m.BgRetries)
	}

	efs.Clear()
	err = e.Resume()
	if err == nil {
		t.Fatal("Resume cleared a permanent error")
	}
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, sstable.ErrCorrupt) {
		t.Fatalf("Resume error %v does not expose ErrReadOnly and the cause", err)
	}
	if !e.ReadOnly() {
		t.Fatal("store left permanent read-only mode")
	}
	// Reads keep serving even under a permanent degradation.
	if _, found, err := e.Get([]byte("k"), nil, nil); err != nil || !found {
		t.Fatalf("read under permanent degradation: found=%v err=%v", found, err)
	}
}

// TestENOSPCResume models the operational story the Resume API exists
// for: the disk fills mid-workload, writes start failing, the store
// degrades to read-only; the operator frees space and calls Resume; the
// store is writable again and nothing acknowledged was lost.
func TestENOSPCResume(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		mem := vfs.NewMem()
		efs := vfs.NewErr(mem)
		e, err := Open(faultConfig(-1), efs, "db", kind)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		if err := e.Set([]byte("before"), []byte("v"), true); err != nil {
			t.Fatal(err)
		}

		efs.SetFull(true)
		// Writes fail once the full disk bites; sync commits hit it at the
		// fsync at the latest.
		var failed bool
		for i := 0; i < 50 && !failed; i++ {
			failed = e.Set([]byte(fmt.Sprintf("fill%04d", i)), []byte("v"), true) != nil
		}
		if !failed {
			t.Fatal("no write failed on a full disk")
		}
		if !e.ReadOnly() {
			t.Fatal("store not read-only after ENOSPC")
		}
		// Resume while the disk is still full must fail and leave the
		// store degraded: the fresh WAL cannot be created.
		if err := e.Resume(); err == nil {
			t.Fatal("Resume succeeded on a still-full disk")
		}
		if !e.ReadOnly() {
			t.Fatal("failed Resume cleared read-only mode")
		}

		efs.SetFull(false)
		if err := e.Resume(); err != nil {
			t.Fatalf("resume after space freed: %v", err)
		}
		if e.ReadOnly() {
			t.Fatal("still read-only after successful Resume")
		}
		if err := e.Set([]byte("after"), []byte("v"), true); err != nil {
			t.Fatalf("write after resume: %v", err)
		}
		for _, k := range []string{"before", "after"} {
			if _, found, err := e.Get([]byte(k), nil, nil); err != nil || !found {
				t.Fatalf("key %q: found=%v err=%v", k, found, err)
			}
		}
		// Resume on a healthy store is a no-op.
		if err := e.Resume(); err != nil {
			t.Fatalf("Resume on healthy store: %v", err)
		}
	})
}
